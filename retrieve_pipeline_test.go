package embellish

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"embellish/internal/detrand"
	"embellish/internal/pir"
	"embellish/internal/wire"
)

// TestFetchPipelineDepthsAndPlansAgree: every combination of fetch-
// pipeline depth and PIR serving plan must fetch byte-identical
// documents — the pipeline reschedules work, the worker knob
// reassociates multiplications, and neither may change a single byte.
func TestFetchPipelineDepthsAndPlansAgree(t *testing.T) {
	e, _, texts := storeWorld(t, 25, 32)
	ids := []int{0, 7, 13, 24}
	for _, workers := range []int{0, 1, -1, 3} {
		if err := e.ConfigurePIRWorkers(workers); err != nil {
			t.Fatal(err)
		}
		for _, depth := range []int{1, 2, 5, DefaultFetchPipeline} {
			c, err := e.NewClient(detrand.New(fmt.Sprintf("pipe-%d-%d", workers, depth)))
			if err != nil {
				t.Fatal(err)
			}
			if err := c.SetFetchPipeline(depth); err != nil {
				t.Fatal(err)
			}
			got, st, err := c.FetchDocuments(ids)
			if err != nil {
				t.Fatalf("workers %d depth %d: %v", workers, depth, err)
			}
			for i, id := range ids {
				if string(got[i]) != texts[id] {
					t.Fatalf("workers %d depth %d doc %d: fetched %q, want %q", workers, depth, id, got[i], texts[id])
				}
			}
			if st.Runs == 0 || st.QueryBytes == 0 || st.AnswerBytes == 0 {
				t.Fatalf("workers %d depth %d: stats not accounted: %+v", workers, depth, st)
			}
		}
	}
}

func TestSetFetchPipelineValidation(t *testing.T) {
	e, c, _ := storeWorld(t, 20, 32)
	if err := c.SetFetchPipeline(0); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if err := c.SetFetchPipeline(maxFetchPipeline + 1); err == nil {
		t.Fatal("oversized depth accepted")
	}
	if err := c.SetFetchPipeline(1); err != nil {
		t.Fatal(err)
	}
	if err := e.ConfigurePIRWorkers(-2); err == nil {
		t.Fatal("PIRWorkers -2 accepted")
	}
	if err := e.ConfigurePIRWorkers(1 << 13); err == nil {
		t.Fatal("absurd PIRWorkers accepted")
	}
}

// TestPipelinedRemoteFetchUnderChurn is the end-to-end acceptance of
// the batched wire path: a sequential (depth 1, TypePIRQuery) client
// and a deeply pipelined (TypePIRBatchQuery) client fetch the same
// documents over TCP from a parallel-serving NetServer while the
// corpus churns; both must return the exact indexed bytes, and the
// server must count every block execution from both protocols.
func TestPipelinedRemoteFetchUnderChurn(t *testing.T) {
	lemmas := miniLemmas()
	e, _, texts := storeWorld(t, 30, 32)
	var mu sync.Mutex // guards texts
	addr := startRetrievalServer(t, e, ServeConfig{AllowRetrieval: true, PIRWorkers: -1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn: adds + filler deletes, throttled
		defer wg.Done()
		var fillers []int
		for i := 0; i < 20; i++ {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			base := e.NextDocID()
			mu.Lock()
			texts[base] = fillerDocText(base, lemmas)
			texts[base+1] = storeDocText(base+1, lemmas)
			docs := []Document{{ID: base, Text: texts[base]}, {ID: base + 1, Text: texts[base+1]}}
			mu.Unlock()
			fillers = append(fillers, base)
			if err := e.AddDocuments(docs); err != nil {
				t.Errorf("churn add: %v", err)
				return
			}
			if len(fillers) > 3 {
				id := fillers[0]
				fillers = fillers[1:]
				if err := e.DeleteDocuments([]int{id}); err != nil {
					t.Errorf("churn delete %d: %v", id, err)
					return
				}
			}
		}
	}()

	type proto struct {
		name  string
		depth int
	}
	clients := []proto{{"sequential", 1}, {"pipelined", 16}}
	conns := make([]net.Conn, len(clients))
	cs := make([]*Client, len(clients))
	for i, p := range clients {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conns[i] = conn
		c, err := e.NewClient(detrand.New("churn-" + p.name))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetFetchPipeline(p.depth); err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}

	// The base non-filler docs are never deleted: stable fetch targets.
	ids := []int{1, 9, 17, 26}
	totalRuns := 0
	for round := 0; round < 3; round++ {
		var results [][][]byte
		for i, p := range clients {
			got, st, err := cs[i].FetchDocumentsRemote(conns[i], ids)
			if err != nil {
				t.Fatalf("round %d %s fetch: %v", round, p.name, err)
			}
			if st.Runs == 0 {
				t.Fatalf("round %d %s: no runs accounted", round, p.name)
			}
			totalRuns += st.Runs
			results = append(results, got)
		}
		mu.Lock()
		for i, id := range ids {
			if want := texts[id]; string(results[0][i]) != want {
				mu.Unlock()
				t.Fatalf("round %d doc %d: sequential fetched %q, want %q", round, id, results[0][i], want)
			}
			if !bytes.Equal(results[0][i], results[1][i]) {
				mu.Unlock()
				t.Fatalf("round %d doc %d: protocols disagree", round, id)
			}
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := int(e.NewNetServer(ServeConfig{}).Stats().Retrievals); got != 0 {
		t.Fatalf("fresh server born with %d retrievals", got) // sanity: counters are per server
	}
	_ = totalRuns // both protocols completed; per-server counter checked in TestServeStatsCountRetrievals
}

// deleteOnFirstBatch wraps a connection and tombstones one document
// the instant the first PIR batch frame leaves the client — after the
// client validated it against Params, before the server serves it —
// making the delete-races-fetch checksum failure deterministic.
type deleteOnFirstBatch struct {
	net.Conn
	e    *Engine
	id   int
	once sync.Once
	t    *testing.T
}

func (d *deleteOnFirstBatch) Write(p []byte) (int, error) {
	if len(p) > 0 && p[0] == wire.TypePIRBatchQuery {
		d.once.Do(func() {
			if err := d.e.DeleteDocuments([]int{d.id}); err != nil {
				d.t.Errorf("mid-fetch delete: %v", err)
			}
		})
	}
	return d.Conn.Write(p)
}

// TestPipelinedFetchChecksumFailureKeepsConnectionUsable: a document
// deleted between the mapping fetch and its block fetches fails its
// checksum (the server zeroes tombstoned blocks in place); the
// pipelined client must drain the in-flight answers and leave the
// connection at a frame boundary, so the same session keeps searching
// and fetching — the documented reuse contract.
func TestPipelinedFetchChecksumFailureKeepsConnectionUsable(t *testing.T) {
	e, _, texts := storeWorld(t, 25, 32)
	addr := startRetrievalServer(t, e, ServeConfig{AllowRetrieval: true, PIRWorkers: -1})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	const victim, bystander = 5, 9
	conn := &deleteOnFirstBatch{Conn: raw, e: e, id: victim, t: t}

	c, err := e.NewClient(detrand.New("drain-client"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetFetchPipeline(8); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.FetchDocumentsRemote(conn, []int{victim, bystander})
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("mid-fetch delete not surfaced as checksum failure: %v", err)
	}

	// The connection survives: rank and fetch again on the same session.
	lemmas := miniLemmas()
	if _, err := c.SearchRemote(conn, lemmas[1], 3); err != nil {
		t.Fatalf("search after drained fetch failure: %v", err)
	}
	got, _, err := c.FetchDocumentsRemote(conn, []int{bystander})
	if err != nil {
		t.Fatalf("fetch after drained fetch failure: %v", err)
	}
	if string(got[0]) != texts[bystander] {
		t.Fatalf("post-failure fetch returned %q, want %q", got[0], texts[bystander])
	}
}

// TestPIRBatchLimitBudget: batches shrink with the wire cost of one
// query, so a batch frame can never approach the 64 MiB frame cap —
// wide moduli over big stores pick smaller batches instead of
// failing.
func TestPIRBatchLimitBudget(t *testing.T) {
	if got := pirBatchLimit(16, 100, 64); got != 8 {
		t.Fatalf("small world: limit %d, want depth/2 = 8", got)
	}
	if got := pirBatchLimit(1024, 100, 64); got != wire.MaxPIRBatch {
		t.Fatalf("deep window: limit %d, want wire cap %d", got, wire.MaxPIRBatch)
	}
	// 1024-bit modulus over a 130k-block store: ~17 MB per query.
	if got := pirBatchLimit(128, 130000, 1024); got != 1 {
		t.Fatalf("huge query: limit %d, want 1", got)
	}
	// The budget must keep every batch whose single query is itself
	// sendable under the frame cap (a query too large to frame at all
	// is unfetchable by any protocol and fails on its own).
	for _, c := range []struct{ depth, values, bits int }{
		{2, 1, 64}, {1024, 1 << 20, 64}, {128, 130000, 1024}, {8, 30413, 64},
	} {
		limit := pirBatchLimit(c.depth, c.values, c.bits)
		if limit < 1 {
			t.Fatalf("limit(%+v) = %d", c, limit)
		}
		frame := limit * (c.values*((c.bits+7)/8+3) + 16)
		if frame > wire.MaxFrame/2 {
			t.Fatalf("limit(%+v) = %d admits ~%d-byte frames", c, limit, frame)
		}
	}
}

// TestServeConfigPIRWorkersClamped: the constructor has no error
// path, so out-of-range ServeConfig overrides are clamped to the
// validated Options range instead of sizing an unbounded pool (or
// silently meaning GOMAXPROCS for typos like -2).
func TestServeConfigPIRWorkersClamped(t *testing.T) {
	e, _, _ := storeWorld(t, 20, 32)
	for _, cfg := range []int{-2, -1000, 1 << 20} {
		srv := e.NewNetServer(ServeConfig{AllowRetrieval: true, PIRWorkers: cfg})
		if w := srv.pirWorkers(); w < -1 || w > 1<<12 {
			t.Fatalf("ServeConfig.PIRWorkers %d resolved to %d, outside [-1, 4096]", cfg, w)
		}
	}
	// A zero override tracks the engine knob at answer time, so
	// configuring a live server's engine takes effect.
	srv := e.NewNetServer(ServeConfig{AllowRetrieval: true})
	if err := e.ConfigurePIRWorkers(3); err != nil {
		t.Fatal(err)
	}
	if w := srv.pirWorkers(); w != 3 {
		t.Fatalf("live server ignored ConfigurePIRWorkers: resolved %d, want 3", w)
	}
}

// TestPIRBatchWriterNilFirstQuery: a nil query at index 0 must be
// refused like any other index, not panic on the modulus read.
func TestPIRBatchWriterNilFirstQuery(t *testing.T) {
	var buf bytes.Buffer
	err := wire.WritePIRBatchQuery(&buf, make([]*pir.Query, 2))
	if err == nil || !strings.Contains(err.Error(), "nil PIR query 0") {
		t.Fatalf("nil first query: %v", err)
	}
}

// TestFetchFallsBackToSequentialOnPreBatchServer: a server from
// before the batch messages answers type 12 with "unexpected message
// type"; a default (pipelined) client must detect that on the first
// frame and transparently complete the fetch through the sequential
// protocol on the same connection.
func TestFetchFallsBackToSequentialOnPreBatchServer(t *testing.T) {
	e, c, texts := storeWorld(t, 20, 32)
	sn, err := e.storeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	srvConn, cliConn := net.Pipe()
	defer cliConn.Close()
	go func() { // minimal PR 3-era server: params + single PIR queries only
		defer srvConn.Close()
		for {
			typ, body, err := wire.ReadMessage(srvConn)
			if err != nil {
				return
			}
			switch typ {
			case wire.TypePIRParams:
				err = wire.WritePIRParams(srvConn, sn.Params())
			case wire.TypePIRQuery:
				q, derr := wire.DecodePIRQuery(body)
				if derr != nil {
					err = wire.WriteError(srvConn, derr.Error())
					break
				}
				ans, _, aerr := sn.Answer(q)
				if aerr != nil {
					err = wire.WriteError(srvConn, aerr.Error())
					break
				}
				err = wire.WritePIRAnswer(srvConn, ans)
			default:
				err = wire.WriteError(srvConn, fmt.Sprintf("unexpected message type %d", typ))
			}
			if err != nil {
				return
			}
		}
	}()

	// Default depth is pipelined; the fallback must make this succeed.
	ids := []int{2, 11}
	got, st, err := c.FetchDocumentsRemote(cliConn, ids)
	if err != nil {
		t.Fatalf("fetch against pre-batch server: %v", err)
	}
	for i, id := range ids {
		if string(got[i]) != texts[id] {
			t.Fatalf("doc %d: fetched %q, want %q", id, got[i], texts[id])
		}
	}
	if st.Runs == 0 {
		t.Fatal("no PIR runs accounted on the fallback path")
	}
}

// TestServeConfigAmortizeOverrideIdentity: the server-side
// PIRBatchAmortize override reschedules multiplications, never bytes —
// a pipelined client fetching from a force-on server and from a
// force-off server must receive identical documents. The amortized
// server must also account its PIR work on the wire stats: positive
// mod-mul totals with the table share a strict subset, so
// work_fraction dashboards stay meaningful for batch serving.
func TestServeConfigAmortizeOverrideIdentity(t *testing.T) {
	e, _, texts := storeWorld(t, 25, 32)
	ids := []int{0, 6, 12, 19, 24}
	var results [][][]byte
	for _, amortize := range []int{1, -1} {
		addr := startRetrievalServer(t, e, ServeConfig{
			AllowRetrieval: true, PIRWorkers: -1, PIRBatchAmortize: amortize,
		})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		c, err := e.NewClient(detrand.New(fmt.Sprintf("amortize-%d", amortize)))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetFetchPipeline(16); err != nil {
			t.Fatal(err)
		}
		got, st, err := c.FetchDocumentsRemote(conn, ids)
		if err != nil {
			t.Fatalf("amortize %d: %v", amortize, err)
		}
		if st.Runs == 0 {
			t.Fatalf("amortize %d: no runs accounted", amortize)
		}
		for i, id := range ids {
			if string(got[i]) != texts[id] {
				t.Fatalf("amortize %d doc %d: fetched %q, want %q", amortize, id, got[i], texts[id])
			}
		}
		results = append(results, got)

		ss, err := ServerStats(conn)
		if err != nil {
			t.Fatalf("amortize %d: ServerStats: %v", amortize, err)
		}
		if ss.PIRModMuls <= 0 {
			t.Fatalf("amortize %d: PIRModMuls = %d, want > 0", amortize, ss.PIRModMuls)
		}
		if ss.PIRTableMuls <= 0 || ss.PIRTableMuls >= ss.PIRModMuls {
			t.Fatalf("amortize %d: PIRTableMuls = %d not in (0, %d)", amortize, ss.PIRTableMuls, ss.PIRModMuls)
		}
	}
	for i := range results[0] {
		if !bytes.Equal(results[0][i], results[1][i]) {
			t.Fatalf("doc %d: amortized and per-query servers disagree", ids[i])
		}
	}
}

// TestConfigurePIRWorkersConcurrentWithFetch: retuning the serving
// plan on a live engine must not race fetches (the plan lives in its
// own atomic; e.opts is never rewritten). Run with -race.
func TestConfigurePIRWorkersConcurrentWithFetch(t *testing.T) {
	e, _, texts := storeWorld(t, 15, 32)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			if err := e.ConfigurePIRWorkers(i % 3); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		fc, err := e.NewClient(detrand.New(fmt.Sprintf("retune-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := fc.FetchDocuments([]int{i})
		if err != nil {
			t.Fatal(err)
		}
		if string(got[0]) != texts[i] {
			t.Fatalf("doc %d: fetched %q, want %q", i, got[0], texts[i])
		}
	}
	<-done
}

package embellish

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"embellish/internal/detrand"
)

// TestDurableChurnRecovery is the durable-path extension of
// TestPIRFetchPropertyUnderChurn: a random interleaving of adds,
// deletes, merges, compactions and CHECKPOINTS runs against a durable
// engine — with a concurrent private searcher-and-fetcher, and with a
// concurrent "crash" that freezes the durable directory at a random
// moment mid-churn (capturing whatever half-written journal tail is in
// flight). Recovery from the frozen directory must yield the state
// after some prefix of the operation log: every live document's PIR
// bytes == snapshot bytes == the originally indexed text, every
// tombstoned id errors from both paths, and the private ranking equals
// PlaintextSearch. Run with -race.
func TestDurableChurnRecovery(t *testing.T) {
	lemmas := miniLemmas()
	for _, seed := range []int64{5, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			e, texts := durableStoreWorld(t, dir, 30, 32)
			defer e.Close()
			rng := rand.New(rand.NewSource(seed))
			var mu sync.Mutex // guards texts + deleted + ledger
			deleted := map[int]bool{}
			// ledger[seq] = expected corpus after operation seq; entries
			// are appended as each operation is ACKNOWLEDGED, so by the
			// time the churn stops, every sequence the frozen directory
			// can recover to has its expectation recorded.
			ledger := map[uint64]ledgerState{0: snapshotLedger(texts, e.NextDocID())}
			recordLedger := func() {
				st, _ := e.WALStatus()
				live := make(map[int]string)
				for id, txt := range texts {
					if !deleted[id] {
						live[id] = txt
					}
				}
				ledger[st.Seq] = ledgerState{texts: live, nextDoc: e.NextDocID()}
			}

			stableLive := func() []int {
				mu.Lock()
				defer mu.Unlock()
				var ids []int
				for id := range texts {
					if !deleted[id] && !strings.Contains(texts[id], "#filler-") {
						ids = append(ids, id)
					}
				}
				return ids
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // concurrent private fetcher, as in the in-memory test
				defer wg.Done()
				fc, err := e.NewClient(detrand.New("durable-churn-fetcher"))
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					ids := stableLive()
					id := ids[i%len(ids)]
					got, _, err := fc.FetchDocuments([]int{id})
					if err != nil {
						t.Errorf("concurrent fetch %d: %v", id, err)
						return
					}
					mu.Lock()
					want := texts[id]
					mu.Unlock()
					if string(got[0]) != want {
						t.Errorf("concurrent fetch %d = %q, want %q", id, got[0], want)
						return
					}
				}
			}()

			// The crash: freeze the directory at a random moment while
			// the mutator below keeps running — exactly what a power cut
			// would capture, including a torn record mid-append.
			crashAfter := time.Duration(1+rng.Intn(40)) * time.Millisecond
			crashed := make(chan string, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(crashAfter)
				crashed <- copyDurableDir(t, dir)
			}()

			// Mutator: random interleaving of adds, deletes, structural
			// churn and checkpoints.
			for op := 0; op < 16; op++ {
				switch rng.Intn(6) {
				case 0, 1: // add a small batch
					base := e.NextDocID()
					n := 1 + rng.Intn(3)
					docs := make([]Document, n)
					mu.Lock()
					for i := range docs {
						id := base + i
						if rng.Intn(2) == 0 {
							texts[id] = fillerDocText(id, lemmas)
						} else {
							texts[id] = storeDocText(id, lemmas)
						}
						docs[i] = Document{ID: id, Text: texts[id]}
					}
					mu.Unlock()
					if err := e.AddDocuments(docs); err != nil {
						t.Fatalf("op %d add: %v", op, err)
					}
					mu.Lock()
					recordLedger()
					mu.Unlock()
				case 2: // delete one random live filler doc
					mu.Lock()
					var cands []int
					for id := range texts {
						if !deleted[id] && strings.Contains(texts[id], "#filler-") {
							cands = append(cands, id)
						}
					}
					mu.Unlock()
					if len(cands) == 0 {
						continue
					}
					id := cands[rng.Intn(len(cands))]
					if err := e.DeleteDocuments([]int{id}); err != nil {
						t.Fatalf("op %d delete %d: %v", op, id, err)
					}
					mu.Lock()
					deleted[id] = true
					recordLedger()
					mu.Unlock()
				case 3: // structural churn: segment folds never touch the journal
					if rng.Intn(2) == 0 {
						e.Compact()
					} else {
						e.live.MergeNow()
					}
				case 4, 5: // fold the journal into a checkpoint mid-churn
					if err := e.Checkpoint(); err != nil {
						t.Fatalf("op %d checkpoint: %v", op, err)
					}
				}
			}
			close(stop)
			frozen := <-crashed
			wg.Wait()
			if t.Failed() {
				return
			}

			// Recover the frozen directory and sweep it against the
			// ledger entry for the recovered prefix.
			r, err := OpenDurable(frozen, Options{})
			if err != nil {
				t.Fatalf("recovery from mid-churn freeze: %v", err)
			}
			defer r.Close()
			rst, ok := r.WALStatus()
			if !ok {
				t.Fatal("recovered engine is not durable")
			}
			state, ok := ledger[rst.Seq]
			if !ok {
				t.Fatalf("recovered to seq %d, which the ledger never recorded (max ops %d)", rst.Seq, len(ledger)-1)
			}
			fc, err := r.NewClient(detrand.New("durable-churn-sweep"))
			if err != nil {
				t.Fatal(err)
			}
			snap := r.Snapshot()
			if r.NextDocID() != state.nextDoc {
				t.Fatalf("recovered NextDocID %d, ledger %d at seq %d", r.NextDocID(), state.nextDoc, rst.Seq)
			}
			for id := 0; id < state.nextDoc; id++ {
				want, live := state.texts[id]
				if !live {
					if _, _, err := fc.FetchDocuments([]int{id}); err == nil {
						t.Fatalf("tombstoned doc %d PIR-fetchable after recovery", id)
					}
					if _, err := r.Document(id); err == nil {
						t.Fatalf("tombstoned doc %d readable after recovery", id)
					}
					continue
				}
				got, _, err := fc.FetchDocuments([]int{id})
				if err != nil {
					t.Fatalf("sweep fetch %d: %v", id, err)
				}
				direct, err := snap.Document(id)
				if err != nil {
					t.Fatalf("sweep direct read %d: %v", id, err)
				}
				if string(got[0]) != want || !bytes.Equal(direct, got[0]) {
					t.Fatalf("doc %d: PIR %q, direct %q, want %q", id, got[0], direct, want)
				}
			}
			// And the recovered engine still upholds Claim 1.
			assertCorpusEquals(t, r, state.texts)
		})
	}
}

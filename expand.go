package embellish

import (
	"errors"
	"strings"

	"embellish/internal/qexpand"
	"embellish/internal/wordnet"
)

// ExpandQuery grows a query with lexically related terms (synonyms,
// then neighbors in relation-closeness order), the concept-based
// expansion of Qiu and Frei that the paper cites as a source of long
// queries. Expansion runs entirely client-side on the public lexicon,
// so it leaks nothing; the expanded string feeds straight into
// Client.Search or Client.Embellish, where every term — original and
// expansion alike — receives its own decoy bucket.
//
// maxPerTerm caps the expansion terms added per query term (0 selects
// the default of 4). Pseudo-relevance feedback expansion, which needs
// corpus statistics and therefore belongs on the un-private side, is
// available to plaintext pipelines via internal/qexpand.
func (c *Client) ExpandQuery(query string, maxPerTerm int) (string, error) {
	tokens := c.world.analyzer.Analyze(query)
	if len(tokens) == 0 {
		return "", errors.New("embellish: query has no indexable terms")
	}
	var terms []wordnet.TermID
	for _, tok := range tokens {
		if t, ok := c.world.lex.db.Lookup(tok); ok {
			terms = append(terms, t)
		}
	}
	if len(terms) == 0 {
		return "", errors.New("embellish: no query term is in the lexicon")
	}
	th := qexpand.NewThesaurus(c.world.lex.db)
	if maxPerTerm > 0 {
		th.MaxPerTerm = maxPerTerm
	}
	expanded := th.Expand(terms)
	// Expand dedupes TermIDs, but distinct synsets can share a lemma
	// spelling — dedupe the surface strings too, keeping first-occurrence
	// order, so the expanded query never embellishes one word twice.
	out := make([]string, 0, len(expanded))
	seen := make(map[string]bool, len(expanded))
	for _, t := range expanded {
		lemma := c.world.lex.db.Lemma(t)
		if seen[lemma] {
			continue
		}
		seen[lemma] = true
		out = append(out, lemma)
	}
	return strings.Join(out, " "), nil
}

package embellish

import (
	"fmt"

	"embellish/internal/benaloh"
	"embellish/internal/docstore"
	"embellish/internal/index"
)

// Options configures engine construction.
type Options struct {
	// BucketSize (the paper's BktSz) is the number of terms per bucket:
	// each genuine search term travels with BucketSize-1 decoys. Larger
	// buckets widen the anonymity set at the cost of processing more
	// inverted lists per query. Must satisfy 2 <= BucketSize <= N/2 for
	// a searchable dictionary of N terms.
	BucketSize int
	// SegmentSize (the paper's SegSz) controls how far apart terms may
	// be re-ordered to equalize specificity within buckets; 0 selects
	// the maximum N/BucketSize, which the paper's Figure 5 experiments
	// recommend (larger segments improve the specificity match without
	// hurting the semantic-distance match).
	SegmentSize int
	// KeyBits is the Benaloh modulus size for client keys. 512 and up
	// for real deployments; tests use smaller values for speed.
	KeyBits int
	// ScoreSpace is the exponent k of the Benaloh plaintext space
	// r = 3^k. Relevance scores accumulate modulo r, so r must exceed
	// the maximum possible quantized score of a document.
	ScoreSpace int
	// QuantLevels is the integer quantization resolution for posting
	// impacts (footnote 1 of the paper requires integer impacts).
	QuantLevels int
	// Stopwords enables stopword removal in the analyzer (the paper's
	// configuration; stemming is not applied).
	Stopwords bool
	// Scoring selects the similarity function. The private retrieval
	// scheme works with any impact-based similarity model (Appendix B of
	// the paper names Okapi explicitly); Cosine is Equation 3.
	Scoring Scoring
	// Parallelism sets the worker count for server-side score
	// accumulation: 0 keeps single-threaded execution (the paper's
	// sequential Algorithm 4, or one worker walking the shards serially
	// when Shards is set), -1 selects GOMAXPROCS, and any positive
	// value pins the worker count. The homomorphic accumulation
	// commutes, so results are identical.
	Parallelism int
	// Shards partitions the inverted index by document for the
	// worker-pool accumulator: shard s owns the postings of documents d
	// with d mod n == s, so per-shard encrypted score maps are disjoint
	// and merge without homomorphic additions. 0 disables sharding
	// (the seed term-striped plan), -1 selects GOMAXPROCS shards, and
	// any positive value pins the shard count. The sharded view copies
	// the postings once at configuration time (roughly doubling index
	// memory) in exchange for contiguous per-shard scans. Sharding
	// never changes decrypted scores — only which goroutine computes
	// them; set Parallelism to size the worker pool.
	Shards int
	// PrecomputeWindow enables fixed-base windowed exponentiation for
	// the per-term flag powers E(u)^p: the server builds one table of
	// 2^w-entry windows per query term and answers each posting's power
	// with table lookups plus at most one multiplication, instead of a
	// full modular exponentiation per posting. 0 disables the tables,
	// -1 selects the default window (4 bits), and 1..8 pin the window
	// width. Ciphertexts are identical either way.
	PrecomputeWindow int
	// MaxConns caps simultaneous connections in Engine.Serve and
	// NetServers built with a zero ServeConfig.MaxConns. 0 selects
	// DefaultMaxConns; -1 disables the cap (any other negative value is
	// rejected).
	MaxConns int
	// StoreDocuments opts the engine in to storing the document BYTES
	// (not just the inverted index) in a PIR block store, enabling the
	// paper's second privacy stage: fetching the winning documents
	// after a private ranking without revealing which ones won
	// (Client.FetchDocuments / FetchDocumentsRemote). The store is part
	// of the persisted engine file (format version 3). Off by default —
	// it roughly doubles the engine's memory footprint.
	StoreDocuments bool
	// BlockSize is the PIR block size in bytes for the document store:
	// documents are laid out into fixed-size blocks and one PIR
	// protocol execution fetches one block. Smaller blocks shrink the
	// per-execution answer but cost more executions per document; the
	// server-side work is ~8·BlockSize·NumBlocks modular
	// multiplications either way. 0 selects docstore.DefaultBlockSize
	// (512). Ignored unless StoreDocuments is set; persisted with the
	// store.
	BlockSize int
	// RetrievalKeyBits sizes the Kushilevitz-Ostrovsky PIR modulus used
	// by document fetches. 0 inherits KeyBits. Like KeyBits it is a
	// client-side security knob: tests and benchmarks use small values
	// for speed, real deployments want >= 1024.
	RetrievalKeyBits int
	// PIRWorkers sets the execution plan for serving PIR document
	// fetches (the per-block Kushilevitz-Ostrovsky database scans): 0
	// keeps the sequential reference path — one modular multiplication
	// per stored corpus bit, the paper's Section 5.2 cost model; -1
	// selects a GOMAXPROCS-wide column-partitioned worker pool with the
	// windowed multiply fast path (internal/pir.ProcessColumnsExec);
	// any positive value pins the worker count (1 enables the windowed
	// fast path without extra goroutines). Answers are byte-identical
	// in every plan — the knob tunes only how fast the server
	// multiplies. Like Parallelism it is runtime-only and not
	// persisted; Engine.ConfigurePIRWorkers retunes it safely on a
	// live engine, and NetServers can override it per server with
	// ServeConfig.PIRWorkers.
	PIRWorkers int
	// PIRBatchAmortize is the escape hatch for the amortized
	// multi-query serving path: when a whole batch of equal-width block
	// queries arrives (a top-k fetch), the server answers all of them
	// in ONE pass over the document store on the Montgomery kernel
	// instead of scanning once per query. 0 (the default) and 1 enable
	// amortization; -1 disables it, falling back to per-query serving —
	// answers are byte-identical either way, the knob exists to recover
	// the old execution profile if the fast path misbehaves. Runtime-
	// only and not persisted; Engine.ConfigurePIRBatchAmortize retunes
	// a live engine, and NetServers can override it per server with
	// ServeConfig.PIRBatchAmortize. The sequential reference plan
	// (PIRWorkers == 0) is never amortized — it exists to measure the
	// paper's per-query cost model.
	PIRBatchAmortize int
	// PIRRecursive selects the recursive (two-level) Kushilevitz-
	// Ostrovsky layout for document fetches: the block store is treated
	// as a √n×√n grid, the client uploads two ~√n-element selection
	// vectors instead of one element per block, and the answer carries
	// the recursively-encrypted target block. Uploads shrink from n to
	// at most 3·⌈√n⌉ group elements per fetched block; answers grow by
	// a factor of 8·|modulus| bytes, and decoded documents are
	// byte-identical to the flat path. 0 (the default) and 1 enable the
	// recursive serving path and let local fetches use it; -1 disables
	// it — the server refuses recursive frames (clients fall back to
	// flat queries) and local fetches stay flat. Runtime-only and not
	// persisted; Engine.ConfigurePIRRecursive retunes a live engine,
	// and NetServers can override it per server with
	// ServeConfig.PIRRecursive. Whether a CLIENT sends recursive
	// queries is its own knob (Client.SetFetchRecursive).
	PIRRecursive int
	// Durability opts the engine in to crash-safe persistence: every
	// AddDocuments/DeleteDocuments batch is journaled to a write-ahead
	// log in Durability.Dir before it is applied, and checkpoints
	// periodically fold the log into a full snapshot. An empty Dir (the
	// zero value) keeps the engine in-memory; see the Durability type,
	// OpenDurable and docs/DURABILITY.md. Like the execution knobs, the
	// policy itself is runtime-only — checkpoint files never embed it.
	Durability Durability
	// MaxSegments bounds the live segment set: when AddDocuments leaves
	// more than MaxSegments segments, a background merge folds the
	// smallest ones together, rewriting deleted postings away. 0 selects
	// DefaultMaxSegments, -1 disables automatic merging (Engine.Compact
	// remains available), and values >= 1 pin the bound. Like the
	// execution knobs this is runtime-only and not persisted.
	MaxSegments int
}

// DefaultMaxSegments is the live-index segment bound applied when
// Options.MaxSegments is zero.
const DefaultMaxSegments = index.DefaultMaxSegments

// maxPIRWorkers bounds the PIR serving worker count — shared by
// Options validation and the NetServer's ServeConfig clamp so the two
// can never diverge.
const maxPIRWorkers = 1 << 12

// validatePIRWorkers is the one range check for the PIRWorkers
// encoding, shared by Options.validate and Engine.ConfigurePIRWorkers.
func validatePIRWorkers(n int) error {
	if n < -1 || n > maxPIRWorkers {
		return fmt.Errorf("embellish: PIRWorkers %d out of range [-1, %d]; -1 selects GOMAXPROCS, 0 the sequential reference path", n, maxPIRWorkers)
	}
	return nil
}

// validatePIRBatchAmortize is the range check for the PIRBatchAmortize
// encoding, shared by Options.validate and
// Engine.ConfigurePIRBatchAmortize.
func validatePIRBatchAmortize(n int) error {
	if n < -1 || n > 1 {
		return fmt.Errorf("embellish: PIRBatchAmortize %d out of range [-1, 1]; -1 disables batch amortization, 0/1 enable it", n)
	}
	return nil
}

// validatePIRRecursive is the range check for the PIRRecursive
// encoding, shared by Options.validate and
// Engine.ConfigurePIRRecursive.
func validatePIRRecursive(n int) error {
	if n < -1 || n > 1 {
		return fmt.Errorf("embellish: PIRRecursive %d out of range [-1, 1]; -1 refuses recursive fetches, 0/1 serve them", n)
	}
	return nil
}

// Scoring selects the similarity function used to precompute posting
// impacts.
type Scoring uint8

const (
	// Cosine is the paper's Equation 3 scoring (the default).
	Cosine Scoring = iota
	// BM25 is Okapi BM25 with the standard parameters (k1=1.2, b=0.75).
	BM25
)

// DefaultOptions mirrors the paper's defaults: BktSz=8 (the Figure 8
// setting), maximal SegSz, and 512-bit keys.
func DefaultOptions() Options {
	return Options{
		BucketSize:  8,
		SegmentSize: 0,
		KeyBits:     512,
		ScoreSpace:  12,
		QuantLevels: 255,
		Stopwords:   true,
	}
}

// validate rejects unusable combinations early, with actionable errors.
func (o Options) validate() error {
	if o.BucketSize < 2 {
		return fmt.Errorf("embellish: BucketSize %d too small; a bucket needs at least one decoy slot", o.BucketSize)
	}
	if o.KeyBits < 64 {
		return fmt.Errorf("embellish: KeyBits %d too small for Benaloh key generation", o.KeyBits)
	}
	if o.ScoreSpace < 1 {
		return fmt.Errorf("embellish: ScoreSpace must be at least 1, got %d", o.ScoreSpace)
	}
	if o.QuantLevels < 1 || o.QuantLevels > 1<<20 {
		return fmt.Errorf("embellish: QuantLevels %d out of range", o.QuantLevels)
	}
	if o.Scoring > BM25 {
		return fmt.Errorf("embellish: unknown scoring %d", o.Scoring)
	}
	if o.Shards < -1 || o.Shards > 1<<12 {
		return fmt.Errorf("embellish: Shards %d out of range [-1, %d]", o.Shards, 1<<12)
	}
	if o.PrecomputeWindow < -1 || o.PrecomputeWindow > 8 {
		return fmt.Errorf("embellish: PrecomputeWindow %d out of range [-1, 8]", o.PrecomputeWindow)
	}
	if o.Parallelism < -1 || o.Parallelism > 1<<12 {
		return fmt.Errorf("embellish: Parallelism %d out of range [-1, %d]; -1 selects GOMAXPROCS, 0 single-threaded", o.Parallelism, 1<<12)
	}
	if o.MaxConns < -1 {
		return fmt.Errorf("embellish: MaxConns %d out of range; -1 disables the cap, 0 selects the default", o.MaxConns)
	}
	if o.MaxSegments < -1 || o.MaxSegments > 1<<12 {
		return fmt.Errorf("embellish: MaxSegments %d out of range [-1, %d]; -1 disables merging, 0 selects the default", o.MaxSegments, 1<<12)
	}
	if o.BlockSize < 0 || o.BlockSize > docstore.MaxBlockSize {
		return fmt.Errorf("embellish: BlockSize %d out of range [0, %d]", o.BlockSize, docstore.MaxBlockSize)
	}
	if o.RetrievalKeyBits != 0 && o.RetrievalKeyBits < 64 {
		return fmt.Errorf("embellish: RetrievalKeyBits %d too small for PIR key generation", o.RetrievalKeyBits)
	}
	if err := validatePIRWorkers(o.PIRWorkers); err != nil {
		return err
	}
	if err := validatePIRBatchAmortize(o.PIRBatchAmortize); err != nil {
		return err
	}
	if err := validatePIRRecursive(o.PIRRecursive); err != nil {
		return err
	}
	if err := o.Durability.validate(); err != nil {
		return err
	}
	return nil
}

// retrievalKeyBits resolves the PIR key size (0 inherits KeyBits).
func (o Options) retrievalKeyBits() int {
	if o.RetrievalKeyBits > 0 {
		return o.RetrievalKeyBits
	}
	return o.KeyBits
}

// maxSegments resolves the MaxSegments knob for internal/index
// (<= 0 = automatic merging disabled).
func (o Options) maxSegments() int {
	switch {
	case o.MaxSegments == 0:
		return DefaultMaxSegments
	case o.MaxSegments < 0:
		return 0
	}
	return o.MaxSegments
}

// precomputeWindow resolves the PrecomputeWindow knob to a radix
// exponent for internal/benaloh (0 = disabled).
func (o Options) precomputeWindow() uint {
	switch {
	case o.PrecomputeWindow < 0:
		return benaloh.DefaultWindow
	case o.PrecomputeWindow > 0:
		return uint(o.PrecomputeWindow)
	}
	return 0
}

// Extendlexicon: the Appendix C extension. WordNet's manual relations
// are accurate but not comprehensive — domain-specific associations
// (say, osteosarcoma↔chemotherapy in a medical corpus) are missing, so
// the terms land far apart in the sequence and never cover each other.
// This example extracts term associations from a corpus by pointwise
// mutual information, rates them on the same numeric strength scale as
// the WordNet relation types, and re-runs the weighted variant of
// Algorithm 1 so corpus-related terms cluster in the sequence.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"embellish/internal/relex"
	"embellish/internal/sequence"
	"embellish/internal/wordnet"
)

func main() {
	db := wordnet.MiniLexicon()

	// The mini lexicon deliberately links 'osteosarcoma' to
	// 'chemotherapy' only through a weak domain edge, which Algorithm 1
	// skips — exactly the "not comprehensive enough" case.
	baseSeq := sequence.Run(db)
	fmt.Println("=== WordNet relations only ===")
	report(db, baseSeq, "osteosarcoma", "chemotherapy")

	// A domain corpus where the two co-occur constantly.
	docs := medicalCorpus()
	rels, err := relex.Extract(docs, func(s string) (wordnet.TermID, bool) {
		return db.Lookup(s)
	}, relex.Config{Window: 8, MinCount: 5, MaxPairs: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextracted %d corpus relations; strongest:\n", len(rels))
	for i, r := range rels {
		if i == 5 {
			break
		}
		fmt.Printf("  %q — %q  (PMI %.2f, %d co-occurrences)\n",
			db.Lemma(r.A), db.Lemma(r.B), r.PMI, r.Cooccurrences)
	}

	// Merge onto the Appendix C strength scale: extracted relations are
	// rated between holonym (2.5) and antonym (5) strength by PMI rank,
	// and the weighted Algorithm 1 iterates strongest-first down to a
	// minimum threshold of 2 (dropping only domain links, as before).
	strengths := relex.DefaultStrengths()
	strengths.AddExtracted(rels, 2.5, 5)
	weightedSeq := sequence.Flatten(sequence.VocabWeighted(db, relex.NeighborFunc(db, strengths, 2)))

	fmt.Println("\n=== WordNet + corpus relations (Appendix C) ===")
	report(db, weightedSeq, "osteosarcoma", "chemotherapy")
	fmt.Println(`
With the corpus relation merged in, the emerging association pulls the
terms together in the sequence, so bucket formation can give them (and
their neighborhoods) mutually consistent covers.`)
}

func report(db *wordnet.Database, seq []wordnet.TermID, a, b string) {
	pos := map[wordnet.TermID]int{}
	for i, t := range seq {
		pos[t] = i
	}
	ta, ok1 := db.Lookup(a)
	tb, ok2 := db.Lookup(b)
	if !ok1 || !ok2 {
		log.Fatalf("lexicon missing %q or %q", a, b)
	}
	d := pos[ta] - pos[tb]
	if d < 0 {
		d = -d
	}
	fmt.Printf("sequence distance %q to %q: %d positions (dictionary size %d)\n",
		a, b, d, len(seq))
}

// medicalCorpus fabricates oncology abstracts in which osteosarcoma and
// chemotherapy co-occur tightly, against background noise.
func medicalCorpus() [][]string {
	med := []string{"osteosarcoma", "chemotherapy", "radiation", "therapy", "oncologist", "bone", "tumor"}
	noise := []string{"water", "yeast", "pigeon", "huntsville", "wine", "diver", "chestnut", "whale"}
	rng := rand.New(rand.NewSource(13))
	var docs [][]string
	for i := 0; i < 60; i++ {
		var words []string
		for j := 0; j < 12; j++ {
			words = append(words, "osteosarcoma", "chemotherapy", med[rng.Intn(len(med))])
		}
		for j := 0; j < 10; j++ {
			words = append(words, noise[rng.Intn(len(noise))])
		}
		docs = append(docs, words)
	}
	// Noise-only documents keep the background probabilities honest.
	for i := 0; i < 40; i++ {
		var words []string
		for j := 0; j < 30; j++ {
			words = append(words, noise[rng.Intn(len(noise))])
		}
		docs = append(docs, words)
	}
	return docs
}


// Longquery: general text search produces long queries — TREC ad-hoc
// topics run to 20 terms and query expansion goes further (Section 2.1).
// Canonical-query schemes cannot materialize enough term combinations to
// cover that space, and the PIR baseline pays one protocol run per
// genuine term. This example measures PR versus PIR on progressively
// longer queries over one shared world, reproducing the Figure 8
// scaling story at example scale.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"embellish/internal/core"
	"embellish/internal/detrand"
	"embellish/internal/eval"
	"embellish/internal/pir"
	"embellish/internal/pirsearch"
	"embellish/internal/simio"
	"embellish/internal/wordnet"
)

func main() {
	cfg := eval.DefaultConfig()
	cfg.Synsets = 2000
	cfg.NumDocs = 250
	cfg.KeyBits = 256
	env, err := eval.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	org, err := env.Organization(8, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d docs, %d searchable terms, %d buckets of 8\n\n",
		cfg.NumDocs, len(env.Searchable), org.NumBuckets())

	// PR endpoints.
	prClient := core.NewClient(org, env.PRKey, 1)
	prClient.CryptoRand = detrand.New("longquery-pr")
	prServer := core.NewServer(env.Index, org, env.DB)

	// PIR endpoints.
	pirKey, err := pir.GenerateKey(detrand.New("longquery-key"), cfg.KeyBits)
	if err != nil {
		log.Fatal(err)
	}
	pirClient := pirsearch.NewClient(org, pirKey)
	pirClient.CryptoRand = detrand.New("longquery-pir")
	pirServer := pirsearch.NewServer(env.Index, org, env.DB)

	disk := simio.Default()
	rng := rand.New(rand.NewSource(3))

	fmt.Printf("%-10s  %22s  %22s\n", "", "PR", "PIR")
	fmt.Printf("%-10s  %10s %11s  %10s %11s\n", "query size", "traffic", "user time", "traffic", "user time")
	for _, size := range []int{4, 8, 16, 24, 40} {
		genuine := pickTerms(env, rng, size)

		// PR: embellish -> process -> post-filter.
		start := time.Now()
		q, _, err := prClient.Embellish(genuine)
		if err != nil {
			log.Fatal(err)
		}
		userPR := time.Since(start)
		resp, prStats, err := prServer.Process(q)
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		if _, err := prClient.PostFilter(resp, 20); err != nil {
			log.Fatal(err)
		}
		userPR += time.Since(start)
		prTraffic := q.Bytes() + resp.Bytes()

		// PIR: one protocol run per genuine term.
		_, pirStats, err := pirClient.Search(pirServer, genuine, 20)
		if err != nil {
			log.Fatal(err)
		}
		pirTraffic := pirStats.QueryBytes + pirStats.AnswerBytes

		fmt.Printf("%-10d  %9.1fKB %10.1fms  %9.1fKB %10.1fms\n",
			size,
			float64(prTraffic)/1024, float64(userPR.Nanoseconds())/1e6,
			float64(pirTraffic)/1024, float64(pirStats.ClientNS)/1e6)
		_ = prStats
		_ = disk
	}

	fmt.Println(`
PIR's traffic and user time grow linearly with the query size (one
protocol execution per genuine term, each returning a padded bucket
column); PR sends one ciphertext per embellished term and receives one
per candidate document, scaling far more gently — the paper's argument
for PR on long and expanded queries.`)
}

func pickTerms(env *eval.Env, rng *rand.Rand, n int) []wordnet.TermID {
	seen := map[wordnet.TermID]bool{}
	out := make([]wordnet.TermID, 0, n)
	for len(out) < n {
		t := env.Searchable[rng.Intn(len(env.Searchable))]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

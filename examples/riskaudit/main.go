// Riskaudit: quantifies how much protection the bucket organization
// actually buys on a deployment's own dictionary. It runs the paper's
// Section 5.1 metrics through Engine.PrivacyAudit, evaluates the exact
// Section 3.1 posterior-belief risk model on small query sequences, and
// contrasts with the TrackMeNot ghost-query baseline, whose covers an
// adversary strips with a simple coherence test (Section 2.1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"embellish"
	"embellish/internal/bucket"
	"embellish/internal/corpus"
	"embellish/internal/privacy"
	"embellish/internal/semdist"
	"embellish/internal/sequence"
	"embellish/internal/trackmenot"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func main() {
	// Part 1: the Figure 5/6 metrics on a deployment-scale dictionary.
	// (The hand-curated mini lexicon is too small for the statistics to
	// stabilize; a WordNet-shaped synthetic lexicon shows the real
	// effect.)
	lex := embellish.SyntheticLexicon(2500, 3)
	engine, err := embellish.NewEngine(lex, syntheticDocs(lex), opts())
	if err != nil {
		log.Fatal(err)
	}
	audit, err := engine.PrivacyAudit(500, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== bucket organization audit (lower is better) ===")
	fmt.Printf("intra-bucket specificity spread:  bucket %.2f   random %.2f\n",
		audit.SpecificitySpread, audit.RandomSpecificitySpread)
	fmt.Printf("closest-cover distance difference: bucket %.2f   random %.2f\n",
		audit.ClosestCover, audit.RandomClosestCover)
	fmt.Printf("farthest-cover distance difference: bucket %.2f   random %.2f\n",
		audit.FarthestCover, audit.RandomFarthestCover)

	// Part 2: the exact Equation 1-2 risk model on a small world. We
	// rebuild the internal organization to access the risk machinery.
	db := wordnet.MiniLexicon()
	seq := sequence.Run(db)
	org, err := bucket.Generate(seq, db.Specificity, 4, len(seq)/4)
	if err != nil {
		log.Fatal(err)
	}
	calc := semdist.New(db, 40)
	rm := privacy.NewRiskModel(org, calc)

	lookup := func(s string) wordnet.TermID {
		t, ok := db.Lookup(s)
		if !ok {
			log.Fatalf("lexicon missing %q", s)
		}
		return t
	}
	sessions := map[string][][]wordnet.TermID{
		"single query {osteosarcoma}": {{lookup("osteosarcoma")}},
		"session {osteosarcoma}, {osteosarcoma, radiation}": {
			{lookup("osteosarcoma")},
			{lookup("osteosarcoma"), lookup("radiation")},
		},
	}
	fmt.Println("\n=== exact posterior-belief risk (Equations 1-2) ===")
	for name, s := range sessions {
		res, err := rm.Evaluate(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n  candidate sequences |S| = %d, posterior on genuine = %.4f, risk = %.4f\n",
			name, res.Sequences, res.PosteriorGenuine, res.Risk)
	}
	fmt.Println("(risk 1.0 would mean the adversary's expected pick is semantically\n identical to the genuine sequence; the buckets push it well below)")

	// Part 3: the TrackMeNot baseline and why it fails (Section 2.1).
	vocab := db.AllTerms()
	gen, err := trackmenot.NewGenerator(vocab, 5)
	if err != nil {
		log.Fatal(err)
	}
	gen.GhostRate = 4
	adv := &trackmenot.Adversary{Calc: semdist.New(db, 12)}
	rng := rand.New(rand.NewSource(9))
	genuineFn := func() []wordnet.TermID {
		// A topically tight query: a term plus two semantic neighbors.
		for {
			t := vocab[rng.Intn(len(vocab))]
			syns := db.SynsetsOf(t)
			if len(syns) == 0 {
				continue
			}
			q := []wordnet.TermID{t}
			for _, rel := range db.RelatedInOrder(syns[0]) {
				ts := db.Synset(rel).Terms
				if len(ts) > 0 && ts[0] != t {
					q = append(q, ts[0])
				}
				if len(q) == 3 {
					return q
				}
			}
		}
	}
	rate := trackmenot.SuccessRate(gen, adv, 200, genuineFn)
	fmt.Println("\n=== TrackMeNot ghost-query baseline ===")
	fmt.Printf("adversary picks the most semantically coherent query per batch of %d\n", gen.GhostRate+1)
	fmt.Printf("identification rate: %.0f%%  (chance level would be %.0f%%)\n", rate*100, 100.0/float64(gen.GhostRate+1))
	fmt.Println("random ghost queries are incoherent and get ruled out — the paper's\nmotivation for decoys that form plausible topics instead")
}

func opts() embellish.Options {
	o := embellish.DefaultOptions()
	o.BucketSize = 4
	o.KeyBits = 256
	o.ScoreSpace = 10
	return o
}

// syntheticDocs generates a topical corpus over the synthetic lexicon's
// vocabulary. SyntheticLexicon is deterministic, so regenerating the
// underlying database with the same parameters yields the same lemmas.
func syntheticDocs(_ *embellish.Lexicon) []embellish.Document {
	db := wngen.Generate(wngen.ScaledConfig(2500, 3))
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = 300
	ccfg.Seed = 4
	corp := corpus.Generate(db, ccfg)
	out := make([]embellish.Document, len(corp.Docs))
	for i, d := range corp.Docs {
		out[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}
	return out
}

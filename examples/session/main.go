// Session: demonstrates the defense against RECURRING HIGH-SPECIFICITY
// terms (Section 1 of the paper). A user issues several related queries
// in one session — "osteosarcoma symptoms", then "osteosarcoma therapy".
// With random decoys the recurring term 'osteosarcoma' would stand out:
// it is far too specific to have been drawn as a decoy twice by chance.
// With bucket decoys it always travels with the SAME similarly specific
// companions, so intersecting the session's queries yields several
// diverse high-specificity terms, none more suspicious than the others.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"

	"embellish"
)

func main() {
	lex := embellish.MiniLexicon()
	engine, err := embellish.NewEngine(lex, corpusDocs(), options())
	if err != nil {
		log.Fatal(err)
	}
	client, err := engine.NewClient(nil)
	if err != nil {
		log.Fatal(err)
	}

	session := []string{
		"osteosarcoma symptoms",
		"osteosarcoma therapy",
		"osteosarcoma radiation treatment",
	}

	fmt.Println("=== the search session, as the engine observes it ===")
	var observed [][]string
	for i, q := range session {
		eq, err := client.Embellish(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: %s\n", i+1, strings.Join(eq.Terms(), ", "))
		observed = append(observed, eq.Terms())
	}

	// The adversary's session attack: intersect the observed queries.
	fmt.Println("\n=== adversary intersects the session's queries ===")
	inter := intersect(observed)
	sort.Strings(inter)
	fmt.Printf("recurring terms: %s\n", strings.Join(inter, ", "))
	fmt.Println()
	for _, term := range inter {
		if s, ok := lex.Specificity(term); ok {
			fmt.Printf("  %-28s specificity %d\n", term, s)
		}
	}
	fmt.Println(`
Every recurring term is high-specificity and each points to a different
topic — the genuine interest enjoys plausible deniability even against
the intersection attack. Compare with random decoys below.`)

	// The counterfactual: random decoys resampled per query. The genuine
	// term is the ONLY recurring one.
	fmt.Println("=== same session with naive random decoys ===")
	vocab := searchableLemmas(engine, lex)
	rng := rand.New(rand.NewSource(7))
	var naive [][]string
	for _, q := range session {
		genuine := strings.Fields(q)[0] // 'osteosarcoma'
		terms := []string{genuine}
		for len(terms) < 4 {
			terms = append(terms, vocab[rng.Intn(len(vocab))])
		}
		rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
		naive = append(naive, terms)
	}
	for i, terms := range naive {
		fmt.Printf("query %d: %s\n", i+1, strings.Join(terms, ", "))
	}
	ni := intersect(naive)
	fmt.Printf("\nintersection: %s  <- the user's interest, exposed\n", strings.Join(ni, ", "))
}

func intersect(queries [][]string) []string {
	count := map[string]int{}
	for _, q := range queries {
		seen := map[string]bool{}
		for _, t := range q {
			if !seen[t] {
				seen[t] = true
				count[t]++
			}
		}
	}
	var out []string
	for t, n := range count {
		if n == len(queries) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

func searchableLemmas(engine *embellish.Engine, lex *embellish.Lexicon) []string {
	// Collect lemmas that have a bucket (i.e. are searchable).
	var out []string
	for _, w := range []string{
		"sarcoma", "radiation", "therapy", "water", "tissue", "yeast",
		"nitrogen", "pigeon", "wine", "diver", "oxygen", "plant family",
		"chestnut", "whale", "bird", "fish", "cancer", "bone", "leaf",
		"huntsville", "smyrna", "terrorism", "flooding", "time",
	} {
		if _, ok := engine.Bucket(w); ok {
			out = append(out, w)
		}
	}
	return out
}

func options() embellish.Options {
	o := embellish.DefaultOptions()
	o.BucketSize = 4
	o.KeyBits = 256
	o.ScoreSpace = 10
	return o
}

func corpusDocs() []embellish.Document {
	themes := [][]string{
		{"osteosarcoma", "sarcoma", "radiation", "therapy", "accelerated", "oncologist", "cancer", "bone", "tumor", "symptoms", "treatment"},
		{"amaranthaceae", "water", "soaked", "tissue", "plant family", "leaf", "plant disease", "flooding"},
		{"hypocapnia", "residual", "nitrogen", "time", "diver", "oxygen", "asphyxia", "diving"},
		{"moustille", "active", "dry", "yeast", "wine", "vintner", "zymosis", "wine making"},
		{"terrorism", "abu sayyaf", "violent crime", "security", "huntsville", "smyrna"},
		{"pigeon loft", "pigeon", "gray whale", "acipenser", "brama", "bird", "fish", "chestnut"},
	}
	rng := rand.New(rand.NewSource(11))
	docs := make([]embellish.Document, 90)
	for i := range docs {
		theme := themes[i%len(themes)]
		var b strings.Builder
		for j := 0; j < 45; j++ {
			b.WriteString(theme[rng.Intn(len(theme))])
			b.WriteByte(' ')
		}
		docs[i] = embellish.Document{ID: i, Text: b.String()}
	}
	return docs
}

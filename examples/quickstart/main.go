// Quickstart: index a small corpus, embellish a query with decoys, and
// run a private search whose ranking provably matches an unprotected
// search. This is the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"embellish"
)

func main() {
	// The mini lexicon carries the paper's running-example vocabulary:
	// cancers, plant families, diving physiology, wine making, ...
	lex := embellish.MiniLexicon()

	// Any document collection works; here we synthesize one from themed
	// snippets so the corpus actually contains the lexicon's terms.
	docs := demoCorpus()

	opts := embellish.DefaultOptions()
	opts.BucketSize = 4 // each genuine term travels with 3 decoys
	opts.KeyBits = 256  // demo-sized keys; use >= 512 in production
	opts.ScoreSpace = 10
	// Keep the document BYTES too, laid out into PIR blocks, so the
	// winners can be fetched privately after the ranking (step 4).
	opts.StoreDocuments = true
	opts.BlockSize = 256
	opts.RetrievalKeyBits = 96 // demo-sized PIR modulus; >= 1024 in production

	engine, err := embellish.NewEngine(lex, docs, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine ready: %d documents, %d searchable terms, %d buckets\n\n",
		engine.NumDocs(), engine.NumSearchableTerms(), engine.NumBuckets())

	// Each client generates its own key pair; the engine never sees it.
	client, err := engine.NewClient(nil)
	if err != nil {
		log.Fatal(err)
	}

	query := "osteosarcoma radiation therapy"
	fmt.Printf("user query: %q\n\n", query)

	// Step 1 — Algorithm 3: every genuine term pulls in its whole host
	// bucket as decoys, flags are encrypted, the result is permuted.
	eq, err := client.Embellish(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("what the search engine observes:")
	fmt.Printf("  %s\n\n", strings.Join(eq.Terms(), ", "))

	// The decoys are not random: they match the genuine terms in
	// specificity and point to plausible alternative topics.
	if decoys, ok := engine.Bucket("osteosarcoma"); ok {
		fmt.Printf("host bucket of 'osteosarcoma': %s\n\n", strings.Join(decoys, ", "))
	}

	// Step 2 — Algorithm 4: the engine accumulates encrypted scores over
	// ALL terms; decoy flags encrypt zero, so decoys never perturb them.
	resp, err := engine.Process(eq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %d postings scanned, %d candidates, %.2f ms simulated I/O\n\n",
		resp.Stats.PostingsScanned, resp.Stats.Candidates, resp.Stats.SimulatedIOms)

	// Step 3 — Algorithm 5: decrypt, rank, keep the top k.
	results, err := client.Decode(resp, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top documents (private search):")
	for i, r := range results {
		fmt.Printf("  %d. doc %d  score %d\n", i+1, r.DocID, r.Score)
	}

	// Claim 1: identical to the unprotected ranking.
	plain, err := engine.PlaintextSearch(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range plain {
		if results[i].DocID != plain[i].DocID {
			same = false
		}
	}
	fmt.Printf("\nranking matches unprotected search: %v\n", same)

	// Step 4 — private retrieval: fetch the winning document through
	// Kushilevitz-Ostrovsky PIR. Downloading it in the clear would tell
	// the server which document won; the PIR fetch reveals only how
	// many blocks were transferred.
	winner := results[0].DocID
	fetched, stats, err := client.FetchDocuments([]int{winner})
	if err != nil {
		log.Fatal(err)
	}
	preview := string(fetched[0])
	if len(preview) > 60 {
		preview = preview[:60] + "..."
	}
	fmt.Printf("\nPIR-fetched doc %d (%d bytes in %d protocol runs): %s\n",
		winner, len(fetched[0]), stats.Runs, preview)
	fmt.Println("the server never learned which document was fetched")
}

// demoCorpus fabricates themed articles over the mini lexicon's
// vocabulary (bone cancer, plant disease, diving, wine making, ...).
func demoCorpus() []embellish.Document {
	themes := [][]string{
		{"osteosarcoma", "sarcoma", "radiation", "therapy", "accelerated", "oncologist", "cancer", "bone", "tumor"},
		{"amaranthaceae", "water", "soaked", "tissue", "plant family", "leaf", "plant disease", "flooding"},
		{"hypocapnia", "residual", "nitrogen", "time", "diver", "oxygen", "asphyxia", "diving"},
		{"moustille", "active", "dry", "yeast", "wine", "vintner", "zymosis", "wine making"},
		{"terrorism", "abu sayyaf", "violent crime", "security", "huntsville", "smyrna"},
		{"pigeon loft", "pigeon", "gray whale", "acipenser", "brama", "bird", "fish"},
	}
	rng := rand.New(rand.NewSource(42))
	docs := make([]embellish.Document, 90)
	for i := range docs {
		theme := themes[i%len(themes)]
		var b strings.Builder
		for j := 0; j < 40; j++ {
			b.WriteString(theme[rng.Intn(len(theme))])
			b.WriteByte(' ')
		}
		// Mix in cross-theme noise so rankings are nontrivial.
		other := themes[rng.Intn(len(themes))]
		for j := 0; j < 10; j++ {
			b.WriteString(other[rng.Intn(len(other))])
			b.WriteByte(' ')
		}
		docs[i] = embellish.Document{ID: i, Text: b.String()}
	}
	return docs
}

package embellish

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"embellish/internal/wal"
)

// Crash-safe durability: since the index mutates online (AddDocuments /
// DeleteDocuments), a crash between Save calls would silently lose
// every accepted update. A durable engine therefore keeps a directory
// of full checkpoints plus a write-ahead log (internal/wal): every
// admin mutation is journaled under the write lock BEFORE the
// index/store swap is published, and Checkpoint periodically folds the
// log into a fresh snapshot, rotating to a new log segment and
// retiring everything the snapshot covers. OpenDurable recovers the
// newest loadable checkpoint, replays the log suffix (truncating a
// torn tail cleanly), and resumes journaling where the crash stopped.
//
// The recovery invariant: the recovered engine is exactly the state
// after some PREFIX of the journaled operation sequence — the
// operations whose records fully reached the disk — never a torn
// half-state. With FsyncEveryRecord that prefix includes every
// operation that was acknowledged to a caller.

// FsyncPolicy selects when journal records reach stable storage; see
// the constants for the guarantee each buys.
type FsyncPolicy int

const (
	// FsyncEveryRecord syncs the log after every journaled operation:
	// an acknowledged update survives any crash. The default.
	FsyncEveryRecord FsyncPolicy = iota
	// FsyncInterval syncs on a background interval
	// (Durability.FsyncEvery): a crash loses at most the last
	// interval's updates, in exchange for ingest at nearly in-memory
	// speed.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system: updates
	// survive process crashes (the page cache persists) but not power
	// or kernel failures.
	FsyncNever
)

const (
	// DefaultCheckpointOps is the automatic-checkpoint threshold when
	// Durability.CheckpointEveryOps is zero.
	DefaultCheckpointOps = 256
	// DefaultCheckpointBytes is the automatic-checkpoint threshold when
	// Durability.CheckpointEveryBytes is zero.
	DefaultCheckpointBytes = 64 << 20
)

// Durability configures a crash-safe engine (Options.Durability, or
// EnableDurability on an existing engine). The zero value — an empty
// Dir — disables durability.
type Durability struct {
	// Dir is the durable state directory: checkpoint files plus
	// write-ahead log segments. Created if missing.
	Dir string
	// Fsync is the journal flush policy; the zero value is
	// FsyncEveryRecord.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period; 0 selects
	// wal.DefaultSyncInterval (100ms).
	FsyncEvery time.Duration
	// CheckpointEveryOps triggers an automatic background checkpoint
	// (on engines driven through a NetServer) after this many journaled
	// operations: 0 selects DefaultCheckpointOps, -1 disables the
	// trigger. Checkpoints bound both recovery time and log growth.
	CheckpointEveryOps int
	// CheckpointEveryBytes triggers on journal bytes instead: 0 selects
	// DefaultCheckpointBytes, -1 disables.
	CheckpointEveryBytes int64
}

// validate rejects unusable durability configurations. An empty Dir is
// valid (durability off) but the remaining knobs are range-checked
// regardless, so OpenDurable can carry policy in an Options value whose
// Dir is supplied separately.
func (d Durability) validate() error {
	if d.Fsync < FsyncEveryRecord || d.Fsync > FsyncNever {
		return fmt.Errorf("embellish: unknown Durability.Fsync policy %d", d.Fsync)
	}
	if d.FsyncEvery < 0 {
		return fmt.Errorf("embellish: Durability.FsyncEvery %v is negative", d.FsyncEvery)
	}
	if d.CheckpointEveryOps < -1 {
		return fmt.Errorf("embellish: Durability.CheckpointEveryOps %d out of range; -1 disables, 0 selects the default", d.CheckpointEveryOps)
	}
	if d.CheckpointEveryBytes < -1 {
		return fmt.Errorf("embellish: Durability.CheckpointEveryBytes %d out of range; -1 disables, 0 selects the default", d.CheckpointEveryBytes)
	}
	return nil
}

// syncPolicy maps the facade policy onto the wal package's.
func (d Durability) syncPolicy() wal.SyncPolicy {
	switch d.Fsync {
	case FsyncInterval:
		return wal.SyncInterval
	case FsyncNever:
		return wal.SyncNever
	}
	return wal.SyncEveryRecord
}

// opsLimit resolves CheckpointEveryOps (0 default, -1 disabled -> 0).
func (d Durability) opsLimit() int64 {
	switch {
	case d.CheckpointEveryOps == 0:
		return DefaultCheckpointOps
	case d.CheckpointEveryOps < 0:
		return 0
	}
	return int64(d.CheckpointEveryOps)
}

// bytesLimit resolves CheckpointEveryBytes likewise.
func (d Durability) bytesLimit() int64 {
	switch {
	case d.CheckpointEveryBytes == 0:
		return DefaultCheckpointBytes
	case d.CheckpointEveryBytes < 0:
		return 0
	}
	return d.CheckpointEveryBytes
}

// walState is a durable engine's journaling state. The non-atomic
// fields are guarded by Engine.updateMu, like the rest of the write
// path; the counters are atomics so checkpoint triggers can read them
// from any goroutine.
type walState struct {
	cfg Durability
	w   *wal.Writer
	// seq is the last journaled operation; checkpoint files and log
	// segments are named after the seq they cover/follow.
	seq uint64
	// logStart is the current log segment's name; lastCkpt the newest
	// durable checkpoint's.
	logStart uint64
	lastCkpt uint64
	// lastCkptAt is when the newest checkpoint landed — wall-clock
	// feedstock for the metrics surface's checkpoint age. On recovery
	// it comes from the checkpoint file's mtime.
	lastCkptAt time.Time
	closed     bool
	// asyncErr records the last background-checkpoint failure
	// (surfaced via WALStatus; the next synchronous Checkpoint or
	// Close also reports errors directly).
	asyncErr error

	opsSinceCkpt   atomic.Int64
	bytesSinceCkpt atomic.Int64
	flight         atomic.Bool
}

// errNotDurable is returned by durability entry points on engines
// without a configured Durability.
var errNotDurable = errors.New("embellish: engine has no durability directory (Options.Durability or EnableDurability)")

// errEngineClosed is returned by the write path after Close.
var errEngineClosed = errors.New("embellish: engine is closed")

// HasDurableState reports whether dir holds recoverable durable engine
// state (at least one checkpoint file). A missing directory is simply
// false.
func HasDurableState(dir string) (bool, error) {
	st, err := wal.Scan(dir)
	if err != nil {
		return false, err
	}
	return len(st.Checkpoints) > 0, nil
}

// EnableDurability attaches crash-safe durability to an engine built
// in memory (NewEngine with Options.Durability does this implicitly)
// or loaded from a plain engine file: it writes the initial checkpoint
// — the engine's current state, sequence number 0 — and opens the
// first log segment. The directory must not already hold durable
// state; recover that with OpenDurable instead.
func (e *Engine) EnableDurability(d Durability) error {
	if d.Dir == "" {
		return errors.New("embellish: Durability.Dir is required")
	}
	if err := d.validate(); err != nil {
		return err
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	if e.wal != nil {
		return errors.New("embellish: engine is already durable")
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("embellish: durability dir: %w", err)
	}
	st, err := wal.Scan(d.Dir)
	if err != nil {
		return fmt.Errorf("embellish: durability dir: %w", err)
	}
	if len(st.Checkpoints) > 0 || len(st.Logs) > 0 {
		return fmt.Errorf("embellish: %s already holds durable state; recover it with OpenDurable", d.Dir)
	}
	// A crash loop during THIS initialization (killed inside the
	// checkpoint-0 write, before any rename lands) re-enters here each
	// boot; sweep its stranded temp files like OpenDurable does, or
	// they would accumulate forever — nothing else ever touches *.tmp.
	sweepCheckpointTmp(d.Dir)
	ws := &walState{cfg: d}
	if err := e.writeCheckpointFile(ws, e.captureStateLocked()); err != nil {
		return err
	}
	ws.lastCkptAt = time.Now()
	w, err := wal.Create(wal.LogPath(d.Dir, 0), 0, d.syncPolicy(), d.FsyncEvery)
	if err == nil {
		if _, err = w.Append(&wal.Record{Op: wal.OpCheckpoint, Seq: 0}); err != nil {
			w.Close()
			os.Remove(wal.LogPath(d.Dir, 0))
		}
	}
	if err != nil {
		// Unwind the checkpoint too, so a retry does not find a dir
		// that "already holds durable state".
		os.Remove(wal.CheckpointPath(d.Dir, 0))
		return fmt.Errorf("embellish: opening journal: %w", err)
	}
	ws.w = w
	e.wal = ws
	e.opts.Durability = d
	return nil
}

// OpenDurable recovers a durable engine from dir: it loads the newest
// loadable checkpoint, replays every log segment at or after it in
// sequence order — stopping cleanly at a torn tail, erroring on any
// gap or in-record corruption — and resumes journaling into the
// recovered log. The recovered state is always the state after some
// prefix of the journaled operations (see WALStatus().Seq for which).
//
// opts supplies only the runtime Durability policy (fsync mode,
// checkpoint thresholds; opts.Durability.Dir is ignored in favor of
// dir). Everything indexed — options, lexicon, organization, segments,
// store — comes from the checkpoint file, exactly as with LoadEngine;
// runtime execution knobs are reapplied afterwards with the Configure*
// methods as usual.
func OpenDurable(dir string, opts Options) (*Engine, error) {
	d := opts.Durability
	d.Dir = dir
	if err := d.validate(); err != nil {
		return nil, err
	}
	st, err := wal.Scan(dir)
	if err != nil {
		return nil, fmt.Errorf("embellish: durability dir: %w", err)
	}
	if len(st.Checkpoints) == 0 {
		return nil, fmt.Errorf("embellish: %s holds no durable engine state (create it with NewEngine and Options.Durability)", dir)
	}
	sweepCheckpointTmp(dir)
	// Newest checkpoint first; fall back across corrupt ones. A torn
	// in-flight checkpoint never appears here — checkpoints are written
	// to a temp file and renamed into place only when complete.
	var e *Engine
	var ckptSeq uint64
	var loadErr error
	for i := len(st.Checkpoints) - 1; i >= 0; i-- {
		seq := st.Checkpoints[i]
		f, err := os.Open(wal.CheckpointPath(dir, seq))
		if err != nil {
			loadErr = err
			continue
		}
		e, err = LoadEngine(f)
		f.Close()
		if err == nil {
			ckptSeq = seq
			break
		}
		e, loadErr = nil, fmt.Errorf("checkpoint %d: %w", seq, err)
	}
	if e == nil {
		return nil, fmt.Errorf("embellish: no loadable checkpoint in %s: %w", dir, loadErr)
	}

	// Replay the log chain. Normally one segment follows the newest
	// checkpoint; a crash inside Checkpoint (rotated, snapshot not yet
	// durable) leaves two, chained by their sequence numbers.
	lastSeq := ckptSeq
	var lastLog uint64
	var lastRes wal.ReplayResult
	var tailBytes int64
	hasLog := false
	for _, ls := range st.Logs {
		if ls < ckptSeq {
			continue // fully covered by the checkpoint; awaiting retirement
		}
		if ls > lastSeq {
			return nil, fmt.Errorf("embellish: log segment %s starts after operation %d with operations %d..%d missing",
				wal.LogPath(dir, ls), lastSeq, lastSeq+1, ls)
		}
		if hasLog && lastRes.Torn {
			// A torn tail is a crash signature and can only be the END of
			// the journal; a later segment contradicts it.
			return nil, fmt.Errorf("embellish: log segment %s is torn mid-chain", wal.LogPath(dir, lastLog))
		}
		res, err := wal.ReplayLog(wal.LogPath(dir, ls), ls, func(rec *wal.Record) error {
			return e.applyRecord(rec, &lastSeq)
		})
		if err != nil {
			return nil, fmt.Errorf("embellish: replaying %s: %w", wal.LogPath(dir, ls), err)
		}
		lastLog, lastRes, hasLog = ls, res, true
		if res.GoodBytes > int64(wal.HeaderSize) {
			tailBytes += res.GoodBytes - int64(wal.HeaderSize)
		}
	}

	ws := &walState{cfg: d, seq: lastSeq, lastCkpt: ckptSeq}
	// The recovered checkpoint's age survives the restart through its
	// file mtime; a stat failure leaves the zero time ("age unknown").
	if fi, err := os.Stat(wal.CheckpointPath(dir, ckptSeq)); err == nil {
		ws.lastCkptAt = fi.ModTime()
	}
	// Seed the automatic-checkpoint counters with the replayed tail:
	// a crash-loop of short-lived boots must still cross the
	// thresholds, or the log chain (and every restart's replay) would
	// grow without bound — the exact growth the thresholds exist to
	// cap. WALStatus likewise reports the true replay debt.
	ws.opsSinceCkpt.Store(int64(lastSeq - ckptSeq))
	ws.bytesSinceCkpt.Store(tailBytes)
	if hasLog {
		// Resume the recovered segment, truncating any torn tail so a
		// lost append can never precede new records.
		ws.w, err = wal.Open(wal.LogPath(dir, lastLog), lastLog, lastRes.GoodBytes, d.syncPolicy(), d.FsyncEvery)
		ws.logStart = lastLog
	} else {
		// The crash landed between the checkpoint rename and the log
		// creation: start the segment the checkpoint expects.
		ws.w, err = wal.Create(wal.LogPath(dir, ckptSeq), ckptSeq, d.syncPolicy(), d.FsyncEvery)
		if err == nil {
			if _, err = ws.w.Append(&wal.Record{Op: wal.OpCheckpoint, Seq: ckptSeq}); err != nil {
				// Unwind like every other half-born-segment path: leave
				// no stray file (or interval flusher) behind a failure.
				ws.w.Close()
				os.Remove(wal.LogPath(dir, ckptSeq))
			}
		}
		ws.logStart = ckptSeq
	}
	if err != nil {
		return nil, fmt.Errorf("embellish: reopening journal: %w", err)
	}
	e.wal = ws
	e.opts.Durability = d
	return e, nil
}

// applyRecord replays one journal record onto the recovering engine,
// enforcing sequence continuity: operations must arrive exactly in
// order, records already covered by the checkpoint are skipped, and a
// checkpoint marker may never claim a sequence the replay has not
// reached.
func (e *Engine) applyRecord(rec *wal.Record, lastSeq *uint64) error {
	switch rec.Op {
	case wal.OpCheckpoint:
		if rec.Seq > *lastSeq {
			return fmt.Errorf("checkpoint marker %d beyond replayed operation %d", rec.Seq, *lastSeq)
		}
		return nil
	case wal.OpAddDocs, wal.OpDeleteDocs:
		if rec.Seq <= *lastSeq {
			return nil // already folded into the checkpoint
		}
		if rec.Seq != *lastSeq+1 {
			return fmt.Errorf("journal gap: operation %d follows %d", rec.Seq, *lastSeq)
		}
		var err error
		if rec.Op == wal.OpAddDocs {
			docs := make([]Document, len(rec.Docs))
			for i, d := range rec.Docs {
				docs[i] = Document{ID: int(d.ID), Text: string(d.Text)}
			}
			err = e.addDocuments(docs, false)
		} else {
			ids := make([]int, len(rec.IDs))
			for i, id := range rec.IDs {
				ids[i] = int(id)
			}
			err = e.deleteDocuments(ids, false)
		}
		if err != nil {
			return fmt.Errorf("operation %d: %w", rec.Seq, err)
		}
		*lastSeq = rec.Seq
		return nil
	}
	return fmt.Errorf("unknown journal op %d", rec.Op)
}

// journalLocked appends one operation record to the write-ahead log.
// The caller holds updateMu and has fully validated the operation —
// after this returns nil the apply must succeed, or recovery would
// replay an operation the live engine rejected. Called BEFORE the
// index/store swap: an operation is acknowledged only once journaled.
func (e *Engine) journalLocked(rec *wal.Record) error {
	if e.wal == nil {
		return nil
	}
	if e.wal.closed {
		return errEngineClosed
	}
	rec.Seq = e.wal.seq + 1
	n, err := e.wal.w.Append(rec)
	if err != nil {
		return fmt.Errorf("embellish: journaling update: %w", err)
	}
	e.wal.seq++
	e.wal.opsSinceCkpt.Add(1)
	e.wal.bytesSinceCkpt.Add(int64(n))
	return nil
}

// Checkpoint folds the journal into a fresh durable snapshot: it
// captures the index, the document store and the journal position
// under ONE hold of the write lock (so the snapshot and its sequence
// number can never disagree — a checkpoint neither double-applies nor
// drops a journaled batch), rotates the log so later operations land
// in a new segment, writes the snapshot to a temporary file, renames
// it into place, and retires every file the new checkpoint covers.
//
// Writers are blocked only for the capture and rotation (microseconds,
// not the snapshot write); searches are never blocked. A crash at ANY
// point leaves a recoverable directory: until the rename lands, the
// previous checkpoint plus the full log chain reconstruct the same
// state.
func (e *Engine) Checkpoint() error {
	e.updateMu.Lock()
	ws := e.wal
	if ws == nil {
		e.updateMu.Unlock()
		return errNotDurable
	}
	if ws.closed {
		e.updateMu.Unlock()
		return errEngineClosed
	}
	st := e.captureStateLocked()
	if st.seq == ws.lastCkpt && st.seq == ws.logStart {
		e.updateMu.Unlock()
		return nil // nothing journaled since the last checkpoint
	}
	var old *wal.Writer
	var prevOps, prevBytes int64
	rotated := false
	if st.seq != ws.logStart {
		// The outgoing segment must be durable BEFORE its successor
		// exists: under FsyncInterval/FsyncNever a power cut between
		// the two would otherwise tear the old segment's tail while
		// the new one survives — a mid-chain tear recovery rightly
		// refuses, turning "lose at most the last interval" into "lose
		// the directory". Syncing first keeps tears confined to the
		// journal's true tail.
		if err := ws.w.Sync(); err != nil {
			e.updateMu.Unlock()
			return fmt.Errorf("embellish: syncing journal before rotation: %w", err)
		}
		path := wal.LogPath(ws.cfg.Dir, st.seq)
		nw, err := wal.Create(path, st.seq, ws.cfg.syncPolicy(), ws.cfg.FsyncEvery)
		if err == nil {
			if _, err = nw.Append(&wal.Record{Op: wal.OpCheckpoint, Seq: st.seq}); err != nil {
				// Don't strand a half-born segment: a retry's Create
				// would otherwise collide with it forever.
				nw.Close()
				os.Remove(path)
			}
		}
		if err != nil {
			e.updateMu.Unlock()
			return fmt.Errorf("embellish: rotating journal: %w", err)
		}
		old = ws.w
		ws.w = nw
		ws.logStart = st.seq
		prevOps = ws.opsSinceCkpt.Swap(0)
		prevBytes = ws.bytesSinceCkpt.Swap(0)
		rotated = true
	} else {
		// No rotation (the log already starts at st.seq — e.g. recovery
		// reopened a rotated-but-never-snapshotted segment), yet the
		// counters may still carry the replay debt up to st.seq. Read
		// it under the same hold as the capture; it is settled below
		// only once the snapshot is durable.
		prevOps = ws.opsSinceCkpt.Load()
		prevBytes = ws.bytesSinceCkpt.Load()
	}
	e.updateMu.Unlock()

	// The rotation already synced the outgoing segment under the lock;
	// Close just releases it. If the snapshot write below fails, the
	// old chain remains the state of record, so its close error joins
	// that failure — but once the snapshot lands, the retired
	// segment's fate is irrelevant to durability and must not turn a
	// completed checkpoint into a reported failure.
	var closeErr error
	if old != nil {
		closeErr = old.Close()
	}
	if err := e.writeCheckpointFile(ws, st); err != nil {
		if rotated {
			// The rotation's counter reset presumed the snapshot would
			// land; put the debt back so the automatic trigger retries
			// instead of waiting out a whole fresh threshold while the
			// unpaid log chain keeps growing. (Add, not Store: ops may
			// have accrued since the reset.)
			ws.opsSinceCkpt.Add(prevOps)
			ws.bytesSinceCkpt.Add(prevBytes)
		}
		return errors.Join(err, closeErr)
	}
	e.updateMu.Lock()
	advanced := st.seq > ws.lastCkpt
	if advanced {
		ws.lastCkpt = st.seq
	}
	// Even a same-sequence re-checkpoint refreshes the snapshot file,
	// so the metrics-facing age resets either way.
	ws.lastCkptAt = time.Now()
	// A completed checkpoint clears any stale background failure:
	// WALStatus should report current health, not history.
	ws.asyncErr = nil
	e.updateMu.Unlock()
	if !rotated && advanced {
		// Settle the pre-capture debt now that the snapshot covers it;
		// operations journaled since the capture keep their counts.
		// (The rotated path settled by Swap(0) at rotation; the
		// `advanced` gate keeps two concurrent checkpoints of the same
		// sequence from each subtracting the same debt.)
		ws.opsSinceCkpt.Add(-prevOps)
		ws.bytesSinceCkpt.Add(-prevBytes)
	}
	e.retire(ws.cfg.Dir, st.seq)
	return nil
}

// writeCheckpointFile writes one captured state as checkpoint seq,
// atomically: temp file, fsync, rename, directory fsync. Readers of
// the directory therefore only ever see complete checkpoints.
func (e *Engine) writeCheckpointFile(ws *walState, st engineState) error {
	f, err := os.CreateTemp(ws.cfg.Dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("embellish: checkpoint: %w", err)
	}
	tmp := f.Name()
	err = e.writeState(f, engineVersion, st)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, wal.CheckpointPath(ws.cfg.Dir, st.seq))
	}
	if err == nil {
		err = wal.SyncDir(ws.cfg.Dir)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("embellish: checkpoint: %w", err)
	}
	return nil
}

// sweepCheckpointTmp removes snapshot temp files stranded by a crash
// mid-checkpoint. Only called while no writer can be racing (recovery
// and first-time initialization, both before the engine serves): a
// live engine's in-flight temp file must never be yanked from under
// its rename.
func sweepCheckpointTmp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if name := ent.Name(); !ent.IsDir() && strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// retire removes checkpoints and log segments fully covered by the
// checkpoint at seq. Best effort: leftovers are ignored by recovery
// and retired again by the next checkpoint.
func (e *Engine) retire(dir string, seq uint64) {
	st, err := wal.Scan(dir)
	if err != nil {
		return
	}
	for _, c := range st.Checkpoints {
		if c < seq {
			os.Remove(wal.CheckpointPath(dir, c))
		}
	}
	for _, l := range st.Logs {
		if l < seq {
			os.Remove(wal.LogPath(dir, l))
		}
	}
}

// checkpointDue reports whether the automatic-checkpoint thresholds
// are exceeded. Readable from any goroutine.
func (ws *walState) checkpointDue() bool {
	if ops := ws.cfg.opsLimit(); ops > 0 && ws.opsSinceCkpt.Load() >= ops {
		return true
	}
	if bytes := ws.cfg.bytesLimit(); bytes > 0 && ws.bytesSinceCkpt.Load() >= bytes {
		return true
	}
	return false
}

// maybeCheckpointAsync starts one background checkpoint when the
// thresholds are exceeded and none is already running. NetServers call
// this after every applied admin operation; failures are sticky in
// WALStatus and also surface from the next synchronous Checkpoint.
func (e *Engine) maybeCheckpointAsync() {
	e.updateMu.Lock()
	ws := e.wal
	e.updateMu.Unlock()
	if ws == nil || !ws.checkpointDue() || !ws.flight.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer ws.flight.Store(false)
		// Loop until the thresholds are satisfied: operations journaled
		// WHILE a checkpoint runs found the flight flag held and dropped
		// their trigger, so the worker re-checks before retiring.
		for {
			if err := e.Checkpoint(); err != nil {
				e.updateMu.Lock()
				ws.asyncErr = err
				e.updateMu.Unlock()
				return
			}
			if !ws.checkpointDue() {
				return
			}
		}
	}()
}

// checkpointIfDirty checkpoints when operations were journaled since
// the last checkpoint — the graceful-shutdown hook.
func (e *Engine) checkpointIfDirty() error {
	e.updateMu.Lock()
	ws := e.wal
	dirty := ws != nil && !ws.closed && (ws.seq != ws.lastCkpt || ws.seq != ws.logStart)
	e.updateMu.Unlock()
	if !dirty {
		return nil
	}
	return e.Checkpoint()
}

// Durable reports whether the engine journals its updates to a
// write-ahead log.
func (e *Engine) Durable() bool {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	return e.wal != nil
}

// WALStatus describes a durable engine's journal position.
type WALStatus struct {
	// Dir is the durable state directory.
	Dir string
	// Seq is the last journaled operation; CheckpointSeq the newest
	// durable checkpoint. Recovery replays the difference.
	Seq, CheckpointSeq uint64
	// OpsSinceCheckpoint and BytesSinceCheckpoint are the automatic-
	// checkpoint trigger counters.
	OpsSinceCheckpoint, BytesSinceCheckpoint int64
	// LastAsyncError is the most recent background-checkpoint failure,
	// empty when healthy.
	LastAsyncError string
	// LastCheckpointAt is when the newest checkpoint landed (the file's
	// mtime after recovery); the zero time means unknown.
	LastCheckpointAt time.Time
}

// WALStatus reports the durable engine's journal position; ok is false
// on engines without durability.
func (e *Engine) WALStatus() (WALStatus, bool) {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	ws := e.wal
	if ws == nil {
		return WALStatus{}, false
	}
	st := WALStatus{
		Dir:                  ws.cfg.Dir,
		Seq:                  ws.seq,
		CheckpointSeq:        ws.lastCkpt,
		OpsSinceCheckpoint:   ws.opsSinceCkpt.Load(),
		BytesSinceCheckpoint: ws.bytesSinceCkpt.Load(),
		LastCheckpointAt:     ws.lastCkptAt,
	}
	if ws.asyncErr != nil {
		st.LastAsyncError = ws.asyncErr.Error()
	}
	return st, true
}

// Close releases the durable engine's journal: buffered records are
// flushed and the log file closed. It does NOT checkpoint — recovery
// replays the log — and it does not affect searches; only later
// updates fail. A no-op on engines without durability.
func (e *Engine) Close() error {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	if e.wal == nil || e.wal.closed {
		return nil
	}
	e.wal.closed = true
	return e.wal.w.Close()
}

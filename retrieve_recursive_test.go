package embellish

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"embellish/internal/detrand"
)

// fetchAll fetches every live document id in the store world.
func fetchAllIDs(nDocs int) []int {
	ids := make([]int, nDocs)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// TestFetchDocumentsRecursiveLocal proves the recursive fetch path on
// the in-process transport: byte-identical documents to the flat path
// on the same corpus, with strictly fewer uploaded query bytes and the
// wider recursive answers accounted.
func TestFetchDocumentsRecursiveLocal(t *testing.T) {
	_, c, texts := storeWorld(t, 40, 32)
	ids := fetchAllIDs(40)

	flat, flatSt, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFetchRecursive(true)
	rec, recSt, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if !bytes.Equal(flat[i], rec[i]) {
			t.Fatalf("doc %d: recursive fetch %q != flat fetch %q", id, rec[i], flat[i])
		}
		if string(rec[i]) != texts[id] {
			t.Fatalf("doc %d: fetched %q, want %q", id, rec[i], texts[id])
		}
	}
	if recSt.Runs != flatSt.Runs {
		t.Fatalf("recursive ran %d executions, flat ran %d", recSt.Runs, flatSt.Runs)
	}
	// The whole point of the recursion: per-query upload drops from n
	// to <= 3*ceil(sqrt(n)) group elements.
	if recSt.QueryBytes >= flatSt.QueryBytes {
		t.Fatalf("recursive uploaded %d query bytes, flat %d — no upload win", recSt.QueryBytes, flatSt.QueryBytes)
	}
	// The trade: recursive answers are 8*modBytes times wider.
	if recSt.AnswerBytes <= flatSt.AnswerBytes {
		t.Fatalf("recursive answers %d bytes, flat %d — accounting broken", recSt.AnswerBytes, flatSt.AnswerBytes)
	}
}

// TestFetchRecursiveKnobLocal pins the local handshake: the engine's
// PIRRecursive knob gates a recursive-opted client (silently flat at
// -1), and ConfigurePIRRecursive flips it live.
func TestFetchRecursiveKnobLocal(t *testing.T) {
	_, c, _ := storeWorld(t, 30, 32)
	e := c.engine
	ids := fetchAllIDs(8)
	c.SetFetchRecursive(true)

	_, recSt, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ConfigurePIRRecursive(-1); err != nil {
		t.Fatal(err)
	}
	got, flatSt, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("fetched %d documents, want %d", len(got), len(ids))
	}
	// Knob off: the same opted-in client silently served flat, visible
	// in the upload accounting (flat queries are wider).
	if flatSt.QueryBytes <= recSt.QueryBytes {
		t.Fatalf("knob -1 uploaded %d bytes, recursive run uploaded %d — still recursive?", flatSt.QueryBytes, recSt.QueryBytes)
	}
	if err := e.ConfigurePIRRecursive(1); err != nil {
		t.Fatal(err)
	}
	_, backSt, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatal(err)
	}
	if backSt.QueryBytes != recSt.QueryBytes {
		t.Fatalf("knob restored: uploaded %d bytes, want %d", backSt.QueryBytes, recSt.QueryBytes)
	}
	if err := e.ConfigurePIRRecursive(2); err == nil {
		t.Fatal("ConfigurePIRRecursive(2) accepted")
	}
}

// TestFetchDocumentsRecursiveRemote drives type-22 frames over TCP:
// byte-identity against direct reads, upload accounting below the flat
// path, and the server's recursive counters tracking the executions.
func TestFetchDocumentsRecursiveRemote(t *testing.T) {
	e, _, texts := storeWorld(t, 30, 32)
	srv := e.NewNetServer(ServeConfig{AllowRetrieval: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.NewClient(detrand.New("recursive-remote"))
	if err != nil {
		t.Fatal(err)
	}
	c.SetFetchRecursive(true)
	ids := fetchAllIDs(20)
	got, st, err := c.FetchDocumentsRemote(conn, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if string(got[i]) != texts[id] {
			t.Fatalf("doc %d: fetched %q, want %q", id, got[i], texts[id])
		}
	}
	// Accounting sanity: the recursive frames really went over the wire.
	flatClient, err := e.NewClient(detrand.New("flat-remote"))
	if err != nil {
		t.Fatal(err)
	}
	_, flatSt, err := flatClient.FetchDocumentsRemote(conn, ids)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueryBytes >= flatSt.QueryBytes {
		t.Fatalf("recursive uploaded %d query bytes, flat %d", st.QueryBytes, flatSt.QueryBytes)
	}
	conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	stats := srv.Stats()
	if stats.PIRRecursiveQueries != int64(st.Runs) {
		t.Fatalf("server counted %d recursive queries, client ran %d", stats.PIRRecursiveQueries, st.Runs)
	}
	if stats.PIRRecursivePartials != 0 {
		t.Fatalf("non-cluster server counted %d recursive partials", stats.PIRRecursivePartials)
	}
	if stats.Retrievals != int64(st.Runs+flatSt.Runs) {
		t.Fatalf("server counted %d retrievals, clients ran %d", stats.Retrievals, st.Runs+flatSt.Runs)
	}
}

// TestFetchRecursiveFallsBackToFlat: a server whose PIRRecursive knob
// is -1 refuses type 22 with the frozen unknown-type prefix, and the
// opted-in client transparently retries the whole fetch flat on the
// same connection — indistinguishable from talking to an old server.
func TestFetchRecursiveFallsBackToFlat(t *testing.T) {
	e, _, texts := storeWorld(t, 20, 32)
	addr := startRetrievalServer(t, e, ServeConfig{AllowRetrieval: true, PIRRecursive: -1})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := e.NewClient(detrand.New("fallback-client"))
	if err != nil {
		t.Fatal(err)
	}
	c.SetFetchRecursive(true)
	ids := fetchAllIDs(12)
	got, st, err := c.FetchDocumentsRemote(conn, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if string(got[i]) != texts[id] {
			t.Fatalf("doc %d: fetched %q, want %q", id, got[i], texts[id])
		}
	}
	if st.Runs == 0 {
		t.Fatal("no PIR executions accounted")
	}
	// The connection survived the refusal and the retry: fetch again.
	if _, _, err := c.FetchDocumentsRemote(conn, ids[:3]); err != nil {
		t.Fatalf("fetch after fallback: %v", err)
	}
}

// TestFetchRecursiveRemoteCancellation: a deadline expiring mid-fetch
// surfaces ctx.Err() through the recursive path without wedging the
// client or the server.
func TestFetchRecursiveRemoteCancellation(t *testing.T) {
	e, _, _ := storeWorld(t, 30, 32)
	addr := startRetrievalServer(t, e, ServeConfig{AllowRetrieval: true})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := e.NewClient(detrand.New("cancel-client"))
	if err != nil {
		t.Fatal(err)
	}
	c.SetFetchRecursive(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.FetchDocumentsRemoteContext(ctx, conn, fetchAllIDs(20)); err == nil {
		t.Fatal("cancelled recursive fetch succeeded")
	}
}

package embellish_test

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"embellish"
)

// exampleDocs is a tiny fixed corpus over the mini lexicon's
// vocabulary — small enough that every example below runs in
// milliseconds, rich enough that rankings are nontrivial.
func exampleDocs() []embellish.Document {
	texts := []string{
		"osteosarcoma radiation therapy osteosarcoma oncologist bone cancer",
		"amaranthaceae plant disease flooding leaf amaranthaceae",
		"hypocapnia diver oxygen diving asphyxia hypocapnia diver",
		"vintner wine zymosis vintner wine making yeast",
		"terrorism security abu sayyaf terrorism violent crime",
		"pigeon finch bird gray whale fish pigeon bird",
		"oncologist osteosarcoma therapy sarcoma tumor",
		"diver hypocapnia nitrogen diving bends",
	}
	docs := make([]embellish.Document, len(texts))
	for i, t := range texts {
		docs[i] = embellish.Document{ID: i, Text: t}
	}
	return docs
}

// exampleOptions returns demo-sized options: small keys keep the
// examples fast; production wants KeyBits >= 512 and retrieval keys
// >= 1024 bits.
func exampleOptions() embellish.Options {
	opts := embellish.DefaultOptions()
	opts.BucketSize = 2
	opts.KeyBits = 128
	opts.ScoreSpace = 10
	return opts
}

// ExampleNewEngine builds a searchable private-retrieval engine from
// a lexicon and a document collection.
func ExampleNewEngine() {
	engine, err := embellish.NewEngine(embellish.MiniLexicon(), exampleDocs(), exampleOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("documents:", engine.NumDocs())
	fmt.Println("stores document bytes:", engine.StoresDocuments())
	// Output:
	// documents: 8
	// stores document bytes: false
}

// ExampleClient_Search runs one end-to-end private search: the query
// is embellished with decoys, the engine accumulates encrypted
// scores, the client decrypts and ranks — identically to an
// unprotected search (the paper's Claim 1).
func ExampleClient_Search() {
	engine, err := embellish.NewEngine(embellish.MiniLexicon(), exampleDocs(), exampleOptions())
	if err != nil {
		log.Fatal(err)
	}
	client, err := engine.NewClient(nil) // fresh key pair; the engine never sees it
	if err != nil {
		log.Fatal(err)
	}
	results, err := client.Search("osteosarcoma", 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. doc %d score %d\n", i+1, r.DocID, r.Score)
	}
	plain, err := engine.PlaintextSearch("osteosarcoma", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches plaintext ranking:", results[0].DocID == plain[0].DocID && results[1].DocID == plain[1].DocID)
	// Output:
	// 1. doc 0 score 173
	// 2. doc 6 score 120
	// matches plaintext ranking: true
}

// ExampleEngine_AddDocuments updates the corpus online: ids continue
// the dense sequence NextDocID reports, deletes tombstone in place,
// and searches are never blocked.
func ExampleEngine_AddDocuments() {
	engine, err := embellish.NewEngine(embellish.MiniLexicon(), exampleDocs(), exampleOptions())
	if err != nil {
		log.Fatal(err)
	}
	next := engine.NextDocID()
	err = engine.AddDocuments([]embellish.Document{
		{ID: next, Text: "hypocapnia oxygen diver hypocapnia hypocapnia"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.DeleteDocuments([]int{2}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("live documents:", engine.NumDocs())
	fmt.Println("next id:", engine.NextDocID())

	// The new document ranks; the tombstoned one never does. (Like
	// Lucene, an added batch computes impacts from its own segment's
	// statistics — see the AddDocuments doc comment — which is why the
	// term-dense newcomer does not automatically outrank doc 7 here.)
	results, err := engine.PlaintextSearch("hypocapnia", 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. doc %d\n", i+1, r.DocID)
	}
	// Output:
	// live documents: 8
	// next id: 9
	// 1. doc 7
	// 2. doc 8
}

// ExampleClient_FetchDocuments privately retrieves a ranked winner:
// the server multiplies over every stored block and learns only how
// many blocks were fetched, never which document won.
func ExampleClient_FetchDocuments() {
	opts := exampleOptions()
	opts.StoreDocuments = true // keep the bytes, laid out into PIR blocks
	opts.BlockSize = 64
	opts.RetrievalKeyBits = 64 // demo-sized PIR modulus
	engine, err := embellish.NewEngine(embellish.MiniLexicon(), exampleDocs(), opts)
	if err != nil {
		log.Fatal(err)
	}
	client, err := engine.NewClient(nil)
	if err != nil {
		log.Fatal(err)
	}
	results, err := client.Search("vintner", 1)
	if err != nil {
		log.Fatal(err)
	}
	docs, stats, err := client.FetchDocuments([]int{results[0].DocID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched doc %d in %d PIR runs: %s\n", results[0].DocID, stats.Runs, docs[0])
	// Output:
	// fetched doc 3 in 1 PIR runs: vintner wine zymosis vintner wine making yeast
}

// ExampleClient_FetchDocumentsRemote ranks and then fetches over one
// TCP connection against a NetServer; block queries are pipelined in
// batch frames (SetFetchPipeline).
func ExampleClient_FetchDocumentsRemote() {
	opts := exampleOptions()
	opts.StoreDocuments = true
	opts.BlockSize = 64
	opts.RetrievalKeyBits = 64
	engine, err := embellish.NewEngine(embellish.MiniLexicon(), exampleDocs(), opts)
	if err != nil {
		log.Fatal(err)
	}
	srv := engine.NewNetServer(embellish.ServeConfig{AllowRetrieval: true, PIRWorkers: -1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	client, err := engine.NewClient(nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.SetFetchPipeline(8); err != nil {
		log.Fatal(err)
	}
	results, err := client.SearchRemote(conn, "terrorism", 1)
	if err != nil {
		log.Fatal(err)
	}
	docs, _, err := client.FetchDocumentsRemote(conn, []int{results[0].DocID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doc %d: %s\n", results[0].DocID, docs[0])
	// Output:
	// doc 4: terrorism security abu sayyaf terrorism violent crime
}

// ExampleEngine_Save persists an engine — lexicon, segments, bucket
// organization and document store — and loads it back; client and
// server load the same file so they agree on the bucket organization.
func ExampleEngine_Save() {
	opts := exampleOptions()
	opts.StoreDocuments = true
	opts.RetrievalKeyBits = 64
	engine, err := embellish.NewEngine(embellish.MiniLexicon(), exampleDocs(), opts)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := embellish.LoadEngine(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded documents:", loaded.NumDocs())
	fmt.Println("loaded store:", loaded.StoresDocuments())
	// Output:
	// loaded documents: 8
	// loaded store: true
}

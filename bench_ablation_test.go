package embellish

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - quantization resolution: PR's server cost is a square-and-multiply
//     per posting whose exponent width is the quantized impact; widening
//     it narrows the Figure 7(b) server-CPU gap to PIR (the panel where
//     this reproduction deviates from the paper).
//   - bucket-contiguous storage (Section 4): one seek per bucket versus
//     the naive one-seek-per-term layout.
//   - key size: how both schemes' costs scale with KeyLen.

import (
	"fmt"
	"testing"
	"time"

	"embellish/internal/benaloh"
	"embellish/internal/core"
	"embellish/internal/detrand"
	"embellish/internal/eval"
	"embellish/internal/index"
	"embellish/internal/pir"
	"embellish/internal/pirsearch"
	"embellish/internal/simio"
)

// ablationIndex rebuilds the benchmark corpus index at a given
// quantization resolution.
func ablationIndex(e *eval.Env, quantLevels int32) *index.Index {
	b := index.NewBuilder()
	b.QuantLevels = quantLevels
	for _, d := range e.Corp.Docs {
		b.Add(index.DocID(d.ID), d.Tokens)
	}
	return b.Build()
}

// BenchmarkAblationQuantization prints PR server time per query at
// increasing quantization resolutions against the (quantization-
// independent) PIR reference.
func BenchmarkAblationQuantization(b *testing.B) {
	e := benchEnvGet(b)
	org, err := e.Organization(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Wide plaintext space so large quantized scores stay decryptable.
	key, err := benaloh.GenerateKey(detrand.New("ablation-q"), 256, benaloh.Pow3(24))
	if err != nil {
		b.Fatal(err)
	}
	genuine := benchGenuine(e, 12)

	measurePR := func(quant int32) time.Duration {
		ix := ablationIndex(e, quant)
		client := core.NewClient(org, key, 1)
		client.CryptoRand = e.Rand
		server := core.NewServer(ix, org, e.DB)
		q, _, err := client.Embellish(genuine)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		const reps = 3
		for r := 0; r < reps; r++ {
			if _, _, err := server.Process(q); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start) / reps
	}

	measurePIR := func() time.Duration {
		ix := ablationIndex(e, 255)
		pk, err := pir.GenerateKey(detrand.New("ablation-pir"), 256)
		if err != nil {
			b.Fatal(err)
		}
		client := pirsearch.NewClient(org, pk)
		client.CryptoRand = e.Rand
		server := pirsearch.NewServer(ix, org, e.DB)
		_, st, err := client.Search(server, genuine, 20)
		if err != nil {
			b.Fatal(err)
		}
		return time.Duration(st.ServerNS)
	}

	var report string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pirTime := measurePIR()
		report = fmt.Sprintf("\nAblation: PR server CPU vs quantization resolution (PIR reference %.1fms)\n", ms(pirTime))
		report += fmt.Sprintf("%-14s  %12s  %12s\n", "QuantLevels", "PR server", "PIR/PR")
		for _, quant := range []int32{15, 255, 4095, 1 << 16, 1 << 20} {
			prTime := measurePR(quant)
			report += fmt.Sprintf("%-14d  %10.2fms  %11.1fx\n", quant, ms(prTime), float64(pirTime)/float64(prTime))
		}
	}
	printOnceBench(b, "ablation-quant", report)
}

// BenchmarkAblationBucketLayout compares the Section 4 bucket-contiguous
// disk layout (one seek per distinct bucket) with a naive per-term
// layout (one seek per embellished term) under the simulated disk.
func BenchmarkAblationBucketLayout(b *testing.B) {
	e := benchEnvGet(b)
	disk := simio.Default()
	var report string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report = "\nAblation: disk layout (simulated I/O per 12-term query)\n"
		report += fmt.Sprintf("%-8s  %14s  %14s  %8s\n", "BktSz", "bucket layout", "per-term layout", "saving")
		for _, bktSz := range []int{2, 8, 16, 24} {
			org, err := e.Organization(bktSz, 0)
			if err != nil {
				b.Fatal(err)
			}
			client := newBenchClient(b, e, org)
			server := newBenchServer(e, org)
			q, _, err := client.Embellish(benchGenuine(e, 12))
			if err != nil {
				b.Fatal(err)
			}
			_, st, err := server.Process(q)
			if err != nil {
				b.Fatal(err)
			}
			bucketMs := st.IO.Ms(disk)
			// Naive layout: same bytes, one seek per query term.
			naive := simio.Accounting{Seeks: len(q.Entries), Bytes: st.IO.Bytes}
			naiveMs := naive.Ms(disk)
			report += fmt.Sprintf("%-8d  %12.2fms  %12.2fms  %7.1f%%\n",
				bktSz, bucketMs, naiveMs, 100*(1-bucketMs/naiveMs))
		}
	}
	printOnceBench(b, "ablation-layout", report)
}

// BenchmarkAblationKeySize sweeps the key length for both schemes.
func BenchmarkAblationKeySize(b *testing.B) {
	e := benchEnvGet(b)
	org, err := e.Organization(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	genuine := benchGenuine(e, 12)
	var report string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report = "\nAblation: key size (per 12-term query, BktSz=8)\n"
		report += fmt.Sprintf("%-8s  %12s  %12s  %12s\n", "KeyBits", "PR server", "PR traffic", "PIR server")
		for _, bits := range []int{192, 256, 384} {
			key, err := benaloh.GenerateKey(detrand.New(fmt.Sprintf("abl-key-%d", bits)), bits, benaloh.Pow3(10))
			if err != nil {
				b.Fatal(err)
			}
			client := core.NewClient(org, key, 1)
			client.CryptoRand = e.Rand
			server := core.NewServer(e.Index, org, e.DB)
			q, _, err := client.Embellish(genuine)
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			resp, _, err := server.Process(q)
			if err != nil {
				b.Fatal(err)
			}
			prTime := time.Since(start)

			pk, err := pir.GenerateKey(detrand.New(fmt.Sprintf("abl-pir-%d", bits)), bits)
			if err != nil {
				b.Fatal(err)
			}
			pc := pirsearch.NewClient(org, pk)
			pc.CryptoRand = e.Rand
			ps := pirsearch.NewServer(e.Index, org, e.DB)
			_, st, err := pc.Search(ps, genuine, 20)
			if err != nil {
				b.Fatal(err)
			}
			report += fmt.Sprintf("%-8d  %10.2fms  %10.1fKB  %10.2fms\n",
				bits, ms(prTime), float64(q.Bytes()+resp.Bytes())/1024, float64(st.ServerNS)/1e6)
		}
	}
	printOnceBench(b, "ablation-keysize", report)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// printOnceBench logs a report once per process, keyed by name.
func printOnceBench(b *testing.B, key, report string) {
	b.Helper()
	printMu.Lock()
	defer printMu.Unlock()
	if printedBench[key] {
		return
	}
	printedBench[key] = true
	b.Log(report)
}

// Command embellish-buckets builds a bucket organization (Algorithms 1
// and 2 of the paper) over a lexicon and inspects it: print buckets with
// their term specificities, look up the host bucket of a term, and
// report the Section 5.1 privacy metrics.
//
// Usage:
//
//	embellish-buckets [-lexicon mini|synthetic] [-synsets N] [-seed S]
//	                  [-bktsz B] [-segsz G] [-show N] [-term LEMMA] [-audit]
//
// Examples:
//
//	embellish-buckets -lexicon mini -show 5
//	embellish-buckets -synsets 82115 -bktsz 4 -segsz 512 -term osteosarcoma
//	embellish-buckets -bktsz 8 -audit
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"embellish/internal/bucket"
	"embellish/internal/privacy"
	"embellish/internal/semdist"
	"embellish/internal/sequence"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func main() {
	var (
		lexKind = flag.String("lexicon", "synthetic", "lexicon source: mini or synthetic")
		synsets = flag.Int("synsets", 10000, "synthetic lexicon size (82115 = paper scale)")
		seed    = flag.Int64("seed", 1, "generator seed")
		bktSz   = flag.Int("bktsz", 4, "bucket size (terms per bucket)")
		segSz   = flag.Int("segsz", 0, "segment size (0 = maximum N/BktSz)")
		show    = flag.Int("show", 0, "print the first N buckets")
		term    = flag.String("term", "", "print the host bucket of this lemma")
		audit   = flag.Bool("audit", false, "report privacy metrics vs random decoys")
		trials  = flag.Int("trials", 1000, "bucket-pair samples for -audit")
	)
	flag.Parse()

	var db *wordnet.Database
	switch *lexKind {
	case "mini":
		db = wordnet.MiniLexicon()
	case "synthetic":
		db = wngen.Generate(wngen.ScaledConfig(*synsets, *seed))
	default:
		fmt.Fprintf(os.Stderr, "unknown -lexicon %q (want mini or synthetic)\n", *lexKind)
		os.Exit(2)
	}
	fmt.Printf("lexicon: %d terms, %d synsets\n", db.NumTerms(), db.NumSynsets())

	seq := sequence.Run(db)
	fmt.Printf("sequence: %d terms\n", len(seq))

	sz := *segSz
	if sz <= 0 {
		sz = len(seq) / *bktSz
	}
	org, err := bucket.Generate(seq, db.Specificity, *bktSz, sz)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bucket formation:", err)
		os.Exit(1)
	}
	fmt.Printf("organization: %d buckets of size %d (SegSz=%d)\n\n", org.NumBuckets(), *bktSz, sz)

	printBucket := func(b int) {
		fmt.Printf("Bucket %d:", b)
		for _, t := range org.Bucket(b) {
			fmt.Printf(" %q(%d)", db.Lemma(t), db.Specificity(t))
		}
		fmt.Println()
	}

	for b := 0; b < *show && b < org.NumBuckets(); b++ {
		printBucket(b)
	}

	if *term != "" {
		t, ok := db.Lookup(*term)
		if !ok {
			fmt.Fprintf(os.Stderr, "term %q not in lexicon\n", *term)
			os.Exit(1)
		}
		b, ok := org.BucketOf(t)
		if !ok {
			fmt.Fprintf(os.Stderr, "term %q not bucketed\n", *term)
			os.Exit(1)
		}
		fmt.Printf("host bucket of %q:\n", *term)
		printBucket(b)
	}

	if *audit {
		rng := rand.New(rand.NewSource(*seed + 1))
		calc := semdist.New(db, 40)
		fmt.Println("privacy metrics (lower is better):")
		fmt.Printf("  intra-bucket specificity spread: bucket=%.3f",
			privacy.AvgSpecSpread(org, db.Specificity))
		randOrg, err := privacy.RandomOrganization(seq, *bktSz, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "random baseline:", err)
			os.Exit(1)
		}
		fmt.Printf("  random=%.3f\n", privacy.AvgSpecSpread(randOrg, db.Specificity))
		dd := privacy.MeasureDistanceDifference(org, calc, *trials, rng)
		rd := privacy.MeasureDistanceDifference(randOrg, calc, *trials, rng)
		fmt.Printf("  distance difference (closest cover): bucket=%.3f  random=%.3f\n", dd.Closest, rd.Closest)
		fmt.Printf("  distance difference (farthest cover): bucket=%.3f  random=%.3f\n", dd.Farthest, rd.Farthest)
	}
}

// Command embellish-search runs the full private-retrieval pipeline end
// to end on a self-contained world: generate (or hand it) a corpus,
// build the engine, embellish a query, execute Algorithm 4 on the
// server, post-filter on the client, and show that the ranking matches
// an unprotected search — while printing exactly what the search engine
// observed.
//
// With -connect, Algorithm 4 instead runs on a remote embellish-server:
// load the engine file both endpoints share (-load, so client and
// server agree on the bucket organization) and the query travels over
// the wire protocol.
//
// Usage:
//
//	embellish-search [-lexicon mini|synthetic] [-synsets N] [-docs N]
//	                 [-bktsz B] [-keybits K] [-query "terms..."] [-topk K]
//	embellish-search -connect HOST:PORT -load engine.bin
//	                 [-keybits K] [-query "terms..."] [-topk K]
//
// With no -query, a random searchable term pair is used.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"

	"embellish"
	"embellish/internal/corpus"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func main() {
	var (
		lexKind = flag.String("lexicon", "mini", "lexicon source: mini or synthetic")
		synsets = flag.Int("synsets", 5000, "synthetic lexicon size")
		docs    = flag.Int("docs", 300, "synthetic corpus size")
		bktSz   = flag.Int("bktsz", 4, "bucket size")
		keyBits = flag.Int("keybits", 512, "Benaloh key size")
		query   = flag.String("query", "", "query text (default: random searchable terms)")
		topk    = flag.Int("topk", 10, "results to print")
		seed    = flag.Int64("seed", 1, "world seed")
		connect = flag.String("connect", "", "run the query against a remote embellish-server at this address")
		load    = flag.String("load", "", "load the engine file shared with the server (required with -connect)")
	)
	flag.Parse()

	var engine *embellish.Engine
	var db *wordnet.Database
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		engine, err = embellish.LoadEngine(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
	} else {
		if *connect != "" {
			fmt.Fprintln(os.Stderr, "-connect requires -load: both endpoints must share one engine file")
			os.Exit(2)
		}
		var lex *embellish.Lexicon
		switch *lexKind {
		case "mini":
			db = wordnet.MiniLexicon()
			lex = embellish.MiniLexicon()
		case "synthetic":
			db = wngen.Generate(wngen.ScaledConfig(*synsets, *seed))
			lex = embellish.SyntheticLexicon(*synsets, *seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown -lexicon %q\n", *lexKind)
			os.Exit(2)
		}

		// Synthesize a corpus over the lexicon's vocabulary.
		ccfg := corpus.DefaultConfig()
		ccfg.NumDocs = *docs
		ccfg.Seed = *seed + 1
		corp := corpus.Generate(db, ccfg)
		documents := make([]embellish.Document, len(corp.Docs))
		for i, d := range corp.Docs {
			documents[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
		}

		opts := embellish.DefaultOptions()
		opts.BucketSize = *bktSz
		opts.KeyBits = *keyBits
		var err error
		engine, err = embellish.NewEngine(lex, documents, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "engine:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("engine: %d docs, %d searchable terms, %d buckets\n",
		engine.NumDocs(), engine.NumSearchableTerms(), engine.NumBuckets())

	client, err := engine.NewClient(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}

	q := *query
	if q == "" {
		// Pick two random searchable lemmas through the public API.
		rng := rand.New(rand.NewSource(*seed + 2))
		lemmas := engine.SearchableLemmas()
		q = lemmas[rng.Intn(len(lemmas))] + " " + lemmas[rng.Intn(len(lemmas))]
	}
	fmt.Printf("\ngenuine query: %q\n", q)

	var results []embellish.Result
	if *connect != "" {
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		defer conn.Close()
		results, err = client.SearchRemote(conn, q, *topk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "remote search:", err)
			os.Exit(1)
		}
		fmt.Printf("remote search via %s\n", *connect)
	} else {
		eq, err := client.Embellish(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "embellish:", err)
			os.Exit(1)
		}
		if len(eq.Skipped) > 0 {
			fmt.Printf("skipped (not in dictionary): %v\n", eq.Skipped)
		}
		fmt.Printf("the search engine sees %d terms (%d bytes):\n  %s\n",
			len(eq.Terms()), eq.Bytes(), strings.Join(eq.Terms(), ", "))

		resp, err := engine.Process(eq)
		if err != nil {
			fmt.Fprintln(os.Stderr, "process:", err)
			os.Exit(1)
		}
		fmt.Printf("server: %d postings scanned, %d buckets fetched, %d candidates, %.2f ms simulated I/O\n",
			resp.Stats.PostingsScanned, resp.Stats.BucketsFetched, resp.Stats.Candidates, resp.Stats.SimulatedIOms)

		results, err = client.Decode(resp, *topk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decode:", err)
			os.Exit(1)
		}
	}
	fmt.Println("\nprivate search results:")
	for i, r := range results {
		fmt.Printf("  %2d. doc %d (score %d)\n", i+1, r.DocID, r.Score)
	}

	plain, err := engine.PlaintextSearch(q, *topk)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plaintext:", err)
		os.Exit(1)
	}
	match := len(plain) <= len(results)
	if match {
		for i := range plain {
			if results[i].DocID != plain[i].DocID {
				match = false
				break
			}
		}
	}
	fmt.Printf("\nClaim 1 check — private ranking equals plaintext ranking: %v\n", match)
}

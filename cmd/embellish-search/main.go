// Command embellish-search runs the full private-retrieval pipeline end
// to end on a self-contained world: generate (or hand it) a corpus,
// build the engine, embellish a query, execute Algorithm 4 on the
// server, post-filter on the client, and show that the ranking matches
// an unprotected search — while printing exactly what the search engine
// observed.
//
// With -connect, Algorithm 4 instead runs on a remote embellish-server:
// load the engine file both endpoints share (-load, so client and
// server agree on the bucket organization) and the query travels over
// the wire protocol. With -sync-lexicon instead of -load, the client
// fetches the bucket organization and synset tables FROM the server
// (which must run -allow-lexicon-sync) and embellishes locally without
// ever seeing the engine file — the fully remote deployment. Without a
// local engine copy the Claim 1 comparison and live updates are
// unavailable.
//
// With -decoys N each remote search travels inside a burst of N
// TrackMeNot-style ghost queries (decoy-marked cover traffic,
// embellished exactly like the genuine query), and with -audit the
// server's per-session privacy report — observed risk and the live
// coherence-adversary success rate, scored by the server playing the
// paper's adversary (it must run -risk-audit) — is printed after the
// search.
//
// With -add (a file of one document per line) and/or -delete (a
// comma-separated id list) the corpus is updated LIVE before the query
// runs — locally, or on the remote server when combined with -connect
// (the server must run -allow-updates; the same updates are applied to
// the locally loaded engine so the Claim 1 comparison tracks the
// server's corpus exactly).
//
// With -fetch N the top N result documents are retrieved after the
// ranking — privately through per-block PIR by default (the engine
// must hold a document store: build with -store, or serve/load an
// engine file saved from one; a remote server must also run
// -allow-retrieval), or in the clear with -fetch-mode plain for a
// side-by-side cost comparison. The PIR path reveals only how many
// blocks were fetched, never which document won the ranking.
//
// Usage:
//
//	embellish-search [-lexicon mini|synthetic] [-synsets N] [-docs N]
//	                 [-bktsz B] [-keybits K] [-query "terms..."] [-topk K]
//	                 [-add docs.txt] [-delete "3,17"]
//	                 [-store] [-block-size B] [-fetch N] [-fetch-mode private|plain]
//	                 [-fetch-keybits K] [-fetch-pipeline D] [-pir-workers N]
//	embellish-search -connect HOST:PORT (-load engine.bin | -sync-lexicon)
//	                 [-keybits K] [-query "terms..."] [-topk K]
//	                 [-add docs.txt] [-delete "3,17"]
//	                 [-decoys N] [-audit]
//	                 [-fetch N] [-fetch-mode private|plain]
//	                 [-fetch-keybits K] [-fetch-pipeline D]
//	                 [-server-stats]
//
// With no -query, a random searchable term pair is used.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"embellish"
	"embellish/internal/corpus"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func main() {
	var (
		lexKind = flag.String("lexicon", "mini", "lexicon source: mini or synthetic")
		synsets = flag.Int("synsets", 5000, "synthetic lexicon size")
		docs    = flag.Int("docs", 300, "synthetic corpus size")
		bktSz   = flag.Int("bktsz", 4, "bucket size")
		keyBits = flag.Int("keybits", 512, "Benaloh key size")
		query   = flag.String("query", "", "query text (default: random searchable terms)")
		topk    = flag.Int("topk", 10, "results to print")
		seed    = flag.Int64("seed", 1, "world seed")
		connect = flag.String("connect", "", "run the query against a remote embellish-server at this address")
		load    = flag.String("load", "", "load the engine file shared with the server")
		syncLex = flag.Bool("sync-lexicon", false, "with -connect: fetch the embellishment tables from the server instead of -load (server must run -allow-lexicon-sync)")
		decoys  = flag.Int("decoys", 0, "with -connect: send each query inside a burst of N decoy ghost queries (0 off)")
		audit   = flag.Bool("audit", false, "with -connect: print the server's per-session privacy-risk report after the search (server must run -risk-audit)")
		addFile = flag.String("add", "", "add documents live before querying: file with one document per line")
		delIDs  = flag.String("delete", "", "delete documents live before querying: comma-separated ids")

		store      = flag.Bool("store", false, "store document bytes so results can be fetched (build path only)")
		blockSize  = flag.Int("block-size", 0, "PIR block size in bytes for -store (0 default)")
		fetchN     = flag.Int("fetch", 0, "retrieve the top N result documents after ranking (0 off)")
		fetchMode  = flag.String("fetch-mode", "private", "document retrieval mode: private (PIR) or plain")
		fetchBits  = flag.Int("fetch-keybits", 0, "PIR modulus size for -fetch (0 inherits the engine's key size)")
		fetchPipe  = flag.Int("fetch-pipeline", 0, "block queries kept in flight during -fetch (0 default, 1 sequential round-trips); batches are also capped by the 16 MiB frame byte budget, so wide -fetch-keybits moduli over big stores pack fewer queries per frame")
		pirWorkers = flag.Int("pir-workers", 0, "PIR fetch-serving workers for the local engine (0 sequential reference, -1 GOMAXPROCS, N pinned)")
		srvStats   = flag.Bool("server-stats", false, "with -connect: print the remote server's serving counters after the query")
	)
	flag.Parse()

	if *connect == "" && (*syncLex || *decoys > 0 || *audit) {
		fmt.Fprintln(os.Stderr, "-sync-lexicon, -decoys and -audit are remote features: they require -connect")
		os.Exit(2)
	}
	var engine *embellish.Engine
	var db *wordnet.Database
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		engine, err = embellish.LoadEngine(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
	} else if *connect != "" && *syncLex {
		// Remote-only: the client world arrives over the wire below.
	} else {
		if *connect != "" {
			fmt.Fprintln(os.Stderr, "-connect requires -load or -sync-lexicon: the client must know the server's bucket organization")
			os.Exit(2)
		}
		var lex *embellish.Lexicon
		switch *lexKind {
		case "mini":
			db = wordnet.MiniLexicon()
			lex = embellish.MiniLexicon()
		case "synthetic":
			db = wngen.Generate(wngen.ScaledConfig(*synsets, *seed))
			lex = embellish.SyntheticLexicon(*synsets, *seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown -lexicon %q\n", *lexKind)
			os.Exit(2)
		}

		// Synthesize a corpus over the lexicon's vocabulary.
		ccfg := corpus.DefaultConfig()
		ccfg.NumDocs = *docs
		ccfg.Seed = *seed + 1
		corp := corpus.Generate(db, ccfg)
		documents := make([]embellish.Document, len(corp.Docs))
		for i, d := range corp.Docs {
			documents[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
		}

		opts := embellish.DefaultOptions()
		opts.BucketSize = *bktSz
		opts.KeyBits = *keyBits
		opts.StoreDocuments = *store || *fetchN > 0
		opts.BlockSize = *blockSize
		var err error
		engine, err = embellish.NewEngine(lex, documents, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "engine:", err)
			os.Exit(1)
		}
	}
	if engine != nil {
		fmt.Printf("engine: %d docs, %d searchable terms, %d buckets\n",
			engine.NumDocs(), engine.NumSearchableTerms(), engine.NumBuckets())
	}

	var conn net.Conn
	if *connect != "" {
		var err error
		conn, err = net.Dial("tcp", *connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		defer conn.Close()
	}

	var client *embellish.Client
	var lemmas []string
	if engine == nil {
		world, err := embellish.SyncLexicon(conn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sync-lexicon:", err)
			os.Exit(1)
		}
		fmt.Printf("synced lexicon from %s: %d searchable terms, %d buckets (version %d)\n",
			*connect, world.NumSearchableTerms(), world.NumBuckets(), world.Version())
		if *addFile != "" || *delIDs != "" {
			fmt.Fprintln(os.Stderr, "-add/-delete need the local engine copy to assign ids and mirror state; use -load")
			os.Exit(2)
		}
		client, err = world.NewClient(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "client:", err)
			os.Exit(1)
		}
		lemmas = world.SearchableLemmas()
	} else {
		if err := applyUpdates(engine, conn, *addFile, *delIDs); err != nil {
			fmt.Fprintln(os.Stderr, "update:", err)
			os.Exit(1)
		}
		var err error
		client, err = engine.NewClient(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "client:", err)
			os.Exit(1)
		}
		lemmas = engine.SearchableLemmas()
	}
	if *fetchBits > 0 {
		// The PIR modulus is a per-client choice, so this works on loaded
		// engine files too (Options.RetrievalKeyBits is build-time only).
		if err := client.SetRetrievalKeyBits(*fetchBits); err != nil {
			fmt.Fprintln(os.Stderr, "fetch-keybits:", err)
			os.Exit(1)
		}
	}
	if *fetchPipe > 0 {
		if err := client.SetFetchPipeline(*fetchPipe); err != nil {
			fmt.Fprintln(os.Stderr, "fetch-pipeline:", err)
			os.Exit(1)
		}
	}
	if *pirWorkers != 0 && engine != nil {
		// Runtime-only, like the execution knobs: applies to locally
		// served fetches (a remote server picks its own plan).
		if err := engine.ConfigurePIRWorkers(*pirWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "pir-workers:", err)
			os.Exit(1)
		}
		if *connect != "" {
			fmt.Fprintln(os.Stderr, "note: -pir-workers tunes only locally served fetches; the remote server picks its own plan (embellish-server -pir-workers)")
		}
	}

	q := *query
	if q == "" {
		// Pick two random searchable lemmas through the public API.
		rng := rand.New(rand.NewSource(*seed + 2))
		q = lemmas[rng.Intn(len(lemmas))] + " " + lemmas[rng.Intn(len(lemmas))]
	}
	fmt.Printf("\ngenuine query: %q\n", q)

	var results []embellish.Result
	if *connect != "" {
		var err error
		if *decoys > 0 {
			stream, serr := client.NewDecoyStream(embellish.DecoyStreamConfig{GhostRate: *decoys, Seed: *seed + 3})
			if serr != nil {
				fmt.Fprintln(os.Stderr, "decoys:", serr)
				os.Exit(1)
			}
			results, err = stream.SearchRemote(context.Background(), conn, q, *topk)
			if err == nil {
				st := stream.Stats()
				fmt.Printf("remote search via %s inside a burst of %d ghost queries (%d skipped)\n",
					*connect, st.Decoys, st.Skipped)
			}
		} else {
			results, err = client.SearchRemote(conn, q, *topk)
			if err == nil {
				fmt.Printf("remote search via %s\n", *connect)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "remote search:", err)
			os.Exit(1)
		}
	} else {
		eq, err := client.Embellish(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "embellish:", err)
			os.Exit(1)
		}
		if len(eq.Skipped) > 0 {
			fmt.Printf("skipped (not in dictionary): %v\n", eq.Skipped)
		}
		fmt.Printf("the search engine sees %d terms (%d bytes):\n  %s\n",
			len(eq.Terms()), eq.Bytes(), strings.Join(eq.Terms(), ", "))

		resp, err := engine.Process(eq)
		if err != nil {
			fmt.Fprintln(os.Stderr, "process:", err)
			os.Exit(1)
		}
		fmt.Printf("server: %d postings scanned, %d buckets fetched, %d candidates, %.2f ms simulated I/O\n",
			resp.Stats.PostingsScanned, resp.Stats.BucketsFetched, resp.Stats.Candidates, resp.Stats.SimulatedIOms)

		results, err = client.Decode(resp, *topk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decode:", err)
			os.Exit(1)
		}
	}
	fmt.Println("\nprivate search results:")
	for i, r := range results {
		fmt.Printf("  %2d. doc %d (score %d)\n", i+1, r.DocID, r.Score)
	}

	if *fetchN > 0 {
		if err := fetchWinners(engine, client, conn, results, *fetchN, *fetchMode); err != nil {
			fmt.Fprintln(os.Stderr, "fetch:", err)
			os.Exit(1)
		}
	}

	if engine != nil {
		plain, err := engine.PlaintextSearch(q, *topk)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plaintext:", err)
			os.Exit(1)
		}
		match := len(plain) <= len(results)
		if match {
			for i := range plain {
				if results[i].DocID != plain[i].DocID {
					match = false
					break
				}
			}
		}
		fmt.Printf("\nClaim 1 check — private ranking equals plaintext ranking: %v\n", match)
	} else {
		fmt.Println("\n(no local engine copy: Claim 1 plaintext comparison unavailable with -sync-lexicon)")
	}

	if *audit {
		report, err := embellish.SessionRiskAudit(conn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			os.Exit(1)
		}
		fmt.Printf("\nserver session audit (the server playing the paper's adversary):\n")
		fmt.Printf("  observed: %d genuine-marked queries, %d decoy-marked\n", report.Queries, report.Decoys)
		fmt.Printf("  risk-scored: %d (skipped %d); mean observed risk %.6f, worst %.6f\n",
			report.Audited, report.Skipped, report.MeanRisk, report.MaxRisk)
		if report.Rounds > 0 {
			fmt.Printf("  coherence adversary: picked the genuine query in %d of %d decoy rounds (%.0f%% success; chance would be ~%.0f%%)\n",
				report.RoundHits, report.Rounds, 100*report.AdversarySuccess(), 100/float64(*decoys+1))
			fmt.Printf("  mean term coherence: genuine %.3f, decoys %.3f (lower = more topically coherent)\n",
				report.MeanGenuineCoherence, report.MeanDecoyCoherence)
		}
	}

	if *srvStats {
		if conn == nil {
			fmt.Fprintln(os.Stderr, "-server-stats requires -connect")
			os.Exit(2)
		}
		st, err := embellish.ServerStats(conn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "server-stats:", err)
			os.Exit(1)
		}
		fmt.Printf("\nserver stats: %d queries (%d errors), %d updates, %d retrievals; %d inflight, %d queued; shed %d full / %d timeout; %d deadline cancellations\n",
			st.Queries, st.Errors, st.Updates, st.Retrievals, st.Inflight, st.Queued, st.ShedQueueFull, st.ShedQueueTimeout, st.Deadlines)
		if st.Durable {
			fmt.Printf("server durable: journal seq %d, checkpoint %d (age %v)\n",
				st.WALSeq, st.WALCheckpointSeq, st.CheckpointAge.Round(time.Millisecond))
		}
	}
}

// fetchWinners retrieves the top fetchN positive-score result
// documents — per-block PIR (mode "private"), remotely when conn is
// non-nil, or a direct read (mode "plain") for cost comparison — and
// prints each document (truncated) with the retrieval cost.
func fetchWinners(engine *embellish.Engine, client *embellish.Client, conn net.Conn, results []embellish.Result, fetchN int, mode string) error {
	var ids []int
	for _, r := range results {
		if r.Score > 0 && len(ids) < fetchN {
			ids = append(ids, r.DocID)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no positive-score results to fetch")
	}
	var docs [][]byte
	t0 := time.Now()
	switch mode {
	case "private":
		var st embellish.FetchStats
		var err error
		if conn != nil {
			docs, st, err = client.FetchDocumentsRemote(conn, ids)
		} else {
			docs, st, err = client.FetchDocuments(ids)
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nfetched %d documents privately in %v: %d PIR runs, %d query bytes up, %d answer bytes down\n",
			len(ids), time.Since(t0).Round(time.Microsecond), st.Runs, st.QueryBytes, st.AnswerBytes)
		fmt.Println("the server cannot tell which documents were fetched, only how many blocks")
	case "plain":
		if engine == nil {
			return fmt.Errorf("-fetch-mode plain reads the LOCAL engine copy; unavailable with -sync-lexicon")
		}
		for _, id := range ids {
			d, err := engine.Document(id)
			if err != nil {
				return err
			}
			docs = append(docs, d)
		}
		fmt.Printf("\nread %d documents in the clear from the LOCAL engine copy in %v\n",
			len(ids), time.Since(t0).Round(time.Microsecond))
		fmt.Println("(a conventional remote download would reveal every fetched id to the server)")
	default:
		return fmt.Errorf("unknown -fetch-mode %q", mode)
	}
	for i, d := range docs {
		text := string(d)
		if len(text) > 72 {
			text = text[:72] + "..."
		}
		fmt.Printf("  doc %d (%d bytes): %s\n", ids[i], len(d), text)
	}
	return nil
}

// applyUpdates runs the -add / -delete live updates: on the remote
// server when conn is non-nil (mirrored locally so the Claim 1
// comparison tracks the server's corpus), else on the local engine.
func applyUpdates(engine *embellish.Engine, conn net.Conn, addFile, delIDs string) error {
	if addFile != "" {
		data, err := os.ReadFile(addFile)
		if err != nil {
			return err
		}
		base := engine.NextDocID()
		var docs []embellish.Document
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				docs = append(docs, embellish.Document{ID: base + len(docs), Text: line})
			}
		}
		if len(docs) == 0 {
			return fmt.Errorf("%s holds no documents", addFile)
		}
		if conn != nil {
			st, err := embellish.AddDocumentsRemote(conn, docs)
			if err != nil {
				return err
			}
			fmt.Printf("added %d docs remotely: server now %d live docs in %d segments\n",
				len(docs), st.LiveDocs, st.Segments)
		}
		if err := engine.AddDocuments(docs); err != nil {
			return err
		}
		fmt.Printf("added docs %d..%d live (%d segments locally)\n",
			base, base+len(docs)-1, engine.NumSegments())
	}
	if delIDs != "" {
		var ids []int
		for _, f := range strings.Split(delIDs, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad -delete id %q: %w", f, err)
			}
			ids = append(ids, id)
		}
		if conn != nil {
			st, err := embellish.DeleteDocumentsRemote(conn, ids)
			if err != nil {
				return err
			}
			fmt.Printf("deleted %d docs remotely: server now %d live docs\n", len(ids), st.LiveDocs)
		}
		if err := engine.DeleteDocuments(ids); err != nil {
			return err
		}
		fmt.Printf("deleted docs %v live (%d live docs locally)\n", ids, engine.NumDocs())
	}
	return nil
}

// Command embellish-eval regenerates the figures of the paper's
// evaluation (Section 5) as text series, at a configurable scale.
//
// Usage:
//
//	embellish-eval [-fig 2|5a|5b|6a|6b|7|8|all] [-synsets N] [-docs N]
//	               [-trials N] [-keybits K] [-querysize N] [-seed S]
//
// The defaults run every figure in roughly a minute on a laptop. Paper
// scale is -synsets 82115 -docs 172961 -trials 1000 -keybits 512 (plan
// for hours, dominated by the PIR baseline).
package main

import (
	"flag"
	"fmt"
	"os"

	"embellish/internal/eval"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 2, 5a, 5b, 6a, 6b, 7, 8, recall or all")
		synsets   = flag.Int("synsets", 2500, "lexicon size (82115 = paper scale)")
		docs      = flag.Int("docs", 300, "corpus size (172961 = paper scale)")
		meanLen   = flag.Int("meanlen", 80, "mean document length in tokens")
		trials    = flag.Int("trials", 60, "measurements per sweep point (paper: 1000)")
		keyBits   = flag.Int("keybits", 256, "key size for both cryptosystems (paper era: 512)")
		querySize = flag.Int("querysize", 12, "genuine terms per query for figure 7")
		seed      = flag.Int64("seed", 1, "experiment seed")
	)
	flag.Parse()

	cfg := eval.DefaultConfig()
	cfg.Synsets = *synsets
	cfg.NumDocs = *docs
	cfg.MeanDocLen = *meanLen
	cfg.Trials = *trials
	cfg.KeyBits = *keyBits
	cfg.QuerySize = *querySize
	cfg.Seed = *seed

	fmt.Printf("environment: %d synsets, %d docs, %d trials/point, %d-bit keys\n",
		cfg.Synsets, cfg.NumDocs, cfg.Trials, cfg.KeyBits)
	env, err := eval.NewEnv(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "environment:", err)
		os.Exit(1)
	}
	fmt.Printf("searchable dictionary: %d terms\n\n", len(env.Searchable))

	run := func(id string) {
		switch id {
		case "2":
			f := env.Figure2()
			fmt.Println(f.Render())
		case "5a":
			f, err := env.Figure5a(nil)
			exitOn(err)
			fmt.Println(f.Render())
		case "5b":
			f, err := env.Figure5b(nil)
			exitOn(err)
			fmt.Println(f.Render())
		case "6a":
			f, err := env.Figure6a(nil)
			exitOn(err)
			fmt.Println(f.Render())
		case "6b":
			f, err := env.Figure6b(nil)
			exitOn(err)
			fmt.Println(f.Render())
		case "7":
			figs, err := env.Figure7(nil)
			exitOn(err)
			for _, f := range figs {
				fmt.Println(f.Render())
			}
		case "8":
			figs, err := env.Figure8(nil)
			exitOn(err)
			for _, f := range figs {
				fmt.Println(f.Render())
			}
		case "recall", "R":
			f, err := env.FigureRecall(nil, 10)
			exitOn(err)
			fmt.Println(f.Render())
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", id)
			os.Exit(2)
		}
	}

	if *fig == "all" {
		for _, id := range []string{"2", "5a", "5b", "6a", "6b", "7", "8", "recall"} {
			run(id)
		}
		return
	}
	run(*fig)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command embellish-server runs a private-retrieval search engine as a
// network service. It either builds an engine from a synthetic world
// (and optionally saves it) or loads a previously saved engine file, and
// then serves the wire protocol on a TCP address. Clients connect with
// the library's Client.SearchRemote, or interactively with
// cmd/embellish-search -connect.
//
// Usage:
//
//	embellish-server [-listen :7878] [-load engine.bin]
//	                 [-lexicon mini|synthetic] [-synsets N] [-docs N]
//	                 [-bktsz B] [-save engine.bin] [-once]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"embellish"
	"embellish/internal/corpus"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7878", "TCP listen address")
		load    = flag.String("load", "", "load a saved engine file instead of building")
		save    = flag.String("save", "", "save the built engine to this file")
		lexKind = flag.String("lexicon", "mini", "lexicon source: mini or synthetic")
		synsets = flag.Int("synsets", 5000, "synthetic lexicon size")
		docs    = flag.Int("docs", 300, "synthetic corpus size")
		bktSz   = flag.Int("bktsz", 8, "bucket size")
		seed    = flag.Int64("seed", 1, "world seed")
		once    = flag.Bool("once", false, "serve a single connection and exit (for scripting)")
	)
	flag.Parse()

	var engine *embellish.Engine
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		engine, err = embellish.LoadEngine(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded engine from %s\n", *load)
	} else {
		var db *wordnet.Database
		var lex *embellish.Lexicon
		switch *lexKind {
		case "mini":
			db, lex = wordnet.MiniLexicon(), embellish.MiniLexicon()
		case "synthetic":
			db = wngen.Generate(wngen.ScaledConfig(*synsets, *seed))
			lex = embellish.SyntheticLexicon(*synsets, *seed)
		default:
			fatal(fmt.Errorf("unknown -lexicon %q", *lexKind))
		}
		ccfg := corpus.DefaultConfig()
		ccfg.NumDocs = *docs
		ccfg.Seed = *seed + 1
		corp := corpus.Generate(db, ccfg)
		documents := make([]embellish.Document, len(corp.Docs))
		for i, d := range corp.Docs {
			documents[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
		}
		opts := embellish.DefaultOptions()
		opts.BucketSize = *bktSz
		var err error
		engine, err = embellish.NewEngine(lex, documents, opts)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("engine: %d docs, %d searchable terms, %d buckets\n",
		engine.NumDocs(), engine.NumSearchableTerms(), engine.NumBuckets())

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := engine.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved engine to %s\n", *save)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving private retrieval on %s\n", l.Addr())
	if *once {
		conn, err := l.Accept()
		if err != nil {
			fatal(err)
		}
		if err := engine.ServeConn(conn); err != nil {
			fatal(err)
		}
		conn.Close()
		return
	}
	if err := engine.Serve(l); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embellish-server:", err)
	os.Exit(1)
}

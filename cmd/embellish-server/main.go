// Command embellish-server runs a private-retrieval search engine as a
// concurrent network service. It either builds an engine from a
// synthetic world (and optionally saves it) or loads a previously saved
// engine file, and then serves the wire protocol on a TCP address with
// one goroutine per connection, a connection limit, and graceful
// shutdown on SIGINT/SIGTERM. Clients connect with the library's
// Client.SearchRemote / SearchRemoteBatch, or interactively with
// cmd/embellish-search -connect.
//
// Usage:
//
//	embellish-server [-listen :7878] [-load engine.bin]
//	                 [-lexicon mini|synthetic] [-synsets N] [-docs N]
//	                 [-bktsz B] [-save engine.bin] [-once]
//	                 [-shards N] [-window W] [-workers N]
//	                 [-max-conns N] [-idle-timeout D] [-stats-every D]
//	                 [-allow-updates] [-max-segments N]
//	                 [-store] [-block-size B] [-allow-retrieval]
//	                 [-pir-workers N] [-pir-recursive N]
//	                 [-data-dir DIR] [-fsync record|interval|off]
//	                 [-checkpoint-every N]
//	                 [-max-inflight N] [-queue-depth N] [-queue-timeout D]
//	                 [-request-timeout D] [-metrics ADDR]
//	                 [-allow-replication]
//	                 [-replicate-from ADDR] [-replicate-every D]
//	                 [-allow-lexicon-sync] [-risk-audit]
//
// With -allow-lexicon-sync the server ships its bucket organization
// and synset tables to remote clients on request, so a client that has
// never seen the engine file can embellish locally
// (cmd/embellish-search -connect -sync-lexicon). With -risk-audit the
// server scores every observed query stream with the paper's adversary
// model and serves a per-session privacy report
// (cmd/embellish-search -audit). See docs/THREAT_MODEL.md.
//
// With -max-inflight the server runs bounded admission control: at
// most N requests execute at once, excess requests park in a FIFO
// queue (-queue-depth, -queue-timeout), and overload is shed with a
// typed retry-hint error instead of collapsing every request's
// latency. -request-timeout cancels individual scans mid-flight at a
// server-side deadline. -metrics exposes the serving counters over
// HTTP (Prometheus text at /metrics, JSON at /stats.json); the same
// counters are also served in-protocol to any wire client. See
// docs/OPERATIONS.md.
//
// With -data-dir the server is crash-safe: every accepted update is
// journaled to a write-ahead log in DIR before it is acknowledged, and
// checkpoints periodically fold the log into a snapshot. A directory
// that already holds durable state is RECOVERED on boot — the server
// resumes the corpus exactly as of the last journaled operation, even
// after a SIGKILL mid-ingest — while an empty directory is initialized
// from the built (or -load'ed) engine. See docs/DURABILITY.md.
//
// With -allow-updates the server accepts online corpus updates
// (AddDocuments / DeleteDocuments over the wire, e.g. from
// cmd/embellish-search -add/-delete); queries keep running — and keep
// matching plaintext rankings — while segments are appended, tombstoned
// and merged.
//
// With -allow-replication a durable server ships its write-ahead log
// to pulling replicas (TypeWALPull); with -replicate-from the server
// runs AS a read replica — it tails the named primary's WAL and
// applies every shipped update to its own durable engine, staying a
// warm failover target for a cmd/embellish-router partition. See
// docs/ARCHITECTURE.md ("Cluster tier").
//
// With -store the built engine also keeps the document BYTES in a PIR
// block store (persisted in the engine file when combined with -save),
// and with -allow-retrieval the server answers private document
// fetches: clients rank with -connect and then fetch the winners with
// -fetch without revealing which documents won (cmd/embellish-search
// -fetch). Loaded engines carry their store in the file; -store only
// affects the build path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"embellish"
	"embellish/internal/cluster"
	"embellish/internal/corpus"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7878", "TCP listen address")
		load    = flag.String("load", "", "load a saved engine file instead of building")
		save    = flag.String("save", "", "save the built engine to this file")
		lexKind = flag.String("lexicon", "mini", "lexicon source: mini or synthetic")
		synsets = flag.Int("synsets", 5000, "synthetic lexicon size")
		docs    = flag.Int("docs", 300, "synthetic corpus size")
		bktSz   = flag.Int("bktsz", 8, "bucket size")
		seed    = flag.Int64("seed", 1, "world seed")
		once    = flag.Bool("once", false, "serve a single connection and exit (for scripting)")

		dataDir   = flag.String("data-dir", "", "durable state directory (WAL + checkpoints); existing state is recovered on boot")
		fsyncMode = flag.String("fsync", "record", "WAL fsync policy with -data-dir: record, interval or off")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint after this many journaled updates (0 default, -1 disable)")

		store          = flag.Bool("store", false, "store document bytes for private retrieval (build path only)")
		blockSize      = flag.Int("block-size", 0, "PIR block size in bytes for -store (0 default)")
		allowRetrieval = flag.Bool("allow-retrieval", false, "answer private document fetches (requires a stored corpus)")
		pirWorkers     = flag.Int("pir-workers", 0, "PIR fetch-serving workers (0 sequential reference, -1 GOMAXPROCS, N pinned)")
		pirRecursive   = flag.Int("pir-recursive", 0, "recursive (two-level) PIR serving (0 inherit the engine knob, 1 force on, -1 refuse type-22 frames; refused clients fall back to flat queries)")

		shards       = flag.Int("shards", -1, "document shards for the worker-pool accumulator (-1 GOMAXPROCS, 0 unsharded, N pinned)")
		window       = flag.Int("window", -1, "fixed-base exponentiation window bits (-1 default, 0 off, 1..8 pinned)")
		workers      = flag.Int("workers", -1, "score-accumulation workers (-1 GOMAXPROCS, 0 single-threaded, N pinned)")
		maxConns     = flag.Int("max-conns", 0, "simultaneous connection cap (0 default, -1 unlimited)")
		allowUpdates = flag.Bool("allow-updates", false, "accept online corpus updates over the wire")
		maxSegments  = flag.Int("max-segments", 0, "live-index segment bound before background merge (0 default, -1 never merge)")
		idle         = flag.Duration("idle-timeout", 5*time.Minute, "close connections idle longer than this (0 never)")
		statsEvery   = flag.Duration("stats-every", 0, "print serving stats at this interval (0 off)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")

		maxInflight  = flag.Int("max-inflight", 0, "admission control: max executing requests (0 off, -1 GOMAXPROCS, N pinned)")
		queueDepth   = flag.Int("queue-depth", 0, "admission queue depth with -max-inflight (0 default)")
		queueTimeout = flag.Duration("queue-timeout", 0, "max queue wait before shedding with -max-inflight (0 default, negative forever)")
		reqTimeout   = flag.Duration("request-timeout", 0, "server-side deadline per request; scans are cancelled mid-flight (0 off)")
		metricsAddr  = flag.String("metrics", "", "HTTP listen address for /metrics and /stats.json (empty off)")

		allowLexSync = flag.Bool("allow-lexicon-sync", false, "ship the bucket organization and synset tables to remote clients on request")
		riskAudit    = flag.Bool("risk-audit", false, "score observed query streams with the adversary model and serve per-session privacy reports")

		allowRepl = flag.Bool("allow-replication", false, "ship the write-ahead log to pulling replicas (requires -data-dir)")
		replFrom  = flag.String("replicate-from", "", "run as a read replica tailing this primary's WAL (requires -data-dir)")
		replEvery = flag.Duration("replicate-every", 200*time.Millisecond, "replica polling interval with -replicate-from")
	)
	flag.Parse()

	if (*allowRepl || *replFrom != "") && *dataDir == "" {
		fatal(fmt.Errorf("replication needs -data-dir: the WAL is both the shipping source and the replica's cursor"))
	}

	var durability embellish.Durability
	if *dataDir != "" {
		policy, err := parseFsync(*fsyncMode)
		if err != nil {
			fatal(err)
		}
		durability = embellish.Durability{Dir: *dataDir, Fsync: policy, CheckpointEveryOps: *ckptEvery}
	}

	var engine *embellish.Engine
	recovered := false
	if *dataDir != "" {
		has, err := embellish.HasDurableState(*dataDir)
		if err != nil {
			fatal(err)
		}
		if has {
			if *load != "" {
				fatal(fmt.Errorf("%s already holds durable state; it would shadow -load %s (use one or the other)", *dataDir, *load))
			}
			var opts embellish.Options
			opts.Durability = durability
			engine, err = embellish.OpenDurable(*dataDir, opts)
			if err != nil {
				fatal(err)
			}
			st, _ := engine.WALStatus()
			fmt.Printf("recovered durable engine from %s: journal seq %d (checkpoint %d)\n",
				*dataDir, st.Seq, st.CheckpointSeq)
			recovered = true
		}
	}
	if recovered {
		// corpus comes from the durable state; nothing to build or load
	} else if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		engine, err = embellish.LoadEngine(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded engine from %s\n", *load)
	} else {
		var db *wordnet.Database
		var lex *embellish.Lexicon
		switch *lexKind {
		case "mini":
			db, lex = wordnet.MiniLexicon(), embellish.MiniLexicon()
		case "synthetic":
			db = wngen.Generate(wngen.ScaledConfig(*synsets, *seed))
			lex = embellish.SyntheticLexicon(*synsets, *seed)
		default:
			fatal(fmt.Errorf("unknown -lexicon %q", *lexKind))
		}
		ccfg := corpus.DefaultConfig()
		ccfg.NumDocs = *docs
		ccfg.Seed = *seed + 1
		corp := corpus.Generate(db, ccfg)
		documents := make([]embellish.Document, len(corp.Docs))
		for i, d := range corp.Docs {
			documents[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
		}
		opts := embellish.DefaultOptions()
		opts.BucketSize = *bktSz
		opts.StoreDocuments = *store
		opts.BlockSize = *blockSize
		var err error
		engine, err = embellish.NewEngine(lex, documents, opts)
		if err != nil {
			fatal(err)
		}
	}
	// A freshly built or -load'ed engine becomes durable here; the
	// recovered path is durable already.
	if *dataDir != "" && !recovered {
		if err := engine.EnableDurability(durability); err != nil {
			fatal(err)
		}
		fmt.Printf("durable state initialized in %s\n", *dataDir)
	}
	if err := engine.ConfigureExecution(*shards, *window, *workers); err != nil {
		fatal(err)
	}
	// Merge policy is runtime-only (not persisted), so apply it in the
	// -load path too.
	if err := engine.ConfigureMergePolicy(*maxSegments); err != nil {
		fatal(err)
	}
	// PIR serving plan is runtime-only as well; the NetServer inherits
	// it (ServeConfig.PIRWorkers left at 0).
	if err := engine.ConfigurePIRWorkers(*pirWorkers); err != nil {
		fatal(err)
	}
	fmt.Printf("engine: %d docs, %d searchable terms, %d buckets\n",
		engine.NumDocs(), engine.NumSearchableTerms(), engine.NumBuckets())
	if engine.StoresDocuments() {
		fmt.Println("document store: present (documents can be fetched privately)")
	} else if *allowRetrieval {
		fmt.Println("WARNING: -allow-retrieval set but the engine stores no documents; fetches will be refused (build with -store)")
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := engine.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved engine to %s\n", *save)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving private retrieval on %s\n", l.Addr())
	if *once {
		conn, err := l.Accept()
		if err != nil {
			fatal(err)
		}
		if err := engine.ServeConn(conn); err != nil {
			fatal(err)
		}
		conn.Close()
		if err := engine.Close(); err != nil {
			fatal(err)
		}
		return
	}

	srv := engine.NewNetServer(embellish.ServeConfig{
		MaxConns:         *maxConns,
		IdleTimeout:      *idle,
		AllowUpdates:     *allowUpdates,
		AllowRetrieval:   *allowRetrieval,
		MaxInflight:      *maxInflight,
		QueueDepth:       *queueDepth,
		QueueTimeout:     *queueTimeout,
		RequestTimeout:   *reqTimeout,
		AllowReplication: *allowRepl,
		AllowLexiconSync: *allowLexSync,
		RiskAudit:        *riskAudit,
		PIRRecursive:     *pirRecursive,
	})
	if *allowLexSync {
		v, err := engine.LexiconVersion()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lexicon sync ENABLED: serving organization and synset tables (version %d)\n", v)
	}
	if *riskAudit {
		fmt.Println("risk auditing ENABLED: observed query streams are scored per session")
	}
	if *allowRepl {
		fmt.Println("WAL shipping ENABLED: this listener answers replica pulls")
	}
	replCtx, replCancel := context.WithCancel(context.Background())
	defer replCancel()
	if *replFrom != "" {
		rep := &cluster.Replica{Engine: engine, Primary: *replFrom, Interval: *replEvery}
		srv.SetReplicaStatus(rep.PrimarySeq)
		go func() {
			if err := rep.Run(replCtx); err != nil && replCtx.Err() == nil {
				fmt.Fprintln(os.Stderr, "embellish-server: replication:", err)
			}
		}()
		fmt.Printf("replicating from %s every %v\n", *replFrom, *replEvery)
	}
	if *allowUpdates {
		fmt.Println("online updates ENABLED: this listener accepts corpus adds/deletes")
	}
	if *allowRetrieval {
		fmt.Println("private retrieval ENABLED: this listener answers PIR document fetches")
	}
	if *maxInflight != 0 {
		fmt.Printf("admission control ENABLED: max-inflight %d, queue depth %d, queue timeout %v\n",
			*maxInflight, *queueDepth, *queueTimeout)
	}
	if *reqTimeout > 0 {
		fmt.Printf("request deadline ENABLED: scans cancelled after %v\n", *reqTimeout)
	}
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write(srv.MetricsText())
		})
		mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(srv.Stats())
		})
		go http.Serve(ml, mux)
	}
	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				printStats(srv.Stats())
			}
		}()
	}

	// Graceful shutdown: first signal drains in-flight queries, second
	// aborts immediately.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case sig := <-sigs:
		fmt.Printf("received %v, draining (deadline %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		go func() {
			<-sigs
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "embellish-server: shutdown:", err)
		}
		cancel()
	}
	printStats(srv.Stats())
	// Graceful Shutdown above already checkpointed a durable engine;
	// Close flushes and releases the journal.
	if err := engine.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "embellish-server: closing journal:", err)
	}
	if st, ok := engine.WALStatus(); ok {
		fmt.Printf("durable: journal seq %d, checkpoint %d (%s)\n", st.Seq, st.CheckpointSeq, st.Dir)
	}
}

// parseFsync maps the -fsync flag onto the Durability policy.
func parseFsync(mode string) (embellish.FsyncPolicy, error) {
	switch mode {
	case "record", "always":
		return embellish.FsyncEveryRecord, nil
	case "interval":
		return embellish.FsyncInterval, nil
	case "off", "never":
		return embellish.FsyncNever, nil
	}
	return 0, fmt.Errorf("unknown -fsync mode %q (record, interval or off)", mode)
}

func printStats(st embellish.ServeStats) {
	avg := time.Duration(0)
	if st.Queries > 0 {
		avg = st.QueryTime / time.Duration(st.Queries)
	}
	fmt.Printf("stats: conns %d accepted / %d rejected / %d active; queries %d (%d errors), %d updates, %d PIR retrievals, avg %v, max %v\n",
		st.Accepted, st.Rejected, st.Active, st.Queries, st.Errors, st.Updates, st.Retrievals, avg, st.MaxQueryTime)
	if st.QueuedTotal > 0 || st.ShedQueueFull > 0 || st.ShedQueueTimeout > 0 || st.Deadlines > 0 || st.Inflight > 0 || st.Queued > 0 {
		fmt.Printf("admission: %d inflight, %d queued (%d ever queued, max wait %v); shed %d full / %d timeout; %d deadline cancellations\n",
			st.Inflight, st.Queued, st.QueuedTotal, st.MaxQueueWait, st.ShedQueueFull, st.ShedQueueTimeout, st.Deadlines)
	}
	if st.Durable {
		fmt.Printf("durable: journal seq %d, checkpoint %d (age %v)\n",
			st.WALSeq, st.WALCheckpointSeq, st.CheckpointAge.Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embellish-server:", err)
	os.Exit(1)
}

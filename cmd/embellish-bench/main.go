// Command embellish-bench tracks the performance trajectory of the
// live segmented index: it builds a synthetic world, measures private
// query latency on the static engine, times an online add of a
// fraction of new documents against a from-scratch rebuild, measures
// query latency on the updated engine, and writes the figures as
// machine-readable JSON (BENCH_PR2.json by default) so successive PRs
// can be compared.
//
// Usage:
//
//	embellish-bench [-docs 1200] [-synsets 2500] [-add-frac 0.1]
//	                [-queries 12] [-bktsz 8] [-keybits 256] [-seed 1]
//	                [-quick] [-out BENCH_PR2.json]
//
// -quick shrinks the world for CI smoke runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"embellish"
	"embellish/internal/corpus"
	"embellish/internal/wngen"
)

// Report is the machine-readable benchmark output.
type Report struct {
	// World shape.
	Docs     int   `json:"docs"`
	Added    int   `json:"added"`
	Synsets  int   `json:"synsets"`
	BktSz    int   `json:"bktsz"`
	KeyBits  int   `json:"keybits"`
	Queries  int   `json:"queries"`
	Seed     int64 `json:"seed"`
	Segments int   `json:"segments_after_add"`

	// Query latency (server-side Engine.Process, milliseconds).
	StaticQueryMs float64 `json:"static_query_ms"`
	LiveQueryMs   float64 `json:"live_query_ms"`

	// Update path.
	AddSeconds     float64 `json:"add_seconds"`
	AddDocsPerSec  float64 `json:"add_docs_per_sec"`
	RebuildSeconds float64 `json:"rebuild_seconds"`
	// Speedup is rebuild/add — the incremental-path advantage the
	// acceptance criterion bounds at >= 5x.
	Speedup float64 `json:"speedup_vs_rebuild"`
}

func main() {
	var (
		docs    = flag.Int("docs", 1200, "base corpus size")
		synsets = flag.Int("synsets", 2500, "synthetic lexicon size")
		addFrac = flag.Float64("add-frac", 0.1, "fraction of new documents to add online")
		queries = flag.Int("queries", 12, "queries to average latency over")
		bktSz   = flag.Int("bktsz", 8, "bucket size")
		keyBits = flag.Int("keybits", 256, "Benaloh key size")
		seed    = flag.Int64("seed", 1, "world seed")
		quick   = flag.Bool("quick", false, "small world for CI smoke runs")
		out     = flag.String("out", "BENCH_PR2.json", "output JSON path")
	)
	flag.Parse()
	if *quick {
		*docs, *synsets, *queries = 300, 1500, 4
	}

	extra := int(float64(*docs) * *addFrac)
	db := wngen.Generate(wngen.ScaledConfig(*synsets, *seed))
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = *docs + extra
	ccfg.Seed = *seed + 1
	corp := corpus.Generate(db, ccfg)
	world := make([]embellish.Document, len(corp.Docs))
	for i, d := range corp.Docs {
		world[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}
	base, added := world[:*docs], world[*docs:]

	opts := embellish.DefaultOptions()
	opts.BucketSize = *bktSz
	opts.KeyBits = *keyBits
	engine, err := embellish.NewEngine(embellish.SyntheticLexicon(*synsets, *seed), base, opts)
	if err != nil {
		fatal(err)
	}
	client, err := engine.NewClient(nil)
	if err != nil {
		fatal(err)
	}

	// Embellish the query set once; latency measures the server side.
	lemmas := engine.SearchableLemmas()
	embellished := make([]*embellish.Query, *queries)
	for i := range embellished {
		q := lemmas[(7*i)%len(lemmas)] + " " + lemmas[(13*i+5)%len(lemmas)]
		embellished[i], err = client.Embellish(q)
		if err != nil {
			fatal(fmt.Errorf("embellish %q: %w", q, err))
		}
	}
	rep := Report{
		Docs: *docs, Added: extra, Synsets: *synsets, BktSz: *bktSz,
		KeyBits: *keyBits, Queries: *queries, Seed: *seed,
	}
	rep.StaticQueryMs = avgQueryMs(engine, embellished)

	t0 := time.Now()
	if err := engine.AddDocuments(added); err != nil {
		fatal(err)
	}
	rep.AddSeconds = time.Since(t0).Seconds()
	rep.AddDocsPerSec = float64(extra) / rep.AddSeconds
	rep.Segments = engine.NumSegments()
	rep.LiveQueryMs = avgQueryMs(engine, embellished)

	// Time only the engine build: a redeploy reuses its lexicon, so
	// lexicon generation stays outside the window.
	lex2 := embellish.SyntheticLexicon(*synsets, *seed)
	t0 = time.Now()
	if _, err := embellish.NewEngine(lex2, world, opts); err != nil {
		fatal(err)
	}
	rep.RebuildSeconds = time.Since(t0).Seconds()
	rep.Speedup = rep.RebuildSeconds / rep.AddSeconds

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	os.Stdout.Write(blob)
	fmt.Printf("wrote %s: add %d docs in %.3fs (%.0f docs/s), rebuild %.3fs, speedup %.1fx\n",
		*out, extra, rep.AddSeconds, rep.AddDocsPerSec, rep.RebuildSeconds, rep.Speedup)
}

// avgQueryMs runs every embellished query once through Engine.Process
// and returns the mean latency in milliseconds.
func avgQueryMs(e *embellish.Engine, qs []*embellish.Query) float64 {
	total := time.Duration(0)
	for _, q := range qs {
		t0 := time.Now()
		if _, err := e.Process(q); err != nil {
			fatal(err)
		}
		total += time.Since(t0)
	}
	return total.Seconds() * 1000 / float64(len(qs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embellish-bench:", err)
	os.Exit(1)
}

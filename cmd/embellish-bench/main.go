// Command embellish-bench tracks the performance trajectory of the
// live segmented index and the private document-retrieval path: it
// builds a synthetic world, measures private query latency on the
// static engine, times an online add of a fraction of new documents
// against a from-scratch rebuild, measures query latency on the
// updated engine, then measures per-document PIR fetch latency —
// sequential reference scan vs. the windowed/parallel serving plan
// vs. the pipelined remote protocol over a real TCP loopback vs. the
// amortized multi-query path (every block query of the fetch answered
// in ONE database pass on the Montgomery kernel, locally and over the
// batched wire protocol) — against
// plaintext fetch at two corpus sizes; then measures the durability
// tax and payoff: write-ahead-logged ingest (fsync=interval) against
// in-memory ingest, and checkpoint+log recovery against re-ingesting
// the same operations through the public API; finally it measures the
// cluster tier: the same corpus served by one partition process vs.
// three behind the scatter-gather router, with the encrypted
// candidate sets checked byte-identical between the shapes; and the
// privacy serving tier: the paper's risk-vs-bucket-size figure read
// back from a risk-auditing server over the wire, plus the tail-latency
// tax of decoy cover traffic (see docs/THREAT_MODEL.md). Figures
// land as machine-readable JSON (BENCH_PR10.json by default) so
// successive PRs can be compared.
//
// Usage:
//
//	embellish-bench [-docs 1200] [-synsets 2500] [-add-frac 0.1]
//	                [-queries 12] [-bktsz 8] [-keybits 256] [-seed 1]
//	                [-fetch-sizes "1200,12000"] [-fetch-count 2]
//	                [-fetch-block 1024] [-fetch-keybits 64]
//	                [-fetch-pipeline 16] [-pir-workers -1]
//	                [-durable-docs 8000] [-durable-synsets 6000]
//	                [-durable-ops 200] [-durable-batch 3]
//	                [-durable-every 64]
//	                [-cluster-base 60] [-cluster-docs 12000]
//	                [-cluster-synsets 2500] [-cluster-keybits 256]
//	                [-cluster-queries 4] [-cluster-rounds 2]
//	                [-privacy-docs 3000] [-privacy-synsets 2500]
//	                [-privacy-trials 25] [-privacy-bktszs "2,4,8"]
//	                [-privacy-ghosts 4] [-privacy-queries 40]
//	                [-only fetch|load|cluster|privacy]
//	                [-quick] [-out BENCH_PR10.json]
//
// -quick shrinks the world for CI smoke runs. The PIR fetch costs one
// |n|-bit modular multiplication per stored corpus BIT per block
// fetched (the Kushilevitz-Ostrovsky server scan), so the fetch legs
// deliberately run small moduli; the latency gap to plaintext fetch is
// the point of the experiment, mirroring the Figure 7/8 story, and the
// sequential-vs-parallel gap is the constant factor the serving plan
// claws back from it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"embellish"
	"embellish/internal/corpus"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

// Report is the machine-readable benchmark output.
type Report struct {
	// World shape.
	Docs     int   `json:"docs"`
	Added    int   `json:"added"`
	Synsets  int   `json:"synsets"`
	BktSz    int   `json:"bktsz"`
	KeyBits  int   `json:"keybits"`
	Queries  int   `json:"queries"`
	Seed     int64 `json:"seed"`
	Segments int   `json:"segments_after_add"`

	// Query latency (server-side Engine.Process, milliseconds).
	StaticQueryMs float64 `json:"static_query_ms"`
	LiveQueryMs   float64 `json:"live_query_ms"`

	// Update path.
	AddSeconds     float64 `json:"add_seconds"`
	AddDocsPerSec  float64 `json:"add_docs_per_sec"`
	RebuildSeconds float64 `json:"rebuild_seconds"`
	// Speedup is rebuild/add — the incremental-path advantage the
	// acceptance criterion bounds at >= 5x.
	Speedup float64 `json:"speedup_vs_rebuild"`

	// Private document retrieval: per-fetch PIR latency vs plaintext
	// fetch, one leg per corpus size.
	Fetch []FetchLeg `json:"fetch"`

	// Crash-safe durability: journaled-ingest overhead and
	// checkpoint+replay recovery speed.
	Durable DurableLeg `json:"durable"`

	// Heavy-traffic operations: the open-loop Poisson load sweep
	// against a queued-admission server, plus the mid-scan
	// cancellation probe.
	Load LoadReport `json:"load"`

	// Cluster serving: scatter-gather scaling of the same corpus on
	// one partition vs. three behind the router.
	Cluster ClusterReport `json:"cluster"`

	// Privacy serving: the risk-vs-bucket-size figure through the
	// networked stack plus the decoy-overhead latency leg.
	Privacy PrivacyReport `json:"privacy"`
}

// DurableLeg measures the write-ahead log on its own world: the
// ingest overhead of journaling every update batch (fsync=interval —
// the acceptance criterion bounds it at <= 3x the in-memory rate),
// and the recovery payoff — OpenDurable (newest checkpoint + log-tail
// replay) against re-ingesting the same operations through the public
// API (the criterion bounds the speedup at >= 10x).
type DurableLeg struct {
	BaseDocs  int    `json:"base_docs"`
	Synsets   int    `json:"synsets"`
	Ops       int    `json:"ops"`
	DocsPerOp int    `json:"docs_per_op"`
	Fsync     string `json:"fsync"`
	// CheckpointEvery is the explicit checkpoint cadence during the
	// durable ingest; the log tail recovery replays is bounded by it.
	CheckpointEvery int `json:"checkpoint_every"`

	// Ingest: the same operation stream applied in-memory and journaled.
	MemAddSeconds   float64 `json:"mem_add_seconds"`
	MemDocsPerSec   float64 `json:"mem_docs_per_sec"`
	DurAddSeconds   float64 `json:"durable_add_seconds"`
	DurDocsPerSec   float64 `json:"durable_docs_per_sec"`
	DurableOverhead float64 `json:"durable_overhead_vs_mem"`

	// Checkpoint cost model: total time and final snapshot size.
	Checkpoints       int     `json:"checkpoints"`
	CheckpointSeconds float64 `json:"checkpoint_seconds"`
	CheckpointBytes   int64   `json:"checkpoint_bytes"`
	WALBytes          int64   `json:"wal_bytes"`

	// Recovery: checkpoint load + tail replay vs full recompute.
	ReplayedOps     int     `json:"replayed_ops"`
	RecoverSeconds  float64 `json:"recover_seconds"`
	ReingestSeconds float64 `json:"reingest_seconds"`
	ReplaySpeedup   float64 `json:"recovery_speedup_vs_reingest"`
}

// FetchLeg is the PIR-vs-plaintext document fetch comparison at one
// corpus size, measured on three serving plans: the sequential
// reference scan (PIRWorkers=0, pipeline depth 1 — the paper's cost
// model), the windowed/parallel plan (PIRWorkers=-1), and the
// pipelined remote protocol (batch frames over a TCP loopback against
// a parallel-serving NetServer).
type FetchLeg struct {
	Docs         int `json:"docs"`
	StoredBytes  int `json:"stored_bytes"`
	Blocks       int `json:"blocks"`
	BlockSize    int `json:"block_size"`
	FetchKeyBits int `json:"fetch_keybits"`
	Fetches      int `json:"fetches"`
	PIRRuns      int `json:"pir_runs"`

	// Sequential reference plan.
	SeqMsPerDoc float64 `json:"seq_ms_per_doc"`
	SeqDocsSec  float64 `json:"seq_docs_per_sec"`

	// Windowed/parallel serving plan (local fetch, PIRWorkers=-1).
	ParWorkers  int     `json:"par_workers"`
	ParMsPerDoc float64 `json:"par_ms_per_doc"`
	// ParSpeedup is sequential/parallel latency — the acceptance
	// criterion bounds it at >= 2x at the large corpus size.
	ParSpeedup float64 `json:"par_speedup_vs_seq"`

	// Pipelined remote protocol (batched PIR over TCP loopback,
	// parallel serving, per-query scans).
	PipeDepth    int     `json:"pipe_depth"`
	PipeMsPerDoc float64 `json:"pipe_ms_per_doc"`
	PipeSpeedup  float64 `json:"pipe_speedup_vs_seq"`

	// Amortized multi-query serving (PIRBatchAmortize on): ONE
	// FetchDocuments call covers every id, so all block queries of the
	// fetch are answered in a single database pass on the Montgomery
	// kernel. AmortBatch is the number of block queries amortized over.
	AmortBatch    int     `json:"amort_batch"`
	AmortMsPerDoc float64 `json:"amort_ms_per_doc"`
	AmortSpeedup  float64 `json:"amort_speedup_vs_seq"`
	// The same one-call fetch over the batched wire protocol against an
	// amortizing NetServer — the headline figure successive PRs track.
	AmortPipeMsPerDoc float64 `json:"amort_pipe_ms_per_doc"`
	AmortPipeSpeedup  float64 `json:"amort_pipe_speedup_vs_seq"`

	// Recursive two-level protocol (PIRRecursive + amortization): the
	// same one-call fetch with √n×√n grid queries — upload drops from n
	// to ≤3·⌈√n⌉ ciphertexts per query (RecQueryBytes/RecBatch vs
	// QueryBytes/PIRRuns), answers widen 8·modBytes× (the trade), bytes
	// stay identical. Locally and over type-22 wire frames.
	RecBatch        int     `json:"rec_batch"`
	RecMsPerDoc     float64 `json:"rec_ms_per_doc"`
	RecSpeedup      float64 `json:"rec_speedup_vs_seq"`
	RecPipeMsPerDoc float64 `json:"rec_pipe_ms_per_doc"`
	RecPipeSpeedup  float64 `json:"rec_pipe_speedup_vs_seq"`
	RecQueryBytes   int     `json:"rec_query_bytes"`
	RecAnswerBytes  int     `json:"rec_answer_bytes"`

	PlainUsDoc float64 `json:"plain_us_per_doc"`
	// Slowdown is sequential-PIR latency over plaintext latency — the
	// privacy price of hiding WHICH document was fetched, under the
	// paper's cost model; the parallel/pipelined plans divide it by
	// their speedups.
	Slowdown    float64 `json:"pir_slowdown_vs_plain"`
	QueryBytes  int     `json:"query_bytes"`
	AnswerBytes int     `json:"answer_bytes"`
}

func main() {
	var (
		docs    = flag.Int("docs", 1200, "base corpus size")
		synsets = flag.Int("synsets", 2500, "synthetic lexicon size")
		addFrac = flag.Float64("add-frac", 0.1, "fraction of new documents to add online")
		queries = flag.Int("queries", 12, "queries to average latency over")
		bktSz   = flag.Int("bktsz", 8, "bucket size")
		keyBits = flag.Int("keybits", 256, "Benaloh key size")
		seed    = flag.Int64("seed", 1, "world seed")
		quick   = flag.Bool("quick", false, "small world for CI smoke runs")
		out     = flag.String("out", "BENCH_PR10.json", "output JSON path")
		only    = flag.String("only", "", "run a single section: fetch, load, cluster or privacy (empty runs everything)")

		fetchSizes = flag.String("fetch-sizes", "1200,12000", "comma-separated corpus sizes for the PIR fetch legs (empty disables)")
		fetchCount = flag.Int("fetch-count", 2, "documents fetched per leg")
		fetchBlock = flag.Int("fetch-block", 1024, "PIR block size in bytes for the fetch legs")
		fetchBits  = flag.Int("fetch-keybits", 64, "PIR modulus size for the fetch legs")
		fetchPipe  = flag.Int("fetch-pipeline", 16, "fetch-pipeline depth for the pipelined leg")
		pirWorkers = flag.Int("pir-workers", -1, "PIR serving workers for the parallel/pipelined legs (-1 GOMAXPROCS)")

		durDocs    = flag.Int("durable-docs", 8000, "base corpus size for the durability leg (0 disables)")
		durSynsets = flag.Int("durable-synsets", 6000, "lexicon size for the durability leg")
		durOps     = flag.Int("durable-ops", 200, "journaled update batches for the durability leg")
		durBatch   = flag.Int("durable-batch", 3, "documents per journaled batch")
		durEvery   = flag.Int("durable-every", 64, "checkpoint every this many batches during the durable ingest")

		loadRates   = flag.String("load-rates", "auto", "open-loop arrival rates in req/s, comma-separated; auto sweeps 0.5/0.8/1.6x measured capacity; empty disables")
		loadSeconds = flag.Float64("load-seconds", 10, "duration of each open-loop rate leg")
		loadDocs    = flag.Int("load-docs", 200, "corpus size for the load leg")
		loadSynsets = flag.Int("load-synsets", 1500, "lexicon size for the load leg")
		loadBits    = flag.Int("load-keybits", 128, "Benaloh key size for the load leg")
		loadStrict  = flag.Bool("load-strict", false, "exit nonzero if any load-leg request fails outright (sheds are not failures)")

		clBase    = flag.Int("cluster-base", 60, "template corpus size for the cluster scatter-gather leg (0 disables)")
		clGrow    = flag.Int("cluster-docs", 12000, "documents ingested through the router for the cluster leg")
		clSynsets = flag.Int("cluster-synsets", 2500, "lexicon size for the cluster leg")
		clBits    = flag.Int("cluster-keybits", 256, "Benaloh key size for the cluster leg")
		clQueries = flag.Int("cluster-queries", 4, "queries per measurement round in the cluster leg")
		clRounds  = flag.Int("cluster-rounds", 2, "measurement rounds per cluster shape")

		privDocs    = flag.Int("privacy-docs", 3000, "corpus size for the privacy serving legs (0 disables)")
		privSynsets = flag.Int("privacy-synsets", 2500, "lexicon size for the privacy serving legs")
		privTrials  = flag.Int("privacy-trials", 25, "audited queries per risk leg")
		privQSize   = flag.Int("privacy-qsize", 4, "genuine terms per audited query")
		privBktSzs  = flag.String("privacy-bktszs", "2,4,8", "bucket sizes swept by the served risk figure")
		privGhosts  = flag.Int("privacy-ghosts", 4, "decoys per genuine query in the decoy-overhead leg")
		privQueries = flag.Int("privacy-queries", 40, "genuine queries timed per decoy-overhead pass")
	)
	flag.Parse()
	if *quick {
		*docs, *synsets, *queries = 300, 1500, 4
		if *fetchSizes == "1200,12000" {
			*fetchSizes = "120,600"
		}
		*durDocs, *durSynsets, *durOps, *durBatch, *durEvery = 300, 1500, 30, 2, 8
		*loadSeconds, *loadDocs, *loadSynsets = 2, 200, 1000
		*privDocs, *privSynsets, *privTrials, *privQueries = 300, 1500, 10, 20
		// Big enough that the per-partition posting scan, not the
		// loopback round trip, dominates — the scatter should still
		// show a real speedup in the smoke run.
		*clBase, *clGrow, *clSynsets, *clQueries, *clRounds = 60, 3000, 2000, 4, 2
	}

	clusterCfg := clusterConfig{
		base: *clBase, grow: *clGrow, synsets: *clSynsets,
		bktSz: *bktSz, keyBits: *clBits,
		queries: *clQueries, rounds: *clRounds, seed: *seed,
	}
	var privBkts []int
	for _, f := range strings.Split(*privBktSzs, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(fmt.Errorf("bad -privacy-bktszs entry %q: %w", f, err))
		}
		privBkts = append(privBkts, n)
	}
	privacyCfg := privacyConfig{
		docs: *privDocs, synsets: *privSynsets, keyBits: *keyBits,
		trials: *privTrials, querySize: *privQSize, bktSzs: privBkts,
		ghostRate: *privGhosts, latQueries: *privQueries, seed: *seed,
	}
	mkLegConfig := func(size int) legConfig {
		return legConfig{
			synsets: *synsets, size: size, bktSz: *bktSz, keyBits: *keyBits,
			fetchBits: *fetchBits, blockSize: *fetchBlock, fetches: *fetchCount,
			pipeline: *fetchPipe, workers: *pirWorkers, seed: *seed,
		}
	}
	switch *only {
	case "":
	case "fetch":
		rep := Report{Seed: *seed}
		db := wngen.Generate(wngen.ScaledConfig(*synsets, *seed))
		if err := runFetchSection(&rep, db, *fetchSizes, mkLegConfig); err != nil {
			fatal(err)
		}
		writeReport(&rep, *out)
		return
	case "privacy":
		rep := Report{Seed: *seed}
		if err := runPrivacySection(&rep, privacyCfg); err != nil {
			fatal(err)
		}
		writeReport(&rep, *out)
		return
	case "load":
		rep := Report{Seed: *seed}
		runLoadSection(&rep, loadConfig{
			docs: *loadDocs, synsets: *loadSynsets, bktSz: *bktSz, keyBits: *loadBits,
			rates: *loadRates, seconds: *loadSeconds, seed: *seed,
		}, *loadStrict)
		writeReport(&rep, *out)
		return
	case "cluster":
		rep := Report{Seed: *seed}
		if err := runClusterSection(&rep, clusterCfg); err != nil {
			fatal(err)
		}
		writeReport(&rep, *out)
		return
	default:
		fatal(fmt.Errorf("unknown -only section %q (\"fetch\", \"load\", \"cluster\" and \"privacy\" are supported)", *only))
	}

	extra := int(float64(*docs) * *addFrac)
	db := wngen.Generate(wngen.ScaledConfig(*synsets, *seed))
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = *docs + extra
	ccfg.Seed = *seed + 1
	corp := corpus.Generate(db, ccfg)
	world := make([]embellish.Document, len(corp.Docs))
	for i, d := range corp.Docs {
		world[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}
	base, added := world[:*docs], world[*docs:]

	opts := embellish.DefaultOptions()
	opts.BucketSize = *bktSz
	opts.KeyBits = *keyBits
	engine, err := embellish.NewEngine(embellish.SyntheticLexicon(*synsets, *seed), base, opts)
	if err != nil {
		fatal(err)
	}
	client, err := engine.NewClient(nil)
	if err != nil {
		fatal(err)
	}

	// Embellish the query set once; latency measures the server side.
	lemmas := engine.SearchableLemmas()
	embellished := make([]*embellish.Query, *queries)
	for i := range embellished {
		q := lemmas[(7*i)%len(lemmas)] + " " + lemmas[(13*i+5)%len(lemmas)]
		embellished[i], err = client.Embellish(q)
		if err != nil {
			fatal(fmt.Errorf("embellish %q: %w", q, err))
		}
	}
	rep := Report{
		Docs: *docs, Added: extra, Synsets: *synsets, BktSz: *bktSz,
		KeyBits: *keyBits, Queries: *queries, Seed: *seed,
	}
	rep.StaticQueryMs = avgQueryMs(engine, embellished)

	t0 := time.Now()
	if err := engine.AddDocuments(added); err != nil {
		fatal(err)
	}
	rep.AddSeconds = time.Since(t0).Seconds()
	rep.AddDocsPerSec = float64(extra) / rep.AddSeconds
	rep.Segments = engine.NumSegments()
	rep.LiveQueryMs = avgQueryMs(engine, embellished)

	// Time only the engine build: a redeploy reuses its lexicon, so
	// lexicon generation stays outside the window.
	lex2 := embellish.SyntheticLexicon(*synsets, *seed)
	t0 = time.Now()
	if _, err := embellish.NewEngine(lex2, world, opts); err != nil {
		fatal(err)
	}
	rep.RebuildSeconds = time.Since(t0).Seconds()
	rep.Speedup = rep.RebuildSeconds / rep.AddSeconds

	if *fetchSizes != "" {
		if err := runFetchSection(&rep, db, *fetchSizes, mkLegConfig); err != nil {
			fatal(err)
		}
	}

	if *durDocs > 0 && *durOps > 0 {
		leg, err := durableLeg(durableConfig{
			docs: *durDocs, synsets: *durSynsets, bktSz: *bktSz, keyBits: *keyBits,
			ops: *durOps, batch: *durBatch, every: *durEvery, seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		rep.Durable = leg
		fmt.Printf("durable leg %d docs + %d ops: mem add %.0f docs/s, journaled %.0f docs/s (%.2fx overhead); recover %.3fs vs reingest %.3fs (%.1fx)\n",
			leg.BaseDocs, leg.Ops, leg.MemDocsPerSec, leg.DurDocsPerSec, leg.DurableOverhead,
			leg.RecoverSeconds, leg.ReingestSeconds, leg.ReplaySpeedup)
	}

	if *loadRates != "" {
		runLoadSection(&rep, loadConfig{
			docs: *loadDocs, synsets: *loadSynsets, bktSz: *bktSz, keyBits: *loadBits,
			rates: *loadRates, seconds: *loadSeconds, seed: *seed,
		}, *loadStrict)
	}

	if *clBase > 0 {
		if err := runClusterSection(&rep, clusterCfg); err != nil {
			fatal(err)
		}
	}

	if *privDocs > 0 {
		if err := runPrivacySection(&rep, privacyCfg); err != nil {
			fatal(err)
		}
	}

	writeReport(&rep, *out)
	fmt.Printf("wrote %s: add %d docs in %.3fs (%.0f docs/s), rebuild %.3fs, speedup %.1fx\n",
		*out, extra, rep.AddSeconds, rep.AddDocsPerSec, rep.RebuildSeconds, rep.Speedup)
}

// runFetchSection sweeps the PIR fetch legs over the configured corpus
// sizes into the report.
func runFetchSection(rep *Report, db *wordnet.Database, sizes string, mk func(size int) legConfig) error {
	for _, field := range strings.Split(sizes, ",") {
		size, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad -fetch-sizes entry %q: %w", field, err)
		}
		leg, err := fetchLeg(db, mk(size))
		if err != nil {
			return err
		}
		rep.Fetch = append(rep.Fetch, leg)
		fmt.Printf("fetch leg %d docs: seq %.1f ms/doc, parallel %.1f ms/doc (%.1fx), pipelined %.1f ms/doc (%.1fx), amortized %.1f ms/doc (%.1fx, batch %d), amortized+pipelined %.1f ms/doc (%.1fx), recursive %.1f ms/doc (%.1fx) / wire %.1f ms/doc (%.1fx), plain %.1f us/doc, seq slowdown %.0fx\n",
			leg.Docs, leg.SeqMsPerDoc, leg.ParMsPerDoc, leg.ParSpeedup,
			leg.PipeMsPerDoc, leg.PipeSpeedup,
			leg.AmortMsPerDoc, leg.AmortSpeedup, leg.AmortBatch,
			leg.AmortPipeMsPerDoc, leg.AmortPipeSpeedup,
			leg.RecMsPerDoc, leg.RecSpeedup, leg.RecPipeMsPerDoc, leg.RecPipeSpeedup,
			leg.PlainUsDoc, leg.Slowdown)
		if leg.PIRRuns > 0 && leg.RecBatch > 0 {
			fmt.Printf("  upload: flat %d B/query, recursive %d B/query (%.1fx smaller); recursive answers %d B/query\n",
				leg.QueryBytes/leg.PIRRuns, leg.RecQueryBytes/leg.RecBatch,
				float64(leg.QueryBytes)/float64(leg.PIRRuns)/(float64(leg.RecQueryBytes)/float64(leg.RecBatch)),
				leg.RecAnswerBytes/leg.RecBatch)
		}
	}
	return nil
}

// runLoadSection runs the heavy-traffic legs into the report, applying
// the -load-strict failure policy.
func runLoadSection(rep *Report, cfg loadConfig, strict bool) {
	load, err := loadLegs(cfg)
	rep.Load = load
	if err != nil {
		fatal(err)
	}
	failed := 0
	for _, leg := range load.Legs {
		failed += leg.Failed
	}
	fmt.Printf("load sweep: capacity %.0f req/s, knee at %.0f req/s, p99 across knee %.2fx; cancel leg: %.0f%% of scan at half-latency deadline (overshoot %.1f ms)\n",
		load.CapacityPerSec, load.KneeRatePerSec, load.P99RatioAcrossKnee,
		load.Cancel.WorkFraction*100, load.Cancel.OvershootMs)
	if strict && failed > 0 {
		fatal(fmt.Errorf("load legs had %d failed requests", failed))
	}
}

// writeReport marshals the report to out and echoes it to stdout.
func writeReport(rep *Report, out string) {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fatal(err)
	}
	os.Stdout.Write(blob)
}

// legConfig parameterizes one fetch leg.
type legConfig struct {
	synsets, size, bktSz, keyBits int
	fetchBits, blockSize, fetches int
	pipeline, workers             int
	seed                          int64
}

// fetchLeg builds a retrieval-enabled engine over a size-doc corpus
// and measures per-document fetch latency on five serving plans —
// sequential reference, windowed/parallel, the pipelined remote
// protocol over a TCP loopback, and the amortized multi-query path
// both locally and over the wire — all against a direct
// Engine.Document read. Every plan's bytes are verified identical to
// the direct read. The seq/par/pipe legs run with amortization
// disabled so their figures stay comparable with earlier reports; the
// amort legs then re-enable it.
func fetchLeg(db *wordnet.Database, cfg legConfig) (FetchLeg, error) {
	var leg FetchLeg
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = cfg.size
	ccfg.Seed = cfg.seed + 3
	corp := corpus.Generate(db, ccfg)
	world := make([]embellish.Document, len(corp.Docs))
	stored := 0
	for i, d := range corp.Docs {
		world[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
		stored += len(world[i].Text)
	}
	opts := embellish.DefaultOptions()
	opts.BucketSize = cfg.bktSz
	opts.KeyBits = cfg.keyBits
	opts.StoreDocuments = true
	opts.BlockSize = cfg.blockSize
	opts.RetrievalKeyBits = cfg.fetchBits
	e, err := embellish.NewEngine(embellish.SyntheticLexicon(cfg.synsets, cfg.seed), world, opts)
	if err != nil {
		return leg, fmt.Errorf("fetch leg %d docs: %w", cfg.size, err)
	}
	// Comparability: the legacy legs measure per-query serving exactly
	// as earlier reports did; the amortized legs below flip this on.
	if err := e.ConfigurePIRBatchAmortize(-1); err != nil {
		return leg, err
	}
	leg.Docs = cfg.size
	leg.StoredBytes = stored
	leg.BlockSize = cfg.blockSize
	leg.Blocks = (stored + cfg.blockSize - 1) / cfg.blockSize // lower bound; per-doc padding adds a few
	leg.FetchKeyBits = cfg.fetchBits
	leg.Fetches = cfg.fetches
	leg.ParWorkers = cfg.workers
	if cfg.workers < 0 {
		leg.ParWorkers = runtime.GOMAXPROCS(0)
	}
	leg.PipeDepth = cfg.pipeline

	// Deterministic spread of fetched ids across the corpus.
	ids := make([]int, cfg.fetches)
	for i := range ids {
		ids[i] = (i*cfg.size)/cfg.fetches + cfg.size/(2*cfg.fetches)
	}

	// timePlan fetches every id one document per call (per-document
	// latency, like a real top-k fetch loop) and verifies the bytes.
	timePlan := func(fetch func(id int) ([][]byte, embellish.FetchStats, error), account bool) (float64, error) {
		t0 := time.Now()
		for _, id := range ids {
			docs, st, err := fetch(id)
			if err != nil {
				return 0, fmt.Errorf("PIR fetch %d: %w", id, err)
			}
			direct, err := e.Document(id)
			if err != nil || string(docs[0]) != string(direct) {
				return 0, fmt.Errorf("fetch %d: PIR bytes disagree with direct read (%v)", id, err)
			}
			if account {
				leg.PIRRuns += st.Runs
				leg.QueryBytes += st.QueryBytes
				leg.AnswerBytes += st.AnswerBytes
			}
		}
		return time.Since(t0).Seconds() * 1000 / float64(len(ids)), nil
	}

	// timeBatch fetches every id in ONE call (the top-k shape the
	// amortized path is built for) and verifies the bytes.
	timeBatch := func(fetch func() ([][]byte, embellish.FetchStats, error)) (float64, embellish.FetchStats, error) {
		t0 := time.Now()
		docs, st, err := fetch()
		elapsed := time.Since(t0).Seconds() * 1000 / float64(len(ids))
		if err != nil {
			return 0, st, fmt.Errorf("amortized PIR fetch: %w", err)
		}
		for i, id := range ids {
			direct, err := e.Document(id)
			if err != nil || string(docs[i]) != string(direct) {
				return 0, st, fmt.Errorf("amortized fetch %d: PIR bytes disagree with direct read (%v)", id, err)
			}
		}
		return elapsed, st, nil
	}

	// Sequential reference: the paper's cost model — single-threaded
	// scan, one synchronous execution per block.
	if err := e.ConfigurePIRWorkers(0); err != nil {
		return leg, err
	}
	seqClient, err := e.NewClient(nil)
	if err != nil {
		return leg, err
	}
	if err := seqClient.SetFetchPipeline(1); err != nil {
		return leg, err
	}
	if leg.SeqMsPerDoc, err = timePlan(func(id int) ([][]byte, embellish.FetchStats, error) {
		return seqClient.FetchDocuments([]int{id})
	}, true); err != nil {
		return leg, err
	}
	leg.SeqDocsSec = 1000 / leg.SeqMsPerDoc

	// Windowed/parallel plan. A fresh client (fresh modulus of the same
	// size) keeps the measurement honest: answers are recomputed, not
	// replayed.
	if err := e.ConfigurePIRWorkers(cfg.workers); err != nil {
		return leg, err
	}
	parClient, err := e.NewClient(nil)
	if err != nil {
		return leg, err
	}
	if leg.ParMsPerDoc, err = timePlan(func(id int) ([][]byte, embellish.FetchStats, error) {
		return parClient.FetchDocuments([]int{id})
	}, false); err != nil {
		return leg, err
	}
	if leg.ParMsPerDoc > 0 {
		leg.ParSpeedup = leg.SeqMsPerDoc / leg.ParMsPerDoc
	}

	// Pipelined remote protocol: batch frames over TCP loopback against
	// a NetServer running the parallel plan.
	srv := e.NewNetServer(embellish.ServeConfig{AllowRetrieval: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return leg, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return leg, err
	}
	pipeClient, err := e.NewClient(nil)
	if err != nil {
		return leg, err
	}
	// 0 means "library default", matching embellish-search's contract.
	if cfg.pipeline > 0 {
		if err := pipeClient.SetFetchPipeline(cfg.pipeline); err != nil {
			return leg, err
		}
	} else {
		leg.PipeDepth = embellish.DefaultFetchPipeline
	}
	if leg.PipeMsPerDoc, err = timePlan(func(id int) ([][]byte, embellish.FetchStats, error) {
		return pipeClient.FetchDocumentsRemote(conn, []int{id})
	}, false); err != nil {
		return leg, err
	}
	if leg.PipeMsPerDoc > 0 {
		leg.PipeSpeedup = leg.SeqMsPerDoc / leg.PipeMsPerDoc
	}

	// Amortized multi-query serving: every block query of the whole
	// fetch in one database pass on the Montgomery kernel. Local first.
	if err := e.ConfigurePIRBatchAmortize(1); err != nil {
		return leg, err
	}
	amortClient, err := e.NewClient(nil)
	if err != nil {
		return leg, err
	}
	var amortStats embellish.FetchStats
	if leg.AmortMsPerDoc, amortStats, err = timeBatch(func() ([][]byte, embellish.FetchStats, error) {
		return amortClient.FetchDocuments(ids)
	}); err != nil {
		return leg, err
	}
	leg.AmortBatch = amortStats.Runs
	if leg.AmortMsPerDoc > 0 {
		leg.AmortSpeedup = leg.SeqMsPerDoc / leg.AmortMsPerDoc
	}

	// The same one-call fetch over the wire: the server's zero override
	// now inherits the engine's amortize-on knob, and the client's
	// pipelined writer packs full batch frames.
	amortConn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return leg, err
	}
	amortPipeClient, err := e.NewClient(nil)
	if err != nil {
		return leg, err
	}
	if cfg.pipeline > 0 {
		if err := amortPipeClient.SetFetchPipeline(cfg.pipeline); err != nil {
			return leg, err
		}
	}
	if leg.AmortPipeMsPerDoc, _, err = timeBatch(func() ([][]byte, embellish.FetchStats, error) {
		return amortPipeClient.FetchDocumentsRemote(amortConn, ids)
	}); err != nil {
		return leg, err
	}
	if leg.AmortPipeMsPerDoc > 0 {
		leg.AmortPipeSpeedup = leg.SeqMsPerDoc / leg.AmortPipeMsPerDoc
	}
	amortConn.Close()

	// Recursive two-level protocol, amortization still on: one call
	// fetches every id through √n×√n grid queries. Local first.
	recClient, err := e.NewClient(nil)
	if err != nil {
		return leg, err
	}
	recClient.SetFetchRecursive(true)
	var recStats embellish.FetchStats
	if leg.RecMsPerDoc, recStats, err = timeBatch(func() ([][]byte, embellish.FetchStats, error) {
		return recClient.FetchDocuments(ids)
	}); err != nil {
		return leg, err
	}
	leg.RecBatch = recStats.Runs
	leg.RecQueryBytes = recStats.QueryBytes
	leg.RecAnswerBytes = recStats.AnswerBytes
	if leg.RecMsPerDoc > 0 {
		leg.RecSpeedup = leg.SeqMsPerDoc / leg.RecMsPerDoc
	}

	// The same recursive fetch over type-22 wire frames.
	recConn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return leg, err
	}
	recPipeClient, err := e.NewClient(nil)
	if err != nil {
		return leg, err
	}
	recPipeClient.SetFetchRecursive(true)
	if cfg.pipeline > 0 {
		if err := recPipeClient.SetFetchPipeline(cfg.pipeline); err != nil {
			return leg, err
		}
	}
	if leg.RecPipeMsPerDoc, _, err = timeBatch(func() ([][]byte, embellish.FetchStats, error) {
		return recPipeClient.FetchDocumentsRemote(recConn, ids)
	}); err != nil {
		return leg, err
	}
	if leg.RecPipeMsPerDoc > 0 {
		leg.RecPipeSpeedup = leg.SeqMsPerDoc / leg.RecPipeMsPerDoc
	}
	recConn.Close()

	conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		cancel()
		return leg, err
	}
	cancel()
	if err := <-done; err != nil {
		return leg, err
	}

	// Plaintext leg: the same documents, read directly, averaged over
	// enough repetitions to be measurable.
	const plainReps = 2000
	t0 := time.Now()
	for i := 0; i < plainReps; i++ {
		if _, err := e.Document(ids[i%len(ids)]); err != nil {
			return leg, err
		}
	}
	leg.PlainUsDoc = time.Since(t0).Seconds() * 1e6 / plainReps
	if leg.PlainUsDoc > 0 {
		leg.Slowdown = leg.SeqMsPerDoc * 1000 / leg.PlainUsDoc
	}
	return leg, nil
}

// durableConfig parameterizes the durability leg.
type durableConfig struct {
	docs, synsets, bktSz, keyBits int
	ops, batch, every             int
	seed                          int64
}

// durableLeg measures the write-ahead log: journaled-ingest overhead
// (fsync=interval vs the identical in-memory op stream) and recovery
// speed (OpenDurable — newest checkpoint + log-tail replay — vs
// recomputing the same state through NewEngine + the same public-API
// ops). Every engine ends at the identical corpus; the recovered one
// is ranking-checked against the in-memory reference.
func durableLeg(cfg durableConfig) (DurableLeg, error) {
	leg := DurableLeg{
		BaseDocs: cfg.docs, Synsets: cfg.synsets, Ops: cfg.ops, DocsPerOp: cfg.batch,
		Fsync: "interval", CheckpointEvery: cfg.every,
	}
	db := wngen.Generate(wngen.ScaledConfig(cfg.synsets, cfg.seed))
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = cfg.docs + cfg.ops*cfg.batch
	ccfg.Seed = cfg.seed + 5
	corp := corpus.Generate(db, ccfg)
	world := make([]embellish.Document, len(corp.Docs))
	for i, d := range corp.Docs {
		world[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}
	base := world[:cfg.docs]
	batches := make([][]embellish.Document, cfg.ops)
	for i := range batches {
		start := cfg.docs + i*cfg.batch
		batches[i] = world[start : start+cfg.batch]
	}
	opts := embellish.DefaultOptions()
	opts.BucketSize = cfg.bktSz
	opts.KeyBits = cfg.keyBits
	lex := func() *embellish.Lexicon { return embellish.SyntheticLexicon(cfg.synsets, cfg.seed) }
	added := float64(cfg.ops * cfg.batch)

	ingest := func(e *embellish.Engine, checkpoint bool) (addSecs, ckptSecs float64, ckpts int, err error) {
		for i, b := range batches {
			t0 := time.Now()
			if err := e.AddDocuments(b); err != nil {
				return 0, 0, 0, err
			}
			addSecs += time.Since(t0).Seconds()
			if checkpoint && cfg.every > 0 && (i+1)%cfg.every == 0 && i+1 < len(batches) {
				t0 = time.Now()
				if err := e.Checkpoint(); err != nil {
					return 0, 0, 0, err
				}
				ckptSecs += time.Since(t0).Seconds()
				ckpts++
			}
		}
		return addSecs, ckptSecs, ckpts, nil
	}

	// In-memory reference: the same op stream without a journal.
	mem, err := embellish.NewEngine(lex(), base, opts)
	if err != nil {
		return leg, fmt.Errorf("durable leg: %w", err)
	}
	if leg.MemAddSeconds, _, _, err = ingest(mem, false); err != nil {
		return leg, err
	}
	leg.MemDocsPerSec = added / leg.MemAddSeconds

	// Journaled ingest with periodic checkpoints. The interval policy
	// is the acceptance criterion's configuration: appends hit the page
	// cache, a background flusher syncs.
	dir, err := os.MkdirTemp("", "embellish-bench-wal-")
	if err != nil {
		return leg, err
	}
	defer os.RemoveAll(dir)
	dopts := opts
	dopts.Durability = embellish.Durability{
		Dir: dir, Fsync: embellish.FsyncInterval,
		CheckpointEveryOps: -1, CheckpointEveryBytes: -1, // explicit cadence below
	}
	dur, err := embellish.NewEngine(lex(), base, dopts)
	if err != nil {
		return leg, fmt.Errorf("durable leg: %w", err)
	}
	var ckptSecs float64
	if leg.DurAddSeconds, ckptSecs, leg.Checkpoints, err = ingest(dur, true); err != nil {
		return leg, err
	}
	leg.DurDocsPerSec = added / leg.DurAddSeconds
	leg.DurableOverhead = leg.DurAddSeconds / leg.MemAddSeconds
	leg.CheckpointSeconds = ckptSecs
	if st, ok := dur.WALStatus(); ok {
		leg.ReplayedOps = int(st.Seq - st.CheckpointSeq)
	}
	if err := dur.Close(); err != nil {
		return leg, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return leg, err
	}
	for _, ent := range entries {
		info, err := ent.Info()
		if err != nil {
			continue
		}
		if strings.HasSuffix(ent.Name(), ".log") {
			leg.WALBytes += info.Size()
		} else if strings.HasSuffix(ent.Name(), ".bin") {
			leg.CheckpointBytes += info.Size()
		}
	}

	// Recovery: the crash-restart path.
	t0 := time.Now()
	rec, err := embellish.OpenDurable(dir, embellish.Options{})
	if err != nil {
		return leg, fmt.Errorf("durable leg recovery: %w", err)
	}
	leg.RecoverSeconds = time.Since(t0).Seconds()
	defer rec.Close()
	if rec.NumDocs() != mem.NumDocs() || rec.NextDocID() != mem.NextDocID() {
		return leg, fmt.Errorf("recovered corpus %d/%d docs, reference %d/%d",
			rec.NumDocs(), rec.NextDocID(), mem.NumDocs(), mem.NextDocID())
	}

	// Re-ingest: what a deployment without a journal does after a crash
	// — rebuild the engine, replay every operation through the public
	// API, and re-establish durability so the next crash is survivable
	// too (recovery above ends in exactly that state). The lexicon, as
	// in the rebuild leg above, is reusable and stays outside the
	// window.
	relex := lex()
	redir, err := os.MkdirTemp("", "embellish-bench-reingest-")
	if err != nil {
		return leg, err
	}
	defer os.RemoveAll(redir)
	t0 = time.Now()
	re, err := embellish.NewEngine(relex, base, opts)
	if err != nil {
		return leg, err
	}
	if _, _, _, err := ingest(re, false); err != nil {
		return leg, err
	}
	if err := re.EnableDurability(embellish.Durability{Dir: redir, Fsync: embellish.FsyncInterval}); err != nil {
		return leg, err
	}
	leg.ReingestSeconds = time.Since(t0).Seconds()
	if err := re.Close(); err != nil {
		return leg, err
	}
	leg.ReplaySpeedup = leg.ReingestSeconds / leg.RecoverSeconds

	// The three engines must rank identically: recovery is only a win
	// if it reproduces the corpus exactly.
	lemmas := mem.SearchableLemmas()
	q := lemmas[3] + " " + lemmas[11]
	want, err := mem.PlaintextSearch(q, 10)
	if err != nil {
		return leg, err
	}
	got, err := rec.PlaintextSearch(q, 10)
	if err != nil {
		return leg, err
	}
	if fmt.Sprint(want) != fmt.Sprint(got) {
		return leg, fmt.Errorf("recovered ranking %v differs from reference %v", got, want)
	}
	return leg, nil
}

// avgQueryMs runs every embellished query once through Engine.Process
// and returns the mean latency in milliseconds.
func avgQueryMs(e *embellish.Engine, qs []*embellish.Query) float64 {
	total := time.Duration(0)
	for _, q := range qs {
		t0 := time.Now()
		if _, err := e.Process(q); err != nil {
			fatal(err)
		}
		total += time.Since(t0)
	}
	return total.Seconds() * 1000 / float64(len(qs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embellish-bench:", err)
	os.Exit(1)
}

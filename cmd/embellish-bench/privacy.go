package main

// The privacy serving legs: the paper's risk-vs-bucket-size figure
// reproduced THROUGH the networked stack (a synced remote client
// queries a risk-auditing NetServer over a TCP loopback and reads the
// served per-session risk report — the same numbers the in-process
// evaluator of record computes, pinned equal by the test battery), and
// the decoy-overhead leg: client-observed genuine-query latency with
// the decoy stream off vs. on, the operational price of ghost cover.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"time"

	"embellish"
	"embellish/internal/corpus"
	"embellish/internal/wngen"
)

// PrivacyReport is the served-privacy section of the benchmark.
type PrivacyReport struct {
	// World shape.
	Docs      int   `json:"docs"`
	Synsets   int   `json:"synsets"`
	KeyBits   int   `json:"keybits"`
	Trials    int   `json:"trials"`
	QuerySize int   `json:"query_size"`
	Seed      int64 `json:"seed"`

	// Risk is the figure: one leg per bucket size, mean observed risk
	// strictly decreasing as buckets widen.
	Risk []RiskLeg `json:"risk"`

	// DecoyOverhead is the latency price of ghost cover.
	DecoyOverhead DecoyOverheadLeg `json:"decoy_overhead"`
}

// RiskLeg is the served risk figure at one bucket size: the audited
// session's mean/worst observed risk as reported by the server playing
// the paper's adversary over the wire.
type RiskLeg struct {
	BktSz    int     `json:"bktsz"`
	Queries  int     `json:"queries"`
	Audited  int     `json:"audited"`
	Skipped  int     `json:"skipped"`
	MeanRisk float64 `json:"mean_risk"`
	MaxRisk  float64 `json:"max_risk"`
}

// DecoyOverheadLeg compares client-observed genuine-query latency with
// the decoy stream disabled (GhostRate<0 — plain SearchRemote
// behaviour) against a stream sending GhostRate decoys per genuine
// query on the same server. The overhead ratio is what an operator
// budgets for when turning cover traffic on.
type DecoyOverheadLeg struct {
	GhostRate  int `json:"ghost_rate"`
	Queries    int `json:"queries"`
	DecoysSent int `json:"decoys_sent"`

	OffP50Ms float64 `json:"off_p50_ms"`
	OffP99Ms float64 `json:"off_p99_ms"`
	OnP50Ms  float64 `json:"on_p50_ms"`
	OnP99Ms  float64 `json:"on_p99_ms"`
	// P99Overhead is on/off at p99 — the decoy tax on tail latency.
	P99Overhead float64 `json:"p99_overhead"`
}

// privacyConfig parameterizes the privacy serving legs.
type privacyConfig struct {
	docs, synsets, keyBits int
	trials, querySize      int
	bktSzs                 []int
	ghostRate, latQueries  int
	seed                   int64
}

// runPrivacySection builds one synthetic world, then for each bucket
// size serves it over a loopback NetServer with lexicon sync and risk
// auditing enabled and measures the audited session's risk figure with
// a SYNCED remote client (no local engine copy — the full served
// path). The widest organization then hosts the decoy-overhead leg.
func runPrivacySection(rep *Report, cfg privacyConfig) error {
	p := PrivacyReport{
		Docs: cfg.docs, Synsets: cfg.synsets, KeyBits: cfg.keyBits,
		Trials: cfg.trials, QuerySize: cfg.querySize, Seed: cfg.seed,
	}
	db := wngen.Generate(wngen.ScaledConfig(cfg.synsets, cfg.seed))
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = cfg.docs
	ccfg.Seed = cfg.seed + 11
	corp := corpus.Generate(db, ccfg)
	world := make([]embellish.Document, len(corp.Docs))
	for i, d := range corp.Docs {
		world[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}

	var lastEngine *embellish.Engine
	for _, bktSz := range cfg.bktSzs {
		opts := embellish.DefaultOptions()
		opts.BucketSize = bktSz
		opts.KeyBits = cfg.keyBits
		e, err := embellish.NewEngine(embellish.SyntheticLexicon(cfg.synsets, cfg.seed), world, opts)
		if err != nil {
			return fmt.Errorf("privacy leg bktsz %d: %w", bktSz, err)
		}
		lastEngine = e
		leg, err := riskLeg(e, bktSz, cfg)
		if err != nil {
			return err
		}
		p.Risk = append(p.Risk, leg)
		fmt.Printf("privacy leg bktsz %d: %d queries audited over the wire, mean risk %.6f, worst %.6f\n",
			bktSz, leg.Audited, leg.MeanRisk, leg.MaxRisk)
	}

	// The figure's shape is the claim: widening buckets must strictly
	// shrink the adversary's expected agreement.
	for i := 1; i < len(p.Risk); i++ {
		if p.Risk[i].MeanRisk >= p.Risk[i-1].MeanRisk {
			return fmt.Errorf("privacy figure broken: risk %.6f at bktsz %d >= %.6f at bktsz %d",
				p.Risk[i].MeanRisk, p.Risk[i].BktSz, p.Risk[i-1].MeanRisk, p.Risk[i-1].BktSz)
		}
	}

	if lastEngine != nil && cfg.latQueries > 0 {
		leg, err := decoyOverheadLeg(lastEngine, cfg)
		if err != nil {
			return err
		}
		p.DecoyOverhead = leg
		fmt.Printf("decoy overhead at rate %d: off p99 %.1f ms, on p99 %.1f ms (%.2fx), %d decoys sent\n",
			leg.GhostRate, leg.OffP99Ms, leg.OnP99Ms, leg.P99Overhead, leg.DecoysSent)
	}
	rep.Privacy = p
	return nil
}

// servePrivacy starts a loopback NetServer with the privacy surfaces
// enabled and returns its address plus a stopper.
func servePrivacy(e *embellish.Engine) (string, func() error, error) {
	srv := e.NewNetServer(embellish.ServeConfig{
		AllowLexiconSync: true,
		RiskAudit:        true,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-done
	}
	return l.Addr().String(), stop, nil
}

// randomQueries draws trials querySize-term queries over the synced
// searchable dictionary, mirroring the evaluator's query model.
func randomQueries(lemmas []string, trials, querySize int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed + 13))
	out := make([]string, trials)
	for i := range out {
		perm := rng.Perm(len(lemmas))
		terms := make([]string, 0, querySize)
		for _, j := range perm[:querySize] {
			terms = append(terms, lemmas[j])
		}
		out[i] = strings.Join(terms, " ")
	}
	return out
}

// riskLeg syncs the lexicon over the wire, runs the query set through
// the served stack, and reads the server's own per-session risk report.
func riskLeg(e *embellish.Engine, bktSz int, cfg privacyConfig) (RiskLeg, error) {
	leg := RiskLeg{BktSz: bktSz, Queries: cfg.trials}
	addr, stop, err := servePrivacy(e)
	if err != nil {
		return leg, err
	}
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return leg, err
	}
	defer conn.Close()
	world, err := embellish.SyncLexicon(conn)
	if err != nil {
		return leg, fmt.Errorf("privacy leg bktsz %d: sync: %w", bktSz, err)
	}
	client, err := world.NewClient(nil)
	if err != nil {
		return leg, err
	}
	for _, q := range randomQueries(world.SearchableLemmas(), cfg.trials, cfg.querySize, cfg.seed) {
		if _, err := client.SearchRemote(conn, q, 10); err != nil {
			return leg, fmt.Errorf("privacy leg bktsz %d: query %q: %w", bktSz, q, err)
		}
	}
	report, err := embellish.SessionRiskAudit(conn)
	if err != nil {
		return leg, err
	}
	if report.Audited == 0 {
		return leg, fmt.Errorf("privacy leg bktsz %d: server audited no queries (%d skipped)", bktSz, report.Skipped)
	}
	leg.Audited = report.Audited
	leg.Skipped = report.Skipped
	leg.MeanRisk = report.MeanRisk
	leg.MaxRisk = report.MaxRisk
	return leg, nil
}

// decoyOverheadLeg measures genuine-query latency with cover traffic
// off vs. on against the same server. Both passes use a DecoyStream so
// the only difference is the ghost traffic itself.
func decoyOverheadLeg(e *embellish.Engine, cfg privacyConfig) (DecoyOverheadLeg, error) {
	leg := DecoyOverheadLeg{GhostRate: cfg.ghostRate, Queries: cfg.latQueries}
	addr, stop, err := servePrivacy(e)
	if err != nil {
		return leg, err
	}
	defer stop()

	run := func(rate int) (p50, p99 float64, decoys int, err error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return 0, 0, 0, err
		}
		defer conn.Close()
		world, err := embellish.SyncLexicon(conn)
		if err != nil {
			return 0, 0, 0, err
		}
		client, err := world.NewClient(nil)
		if err != nil {
			return 0, 0, 0, err
		}
		stream, err := client.NewDecoyStream(embellish.DecoyStreamConfig{GhostRate: rate, Seed: cfg.seed + 17})
		if err != nil {
			return 0, 0, 0, err
		}
		queries := randomQueries(world.SearchableLemmas(), cfg.latQueries, cfg.querySize, cfg.seed+19)
		lats := make([]float64, 0, len(queries))
		for _, q := range queries {
			t0 := time.Now()
			if _, err := stream.SearchRemote(context.Background(), conn, q, 10); err != nil {
				return 0, 0, 0, fmt.Errorf("decoy overhead rate %d: %w", rate, err)
			}
			lats = append(lats, time.Since(t0).Seconds()*1000)
		}
		sort.Float64s(lats)
		return percentile(lats, 0.50), percentile(lats, 0.99), int(stream.Stats().Decoys), nil
	}

	if leg.OffP50Ms, leg.OffP99Ms, _, err = run(-1); err != nil {
		return leg, err
	}
	if leg.OnP50Ms, leg.OnP99Ms, leg.DecoysSent, err = run(cfg.ghostRate); err != nil {
		return leg, err
	}
	if leg.OffP99Ms > 0 {
		leg.P99Overhead = leg.OnP99Ms / leg.OffP99Ms
	}
	if want := cfg.ghostRate * cfg.latQueries; leg.DecoysSent != want {
		return leg, fmt.Errorf("decoy overhead: stream sent %d decoys, expected %d", leg.DecoysSent, want)
	}
	return leg, nil
}

package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"embellish"
	"embellish/internal/cluster"
	"embellish/internal/corpus"
	"embellish/internal/wire"
	"embellish/internal/wngen"
)

// ClusterReport is the scatter-gather scaling section: the same corpus
// served by one partition process and by three, behind the cluster
// router, driven with byte-identical pre-embellished query frames.
type ClusterReport struct {
	BaseDocs  int `json:"base_docs"`
	GrownDocs int `json:"grown_docs"`
	Queries   int `json:"queries"`
	Rounds    int `json:"rounds"`

	Legs []ClusterLeg `json:"legs"`

	// Speedup3P is leg(1 partition) / leg(3 partitions) latency —
	// above 1.0 means the scatter won wall-clock from partitioning.
	Speedup3P float64 `json:"speedup_3p_vs_1p"`
	// Identical reports whether every query returned byte-identical
	// encrypted candidates from both cluster shapes.
	Identical bool `json:"rankings_identical"`
}

// ClusterLeg is one cluster shape's measured query latency.
type ClusterLeg struct {
	Partitions int     `json:"partitions"`
	MsPerQuery float64 `json:"ms_per_query"`
}

// clusterConfig parameterizes the scatter-gather section.
type clusterConfig struct {
	base, grow, synsets int
	bktSz, keyBits      int
	queries, rounds     int
	seed                int64
}

// clusterWorld is one running cluster shape: n loopback worker
// servers behind a router, torn down by close.
type clusterWorld struct {
	conn    net.Conn
	servers []*embellish.NetServer
	router  *cluster.Router
	engines []*embellish.Engine
}

func (w *clusterWorld) close() {
	if w.conn != nil {
		w.conn.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if w.router != nil {
		w.router.Shutdown(ctx)
	}
	for _, s := range w.servers {
		s.Shutdown(ctx)
	}
	for _, e := range w.engines {
		e.Close()
	}
}

// startCluster loads nparts copies of the template engine, serves
// each on a loopback listener, routes them, and ingests the grown
// documents through the router one document per frame (the shape that
// keeps per-segment statistics — and therefore ciphertexts —
// identical across cluster sizes).
func startCluster(template []byte, base int, grown []embellish.Document, nparts int) (*clusterWorld, error) {
	w := &clusterWorld{}
	parts := make([]cluster.Partition, nparts)
	for p := 0; p < nparts; p++ {
		e, err := embellish.LoadEngine(bytes.NewReader(template))
		if err != nil {
			w.close()
			return nil, fmt.Errorf("load partition %d: %w", p, err)
		}
		if err := e.ConfigureMergePolicy(-1); err != nil {
			w.close()
			return nil, err
		}
		w.engines = append(w.engines, e)
		srv := e.NewNetServer(embellish.ServeConfig{AllowUpdates: true})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			w.close()
			return nil, err
		}
		go srv.Serve(l)
		w.servers = append(w.servers, srv)
		parts[p] = cluster.Partition{Endpoints: []string{l.Addr().String()}}
	}
	r, err := cluster.NewRouter(cluster.Config{Base: base, Partitions: parts, Backoff: time.Millisecond})
	if err != nil {
		w.close()
		return nil, err
	}
	w.router = r
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		w.close()
		return nil, err
	}
	go r.Serve(rl)
	conn, err := net.Dial("tcp", rl.Addr().String())
	if err != nil {
		w.close()
		return nil, err
	}
	w.conn = conn
	for _, d := range grown {
		if _, err := embellish.AddDocumentsRemote(conn, []embellish.Document{d}); err != nil {
			w.close()
			return nil, fmt.Errorf("ingest doc %d via %d-partition router: %w", d.ID, nparts, err)
		}
	}
	return w, nil
}

// runClusterSection measures scatter-gather query latency on 1 vs 3
// partitions and checks the encrypted candidate sets are
// byte-identical between the two shapes.
func runClusterSection(rep *Report, cfg clusterConfig) error {
	db := wngen.Generate(wngen.ScaledConfig(cfg.synsets, cfg.seed))
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = cfg.base + cfg.grow
	ccfg.Seed = cfg.seed + 5
	corp := corpus.Generate(db, ccfg)
	world := make([]embellish.Document, len(corp.Docs))
	for i, d := range corp.Docs {
		world[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}

	opts := embellish.DefaultOptions()
	opts.BucketSize = cfg.bktSz
	opts.KeyBits = cfg.keyBits
	tmpl, err := embellish.NewEngine(embellish.SyntheticLexicon(cfg.synsets, cfg.seed), world[:cfg.base], opts)
	if err != nil {
		return err
	}
	defer tmpl.Close()
	var saved bytes.Buffer
	if err := tmpl.Save(&saved); err != nil {
		return err
	}

	// Pre-embellish once; the SAME frames drive both cluster shapes,
	// so any divergence is the router's fault, not the decoy RNG's.
	client, err := tmpl.NewClient(nil)
	if err != nil {
		return err
	}
	lemmas := tmpl.SearchableLemmas()
	frames := make([][]byte, cfg.queries)
	for i := range frames {
		q := lemmas[(7*i)%len(lemmas)] + " " + lemmas[(13*i+5)%len(lemmas)]
		eq, err := client.Embellish(q)
		if err != nil {
			return fmt.Errorf("embellish %q: %w", q, err)
		}
		if frames[i], err = eq.WireFrame(); err != nil {
			return err
		}
	}

	out := ClusterReport{
		BaseDocs: cfg.base, GrownDocs: cfg.grow,
		Queries: cfg.queries, Rounds: cfg.rounds,
		Identical: true,
	}
	var refCands [][]wire.Candidate
	for _, nparts := range []int{1, 3} {
		w, err := startCluster(saved.Bytes(), cfg.base, world[cfg.base:], nparts)
		if err != nil {
			return err
		}
		// Warmup pass doubles as the identity probe.
		cands := make([][]wire.Candidate, cfg.queries)
		for i, frame := range frames {
			if cands[i], err = roundTripQuery(w.conn, frame); err != nil {
				w.close()
				return err
			}
		}
		if refCands == nil {
			refCands = cands
		} else if !candidatesEqual(refCands, cands) {
			out.Identical = false
		}
		t0 := time.Now()
		for r := 0; r < cfg.rounds; r++ {
			for _, frame := range frames {
				if _, err := roundTripQuery(w.conn, frame); err != nil {
					w.close()
					return err
				}
			}
		}
		ms := time.Since(t0).Seconds() * 1000 / float64(cfg.rounds*cfg.queries)
		w.close()
		out.Legs = append(out.Legs, ClusterLeg{Partitions: nparts, MsPerQuery: ms})
	}
	if out.Legs[1].MsPerQuery > 0 {
		out.Speedup3P = out.Legs[0].MsPerQuery / out.Legs[1].MsPerQuery
	}
	rep.Cluster = out
	fmt.Printf("cluster leg %d+%d docs: 1 partition %.1f ms/query, 3 partitions %.1f ms/query (%.2fx), identical rankings: %v\n",
		cfg.base, cfg.grow, out.Legs[0].MsPerQuery, out.Legs[1].MsPerQuery,
		out.Speedup3P, out.Identical)
	return nil
}

// roundTripQuery writes one pre-encoded query frame and decodes the
// encrypted candidate response.
func roundTripQuery(conn net.Conn, frame []byte) ([]wire.Candidate, error) {
	if _, err := conn.Write(frame); err != nil {
		return nil, err
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	if typ == wire.TypeError {
		return nil, fmt.Errorf("query refused: %s", body)
	}
	if typ != wire.TypeResponse {
		return nil, fmt.Errorf("unexpected response type %d", typ)
	}
	cands, _, err := wire.DecodeResponse(body)
	return cands, err
}

// candidatesEqual reports whether two per-query candidate sets carry
// the same documents and the same ciphertext bytes.
func candidatesEqual(a, b [][]wire.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].Doc != b[i][j].Doc || a[i][j].Enc.Cmp(b[i][j].Enc) != 0 {
				return false
			}
		}
	}
	return true
}

package main

// The heavy-traffic legs: an OPEN-LOOP load harness (Poisson arrivals
// at swept rates over mixed search/fetch/ingest traffic against a
// queued-admission NetServer on a TCP loopback) and a mid-scan
// cancellation probe. Open-loop matters: a closed-loop client backs
// off exactly when the server saturates, hiding the latency knee that
// real independent users would see. Here arrivals keep coming at the
// configured rate whether or not earlier requests finished, so past
// the knee the admission queue fills and the server must shed — the
// sweep records where that happens and what it costs the requests
// that are still accepted.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"embellish"
	"embellish/internal/corpus"
	"embellish/internal/pir"
	"embellish/internal/wire"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

// LoadReport is the open-loop sweep plus the cancellation probe.
type LoadReport struct {
	// World shape and server configuration.
	Docs         int     `json:"docs"`
	Synsets      int     `json:"synsets"`
	KeyBits      int     `json:"keybits"`
	MaxInflight  int     `json:"max_inflight"`
	QueueDepth   int     `json:"queue_depth"`
	QueueTimeout string  `json:"queue_timeout"`
	LegSeconds   float64 `json:"leg_seconds"`

	// CapacityPerSec is the measured closed-loop throughput that the
	// "auto" rate sweep is scaled from.
	CapacityPerSec float64 `json:"capacity_per_sec"`

	Legs []LoadLeg `json:"legs"`

	// Knee summary: the first swept rate where the server shed more
	// than 5% of offered load, the accepted-request p99 before and at
	// that rate, and their ratio — the acceptance criterion bounds it
	// at <= 3x.
	KneeRatePerSec     float64 `json:"knee_rate_per_sec"`
	PreKneeP99Ms       float64 `json:"pre_knee_p99_ms"`
	PastKneeP99Ms      float64 `json:"past_knee_p99_ms"`
	P99RatioAcrossKnee float64 `json:"p99_ratio_across_knee"`

	Cancel CancelLeg `json:"cancel"`
}

// LoadLeg is one open-loop rate point.
type LoadLeg struct {
	RatePerSec float64 `json:"rate_per_sec"`
	Offered    int     `json:"offered"`
	// Completed requests got a real answer; Shed got the typed
	// overload refusal; DeadlineExpired got the typed deadline
	// refusal; Failed is everything else (protocol or transport
	// errors — zero in a healthy run).
	Completed       int `json:"completed"`
	Shed            int `json:"shed"`
	DeadlineExpired int `json:"deadline_expired"`
	Failed          int `json:"failed"`

	GoodputPerSec float64 `json:"goodput_per_sec"`
	ShedRate      float64 `json:"shed_rate"`

	// Latency of COMPLETED requests, client-observed (includes queue
	// wait — that is the point).
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`

	// Server-side admission counters for this leg (deltas).
	QueuedTotal    int64   `json:"queued_total"`
	MaxQueueWaitMs float64 `json:"max_queue_wait_ms"`
}

// CancelLeg proves mid-scan cancellation frees capacity: a query is
// first run to completion to measure its full scan (minimum of five
// runs — the fastest the scan can go), then re-run under a deadline at
// 50% of that latency. The cancelled figures are the median of five
// deadlined runs; the acceptance criterion bounds the cancelled run's
// scan work (postings touched — the CPU proxy, since every posting
// costs one homomorphic multiply) at < 50% of the full scan's.
type CancelLeg struct {
	FullLatencyMs     float64 `json:"full_latency_ms"`
	FullPostings      int     `json:"full_postings"`
	DeadlineMs        float64 `json:"deadline_ms"`
	CancelLatencyMs   float64 `json:"cancel_latency_ms"`
	CancelledPostings int     `json:"cancelled_postings"`
	// WorkFraction is cancelled/full postings; OvershootMs is how far
	// past the deadline the cancelled call returned.
	WorkFraction float64 `json:"work_fraction"`
	OvershootMs  float64 `json:"overshoot_ms"`
}

// loadConfig parameterizes the heavy-traffic legs.
type loadConfig struct {
	docs, synsets, bktSz, keyBits int
	rates                         string  // comma-separated req/s, or "auto"
	seconds                       float64 // per leg
	seed                          int64
}

// outcome classes for one request.
const (
	outCompleted = iota
	outShed
	outDeadline
	outFailed
)

// loadLegs builds a retrieval+update NetServer on a TCP loopback and
// drives the open-loop sweep and the cancellation probe against it.
func loadLegs(cfg loadConfig) (LoadReport, error) {
	rep := LoadReport{
		Docs: cfg.docs, Synsets: cfg.synsets, KeyBits: cfg.keyBits,
		LegSeconds: cfg.seconds,
	}

	db := wngen.Generate(wngen.ScaledConfig(cfg.synsets, cfg.seed))
	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = cfg.docs
	ccfg.Seed = cfg.seed + 7
	corp := corpus.Generate(db, ccfg)
	world := make([]embellish.Document, len(corp.Docs))
	for i, d := range corp.Docs {
		world[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}
	opts := embellish.DefaultOptions()
	opts.BucketSize = cfg.bktSz
	opts.KeyBits = cfg.keyBits
	opts.StoreDocuments = true
	opts.RetrievalKeyBits = 64 // serving cost, not secrecy, is under test
	engine, err := embellish.NewEngine(embellish.SyntheticLexicon(cfg.synsets, cfg.seed), world, opts)
	if err != nil {
		return rep, fmt.Errorf("load leg: %w", err)
	}
	client, err := engine.NewClient(nil)
	if err != nil {
		return rep, err
	}

	probe, probeClient, err := buildCancelProbe(db, cfg)
	if err != nil {
		return rep, err
	}
	if rep.Cancel, err = cancelLeg(probe, probeClient); err != nil {
		return rep, err
	}

	// Pre-embellish a fixed query set ONCE and freeze the frames: the
	// measured loop then contains no client-side crypto, only the wire
	// exchange and the server's work.
	lemmas := engine.SearchableLemmas()
	const nFrames = 8
	queryFrames := make([][]byte, nFrames)
	for i := range queryFrames {
		q := lemmas[(11*i+3)%len(lemmas)] + " " + lemmas[(17*i+5)%len(lemmas)]
		eq, err := client.Embellish(q)
		if err != nil {
			return rep, fmt.Errorf("embellish %q: %w", q, err)
		}
		if queryFrames[i], err = eq.WireFrame(); err != nil {
			return rep, err
		}
	}

	// Admission knobs scaled from a capacity calibration below; the
	// queue timeout bounds how much queue wait an ACCEPTED request can
	// accumulate, which is what keeps its p99 within the criterion's
	// 3x of the pre-knee p99.
	maxInflight := runtime.GOMAXPROCS(0)
	queueDepth := 4 * maxInflight
	if queueDepth < 8 {
		queueDepth = 8
	}
	srv := engine.NewNetServer(embellish.ServeConfig{
		MaxConns:       -1,
		MaxInflight:    maxInflight,
		QueueDepth:     queueDepth,
		QueueTimeout:   -1, // placeholder; rebuilt after calibration
		AllowUpdates:   true,
		AllowRetrieval: true,
	})
	rep.MaxInflight = maxInflight
	rep.QueueDepth = queueDepth

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	addr := l.Addr().String()

	// One reusable PIR block-query frame, built against the server's
	// own params over the wire — the fetch traffic class.
	fetchFrame, err := buildFetchFrame(addr)
	if err != nil {
		return rep, err
	}

	gen := newLoadGen(addr, queryFrames, fetchFrame, engine.NextDocID())
	defer gen.closeAll()

	// Calibrate: closed-loop capacity with maxInflight workers
	// hammering the mixed traffic pattern. This is the saturation
	// throughput the auto sweep brackets.
	capacity, p99ServiceMs, err := gen.calibrate(maxInflight, cfg.seconds)
	if err != nil {
		return rep, err
	}
	rep.CapacityPerSec = capacity

	// Rebuild the server's admission queue with a timeout scaled to
	// the p99 SERVICE time — the mix is bimodal (sub-millisecond
	// searches, PIR fetches a thousand times slower), so a request
	// queued behind one fetch legitimately waits a full fetch; the
	// timeout must tolerate that pre-knee while still bounding the
	// queue wait an accepted request can accumulate past it, which is
	// what keeps the accepted p99 within the criterion's 3x.
	queueTimeout := time.Duration(2 * p99ServiceMs * float64(time.Millisecond))
	if queueTimeout < 50*time.Millisecond {
		queueTimeout = 50 * time.Millisecond
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		return rep, err
	}
	if err := <-serveDone; err != nil {
		return rep, err
	}
	gen.closeAll()
	srv = engine.NewNetServer(embellish.ServeConfig{
		MaxConns:       -1,
		MaxInflight:    maxInflight,
		QueueDepth:     queueDepth,
		QueueTimeout:   queueTimeout,
		AllowUpdates:   true,
		AllowRetrieval: true,
	})
	rep.QueueTimeout = queueTimeout.String()
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	serveDone = make(chan error, 1)
	go func() { serveDone <- srv.Serve(l2) }()
	gen.addr = l2.Addr().String()

	// Resolve the swept rates.
	var rates []float64
	if cfg.rates == "auto" || cfg.rates == "" {
		rates = []float64{0.5 * capacity, 0.8 * capacity, 1.6 * capacity}
	} else {
		for _, f := range strings.Split(cfg.rates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return rep, fmt.Errorf("bad -load-rates entry %q: %w", f, err)
			}
			rates = append(rates, r)
		}
	}

	for _, rate := range rates {
		before := srv.Stats()
		leg, err := gen.runLeg(rate, cfg.seconds, cfg.seed)
		if err != nil {
			return rep, err
		}
		after := srv.Stats()
		leg.QueuedTotal = after.QueuedTotal - before.QueuedTotal
		leg.MaxQueueWaitMs = float64(after.MaxQueueWait) / float64(time.Millisecond)
		rep.Legs = append(rep.Legs, leg)
		fmt.Printf("load leg %.0f req/s: %d offered, %d completed (p50 %.1f ms, p99 %.1f ms, p999 %.1f ms), %d shed, %d deadline, %d failed\n",
			leg.RatePerSec, leg.Offered, leg.Completed, leg.P50Ms, leg.P99Ms, leg.P999Ms,
			leg.Shed, leg.DeadlineExpired, leg.Failed)
	}

	// Knee summary: first leg shedding >5% of offered load (a lower
	// bar misreads transient pre-saturation sheds — a request queued
	// behind a burst of slow fetches — as the knee); the p99 comparison
	// is against the last leg before it.
	for i, leg := range rep.Legs {
		if leg.ShedRate > 0.05 {
			rep.KneeRatePerSec = leg.RatePerSec
			rep.PastKneeP99Ms = leg.P99Ms
			if i > 0 {
				rep.PreKneeP99Ms = rep.Legs[i-1].P99Ms
				if rep.PreKneeP99Ms > 0 {
					rep.P99RatioAcrossKnee = rep.PastKneeP99Ms / rep.PreKneeP99Ms
				}
			}
			break
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		return rep, err
	}
	if err := <-serveDone; err != nil {
		return rep, err
	}
	return rep, nil
}

// buildCancelProbe constructs the dedicated engine the cancellation
// probe runs on: the probe needs a scan long enough that a
// half-latency deadline reliably lands mid-scan, and a quiet engine so
// the latency it halves is the scan itself, not contention from the
// load sweep.
func buildCancelProbe(db *wordnet.Database, cfg loadConfig) (*embellish.Engine, *embellish.Client, error) {
	probeDocs := cfg.docs
	if probeDocs < 4000 {
		probeDocs = 4000
	}
	pccfg := corpus.DefaultConfig()
	pccfg.NumDocs = probeDocs
	pccfg.Seed = cfg.seed + 9
	pcorp := corpus.Generate(db, pccfg)
	pworld := make([]embellish.Document, len(pcorp.Docs))
	for i, d := range pcorp.Docs {
		pworld[i] = embellish.Document{ID: d.ID, Text: strings.Join(d.Tokens, " ")}
	}
	popts := embellish.DefaultOptions()
	popts.BucketSize = cfg.bktSz
	// Full-size keys over a few thousand documents: each posting's
	// homomorphic multiply is then expensive enough that the full
	// sequential scan takes tens of milliseconds, far above timer
	// jitter.
	popts.KeyBits = 512
	probe, err := embellish.NewEngine(embellish.SyntheticLexicon(cfg.synsets, cfg.seed), pworld, popts)
	if err != nil {
		return nil, nil, err
	}
	// Sharded plan, one worker, pinned 6-bit fixed-base window: the
	// plan builds every query term's table in its setup phase BEFORE
	// the postings walk starts, the way a deadline-aware server wants
	// its fixed costs paid up front. A deadline at 50% of the full
	// latency then lands well under 50% of the postings walk, and the
	// single worker keeps the latency being halved free of intra-query
	// scheduling noise.
	if err := probe.ConfigureExecution(2, 6, 1); err != nil {
		return nil, nil, err
	}
	probeClient, err := probe.NewClient(nil)
	if err != nil {
		return nil, nil, err
	}
	return probe, probeClient, nil
}

// cancelLeg measures the mid-scan cancellation criterion on the local
// engine: run one query to completion, then re-run it with a deadline
// at 50% of the measured latency and compare the scan work.
func cancelLeg(engine *embellish.Engine, client *embellish.Client) (CancelLeg, error) {
	var leg CancelLeg
	// A wide query (many genuine terms, each dragging its decoy
	// buckets) makes the scan long enough that the half-latency
	// deadline lands mid-scan rather than inside timing noise.
	lemmas := engine.SearchableLemmas()
	terms := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		terms = append(terms, lemmas[(5*i+1)%len(lemmas)])
	}
	eq, err := client.Embellish(strings.Join(terms, " "))
	if err != nil {
		return leg, err
	}
	// Warm once, then take the MINIMUM of several full runs: the
	// deadline is set from the fastest the scan can go, so the
	// deadlined run below cannot finish under it by timing luck.
	if _, err := engine.Process(eq); err != nil {
		return leg, err
	}
	full := time.Duration(math.MaxInt64)
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		resp, err := engine.Process(eq)
		if err != nil {
			return leg, err
		}
		if d := time.Since(t0); d < full {
			full = d
		}
		leg.FullPostings = resp.Stats.PostingsScanned
	}
	leg.FullLatencyMs = full.Seconds() * 1000

	deadline := full / 2
	leg.DeadlineMs = deadline.Seconds() * 1000
	// One deadlined run is at the mercy of scheduler noise on a loaded
	// box, so the leg reports the MEDIAN of several cancelled runs. A
	// run that beats the deadline outright is timing luck, not broken
	// cancellation — it is skipped and retried.
	type trial struct {
		latencyMs, overshootMs float64
		postings               int
	}
	var trials []trial
	for attempts := 0; len(trials) < 5 && attempts < 15; attempts++ {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		t0 := time.Now()
		_, err = engine.ProcessContext(ctx, eq)
		cancelled := time.Since(t0)
		cancel()
		var cerr *embellish.CancelledError
		if errors.As(err, &cerr) {
			trials = append(trials, trial{
				latencyMs:   cancelled.Seconds() * 1000,
				overshootMs: (cancelled - deadline).Seconds() * 1000,
				postings:    cerr.Stats.PostingsScanned,
			})
			continue
		}
		if err != nil {
			return leg, fmt.Errorf("cancel leg: %w", err)
		}
	}
	if len(trials) == 0 {
		return leg, fmt.Errorf("cancel leg: scan finished under its half-latency deadline in every attempt (full %.2f ms)", leg.FullLatencyMs)
	}
	sort.Slice(trials, func(i, j int) bool { return trials[i].postings < trials[j].postings })
	med := trials[len(trials)/2]
	leg.CancelLatencyMs = med.latencyMs
	leg.OvershootMs = med.overshootMs
	leg.CancelledPostings = med.postings
	if leg.FullPostings > 0 {
		leg.WorkFraction = float64(leg.CancelledPostings) / float64(leg.FullPostings)
	}
	return leg, nil
}

// bytesBuffer is a minimal append-only writer (avoids importing bytes
// just for a frame buffer).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// buildFetchFrame dials the server once, fetches the PIR params, and
// encodes one reusable block-query frame against the live corpus
// geometry. Constructed through the public client path so the frame is
// exactly what FetchDocumentsRemote would send for one block.
func buildFetchFrame(addr string) ([]byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := wire.WritePIRParamsRequest(conn); err != nil {
		return nil, err
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil || typ != wire.TypePIRParams {
		return nil, fmt.Errorf("params request answered with type %d (%v)", typ, err)
	}
	params, err := wire.DecodePIRParams(body)
	if err != nil {
		return nil, err
	}
	key, err := pir.GenerateKey(rand.New(rand.NewSource(7)), 64)
	if err != nil {
		return nil, err
	}
	q, err := key.NewQuery(rand.New(rand.NewSource(42)), params.NumBlocks, params.NumBlocks/2)
	if err != nil {
		return nil, err
	}
	var b bytesBuffer
	if err := wire.WritePIRQuery(&b, q); err != nil {
		return nil, err
	}
	return b.b, nil
}

// loadGen owns the connection pool and the request/reply exchange.
type loadGen struct {
	addr        string
	queryFrames [][]byte
	fetchFrame  []byte

	// ingestMu serializes the WHOLE ingest exchange, not just id
	// allocation: the engine requires dense document ids, so a shed
	// ingest must roll its id back before the next one encodes — only
	// safe when ingests never overlap.
	ingestMu sync.Mutex
	nextID   int

	mu   sync.Mutex
	idle []net.Conn
}

func newLoadGen(addr string, queryFrames [][]byte, fetchFrame []byte, nextID int) *loadGen {
	return &loadGen{addr: addr, queryFrames: queryFrames, fetchFrame: fetchFrame, nextID: nextID}
}

// conn hands out an idle pooled connection or dials a fresh one — the
// pool never blocks, so arrivals stay open-loop even when every
// existing connection is busy.
func (g *loadGen) conn() (net.Conn, error) {
	g.mu.Lock()
	if n := len(g.idle); n > 0 {
		c := g.idle[n-1]
		g.idle = g.idle[:n-1]
		g.mu.Unlock()
		return c, nil
	}
	g.mu.Unlock()
	return net.Dial("tcp", g.addr)
}

const maxIdleConns = 256

func (g *loadGen) put(c net.Conn, reusable bool) {
	if !reusable {
		c.Close()
		return
	}
	g.mu.Lock()
	if len(g.idle) < maxIdleConns {
		g.idle = append(g.idle, c)
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	c.Close()
}

func (g *loadGen) closeAll() {
	g.mu.Lock()
	for _, c := range g.idle {
		c.Close()
	}
	g.idle = nil
	g.mu.Unlock()
}

// exchange runs one request and classifies the reply. A request i is
// searched/fetched/ingested 7/2/1 by residue — the mixed-traffic
// pattern.
func (g *loadGen) exchange(i int) (int, error) {
	switch i % 10 {
	case 7, 8:
		return g.roundTrip(g.fetchFrame)
	case 9:
		return g.ingest()
	default:
		return g.roundTrip(g.queryFrames[i%len(g.queryFrames)])
	}
}

// ingest sends one single-document add. Exchanges are serialized (see
// ingestMu) so a shed add can return its id to the dense sequence; a
// transport error mid-exchange leaves the id consumed — the server may
// have applied the add before the connection died.
func (g *loadGen) ingest() (int, error) {
	g.ingestMu.Lock()
	defer g.ingestMu.Unlock()
	id := g.nextID
	g.nextID++
	var b bytesBuffer
	if err := wire.WriteAddDocs(&b, []wire.DocText{{ID: uint32(id), Text: "load harness filler document " + strconv.Itoa(id)}}); err != nil {
		g.nextID--
		return outFailed, err
	}
	out, err := g.roundTrip(b.b)
	if out == outShed || out == outDeadline {
		g.nextID--
	}
	return out, err
}

// roundTrip writes one pre-encoded frame and classifies the reply.
func (g *loadGen) roundTrip(frame []byte) (int, error) {
	c, err := g.conn()
	if err != nil {
		return outFailed, err
	}
	if _, err := c.Write(frame); err != nil {
		g.put(c, false)
		return outFailed, err
	}
	typ, body, err := wire.ReadMessage(c)
	if err != nil {
		g.put(c, false)
		return outFailed, err
	}
	g.put(c, true)
	if typ != wire.TypeError {
		return outCompleted, nil
	}
	msg := string(body)
	switch {
	case strings.HasPrefix(msg, wire.OverloadRefusal):
		return outShed, nil
	case strings.HasPrefix(msg, wire.DeadlineRefusal):
		return outDeadline, nil
	default:
		return outFailed, fmt.Errorf("server error: %s", msg)
	}
}

// calibrate measures closed-loop saturation throughput and the p99
// service latency with `workers` goroutines issuing back-to-back
// requests in the same mixed traffic pattern the open-loop legs use.
func (g *loadGen) calibrate(workers int, seconds float64) (float64, float64, error) {
	stop := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	var wg sync.WaitGroup
	counts := make([]int, workers)
	lats := make([][]float64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				t0 := time.Now()
				// Natural indices: calibration sees the same 7/2/1
				// search/fetch/ingest mix the swept legs offer, so the
				// capacity it measures is the capacity they saturate.
				out, err := g.exchange(w + workers*i)
				if err != nil {
					errs[w] = err
					return
				}
				if out == outCompleted {
					counts[w]++
					lats[w] = append(lats[w], time.Since(t0).Seconds()*1000)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("calibration: %w", err)
		}
	}
	total := 0
	var all []float64
	for w := range counts {
		total += counts[w]
		all = append(all, lats[w]...)
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("calibration completed no requests")
	}
	sort.Float64s(all)
	return float64(total) / seconds, percentile(all, 0.99), nil
}

// runLeg drives one open-loop rate point: Poisson arrivals on a
// precomputed exponential schedule, one goroutine per arrival, every
// outcome and latency recorded.
func (g *loadGen) runLeg(rate, seconds float64, seed int64) (LoadLeg, error) {
	leg := LoadLeg{RatePerSec: rate}
	rng := rand.New(rand.NewSource(seed + int64(rate*1000)))
	var offsets []float64 // seconds from leg start
	for t := 0.0; t < seconds; {
		t += rng.ExpFloat64() / rate
		if t < seconds {
			offsets = append(offsets, t)
		}
	}
	leg.Offered = len(offsets)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []float64
		counts   [4]int
		firstErr error
	)
	start := time.Now()
	for i, off := range offsets {
		at := start.Add(time.Duration(off * float64(time.Second)))
		if d := time.Until(at); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			out, err := g.exchange(i)
			lat := time.Since(t0).Seconds() * 1000
			mu.Lock()
			counts[out]++
			if out == outCompleted {
				lats = append(lats, lat)
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	leg.Completed = counts[outCompleted]
	leg.Shed = counts[outShed]
	leg.DeadlineExpired = counts[outDeadline]
	leg.Failed = counts[outFailed]
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		leg.GoodputPerSec = float64(leg.Completed) / elapsed
	}
	if leg.Offered > 0 {
		leg.ShedRate = float64(leg.Shed+leg.DeadlineExpired) / float64(leg.Offered)
	}
	sort.Float64s(lats)
	leg.P50Ms = percentile(lats, 0.50)
	leg.P99Ms = percentile(lats, 0.99)
	leg.P999Ms = percentile(lats, 0.999)
	if leg.Failed > 0 && firstErr != nil {
		return leg, fmt.Errorf("load leg at %.0f req/s: %d failed requests, first: %w", rate, leg.Failed, firstErr)
	}
	return leg, nil
}

// percentile reads the p-quantile from an ASCENDING latency slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

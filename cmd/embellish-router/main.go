// Command embellish-router fronts a partitioned embellish cluster: it
// serves the UNCHANGED client wire protocol and scatter-gathers every
// request across partition worker processes (cmd/embellish-server),
// with per-partition deadlines, bounded retry and failover to read
// replicas when a worker dies mid-request. Clients talk to the router
// exactly as they would to a single server — same frames, same
// byte-identical rankings and fetched documents.
//
// Usage:
//
//	embellish-router -listen :7979 -base N
//	                 -partition addr[,replica...] [-partition ...]
//	                 [-deadline D] [-retries N] [-backoff D]
//	                 [-idle-timeout D] [-metrics ADDR] [-once]
//
// Each -partition flag names one shard: the primary address first,
// then any read replicas, comma-separated. The flag order defines the
// partition numbering and must be identical across router restarts —
// document ownership is (id-base) mod npartitions over that order.
// -base is the template corpus size: the number of documents in the
// shared engine file every worker loaded (see docs/ARCHITECTURE.md,
// "Cluster tier").
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"embellish/internal/cluster"
)

// partitionList collects repeated -partition flags.
type partitionList []cluster.Partition

func (p *partitionList) String() string {
	var parts []string
	for _, part := range *p {
		parts = append(parts, strings.Join(part.Endpoints, ","))
	}
	return strings.Join(parts, " ")
}

func (p *partitionList) Set(v string) error {
	var eps []string
	for _, e := range strings.Split(v, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		eps = append(eps, e)
	}
	if len(eps) == 0 {
		return fmt.Errorf("empty partition spec")
	}
	*p = append(*p, cluster.Partition{Endpoints: eps})
	return nil
}

func main() {
	var parts partitionList
	var (
		listen      = flag.String("listen", "127.0.0.1:7979", "TCP listen address")
		base        = flag.Int("base", 0, "template corpus size shared by every partition")
		deadline    = flag.Duration("deadline", cluster.DefaultDeadline, "per-partition attempt deadline (negative disables)")
		retries     = flag.Int("retries", cluster.DefaultRetries, "retry attempts per partition request (negative disables)")
		backoff     = flag.Duration("backoff", cluster.DefaultBackoff, "initial retry backoff, doubled per attempt (negative disables)")
		idle        = flag.Duration("idle-timeout", 5*time.Minute, "close client connections idle longer than this (0 never)")
		metricsAddr = flag.String("metrics", "", "HTTP listen address for /metrics (empty off)")
		once        = flag.Bool("once", false, "serve a single connection and exit (for scripting)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Var(&parts, "partition", "one shard: primary[,replica...] (repeat per partition; order is the partition numbering)")
	flag.Parse()

	if len(parts) == 0 {
		fatal(fmt.Errorf("at least one -partition is required"))
	}
	r, err := cluster.NewRouter(cluster.Config{
		Base:        *base,
		Partitions:  parts,
		Deadline:    *deadline,
		Retries:     *retries,
		Backoff:     *backoff,
		IdleTimeout: *idle,
	})
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("routing %d partitions (base %d) on %s\n", len(parts), *base, l.Addr())
	for p, part := range parts {
		fmt.Printf("  partition %d: %s\n", p, strings.Join(part.Endpoints, " -> "))
	}

	if *once {
		conn, err := l.Accept()
		if err != nil {
			fatal(err)
		}
		if err := r.ServeConn(conn); err != nil {
			fatal(err)
		}
		conn.Close()
		return
	}

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("metrics on http://%s/metrics\n", ml.Addr())
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			w.Write(r.MetricsText())
		})
		go http.Serve(ml, mux)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- r.Serve(l) }()
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case sig := <-sigs:
		fmt.Printf("received %v, draining (deadline %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		go func() {
			<-sigs
			cancel()
		}()
		if err := r.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "embellish-router: shutdown:", err)
		}
		cancel()
	}
	st := r.Stats()
	fmt.Printf("router: %d queries, %d updates, %d retrievals, %d errors; %d retries, %d failovers\n",
		st.Queries, st.Updates, st.Retrievals, st.Errors, st.Retries, st.Failovers)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "embellish-router:", err)
	os.Exit(1)
}

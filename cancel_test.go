package embellish

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"embellish/internal/core"
	"embellish/internal/detrand"
	"embellish/internal/pir"
	"embellish/internal/wire"
)

// cancelOvershootSlack bounds how long a cancelled scan may keep
// running past its deadline before we call the cancellation late. The
// engine checks ctx every cancelCheckPostings postings AND against the
// wall clock (a single-P runtime delays the context timer goroutine),
// so the true overshoot is sub-millisecond. The wall-clock assertion
// is skipped under -race — there the instrumented stretches between
// checks stretch unboundedly and the property is carried instead by
// the deterministic clock harness (TestCancellationDeterministic*),
// which states promptness in poll counts rather than racing the
// scheduler — so the slack stays tight for ordinary builds.
const cancelOvershootSlack = 250 * time.Millisecond

// cancelCorpus builds a random corpus over the mini lexicon from the
// given seed, shaped like demoDocs but reseedable so the cancellation
// property is exercised across corpora, not one fixed index.
func cancelCorpus(t *testing.T, seed int64, ndocs int) []Document {
	t.Helper()
	lex := MiniLexicon()
	var lemmas []string
	for _, tm := range lex.db.AllTerms() {
		lemmas = append(lemmas, lex.db.Lemma(tm))
	}
	rng := rand.New(rand.NewSource(seed))
	docs := make([]Document, ndocs)
	for i := range docs {
		var b strings.Builder
		n := 30 + rng.Intn(40)
		for j := 0; j < n; j++ {
			b.WriteString(lemmas[rng.Intn(len(lemmas))])
			b.WriteByte(' ')
		}
		docs[i] = Document{ID: i, Text: b.String()}
	}
	return docs
}

func cancelEngine(t *testing.T, seed int64, store bool) (*Engine, *Client) {
	t.Helper()
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	if store {
		opts.StoreDocuments = true
		opts.RetrievalKeyBits = 64
	}
	e, err := NewEngine(MiniLexicon(), cancelCorpus(t, seed, 120), opts)
	if err != nil {
		t.Fatalf("NewEngine(seed %d): %v", seed, err)
	}
	c, err := e.NewClient(detrand.New(fmt.Sprintf("cancel-test-%d", seed)))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return e, c
}

// cancelQuery embellishes a multi-term query wide enough that a scan
// takes measurable time even on the small test corpus.
func cancelQuery(t *testing.T, e *Engine, c *Client, rng *rand.Rand, terms int) *Query {
	t.Helper()
	parts := make([]string, terms)
	for i := range parts {
		parts[i] = e.lex.db.Lemma(e.searchable[rng.Intn(len(e.searchable))])
	}
	q, err := c.Embellish(strings.Join(parts, " "))
	if err != nil {
		t.Fatalf("Embellish: %v", err)
	}
	return q
}

// respBytes serializes a response exactly as the wire layer would, so
// "the engine answers byte-identically after a cancellation" is checked
// against the bytes a remote client would actually receive.
func respBytes(t *testing.T, resp *Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.WriteResponse(&buf, resp.inner, core.Stats{}); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	return buf.Bytes()
}

// TestCancellationProperty is the satellite property test: across
// random corpora, all three execution plans, and deadlines sampled
// across the scan's latency range, a cancelled ProcessContext (a)
// returns a CancelledError satisfying errors.Is on the context
// sentinel, (b) returns promptly (bounded overshoot), (c) reports
// partial work strictly inside the full scan's, and (d) leaves the
// engine answering the same query byte-identically afterwards — all
// without leaking goroutines.
func TestCancellationProperty(t *testing.T) {
	plans := []struct {
		name                        string
		shards, window, parallelism int
	}{
		{"sequential", 0, -1, 0},
		{"striped", 0, -1, 2},
		{"sharded", 2, -1, 2},
	}
	meta := rand.New(rand.NewSource(0xE11E))
	for _, seed := range []int64{meta.Int63(), meta.Int63()} {
		seed := seed
		t.Run(fmt.Sprintf("corpus%d", seed%1000), func(t *testing.T) {
			before := runtime.NumGoroutine()
			e, c := cancelEngine(t, seed, false)
			rng := rand.New(rand.NewSource(seed + 1))
			q := cancelQuery(t, e, c, rng, 8)

			for _, pl := range plans {
				t.Run(pl.name, func(t *testing.T) {
					if err := e.ConfigureExecution(pl.shards, pl.window, pl.parallelism); err != nil {
						t.Fatalf("ConfigureExecution: %v", err)
					}
					// Baseline: full latency and reference bytes for this plan.
					warm, err := e.Process(q)
					if err != nil {
						t.Fatalf("warm Process: %v", err)
					}
					start := time.Now()
					base, err := e.Process(q)
					full := time.Since(start)
					if err != nil {
						t.Fatalf("baseline Process: %v", err)
					}
					baseBytes := respBytes(t, base)
					if !bytes.Equal(baseBytes, respBytes(t, warm)) {
						t.Fatal("two uncancelled runs of one query disagree; byte-identity check is meaningless")
					}
					fullPostings := warm.Stats.PostingsScanned

					// Deadlines sampled across the latency range. Runs that
					// finish under a sampled deadline are legitimate (the
					// fraction draws can land past the scan's end on a fast
					// corpus); at least the earliest fraction must cancel.
					fractions := []float64{0.05, 0.2 + 0.3*rng.Float64(), 0.5 + 0.4*rng.Float64()}
					cancelledOnce := false
					for _, frac := range fractions {
						deadline := time.Duration(float64(full) * frac)
						if deadline <= 0 {
							deadline = time.Microsecond
						}
						ctx, cancel := context.WithTimeout(context.Background(), deadline)
						t0 := time.Now()
						resp, err := e.ProcessContext(ctx, q)
						elapsed := time.Since(t0)
						cancel()
						if err == nil {
							if !bytes.Equal(respBytes(t, resp), baseBytes) {
								t.Fatalf("frac %.2f: uncancelled run diverged from baseline", frac)
							}
							continue
						}
						cancelledOnce = true
						var cerr *CancelledError
						if !errors.As(err, &cerr) {
							t.Fatalf("frac %.2f: cancelled scan returned %T (%v), want *CancelledError", frac, err, err)
						}
						if !errors.Is(err, context.DeadlineExceeded) {
							t.Fatalf("frac %.2f: errors.Is(err, DeadlineExceeded) = false (err %v)", frac, err)
						}
						if resp != nil {
							t.Fatalf("frac %.2f: partial response returned alongside cancellation", frac)
						}
						if over := elapsed - deadline; !raceEnabled && over > cancelOvershootSlack {
							t.Fatalf("frac %.2f: cancellation overshot deadline by %v (slack %v)", frac, over, cancelOvershootSlack)
						}
						if cerr.Stats.Candidates != 0 {
							t.Fatalf("frac %.2f: cancelled stats report %d candidates, want 0", frac, cerr.Stats.Candidates)
						}
						if cerr.Stats.PostingsScanned > fullPostings {
							t.Fatalf("frac %.2f: partial postings %d exceed full scan's %d", frac, cerr.Stats.PostingsScanned, fullPostings)
						}
					}
					if !cancelledOnce {
						t.Fatal("no sampled deadline cancelled the scan; corpus too small to exercise the property")
					}

					// The engine must keep serving this query byte-identically
					// after an arbitrary number of abandoned scans.
					after, err := e.Process(q)
					if err != nil {
						t.Fatalf("post-cancel Process: %v", err)
					}
					if !bytes.Equal(respBytes(t, after), baseBytes) {
						t.Fatal("response after cancellations is not byte-identical to baseline")
					}

					// Pre-cancelled context: the scan must stop before any
					// entry work and surface context.Canceled.
					pctx, pcancel := context.WithCancel(context.Background())
					pcancel()
					if _, err := e.ProcessContext(pctx, q); !errors.Is(err, context.Canceled) {
						t.Fatalf("pre-cancelled ProcessContext: err %v, want context.Canceled", err)
					}
				})
			}

			// No plan may leak scan workers: give exited goroutines a
			// moment to be reaped, then require the count to settle back
			// to (near) the pre-engine level.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if n := runtime.NumGoroutine(); n <= before+2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("goroutines did not settle: started %d, now %d", before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestCancellationFetchDocuments covers the retrieval half of the
// satellite: a cancelled private fetch stops mid-database, surfaces the
// context sentinel with no partial results, and leaves the store
// serving byte-identical documents afterwards.
func TestCancellationFetchDocuments(t *testing.T) {
	before := runtime.NumGoroutine()
	_, c := cancelEngine(t, 424242, true)
	ids := []int{3, 57, 111}

	baseline, _, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatalf("baseline FetchDocuments: %v", err)
	}
	start := time.Now()
	again, _, err := c.FetchDocuments(ids)
	full := time.Since(start)
	if err != nil {
		t.Fatalf("second FetchDocuments: %v", err)
	}
	for i := range baseline {
		if !bytes.Equal(baseline[i], again[i]) {
			t.Fatalf("two uncancelled fetches of doc %d disagree", ids[i])
		}
	}

	// Pre-cancelled context: no block scan may start.
	pctx, pcancel := context.WithCancel(context.Background())
	pcancel()
	if docs, _, err := c.FetchDocumentsContext(pctx, ids); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled fetch: err %v, want context.Canceled", err)
	} else if docs != nil {
		t.Fatal("pre-cancelled fetch returned partial results")
	}

	// Mid-fetch deadline: a third of the measured full latency lands
	// inside the block scans. A run that still finishes is retried with
	// a tighter deadline; every cancelled run must be prompt and
	// partial-result-free.
	deadline := full / 3
	cancelled := false
	for attempt := 0; attempt < 8 && !cancelled; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		t0 := time.Now()
		docs, _, err := c.FetchDocumentsContext(ctx, ids)
		elapsed := time.Since(t0)
		cancel()
		if err == nil {
			deadline /= 2
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("cancelled fetch: err %v, want context.DeadlineExceeded", err)
		}
		if docs != nil {
			t.Fatal("cancelled fetch returned partial results")
		}
		if over := elapsed - deadline; !raceEnabled && over > cancelOvershootSlack {
			t.Fatalf("fetch cancellation overshot deadline by %v (slack %v)", over, cancelOvershootSlack)
		}
		cancelled = true
	}
	if !cancelled {
		t.Fatalf("no deadline cancelled the fetch (full latency %v)", full)
	}

	// The store must serve the same bytes after an abandoned fetch.
	after, _, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatalf("post-cancel FetchDocuments: %v", err)
	}
	for i := range baseline {
		if !bytes.Equal(baseline[i], after[i]) {
			t.Fatalf("doc %d differs after an abandoned fetch", ids[i])
		}
	}

	settle := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("goroutines did not settle: started %d, now %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancellationAmortizedFetch extends the overshoot regression to
// the amortized multi-query path: with a parallel plan and batch
// amortization forced on, a multi-document fetch pushes whole batches
// through ONE database pass (pir.ProcessColumnsMulti), so a deadline
// landing inside that pass exercises the multi scanner's cancellation
// checks. A cancelled fetch must stop promptly (bounded overshoot),
// surface the context sentinel with no partial results, and the
// amortized path must keep serving bytes identical to the per-query
// path before and after the abandonment.
func TestCancellationAmortizedFetch(t *testing.T) {
	e, c := cancelEngine(t, 515151, true)
	if err := e.ConfigurePIRWorkers(2); err != nil {
		t.Fatalf("ConfigurePIRWorkers: %v", err)
	}
	if err := e.ConfigurePIRBatchAmortize(1); err != nil {
		t.Fatalf("ConfigurePIRBatchAmortize: %v", err)
	}
	ids := []int{5, 19, 42, 77, 103}

	baseline, _, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatalf("amortized FetchDocuments: %v", err)
	}
	start := time.Now()
	if _, _, err := c.FetchDocuments(ids); err != nil {
		t.Fatalf("second amortized FetchDocuments: %v", err)
	}
	full := time.Since(start)

	// The escape hatch must not change a single byte.
	if err := e.ConfigurePIRBatchAmortize(-1); err != nil {
		t.Fatalf("ConfigurePIRBatchAmortize(-1): %v", err)
	}
	perQuery, _, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatalf("per-query FetchDocuments: %v", err)
	}
	for i := range baseline {
		if !bytes.Equal(baseline[i], perQuery[i]) {
			t.Fatalf("doc %d differs between amortized and per-query serving", ids[i])
		}
	}
	if err := e.ConfigurePIRBatchAmortize(1); err != nil {
		t.Fatalf("ConfigurePIRBatchAmortize(1): %v", err)
	}

	// Pre-cancelled context: the batch scan must not start.
	pctx, pcancel := context.WithCancel(context.Background())
	pcancel()
	if docs, _, err := c.FetchDocumentsContext(pctx, ids); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled amortized fetch: err %v, want context.Canceled", err)
	} else if docs != nil {
		t.Fatal("pre-cancelled amortized fetch returned partial results")
	}

	// Mid-fetch deadline: must land inside the one-pass batch scan.
	deadline := full / 3
	cancelled := false
	for attempt := 0; attempt < 8 && !cancelled; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		t0 := time.Now()
		docs, _, err := c.FetchDocumentsContext(ctx, ids)
		elapsed := time.Since(t0)
		cancel()
		if err == nil {
			deadline /= 2
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("cancelled amortized fetch: err %v, want context.DeadlineExceeded", err)
		}
		if docs != nil {
			t.Fatal("cancelled amortized fetch returned partial results")
		}
		if over := elapsed - deadline; !raceEnabled && over > cancelOvershootSlack {
			t.Fatalf("amortized cancellation overshot deadline by %v (slack %v)", over, cancelOvershootSlack)
		}
		cancelled = true
	}
	if !cancelled {
		t.Fatalf("no deadline cancelled the amortized fetch (full latency %v)", full)
	}

	// Byte-identity must survive the abandonment.
	after, _, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatalf("post-cancel amortized FetchDocuments: %v", err)
	}
	for i := range baseline {
		if !bytes.Equal(baseline[i], after[i]) {
			t.Fatalf("doc %d differs after an abandoned amortized fetch", ids[i])
		}
	}
}

// fakeScanClock replaces the scan kernels' deadline-poll clock with a
// pinned-seed synthetic one: every poll advances time by a jittered
// step, so whether and when a scan observes its deadline is a pure
// function of how many polls it has made — machine speed, core count,
// and the race detector's slowdown drop out entirely. pastDeadline
// counts the polls made at or past the deadline: a prompt scan makes
// at most a handful (each worker returns at its first post-deadline
// poll) before fully unwinding.
type fakeScanClock struct {
	mu           sync.Mutex
	now          time.Time
	deadline     time.Time
	maxStep      time.Duration
	rng          *rand.Rand
	polls        int
	pastDeadline int
}

func (c *fakeScanClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	c.now = c.now.Add(time.Duration(1 + c.rng.Int63n(int64(c.maxStep))))
	if !c.now.Before(c.deadline) {
		c.pastDeadline++
	}
	return c.now
}

// newFakeScanClock pins a clock a few expected steps short of the
// context's deadline: the scan's own poll cadence crosses it within
// ~2·polls reads, long before the real one-hour timer could fire, so
// the poll path is provably the mechanism that cancels.
func newFakeScanClock(seed int64, deadline time.Time, polls int) *fakeScanClock {
	const step = time.Minute
	return &fakeScanClock{
		now:      deadline.Add(-time.Duration(polls) * step),
		deadline: deadline,
		maxStep:  step, // jitter 1ns..step per poll
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// maxPastDeadlinePolls bounds how many deadline polls a cancelled scan
// may make at or past the deadline before it has fully unwound. Each
// goroutine returns at its first post-deadline poll, and every plan
// runs a few workers across a few phases, so the bound is a property
// of the code's structure — not of how fast the machine runs it.
const maxPastDeadlinePolls = 16

// TestCancellationDeterministicQuery is the deflaked overshoot
// regression for query scans: the pinned clock drives every execution
// plan's deadline polls, the scan must cancel at poll granularity with
// the context sentinel and no partial response, and afterwards the
// engine serves the same query byte-identically. No wall-clock
// measurement is involved, so the test is exact under -race on one
// core.
func TestCancellationDeterministicQuery(t *testing.T) {
	e, c := cancelEngine(t, 626262, false)
	rng := rand.New(rand.NewSource(626263))
	q := cancelQuery(t, e, c, rng, 8)
	plans := []struct {
		name                        string
		shards, window, parallelism int
	}{
		{"sequential", 0, -1, 0},
		{"striped", 0, -1, 2},
		{"sharded", 2, -1, 2},
	}
	for i, pl := range plans {
		pl, i := pl, i
		t.Run(pl.name, func(t *testing.T) {
			if err := e.ConfigureExecution(pl.shards, pl.window, pl.parallelism); err != nil {
				t.Fatalf("ConfigureExecution: %v", err)
			}
			base, err := e.Process(q)
			if err != nil {
				t.Fatalf("baseline Process: %v", err)
			}
			baseBytes := respBytes(t, base)

			deadline := time.Now().Add(time.Hour)
			ctx, cancel := context.WithDeadline(context.Background(), deadline)
			// Two expected steps out: the sharded plan polls only a
			// handful of times on this corpus, so the crossing must land
			// within its first few polls.
			clock := newFakeScanClock(int64(0xC10C+i), deadline, 2)
			restore := core.SetScanClock(clock.Now)
			resp, err := e.ProcessContext(ctx, q)
			restore()
			cancel()
			if err == nil {
				t.Fatalf("synthetic deadline crossing did not cancel the scan (%d polls)", clock.polls)
			}
			var cerr *CancelledError
			if !errors.As(err, &cerr) {
				t.Fatalf("cancelled scan returned %T (%v), want *CancelledError", err, err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("errors.Is(err, DeadlineExceeded) = false (err %v)", err)
			}
			if resp != nil {
				t.Fatal("partial response returned alongside cancellation")
			}
			if clock.pastDeadline == 0 || clock.pastDeadline > maxPastDeadlinePolls {
				t.Fatalf("scan made %d post-deadline polls (%d total), want 1..%d",
					clock.pastDeadline, clock.polls, maxPastDeadlinePolls)
			}

			after, err := e.Process(q)
			if err != nil {
				t.Fatalf("post-cancel Process: %v", err)
			}
			if !bytes.Equal(respBytes(t, after), baseBytes) {
				t.Fatal("response after deterministic cancellation is not byte-identical to baseline")
			}
		})
	}
}

// TestCancellationDeterministicFetch runs the pinned clock through the
// retrieval kernels: the per-query exec path, the amortized one-pass
// multi path, and the two-level recursive path each observe the
// synthetic deadline at poll granularity, surface the context sentinel
// with no partial documents, and keep serving byte-identical documents
// afterwards.
func TestCancellationDeterministicFetch(t *testing.T) {
	e, c := cancelEngine(t, 737373, true)
	if err := e.ConfigurePIRWorkers(2); err != nil {
		t.Fatalf("ConfigurePIRWorkers: %v", err)
	}
	ids := []int{5, 19, 42, 77, 103}
	baseline, _, err := c.FetchDocuments(ids)
	if err != nil {
		t.Fatalf("baseline FetchDocuments: %v", err)
	}
	modes := []struct {
		name      string
		amortize  int
		recursive bool
	}{
		{"per-query", -1, false},
		{"amortized", 1, false},
		{"recursive", 1, true},
	}
	defer c.SetFetchRecursive(false)
	for i, m := range modes {
		m, i := m, i
		t.Run(m.name, func(t *testing.T) {
			if err := e.ConfigurePIRBatchAmortize(m.amortize); err != nil {
				t.Fatalf("ConfigurePIRBatchAmortize: %v", err)
			}
			c.SetFetchRecursive(m.recursive)

			deadline := time.Now().Add(time.Hour)
			ctx, cancel := context.WithDeadline(context.Background(), deadline)
			clock := newFakeScanClock(int64(0xFE7C+i), deadline, 6)
			restore := pir.SetScanClock(clock.Now)
			docs, _, err := c.FetchDocumentsContext(ctx, ids)
			restore()
			cancel()
			if err == nil {
				t.Fatalf("synthetic deadline crossing did not cancel the fetch (%d polls)", clock.polls)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("cancelled fetch: err %v, want context.DeadlineExceeded", err)
			}
			if docs != nil {
				t.Fatal("cancelled fetch returned partial results")
			}
			if clock.pastDeadline == 0 || clock.pastDeadline > maxPastDeadlinePolls {
				t.Fatalf("fetch made %d post-deadline polls (%d total), want 1..%d",
					clock.pastDeadline, clock.polls, maxPastDeadlinePolls)
			}

			after, _, err := c.FetchDocuments(ids)
			if err != nil {
				t.Fatalf("post-cancel FetchDocuments: %v", err)
			}
			for j := range baseline {
				if !bytes.Equal(baseline[j], after[j]) {
					t.Fatalf("doc %d differs after a deterministic cancellation", ids[j])
				}
			}
		})
	}
}

package embellish

import (
	"fmt"
	"io"
	"time"

	"embellish/internal/wire"
)

// The metrics surface: the same ServeStats snapshot is exported three
// ways — over the wire protocol (TypeStats, served without admission
// so it stays readable under saturation), as a Prometheus-style text
// page for the embellish-server -metrics HTTP listener, and to remote
// clients via ServerStats. All three read the identical counters, so
// an operator's dashboard and a client's retry policy never disagree
// about what the server is doing.

// gauge clamps a signed instantaneous counter for the unsigned wire
// schema. The live gauges (Active, Inflight, Queued) can read
// transiently negative — a disconnect accounted on one core before the
// connect lands on another — and a straight uint64 cast would render
// that as ~1.8e19 on a dashboard. Monotonic totals never go negative,
// so only the gauges pass through here.
func gauge(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// statsPayload flattens one counter snapshot into the positional wire
// schema.
func (s *NetServer) statsPayload() wire.Stats {
	st := s.Stats()
	p := wire.Stats{
		Accepted:             uint64(st.Accepted),
		Rejected:             uint64(st.Rejected),
		Active:               gauge(st.Active),
		Queries:              uint64(st.Queries),
		Updates:              uint64(st.Updates),
		Retrievals:           uint64(st.Retrievals),
		Errors:               uint64(st.Errors),
		QueryNs:              uint64(st.QueryTime),
		MaxQueryNs:           uint64(st.MaxQueryTime),
		Inflight:             gauge(st.Inflight),
		Queued:               gauge(st.Queued),
		QueuedTotal:          uint64(st.QueuedTotal),
		QueueWaitNs:          uint64(st.QueueWait),
		MaxQueueWaitNs:       uint64(st.MaxQueueWait),
		ShedQueueFull:        uint64(st.ShedQueueFull),
		ShedQueueTimeout:     uint64(st.ShedQueueTimeout),
		Deadlines:            uint64(st.Deadlines),
		WALSeq:               st.WALSeq,
		WALCheckpointSeq:     st.WALCheckpointSeq,
		CheckpointAgeNs:      uint64(st.CheckpointAge),
		PIRModMuls:           uint64(st.PIRModMuls),
		PIRTableMuls:         uint64(st.PIRTableMuls),
		PIRRecursiveQueries:  uint64(st.PIRRecursiveQueries),
		PIRRecursivePartials: uint64(st.PIRRecursivePartials),
		ReplPrimarySeq:       st.ReplPrimarySeq,
		ReplLagOps:           st.ReplLag,
		DecoyQueries:         uint64(st.DecoyQueries),
		RiskAudited:          uint64(st.RiskAudited),
		RiskSkipped:          uint64(st.RiskSkipped),
		RiskSumMicros:        uint64(st.RiskSumMicros),
	}
	if st.Durable {
		p.Durable = 1
	}
	return p
}

// answerStats serves one TypeStats request. The request carries no
// body — a non-empty one is a malformed frame, refused like every
// other malformed request (the connection stays up).
func (s *NetServer) answerStats(rw io.ReadWriter, body []byte) error {
	if len(body) != 0 {
		s.errs.Add(1)
		return wire.WriteError(rw, "stats request carries no body")
	}
	return wire.WriteStats(rw, s.statsPayload())
}

// MetricsText renders the counter snapshot as a Prometheus-style text
// exposition — one embellish_* line per field — for the optional
// -metrics HTTP listener in cmd/embellish-server. Durations are
// exported in seconds, matching Prometheus convention.
func (s *NetServer) MetricsText() []byte {
	st := s.Stats()
	var b []byte
	line := func(name string, v interface{}) {
		b = fmt.Appendf(b, "embellish_%s %v\n", name, v)
	}
	secs := func(d int64) float64 { return float64(d) / 1e9 }
	line("connections_accepted_total", st.Accepted)
	line("connections_rejected_total", st.Rejected)
	line("connections_active", gauge(st.Active))
	line("queries_total", st.Queries)
	line("updates_total", st.Updates)
	line("retrievals_total", st.Retrievals)
	line("errors_total", st.Errors)
	line("query_seconds_total", secs(int64(st.QueryTime)))
	line("query_seconds_max", secs(int64(st.MaxQueryTime)))
	line("inflight", gauge(st.Inflight))
	line("queue_depth", gauge(st.Queued))
	line("queued_total", st.QueuedTotal)
	line("queue_wait_seconds_total", secs(int64(st.QueueWait)))
	line("queue_wait_seconds_max", secs(int64(st.MaxQueueWait)))
	line("shed_queue_full_total", st.ShedQueueFull)
	line("shed_queue_timeout_total", st.ShedQueueTimeout)
	line("deadline_cancellations_total", st.Deadlines)
	durable := 0
	if st.Durable {
		durable = 1
	}
	line("durable", durable)
	line("wal_seq", st.WALSeq)
	line("wal_checkpoint_seq", st.WALCheckpointSeq)
	line("checkpoint_age_seconds", secs(int64(st.CheckpointAge)))
	line("pir_modmuls_total", st.PIRModMuls)
	line("pir_table_muls_total", st.PIRTableMuls)
	line("pir_recursive_queries_total", st.PIRRecursiveQueries)
	line("pir_recursive_partials_total", st.PIRRecursivePartials)
	line("repl_primary_seq", st.ReplPrimarySeq)
	line("repl_lag_ops", st.ReplLag)
	line("decoy_queries_total", st.DecoyQueries)
	line("risk_audited_total", st.RiskAudited)
	line("risk_skipped_total", st.RiskSkipped)
	line("risk_sum", float64(st.RiskSumMicros)/1e6)
	return b
}

// ServerStats fetches a remote server's counter snapshot over an open
// protocol connection. Any wire client may call it — the server
// answers without admission control, so it works even while the
// server is saturated (which is exactly when it matters). Fields the
// remote server is too old to send decode as zero.
func ServerStats(conn io.ReadWriter) (ServeStats, error) {
	if err := wire.WriteStatsRequest(conn); err != nil {
		return ServeStats{}, fmt.Errorf("embellish: sending stats request: %w", err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return ServeStats{}, fmt.Errorf("embellish: reading stats: %w", err)
	}
	switch typ {
	case wire.TypeError:
		return ServeStats{}, remoteError(body)
	case wire.TypeStats:
	default:
		return ServeStats{}, fmt.Errorf("embellish: unexpected message type %d", typ)
	}
	p, err := wire.DecodeStats(body)
	if err != nil {
		return ServeStats{}, err
	}
	return ServeStats{
		Accepted:             int64(p.Accepted),
		Rejected:             int64(p.Rejected),
		Active:               int64(p.Active),
		Queries:              int64(p.Queries),
		Updates:              int64(p.Updates),
		Retrievals:           int64(p.Retrievals),
		Errors:               int64(p.Errors),
		QueryTime:            time.Duration(p.QueryNs),
		MaxQueryTime:         time.Duration(p.MaxQueryNs),
		Inflight:             int64(p.Inflight),
		Queued:               int64(p.Queued),
		QueuedTotal:          int64(p.QueuedTotal),
		QueueWait:            time.Duration(p.QueueWaitNs),
		MaxQueueWait:         time.Duration(p.MaxQueueWaitNs),
		ShedQueueFull:        int64(p.ShedQueueFull),
		ShedQueueTimeout:     int64(p.ShedQueueTimeout),
		Deadlines:            int64(p.Deadlines),
		Durable:              p.Durable != 0,
		WALSeq:               p.WALSeq,
		WALCheckpointSeq:     p.WALCheckpointSeq,
		CheckpointAge:        time.Duration(p.CheckpointAgeNs),
		PIRModMuls:           int64(p.PIRModMuls),
		PIRTableMuls:         int64(p.PIRTableMuls),
		PIRRecursiveQueries:  int64(p.PIRRecursiveQueries),
		PIRRecursivePartials: int64(p.PIRRecursivePartials),
		ReplPrimarySeq:       p.ReplPrimarySeq,
		ReplLag:              p.ReplLagOps,
		RouterPartitions:     p.RouterPartitions,
		RouterRetries:        p.RouterRetries,
		RouterFailovers:      p.RouterFailovers,
		DecoyQueries:         int64(p.DecoyQueries),
		RiskAudited:          int64(p.RiskAudited),
		RiskSkipped:          int64(p.RiskSkipped),
		RiskSumMicros:        int64(p.RiskSumMicros),
	}, nil
}

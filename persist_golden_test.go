package embellish

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"embellish/internal/detrand"
)

// Golden-file persistence tests: tiny v1/v2/v3 engine files are
// checked in under testdata/, and every future format change must keep
// loading them with EXACTLY the semantics asserted here — shapes,
// rankings and stored bytes. A format bump that silently breaks compat
// fails these tests, not a customer's deployment.
//
// Regenerate (after a DELIBERATE format change only) with:
//
//	go test -run TestGolden -update-golden .

var updateGolden = flag.Bool("update-golden", false, "rewrite the testdata golden engine files")

const (
	goldenBaseDocs  = 30
	goldenAddedDocs = 5
	goldenBlockSize = 32
)

var goldenDeletes = []int{2, 31}

// goldenEngine deterministically rebuilds the world the golden files
// were generated from: goldenBaseDocs base documents, one online add
// batch, two deletions. withStore toggles the PIR document store (the
// v3 payload); mutate toggles the add/delete history (v1 files can
// only express the pristine state).
func goldenEngine(t testing.TB, withStore, mutate bool) *Engine {
	t.Helper()
	lemmas := miniLemmas()
	docs := make([]Document, goldenBaseDocs)
	for i := range docs {
		docs[i] = Document{ID: i, Text: storeDocText(i, lemmas)}
	}
	opts := DefaultOptions()
	opts.BucketSize = 4
	opts.KeyBits = 256
	opts.ScoreSpace = 10
	opts.StoreDocuments = withStore
	opts.BlockSize = goldenBlockSize
	e, err := NewEngine(MiniLexicon(), docs, opts)
	if err != nil {
		t.Fatalf("golden engine: %v", err)
	}
	if mutate {
		added := make([]Document, goldenAddedDocs)
		for i := range added {
			id := goldenBaseDocs + i
			added[i] = Document{ID: id, Text: storeDocText(id, lemmas)}
		}
		if err := e.AddDocuments(added); err != nil {
			t.Fatal(err)
		}
		if err := e.DeleteDocuments(goldenDeletes); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func goldenPath(version int) string {
	return filepath.Join("testdata", fmt.Sprintf("engine_v%d.bin", version))
}

func maybeUpdateGolden(t *testing.T) {
	t.Helper()
	if !*updateGolden {
		return
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for version, write := range map[int]func(*Engine, *bytes.Buffer) error{
		1: func(e *Engine, buf *bytes.Buffer) error { return e.saveV1(buf) },
		2: func(e *Engine, buf *bytes.Buffer) error { return e.saveV2(buf) },
		3: func(e *Engine, buf *bytes.Buffer) error { return e.Save(buf) },
	} {
		e := goldenEngine(t, version == 3, version != 1)
		var buf bytes.Buffer
		if err := write(e, &buf); err != nil {
			t.Fatalf("writing v%d golden: %v", version, err)
		}
		if err := os.WriteFile(goldenPath(version), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath(version), buf.Len())
	}
}

func loadGolden(t *testing.T, version int) *Engine {
	t.Helper()
	data, err := os.ReadFile(goldenPath(version))
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
	}
	e, err := LoadEngine(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("loading v%d golden: %v", version, err)
	}
	return e
}

// assertGoldenRanking pins the loaded engine's ranking to the freshly
// rebuilt reference world: same documents, same scores, rank by rank.
func assertGoldenRanking(t *testing.T, got, ref *Engine) {
	t.Helper()
	lemmas := miniLemmas()
	for _, query := range []string{lemmas[1] + " " + lemmas[6], lemmas[11]} {
		want, err := ref.PlaintextSearch(query, 0)
		if err != nil {
			t.Fatalf("reference %q: %v", query, err)
		}
		have, err := got.PlaintextSearch(query, 0)
		if err != nil {
			t.Fatalf("loaded %q: %v", query, err)
		}
		if len(have) != len(want) {
			t.Fatalf("query %q: %d results, want %d", query, len(have), len(want))
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("query %q rank %d: %+v, want %+v", query, i, have[i], want[i])
			}
		}
	}
}

func TestGoldenV1EngineFile(t *testing.T) {
	maybeUpdateGolden(t)
	e := loadGolden(t, 1)
	if e.NumSegments() != 1 || e.NumDocs() != goldenBaseDocs || e.NextDocID() != goldenBaseDocs {
		t.Fatalf("v1 shape: %d segments, %d docs, next %d", e.NumSegments(), e.NumDocs(), e.NextDocID())
	}
	if e.StoresDocuments() {
		t.Fatal("v1 file loaded with a document store")
	}
	assertGoldenRanking(t, e, goldenEngine(t, false, false))
	// A v1-loaded engine accepts updates immediately.
	if err := e.AddDocuments([]Document{{ID: e.NextDocID(), Text: "golden compat doc"}}); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenV2EngineFile(t *testing.T) {
	maybeUpdateGolden(t)
	e := loadGolden(t, 2)
	wantDocs := goldenBaseDocs + goldenAddedDocs - len(goldenDeletes)
	if e.NumDocs() != wantDocs || e.NextDocID() != goldenBaseDocs+goldenAddedDocs {
		t.Fatalf("v2 shape: %d docs, next %d", e.NumDocs(), e.NextDocID())
	}
	if e.NumSegments() != 2 {
		t.Fatalf("v2 loaded as %d segments, want 2", e.NumSegments())
	}
	if e.StoresDocuments() {
		t.Fatal("v2 file loaded with a document store")
	}
	// Tombstones survived the round trip: the deleted ids stay dead.
	if err := e.DeleteDocuments(goldenDeletes[:1]); err == nil {
		t.Fatal("v2 load resurrected a deleted id")
	}
	assertGoldenRanking(t, e, goldenEngine(t, false, true))
}

func TestGoldenV3EngineFile(t *testing.T) {
	maybeUpdateGolden(t)
	e := loadGolden(t, 3)
	wantDocs := goldenBaseDocs + goldenAddedDocs - len(goldenDeletes)
	if e.NumDocs() != wantDocs {
		t.Fatalf("v3 shape: %d docs, want %d", e.NumDocs(), wantDocs)
	}
	if !e.StoresDocuments() {
		t.Fatal("v3 file lost its document store")
	}
	assertGoldenRanking(t, e, goldenEngine(t, true, true))

	// Byte-exact stored documents: every live id reads its ground-truth
	// bytes, every tombstoned id errors — through the direct path AND
	// through a real PIR fetch.
	lemmas := miniLemmas()
	deleted := map[int]bool{}
	for _, id := range goldenDeletes {
		deleted[id] = true
	}
	for id := 0; id < e.NextDocID(); id++ {
		got, err := e.Document(id)
		if deleted[id] {
			if err == nil {
				t.Fatalf("deleted doc %d readable after load", id)
			}
			continue
		}
		if err != nil {
			t.Fatalf("doc %d: %v", id, err)
		}
		if want := storeDocText(id, lemmas); string(got) != want {
			t.Fatalf("doc %d = %q, want %q", id, got, want)
		}
	}
	c, err := e.NewClient(detrand.New("golden-fetch"))
	if err != nil {
		t.Fatal(err)
	}
	fetched, _, err := c.FetchDocuments([]int{0, 17})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []int{0, 17} {
		if want := storeDocText(id, lemmas); string(fetched[i]) != want {
			t.Fatalf("PIR fetch %d = %q, want %q", id, fetched[i], want)
		}
	}
	if _, _, err := c.FetchDocuments([]int{goldenDeletes[0]}); err == nil {
		t.Fatal("PIR fetch of a deleted id succeeded after load")
	}

	// A loaded v3 engine keeps updating AND storing: new documents are
	// fetchable.
	id := e.NextDocID()
	if err := e.AddDocuments([]Document{{ID: id, Text: "post-load stored doc"}}); err != nil {
		t.Fatal(err)
	}
	got, err := e.Document(id)
	if err != nil || string(got) != "post-load stored doc" {
		t.Fatalf("post-load add not stored: %q, %v", got, err)
	}
}

// TestGoldenRoundTripCurrentFormat guards the CURRENT writer against
// the loader: a mid-life engine with a store survives Save/Load with
// identical stored bytes (the non-golden complement of the fixtures).
func TestGoldenRoundTripCurrentFormat(t *testing.T) {
	e := goldenEngine(t, true, true)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range loaded.Snapshot().LiveDocIDs() {
		want, err := e.Document(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Document(id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("doc %d after round trip: %q (%v), want %q", id, got, err, want)
		}
	}
	// saveV2 drops the store deliberately; the result still loads.
	buf.Reset()
	if err := e.saveV2(&buf); err != nil {
		t.Fatal(err)
	}
	v2, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v2.StoresDocuments() {
		t.Fatal("saveV2 kept the store")
	}
}

package trackmenot

import (
	"math/rand"
	"testing"

	"embellish/internal/semdist"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func vocabDB(t *testing.T) (*wordnet.Database, []wordnet.TermID) {
	t.Helper()
	db := wngen.Generate(wngen.ScaledConfig(1200, 41))
	return db, db.AllTerms()
}

func TestNewGeneratorEmptyVocab(t *testing.T) {
	if _, err := NewGenerator(nil, 1); err == nil {
		t.Fatal("empty vocabulary accepted")
	}
}

func TestGhostDistinctTerms(t *testing.T) {
	_, vocab := vocabDB(t)
	g, err := NewGenerator(vocab, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := g.Ghost(8)
		if len(q) != 8 {
			t.Fatalf("ghost has %d terms, want 8", len(q))
		}
		seen := map[wordnet.TermID]bool{}
		for _, tm := range q {
			if seen[tm] {
				t.Fatalf("duplicate term %d in ghost query", tm)
			}
			seen[tm] = true
		}
	}
}

func TestGhostClampsToVocab(t *testing.T) {
	_, vocab := vocabDB(t)
	small := vocab[:3]
	g, _ := NewGenerator(small, 3)
	q := g.Ghost(10)
	if len(q) != 3 {
		t.Fatalf("ghost over 3-term vocab has %d terms, want 3", len(q))
	}
}

func TestStreamShape(t *testing.T) {
	_, vocab := vocabDB(t)
	g, _ := NewGenerator(vocab, 4)
	g.GhostRate = 6
	genuine := []wordnet.TermID{vocab[0], vocab[1], vocab[2]}
	batch, at := g.Stream(genuine)
	if len(batch) != 7 {
		t.Fatalf("batch size %d, want GhostRate+1 = 7", len(batch))
	}
	if at < 0 || at >= len(batch) {
		t.Fatalf("genuine index %d out of range", at)
	}
	for i, q := range batch {
		if len(q) != len(genuine) {
			t.Fatalf("query %d has %d terms, want %d", i, len(q), len(genuine))
		}
	}
	// The genuine slot must hold the genuine query itself.
	for i, tm := range batch[at] {
		if tm != genuine[i] {
			t.Fatal("genuine query not at reported index")
		}
	}
}

func TestStreamPositionVaries(t *testing.T) {
	_, vocab := vocabDB(t)
	g, _ := NewGenerator(vocab, 5)
	genuine := []wordnet.TermID{vocab[0], vocab[1]}
	positions := map[int]bool{}
	for i := 0; i < 40; i++ {
		_, at := g.Stream(genuine)
		positions[at] = true
	}
	if len(positions) < 2 {
		t.Fatal("genuine query always at the same batch position")
	}
}

func TestCoherenceDegenerate(t *testing.T) {
	db, vocab := vocabDB(t)
	calc := semdist.New(db, 20)
	if got := Coherence(nil, calc); got != 0 {
		t.Fatalf("empty query coherence = %v", got)
	}
	if got := Coherence(vocab[:1], calc); got != 0 {
		t.Fatalf("singleton coherence = %v", got)
	}
}

func TestCoherenceOrdersTopicalBelowRandom(t *testing.T) {
	// A query of sibling terms must be more coherent (lower) than a
	// random query — the statistical handle of the adversary.
	db := wordnet.MiniLexicon()
	calc := semdist.New(db, 20)
	name := func(s string) wordnet.TermID {
		tm, ok := db.Lookup(s)
		if !ok {
			t.Fatalf("lexicon missing %q", s)
		}
		return tm
	}
	topical := []wordnet.TermID{name("osteosarcoma"), name("sarcoma"), name("myosarcoma")}
	random := []wordnet.TermID{name("osteosarcoma"), name("water"), name("huntsville")}
	ct, cr := Coherence(topical, calc), Coherence(random, calc)
	if ct >= cr {
		t.Fatalf("topical coherence %.2f not below random %.2f", ct, cr)
	}
}

// TestAdversaryBreaksGhostCover reproduces the paper's Section 2.1
// criticism: an adversary picking the most coherent query in a
// TrackMeNot batch identifies the genuine query far more often than the
// 1/(GhostRate+1) chance level.
func TestAdversaryBreaksGhostCover(t *testing.T) {
	db, vocab := vocabDB(t)
	calc := semdist.New(db, 12)
	g, _ := NewGenerator(vocab, 7)
	g.GhostRate = 4
	adv := &Adversary{Calc: calc}

	// Genuine queries: a random synset plus neighbors — topically tight.
	rng := rand.New(rand.NewSource(9))
	genuineFn := func() []wordnet.TermID {
		for {
			seed := vocab[rng.Intn(len(vocab))]
			syns := db.SynsetsOf(seed)
			if len(syns) == 0 {
				continue
			}
			q := []wordnet.TermID{seed}
			for _, rel := range db.RelatedInOrder(syns[0]) {
				ts := db.Synset(rel).Terms
				if len(ts) > 0 && ts[0] != seed {
					q = append(q, ts[0])
				}
				if len(q) == 4 {
					break
				}
			}
			if len(q) >= 3 {
				return q
			}
		}
	}
	rate := SuccessRate(g, adv, 60, genuineFn)
	chance := 1.0 / float64(g.GhostRate+1)
	if rate < 2*chance {
		t.Fatalf("adversary success %.2f not well above chance %.2f; ghost cover unexpectedly strong", rate, chance)
	}
}

func TestSuccessRateDeterministic(t *testing.T) {
	db, vocab := vocabDB(t)
	calc := semdist.New(db, 12)
	genuine := []wordnet.TermID{vocab[0], vocab[1], vocab[2]}
	fn := func() []wordnet.TermID { return genuine }
	g1, _ := NewGenerator(vocab, 13)
	g2, _ := NewGenerator(vocab, 13)
	a := &Adversary{Calc: calc}
	if SuccessRate(g1, a, 20, fn) != SuccessRate(g2, a, 20, fn) {
		t.Fatal("same seed produced different success rates")
	}
}

func TestStreamNonPositiveGhostRate(t *testing.T) {
	_, vocab := vocabDB(t)
	genuine := []wordnet.TermID{vocab[0], vocab[1]}
	for _, rate := range []int{0, -1, -7} {
		g, _ := NewGenerator(vocab, 5)
		g.GhostRate = rate
		// Regression: rand.Intn(rate+1) panicked for rate < 0 and must
		// not; a non-positive rate means a cover-free stream of one.
		batch, at := g.Stream(genuine)
		if len(batch) != 1 || at != 0 {
			t.Fatalf("GhostRate=%d: batch len %d genuineAt %d, want 1/0", rate, len(batch), at)
		}
		if &batch[0][0] != &genuine[0] {
			t.Fatalf("GhostRate=%d: genuine query not passed through", rate)
		}
	}
}

func TestSuccessRateNoTrials(t *testing.T) {
	db, vocab := vocabDB(t)
	g, _ := NewGenerator(vocab, 3)
	adv := &Adversary{Calc: semdist.New(db, 12)}
	fn := func() []wordnet.TermID { return []wordnet.TermID{vocab[0], vocab[1]} }
	for _, trials := range []int{0, -5} {
		// Regression: 0/0 yielded NaN, which poisons averaged sweeps.
		if rate := SuccessRate(g, adv, trials, fn); rate != 0 {
			t.Fatalf("SuccessRate with %d trials = %v, want 0", trials, rate)
		}
	}
}

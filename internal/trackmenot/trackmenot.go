// Package trackmenot implements a TrackMeNot-style ghost-query baseline
// (Howe and Nissenbaum; discussed in Section 2.1 of Pang, Ding and Xiao,
// VLDB 2010). TrackMeNot hides genuine queries in a stream of randomly
// generated 'ghost' queries. The paper's criticism — which this package
// lets experiments quantify — is that "the ghost queries often can be
// ruled out easily because their term combinations are not meaningful":
// random term combinations have a much larger intra-query semantic spread
// than genuine topical queries, so an adversary with a term-relatedness
// model filters them out.
package trackmenot

import (
	"errors"
	"math/rand"

	"embellish/internal/semdist"
	"embellish/internal/wordnet"
)

// Generator emits ghost queries drawn uniformly from a vocabulary,
// mimicking TrackMeNot's RSS-seeded random query construction.
type Generator struct {
	vocab []wordnet.TermID
	rng   *rand.Rand
	// GhostRate is the number of ghost queries emitted per genuine query
	// in Stream; TrackMeNot's default cadence is a handful per genuine
	// query.
	GhostRate int
}

// NewGenerator builds a ghost-query generator over the vocabulary. seed
// fixes the random stream for reproducible experiments.
func NewGenerator(vocab []wordnet.TermID, seed int64) (*Generator, error) {
	if len(vocab) == 0 {
		return nil, errors.New("trackmenot: empty vocabulary")
	}
	return &Generator{
		vocab:     vocab,
		rng:       rand.New(rand.NewSource(seed)),
		GhostRate: 4,
	}, nil
}

// Ghost returns one ghost query of n distinct random vocabulary terms.
func (g *Generator) Ghost(n int) []wordnet.TermID {
	if n > len(g.vocab) {
		n = len(g.vocab)
	}
	out := make([]wordnet.TermID, 0, n)
	seen := make(map[wordnet.TermID]bool, n)
	for len(out) < n {
		t := g.vocab[g.rng.Intn(len(g.vocab))]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Stream interleaves the genuine query with GhostRate ghost queries of
// the same length, at a random position, returning the batch and the
// index of the genuine query within it. This is the observable the
// search engine sees under TrackMeNot.
func (g *Generator) Stream(genuine []wordnet.TermID) (batch [][]wordnet.TermID, genuineAt int) {
	// A non-positive GhostRate means no cover traffic: the stream is the
	// genuine query alone. Guarding here keeps a caller-zeroed rate from
	// panicking rand.Intn with a non-positive argument.
	rate := g.GhostRate
	if rate < 0 {
		rate = 0
	}
	batch = make([][]wordnet.TermID, 0, rate+1)
	genuineAt = g.rng.Intn(rate + 1)
	for i := 0; i <= rate; i++ {
		if i == genuineAt {
			batch = append(batch, genuine)
			continue
		}
		batch = append(batch, g.Ghost(len(genuine)))
	}
	return batch, genuineAt
}

// Coherence measures the semantic tightness of a query: the mean pairwise
// semantic distance between its terms (lower = more topically coherent).
// Genuine queries score low; random ghost queries score near the
// distance cap — the statistical handle an adversary uses to rule ghosts
// out.
func Coherence(q []wordnet.TermID, calc *semdist.Calculator) float64 {
	if len(q) < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < len(q); i++ {
		for j := i + 1; j < len(q); j++ {
			sum += calc.TermDistance(q[i], q[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// Adversary ranks a batch of queries by coherence and guesses the most
// coherent one as genuine. It models the paper's observation that ghost
// queries "can be ruled out easily".
type Adversary struct {
	Calc *semdist.Calculator
}

// Guess returns the index of the query the adversary believes is genuine:
// the one with the smallest coherence value. Ties break toward the lower
// index.
func (a *Adversary) Guess(batch [][]wordnet.TermID) int {
	best, bestScore := 0, 0.0
	for i, q := range batch {
		c := Coherence(q, a.Calc)
		if i == 0 || c < bestScore {
			best, bestScore = i, c
		}
	}
	return best
}

// SuccessRate runs trials of Stream followed by an adversary guess and
// returns the fraction of trials where the adversary identified the
// genuine query. genuineFn must produce a fresh genuine (topically
// coherent) query per trial. A rate far above 1/(GhostRate+1) means the
// ghost cover is statistically broken.
func SuccessRate(g *Generator, adv *Adversary, trials int, genuineFn func() []wordnet.TermID) float64 {
	if trials <= 0 {
		// No trials means no evidence either way; 0/0 would be NaN, which
		// poisons any aggregate the caller folds it into.
		return 0
	}
	hits := 0
	for i := 0; i < trials; i++ {
		batch, at := g.Stream(genuineFn())
		if adv.Guess(batch) == at {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// Package detrand provides a deterministic byte stream for reproducible
// cryptographic key generation and encryption randomness in tests,
// benchmarks and experiments. NOT cryptographically secure: production
// callers pass nil readers to the crypto APIs, selecting crypto/rand.
package detrand

import (
	"bytes"
	"crypto/sha256"
)

// Reader is a deterministic io.Reader producing an SHA-256 feedback
// stream from a seed string.
type Reader struct {
	state [32]byte
	buf   bytes.Buffer
}

// New seeds a deterministic stream.
func New(seed string) *Reader {
	return &Reader{state: sha256.Sum256([]byte(seed))}
}

// Read implements io.Reader.
func (d *Reader) Read(p []byte) (int, error) {
	for d.buf.Len() < len(p) {
		d.state = sha256.Sum256(d.state[:])
		d.buf.Write(d.state[:])
	}
	return d.buf.Read(p)
}

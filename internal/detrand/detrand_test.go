package detrand

import (
	"bytes"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New("seed"), New("seed")
	ba, bb := make([]byte, 257), make([]byte, 257)
	if _, err := a.Read(ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed produced different streams")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New("seed-1"), New("seed-2")
	ba, bb := make([]byte, 64), make([]byte, 64)
	a.Read(ba)
	b.Read(bb)
	if bytes.Equal(ba, bb) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamAdvances(t *testing.T) {
	r := New("x")
	p1, p2 := make([]byte, 32), make([]byte, 32)
	r.Read(p1)
	r.Read(p2)
	if bytes.Equal(p1, p2) {
		t.Fatal("consecutive reads returned identical bytes")
	}
}

func TestShortAndUnevenReads(t *testing.T) {
	// Reads of awkward sizes must splice correctly across the 32-byte
	// internal blocks: reading 1+31+33 bytes equals reading 65 at once.
	a, b := New("u"), New("u")
	var got []byte
	for _, n := range []int{1, 31, 33} {
		p := make([]byte, n)
		if _, err := a.Read(p); err != nil {
			t.Fatal(err)
		}
		got = append(got, p...)
	}
	want := make([]byte, 65)
	b.Read(want)
	if !bytes.Equal(got, want) {
		t.Fatal("uneven reads diverge from a single read")
	}
}

package eval

import (
	"fmt"
	"math"
	"math/rand"

	"embellish/internal/privacy"
	"embellish/internal/semdist"
	"embellish/internal/wordnet"
)

// Figure2 regenerates the term-specificity histogram of the lexicon
// (paper Figure 2: specificity 0-18 over the WordNet nouns, with roughly
// one third of the terms at specificity 7).
func (e *Env) Figure2() Figure {
	hist := e.DB.SpecificityHistogram()
	f := Figure{
		ID:     "2",
		Title:  "Distribution of Term Specificity",
		XLabel: "Specificity",
		YLabel: "term count",
	}
	s := Series{Name: "Count"}
	for spec, n := range hist {
		s.X = append(s.X, float64(spec))
		s.Y = append(s.Y, float64(n))
	}
	f.Series = []Series{s}
	return f
}

// DefaultSegSzSweep is the Figure 5 x-axis: SegSz = 2^2 .. 2^14.
func DefaultSegSzSweep() []int {
	var out []int
	for p := 2; p <= 14; p++ {
		out = append(out, 1<<p)
	}
	return out
}

// DefaultBktSzSweep is the Figure 6/7 x-axis: BktSz = 2 .. 24.
func DefaultBktSzSweep() []int { return []int{2, 4, 8, 12, 16, 20, 24} }

// clampSegSz keeps a sweep value inside [1, N/BktSz].
func (e *Env) clampSegSz(segSz, bktSz int) int {
	max := len(e.Searchable) / bktSz
	if segSz > max {
		return max
	}
	if segSz < 1 {
		return 1
	}
	return segSz
}

// Figure5a regenerates the intra-bucket specificity difference versus
// SegSz at BktSz=4, for the paper's Bucket organization and the Random
// baseline. Expected shape: Bucket well below Random, decreasing as
// SegSz grows (larger segments give more leeway to even out
// specificity).
func (e *Env) Figure5a(segSzs []int) (Figure, error) {
	if segSzs == nil {
		segSzs = DefaultSegSzSweep()
	}
	const bktSz = 4
	f := Figure{
		ID:     "5a",
		Title:  "Effect of SegSz on Bucket Formation (BktSz=4) — Specificity Difference",
		XLabel: "log2(SegSz)",
		YLabel: "specificity difference",
	}
	bucketS := Series{Name: "Bucket"}
	randomS := Series{Name: "Random"}
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 50))
	for _, raw := range segSzs {
		segSz := e.clampSegSz(raw, bktSz)
		org, err := e.Organization(bktSz, segSz)
		if err != nil {
			return f, fmt.Errorf("eval: figure 5a at SegSz=%d: %w", segSz, err)
		}
		x := log2(float64(raw))
		bucketS.X = append(bucketS.X, x)
		bucketS.Y = append(bucketS.Y, privacy.AvgSpecSpread(org, e.DB.Specificity))

		randOrg, err := privacy.RandomOrganization(e.Searchable, bktSz, rng)
		if err != nil {
			return f, err
		}
		randomS.X = append(randomS.X, x)
		randomS.Y = append(randomS.Y, privacy.AvgSpecSpread(randOrg, e.DB.Specificity))
	}
	f.Series = []Series{randomS, bucketS}
	return f, nil
}

// Figure5b regenerates the inter-bucket distance difference (closest and
// farthest cover) versus SegSz at BktSz=4. Expected shape: Bucket's
// closest cover differs by about one hypernym hop and its farthest by
// roughly 4x that, both nearly flat in SegSz and both well under the
// Random baseline.
func (e *Env) Figure5b(segSzs []int) (Figure, error) {
	if segSzs == nil {
		segSzs = DefaultSegSzSweep()
	}
	const bktSz = 4
	f := Figure{
		ID:     "5b",
		Title:  "Effect of SegSz on Bucket Formation (BktSz=4) — Distance Difference",
		XLabel: "log2(SegSz)",
		YLabel: "distance difference",
	}
	calc := semdist.New(e.DB, 40)
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 51))
	bc := Series{Name: "Bucket (Closest)"}
	bf := Series{Name: "Bucket (Farthest)"}
	rc := Series{Name: "Random (Closest)"}
	rf := Series{Name: "Random (Farthest)"}
	for _, raw := range segSzs {
		segSz := e.clampSegSz(raw, bktSz)
		org, err := e.Organization(bktSz, segSz)
		if err != nil {
			return f, fmt.Errorf("eval: figure 5b at SegSz=%d: %w", segSz, err)
		}
		x := log2(float64(raw))
		dd := privacy.MeasureDistanceDifference(org, calc, e.Cfg.Trials, rng)
		bc.X, bc.Y = append(bc.X, x), append(bc.Y, dd.Closest)
		bf.X, bf.Y = append(bf.X, x), append(bf.Y, dd.Farthest)

		randOrg, err := privacy.RandomOrganization(e.Searchable, bktSz, rng)
		if err != nil {
			return f, err
		}
		rd := privacy.MeasureDistanceDifference(randOrg, calc, e.Cfg.Trials, rng)
		rc.X, rc.Y = append(rc.X, x), append(rc.Y, rd.Closest)
		rf.X, rf.Y = append(rf.X, x), append(rf.Y, rd.Farthest)
	}
	f.Series = []Series{rf, rc, bf, bc}
	return f, nil
}

// Figure6a regenerates the intra-bucket specificity difference versus
// BktSz, with SegSz maximized to N/BktSz (the paper's choice after
// Figure 5 shows larger segments help). Expected shape: Bucket starts
// near zero and grows slowly with BktSz, staying well under Random.
func (e *Env) Figure6a(bktSzs []int) (Figure, error) {
	if bktSzs == nil {
		bktSzs = DefaultBktSzSweep()
	}
	f := Figure{
		ID:     "6a",
		Title:  "Effect of BktSz on Bucket Formation (SegSz=N/BktSz) — Specificity Difference",
		XLabel: "BktSz",
		YLabel: "specificity difference",
	}
	bucketS := Series{Name: "Bucket"}
	randomS := Series{Name: "Random"}
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 60))
	for _, bktSz := range bktSzs {
		org, err := e.Organization(bktSz, 0)
		if err != nil {
			return f, fmt.Errorf("eval: figure 6a at BktSz=%d: %w", bktSz, err)
		}
		bucketS.X = append(bucketS.X, float64(bktSz))
		bucketS.Y = append(bucketS.Y, privacy.AvgSpecSpread(org, e.DB.Specificity))

		randOrg, err := privacy.RandomOrganization(e.Searchable, bktSz, rng)
		if err != nil {
			return f, err
		}
		randomS.X = append(randomS.X, float64(bktSz))
		randomS.Y = append(randomS.Y, privacy.AvgSpecSpread(randOrg, e.DB.Specificity))
	}
	f.Series = []Series{randomS, bucketS}
	return f, nil
}

// Figure6b regenerates the distance difference versus BktSz
// (SegSz=N/BktSz). Expected shape: closest cover stays within a hop or
// two; farthest grows with BktSz but remains under Random.
func (e *Env) Figure6b(bktSzs []int) (Figure, error) {
	if bktSzs == nil {
		bktSzs = DefaultBktSzSweep()
	}
	f := Figure{
		ID:     "6b",
		Title:  "Effect of BktSz on Bucket Formation (SegSz=N/BktSz) — Distance Difference",
		XLabel: "BktSz",
		YLabel: "distance difference",
	}
	calc := semdist.New(e.DB, 40)
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 61))
	bc := Series{Name: "Bucket (Closest)"}
	bf := Series{Name: "Bucket (Farthest)"}
	rc := Series{Name: "Random (Closest)"}
	rf := Series{Name: "Random (Farthest)"}
	for _, bktSz := range bktSzs {
		org, err := e.Organization(bktSz, 0)
		if err != nil {
			return f, fmt.Errorf("eval: figure 6b at BktSz=%d: %w", bktSz, err)
		}
		dd := privacy.MeasureDistanceDifference(org, calc, e.Cfg.Trials, rng)
		x := float64(bktSz)
		bc.X, bc.Y = append(bc.X, x), append(bc.Y, dd.Closest)
		bf.X, bf.Y = append(bf.X, x), append(bf.Y, dd.Farthest)

		randOrg, err := privacy.RandomOrganization(e.Searchable, bktSz, rng)
		if err != nil {
			return f, err
		}
		rd := privacy.MeasureDistanceDifference(randOrg, calc, e.Cfg.Trials, rng)
		rc.X, rc.Y = append(rc.X, x), append(rc.Y, rd.Closest)
		rf.X, rf.Y = append(rf.X, x), append(rf.Y, rd.Farthest)
	}
	f.Series = []Series{rf, rc, bf, bc}
	return f, nil
}

func log2(x float64) float64 { return math.Log2(x) }

// RiskPoint is the evaluator of record for the served risk audit: the
// mean per-query observed risk of a set of genuine query term
// sequences under org. Each query expands to its unique host-bucket
// decomposition — exactly the observation Algorithm 3 hands an
// adversary, and exactly what a serving audit reconstructs from the
// wire — and is scored with the factorized uniform-prior estimator
// (privacy.Auditor.ObservedRisk). The networked battery asserts the
// wire-side audit matches this number.
func RiskPoint(a *privacy.Auditor, queries [][]wordnet.TermID) (float64, error) {
	if len(queries) == 0 {
		return 0, fmt.Errorf("eval: no queries to score")
	}
	var sum float64
	for qi, q := range queries {
		var buckets []int
		seen := map[int]bool{}
		for _, t := range q {
			b, ok := a.Org.BucketOf(t)
			if !ok {
				return 0, fmt.Errorf("eval: query %d term %d outside organization", qi, t)
			}
			if !seen[b] {
				seen[b] = true
				buckets = append(buckets, b)
			}
		}
		r, err := a.ObservedRisk(buckets)
		if err != nil {
			return 0, fmt.Errorf("eval: query %d: %w", qi, err)
		}
		sum += r
	}
	return sum / float64(len(queries)), nil
}

// RiskQueries draws Trials genuine queries of QuerySize distinct
// searchable terms each, deterministically from the environment seed —
// the shared query set both the in-process figure and the networked
// battery score.
func (e *Env) RiskQueries() [][]wordnet.TermID {
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 70))
	n := e.Cfg.QuerySize
	if n <= 0 || n > len(e.Searchable) {
		n = 4
	}
	out := make([][]wordnet.TermID, e.Cfg.Trials)
	for i := range out {
		perm := rng.Perm(len(e.Searchable))[:n]
		q := make([]wordnet.TermID, n)
		for j, p := range perm {
			q[j] = e.Searchable[p]
		}
		out[i] = q
	}
	return out
}

// FigureRisk regenerates the paper's bottom-line privacy curve: the
// adversary's expected posterior similarity (Equation 2, uniform
// prior, factorized estimator) versus BktSz — i.e. versus decoy count,
// since each genuine term ships with BktSz-1 bucket decoys. Expected
// shape: risk starts high at BktSz=2 and falls monotonically as
// buckets widen, with the paper's specificity-aware Bucket
// organization staying above the Random baseline (random buckets are
// semantically incoherent, which *looks* better to this adversary but
// destroys result quality — the paper's Figure 5/6 trade-off).
func (e *Env) FigureRisk(bktSzs []int) (Figure, error) {
	if bktSzs == nil {
		bktSzs = DefaultBktSzSweep()
	}
	f := Figure{
		ID:     "risk",
		Title:  "Observed Query Risk vs BktSz (SegSz=N/BktSz, uniform prior)",
		XLabel: "BktSz",
		YLabel: "expected similarity",
	}
	queries := e.RiskQueries()
	calc := semdist.New(e.DB, 40)
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 71))
	bucketS := Series{Name: "Bucket"}
	randomS := Series{Name: "Random"}
	for _, bktSz := range bktSzs {
		org, err := e.Organization(bktSz, 0)
		if err != nil {
			return f, fmt.Errorf("eval: figure risk at BktSz=%d: %w", bktSz, err)
		}
		a := &privacy.Auditor{Org: org, Calc: calc, MaxWork: privacy.DefaultMaxWork}
		r, err := RiskPoint(a, queries)
		if err != nil {
			return f, fmt.Errorf("eval: figure risk at BktSz=%d: %w", bktSz, err)
		}
		bucketS.X = append(bucketS.X, float64(bktSz))
		bucketS.Y = append(bucketS.Y, r)

		randOrg, err := privacy.RandomOrganization(e.Searchable, bktSz, rng)
		if err != nil {
			return f, err
		}
		ra := &privacy.Auditor{Org: randOrg, Calc: calc, MaxWork: privacy.DefaultMaxWork}
		rr, err := RiskPoint(ra, queries)
		if err != nil {
			return f, fmt.Errorf("eval: figure risk random at BktSz=%d: %w", bktSz, err)
		}
		randomS.X = append(randomS.X, float64(bktSz))
		randomS.Y = append(randomS.Y, rr)
	}
	f.Series = []Series{randomS, bucketS}
	return f, nil
}

package eval

import (
	"fmt"
	"math/rand"
	"time"

	"embellish/internal/bucket"
	"embellish/internal/core"
	"embellish/internal/pirsearch"
	"embellish/internal/simio"
	"embellish/internal/wordnet"
)

// RetrievalPoint is the averaged measurement of one scheme at one sweep
// point — the four panels of Figures 7 and 8.
type RetrievalPoint struct {
	ServerIOms  float64 // (a) simulated disk time per query
	ServerCPUms float64 // (b) measured server compute per query
	TrafficKB   float64 // (c) query + response bytes per query
	UserCPUms   float64 // (d) measured client compute per query
}

// measurePR runs Trials random queries of the given size through the
// private retrieval scheme and averages the four metrics.
func (e *Env) measurePR(org *bucket.Organization, querySize int, rng *rand.Rand) (RetrievalPoint, error) {
	client := core.NewClient(org, e.PRKey, rng.Int63())
	client.CryptoRand = e.Rand
	server := core.NewServer(e.Index, org, e.DB)
	disk := simio.Default()

	var pt RetrievalPoint
	for i := 0; i < e.Cfg.Trials; i++ {
		genuine := e.randomQuery(rng, querySize)

		userStart := time.Now()
		q, _, err := client.Embellish(genuine)
		userNS := time.Since(userStart).Nanoseconds()
		if err != nil {
			return pt, fmt.Errorf("eval: PR embellish: %w", err)
		}

		serverStart := time.Now()
		resp, st, err := server.Process(q)
		serverNS := time.Since(serverStart).Nanoseconds()
		if err != nil {
			return pt, fmt.Errorf("eval: PR process: %w", err)
		}

		userStart = time.Now()
		if _, err := client.PostFilter(resp, 20); err != nil {
			return pt, fmt.Errorf("eval: PR post-filter: %w", err)
		}
		userNS += time.Since(userStart).Nanoseconds()

		pt.ServerIOms += st.IO.Ms(disk)
		pt.ServerCPUms += float64(serverNS) / 1e6
		pt.TrafficKB += float64(q.Bytes()+resp.Bytes()) / 1024
		pt.UserCPUms += float64(userNS) / 1e6
	}
	pt.scale(1 / float64(e.Cfg.Trials))
	return pt, nil
}

// measurePIR runs the same workload through the PIR baseline.
func (e *Env) measurePIR(org *bucket.Organization, querySize int, rng *rand.Rand) (RetrievalPoint, error) {
	client := pirsearch.NewClient(org, e.PIRKey)
	client.CryptoRand = e.Rand
	server := pirsearch.NewServer(e.Index, org, e.DB)
	disk := simio.Default()

	var pt RetrievalPoint
	for i := 0; i < e.Cfg.Trials; i++ {
		genuine := e.randomQuery(rng, querySize)
		_, st, err := client.Search(server, genuine, 20)
		if err != nil {
			return pt, fmt.Errorf("eval: PIR search: %w", err)
		}
		pt.ServerIOms += st.IO.Ms(disk)
		pt.ServerCPUms += float64(st.ServerNS) / 1e6
		pt.TrafficKB += float64(st.QueryBytes+st.AnswerBytes) / 1024
		pt.UserCPUms += float64(st.ClientNS) / 1e6
	}
	pt.scale(1 / float64(e.Cfg.Trials))
	return pt, nil
}

func (p *RetrievalPoint) scale(f float64) {
	p.ServerIOms *= f
	p.ServerCPUms *= f
	p.TrafficKB *= f
	p.UserCPUms *= f
}

// randomQuery draws querySize distinct searchable terms (the Section 5.2
// workload: "we form queries from the search terms randomly").
func (e *Env) randomQuery(rng *rand.Rand, querySize int) []wordnet.TermID {
	if querySize > len(e.Searchable) {
		querySize = len(e.Searchable)
	}
	seen := make(map[wordnet.TermID]bool, querySize)
	out := make([]wordnet.TermID, 0, querySize)
	for len(out) < querySize {
		t := e.Searchable[rng.Intn(len(e.Searchable))]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// perfFigures assembles the four panels from per-sweep-point
// measurements.
func perfFigures(idPrefix, title, xlabel string, xs []float64, pr, pir []RetrievalPoint) []Figure {
	panel := func(suffix, metric, unit string, get func(RetrievalPoint) float64) Figure {
		f := Figure{
			ID:     idPrefix + suffix,
			Title:  title + " — " + metric,
			XLabel: xlabel,
			YLabel: unit,
		}
		prS := Series{Name: "PR", X: xs}
		pirS := Series{Name: "PIR", X: xs}
		for i := range xs {
			prS.Y = append(prS.Y, get(pr[i]))
			pirS.Y = append(pirS.Y, get(pir[i]))
		}
		f.Series = []Series{pirS, prS}
		return f
	}
	return []Figure{
		panel("a", "Search Engine I/O", "msec", func(p RetrievalPoint) float64 { return p.ServerIOms }),
		panel("b", "Search Engine CPU", "msec", func(p RetrievalPoint) float64 { return p.ServerCPUms }),
		panel("c", "Network Traffic", "KB", func(p RetrievalPoint) float64 { return p.TrafficKB }),
		panel("d", "User CPU", "msec", func(p RetrievalPoint) float64 { return p.UserCPUms }),
	}
}

// Figure7 regenerates the four panels of Figure 7: PR versus PIR as the
// bucket size varies, with the query size fixed (the paper uses 12
// genuine terms). Expected shapes: I/O near-identical; PIR server CPU
// somewhat below PR's; PR traffic roughly an order of magnitude below
// PIR's and sublinear in BktSz; PR user CPU below PIR's.
func (e *Env) Figure7(bktSzs []int) ([]Figure, error) {
	if bktSzs == nil {
		bktSzs = DefaultBktSzSweep()
	}
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 70))
	var xs []float64
	var prPts, pirPts []RetrievalPoint
	for _, bktSz := range bktSzs {
		org, err := e.Organization(bktSz, 0)
		if err != nil {
			return nil, fmt.Errorf("eval: figure 7 at BktSz=%d: %w", bktSz, err)
		}
		pr, err := e.measurePR(org, e.Cfg.QuerySize, rng)
		if err != nil {
			return nil, err
		}
		pir, err := e.measurePIR(org, e.Cfg.QuerySize, rng)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(bktSz))
		prPts = append(prPts, pr)
		pirPts = append(pirPts, pir)
	}
	title := fmt.Sprintf("Performance Impact of BktSz (query size %d)", e.Cfg.QuerySize)
	return perfFigures("7", title, "BktSz", xs, prPts, pirPts), nil
}

// DefaultQuerySizeSweep is the Figure 8 x-axis: 4..40 genuine terms.
func DefaultQuerySizeSweep() []int { return []int{4, 8, 12, 20, 28, 40} }

// Figure8 regenerates the four panels of Figure 8: PR versus PIR as the
// query size varies, with BktSz fixed at 8. Expected shapes: PIR traffic
// and user CPU grow linearly with query size (one protocol run per
// genuine term); PR scales much more gracefully.
func (e *Env) Figure8(querySizes []int) ([]Figure, error) {
	if querySizes == nil {
		querySizes = DefaultQuerySizeSweep()
	}
	const bktSz = 8
	org, err := e.Organization(bktSz, 0)
	if err != nil {
		return nil, fmt.Errorf("eval: figure 8: %w", err)
	}
	rng := rand.New(rand.NewSource(e.Cfg.Seed + 80))
	var xs []float64
	var prPts, pirPts []RetrievalPoint
	for _, qs := range querySizes {
		pr, err := e.measurePR(org, qs, rng)
		if err != nil {
			return nil, err
		}
		pir, err := e.measurePIR(org, qs, rng)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(qs))
		prPts = append(prPts, pr)
		pirPts = append(pirPts, pir)
	}
	return perfFigures("8", "Performance Impact of Query Size (BktSz=8)", "Query Size", xs, prPts, pirPts), nil
}

package eval

import (
	"fmt"

	"embellish/internal/benaloh"
	"embellish/internal/bucket"
	"embellish/internal/corpus"
	"embellish/internal/detrand"
	"embellish/internal/index"
	"embellish/internal/pir"
	"embellish/internal/sequence"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

// Config scales the experimental environment. The paper's setting is
// Synsets=82115 (full WordNet nouns) and NumDocs=172961 (WSJ); the
// defaults here are laptop-scale so every figure regenerates in seconds,
// and cmd/embellish-eval exposes flags to run closer to paper scale.
type Config struct {
	// Synsets sizes the synthetic lexicon.
	Synsets int
	// NumDocs and MeanDocLen size the synthetic corpus.
	NumDocs    int
	MeanDocLen int
	// KeyBits is the modulus size for both cryptosystems. The paper does
	// not state its KeyLen; 512 reproduces 2010-era practice, smaller
	// values keep tests fast.
	KeyBits int
	// BenalohR is the plaintext-space size r = 3^k; scores must stay
	// below it.
	BenalohK int
	// Trials is the number of measurements per sweep point (the paper
	// averages over 1,000 queries).
	Trials int
	// QuerySize is the number of genuine terms per query where fixed
	// (Figure 7 fixes 12).
	QuerySize int
	// Seed drives every random choice.
	Seed int64
}

// DefaultConfig returns the fast laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Synsets:    2500,
		NumDocs:    300,
		MeanDocLen: 80,
		KeyBits:    256,
		BenalohK:   10,
		Trials:     60,
		QuerySize:  12,
		Seed:       1,
	}
}

// Env is a fully built experimental environment: lexicon, corpus, index
// and the Algorithm 1 sequence of searchable terms, from which bucket
// organizations of any (BktSz, SegSz) are derived per sweep point.
type Env struct {
	Cfg        Config
	DB         *wordnet.Database
	Corp       *corpus.Corpus
	Index      *index.Index
	Searchable []wordnet.TermID
	PRKey      *benaloh.PrivateKey
	PIRKey     *pir.ClientKey
	// Rand is the deterministic byte stream used for cryptographic
	// randomness, so experiment runs are reproducible.
	Rand *detrand.Reader
}

// NewEnv builds the environment. The workflow mirrors Section 5.2: build
// the corpus, index it, intersect the index dictionary with the lexicon,
// and keep the searchable terms in Algorithm 1 sequence order.
func NewEnv(cfg Config) (*Env, error) {
	if cfg.Synsets <= 0 || cfg.NumDocs <= 0 {
		return nil, fmt.Errorf("eval: nonpositive scale (%d synsets, %d docs)", cfg.Synsets, cfg.NumDocs)
	}
	e := &Env{Cfg: cfg, Rand: detrand.New(fmt.Sprintf("eval-%d", cfg.Seed))}
	e.DB = wngen.Generate(wngen.ScaledConfig(cfg.Synsets, cfg.Seed+1))

	ccfg := corpus.DefaultConfig()
	ccfg.NumDocs = cfg.NumDocs
	ccfg.MeanDocLen = cfg.MeanDocLen
	ccfg.Seed = cfg.Seed + 2
	e.Corp = corpus.Generate(e.DB, ccfg)

	b := index.NewBuilder()
	for _, d := range e.Corp.Docs {
		b.Add(index.DocID(d.ID), d.Tokens)
	}
	e.Index = b.Build()

	seq := sequence.Run(e.DB)
	for _, t := range seq {
		if _, ok := e.Index.LookupTerm(e.DB.Lemma(t)); ok {
			e.Searchable = append(e.Searchable, t)
		}
	}
	if len(e.Searchable) < 64 {
		return nil, fmt.Errorf("eval: only %d searchable terms; corpus too small", len(e.Searchable))
	}

	var err error
	e.PRKey, err = benaloh.GenerateKey(e.Rand, cfg.KeyBits, benaloh.Pow3(cfg.BenalohK))
	if err != nil {
		return nil, fmt.Errorf("eval: benaloh keygen: %w", err)
	}
	e.PIRKey, err = pir.GenerateKey(e.Rand, cfg.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("eval: pir keygen: %w", err)
	}
	return e, nil
}

// Organization builds the bucket organization for one sweep point.
// segSz <= 0 selects the maximum N/BktSz (the Figure 6-8 setting).
func (e *Env) Organization(bktSz, segSz int) (*bucket.Organization, error) {
	if segSz <= 0 {
		segSz = len(e.Searchable) / bktSz
	}
	return bucket.Generate(e.Searchable, e.DB.Specificity, bktSz, segSz)
}

package eval

import (
	"strings"
	"testing"

	"embellish/internal/privacy"
)

var cachedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if cachedEnv == nil {
		cfg := DefaultConfig()
		cfg.Synsets = 1200
		cfg.NumDocs = 150
		cfg.KeyBits = 192
		cfg.Trials = 6
		cfg.QuerySize = 4
		e, err := NewEnv(cfg)
		if err != nil {
			t.Fatalf("NewEnv: %v", err)
		}
		cachedEnv = e
	}
	return cachedEnv
}

func TestNewEnvErrors(t *testing.T) {
	if _, err := NewEnv(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := DefaultConfig()
	cfg.Synsets = 50
	cfg.NumDocs = 2
	if _, err := NewEnv(cfg); err == nil {
		t.Fatal("tiny world with too few searchable terms accepted")
	}
}

func TestFigure2Shape(t *testing.T) {
	e := env(t)
	f := e.Figure2()
	if f.ID != "2" || len(f.Series) != 1 {
		t.Fatalf("malformed figure: %+v", f)
	}
	s := f.Series[0]
	var total, modeCount, modeSpec float64
	for i, y := range s.Y {
		total += y
		if y > modeCount {
			modeCount, modeSpec = y, s.X[i]
		}
	}
	if total != float64(e.DB.NumTerms()) {
		t.Fatalf("histogram sums to %v, lexicon has %d terms", total, e.DB.NumTerms())
	}
	// Figure 2: mode at specificity 7 holding roughly a third of terms.
	if modeSpec != 7 {
		t.Fatalf("histogram mode at specificity %v, want 7", modeSpec)
	}
	if frac := modeCount / total; frac < 0.2 || frac > 0.45 {
		t.Fatalf("mode holds %.0f%% of terms, want roughly a third", frac*100)
	}
}

func TestFigure5aShape(t *testing.T) {
	e := env(t)
	f, err := e.Figure5a([]int{4, 64, 1024})
	if err != nil {
		t.Fatal(err)
	}
	bucket, ok1 := f.SeriesByName("Bucket")
	random, ok2 := f.SeriesByName("Random")
	if !ok1 || !ok2 {
		t.Fatal("missing series")
	}
	// The paper's claim: Bucket under Random at every sweep point.
	for i := range bucket.Y {
		if bucket.Y[i] >= random.Y[i] {
			t.Fatalf("SegSz=2^%v: bucket %.2f not below random %.2f", bucket.X[i], bucket.Y[i], random.Y[i])
		}
	}
	// And the trend: the largest segment is at most the smallest.
	if bucket.Y[len(bucket.Y)-1] > bucket.Y[0] {
		t.Fatalf("specificity difference grew with SegSz: %v", bucket.Y)
	}
}

func TestFigure5bShape(t *testing.T) {
	e := env(t)
	f, err := e.Figure5b([]int{16, 256})
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := f.SeriesByName("Bucket (Closest)")
	bf, _ := f.SeriesByName("Bucket (Farthest)")
	rf, _ := f.SeriesByName("Random (Farthest)")
	for i := range bc.Y {
		if bc.Y[i] > bf.Y[i] {
			t.Fatalf("closest cover %.2f above farthest %.2f", bc.Y[i], bf.Y[i])
		}
		if bf.Y[i] > rf.Y[i] {
			t.Fatalf("bucket farthest %.2f above random farthest %.2f", bf.Y[i], rf.Y[i])
		}
	}
}

func TestFigure6aShape(t *testing.T) {
	e := env(t)
	f, err := e.Figure6a([]int{2, 8, 16}) // small sweep for speed
	if err != nil {
		t.Fatal(err)
	}
	bucket, _ := f.SeriesByName("Bucket")
	random, _ := f.SeriesByName("Random")
	for i := range bucket.Y {
		if bucket.Y[i] >= random.Y[i] {
			t.Fatalf("BktSz=%v: bucket %.2f not below random %.2f", bucket.X[i], bucket.Y[i], random.Y[i])
		}
	}
	// Small buckets start low (the Figure 6a observation).
	if bucket.Y[0] > bucket.Y[len(bucket.Y)-1] {
		t.Fatalf("specificity difference decreased with BktSz: %v", bucket.Y)
	}
}

func TestFigure6bShape(t *testing.T) {
	e := env(t)
	f, err := e.Figure6b([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("want 4 series, got %d", len(f.Series))
	}
	for _, s := range f.Series {
		for i, y := range s.Y {
			if y < 0 {
				t.Fatalf("series %s point %d negative: %v", s.Name, i, y)
			}
		}
	}
}

func TestFigure7Shapes(t *testing.T) {
	e := env(t)
	figs, err := e.Figure7([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("want 4 panels, got %d", len(figs))
	}
	byID := map[string]Figure{}
	for _, f := range figs {
		byID[f.ID] = f
	}
	// Panel (c): PR traffic must be well below PIR traffic at every
	// point (the paper reports an order of magnitude).
	traffic := byID["7c"]
	pr, _ := traffic.SeriesByName("PR")
	pir, _ := traffic.SeriesByName("PIR")
	for i := range pr.Y {
		if pr.Y[i] >= pir.Y[i] {
			t.Fatalf("BktSz=%v: PR traffic %.2fKB not below PIR %.2fKB", pr.X[i], pr.Y[i], pir.Y[i])
		}
	}
	// Panel (a): the schemes' I/O must be within a small factor (the
	// paper reports "virtually the same").
	io := byID["7a"]
	prIO, _ := io.SeriesByName("PR")
	pirIO, _ := io.SeriesByName("PIR")
	for i := range prIO.Y {
		lo, hi := prIO.Y[i], pirIO.Y[i]
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo <= 0 || hi/lo > 3 {
			t.Fatalf("BktSz=%v: I/O gap PR=%.2f PIR=%.2f too wide", prIO.X[i], prIO.Y[i], pirIO.Y[i])
		}
	}
}

func TestFigure8Shapes(t *testing.T) {
	e := env(t)
	figs, err := e.Figure8([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Figure{}
	for _, f := range figs {
		byID[f.ID] = f
	}
	// PIR traffic grows with query size (one run per genuine term);
	// PR traffic stays below it.
	traffic := byID["8c"]
	pir, _ := traffic.SeriesByName("PIR")
	pr, _ := traffic.SeriesByName("PR")
	if pir.Y[1] <= pir.Y[0] {
		t.Fatalf("PIR traffic did not grow with query size: %v", pir.Y)
	}
	for i := range pr.Y {
		if pr.Y[i] >= pir.Y[i] {
			t.Fatalf("query size %v: PR traffic %.2f not below PIR %.2f", pr.X[i], pr.Y[i], pir.Y[i])
		}
	}
}

func TestRenderContainsData(t *testing.T) {
	e := env(t)
	f := e.Figure2()
	out := f.Render()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "Count") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 5 {
		t.Fatalf("render suspiciously short:\n%s", out)
	}
}

func TestSeriesByNameMissing(t *testing.T) {
	f := Figure{}
	if _, ok := f.SeriesByName("nope"); ok {
		t.Fatal("found a series in an empty figure")
	}
}

func TestFigureRecallShape(t *testing.T) {
	e := env(t)
	f, err := e.FigureRecall([]int{1, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	pr, ok1 := f.SeriesByName("PR")
	canon, ok2 := f.SeriesByName("Canonical")
	if !ok1 || !ok2 {
		t.Fatal("missing series")
	}
	for i := range pr.Y {
		if pr.Y[i] != 1.0 {
			t.Fatalf("PR recall %v, Claim 1 says 1.0", pr.Y[i])
		}
		if canon.Y[i] < 0 || canon.Y[i] > 1 {
			t.Fatalf("canonical recall %v out of [0,1]", canon.Y[i])
		}
	}
	// The baseline must actually lose something somewhere — otherwise
	// the comparison is vacuous.
	lossy := false
	for _, y := range canon.Y {
		if y < 1 {
			lossy = true
		}
	}
	if !lossy {
		t.Fatal("canonical substitution lossless across the sweep; baseline implausible")
	}
}

// TestFigureRiskShape pins the served-privacy bottom line: observed
// risk falls as BktSz (decoy count per genuine term) grows, stays in
// (0, 1], and the semantically coherent Bucket organization reads
// HIGHER risk than the incoherent Random baseline.
func TestFigureRiskShape(t *testing.T) {
	e := env(t)
	f, err := e.FigureRisk([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "risk" || len(f.Series) != 2 {
		t.Fatalf("malformed figure: %+v", f)
	}
	bucketS, ok1 := f.SeriesByName("Bucket")
	randomS, ok2 := f.SeriesByName("Random")
	if !ok1 || !ok2 {
		t.Fatal("figure missing a series")
	}
	for i, y := range bucketS.Y {
		if y <= 0 || y > 1 {
			t.Fatalf("Bucket risk[%d] = %v outside (0, 1]", i, y)
		}
		if i > 0 && y >= bucketS.Y[i-1] {
			t.Fatalf("Bucket risk not decreasing: %v", bucketS.Y)
		}
		if randomS.Y[i] <= 0 || randomS.Y[i] > 1 {
			t.Fatalf("Random risk[%d] = %v outside (0, 1]", i, randomS.Y[i])
		}
		// Coherent buckets should read at least comparably risky to the
		// incoherent Random baseline; at laptop scale the two are close,
		// so assert a loose floor rather than strict ordering.
		if y < randomS.Y[i]*0.5 {
			t.Fatalf("Bucket risk %v far below Random %v at BktSz=%v", y, randomS.Y[i], bucketS.X[i])
		}
	}
	// Widening buckets from 2 to 8 decoys must buy a real risk drop.
	if last, first := bucketS.Y[len(bucketS.Y)-1], bucketS.Y[0]; last > first/2 {
		t.Fatalf("risk fell only %v -> %v across the sweep", first, last)
	}
}

// TestRiskPointMatchesManual recomputes one RiskPoint by hand through
// the auditor to guard the expansion-and-dedup contract the networked
// battery relies on.
func TestRiskPointMatchesManual(t *testing.T) {
	e := env(t)
	org, err := e.Organization(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := privacy.NewAuditor(org, e.DB)
	queries := e.RiskQueries()[:3]
	got, err := RiskPoint(a, queries)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, q := range queries {
		seen := map[int]bool{}
		var buckets []int
		for _, tm := range q {
			b, ok := org.BucketOf(tm)
			if !ok {
				t.Fatal("searchable term outside organization")
			}
			if !seen[b] {
				seen[b] = true
				buckets = append(buckets, b)
			}
		}
		r, err := a.ObservedRisk(buckets)
		if err != nil {
			t.Fatal(err)
		}
		want += r
	}
	want /= float64(len(queries))
	if got != want {
		t.Fatalf("RiskPoint = %v, manual = %v", got, want)
	}
}

// Package eval is the evaluation harness of the reproduction: it
// regenerates, as numeric series, every figure of Section 5 of Pang,
// Ding and Xiao (VLDB 2010) — the term-specificity histogram (Figure 2),
// the bucket-formation privacy metrics (Figures 5 and 6), and the
// PR-vs-PIR retrieval performance comparison (Figures 7 and 8). The
// cmd/embellish-eval binary and the repository's bench_test.go both
// drive this package.
//
// Absolute numbers differ from the paper's (their testbed was a 2006-era
// dual Xeon against the licensed WSJ corpus; ours is a synthetic corpus
// on modern hardware) — the reproduced observable is the shape of each
// curve: who wins, by what factor, and how each metric scales.
package eval

import (
	"fmt"
	"strings"
)

// Series is one labeled curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced figure: an identifier matching the paper's
// numbering, axis labels, and one or more series.
type Figure struct {
	ID     string // e.g. "5a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render formats the figure as an aligned text table, one row per X
// value and one column per series — the textual equivalent of the
// paper's plot.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %18s", s.Name)
	}
	fmt.Fprintf(&b, "   [%s]\n", f.YLabel)
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%-14.6g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "  %18.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, "  %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// series looks up a series by name; nil when absent.
func (f *Figure) series(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// SeriesByName returns the named series, or false when absent.
func (f *Figure) SeriesByName(name string) (Series, bool) {
	if s := f.series(name); s != nil {
		return *s, true
	}
	return Series{}, false
}

package eval

import (
	"fmt"
	"math/rand"

	"embellish/internal/canonical"
)

// FigureRecall quantifies the paper's headline quality claim (abstract
// and Section 2.1): the PR scheme retrieves exactly the plaintext
// result set (recall 1.0 by Claim 1, which the test suite verifies
// end to end), whereas substituting the user query with the closest
// canonical query — the Murugesan-Clifton baseline — loses part of the
// genuine top-k, increasingly so as queries grow beyond the materialized
// combinations. The paper argues this qualitatively; this figure
// measures it: mean top-k recall per query size for both schemes.
func (e *Env) FigureRecall(querySizes []int, k int) (Figure, error) {
	if querySizes == nil {
		querySizes = []int{1, 2, 3, 4, 6, 8}
	}
	if k <= 0 {
		k = 10
	}
	f := Figure{
		ID:     "R",
		Title:  fmt.Sprintf("Top-%d Recall of the Result Set (PR vs canonical-query substitution)", k),
		XLabel: "Query Size",
		YLabel: "mean recall",
	}
	cfg := canonical.DefaultConfig()
	cfg.Factors = 16
	cfg.Iters = 20
	scheme, err := canonical.Build(e.Index, cfg)
	if err != nil {
		return f, fmt.Errorf("eval: building canonical baseline: %w", err)
	}

	rng := rand.New(rand.NewSource(e.Cfg.Seed + 90))
	pr := Series{Name: "PR"}
	canon := Series{Name: "Canonical"}
	for _, qs := range querySizes {
		var lossSum float64
		measured := 0
		for trial := 0; trial < e.Cfg.Trials; trial++ {
			qt := make([]int, 0, qs)
			seen := map[int]bool{}
			for len(qt) < qs {
				ti := rng.Intn(e.Index.NumTerms())
				if !seen[ti] {
					seen[ti] = true
					qt = append(qt, ti)
				}
			}
			loss, err := scheme.RecallLoss(e.Index, qt, k)
			if err != nil {
				return f, err
			}
			lossSum += loss
			measured++
		}
		x := float64(qs)
		pr.X, pr.Y = append(pr.X, x), append(pr.Y, 1.0) // Claim 1: lossless
		canon.X = append(canon.X, x)
		canon.Y = append(canon.Y, 1.0-lossSum/float64(measured))
	}
	f.Series = []Series{pr, canon}
	return f, nil
}

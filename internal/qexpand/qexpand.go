// Package qexpand implements the two query-expansion families the paper
// cites as sources of long queries (Section 1 and 2.1): concept-based
// thesaurus expansion (Qiu and Frei [23]) driven by the lexical
// database's relations, and pseudo-relevance feedback from local
// document analysis (Xu and Croft [28]). Expanded queries reach dozens
// of terms, which is precisely the regime where canonical-query schemes
// run out of materialized combinations and the PIR baseline pays one
// protocol run per term — the paper's argument for per-term decoys.
package qexpand

import (
	"errors"
	"math"
	"sort"

	"embellish/internal/index"
	"embellish/internal/wordnet"
)

// Thesaurus expands a query with lexically related terms: for each query
// term, the terms of its synsets' related synsets, weighted by relation
// closeness (Algorithm 1's order). It is corpus-independent.
type Thesaurus struct {
	DB *wordnet.Database
	// MaxPerTerm caps the expansion terms contributed per query term.
	MaxPerTerm int
}

// NewThesaurus builds a thesaurus expander with the default cap of 4
// expansion terms per query term.
func NewThesaurus(db *wordnet.Database) *Thesaurus {
	return &Thesaurus{DB: db, MaxPerTerm: 4}
}

// Expand returns the query terms followed by the expansion terms, each
// appearing once, preserving query-term order.
func (th *Thesaurus) Expand(query []wordnet.TermID) []wordnet.TermID {
	seen := make(map[wordnet.TermID]bool, len(query)*3)
	out := make([]wordnet.TermID, 0, len(query)*3)
	for _, t := range query {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range query {
		added := 0
		for _, ss := range th.DB.SynsetsOf(t) {
			// Synonyms first: terms sharing the synset.
			for _, syn := range th.DB.Synset(ss).Terms {
				if added >= th.MaxPerTerm {
					break
				}
				if !seen[syn] {
					seen[syn] = true
					out = append(out, syn)
					added++
				}
			}
			// Then related synsets in closeness order.
			for _, rel := range th.DB.RelatedInOrder(ss) {
				if added >= th.MaxPerTerm {
					break
				}
				for _, rt := range th.DB.Synset(rel).Terms {
					if added >= th.MaxPerTerm {
						break
					}
					if !seen[rt] {
						seen[rt] = true
						out = append(out, rt)
						added++
					}
				}
			}
			if added >= th.MaxPerTerm {
				break
			}
		}
	}
	return out
}

// Feedback implements pseudo-relevance feedback: run the query, take the
// top FeedbackDocs documents as (pseudo) relevant, and add the
// NumTerms terms with the highest Rocchio-style weight
// Σ_{d∈R} impact(d,t) · idf(t), excluding the original terms.
type Feedback struct {
	Index *index.Index
	// FeedbackDocs is |R|, the pseudo-relevant set size (default 5).
	FeedbackDocs int
	// NumTerms is the number of expansion terms to add (default 10).
	NumTerms int
}

// NewFeedback builds a feedback expander with the classic 5-document,
// 10-term configuration.
func NewFeedback(ix *index.Index) *Feedback {
	return &Feedback{Index: ix, FeedbackDocs: 5, NumTerms: 10}
}

// Expand returns the query term numbers followed by the top feedback
// terms. The input and output are index term numbers (not lexicon ids):
// feedback is inherently corpus-side.
func (fb *Feedback) Expand(queryTerms []int) ([]int, error) {
	if len(queryTerms) == 0 {
		return nil, errors.New("qexpand: empty query")
	}
	top := fb.Index.TopK(queryTerms, fb.FeedbackDocs)
	if len(top) == 0 {
		return queryTerms, nil
	}
	rel := make(map[index.DocID]bool, len(top))
	for _, r := range top {
		rel[r.Doc] = true
	}
	inQuery := make(map[int]bool, len(queryTerms))
	for _, t := range queryTerms {
		inQuery[t] = true
	}

	// Score every term by its mass in the pseudo-relevant set.
	type cand struct {
		term   int
		weight float64
	}
	var cands []cand
	n := float64(fb.Index.NumDocs)
	for ti := 0; ti < fb.Index.NumTerms(); ti++ {
		if inQuery[ti] {
			continue
		}
		df := fb.Index.DocFreq(ti)
		if df == 0 {
			continue
		}
		idf := math.Log(1 + n/float64(df))
		var w float64
		hit := false
		for _, p := range fb.Index.List(ti) {
			if rel[p.Doc] {
				w += p.Impact * idf
				hit = true
			}
		}
		if hit {
			cands = append(cands, cand{term: ti, weight: w})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].weight != cands[j].weight {
			return cands[i].weight > cands[j].weight
		}
		return cands[i].term < cands[j].term
	})
	out := append([]int(nil), queryTerms...)
	for i := 0; i < len(cands) && i < fb.NumTerms; i++ {
		out = append(out, cands[i].term)
	}
	return out, nil
}

package qexpand

import (
	"testing"

	"embellish/internal/index"
	"embellish/internal/testenv"
	"embellish/internal/wordnet"
)

func TestThesaurusExpandsWithNeighbors(t *testing.T) {
	db := wordnet.MiniLexicon()
	th := NewThesaurus(db)
	osteo, _ := db.Lookup("osteosarcoma")
	out := th.Expand([]wordnet.TermID{osteo})
	if len(out) < 2 {
		t.Fatalf("no expansion: %v", out)
	}
	if out[0] != osteo {
		t.Fatal("original term not first")
	}
	// The synonym 'osteogenic sarcoma' shares the synset and must be
	// among the expansions.
	syn, _ := db.Lookup("osteogenic sarcoma")
	found := false
	for _, tm := range out {
		if tm == syn {
			found = true
		}
	}
	if !found {
		t.Fatalf("synonym missing from expansion: %v", lemmas(db, out))
	}
	if len(out) > 1+th.MaxPerTerm {
		t.Fatalf("cap exceeded: %d terms", len(out))
	}
}

func TestThesaurusNoDuplicates(t *testing.T) {
	db := wordnet.MiniLexicon()
	th := NewThesaurus(db)
	a, _ := db.Lookup("hypercapnia")
	b, _ := db.Lookup("hypercarbia") // same synset as hypercapnia
	out := th.Expand([]wordnet.TermID{a, b, a})
	seen := map[wordnet.TermID]bool{}
	for _, tm := range out {
		if seen[tm] {
			t.Fatalf("duplicate %q in expansion", db.Lemma(tm))
		}
		seen[tm] = true
	}
}

func TestThesaurusEmptyQuery(t *testing.T) {
	th := NewThesaurus(wordnet.MiniLexicon())
	if out := th.Expand(nil); len(out) != 0 {
		t.Fatalf("empty query expanded to %d terms", len(out))
	}
}

func lemmas(db *wordnet.Database, ts []wordnet.TermID) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = db.Lemma(t)
	}
	return out
}

func feedbackWorld(t *testing.T) *testenv.World {
	t.Helper()
	return testenv.BuildWorld(testenv.Options{Seed: 171, BktSz: 4})
}

func TestFeedbackAddsCooccurringTerms(t *testing.T) {
	w := feedbackWorld(t)
	fb := NewFeedback(w.Index)
	q := []int{0, 1}
	out, err := fb.Expand(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) <= len(q) {
		t.Fatalf("no expansion: %v", out)
	}
	if len(out) > len(q)+fb.NumTerms {
		t.Fatalf("cap exceeded: %d", len(out))
	}
	// Original terms first and never duplicated.
	if out[0] != 0 || out[1] != 1 {
		t.Fatal("original terms not preserved")
	}
	seen := map[int]bool{}
	for _, tm := range out {
		if seen[tm] {
			t.Fatalf("duplicate term %d", tm)
		}
		seen[tm] = true
	}
	// Every expansion term must occur in at least one pseudo-relevant
	// document.
	top := w.Index.TopK(q, fb.FeedbackDocs)
	rel := map[index.DocID]bool{}
	for _, r := range top {
		rel[r.Doc] = true
	}
	for _, tm := range out[len(q):] {
		hit := false
		for _, p := range w.Index.List(tm) {
			if rel[p.Doc] {
				hit = true
			}
		}
		if !hit {
			t.Fatalf("expansion term %d not in any feedback doc", tm)
		}
	}
}

func TestFeedbackEmptyQuery(t *testing.T) {
	w := feedbackWorld(t)
	fb := NewFeedback(w.Index)
	if _, err := fb.Expand(nil); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestFeedbackDeterministic(t *testing.T) {
	w := feedbackWorld(t)
	fb := NewFeedback(w.Index)
	a, err := fb.Expand([]int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fb.Expand([]int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic expansion size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic expansion")
		}
	}
}

func TestFeedbackUnknownTermsOnly(t *testing.T) {
	w := feedbackWorld(t)
	fb := NewFeedback(w.Index)
	// A term number with an empty list yields no feedback docs; the
	// query passes through unchanged.
	out, err := fb.Expand([]int{w.Index.NumTerms() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("query lost")
	}
}

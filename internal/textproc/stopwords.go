package textproc

import "strings"

// defaultStopwordList is the classic English stopword list ("common words
// like 'the' and 'a' that are not useful for differentiating between
// documents", Section 5.2), close to Lucene's StandardAnalyzer defaults
// plus the usual SMART additions.
const defaultStopwordList = `a an and are as at be but by for if in into is
it no not of on or such that the their then there these they this to was
will with he she his her him its from we you your i me my our us about
above after again all am any been before being below between both did do
does doing down during each few further had has have having here how more
most other out over own same so some than too under until up very what
when where which while who whom why were would could should shall may
might must can cannot`

// DefaultStopwords returns a fresh stopword set. Callers may add or
// remove entries without affecting other users.
func DefaultStopwords() map[string]bool {
	m := make(map[string]bool, 128)
	for _, w := range strings.Fields(defaultStopwordList) {
		m[w] = true
	}
	return m
}

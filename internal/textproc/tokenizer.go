// Package textproc supplies the text-analysis substrate that the paper
// obtains from Lucene (Section 5.2): tokenization, stopword removal (the
// paper's configuration removes stopwords but does not stem; a Porter
// stemmer is nonetheless provided as an option), and greedy longest-match
// recognition of multi-word dictionary terms such as 'abu sayyaf' or
// 'residual nitrogen time', which WordNet treats as single lemmas.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lowercases the input and splits it into maximal runs of
// letters, digits and internal apostrophes/hyphens ("fool's gold" yields
// the tokens "fool's" and "gold"; "yellow-breasted" stays one token).
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, trimPunct(b.String()))
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case (r == '\'' || r == '-') && b.Len() > 0:
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	// trimPunct may produce empty strings for pure-punctuation runs.
	out := tokens[:0]
	for _, t := range tokens {
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// trimPunct removes trailing apostrophes/hyphens left by the scanner.
func trimPunct(s string) string {
	return strings.TrimRight(s, "'-")
}

// Analyzer is a configurable pipeline: tokenize, drop stopwords,
// optionally stem, and optionally fuse multi-word dictionary terms.
type Analyzer struct {
	// Stopwords maps each stopword to true. Nil disables removal.
	Stopwords map[string]bool
	// Stem applies Porter stemming when true. The paper's setup does not
	// stem ("performs stopword removal but not stemming").
	Stem bool
	// Matcher, when non-nil, fuses runs of tokens that form a known
	// multi-word dictionary term into a single token with spaces.
	Matcher *DictionaryMatcher
}

// NewAnalyzer returns the paper's configuration: standard English
// stopwords, no stemming, no compound matching.
func NewAnalyzer() *Analyzer {
	return &Analyzer{Stopwords: DefaultStopwords()}
}

// Analyze runs the pipeline over raw text.
func (a *Analyzer) Analyze(text string) []string {
	return a.Process(Tokenize(text))
}

// Process runs the pipeline over pre-split tokens.
func (a *Analyzer) Process(tokens []string) []string {
	if a.Matcher != nil {
		tokens = a.Matcher.Fuse(tokens)
	}
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if a.Stopwords != nil && a.Stopwords[t] {
			continue
		}
		if a.Stem && !strings.Contains(t, " ") {
			t = PorterStem(t)
		}
		out = append(out, t)
	}
	return out
}

// DictionaryMatcher recognizes multi-word dictionary terms in a token
// stream by greedy longest match.
type DictionaryMatcher struct {
	// firstWord maps the first word of every known compound to the list
	// of full compounds starting with it, longest first.
	compounds map[string][][]string
	maxLen    int
}

// NewDictionaryMatcher indexes the multi-word lemmas among terms.
func NewDictionaryMatcher(terms []string) *DictionaryMatcher {
	m := &DictionaryMatcher{compounds: make(map[string][][]string)}
	for _, t := range terms {
		if !strings.Contains(t, " ") {
			continue
		}
		words := strings.Fields(t)
		if len(words) > m.maxLen {
			m.maxLen = len(words)
		}
		m.compounds[words[0]] = append(m.compounds[words[0]], words)
	}
	// Longest first, so greedy matching prefers 'family amaranthaceae'
	// over a hypothetical shorter compound with the same head.
	for k := range m.compounds {
		list := m.compounds[k]
		for i := 1; i < len(list); i++ {
			for j := i; j > 0 && len(list[j]) > len(list[j-1]); j-- {
				list[j], list[j-1] = list[j-1], list[j]
			}
		}
	}
	return m
}

// Fuse replaces maximal runs of tokens matching a known compound with the
// single space-joined lemma.
func (m *DictionaryMatcher) Fuse(tokens []string) []string {
	if len(m.compounds) == 0 {
		return tokens
	}
	out := make([]string, 0, len(tokens))
	for i := 0; i < len(tokens); {
		matched := false
		for _, words := range m.compounds[tokens[i]] {
			if i+len(words) > len(tokens) {
				continue
			}
			ok := true
			for j, w := range words {
				if tokens[i+j] != w {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, strings.Join(words, " "))
				i += len(words)
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, tokens[i])
			i++
		}
	}
	return out
}

package textproc

// PorterStem reduces an English word to its stem with the classic Porter
// (1980) algorithm. The paper's Lucene configuration performs "stopword
// removal but not stemming", so stemming is off by default in Analyzer;
// it is provided for completeness, since impact-ordered indexes are
// routinely built over stemmed vocabularies (Zobel & Moffat, reference
// [29] of the paper).
func PorterStem(word string) string {
	if len(word) <= 2 {
		return word
	}
	s := &stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant per Porter's definition:
// Y is a consonant only when preceded by a vowel... precisely, 'y' is a
// consonant at position 0 or when the previous letter is a vowel is false.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:end].
func (s *stemmer) measure(end int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < end && s.isConsonant(i) {
		i++
	}
	for i < end {
		// Vowel run.
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			break
		}
		m++
		// Consonant run.
		for i < end && s.isConsonant(i) {
			i++
		}
	}
	return m
}

func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b[:end] ends with the same consonant
// twice.
func (s *stemmer) endsDoubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	return s.b[end-1] == s.b[end-2] && s.isConsonant(end-1)
}

// endsCVC reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x or y.
func (s *stemmer) endsCVC(end int) bool {
	if end < 3 {
		return false
	}
	if !s.isConsonant(end-3) || s.isConsonant(end-2) || !s.isConsonant(end-1) {
		return false
	}
	c := s.b[end-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func (s *stemmer) hasSuffix(suf string) bool {
	if len(s.b) < len(suf) {
		return false
	}
	return string(s.b[len(s.b)-len(suf):]) == suf
}

func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.b = s.b[:len(s.b)-2]
	case s.hasSuffix("ies"):
		s.b = s.b[:len(s.b)-2]
	case s.hasSuffix("ss"):
		// keep
	case s.hasSuffix("s"):
		s.b = s.b[:len(s.b)-1]
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(len(s.b)-3) > 0 {
			s.b = s.b[:len(s.b)-1]
		}
		return
	}
	cleanup := false
	if s.hasSuffix("ed") && s.hasVowel(len(s.b)-2) {
		s.b = s.b[:len(s.b)-2]
		cleanup = true
	} else if s.hasSuffix("ing") && s.hasVowel(len(s.b)-3) {
		s.b = s.b[:len(s.b)-3]
		cleanup = true
	}
	if !cleanup {
		return
	}
	switch {
	case s.hasSuffix("at"), s.hasSuffix("bl"), s.hasSuffix("iz"):
		s.b = append(s.b, 'e')
	case s.endsDoubleConsonant(len(s.b)):
		c := s.b[len(s.b)-1]
		if c != 'l' && c != 's' && c != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.endsCVC(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(len(s.b)-1) {
		s.b[len(s.b)-1] = 'i'
	}
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

func (s *stemmer) step2() {
	for _, r := range step2Rules {
		if s.hasSuffix(r.old) {
			if s.measure(len(s.b)-len(r.old)) > 0 {
				s.b = append(s.b[:len(s.b)-len(r.old)], r.new...)
			}
			return
		}
	}
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func (s *stemmer) step3() {
	for _, r := range step3Rules {
		if s.hasSuffix(r.old) {
			if s.measure(len(s.b)-len(r.old)) > 0 {
				s.b = append(s.b[:len(s.b)-len(r.old)], r.new...)
			}
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (s *stemmer) step4() {
	for _, suf := range step4Suffixes {
		if !s.hasSuffix(suf) {
			continue
		}
		stem := len(s.b) - len(suf)
		if suf == "ion" {
			// Only strip -ion after s or t.
			if stem == 0 || (s.b[stem-1] != 's' && s.b[stem-1] != 't') {
				return
			}
		}
		if s.measure(stem) > 1 {
			s.b = s.b[:stem]
		}
		return
	}
}

func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	stem := len(s.b) - 1
	m := s.measure(stem)
	if m > 1 || (m == 1 && !s.endsCVC(stem)) {
		s.b = s.b[:stem]
	}
}

func (s *stemmer) step5b() {
	n := len(s.b)
	if n > 1 && s.b[n-1] == 'l' && s.endsDoubleConsonant(n) && s.measure(n) > 1 {
		s.b = s.b[:n-1]
	}
}

package textproc

import (
	"reflect"
	"testing"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Osteosarcoma Therapy, accelerated!")
	want := []string{"osteosarcoma", "therapy", "accelerated"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeApostropheAndHyphen(t *testing.T) {
	got := Tokenize("fool's gold; a yellow-breasted bunting")
	want := []string{"fool's", "gold", "a", "yellow-breasted", "bunting"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeTrailingPunct(t *testing.T) {
	got := Tokenize("end- of' line")
	want := []string{"end", "of", "line"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeEmptyAndSymbols(t *testing.T) {
	if got := Tokenize("  ... !!! "); len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestTokenizeDigits(t *testing.T) {
	got := Tokenize("wsj 1987 q3")
	want := []string{"wsj", "1987", "q3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestStopwordRemoval(t *testing.T) {
	a := NewAnalyzer()
	got := a.Analyze("the radiation of the therapy is in a hospital")
	want := []string{"radiation", "therapy", "hospital"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAnalyzerNoStemByDefault(t *testing.T) {
	// The paper's setup performs "stopword removal but not stemming".
	a := NewAnalyzer()
	got := a.Analyze("running runners")
	want := []string{"running", "runners"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAnalyzerStemOption(t *testing.T) {
	a := NewAnalyzer()
	a.Stem = true
	got := a.Analyze("running quickly connected")
	want := []string{"run", "quickli", "connect"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestPorterStemVectors(t *testing.T) {
	// Canonical vectors from Porter's paper.
	vectors := map[string]string{
		"caresses":   "caress",
		"ponies":     "poni",
		"ties":       "ti",
		"caress":     "caress",
		"cats":       "cat",
		"feed":       "feed",
		"agreed":     "agre",
		"plastered":  "plaster",
		"bled":       "bled",
		"motoring":   "motor",
		"sing":       "sing",
		"conflated":  "conflat",
		"troubled":   "troubl",
		"sized":      "size",
		"hopping":    "hop",
		"tanned":     "tan",
		"falling":    "fall",
		"hissing":    "hiss",
		"fizzed":     "fizz",
		"failing":    "fail",
		"filing":     "file",
		"happy":      "happi",
		"sky":        "sky",
		"relational": "relat",
		"conditional": "condit",
		"rational":    "ration",
		"valenci":     "valenc",
		"digitizer":   "digit",
		"operator":    "oper",
		"feudalism":   "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"formaliti":    "formal",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
	}
	for in, want := range vectors {
		if got := PorterStem(in); got != want {
			t.Errorf("PorterStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterStemShortWords(t *testing.T) {
	for _, w := range []string{"a", "is", "be"} {
		if got := PorterStem(w); got != w {
			t.Errorf("PorterStem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestDictionaryMatcherFuse(t *testing.T) {
	m := NewDictionaryMatcher([]string{
		"abu sayyaf", "residual nitrogen time", "water", "abu sayyaf group",
	})
	got := m.Fuse([]string{"the", "abu", "sayyaf", "group", "claimed", "residual", "nitrogen", "time"})
	want := []string{"the", "abu sayyaf group", "claimed", "residual nitrogen time"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDictionaryMatcherLongestFirst(t *testing.T) {
	m := NewDictionaryMatcher([]string{"radiation therapy", "accelerated radiation therapy"})
	got := m.Fuse([]string{"accelerated", "radiation", "therapy"})
	want := []string{"accelerated radiation therapy"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDictionaryMatcherPartialNoMatch(t *testing.T) {
	m := NewDictionaryMatcher([]string{"abu sayyaf"})
	got := m.Fuse([]string{"abu", "dhabi"})
	want := []string{"abu", "dhabi"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAnalyzerWithMatcher(t *testing.T) {
	a := NewAnalyzer()
	a.Matcher = NewDictionaryMatcher([]string{"sign of the zodiac"})
	got := a.Analyze("the sign of the zodiac is rising")
	// The compound fuses before stopword removal, so the inner 'of the'
	// survives as part of the lemma.
	want := []string{"sign of the zodiac", "rising"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDefaultStopwordsIndependentCopies(t *testing.T) {
	a := DefaultStopwords()
	b := DefaultStopwords()
	a["zebra"] = true
	if b["zebra"] {
		t.Fatal("stopword sets share storage")
	}
	if !a["the"] || !a["a"] {
		t.Fatal("canonical stopwords missing")
	}
}

// Package bucket implements Algorithm 2 of Pang, Ding and Xiao (VLDB
// 2010): forming fixed-size buckets of decoy terms from the sequenced
// dictionary, and the Organization type that maps every dictionary term to
// its host bucket at query time.
//
// The sequenced dictionary is split into #Seg = N/SegSz segments; within
// each segment terms are stably sorted by decreasing specificity (stable,
// so whole synsets of equally-specific terms stay clustered — the property
// the paper discovers keeps inter-bucket distances tight regardless of
// SegSz). Buckets then take one term from the same slot of BktSz segments
// that lie N/(BktSz·SegSz) segment-strides apart, maximizing semantic
// diversity within a bucket while equalizing the specificity spread.
package bucket

import (
	"errors"
	"fmt"
	"sort"

	"embellish/internal/wordnet"
)

// Organization is a complete bucket organization over a dictionary. It is
// immutable after Generate and safe for concurrent use.
type Organization struct {
	BktSz int
	SegSz int
	// buckets[b] lists the terms of bucket b, in slot order. All buckets
	// have exactly BktSz terms except possibly the last, which absorbs
	// the remainder when the dictionary size is not divisible.
	buckets [][]wordnet.TermID
	// slotOf[t] = bucket index * maxSlots + slot, or -1 when the term is
	// not part of the organization.
	bucketOf []int32
	slotIn   []int16
}

// NumBuckets reports the number of buckets.
func (o *Organization) NumBuckets() int { return len(o.buckets) }

// Bucket returns the terms of bucket b in slot order. The returned slice
// is owned by the Organization and must not be modified.
func (o *Organization) Bucket(b int) []wordnet.TermID { return o.buckets[b] }

// BucketOf returns the bucket hosting term t. The second result is false
// when t is not part of the organization (e.g. a term absent from the
// searchable dictionary).
func (o *Organization) BucketOf(t wordnet.TermID) (int, bool) {
	if int(t) >= len(o.bucketOf) || o.bucketOf[t] < 0 {
		return 0, false
	}
	return int(o.bucketOf[t]), true
}

// SlotOf returns the slot index of term t within its bucket.
func (o *Organization) SlotOf(t wordnet.TermID) (int, bool) {
	if int(t) >= len(o.bucketOf) || o.bucketOf[t] < 0 {
		return 0, false
	}
	return int(o.slotIn[t]), true
}

// Terms returns the total number of terms across all buckets.
func (o *Organization) Terms() int {
	n := 0
	for _, b := range o.buckets {
		n += len(b)
	}
	return n
}

// Specificity is the function used to order terms within a segment;
// usually (*wordnet.Database).Specificity.
type Specificity func(wordnet.TermID) int

// Generate runs Algorithm 2 (GenerateBuckets) over the flattened term
// sequence. BktSz must satisfy 1 <= BktSz <= N/2 and SegSz must satisfy
// 1 <= SegSz <= N/BktSz (Section 3.4). When N is not divisible by
// BktSz*SegSz, the trailing remainder is bucketed with the same procedure
// using a reduced segment size, and any final fragment smaller than BktSz
// joins the last bucket.
func Generate(seqTerms []wordnet.TermID, spec Specificity, bktSz, segSz int) (*Organization, error) {
	n := len(seqTerms)
	if n == 0 {
		return nil, errors.New("bucket: empty term sequence")
	}
	if bktSz < 1 || bktSz > n/2 && n > 1 {
		return nil, fmt.Errorf("bucket: BktSz %d out of range [1, N/2] for N=%d", bktSz, n)
	}
	if segSz < 1 || segSz > n/bktSz {
		return nil, fmt.Errorf("bucket: SegSz %d out of range [1, N/BktSz] for N=%d, BktSz=%d", segSz, n, bktSz)
	}

	maxTerm := wordnet.TermID(0)
	for _, t := range seqTerms {
		if t > maxTerm {
			maxTerm = t
		}
	}
	o := &Organization{
		BktSz:    bktSz,
		SegSz:    segSz,
		bucketOf: make([]int32, maxTerm+1),
		slotIn:   make([]int16, maxTerm+1),
	}
	for i := range o.bucketOf {
		o.bucketOf[i] = -1
	}

	block := bktSz * segSz
	usable := (n / block) * block
	o.generateRegion(seqTerms[:usable], spec, segSz)

	// Remainder: rerun the same procedure with the largest segment size
	// that divides the leftover into BktSz segments.
	if rest := seqTerms[usable:]; len(rest) > 0 {
		if len(rest) >= bktSz {
			restSeg := len(rest) / bktSz
			used := restSeg * bktSz
			o.generateRegion(rest[:used], spec, restSeg)
			rest = rest[used:]
		}
		if len(rest) > 0 {
			// Fewer than BktSz terms left: absorb into the last bucket.
			last := len(o.buckets) - 1
			if last < 0 {
				o.buckets = append(o.buckets, nil)
				last = 0
			}
			for _, t := range rest {
				o.place(t, last)
			}
		}
	}
	return o, nil
}

// generateRegion applies lines 3-13 of Algorithm 2 to a region whose
// length is an exact multiple of BktSz*segSz.
func (o *Organization) generateRegion(region []wordnet.TermID, spec Specificity, segSz int) {
	bktSz := o.BktSz
	n := len(region)
	if n == 0 {
		return
	}
	numSeg := n / segSz
	groups := numSeg / bktSz // = N/(BktSz*SegSz), the segment stride

	// Line 4-5: split into segments and sort each by decreasing
	// specificity. The sort must be stable: ties retain sequence order,
	// which keeps whole synsets clustered (the effect discussed with
	// Figure 5(b)).
	segs := make([][]wordnet.TermID, numSeg)
	for i := range segs {
		seg := append([]wordnet.TermID(nil), region[i*segSz:(i+1)*segSz]...)
		sort.SliceStable(seg, func(a, b int) bool {
			return spec(seg[a]) > spec(seg[b])
		})
		segs[i] = seg
	}

	// Lines 6-13: for each group i, register segments
	// S_{(j-1)*groups+i}, j=1..BktSz, then emit segSz buckets, the j-th
	// bucket taking the term at position j of each active segment.
	for i := 0; i < groups; i++ {
		for j := 0; j < segSz; j++ {
			b := len(o.buckets)
			o.buckets = append(o.buckets, make([]wordnet.TermID, 0, bktSz))
			for k := 0; k < bktSz; k++ {
				o.place(segs[k*groups+i][j], b)
			}
		}
	}
}

func (o *Organization) place(t wordnet.TermID, b int) {
	o.buckets[b] = append(o.buckets[b], t)
	o.bucketOf[t] = int32(b)
	o.slotIn[t] = int16(len(o.buckets[b]) - 1)
}

// BucketsFor returns the distinct bucket indices hosting the given terms,
// in first-appearance order. Unknown terms are skipped.
func (o *Organization) BucketsFor(terms []wordnet.TermID) []int {
	seen := make(map[int]bool, len(terms))
	var out []int
	for _, t := range terms {
		if b, ok := o.BucketOf(t); ok && !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// SpecSpread returns the difference between the highest and lowest
// specificity values within bucket b — the "intra-bucket specificity
// difference" metric of Section 5.1.
func (o *Organization) SpecSpread(b int, spec Specificity) int {
	lo, hi := 0, 0
	for i, t := range o.buckets[b] {
		s := spec(t)
		if i == 0 {
			lo, hi = s, s
			continue
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return hi - lo
}

package bucket

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"embellish/internal/vbyte"
	"embellish/internal/wordnet"
)

// On-disk format: magic "EBKT" | version u8 | BktSz, SegSz | bucket
// count | per bucket term ids | crc32(payload). The term→bucket and
// term→slot maps are derived, so only the bucket contents persist.
// Persisting the organization matters operationally: the client and
// the server must agree on the exact same organization (it is public,
// shared knowledge in the protocol), so deployments build it once and
// ship the file to both sides.

const (
	bktMagic      = "EBKT"
	bktVersion    = 1
	maxReasonable = 1 << 31
)

// WriteTo serializes the organization. It implements io.WriterTo.
func (o *Organization) WriteTo(w io.Writer) (int64, error) {
	var payload []byte
	payload = append(payload, bktMagic...)
	payload = append(payload, bktVersion)
	payload = vbyte.Append(payload, uint64(o.BktSz))
	payload = vbyte.Append(payload, uint64(o.SegSz))
	payload = vbyte.Append(payload, uint64(len(o.buckets)))
	for _, b := range o.buckets {
		payload = vbyte.Append(payload, uint64(len(b)))
		for _, t := range b {
			payload = vbyte.Append(payload, uint64(t))
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	n, err := w.Write(payload)
	total := int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(tail[:])
	return total + int64(n), err
}

// ReadOrganization deserializes an organization written by WriteTo,
// verifying the checksum and the one-bucket-per-term invariant.
func ReadOrganization(r io.Reader) (*Organization, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("bucket: reading file: %w", err)
	}
	if len(data) < len(bktMagic)+1+4 {
		return nil, errors.New("bucket: file too short")
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("bucket: checksum mismatch; file corrupt")
	}
	br := bufio.NewReader(bytes.NewReader(payload))

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if string(magic[:]) != bktMagic {
		return nil, errors.New("bucket: bad magic; not an organization file")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != bktVersion {
		return nil, fmt.Errorf("bucket: unsupported version %d", ver)
	}

	bktSz, err := readUvarint(br)
	if err != nil || bktSz == 0 || bktSz > maxReasonable {
		return nil, fmt.Errorf("bucket: BktSz: %w", orImplausible(err))
	}
	segSz, err := readUvarint(br)
	if err != nil || segSz == 0 || segSz > maxReasonable {
		return nil, fmt.Errorf("bucket: SegSz: %w", orImplausible(err))
	}
	nBuckets, err := readUvarint(br)
	if err != nil || nBuckets > maxReasonable {
		return nil, fmt.Errorf("bucket: bucket count: %w", orImplausible(err))
	}

	o := &Organization{BktSz: int(bktSz), SegSz: int(segSz)}
	o.buckets = make([][]wordnet.TermID, nBuckets)
	maxTerm := wordnet.TermID(-1)
	for b := range o.buckets {
		n, err := readUvarint(br)
		if err != nil || n > maxReasonable {
			return nil, fmt.Errorf("bucket: bucket %d size: %w", b, orImplausible(err))
		}
		terms := make([]wordnet.TermID, n)
		for i := range terms {
			t, err := readUvarint(br)
			if err != nil || t > maxReasonable {
				return nil, fmt.Errorf("bucket: bucket %d term %d: %w", b, i, orImplausible(err))
			}
			terms[i] = wordnet.TermID(t)
			if terms[i] > maxTerm {
				maxTerm = terms[i]
			}
		}
		o.buckets[b] = terms
	}

	// Rebuild the derived maps, enforcing the partition invariant.
	o.bucketOf = make([]int32, maxTerm+1)
	o.slotIn = make([]int16, maxTerm+1)
	for i := range o.bucketOf {
		o.bucketOf[i] = -1
	}
	for b, terms := range o.buckets {
		for slot, t := range terms {
			if o.bucketOf[t] != -1 {
				return nil, fmt.Errorf("bucket: term %d appears in buckets %d and %d", t, o.bucketOf[t], b)
			}
			o.bucketOf[t] = int32(b)
			o.slotIn[t] = int16(slot)
		}
	}
	return o, nil
}

func orImplausible(err error) error {
	if err != nil {
		return err
	}
	return errors.New("implausible count")
}

func readUvarint(br io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if i == vbyte.MaxLen {
			return 0, errors.New("overlong varint")
		}
		if b&0x80 != 0 {
			return v | uint64(b&0x7f)<<shift, nil
		}
		v |= uint64(b) << shift
		shift += 7
		if shift >= 64 {
			return 0, errors.New("varint overflow")
		}
	}
}

package bucket

import (
	"math/rand"
	"testing"
	"testing/quick"

	"embellish/internal/sequence"
	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

// constSpec gives every term the same specificity (makes the in-segment
// sort a stable no-op).
func constSpec(wordnet.TermID) int { return 0 }

func seqOfLen(n int) []wordnet.TermID {
	s := make([]wordnet.TermID, n)
	for i := range s {
		s[i] = wordnet.TermID(i)
	}
	return s
}

func TestGenerateFigure3Layout(t *testing.T) {
	// Figure 3: N=1000, BktSz=2, SegSz=N/BktSz (one segment per stripe):
	// bucket i pairs t_i with t_{500+i}. With SegSz=500 and constant
	// specificity the modulated sequence equals the input, so bucket 0 =
	// {t0, t500}, bucket 1 = {t1, t501}, ...
	org, err := Generate(seqOfLen(1000), constSpec, 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if org.NumBuckets() != 500 {
		t.Fatalf("NumBuckets = %d, want 500", org.NumBuckets())
	}
	for i := 0; i < 500; i++ {
		b := org.Bucket(i)
		if len(b) != 2 || b[0] != wordnet.TermID(i) || b[1] != wordnet.TermID(500+i) {
			t.Fatalf("bucket %d = %v, want [%d %d]", i, b, i, 500+i)
		}
	}
}

func TestGenerateConstantSlotStride(t *testing.T) {
	// With constant specificity, for any two buckets in the same group
	// the sequence distance between slot-i terms is constant across i —
	// the Figure 3 diversity property.
	org, err := Generate(seqOfLen(240), constSpec, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	a, b := org.Bucket(0), org.Bucket(5)
	want := int(b[0]) - int(a[0])
	for i := 1; i < 4; i++ {
		if got := int(b[i]) - int(a[i]); got != want {
			t.Fatalf("slot %d stride %d, want %d", i, got, want)
		}
	}
}

func TestGenerateEveryTermPlacedOnce(t *testing.T) {
	for _, n := range []int{16, 100, 1000, 1003, 997} {
		for _, bktSz := range []int{2, 4, 7} {
			for _, segSz := range []int{1, 4, 16} {
				if segSz > n/bktSz {
					continue
				}
				org, err := Generate(seqOfLen(n), constSpec, bktSz, segSz)
				if err != nil {
					t.Fatalf("N=%d BktSz=%d SegSz=%d: %v", n, bktSz, segSz, err)
				}
				seen := make(map[wordnet.TermID]int)
				for i := 0; i < org.NumBuckets(); i++ {
					for _, term := range org.Bucket(i) {
						seen[term]++
					}
				}
				if len(seen) != n {
					t.Fatalf("N=%d BktSz=%d SegSz=%d: placed %d distinct terms", n, bktSz, segSz, len(seen))
				}
				for term, c := range seen {
					if c != 1 {
						t.Fatalf("term %d placed %d times", term, c)
					}
				}
				if org.Terms() != n {
					t.Fatalf("Terms() = %d, want %d", org.Terms(), n)
				}
			}
		}
	}
}

func TestBucketSizesUniform(t *testing.T) {
	org, err := Generate(seqOfLen(1000), constSpec, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < org.NumBuckets()-1; i++ {
		if len(org.Bucket(i)) != 4 {
			t.Fatalf("bucket %d has %d terms, want 4", i, len(org.Bucket(i)))
		}
	}
	if last := len(org.Bucket(org.NumBuckets() - 1)); last < 4 {
		t.Fatalf("last bucket has %d terms, want >= 4", last)
	}
}

func TestBucketOfSlotOfRoundTrip(t *testing.T) {
	org, err := Generate(seqOfLen(512), constSpec, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < org.NumBuckets(); b++ {
		for slot, term := range org.Bucket(b) {
			gotB, ok := org.BucketOf(term)
			if !ok || gotB != b {
				t.Fatalf("BucketOf(%d) = %d,%v want %d", term, gotB, ok, b)
			}
			gotS, ok := org.SlotOf(term)
			if !ok || gotS != slot {
				t.Fatalf("SlotOf(%d) = %d,%v want %d", term, gotS, ok, slot)
			}
		}
	}
}

func TestBucketOfUnknownTerm(t *testing.T) {
	org, err := Generate(seqOfLen(64), constSpec, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := org.BucketOf(wordnet.TermID(9999)); ok {
		t.Fatal("BucketOf reported a bucket for an unknown term")
	}
}

func TestSpecificitySortWithinSegments(t *testing.T) {
	// Specificity = term id → within each segment the most specific
	// (largest id) must land in the earliest buckets of the batch.
	spec := func(t wordnet.TermID) int { return int(t) }
	org, err := Generate(seqOfLen(64), spec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 of consecutive buckets within one batch must be decreasing
	// in specificity.
	for b := 1; b < 8; b++ {
		prev := spec(org.Bucket(b - 1)[0])
		cur := spec(org.Bucket(b)[0])
		if cur > prev {
			t.Fatalf("bucket %d slot 0 specificity %d > previous %d; segment sort broken", b, cur, prev)
		}
	}
}

func TestSpecSpreadReducedVsRandomShape(t *testing.T) {
	// Core claim behind Figure 5(a): sorting within segments makes the
	// intra-bucket specificity spread smaller than with SegSz=1 (no
	// freedom to reorder).
	db := wngen.Generate(wngen.ScaledConfig(4000, 5))
	seq := sequence.Run(db)
	spec := func(t wordnet.TermID) int { return db.Specificity(t) }
	sorted, err := Generate(seq, spec, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	unsorted, err := Generate(seq, spec, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(o *Organization) float64 {
		s := 0
		for b := 0; b < o.NumBuckets(); b++ {
			s += o.SpecSpread(b, spec)
		}
		return float64(s) / float64(o.NumBuckets())
	}
	if a, u := avg(sorted), avg(unsorted); a >= u {
		t.Fatalf("SegSz=256 spread %.3f not below SegSz=1 spread %.3f", a, u)
	}
}

func TestStableTieOrder(t *testing.T) {
	// Line 5 of Algorithm 2 preserves relative order among terms tying on
	// specificity — the property that keeps synsets clustered (Section
	// 5.1). With constant specificity the segment must stay untouched.
	in := seqOfLen(32)
	org, err := Generate(in, constSpec, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0 covers segments 0 and 4 (stride = numSeg/BktSz = 4).
	// Bucket j of group 0 must take in[j] and in[16+j].
	for j := 0; j < 4; j++ {
		b := org.Bucket(j)
		if b[0] != in[j] || b[1] != in[16+j] {
			t.Fatalf("bucket %d = %v, want [%d %d]", j, b, in[j], in[16+j])
		}
	}
}

func TestParameterValidation(t *testing.T) {
	seq := seqOfLen(100)
	cases := []struct {
		bktSz, segSz int
	}{
		{0, 1}, {51, 1}, {2, 0}, {2, 51}, {4, 26},
	}
	for _, c := range cases {
		if _, err := Generate(seq, constSpec, c.bktSz, c.segSz); err == nil {
			t.Errorf("BktSz=%d SegSz=%d: expected error", c.bktSz, c.segSz)
		}
	}
	if _, err := Generate(nil, constSpec, 1, 1); err == nil {
		t.Error("empty sequence: expected error")
	}
}

func TestBucketsFor(t *testing.T) {
	org, err := Generate(seqOfLen(64), constSpec, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	b0 := org.Bucket(0)
	b3 := org.Bucket(3)
	got := org.BucketsFor([]wordnet.TermID{b0[1], b3[2], b0[0], 9999})
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("BucketsFor = %v, want [0 3]", got)
	}
}

// Property: for random sizes and parameters, generation partitions the
// dictionary and every bucket (except possibly the last) has BktSz terms.
func TestGenerateProperty(t *testing.T) {
	f := func(nRaw uint16, bRaw, sRaw uint8) bool {
		n := int(nRaw)%3000 + 10
		bktSz := int(bRaw)%(n/2) + 1
		if bktSz > 64 {
			bktSz = 64
		}
		segSz := int(sRaw)%(n/bktSz) + 1
		seq := seqOfLen(n)
		rng := rand.New(rand.NewSource(int64(nRaw)))
		rng.Shuffle(n, func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		org, err := Generate(seq, constSpec, bktSz, segSz)
		if err != nil {
			return false
		}
		count := 0
		for i := 0; i < org.NumBuckets(); i++ {
			sz := len(org.Bucket(i))
			count += sz
			if i < org.NumBuckets()-1 && sz != bktSz {
				return false
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

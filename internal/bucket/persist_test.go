package bucket

import (
	"bytes"
	"testing"

	"embellish/internal/wordnet"
)

func sampleOrg(t *testing.T) *Organization {
	t.Helper()
	terms := make([]wordnet.TermID, 64)
	for i := range terms {
		terms[i] = wordnet.TermID(i * 3) // sparse ids exercise the maps
	}
	org, err := Generate(terms, func(t wordnet.TermID) int { return int(t) % 7 }, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	return org
}

func TestOrganizationPersistRoundTrip(t *testing.T) {
	org := sampleOrg(t)
	var buf bytes.Buffer
	n, err := org.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	got, err := ReadOrganization(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.BktSz != org.BktSz || got.SegSz != org.SegSz || got.NumBuckets() != org.NumBuckets() {
		t.Fatalf("shape mismatch: %+v vs %+v", got, org)
	}
	for b := 0; b < org.NumBuckets(); b++ {
		a, bb := got.Bucket(b), org.Bucket(b)
		if len(a) != len(bb) {
			t.Fatalf("bucket %d size %d vs %d", b, len(a), len(bb))
		}
		for i := range bb {
			if a[i] != bb[i] {
				t.Fatalf("bucket %d slot %d: %d vs %d", b, i, a[i], bb[i])
			}
		}
	}
	// Derived maps agree.
	for _, terms := range org.buckets {
		for _, tm := range terms {
			wb, _ := org.BucketOf(tm)
			gb, ok := got.BucketOf(tm)
			if !ok || gb != wb {
				t.Fatalf("BucketOf(%d) = %d,%v want %d", tm, gb, ok, wb)
			}
			ws, _ := org.SlotOf(tm)
			gs, _ := got.SlotOf(tm)
			if gs != ws {
				t.Fatalf("SlotOf(%d) = %d want %d", tm, gs, ws)
			}
		}
	}
}

func TestOrganizationPersistCorruption(t *testing.T) {
	org := sampleOrg(t)
	var buf bytes.Buffer
	if _, err := org.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x10
	if _, err := ReadOrganization(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt organization accepted")
	}
}

func TestOrganizationPersistRejectsDuplicateTerms(t *testing.T) {
	// Craft a payload with a term in two buckets by editing a valid file
	// is brittle; instead serialize a hand-built organization sharing a
	// term and ensure the loader's invariant check fires.
	o := &Organization{BktSz: 2, SegSz: 1}
	o.buckets = [][]wordnet.TermID{{1, 2}, {2, 3}}
	o.bucketOf = []int32{-1, 0, 0, 1}
	o.slotIn = []int16{0, 0, 1, 1}
	var buf bytes.Buffer
	if _, err := o.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOrganization(&buf); err == nil {
		t.Fatal("duplicated term accepted on load")
	}
}

func TestOrganizationPersistTruncation(t *testing.T) {
	org := sampleOrg(t)
	var buf bytes.Buffer
	if _, err := org.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 5, buf.Len() - 5} {
		if _, err := ReadOrganization(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

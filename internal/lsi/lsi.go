// Package lsi implements latent semantic indexing: a truncated singular
// value decomposition of the term-document matrix, computed with
// orthogonal (subspace) iteration so that only the standard library is
// required.
//
// LSI is the substrate of two systems the paper discusses: the
// privacy-preserving factor-space retrieval of Pang, Shen and Krishnan
// (ACM TOIT 2010), and — the baseline reproduced here — Murugesan and
// Clifton's plausibly deniable search (SDM 2009), which maps dictionary
// terms into a 30-factor LSI space before clustering them into canonical
// queries (Section 2.1). The paper criticizes both pitfalls that this
// package makes observable: LSI's word-relation capture depends on
// corpus co-occurrence, and effective retrieval needs 200-350 factors
// while multi-dimensional indexes stop scaling past ~10 dimensions.
package lsi

import (
	"errors"
	"math"
	"math/rand"
)

// Matrix is a sparse term-document matrix in term-major layout. Weights
// are typically tf-idf values.
type Matrix struct {
	Rows int // terms
	Cols int // documents
	// entries[t] lists the (doc, weight) pairs of term t.
	entries [][]Entry
}

// Entry is one nonzero cell of the matrix.
type Entry struct {
	Col    int
	Weight float64
}

// NewMatrix creates an empty rows×cols sparse matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, entries: make([][]Entry, rows)}
}

// Add records weight w at (row, col). Duplicate adds accumulate.
func (m *Matrix) Add(row, col int, w float64) {
	m.entries[row] = append(m.entries[row], Entry{Col: col, Weight: w})
}

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int {
	n := 0
	for _, r := range m.entries {
		n += len(r)
	}
	return n
}

// mulT computes out = Aᵀ·v for one dense vector v (length Rows),
// producing a vector of length Cols.
func (m *Matrix) mulT(v, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for t, row := range m.entries {
		vt := v[t]
		if vt == 0 {
			continue
		}
		for _, e := range row {
			out[e.Col] += vt * e.Weight
		}
	}
}

// mul computes out = A·v for one dense vector v (length Cols), producing
// a vector of length Rows.
func (m *Matrix) mul(v, out []float64) {
	for t, row := range m.entries {
		var s float64
		for _, e := range row {
			s += v[e.Col] * e.Weight
		}
		out[t] = s
	}
}

// Space is a k-factor LSI space: the left singular vectors scaled by the
// singular values, which place every term at a point in R^k such that
// co-occurring (and transitively related) terms lie close together.
type Space struct {
	K int
	// TermVecs[t] is the k-dimensional position of term t (row t of
	// U_k·Σ_k).
	TermVecs [][]float64
	// Sigma holds the top-k singular values in decreasing order.
	Sigma []float64
}

// Options tunes Factorize.
type Options struct {
	// K is the number of factors. Murugesan-Clifton use 30; Dumais
	// reports LSI retrieval works best with 200-350.
	K int
	// Iters is the number of subspace iterations; 30 is ample for the
	// well-separated spectra of tf-idf matrices.
	Iters int
	// Seed drives the random initial subspace.
	Seed int64
}

// DefaultOptions returns the Murugesan-Clifton configuration.
func DefaultOptions() Options { return Options{K: 30, Iters: 30, Seed: 1} }

// Factorize computes the truncated SVD by orthogonal iteration on A·Aᵀ:
// starting from a random orthonormal basis V ∈ R^{Rows×k}, repeatedly
// form A·(Aᵀ·V) and re-orthonormalize; V converges to the top-k left
// singular vectors U_k, and the Rayleigh quotients give Σ_k².
func Factorize(m *Matrix, o Options) (*Space, error) {
	if o.K <= 0 {
		return nil, errors.New("lsi: K must be positive")
	}
	if m.Rows == 0 || m.Cols == 0 {
		return nil, errors.New("lsi: empty matrix")
	}
	k := o.K
	if k > m.Rows {
		k = m.Rows
	}
	if k > m.Cols {
		k = m.Cols
	}
	if o.Iters <= 0 {
		o.Iters = 30
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// V: Rows×k column-major (each basis vector contiguous).
	v := make([][]float64, k)
	for j := range v {
		v[j] = make([]float64, m.Rows)
		for i := range v[j] {
			v[j][i] = rng.NormFloat64()
		}
	}
	orthonormalize(v)

	tmp := make([]float64, m.Cols)
	next := make([][]float64, k)
	for j := range next {
		next[j] = make([]float64, m.Rows)
	}
	for it := 0; it < o.Iters; it++ {
		for j := 0; j < k; j++ {
			m.mulT(v[j], tmp)
			m.mul(tmp, next[j])
		}
		v, next = next, v
		if !orthonormalize(v) {
			// Rank deficiency: the subspace collapsed below k vectors.
			break
		}
	}

	// Singular values via σ_j = ‖Aᵀ·u_j‖.
	sp := &Space{K: k, Sigma: make([]float64, k)}
	for j := 0; j < k; j++ {
		m.mulT(v[j], tmp)
		sp.Sigma[j] = norm(tmp)
	}
	// Sort factors by decreasing σ (orthogonal iteration converges in
	// order, but finite iterations can leave small inversions).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < k; i++ { // tiny k: selection sort is clearest
		best := i
		for j := i + 1; j < k; j++ {
			if sp.Sigma[order[j]] > sp.Sigma[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sigma := make([]float64, k)
	basis := make([][]float64, k)
	for i, o := range order {
		sigma[i] = sp.Sigma[o]
		basis[i] = v[o]
	}
	sp.Sigma = sigma

	// Term vectors: row t of U_k·Σ_k.
	sp.TermVecs = make([][]float64, m.Rows)
	for t := 0; t < m.Rows; t++ {
		vec := make([]float64, k)
		for j := 0; j < k; j++ {
			vec[j] = basis[j][t] * sp.Sigma[j]
		}
		sp.TermVecs[t] = vec
	}
	return sp, nil
}

// Project folds a bag of term indices into the factor space: the centroid
// of the terms' vectors, the standard query-folding approximation.
func (s *Space) Project(terms []int) []float64 {
	out := make([]float64, s.K)
	if len(terms) == 0 {
		return out
	}
	for _, t := range terms {
		if t < 0 || t >= len(s.TermVecs) {
			continue
		}
		for j, x := range s.TermVecs[t] {
			out[j] += x
		}
	}
	for j := range out {
		out[j] /= float64(len(terms))
	}
	return out
}

// Cosine returns the cosine similarity of two equal-length vectors, or 0
// when either is zero.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// orthonormalize runs modified Gram-Schmidt in place. It reports false
// when some vector became (numerically) dependent and was re-randomized
// to zero norm — i.e. the effective rank is below len(v).
func orthonormalize(v [][]float64) bool {
	full := true
	for j := range v {
		for i := 0; i < j; i++ {
			d := dot(v[i], v[j])
			for x := range v[j] {
				v[j][x] -= d * v[i][x]
			}
		}
		n := norm(v[j])
		if n < 1e-12 {
			full = false
			continue
		}
		for x := range v[j] {
			v[j][x] /= n
		}
	}
	return full
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

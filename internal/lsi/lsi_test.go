package lsi

import (
	"math"
	"testing"
	"testing/quick"
)

// diag builds the diagonal matrix with the given entries.
func diag(vals ...float64) *Matrix {
	m := NewMatrix(len(vals), len(vals))
	for i, v := range vals {
		m.Add(i, i, v)
	}
	return m
}

func TestFactorizeErrors(t *testing.T) {
	if _, err := Factorize(NewMatrix(0, 0), DefaultOptions()); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := Factorize(diag(1), Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestFactorizeDiagonalSingularValues(t *testing.T) {
	// The SVD of a diagonal matrix is the sorted absolute diagonal.
	m := diag(3, 7, 1, 5)
	sp, err := Factorize(m, Options{K: 4, Iters: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 5, 3, 1}
	for i, w := range want {
		if math.Abs(sp.Sigma[i]-w) > 1e-6 {
			t.Fatalf("sigma[%d] = %.8f, want %.0f (all: %v)", i, sp.Sigma[i], w, sp.Sigma)
		}
	}
}

func TestFactorizeClampsK(t *testing.T) {
	m := diag(2, 4)
	sp, err := Factorize(m, Options{K: 10, Iters: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 2 || len(sp.Sigma) != 2 {
		t.Fatalf("K = %d, want clamped to 2", sp.K)
	}
}

func TestTermVecsRecoverBlockStructure(t *testing.T) {
	// Two disjoint topic blocks: terms 0-2 co-occur in docs 0-2, terms
	// 3-5 in docs 3-5. In a 2-factor space, intra-block cosine must be
	// near 1 and inter-block cosine near 0.
	m := NewMatrix(6, 6)
	for t0 := 0; t0 < 3; t0++ {
		for d := 0; d < 3; d++ {
			m.Add(t0, d, 1+0.1*float64(t0+d))
		}
	}
	for t1 := 3; t1 < 6; t1++ {
		for d := 3; d < 6; d++ {
			m.Add(t1, d, 1+0.1*float64(t1+d))
		}
	}
	sp, err := Factorize(m, Options{K: 2, Iters: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	intra := Cosine(sp.TermVecs[0], sp.TermVecs[2])
	inter := Cosine(sp.TermVecs[0], sp.TermVecs[4])
	if math.Abs(intra) < 0.9 {
		t.Fatalf("intra-topic cosine %.3f, want near ±1", intra)
	}
	if math.Abs(inter) > 0.2 {
		t.Fatalf("inter-topic cosine %.3f, want near 0", inter)
	}
}

func TestFactorizeDeterministic(t *testing.T) {
	m := NewMatrix(5, 4)
	m.Add(0, 0, 2)
	m.Add(1, 1, 1)
	m.Add(2, 0, 3)
	m.Add(3, 2, 4)
	m.Add(4, 3, 1)
	a, err := Factorize(m, Options{K: 3, Iters: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Factorize(m, Options{K: 3, Iters: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sigma {
		if a.Sigma[i] != b.Sigma[i] {
			t.Fatal("same seed produced different spectra")
		}
	}
}

func TestProjectCentroid(t *testing.T) {
	sp := &Space{K: 2, TermVecs: [][]float64{{2, 0}, {0, 4}}}
	got := sp.Project([]int{0, 1})
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("Project = %v, want [1 2]", got)
	}
	if z := sp.Project(nil); z[0] != 0 || z[1] != 0 {
		t.Fatalf("empty projection = %v", z)
	}
	// Out-of-range terms are skipped, not panicking.
	got = sp.Project([]int{0, 99})
	if got[0] != 1 {
		t.Fatalf("out-of-range projection = %v", got)
	}
}

func TestCosineProperties(t *testing.T) {
	if c := Cosine([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Fatalf("orthogonal cosine = %v", c)
	}
	if c := Cosine([]float64{1, 2}, []float64{2, 4}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("parallel cosine = %v", c)
	}
	if c := Cosine([]float64{0, 0}, []float64{1, 1}); c != 0 {
		t.Fatalf("zero-vector cosine = %v", c)
	}
	f := func(ax, ay, bx, by int16) bool {
		c := Cosine([]float64{float64(ax), float64(ay)}, []float64{float64(bx), float64(by)})
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNNZ(t *testing.T) {
	m := NewMatrix(3, 3)
	if m.NNZ() != 0 {
		t.Fatal("fresh matrix has entries")
	}
	m.Add(0, 1, 1)
	m.Add(2, 2, 5)
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestRankDeficientMatrix(t *testing.T) {
	// Rank-1 matrix with K=3: factorization must not diverge or panic,
	// and the leading singular value must dominate.
	m := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Add(i, j, 1)
		}
	}
	sp, err := Factorize(m, Options{K: 3, Iters: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Sigma[0]-4) > 1e-6 {
		t.Fatalf("leading sigma = %v, want 4", sp.Sigma[0])
	}
	if sp.Sigma[1] > 1e-6 {
		t.Fatalf("second sigma = %v, want ~0 for a rank-1 matrix", sp.Sigma[1])
	}
}

package relex

import (
	"sort"

	"embellish/internal/wordnet"
)

// NeighborFunc builds the strength-ordered neighbor function that the
// Appendix C variant of Algorithm 1 (sequence.VocabWeighted) consumes:
// for each synset it merges the lexicon's typed relations with the
// extracted term-pair relations, drops everything below minStrength,
// and yields the survivors strongest-first.
func NeighborFunc(db *wordnet.Database, s *Strengths, minStrength float64) func(wordnet.SynsetID) []wordnet.SynsetID {
	// Index extracted pairs by synset once: a term-pair relation links
	// every synset of A to every synset of B.
	extra := make(map[wordnet.SynsetID][]weightedSynset)
	for _, wp := range s.ExtractedPairs() {
		if wp.Strength < minStrength {
			continue
		}
		for _, sa := range db.SynsetsOf(wp.A) {
			for _, sb := range db.SynsetsOf(wp.B) {
				if sa == sb {
					continue
				}
				extra[sa] = append(extra[sa], weightedSynset{sb, wp.Strength})
				extra[sb] = append(extra[sb], weightedSynset{sa, wp.Strength})
			}
		}
	}

	return func(ss wordnet.SynsetID) []wordnet.SynsetID {
		var cands []weightedSynset
		for _, r := range db.Synset(ss).Relations {
			if str := s.TypeStrength(r.Type); str >= minStrength {
				cands = append(cands, weightedSynset{r.To, str})
			}
		}
		cands = append(cands, extra[ss]...)
		// Strongest first; deterministic tie-break by synset id. A synset
		// reachable through several relations keeps its strongest rank
		// (duplicates are harmless to Algorithm 1 — reprocessing a synset
		// is a no-op — but dedup keeps the traversal tight).
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].strength != cands[j].strength {
				return cands[i].strength > cands[j].strength
			}
			return cands[i].id < cands[j].id
		})
		seen := make(map[wordnet.SynsetID]bool, len(cands))
		out := make([]wordnet.SynsetID, 0, len(cands))
		for _, c := range cands {
			if !seen[c.id] {
				seen[c.id] = true
				out = append(out, c.id)
			}
		}
		return out
	}
}

type weightedSynset struct {
	id       wordnet.SynsetID
	strength float64
}

package relex

import (
	"strings"
	"testing"

	"embellish/internal/sequence"
	"embellish/internal/wordnet"
)

// lexWithPairs builds a lexicon of isolated single-term synsets (no
// WordNet relations), so any sequencing structure must come from the
// extracted relations.
func lexWithPairs(lemmas ...string) (*wordnet.Database, map[string]wordnet.TermID) {
	db := wordnet.NewDatabase()
	ids := map[string]wordnet.TermID{}
	for _, l := range lemmas {
		t := db.AddTerm(l)
		ids[l] = t
		db.AddSynset([]wordnet.TermID{t}, "")
	}
	db.Freeze()
	return db, ids
}

func lookupFn(db *wordnet.Database) func(string) (wordnet.TermID, bool) {
	return func(s string) (wordnet.TermID, bool) { return db.Lookup(s) }
}

func docsFromText(texts ...string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = strings.Fields(t)
	}
	return out
}

func TestExtractErrors(t *testing.T) {
	db, _ := lexWithPairs("a", "b")
	if _, err := Extract(nil, lookupFn(db), Config{Window: 1}); err == nil {
		t.Fatal("window 1 accepted")
	}
	if _, err := Extract(docsFromText("a"), lookupFn(db), DefaultConfig()); err == nil {
		t.Fatal("no-window corpus accepted")
	}
}

func TestExtractFindsCooccurringPair(t *testing.T) {
	db, ids := lexWithPairs("osteosarcoma", "chemotherapy", "bread", "rain")
	// osteosarcoma and chemotherapy co-occur; bread appears alone.
	doc := strings.Repeat("osteosarcoma chemotherapy filler1 filler2 ", 20) +
		strings.Repeat("bread butter ", 20) + strings.Repeat("rain rain2 ", 20)
	rels, err := Extract(docsFromText(doc), lookupFn(db), Config{Window: 4, MinCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("no relations extracted")
	}
	top := rels[0]
	want := pairKey(ids["osteosarcoma"], ids["chemotherapy"])
	if pairKey(top.A, top.B) != want {
		t.Fatalf("top relation is (%d,%d), want osteosarcoma-chemotherapy", top.A, top.B)
	}
	if top.PMI <= 0 {
		t.Fatalf("PMI of a genuinely associated pair is %v", top.PMI)
	}
}

func TestExtractMinCount(t *testing.T) {
	db, _ := lexWithPairs("x", "y")
	doc := "x y filler filler filler filler filler filler filler filler"
	rels, err := Extract(docsFromText(doc), lookupFn(db), Config{Window: 4, MinCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Fatalf("pair below support floor survived: %+v", rels)
	}
}

func TestExtractMaxPairs(t *testing.T) {
	db, _ := lexWithPairs("a", "b", "c", "d")
	doc := strings.Repeat("a b c d ", 30)
	rels, err := Extract(docsFromText(doc), lookupFn(db), Config{Window: 4, MinCount: 1, MaxPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("MaxPairs not applied: %d", len(rels))
	}
}

func TestStrengthScale(t *testing.T) {
	s := DefaultStrengths()
	// Closeness order of Algorithm 1 must be strictly decreasing.
	order := []wordnet.RelationType{
		wordnet.RelDerivation, wordnet.RelAntonym, wordnet.RelHyponym,
		wordnet.RelHypernym, wordnet.RelMeronym, wordnet.RelHolonym,
		wordnet.RelDomainTopic,
	}
	for i := 1; i < len(order); i++ {
		if s.TypeStrength(order[i-1]) <= s.TypeStrength(order[i]) {
			t.Fatalf("strength order broken at %v", order[i])
		}
	}
}

func TestAddExtractedMapsToRange(t *testing.T) {
	s := DefaultStrengths()
	rels := []Extracted{
		{A: 1, B: 2, PMI: 3.0},
		{A: 3, B: 4, PMI: 2.0},
		{A: 5, B: 6, PMI: 1.0},
	}
	s.AddExtracted(rels, 2, 5)
	if got := s.ExtractedStrength(1, 2); got != 5 {
		t.Fatalf("strongest pair strength = %v, want 5", got)
	}
	if got := s.ExtractedStrength(6, 5); got != 2 { // unordered key
		t.Fatalf("weakest pair strength = %v, want 2", got)
	}
	if got := s.ExtractedStrength(3, 4); got != 3.5 {
		t.Fatalf("middle pair strength = %v, want 3.5", got)
	}
	if got := s.ExtractedStrength(9, 9); got != 0 {
		t.Fatalf("unknown pair strength = %v, want 0", got)
	}
}

func TestNeighborFuncMergesAndThresholds(t *testing.T) {
	db := wordnet.NewDatabase()
	a := db.AddTerm("alpha")
	b := db.AddTerm("beta")
	c := db.AddTerm("gamma")
	sa := db.AddSynset([]wordnet.TermID{a}, "")
	sb := db.AddSynset([]wordnet.TermID{b}, "")
	sc := db.AddSynset([]wordnet.TermID{c}, "")
	db.AddRelation(sa, sb, wordnet.RelDomainTopic) // weak typed link
	db.Freeze()

	s := DefaultStrengths()
	s.AddExtracted([]Extracted{{A: a, B: c, PMI: 4}}, 5.5, 5.5) // strong extracted link

	// Threshold above domain strength (1): only the extracted edge
	// survives.
	nf := NeighborFunc(db, s, 2)
	got := nf(sa)
	if len(got) != 1 || got[0] != sc {
		t.Fatalf("neighbors(sa) = %v, want [extracted -> %d]", got, sc)
	}
	// Threshold at 1: both edges, extracted (5.5) before domain (1).
	nf = NeighborFunc(db, s, 1)
	got = nf(sa)
	if len(got) != 2 || got[0] != sc || got[1] != sb {
		t.Fatalf("neighbors(sa) = %v, want [%d %d]", got, sc, sb)
	}
	// Symmetric view from the extracted side.
	if got := nf(sc); len(got) != 1 || got[0] != sa {
		t.Fatalf("neighbors(sc) = %v", got)
	}
}

// TestWeightedSequencingPullsExtractedNeighbors is the Appendix C
// end-to-end: two terms with no WordNet connection but a strong corpus
// association end up adjacent in the weighted sequence.
func TestWeightedSequencingPullsExtractedNeighbors(t *testing.T) {
	db, ids := lexWithPairs("osteosarcoma", "chemotherapy", "m1", "m2", "m3", "m4", "m5", "m6")
	s := DefaultStrengths()
	s.AddExtracted([]Extracted{{A: ids["osteosarcoma"], B: ids["chemotherapy"], PMI: 5}}, 5.5, 5.5)

	seqs := sequence.VocabWeighted(db, NeighborFunc(db, s, 2))
	flat := sequence.Flatten(seqs)
	pos := map[wordnet.TermID]int{}
	for i, tm := range flat {
		pos[tm] = i
	}
	d := pos[ids["osteosarcoma"]] - pos[ids["chemotherapy"]]
	if d < 0 {
		d = -d
	}
	if d != 1 {
		t.Fatalf("extracted-related terms are %d apart, want adjacent", d)
	}
	// Partition invariant still holds.
	if len(flat) != db.NumTerms() {
		t.Fatalf("weighted sequencing lost terms: %d of %d", len(flat), db.NumTerms())
	}
}

// TestVocabWeightedWithRelatedInOrderEqualsVocab pins the equivalence
// stated in the VocabWeighted doc comment.
func TestVocabWeightedWithRelatedInOrderEqualsVocab(t *testing.T) {
	db := wordnet.MiniLexicon()
	a := sequence.Flatten(sequence.Vocab(db))
	b := sequence.Flatten(sequence.VocabWeighted(db, db.RelatedInOrder))
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

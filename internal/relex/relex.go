// Package relex implements the Appendix C extension of Pang, Ding and
// Xiao (VLDB 2010): merging multiple sources of term relations. The
// WordNet relations are manual and accurate but not comprehensive;
// domain-specific or emerging associations can be extracted from text
// corpora (Hasegawa et al. [11]) or the Web (Rozenfeld and Feldman
// [25]). This package supplies the corpus side: a co-occurrence-based
// relation extractor, a numeric-strength scale covering both sources,
// and the merged relation view that the weighted variant of Algorithm 1
// (sequence.VocabWeighted) consumes.
//
// Extraction is deliberately simple — pointwise mutual information over
// sliding windows — because what the downstream algorithms consume is
// only a ranked list of (term, term, strength) triples; any extractor
// with that output shape plugs in.
package relex

import (
	"errors"
	"math"
	"sort"

	"embellish/internal/wordnet"
)

// Extracted is one corpus-derived term association.
type Extracted struct {
	A, B wordnet.TermID
	// Cooccurrences is the number of windows containing both terms.
	Cooccurrences int
	// PMI is the pointwise mutual information of the pair,
	// log P(a,b)/(P(a)P(b)); higher = more strongly associated.
	PMI float64
}

// Config tunes extraction.
type Config struct {
	// Window is the co-occurrence window width in tokens.
	Window int
	// MinCount discards pairs seen in fewer windows.
	MinCount int
	// MaxPairs caps the output (strongest first); 0 = unlimited.
	MaxPairs int
}

// DefaultConfig uses a 10-token window and a support floor of 3.
func DefaultConfig() Config { return Config{Window: 10, MinCount: 3, MaxPairs: 0} }

// Extract mines term associations from tokenized documents. lookup maps
// a token to a lexicon term (and reports whether it is one); tokens
// outside the lexicon are ignored.
func Extract(docs [][]string, lookup func(string) (wordnet.TermID, bool), cfg Config) ([]Extracted, error) {
	if cfg.Window < 2 {
		return nil, errors.New("relex: window must cover at least 2 tokens")
	}
	if cfg.MinCount < 1 {
		cfg.MinCount = 1
	}

	type pair struct{ a, b wordnet.TermID }
	pairCount := make(map[pair]int)
	termCount := make(map[wordnet.TermID]int)
	windows := 0

	for _, doc := range docs {
		// Map tokens to term ids once per document.
		ids := make([]wordnet.TermID, 0, len(doc))
		for _, tok := range doc {
			if t, ok := lookup(tok); ok {
				ids = append(ids, t)
			}
		}
		for start := 0; start+cfg.Window <= len(ids) || (start == 0 && len(ids) > 1); start += cfg.Window / 2 {
			end := start + cfg.Window
			if end > len(ids) {
				end = len(ids)
			}
			if end-start < 2 {
				break
			}
			windows++
			seen := map[wordnet.TermID]bool{}
			for _, t := range ids[start:end] {
				seen[t] = true
			}
			uniq := make([]wordnet.TermID, 0, len(seen))
			for t := range seen {
				uniq = append(uniq, t)
			}
			sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
			for i := 0; i < len(uniq); i++ {
				termCount[uniq[i]]++
				for j := i + 1; j < len(uniq); j++ {
					pairCount[pair{uniq[i], uniq[j]}]++
				}
			}
			if end == len(ids) {
				break
			}
		}
	}
	if windows == 0 {
		return nil, errors.New("relex: no windows (documents too short?)")
	}

	out := make([]Extracted, 0, len(pairCount))
	for p, n := range pairCount {
		if n < cfg.MinCount {
			continue
		}
		pa := float64(termCount[p.a]) / float64(windows)
		pb := float64(termCount[p.b]) / float64(windows)
		pab := float64(n) / float64(windows)
		out = append(out, Extracted{A: p.a, B: p.b, Cooccurrences: n, PMI: math.Log(pab / (pa * pb))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PMI != out[j].PMI {
			return out[i].PMI > out[j].PMI
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	if cfg.MaxPairs > 0 && len(out) > cfg.MaxPairs {
		out = out[:cfg.MaxPairs]
	}
	return out, nil
}

// Strengths is the numeric strength scale of Appendix C: WordNet
// relation types translated to strengths, and extracted relations rated
// on the same scale by occurrence count. Higher = stronger association.
type Strengths struct {
	// ByType assigns each WordNet relation type a strength. The default
	// mirrors Algorithm 1's traversal order: derivation strongest, then
	// antonym, hyponym, hypernym, meronym, holonym; domain weakest.
	ByType [wordnet.NumRelationTypes]float64
	// extracted holds corpus relations keyed by unordered term pair.
	extracted map[[2]wordnet.TermID]float64
}

// DefaultStrengths mirrors the closeness order of Algorithm 1 line 18.
func DefaultStrengths() *Strengths {
	s := &Strengths{extracted: map[[2]wordnet.TermID]float64{}}
	s.ByType[wordnet.RelDerivation] = 6
	s.ByType[wordnet.RelAntonym] = 5
	s.ByType[wordnet.RelHyponym] = 4
	s.ByType[wordnet.RelHypernym] = 3.5
	s.ByType[wordnet.RelMeronym] = 3
	s.ByType[wordnet.RelHolonym] = 2.5
	s.ByType[wordnet.RelDomainTopic] = 1
	return s
}

// AddExtracted rates corpus relations on the WordNet strength scale:
// the strongest extracted pair maps to maxStrength, the weakest kept
// pair to minStrength, linear in PMI rank between them.
func (s *Strengths) AddExtracted(rels []Extracted, minStrength, maxStrength float64) {
	if len(rels) == 0 {
		return
	}
	span := maxStrength - minStrength
	for i, r := range rels {
		frac := 0.0
		if len(rels) > 1 {
			frac = float64(i) / float64(len(rels)-1)
		}
		key := pairKey(r.A, r.B)
		str := maxStrength - frac*span
		if str > s.extracted[key] {
			s.extracted[key] = str
		}
	}
}

// TypeStrength returns the strength of a WordNet relation type.
func (s *Strengths) TypeStrength(t wordnet.RelationType) float64 { return s.ByType[t] }

// ExtractedStrength returns the strength of an extracted pair, 0 when
// the pair was not extracted.
func (s *Strengths) ExtractedStrength(a, b wordnet.TermID) float64 {
	return s.extracted[pairKey(a, b)]
}

// ExtractedPairs returns every extracted pair with its strength,
// strongest first (deterministic order).
func (s *Strengths) ExtractedPairs() []WeightedPair {
	out := make([]WeightedPair, 0, len(s.extracted))
	for k, v := range s.extracted {
		out = append(out, WeightedPair{A: k[0], B: k[1], Strength: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Strength != out[j].Strength {
			return out[i].Strength > out[j].Strength
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// WeightedPair is one merged relation with its strength.
type WeightedPair struct {
	A, B     wordnet.TermID
	Strength float64
}

func pairKey(a, b wordnet.TermID) [2]wordnet.TermID {
	if a > b {
		a, b = b, a
	}
	return [2]wordnet.TermID{a, b}
}

package docstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"embellish/internal/vbyte"
)

// Section codec for the engine file's optional doc-store section:
// magic "EDOC" | present byte | when present: block size vbyte |
// document count vbyte | per document: block count vbyte, length
// vbyte, content crc32 vbyte, deleted byte (First is implied by the
// tiling invariant) | raw block bytes | crc32 (little-endian) of
// everything before it.

const sectionMagic = "EDOC"

// maxSaneDocs bounds the attacker-controlled document count during
// load; each document costs at least 3 payload bytes, so the byte
// budget check below is the effective bound for real files.
const maxSaneDocs = 1 << 26

// Write serializes the snapshot as one self-checksummed section; a nil
// snapshot writes the absent marker (an engine without a doc store).
// Block bytes stream straight to w through the running checksum — the
// section is never concatenated in memory, so Save's transient cost
// stays one buffered copy (the caller's), not two.
func Write(w io.Writer, sn *Snapshot) (int64, error) {
	cw := &crcWriter{w: w}
	header := []byte(sectionMagic)
	if sn == nil {
		header = append(header, 0)
	} else {
		header = append(header, 1)
		header = vbyte.Append(header, uint64(sn.blockSize))
		header = vbyte.Append(header, uint64(len(sn.exts)))
		for _, ext := range sn.exts {
			header = vbyte.Append(header, uint64(ext.Blocks))
			header = vbyte.Append(header, uint64(ext.Length))
			header = vbyte.Append(header, uint64(ext.Crc))
			if ext.Deleted {
				header = append(header, 1)
			} else {
				header = append(header, 0)
			}
		}
	}
	if _, err := cw.Write(header); err != nil {
		return cw.n, err
	}
	if sn != nil {
		for _, b := range sn.blocks {
			if _, err := cw.Write(b); err != nil {
				return cw.n, err
			}
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	n, err := w.Write(tail[:])
	return cw.n + int64(n), err
}

// crcWriter forwards to w while maintaining the section checksum.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Read reverses Write. It returns (nil, nil) for the absent marker.
func Read(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(sectionMagic)+1+4 {
		return nil, errors.New("docstore: section too short")
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("docstore: checksum mismatch; section corrupt")
	}
	if string(payload[:len(sectionMagic)]) != sectionMagic {
		return nil, errors.New("docstore: bad section magic")
	}
	payload = payload[len(sectionMagic):]
	present, payload := payload[0], payload[1:]
	switch present {
	case 0:
		if len(payload) != 0 {
			return nil, errors.New("docstore: trailing bytes after absent marker")
		}
		return nil, nil
	case 1:
	default:
		return nil, fmt.Errorf("docstore: bad presence byte %d", present)
	}
	blockSize, used, err := vbyte.Decode(payload)
	if err != nil || blockSize < 1 || blockSize > MaxBlockSize {
		return nil, errors.New("docstore: implausible block size")
	}
	payload = payload[used:]
	nDocs, used, err := vbyte.Decode(payload)
	// Each document costs at least 4 payload bytes; a count past the
	// remaining payload is forged — reject before allocating.
	if err != nil || nDocs > maxSaneDocs || nDocs*4 > uint64(len(payload)) {
		return nil, errors.New("docstore: implausible document count")
	}
	payload = payload[used:]
	exts := make([]Extent, nDocs)
	next := uint64(0)
	for i := range exts {
		blocks, used, err := vbyte.Decode(payload)
		if err != nil {
			return nil, fmt.Errorf("docstore: document %d blocks: %w", i, err)
		}
		payload = payload[used:]
		length, used, err := vbyte.Decode(payload)
		if err != nil {
			return nil, fmt.Errorf("docstore: document %d length: %w", i, err)
		}
		payload = payload[used:]
		crc, used, err := vbyte.Decode(payload)
		if err != nil {
			return nil, fmt.Errorf("docstore: document %d checksum: %w", i, err)
		}
		if crc > 1<<32-1 {
			return nil, fmt.Errorf("docstore: document %d checksum out of range", i)
		}
		payload = payload[used:]
		if len(payload) < 1 {
			return nil, fmt.Errorf("docstore: document %d truncated", i)
		}
		del := payload[0]
		payload = payload[1:]
		if del > 1 {
			return nil, fmt.Errorf("docstore: document %d bad deleted byte %d", i, del)
		}
		// Bound the implied block total by the remaining payload before
		// trusting it: blocks*blockSize bytes must still be present. The
		// 2^32 ceilings keep next*blockSize far from uint64 overflow.
		if blocks > 1<<32 || length > 1<<32 {
			return nil, fmt.Errorf("docstore: document %d extent implausible", i)
		}
		next += blocks
		if next*blockSize > uint64(len(payload)) {
			return nil, fmt.Errorf("docstore: document %d extent exceeds the section", i)
		}
		if length > blocks*blockSize {
			return nil, fmt.Errorf("docstore: document %d length %d exceeds its %d blocks", i, length, blocks)
		}
		exts[i] = Extent{
			First:   uint32(next - blocks),
			Blocks:  uint32(blocks),
			Length:  uint32(length),
			Crc:     uint32(crc),
			Deleted: del == 1,
		}
	}
	if uint64(len(payload)) != next*blockSize {
		return nil, fmt.Errorf("docstore: %d block bytes for %d blocks of %d", len(payload), next, blockSize)
	}
	return FromParts(int(blockSize), exts, payload)
}

// Package docstore lays live document bytes out into fixed-size PIR
// blocks, completing the paper's second privacy stage: after ranking
// privately, the client fetches the winning documents without revealing
// which ones won. The server treats the block array as one
// Kushilevitz-Ostrovsky PIR database (one column per block); the client
// maps a ranked document id to its block range through the public
// Params and runs one PIR protocol execution per block.
//
// Layout invariants, chosen so the mapping every client holds stays
// valid under concurrent corpus churn:
//
//   - append-only blocks: a document's blocks are allocated once, at
//     dense positions continuing the previous document's, and NEVER
//     move — index segment appends and merges do not touch the store;
//   - tombstone padding: deleting a document ZEROES its blocks in
//     place but keeps them allocated (padded out, not skipped), so no
//     later document's offsets shift and the block count a client
//     learned from an old Params never shrinks. Compacting deleted
//     blocks away would leak churn through offsets — an observer of
//     two Params could diff them — and would invalidate in-flight
//     fetches;
//   - snapshot isolation: readers pin an immutable Snapshot (blocks
//     are copy-on-write per document) and are never blocked by
//     writers.
//
// What the server learns from a fetch: only the NUMBER of PIR
// executions, i.e. the block count of the fetched document — never
// which blocks. Deployments that consider length a secret should pad
// documents to a common size before adding them.
package docstore

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"embellish/internal/pir"
)

// DefaultBlockSize is the PIR block size applied when a store is
// created with size 0.
const DefaultBlockSize = 512

// MaxBlockSize bounds the block size: 8*MaxBlockSize is the PIR answer
// row count, which the client must be able to hold and test.
const MaxBlockSize = 1 << 20

// Extent maps one document id onto the block array.
type Extent struct {
	// First is the index of the document's first block; blocks are
	// contiguous, so the document occupies [First, First+Blocks).
	First uint32
	// Blocks is the number of blocks the document occupies (0 for an
	// empty document).
	Blocks uint32
	// Length is the document's true byte length; the last block is
	// zero-padded past it.
	Length uint32
	// Crc is the IEEE CRC-32 of the document bytes, fixed at add time.
	// Fetch clients verify reassembled bytes against it: a document
	// deleted between the mapping fetch and the last block fetch decodes
	// as (partially) zeroed blocks, which would otherwise be returned
	// silently.
	Crc uint32
	// Deleted marks a tombstoned document: its blocks remain allocated
	// (zeroed) so later documents' offsets never shift.
	Deleted bool
}

// Snapshot is one immutable state of a Store: the block array and the
// per-document extents. Concurrent readers use it without locks; it
// stays internally consistent forever.
type Snapshot struct {
	blockSize int
	blocks    [][]byte // each exactly blockSize bytes, immutable
	exts      []Extent // indexed by document id
}

// BlockSize returns the fixed block size in bytes.
func (sn *Snapshot) BlockSize() int { return sn.blockSize }

// NumBlocks returns the number of blocks in the PIR database.
func (sn *Snapshot) NumBlocks() int { return len(sn.blocks) }

// NumDocs returns the number of documents ever added (tombstoned ones
// included — their extents are padding, not gaps).
func (sn *Snapshot) NumDocs() int { return len(sn.exts) }

// Extent returns the block extent of document id, and whether the id
// has ever been assigned.
func (sn *Snapshot) Extent(id int) (Extent, bool) {
	if id < 0 || id >= len(sn.exts) {
		return Extent{}, false
	}
	return sn.exts[id], true
}

// Document returns a copy of the document's bytes, read directly (in
// the clear — the server-side path; clients fetch through PIR). It
// errors for ids never assigned and for tombstoned documents.
func (sn *Snapshot) Document(id int) ([]byte, error) {
	ext, ok := sn.Extent(id)
	if !ok {
		return nil, fmt.Errorf("docstore: document %d does not exist", id)
	}
	if ext.Deleted {
		return nil, fmt.Errorf("docstore: document %d is deleted", id)
	}
	out := make([]byte, ext.Length)
	for i := 0; i < int(ext.Blocks); i++ {
		lo := i * sn.blockSize
		hi := lo + sn.blockSize
		if hi > len(out) {
			hi = len(out)
		}
		copy(out[lo:hi], sn.blocks[int(ext.First)+i])
	}
	return out, nil
}

// Params is the public block mapping a client needs to turn ranked
// document ids into PIR queries. It reveals nothing a conventional
// engine would not: sizes and liveness are server-side metadata; the
// privacy guarantee is about WHICH document a client fetches.
type Params struct {
	BlockSize int
	NumBlocks int
	Exts      []Extent
}

// Params returns the snapshot's block mapping. The extents slice is
// shared with the snapshot and must not be mutated.
func (sn *Snapshot) Params() Params {
	return Params{BlockSize: sn.blockSize, NumBlocks: len(sn.blocks), Exts: sn.exts}
}

// Answer runs the server side of one PIR execution over the FIRST
// len(q.Values) blocks. Accepting any width up to the current block
// count keeps fetches valid across concurrent appends: a client
// querying against an older Params simply addresses the prefix that
// existed when it fetched the mapping. Answer is the sequential
// reference path — one modular multiplication per addressed corpus
// bit, the paper's Section 5.2 cost model; AnswerExec computes the
// identical answer faster.
func (sn *Snapshot) Answer(q *pir.Query) (*pir.Answer, pir.Stats, error) {
	return sn.AnswerCtx(context.Background(), q)
}

// AnswerCtx is Answer under a context: the block scan stops mid-store
// when ctx is cancelled or its deadline expires, returning ctx.Err()
// and the stats of the multiplications actually performed.
func (sn *Snapshot) AnswerCtx(ctx context.Context, q *pir.Query) (*pir.Answer, pir.Stats, error) {
	w, err := sn.queryWidth(q)
	if err != nil {
		return nil, pir.Stats{}, err
	}
	return pir.ProcessColumnsCtx(ctx, sn.blocks[:w], sn.blockSize, q)
}

// AnswerExec answers the same PIR execution as Answer — byte-identical
// gammas, property-tested — through pir.ProcessColumnsExec's windowed
// tables and worker pool. The prefix-addressing semantics are
// identical.
func (sn *Snapshot) AnswerExec(q *pir.Query, ex pir.Exec) (*pir.Answer, pir.Stats, error) {
	return sn.AnswerExecCtx(context.Background(), q, ex)
}

// AnswerExecCtx is AnswerExec under a context, with the cancellation
// semantics of pir.ProcessColumnsExecCtx: every worker stops within a
// bounded slice of work and the partial multiplications stay counted.
func (sn *Snapshot) AnswerExecCtx(ctx context.Context, q *pir.Query, ex pir.Exec) (*pir.Answer, pir.Stats, error) {
	w, err := sn.queryWidth(q)
	if err != nil {
		return nil, pir.Stats{}, err
	}
	return pir.ProcessColumnsExecCtx(ctx, sn.blocks[:w], sn.blockSize, q, ex)
}

// AnswerMulti answers every query of a batch over the snapshot in one
// database pass (pir.ProcessColumnsMulti): the block bytes are read
// and transposed once for the whole batch. All queries must share one
// modulus and address the same prefix width; answers come back in
// batch order, byte-identical to independent Answer runs, with
// per-query Stats.
func (sn *Snapshot) AnswerMulti(qs []*pir.Query) ([]*pir.Answer, []pir.Stats, error) {
	return sn.AnswerMultiCtx(context.Background(), qs)
}

// AnswerMultiCtx is AnswerMulti under a context, with the batch
// cancellation semantics of pir.ProcessColumnsMultiExecCtx.
func (sn *Snapshot) AnswerMultiCtx(ctx context.Context, qs []*pir.Query) ([]*pir.Answer, []pir.Stats, error) {
	return sn.AnswerMultiExecCtx(ctx, qs, pir.Exec{})
}

// AnswerMultiExecCtx is AnswerMultiCtx with execution tuning: workers
// partition column groups and ex.Window pins the (batch-amortized)
// window width.
func (sn *Snapshot) AnswerMultiExecCtx(ctx context.Context, qs []*pir.Query, ex pir.Exec) ([]*pir.Answer, []pir.Stats, error) {
	if len(qs) == 0 {
		return nil, nil, errors.New("docstore: empty PIR batch")
	}
	w, err := sn.queryWidth(qs[0])
	if err != nil {
		return nil, nil, err
	}
	// The one-pass scan serves one prefix width; pir validates that
	// every query matches it (callers group mixed-width batches).
	return pir.ProcessColumnsMultiExecCtx(ctx, sn.blocks[:w], sn.blockSize, qs, ex)
}

// AnswerRecursive answers one recursive (two-level) PIR query over the
// snapshot: the block array is treated as the √n×√n grid the query's
// shape declares, and the answer is the recursively-encrypted target
// block (or the level-1 gamma matrix for partition-mode queries from a
// cluster router). Blocks past the query's window — including blocks
// appended after the client fetched its Params — are simply absent
// from the grid, so fetches stay valid across concurrent appends
// exactly like the flat paths.
func (sn *Snapshot) AnswerRecursive(q *pir.RecursiveQuery) (*pir.Answer, pir.Stats, error) {
	return sn.AnswerRecursiveExecCtx(context.Background(), q, pir.Exec{})
}

// AnswerRecursiveCtx is AnswerRecursive under a context, with the
// cancellation semantics of pir.ProcessColumnsRecursiveMultiExecCtx.
func (sn *Snapshot) AnswerRecursiveCtx(ctx context.Context, q *pir.RecursiveQuery) (*pir.Answer, pir.Stats, error) {
	return sn.AnswerRecursiveExecCtx(ctx, q, pir.Exec{})
}

// AnswerRecursiveExecCtx is AnswerRecursiveCtx with execution tuning
// (workers partition grid columns; ex.Window pins the level-1 group
// width).
func (sn *Snapshot) AnswerRecursiveExecCtx(ctx context.Context, q *pir.RecursiveQuery, ex pir.Exec) (*pir.Answer, pir.Stats, error) {
	answers, stats, err := sn.AnswerRecursiveMultiExecCtx(ctx, []*pir.RecursiveQuery{q}, ex)
	if err != nil {
		return nil, pir.Stats{}, err
	}
	return answers[0], stats[0], nil
}

// AnswerRecursiveMultiExecCtx answers a batch of recursive queries in
// one level-1 database pass. All queries must share one modulus and
// one grid shape; answers come back in batch order with per-query
// Stats.
func (sn *Snapshot) AnswerRecursiveMultiExecCtx(ctx context.Context, qs []*pir.RecursiveQuery, ex pir.Exec) ([]*pir.Answer, []pir.Stats, error) {
	return pir.ProcessColumnsRecursiveMultiExecCtx(ctx, sn.blocks, sn.blockSize, qs, ex)
}

// queryWidth validates a PIR query's width against the block array.
func (sn *Snapshot) queryWidth(q *pir.Query) (int, error) {
	w := len(q.Values)
	if w < 1 {
		return 0, errors.New("docstore: empty PIR query")
	}
	if w > len(sn.blocks) {
		return 0, fmt.Errorf("docstore: query addresses %d blocks, store holds %d", w, len(sn.blocks))
	}
	return w, nil
}

// Store is the mutable, concurrency-safe document store. Readers pin
// Snapshots and never block; Add and Delete serialize on an internal
// lock and publish new snapshots atomically.
type Store struct {
	blockSize int
	zero      []byte // the shared all-zero block tombstoning swaps in

	mu    sync.Mutex
	state atomic.Pointer[Snapshot]
}

// New creates an empty store. blockSize 0 selects DefaultBlockSize.
func New(blockSize int) (*Store, error) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize < 1 || blockSize > MaxBlockSize {
		return nil, fmt.Errorf("docstore: block size %d out of range [1, %d]", blockSize, MaxBlockSize)
	}
	s := &Store{blockSize: blockSize, zero: make([]byte, blockSize)}
	s.state.Store(&Snapshot{blockSize: blockSize})
	return s, nil
}

// FromParts reassembles a store from persisted parts: the extents in
// document-id order and the raw concatenated block bytes. It validates
// the append-only tiling invariant (extents are dense and consecutive)
// and re-zeroes tombstoned documents' blocks, restoring the padding
// invariant even from a file whose deleted regions were tampered with.
func FromParts(blockSize int, exts []Extent, raw []byte) (*Store, error) {
	s, err := New(blockSize)
	if err != nil {
		return nil, err
	}
	if len(raw)%s.blockSize != 0 {
		return nil, fmt.Errorf("docstore: %d block bytes are not a multiple of block size %d", len(raw), s.blockSize)
	}
	numBlocks := len(raw) / s.blockSize
	blocks := make([][]byte, numBlocks)
	for i := range blocks {
		blocks[i] = raw[i*s.blockSize : (i+1)*s.blockSize : (i+1)*s.blockSize]
	}
	next := uint32(0)
	for id, ext := range exts {
		if ext.First != next {
			return nil, fmt.Errorf("docstore: document %d starts at block %d, want %d (extents must tile)", id, ext.First, next)
		}
		if int(ext.Blocks) > numBlocks-int(next) {
			return nil, fmt.Errorf("docstore: document %d extent exceeds the block array", id)
		}
		if ext.Length > ext.Blocks*uint32(s.blockSize) || (ext.Blocks > 0 && ext.Length <= (ext.Blocks-1)*uint32(s.blockSize)) {
			return nil, fmt.Errorf("docstore: document %d length %d does not fit %d blocks", id, ext.Length, ext.Blocks)
		}
		if ext.Deleted {
			for i := 0; i < int(ext.Blocks); i++ {
				blocks[int(ext.First)+i] = s.zero
			}
		} else if ext.Length > 0 {
			doc := raw[int(ext.First)*s.blockSize:]
			if crc32.ChecksumIEEE(doc[:ext.Length]) != ext.Crc {
				return nil, fmt.Errorf("docstore: document %d bytes do not match its checksum", id)
			}
		}
		next += ext.Blocks
	}
	if int(next) != numBlocks {
		return nil, fmt.Errorf("docstore: extents cover %d blocks, store holds %d", next, numBlocks)
	}
	s.state.Store(&Snapshot{blockSize: s.blockSize, blocks: blocks, exts: append([]Extent(nil), exts...)})
	return s, nil
}

// BlockSize returns the fixed block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// Snapshot returns the current immutable state.
func (s *Store) Snapshot() *Snapshot { return s.state.Load() }

// Add appends one document. Ids must be dense: id is required to equal
// the number of documents ever added (the engine's NextDocID
// contract), so the extent table needs no holes.
func (s *Store) Add(id int, data []byte) error {
	return s.AddBatch(id, [][]byte{data})
}

// AddBatch appends documents base, base+1, ... in one snapshot swap —
// the batch-ingest path: the block and extent slices are copied once
// per batch, not once per document.
func (s *Store) AddBatch(base int, docs [][]byte) error {
	if len(docs) == 0 {
		return errors.New("docstore: empty batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.state.Load()
	if base != len(cur.exts) {
		return fmt.Errorf("docstore: document ids must be dense: got %d, want %d", base, len(cur.exts))
	}
	newBlocks := 0
	for i, data := range docs {
		// uint64 comparison: int(^uint32(0)) would wrap negative on
		// 32-bit platforms.
		if uint64(len(data)) > uint64(^uint32(0)) {
			return fmt.Errorf("docstore: document %d of %d bytes is too large", base+i, len(data))
		}
		newBlocks += (len(data) + s.blockSize - 1) / s.blockSize
	}
	// Fresh backing arrays sized for the whole batch: older snapshots
	// never alias them, and the copy happens once per batch.
	blocks := make([][]byte, len(cur.blocks), len(cur.blocks)+newBlocks)
	copy(blocks, cur.blocks)
	exts := make([]Extent, len(cur.exts), len(cur.exts)+len(docs))
	copy(exts, cur.exts)
	for _, data := range docs {
		nBlocks := (len(data) + s.blockSize - 1) / s.blockSize
		for j := 0; j < nBlocks; j++ {
			b := make([]byte, s.blockSize)
			copy(b, data[j*s.blockSize:])
			blocks = append(blocks, b)
		}
		exts = append(exts, Extent{
			First:  uint32(len(blocks) - nBlocks),
			Blocks: uint32(nBlocks),
			Length: uint32(len(data)),
			Crc:    crc32.ChecksumIEEE(data),
		})
	}
	s.state.Store(&Snapshot{blockSize: s.blockSize, blocks: blocks, exts: exts})
	return nil
}

// Delete tombstones one document; see DeleteBatch.
func (s *Store) Delete(id int) error {
	return s.DeleteBatch([]int{id})
}

// DeleteBatch tombstones documents in one snapshot swap: their blocks
// are swapped for the shared zero block — padded out in place, never
// compacted away — so every other document's offsets survive and the
// churn is not observable through the block layout. Every id must be
// live (repeats within the batch count as already deleted); the batch
// is validated in full before anything is applied.
func (s *Store) DeleteBatch(ids []int) error {
	if len(ids) == 0 {
		return errors.New("docstore: empty batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.state.Load()
	seen := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(cur.exts) {
			return fmt.Errorf("docstore: document %d does not exist", id)
		}
		if cur.exts[id].Deleted || seen[id] {
			return fmt.Errorf("docstore: document %d is already deleted", id)
		}
		seen[id] = true
	}
	blocks := append([][]byte(nil), cur.blocks...)
	exts := append([]Extent(nil), cur.exts...)
	for _, id := range ids {
		ext := exts[id]
		for i := 0; i < int(ext.Blocks); i++ {
			blocks[int(ext.First)+i] = s.zero
		}
		exts[id].Deleted = true
	}
	s.state.Store(&Snapshot{blockSize: s.blockSize, blocks: blocks, exts: exts})
	return nil
}

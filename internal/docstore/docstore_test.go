package docstore

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"testing"

	"embellish/internal/detrand"
	"embellish/internal/pir"
)

func testDocs(n int, rng *rand.Rand) [][]byte {
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = make([]byte, rng.Intn(100))
		rng.Read(docs[i])
	}
	return docs
}

func mustStore(t *testing.T, blockSize int, docs [][]byte) *Store {
	t.Helper()
	s, err := New(blockSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		if err := s.Add(i, d); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	return s
}

func TestStoreAddDocumentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	docs := testDocs(30, rng)
	s := mustStore(t, 16, docs)
	sn := s.Snapshot()
	if sn.NumDocs() != len(docs) {
		t.Fatalf("NumDocs = %d, want %d", sn.NumDocs(), len(docs))
	}
	for i, want := range docs {
		got, err := sn.Document(i)
		if err != nil {
			t.Fatalf("Document(%d): %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Document(%d) = %x, want %x", i, got, want)
		}
	}
	if _, err := sn.Document(len(docs)); err == nil {
		t.Fatal("unassigned id readable")
	}
	if err := s.Add(len(docs)+1, []byte("gap")); err == nil {
		t.Fatal("non-dense id accepted")
	}
}

// TestDeletePadsBlocksOut is the tombstone-padding invariant: deleting
// a document keeps its blocks allocated (zeroed), so no other
// document's extent moves and the block count never shrinks.
func TestDeletePadsBlocksOut(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	docs := testDocs(20, rng)
	s := mustStore(t, 16, docs)
	before := s.Snapshot()
	if err := s.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(7); err == nil {
		t.Fatal("double delete accepted")
	}
	after := s.Snapshot()
	if after.NumBlocks() != before.NumBlocks() {
		t.Fatalf("block count changed on delete: %d -> %d", before.NumBlocks(), after.NumBlocks())
	}
	for i := range docs {
		b, _ := before.Extent(i)
		a, ok := after.Extent(i)
		if !ok || a.First != b.First || a.Blocks != b.Blocks {
			t.Fatalf("extent %d moved on delete: %+v -> %+v", i, b, a)
		}
	}
	if _, err := after.Document(7); err == nil {
		t.Fatal("deleted document readable")
	}
	// The deleted region reads as zeros through the PIR path.
	ext, _ := after.Extent(7)
	for i := 0; i < int(ext.Blocks); i++ {
		if !bytes.Equal(after.blocks[int(ext.First)+i], make([]byte, 16)) {
			t.Fatalf("deleted block %d not zeroed", i)
		}
	}
	// The OLD snapshot still reads the deleted document: snapshot
	// isolation.
	got, err := before.Document(7)
	if err != nil || !bytes.Equal(got, docs[7]) {
		t.Fatalf("pre-delete snapshot lost document: %v", err)
	}
}

func TestPIRFetchMatchesDocuments(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	docs := testDocs(12, rng)
	s := mustStore(t, 8, docs)
	sn := s.Snapshot()
	key, err := pir.GenerateKey(detrand.New("docstore-pir"), 128)
	if err != nil {
		t.Fatal(err)
	}
	for id := range docs {
		got, err := fetchPIR(sn, key, id)
		if err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		if !bytes.Equal(got, docs[id]) {
			t.Fatalf("fetch %d = %x, want %x", id, got, docs[id])
		}
	}
}

// fetchPIR runs the client side of a document fetch directly against a
// snapshot: one PIR execution per block, reassembled and truncated.
func fetchPIR(sn *Snapshot, key *pir.ClientKey, id int) ([]byte, error) {
	ext, ok := sn.Extent(id)
	if !ok {
		return nil, fmt.Errorf("no document %d", id)
	}
	out := make([]byte, 0, int(ext.Blocks)*sn.BlockSize())
	for i := 0; i < int(ext.Blocks); i++ {
		q, err := key.NewQuery(detrand.New(fmt.Sprintf("q-%d-%d", id, i)), sn.NumBlocks(), int(ext.First)+i)
		if err != nil {
			return nil, err
		}
		ans, _, err := sn.Answer(q)
		if err != nil {
			return nil, err
		}
		out = append(out, pir.ColumnBytes(key.Decode(ans))[:sn.BlockSize()]...)
	}
	return out[:ext.Length], nil
}

// TestAnswerPrefixWidth: a query narrower than the store (built from an
// older Params, before later appends) is answered over the prefix.
func TestAnswerPrefixWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	docs := testDocs(6, rng)
	s := mustStore(t, 8, docs)
	old := s.Snapshot()
	key, err := pir.GenerateKey(detrand.New("prefix-pir"), 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(len(docs), bytes.Repeat([]byte{0xEE}, 33)); err != nil {
		t.Fatal(err)
	}
	grown := s.Snapshot()
	// Query width = OLD block count, answered by the GROWN snapshot.
	ext, _ := old.Extent(2)
	var got []byte
	for i := 0; i < int(ext.Blocks); i++ {
		q, err := key.NewQuery(detrand.New(fmt.Sprintf("p-%d", i)), old.NumBlocks(), int(ext.First)+i)
		if err != nil {
			t.Fatal(err)
		}
		ans, _, err := grown.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pir.ColumnBytes(key.Decode(ans))[:old.BlockSize()]...)
	}
	if !bytes.Equal(got[:ext.Length], docs[2]) {
		t.Fatalf("prefix-width fetch = %x, want %x", got[:ext.Length], docs[2])
	}
	// Wider than the store is refused.
	q, err := key.NewQuery(detrand.New("wide"), grown.NumBlocks()+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := grown.Answer(q); err == nil {
		t.Fatal("over-wide query answered")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	docs := testDocs(25, rng)
	s := mustStore(t, 16, docs)
	for _, id := range []int{3, 11, 24} {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ln := loaded.Snapshot()
	if ln.NumDocs() != len(docs) || ln.NumBlocks() != s.Snapshot().NumBlocks() {
		t.Fatalf("shape mismatch: %d docs %d blocks", ln.NumDocs(), ln.NumBlocks())
	}
	for i, want := range docs {
		got, err := ln.Document(i)
		if i == 3 || i == 11 || i == 24 {
			if err == nil {
				t.Fatalf("deleted document %d resurrected by load", i)
			}
			continue
		}
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("Document(%d) after load: %v", i, err)
		}
	}
	// Absent marker round-trips to nil.
	buf.Reset()
	if _, err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	absent, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil || absent != nil {
		t.Fatalf("absent marker: store %v err %v", absent, err)
	}
}

func TestPersistRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	s := mustStore(t, 8, testDocs(10, rng))
	var buf bytes.Buffer
	if _, err := Write(&buf, s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, corrupt := range []func([]byte){
		func(b []byte) { b[len(b)/2] ^= 0x41 }, // payload flip
		func(b []byte) { b[len(b)-1] ^= 0x41 }, // checksum flip
		func(b []byte) { b[0] = 'X' },          // magic
	} {
		bad := append([]byte(nil), good...)
		corrupt(bad)
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatal("corrupt section accepted")
		}
	}
	for _, cut := range []int{0, 3, 6, len(good) / 2, len(good) - 1} {
		if _, err := Read(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestFromPartsRezeroesDeleted: a tampered file carrying live bytes in
// a deleted document's blocks loads with those blocks re-zeroed — the
// padding invariant is restored, not trusted.
func TestFromPartsRezeroesDeleted(t *testing.T) {
	raw := bytes.Repeat([]byte{0xAB}, 3*8)
	exts := []Extent{
		{First: 0, Blocks: 1, Length: 5, Crc: crc32.ChecksumIEEE(raw[:5])},
		{First: 1, Blocks: 2, Length: 9, Deleted: true},
	}
	s, err := FromParts(8, exts, raw)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	for b := 1; b <= 2; b++ {
		if !bytes.Equal(sn.blocks[b], make([]byte, 8)) {
			t.Fatalf("deleted block %d not re-zeroed on load", b)
		}
	}
	// Tiling violations are rejected.
	if _, err := FromParts(8, []Extent{{First: 1, Blocks: 1, Length: 3}}, raw[:16]); err == nil {
		t.Fatal("non-tiling extents accepted")
	}
	if _, err := FromParts(8, exts[:1], raw); err == nil {
		t.Fatal("uncovered trailing blocks accepted")
	}
	// Tampered live bytes fail the content checksum.
	bad := append([]byte(nil), raw...)
	bad[2] ^= 0x55
	if _, err := FromParts(8, exts, bad); err == nil {
		t.Fatal("checksum-violating document bytes accepted")
	}
}

func TestSnapshotIsolationUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	docs := testDocs(10, rng)
	s := mustStore(t, 8, docs)
	sn := s.Snapshot()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := s.Add(10+i, []byte("churn churn churn")); err != nil {
				t.Error(err)
				return
			}
			if err := s.Delete(i); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		id := i % 10
		got, err := sn.Document(id)
		if err != nil || !bytes.Equal(got, docs[id]) {
			t.Fatalf("pinned snapshot changed under churn: doc %d, %v", id, err)
		}
	}
	<-done
}

// TestAnswerExecMatchesMatrixUnderChurn is the acceptance property of
// the parallel serving path: under a random interleaving of adds and
// deletes, for EVERY live document and every one of its blocks, the
// windowed/parallel AnswerExec gammas are byte-identical to the
// sequential Answer AND to Matrix.Process over a materialized bit
// matrix of the same snapshot — and they decode to the stored block.
func TestAnswerExecMatchesMatrixUnderChurn(t *testing.T) {
	const blockSize = 8
	key, err := pir.GenerateKey(detrand.New("exec-churn-pir"), 96)
	if err != nil {
		t.Fatal(err)
	}
	execs := []pir.Exec{{}, {Workers: 2, Window: 3}, {Workers: 4, Window: 1}, {Workers: 3, Window: 8}}
	rng := rand.New(rand.NewSource(19))
	s := mustStore(t, blockSize, testDocs(6, rng))
	deleted := map[int]bool{}
	for op := 0; op < 8; op++ {
		// Churn: add a small batch or tombstone a live doc.
		if rng.Intn(2) == 0 || len(deleted) >= s.Snapshot().NumDocs()-2 {
			base := s.Snapshot().NumDocs()
			if err := s.AddBatch(base, testDocs(1+rng.Intn(2), rng)); err != nil {
				t.Fatalf("op %d add: %v", op, err)
			}
		} else {
			for {
				id := rng.Intn(s.Snapshot().NumDocs())
				if deleted[id] {
					continue
				}
				if err := s.Delete(id); err != nil {
					t.Fatalf("op %d delete %d: %v", op, id, err)
				}
				deleted[id] = true
				break
			}
		}

		sn := s.Snapshot()
		// Materialize the snapshot as the reference bit matrix.
		m := pir.NewMatrix(blockSize*8, sn.NumBlocks())
		for b := 0; b < sn.NumBlocks(); b++ {
			data, err := fetchBlockClear(sn, b)
			if err != nil {
				t.Fatal(err)
			}
			m.SetColumn(b, data)
		}
		for id := 0; id < sn.NumDocs(); id++ {
			ext, _ := sn.Extent(id)
			if ext.Deleted {
				continue
			}
			want, err := sn.Document(id)
			if err != nil {
				t.Fatalf("op %d doc %d: %v", op, id, err)
			}
			for b := 0; b < int(ext.Blocks); b++ {
				col := int(ext.First) + b
				q, err := key.NewQuery(detrand.New(fmt.Sprintf("ec-%d-%d-%d", op, id, b)), sn.NumBlocks(), col)
				if err != nil {
					t.Fatal(err)
				}
				ref, _, err := m.Process(q)
				if err != nil {
					t.Fatal(err)
				}
				seq, _, err := sn.Answer(q)
				if err != nil {
					t.Fatal(err)
				}
				for r := range ref.Gammas {
					if seq.Gammas[r].Cmp(ref.Gammas[r]) != 0 {
						t.Fatalf("op %d doc %d block %d row %d: Answer differs from Matrix.Process", op, id, b, r)
					}
				}
				for _, ex := range execs {
					got, _, err := sn.AnswerExec(q, ex)
					if err != nil {
						t.Fatalf("exec %+v: %v", ex, err)
					}
					for r := range ref.Gammas {
						if got.Gammas[r].Cmp(ref.Gammas[r]) != 0 {
							t.Fatalf("op %d doc %d block %d row %d exec %+v: gamma differs from Matrix.Process", op, id, b, r, ex)
						}
					}
				}
				// The decoded block carries the document's bytes for this
				// extent position (zero-padded past Length).
				lo := b * blockSize
				hi := lo + blockSize
				if hi > len(want) {
					hi = len(want)
				}
				dec := pir.ColumnBytes(key.Decode(seq))[:blockSize]
				if lo < len(want) && !bytes.Equal(dec[:hi-lo], want[lo:hi]) {
					t.Fatalf("op %d doc %d block %d: decoded bytes diverge", op, id, b)
				}
			}
		}
	}
	if len(deleted) == 0 {
		t.Fatal("churn never deleted anything; property undertested")
	}
}

// fetchBlockClear reads one raw block through the document extents —
// the test-side mirror of the layout (blocks are not exported).
func fetchBlockClear(sn *Snapshot, b int) ([]byte, error) {
	for id := 0; id < sn.NumDocs(); id++ {
		ext, _ := sn.Extent(id)
		if b < int(ext.First) || b >= int(ext.First)+int(ext.Blocks) {
			continue
		}
		if ext.Deleted {
			return make([]byte, sn.BlockSize()), nil
		}
		doc, err := sn.Document(id)
		if err != nil {
			return nil, err
		}
		out := make([]byte, sn.BlockSize())
		lo := (b - int(ext.First)) * sn.BlockSize()
		if lo < len(doc) {
			copy(out, doc[lo:])
		}
		return out, nil
	}
	return nil, fmt.Errorf("block %d not covered by any extent", b)
}

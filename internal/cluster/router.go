// Package cluster is the coordinator tier that lifts the engine's
// doc-mod-n parallelism from goroutines to processes: a Router serves
// the unchanged client wire protocol and scatter-gathers every request
// across partition worker processes, and a Replica tails a primary's
// write-ahead log over the wire to stay a warm failover target.
//
// The partitioning contract mirrors the in-process sharding proof from
// the ranking layer: per-partition encrypted score maps are disjoint,
// so the merged candidate set is a concatenation (re-sorted by global
// document id) and PIR answers over a column-partitioned block space
// combine by element-wise modular multiplication. Both merges are
// byte-exact — a client cannot distinguish the router from a single
// process holding the whole corpus.
//
// Identity across partitions is anchored by a shared template engine
// file: every worker (and every replica) loads the SAME engine file,
// which pins the bucket organization, the searchable dictionary and
// the quantization scale — the three things that must agree for one
// embellished query to be valid everywhere and for scores to merge
// byte-identically. Template documents (global id < Config.Base) exist
// on every partition; documents ingested afterwards (id >= Base) are
// owned by partition (id-Base) mod n and live there under the dense
// local id Base + (id-Base)/n.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"embellish/internal/wire"
)

// Defaults for the per-partition request policy.
const (
	// DefaultDeadline bounds one partition attempt (dial + request +
	// response read).
	DefaultDeadline = 10 * time.Second
	// DefaultRetries is the attempts beyond the first for one partition
	// request; with a replica configured, odd attempts land on it.
	DefaultRetries = 3
	// DefaultBackoff is the sleep before the first retry, doubling per
	// subsequent attempt (capped at maxBackoff).
	DefaultBackoff = 25 * time.Millisecond
	maxBackoff     = 1 * time.Second
	// maxPooledPerEndpoint caps idle pooled connections per endpoint.
	maxPooledPerEndpoint = 8
)

// Partition names one shard's servers.
type Partition struct {
	// Endpoints lists the partition's addresses, primary first, read
	// replicas after — the failover order. Reads retry across the whole
	// list; writes (admin frames) go to the primary only, because a
	// replica applies updates solely through WAL shipping.
	Endpoints []string
}

// Config describes the cluster a Router fronts.
type Config struct {
	// Base is the template corpus size — the number of documents in the
	// shared engine file every partition loaded. Global ids below Base
	// exist on every partition under their own id; ids at or above it
	// are owned by partition (id-Base) mod len(Partitions).
	Base int
	// Partitions is the shard list; its order defines partition
	// numbering and must match the assignment used at ingest time.
	Partitions []Partition
	// Deadline bounds one partition attempt; 0 selects DefaultDeadline,
	// negative disables per-attempt deadlines.
	Deadline time.Duration
	// Retries is the attempts beyond the first per partition request; 0
	// selects DefaultRetries, negative disables retries.
	Retries int
	// Backoff is the initial retry sleep, doubled per attempt; 0
	// selects DefaultBackoff, negative disables backoff.
	Backoff time.Duration
	// IdleTimeout closes a client connection when no request arrives
	// within the window. 0 disables the deadline.
	IdleTimeout time.Duration
}

// Router serves the client wire protocol over a partitioned cluster.
// Construct with NewRouter; a zero Router is not usable.
type Router struct {
	base     int
	n        int
	parts    []Partition
	deadline time.Duration
	retries  int
	backoff  time.Duration
	idle     time.Duration

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	pool      map[string][]net.Conn
	shutdown  bool

	accepted   atomic.Int64
	active     atomic.Int64
	inflight   atomic.Int64
	queries    atomic.Int64
	updates    atomic.Int64
	retrievals atomic.Int64
	errs       atomic.Int64

	retriesTotal   atomic.Int64
	failoversTotal atomic.Int64
	partRetries    []atomic.Int64
	partFailovers  []atomic.Int64
}

// NewRouter validates the topology and builds a router.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Partitions) == 0 {
		return nil, errors.New("cluster: no partitions configured")
	}
	for p, part := range cfg.Partitions {
		if len(part.Endpoints) == 0 {
			return nil, fmt.Errorf("cluster: partition %d has no endpoints", p)
		}
	}
	if cfg.Base < 0 {
		return nil, errors.New("cluster: negative partition base")
	}
	r := &Router{
		base:          cfg.Base,
		n:             len(cfg.Partitions),
		parts:         cfg.Partitions,
		deadline:      cfg.Deadline,
		retries:       cfg.Retries,
		backoff:       cfg.Backoff,
		idle:          cfg.IdleTimeout,
		listeners:     make(map[net.Listener]struct{}),
		conns:         make(map[net.Conn]struct{}),
		pool:          make(map[string][]net.Conn),
		partRetries:   make([]atomic.Int64, len(cfg.Partitions)),
		partFailovers: make([]atomic.Int64, len(cfg.Partitions)),
	}
	if r.deadline == 0 {
		r.deadline = DefaultDeadline
	}
	if r.retries == 0 {
		r.retries = DefaultRetries
	}
	if r.retries < 0 {
		r.retries = 0
	}
	if r.backoff == 0 {
		r.backoff = DefaultBackoff
	}
	if r.backoff < 0 {
		r.backoff = 0
	}
	return r, nil
}

// Map returns the topology as the wire message the router serves for
// TypeClusterMap.
func (r *Router) Map() wire.ClusterMap {
	m := wire.ClusterMap{Base: r.base, Partitions: make([][]string, r.n)}
	for p, part := range r.parts {
		m.Partitions[p] = append([]string(nil), part.Endpoints...)
	}
	return m
}

// ownerOf returns the partition owning global document id g.
func (r *Router) ownerOf(g int) int {
	if g < r.base {
		return g % r.n
	}
	return (g - r.base) % r.n
}

// localID translates a global document id to its owner-local id.
// Template ids keep their value; later ids compact to the owner's
// dense sequence.
func (r *Router) localID(g int) int {
	if g < r.base {
		return g
	}
	return r.base + (g-r.base)/r.n
}

// globalID translates partition p's local document id back to the
// cluster-global id.
func (r *Router) globalID(p, l int) int {
	if l < r.base {
		return l
	}
	return r.base + (l-r.base)*r.n + p
}

// peerError is an application-level refusal a partition answered with
// a well-formed TypeError frame. It is relayed to the client verbatim
// and never retried — the partition is healthy, the request is not.
type peerError struct{ body []byte }

func (e *peerError) Error() string { return string(e.body) }

// getConn pops a pooled connection to addr or dials a fresh one.
func (r *Router) getConn(addr string) (net.Conn, error) {
	r.mu.Lock()
	if cs := r.pool[addr]; len(cs) > 0 {
		c := cs[len(cs)-1]
		r.pool[addr] = cs[:len(cs)-1]
		r.mu.Unlock()
		return c, nil
	}
	if r.shutdown {
		r.mu.Unlock()
		return nil, errors.New("cluster: router is shut down")
	}
	r.mu.Unlock()
	timeout := r.deadline
	if timeout <= 0 {
		timeout = DefaultDeadline
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// putConn returns a healthy connection to the pool.
func (r *Router) putConn(addr string, c net.Conn) {
	r.mu.Lock()
	if r.shutdown || len(r.pool[addr]) >= maxPooledPerEndpoint {
		r.mu.Unlock()
		c.Close()
		return
	}
	r.pool[addr] = append(r.pool[addr], c)
	r.mu.Unlock()
}

// withEndpoint runs fn against partition p with bounded retry,
// exponential backoff and endpoint failover: attempt a uses endpoint
// a mod len(endpoints), so retries rotate primary, replica, primary,
// ... — a dead worker costs one failed attempt before its replica
// answers. writeOnly restricts the rotation to the primary (updates
// must not be applied on a replica; it receives them via WAL
// shipping). fn runs at most once per attempt and must be idempotent
// from the partition's point of view — every routed read is.
func (r *Router) withEndpoint(p int, writeOnly bool, fn func(conn net.Conn) error) error {
	eps := r.parts[p].Endpoints
	if writeOnly {
		eps = eps[:1]
	}
	attempts := r.retries + 1
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			r.retriesTotal.Add(1)
			r.partRetries[p].Add(1)
			if r.backoff > 0 {
				sleep := r.backoff << uint(a-1)
				if sleep > maxBackoff {
					sleep = maxBackoff
				}
				time.Sleep(sleep)
			}
		}
		addr := eps[a%len(eps)]
		if a%len(eps) != 0 {
			r.failoversTotal.Add(1)
			r.partFailovers[p].Add(1)
		}
		conn, err := r.getConn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if r.deadline > 0 {
			_ = conn.SetDeadline(time.Now().Add(r.deadline))
		}
		err = fn(conn)
		if err == nil {
			_ = conn.SetDeadline(time.Time{})
			r.putConn(addr, conn)
			return nil
		}
		var pe *peerError
		if errors.As(err, &pe) {
			// The partition answered; the connection is still in frame
			// sync and reusable. Relay without retrying.
			_ = conn.SetDeadline(time.Time{})
			r.putConn(addr, conn)
			return err
		}
		conn.Close()
		lastErr = err
	}
	return fmt.Errorf("cluster: partition %d unavailable after %d attempts: %w", p, attempts, lastErr)
}

// scatter runs fn once per partition in ps concurrently (each under
// withEndpoint's retry/failover policy) and returns the first error.
// A nil ps scatters to every partition.
func (r *Router) scatter(ps []int, writeOnly bool, fn func(p int, conn net.Conn) error) error {
	if ps == nil {
		ps = make([]int, r.n)
		for p := range ps {
			ps[p] = p
		}
	}
	if len(ps) == 1 {
		p := ps[0]
		return r.withEndpoint(p, writeOnly, func(c net.Conn) error { return fn(p, c) })
	}
	errs := make([]error, len(ps))
	var wg sync.WaitGroup
	for i, p := range ps {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			errs[i] = r.withEndpoint(p, writeOnly, func(c net.Conn) error { return fn(p, c) })
		}(i, p)
	}
	wg.Wait()
	// Prefer a peer refusal over a transport failure: it carries the
	// partition's own diagnosis and is what the client should see.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var pe *peerError
		if errors.As(err, &pe) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// Serve accepts client connections until the listener closes. Mirrors
// NetServer.Serve: each connection is handled in its own goroutine and
// a clean shutdown returns nil.
func (r *Router) Serve(l net.Listener) error {
	r.mu.Lock()
	if r.shutdown {
		r.mu.Unlock()
		l.Close()
		return errors.New("cluster: router is shut down")
	}
	r.listeners[l] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.listeners, l)
		r.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.shutdown {
			r.mu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.accepted.Add(1)
		r.active.Add(1)
		go func() {
			defer func() {
				conn.Close()
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
				r.active.Add(-1)
			}()
			_ = r.serveConn(conn, conn)
		}()
	}
}

// ServeConn serves the protocol on one already-established transport,
// for in-process wiring and tests.
func (r *Router) ServeConn(conn net.Conn) error {
	return r.serveConn(conn, conn)
}

// Shutdown closes the listeners, waits for in-flight requests (up to
// ctx), then closes every client and pooled worker connection.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	r.shutdown = true
	for l := range r.listeners {
		l.Close()
	}
	r.mu.Unlock()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	var err error
drain:
	for r.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break drain
		case <-tick.C:
		}
	}
	r.mu.Lock()
	for c := range r.conns {
		c.Close()
	}
	for addr, cs := range r.pool {
		for _, c := range cs {
			c.Close()
		}
		delete(r.pool, addr)
	}
	r.mu.Unlock()
	return err
}

// serveConn answers one client session. Malformed or unroutable
// requests get a wire error and the session survives; transport
// failures end it.
func (r *Router) serveConn(rw io.ReadWriter, deadliner net.Conn) error {
	// pirEpoch is the per-connection block-space snapshot: the
	// per-partition widths behind the merged params this connection was
	// last served. PIR queries are sliced against it, so a client
	// addressing blocks from the params it fetched keeps hitting
	// exactly those blocks even while other connections grow the store
	// (each partition only ever appends blocks).
	var epoch *pirEpoch
	for {
		if r.idle > 0 && deadliner != nil {
			_ = deadliner.SetReadDeadline(time.Now().Add(r.idle))
		}
		typ, body, err := wire.ReadMessage(rw)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if r.idle > 0 && deadliner != nil {
			_ = deadliner.SetReadDeadline(time.Time{})
		}
		r.inflight.Add(1)
		switch typ {
		case wire.TypeQuery:
			err = r.handleQuery(rw, body)
		case wire.TypeBatchQuery:
			err = r.handleBatch(rw, body)
		case wire.TypeAddDocs, wire.TypeDeleteDocs:
			err = r.handleAdmin(rw, typ, body)
		case wire.TypePIRParams:
			epoch, err = r.handlePIRParams(rw, body)
		case wire.TypePIRQuery:
			err = r.handlePIRQuery(rw, body, &epoch)
		case wire.TypePIRBatchQuery:
			err = r.handlePIRBatch(rw, body, &epoch)
		case wire.TypePIRRecursiveQuery:
			err = r.handlePIRRecursive(rw, body, &epoch)
		case wire.TypeStats:
			err = r.handleStats(rw, body)
		case wire.TypeClusterMap:
			err = r.handleClusterMap(rw, body)
		default:
			r.errs.Add(1)
			err = wire.WriteError(rw, fmt.Sprintf("%s %d", wire.UnknownTypeRefusal, typ))
		}
		r.inflight.Add(-1)
		if err != nil {
			return err
		}
	}
}

// refuse relays an error to the client: peer refusals verbatim,
// everything else under the router's own description.
func (r *Router) refuse(rw io.Writer, err error) error {
	r.errs.Add(1)
	var pe *peerError
	if errors.As(err, &pe) {
		return wire.WriteError(rw, pe.Error())
	}
	return wire.WriteError(rw, err.Error())
}

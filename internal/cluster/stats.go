package cluster

import "fmt"

// RouterStats is a snapshot of the router's own counters — the routing
// tier's view, as opposed to the aggregated partition view served over
// TypeStats.
type RouterStats struct {
	// Partitions is the configured shard count.
	Partitions int
	// Accepted and Active count client connections; Inflight counts
	// requests currently being routed.
	Accepted, Active, Inflight int64
	// Queries, Updates and Retrievals count routed requests by class
	// (batch frames count each member).
	Queries, Updates, Retrievals int64
	// Errors counts refusals written back to clients.
	Errors int64
	// Retries counts partition attempts beyond the first; Failovers
	// counts attempts that landed on a non-primary endpoint.
	Retries, Failovers int64
	// PartitionRetries and PartitionFailovers break the totals down per
	// partition — the fastest way to spot the one sick worker.
	PartitionRetries, PartitionFailovers []int64
}

// Stats snapshots the router's counters.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Partitions:         r.n,
		Accepted:           r.accepted.Load(),
		Active:             r.active.Load(),
		Inflight:           r.inflight.Load(),
		Queries:            r.queries.Load(),
		Updates:            r.updates.Load(),
		Retrievals:         r.retrievals.Load(),
		Errors:             r.errs.Load(),
		Retries:            r.retriesTotal.Load(),
		Failovers:          r.failoversTotal.Load(),
		PartitionRetries:   make([]int64, r.n),
		PartitionFailovers: make([]int64, r.n),
	}
	for p := 0; p < r.n; p++ {
		st.PartitionRetries[p] = r.partRetries[p].Load()
		st.PartitionFailovers[p] = r.partFailovers[p].Load()
	}
	return st
}

// MetricsText renders the router counters as a Prometheus-style text
// page for the embellish-router -metrics listener; per-partition
// breakdowns carry a partition label.
func (r *Router) MetricsText() []byte {
	st := r.Stats()
	var b []byte
	line := func(name string, v interface{}) {
		b = fmt.Appendf(b, "embellish_router_%s %v\n", name, v)
	}
	clamp := func(v int64) int64 {
		if v < 0 {
			return 0
		}
		return v
	}
	line("partitions", st.Partitions)
	line("connections_accepted_total", st.Accepted)
	line("connections_active", clamp(st.Active))
	line("inflight", clamp(st.Inflight))
	line("queries_total", st.Queries)
	line("updates_total", st.Updates)
	line("retrievals_total", st.Retrievals)
	line("errors_total", st.Errors)
	line("retries_total", st.Retries)
	line("failovers_total", st.Failovers)
	for p := 0; p < st.Partitions; p++ {
		b = fmt.Appendf(b, "embellish_router_partition_retries_total{partition=\"%d\"} %d\n", p, st.PartitionRetries[p])
		b = fmt.Appendf(b, "embellish_router_partition_failovers_total{partition=\"%d\"} %d\n", p, st.PartitionFailovers[p])
	}
	return b
}

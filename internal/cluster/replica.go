package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"embellish"
)

// Replica tails a primary's WAL over the wire protocol and applies the
// shipped records to a local engine. The replica's engine must itself
// be durable: applying through the public update path journals every
// shipped record locally, so the replica's WAL sequence tracks the
// primary's exactly — which is both the catch-up cursor and the
// staleness metric, and what makes the replica a drop-in failover
// target for reads.
type Replica struct {
	// Engine is the local engine replaying the primary's history. It
	// must have durability enabled (the WAL sequence is the cursor).
	Engine *embellish.Engine
	// Primary is the primary's wire-protocol address.
	Primary string
	// Interval is the polling period between catch-up rounds in Run;
	// zero means DefaultReplicaInterval.
	Interval time.Duration
	// DialTimeout bounds connection establishment; zero means the
	// router's DefaultDeadline.
	DialTimeout time.Duration

	mu         sync.Mutex
	conn       net.Conn
	primarySeq uint64
	haveSeq    bool
	lastErr    error
}

// DefaultReplicaInterval is the Run polling period when Interval is 0.
const DefaultReplicaInterval = 200 * time.Millisecond

// CatchUp pulls and applies WAL records until the replica has the
// primary's full history as of the start of the final pull. It returns
// the number of operations applied.
func (rp *Replica) CatchUp(ctx context.Context) (int, error) {
	if _, ok := rp.Engine.WALStatus(); !ok {
		return 0, fmt.Errorf("cluster: replica engine is not durable; the WAL sequence is the replication cursor")
	}
	applied := 0
	for {
		if err := ctx.Err(); err != nil {
			return applied, err
		}
		conn, err := rp.connect(ctx)
		if err != nil {
			rp.fail(err)
			return applied, err
		}
		st, _ := rp.Engine.WALStatus()
		chunk, err := embellish.PullWAL(conn, st.Seq)
		if err != nil {
			rp.dropConn()
			rp.fail(err)
			return applied, err
		}
		rp.mu.Lock()
		rp.primarySeq = chunk.PrimarySeq
		rp.haveSeq = true
		rp.lastErr = nil
		rp.mu.Unlock()
		n, err := rp.Engine.ApplyReplicated(chunk.Records)
		applied += n
		if err != nil {
			rp.fail(err)
			return applied, err
		}
		if !chunk.More && chunk.LastSeq >= chunk.PrimarySeq {
			return applied, nil
		}
	}
}

// Run polls CatchUp until the context ends. Transient failures (the
// primary restarting, a torn connection) are absorbed: the error is
// recorded for Status and the next tick retries from the replica's
// journaled cursor.
func (rp *Replica) Run(ctx context.Context) error {
	interval := rp.Interval
	if interval <= 0 {
		interval = DefaultReplicaInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		if _, err := rp.CatchUp(ctx); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			rp.dropConn()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// PrimarySeq reports the primary's WAL sequence as of the last
// successful pull; ok is false before the first contact. Wire it into
// NetServer.SetReplicaStatus so the replica's TypeStats exposes
// staleness.
func (rp *Replica) PrimarySeq() (uint64, bool) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.primarySeq, rp.haveSeq
}

// Err returns the most recent replication failure, nil when healthy.
func (rp *Replica) Err() error {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return rp.lastErr
}

func (rp *Replica) connect(ctx context.Context) (net.Conn, error) {
	rp.mu.Lock()
	if rp.conn != nil {
		c := rp.conn
		rp.mu.Unlock()
		return c, nil
	}
	rp.mu.Unlock()
	timeout := rp.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDeadline
	}
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var d net.Dialer
	c, err := d.DialContext(dctx, "tcp", rp.Primary)
	if err != nil {
		return nil, err
	}
	rp.mu.Lock()
	rp.conn = c
	rp.mu.Unlock()
	return c, nil
}

func (rp *Replica) dropConn() {
	rp.mu.Lock()
	if rp.conn != nil {
		rp.conn.Close()
		rp.conn = nil
	}
	rp.mu.Unlock()
}

func (rp *Replica) fail(err error) {
	rp.mu.Lock()
	rp.lastErr = err
	rp.mu.Unlock()
}

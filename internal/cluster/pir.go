package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"

	"embellish/internal/docstore"
	"embellish/internal/pir"
	"embellish/internal/wire"
)

// PIR routing. The cluster's block space is the concatenation of the
// partitions' block spaces (all partitions share one BlockSize, pinned
// by the template engine file): partition p's local block b is global
// block offset[p]+b. A KO-PIR answer factors across that split — gamma
// row i is the product over all columns of q_j^bit(i,j), so slicing
// the query's column vector at the partition boundaries, letting each
// partition answer over its own columns, and multiplying the per-
// partition gammas element-wise mod N reconstructs exactly the answer
// a single store holding the concatenated blocks would have computed.
//
// Addressing under churn: partitions only ever append blocks, so a
// partition's local block indices are stable, but the CONCATENATED
// offsets shift when an earlier partition grows. The router therefore
// slices every query against the epoch — the per-partition widths
// behind the params it served on that same connection. A sub-query
// sliced with epoch offsets has exactly the width the partition had at
// params time, which addresses the same local blocks regardless of
// later appends: the single-store prefix-stability property, preserved
// per partition.

// pirEpoch is one connection's merged-params snapshot.
type pirEpoch struct {
	offsets   []int // partition p's first column in the merged space
	widths    []int // partition p's NumBlocks at params time
	total     int   // sum of widths
	blockSize int   // the cluster-wide block size behind those widths
}

// gatherParams fetches every partition's current block mapping.
func (r *Router) gatherParams() ([]docstore.Params, error) {
	parts := make([]docstore.Params, r.n)
	err := r.scatter(nil, false, func(p int, conn net.Conn) error {
		if err := wire.WritePIRParamsRequest(conn); err != nil {
			return err
		}
		rbody, err := readReply(conn, wire.TypePIRParams)
		if err != nil {
			return err
		}
		pp, err := wire.DecodePIRParams(rbody)
		if err != nil {
			return err
		}
		parts[p] = pp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// mergeParams builds the cluster-global block mapping: blocks
// concatenate in partition order, and each global document's extent
// comes from its owner with First shifted by the owner's offset. The
// global extent table must come out dense — a hole means the corpus
// was not ingested through the router's round-robin assignment.
func (r *Router) mergeParams(parts []docstore.Params) (docstore.Params, *pirEpoch, error) {
	blockSize := parts[0].BlockSize
	ep := &pirEpoch{offsets: make([]int, r.n), widths: make([]int, r.n), blockSize: blockSize}
	for p, pp := range parts {
		if pp.BlockSize != blockSize {
			return docstore.Params{}, nil, fmt.Errorf("cluster: partition %d block size %d differs from partition 0's %d", p, pp.BlockSize, blockSize)
		}
		if len(pp.Exts) < r.base {
			return docstore.Params{}, nil, fmt.Errorf("cluster: partition %d stores %d documents, fewer than the template base %d", p, len(pp.Exts), r.base)
		}
		ep.offsets[p] = ep.total
		ep.widths[p] = pp.NumBlocks
		ep.total += pp.NumBlocks
	}
	nglobal := r.base
	for _, pp := range parts {
		nglobal += len(pp.Exts) - r.base
	}
	exts := make([]docstore.Extent, nglobal)
	seen := make([]bool, nglobal)
	for p, pp := range parts {
		for l, ext := range pp.Exts {
			var g int
			if l < r.base {
				if p != l%r.n {
					continue // template doc reported by its owner only
				}
				g = l
			} else {
				g = r.globalID(p, l)
			}
			if g >= nglobal || seen[g] {
				return docstore.Params{}, nil, fmt.Errorf("cluster: partition %d local doc %d maps to global id %d outside the dense corpus of %d", p, l, g, nglobal)
			}
			ext.First += uint32(ep.offsets[p])
			exts[g] = ext
			seen[g] = true
		}
	}
	for g, ok := range seen {
		if !ok {
			return docstore.Params{}, nil, fmt.Errorf("cluster: no partition stores global document %d; the corpus was not ingested round-robin", g)
		}
	}
	return docstore.Params{BlockSize: blockSize, NumBlocks: ep.total, Exts: exts}, ep, nil
}

// handlePIRParams serves the merged block mapping and returns the
// epoch it was built from, which becomes the connection's slicing
// snapshot for subsequent PIR queries.
func (r *Router) handlePIRParams(rw io.ReadWriter, body []byte) (*pirEpoch, error) {
	if len(body) != 0 {
		r.errs.Add(1)
		return nil, wire.WriteError(rw, "params request carries no body")
	}
	parts, err := r.gatherParams()
	if err != nil {
		return nil, r.refuse(rw, err)
	}
	merged, ep, err := r.mergeParams(parts)
	if err != nil {
		return nil, r.refuse(rw, err)
	}
	return ep, wire.WritePIRParams(rw, merged)
}

// sliceQuery cuts one global-column query into per-partition
// sub-queries under the epoch. Partitions whose column range lies
// entirely past the query's width are skipped (prefix addressing — the
// paper's protocol lets a narrow query address the store's prefix).
func (ep *pirEpoch) sliceQuery(q *pir.Query) (ps []int, subs []*pir.Query, err error) {
	w := len(q.Values)
	if w > ep.total {
		return nil, nil, fmt.Errorf("cluster: PIR query over %d columns exceeds the served block space of %d", w, ep.total)
	}
	for p := range ep.offsets {
		lo := ep.offsets[p]
		hi := lo + ep.widths[p]
		if hi > w {
			hi = w
		}
		if hi <= lo {
			continue
		}
		ps = append(ps, p)
		subs = append(subs, &pir.Query{N: q.N, Values: q.Values[lo:hi]})
	}
	if len(ps) == 0 {
		return nil, nil, fmt.Errorf("cluster: PIR query addresses no partition")
	}
	return ps, subs, nil
}

// combineAnswers multiplies per-partition gamma vectors element-wise
// mod n — the column-split factorization of the KO-PIR answer. Nil
// entries (partitions the query did not address) contribute the
// multiplicative identity.
func combineAnswers(n *big.Int, answers []*pir.Answer) (*pir.Answer, error) {
	var out *pir.Answer
	for _, a := range answers {
		if a == nil {
			continue
		}
		if out == nil {
			out = &pir.Answer{Gammas: make([]*big.Int, len(a.Gammas))}
			for i, g := range a.Gammas {
				out.Gammas[i] = new(big.Int).Set(g)
			}
			continue
		}
		if len(a.Gammas) != len(out.Gammas) {
			return nil, fmt.Errorf("cluster: partition answered %d gammas, expected %d", len(a.Gammas), len(out.Gammas))
		}
		for i, g := range a.Gammas {
			out.Gammas[i].Mul(out.Gammas[i], g)
			out.Gammas[i].Mod(out.Gammas[i], n)
		}
	}
	if out == nil {
		return nil, fmt.Errorf("cluster: no partition answers to combine")
	}
	return out, nil
}

// ensureEpoch returns the connection's slicing snapshot, establishing
// one from the partitions' current params if the client somehow sends
// a PIR query before fetching params on this connection.
func (r *Router) ensureEpoch(epoch **pirEpoch) (*pirEpoch, error) {
	if *epoch != nil {
		return *epoch, nil
	}
	parts, err := r.gatherParams()
	if err != nil {
		return nil, err
	}
	_, ep, err := r.mergeParams(parts)
	if err != nil {
		return nil, err
	}
	*epoch = ep
	return ep, nil
}

// handlePIRQuery routes one block query: slice at the partition
// boundaries, scatter, multiply the answers back together.
func (r *Router) handlePIRQuery(rw io.ReadWriter, body []byte, epoch **pirEpoch) error {
	q, err := wire.DecodePIRQuery(body)
	if err != nil {
		return r.refuse(rw, err)
	}
	ep, err := r.ensureEpoch(epoch)
	if err != nil {
		return r.refuse(rw, err)
	}
	ps, subs, err := ep.sliceQuery(q)
	if err != nil {
		return r.refuse(rw, err)
	}
	answers := make([]*pir.Answer, len(ps))
	err = r.scatter(ps, false, func(p int, conn net.Conn) error {
		var sub *pir.Query
		var slot int
		for i, pp := range ps {
			if pp == p {
				sub, slot = subs[i], i
			}
		}
		if err := wire.WritePIRQuery(conn, sub); err != nil {
			return err
		}
		rbody, err := readReply(conn, wire.TypePIRResponse)
		if err != nil {
			return err
		}
		a, err := wire.DecodePIRAnswer(rbody)
		if err != nil {
			return err
		}
		answers[slot] = a
		return nil
	})
	if err != nil {
		return r.refuse(rw, err)
	}
	combined, err := combineAnswers(q.N, answers)
	if err != nil {
		return r.refuse(rw, err)
	}
	r.retrievals.Add(1)
	return wire.WritePIRAnswer(rw, combined)
}

// handlePIRRecursive routes one recursive batch frame. The grid splits
// across partitions by BLOCK, not by selection-vector column: every
// partition receives the full Rows vector plus its epoch window
// (Offset, Span) onto the global grid and answers level 1 only — a raw
// gamma matrix in which cells outside its window are the
// multiplicative identity. The router multiplies the partial matrices
// element-wise (the same factorization combineAnswers exploits for
// flat queries) and runs level 2 locally — the only place the full
// matrix exists, so the level-2 scan never crosses the network. A
// partition holding fewer blocks than its epoch Span refuses (the
// stale-map symptom after a re-partition) and the refusal is relayed
// to the client verbatim.
func (r *Router) handlePIRRecursive(rw io.ReadWriter, body []byte, epoch **pirEpoch) error {
	qs, err := wire.DecodePIRRecursiveQuery(body)
	if err != nil {
		return r.refuse(rw, err)
	}
	// Clients address the whole grid; the windowed level-1-only form is
	// what the ROUTER sends downstream, never what it accepts.
	if len(qs[0].Cols) == 0 {
		return r.refuse(rw, errors.New("cluster: level-1-only recursive queries are router-internal"))
	}
	if qs[0].Offset != 0 || qs[0].Span != 0 {
		return r.refuse(rw, errors.New("cluster: recursive queries must address the full grid"))
	}
	ep, err := r.ensureEpoch(epoch)
	if err != nil {
		return r.refuse(rw, err)
	}
	w := qs[0].Width
	if w > ep.total {
		return r.refuse(rw, fmt.Errorf("cluster: recursive grid over %d blocks exceeds the served block space of %d", w, ep.total))
	}
	// Partitions the grid overlaps, each with its window (prefix
	// addressing clamps the last one, exactly like sliceQuery).
	var targets []int
	los := make([]int, r.n)
	spans := make([]int, r.n)
	for p := 0; p < r.n; p++ {
		lo := ep.offsets[p]
		hi := lo + ep.widths[p]
		if hi > w {
			hi = w
		}
		if hi <= lo {
			continue
		}
		targets = append(targets, p)
		los[p], spans[p] = lo, hi-lo
	}
	if len(targets) == 0 {
		return r.refuse(rw, errors.New("cluster: recursive query addresses no partition"))
	}
	// partials[qi][p] is partition p's level-1 matrix for batch member qi.
	partials := make([][]*pir.Answer, len(qs))
	for qi := range partials {
		partials[qi] = make([]*pir.Answer, r.n)
	}
	wantCells := qs[0].GridCols * ep.blockSize * 8
	err = r.scatter(targets, false, func(p int, conn net.Conn) error {
		subs := make([]*pir.RecursiveQuery, len(qs))
		for qi, q := range qs {
			subs[qi] = &pir.RecursiveQuery{
				N:        q.N,
				Width:    q.Width,
				GridCols: q.GridCols,
				Offset:   los[p],
				Span:     spans[p],
				Rows:     q.Rows,
			}
		}
		if err := wire.WritePIRRecursiveQuery(conn, subs); err != nil {
			return err
		}
		got := make([]*pir.Answer, len(subs))
		for range subs {
			rbody, err := readReply(conn, wire.TypePIRBatchResponse)
			if err != nil {
				return err
			}
			idx, a, err := wire.DecodePIRBatchAnswer(rbody)
			if err != nil {
				return err
			}
			if idx < 0 || idx >= len(got) || got[idx] != nil {
				return fmt.Errorf("cluster: partition %d answered recursive index %d out of order", p, idx)
			}
			got[idx] = a
		}
		for qi, a := range got {
			if len(a.Gammas) != wantCells {
				return fmt.Errorf("cluster: partition %d answered %d level-1 cells, want %d", p, len(a.Gammas), wantCells)
			}
			partials[qi][p] = a
		}
		return nil
	})
	if err != nil {
		return r.refuse(rw, err)
	}
	for qi, q := range qs {
		combined, err := combineAnswers(q.N, partials[qi])
		if err != nil {
			return r.refuse(rw, err)
		}
		ans, _, err := pir.RecursiveLevel2(context.Background(), q, combined.Gammas, ep.blockSize, pir.Exec{})
		if err != nil {
			return r.refuse(rw, err)
		}
		if err := wire.WritePIRBatchAnswer(rw, qi, ans); err != nil {
			return err
		}
	}
	r.retrievals.Add(int64(len(qs)))
	return nil
}

// handlePIRBatch routes one batch frame: each query is sliced, every
// partition gets one sub-batch of the slices addressed to it, and the
// combined answers stream back to the client strictly in batch order
// (the protocol's contract). A worker death mid-stream fails that
// partition's whole sub-batch, and withEndpoint replays it against the
// replica — reads are idempotent, so the retry is invisible beyond the
// latency.
func (r *Router) handlePIRBatch(rw io.ReadWriter, body []byte, epoch **pirEpoch) error {
	qs, err := wire.DecodePIRBatchQuery(body)
	if err != nil {
		return r.refuse(rw, err)
	}
	ep, err := r.ensureEpoch(epoch)
	if err != nil {
		return r.refuse(rw, err)
	}
	// Per partition: which batch members address it, and with what
	// slice.
	perQIs := make([][]int, r.n)
	perSubs := make([][]*pir.Query, r.n)
	for qi, q := range qs {
		ps, subs, err := ep.sliceQuery(q)
		if err != nil {
			return r.refuse(rw, err)
		}
		for i, p := range ps {
			perQIs[p] = append(perQIs[p], qi)
			perSubs[p] = append(perSubs[p], subs[i])
		}
	}
	var targets []int
	for p := 0; p < r.n; p++ {
		if len(perQIs[p]) > 0 {
			targets = append(targets, p)
		}
	}
	// answers[qi][p] is partition p's gamma vector for batch member qi.
	answers := make([][]*pir.Answer, len(qs))
	for qi := range answers {
		answers[qi] = make([]*pir.Answer, r.n)
	}
	err = r.scatter(targets, false, func(p int, conn net.Conn) error {
		if err := wire.WritePIRBatchQuery(conn, perSubs[p]); err != nil {
			return err
		}
		// One streamed frame per sub-batch member; indexes are the
		// positions in the SUB-batch, mapped back through perQIs.
		got := make([]*pir.Answer, len(perSubs[p]))
		for range perSubs[p] {
			rbody, err := readReply(conn, wire.TypePIRBatchResponse)
			if err != nil {
				return err
			}
			idx, a, err := wire.DecodePIRBatchAnswer(rbody)
			if err != nil {
				return err
			}
			if idx < 0 || idx >= len(got) || got[idx] != nil {
				return fmt.Errorf("cluster: partition %d answered batch index %d out of order", p, idx)
			}
			got[idx] = a
		}
		for i, a := range got {
			answers[perQIs[p][i]][p] = a
		}
		return nil
	})
	if err != nil {
		return r.refuse(rw, err)
	}
	for qi, q := range qs {
		combined, err := combineAnswers(q.N, answers[qi])
		if err != nil {
			return r.refuse(rw, err)
		}
		if err := wire.WritePIRBatchAnswer(rw, qi, combined); err != nil {
			return err
		}
	}
	r.retrievals.Add(int64(len(qs)))
	return nil
}

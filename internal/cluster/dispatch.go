package cluster

import (
	"fmt"
	"io"
	"net"
	"sort"

	"embellish/internal/index"
	"embellish/internal/wire"
)

// readReply reads one frame from a partition and classifies it: the
// wanted type returns its body, a TypeError becomes a peerError (relay,
// don't retry), anything else is a protocol failure.
func readReply(conn net.Conn, want byte) ([]byte, error) {
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	switch typ {
	case want:
		return body, nil
	case wire.TypeError:
		return nil, &peerError{body: append([]byte(nil), body...)}
	default:
		return nil, fmt.Errorf("cluster: partition answered type %d, wanted %d", typ, want)
	}
}

// mergeCandidates concatenates per-partition candidate sets into the
// global id space: local ids are rewritten through globalID, template
// documents (held by every partition) are taken from their owner only,
// and the result is re-sorted ascending by global id — the same order
// a single-process engine emits, so the merge is byte-transparent.
func (r *Router) mergeCandidates(parts [][]wire.Candidate) []wire.Candidate {
	total := 0
	for _, cs := range parts {
		total += len(cs)
	}
	out := make([]wire.Candidate, 0, total)
	for p, cs := range parts {
		for _, c := range cs {
			l := int(c.Doc)
			if l < r.base && l%r.n != p {
				continue
			}
			out = append(out, wire.Candidate{Doc: index.DocID(r.globalID(p, l)), Enc: c.Enc})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// sumStats folds per-partition cost figures into the response tail:
// the cluster's work is the sum of its partitions' work.
func sumStats(parts []wire.ResponseStats) wire.ResponseStats {
	var out wire.ResponseStats
	for _, st := range parts {
		out.Postings += st.Postings
		out.Seeks += st.Seeks
		out.IOBytes += st.IOBytes
	}
	return out
}

// handleQuery scatter-gathers one embellished query: the client frame
// is forwarded to every partition verbatim (the shared template engine
// pins one bucket organization, so the same term ids and ciphertexts
// are valid everywhere), and the disjoint per-partition score maps
// merge by concatenation.
func (r *Router) handleQuery(rw io.ReadWriter, body []byte) error {
	parts := make([][]wire.Candidate, r.n)
	stats := make([]wire.ResponseStats, r.n)
	err := r.scatter(nil, false, func(p int, conn net.Conn) error {
		if err := wire.WriteRaw(conn, wire.TypeQuery, body); err != nil {
			return err
		}
		rbody, err := readReply(conn, wire.TypeResponse)
		if err != nil {
			return err
		}
		cands, st, err := wire.DecodeResponse(rbody)
		if err != nil {
			return err
		}
		parts[p], stats[p] = cands, st
		return nil
	})
	if err != nil {
		return r.refuse(rw, err)
	}
	r.queries.Add(1)
	return wire.WriteCandidateResponse(rw, r.mergeCandidates(parts), sumStats(stats))
}

// handleBatch is handleQuery over a whole batch frame: one forward per
// partition, then a per-query merge in batch order.
func (r *Router) handleBatch(rw io.ReadWriter, body []byte) error {
	parts := make([][][]wire.Candidate, r.n)
	stats := make([][]wire.ResponseStats, r.n)
	err := r.scatter(nil, false, func(p int, conn net.Conn) error {
		if err := wire.WriteRaw(conn, wire.TypeBatchQuery, body); err != nil {
			return err
		}
		rbody, err := readReply(conn, wire.TypeBatchResponse)
		if err != nil {
			return err
		}
		cands, sts, err := wire.DecodeBatchResponse(rbody)
		if err != nil {
			return err
		}
		parts[p], stats[p] = cands, sts
		return nil
	})
	if err != nil {
		return r.refuse(rw, err)
	}
	nq := len(parts[0])
	for p := 1; p < r.n; p++ {
		if len(parts[p]) != nq {
			return r.refuse(rw, fmt.Errorf("cluster: partition %d answered %d queries, partition 0 answered %d", p, len(parts[p]), nq))
		}
	}
	merged := make([][]wire.Candidate, nq)
	mstats := make([]wire.ResponseStats, nq)
	per := make([][]wire.Candidate, r.n)
	sts := make([]wire.ResponseStats, r.n)
	for qi := 0; qi < nq; qi++ {
		for p := 0; p < r.n; p++ {
			per[p] = parts[p][qi]
			sts[p] = stats[p][qi]
		}
		merged[qi] = r.mergeCandidates(per)
		mstats[qi] = sumStats(sts)
	}
	r.queries.Add(int64(nq))
	return wire.WriteCandidateBatchResponse(rw, merged, mstats)
}

// handleAdmin routes one corpus update to the owning partitions with
// ids rewritten to each partition's local space. Adds go to the single
// owner of each new id; deletes of template ids (held everywhere) fan
// to every partition. Updates are applied on primaries only — replicas
// receive them through WAL shipping — and are NOT failed over: a
// half-applied write replayed against a replica could fork the two
// histories. The ack sums the live-doc and segment counts of the
// partitions this frame touched.
func (r *Router) handleAdmin(rw io.ReadWriter, typ byte, body []byte) error {
	perDocs := make([][]wire.DocText, r.n)
	perIDs := make([][]uint32, r.n)
	switch typ {
	case wire.TypeAddDocs:
		dts, err := wire.DecodeAddDocs(body)
		if err != nil {
			return r.refuse(rw, err)
		}
		for _, d := range dts {
			g := int(d.ID)
			if g < r.base {
				return r.refuse(rw, fmt.Errorf("cluster: document id %d is below the partition base %d (template ids are fixed at build time)", g, r.base))
			}
			p := r.ownerOf(g)
			perDocs[p] = append(perDocs[p], wire.DocText{ID: uint32(r.localID(g)), Text: d.Text})
		}
	case wire.TypeDeleteDocs:
		ids, err := wire.DecodeDeleteDocs(body)
		if err != nil {
			return r.refuse(rw, err)
		}
		for _, id := range ids {
			g := int(id)
			if g < r.base {
				for p := 0; p < r.n; p++ {
					perIDs[p] = append(perIDs[p], uint32(g))
				}
				continue
			}
			p := r.ownerOf(g)
			perIDs[p] = append(perIDs[p], uint32(r.localID(g)))
		}
		for p := range perIDs {
			sort.Slice(perIDs[p], func(i, j int) bool { return perIDs[p][i] < perIDs[p][j] })
		}
	}
	var targets []int
	for p := 0; p < r.n; p++ {
		if len(perDocs[p]) > 0 || len(perIDs[p]) > 0 {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return r.refuse(rw, fmt.Errorf("cluster: empty admin frame"))
	}
	lives := make([]int, r.n)
	segs := make([]int, r.n)
	err := r.scatter(targets, true, func(p int, conn net.Conn) error {
		var werr error
		if typ == wire.TypeAddDocs {
			werr = wire.WriteAddDocs(conn, perDocs[p])
		} else {
			werr = wire.WriteDeleteDocs(conn, perIDs[p])
		}
		if werr != nil {
			return werr
		}
		rbody, err := readReply(conn, wire.TypeAdminOK)
		if err != nil {
			return err
		}
		live, seg, err := wire.DecodeAdminOK(rbody)
		if err != nil {
			return err
		}
		lives[p], segs[p] = live, seg
		return nil
	})
	if err != nil {
		return r.refuse(rw, err)
	}
	r.updates.Add(1)
	live, seg := 0, 0
	for _, p := range targets {
		live += lives[p]
		seg += segs[p]
	}
	return wire.WriteAdminOK(rw, live, seg)
}

// handleStats aggregates the cluster's counters: partition totals are
// summed (watermarks take the max), and the router's own routing
// counters ride in the appended RouterPartitions/Retries/Failovers
// fields. Like the single-process server it is served without touching
// the request path's admission machinery.
func (r *Router) handleStats(rw io.ReadWriter, body []byte) error {
	if len(body) != 0 {
		r.errs.Add(1)
		return wire.WriteError(rw, "stats request carries no body")
	}
	parts := make([]wire.Stats, r.n)
	err := r.scatter(nil, false, func(p int, conn net.Conn) error {
		if err := wire.WriteStatsRequest(conn); err != nil {
			return err
		}
		rbody, err := readReply(conn, wire.TypeStats)
		if err != nil {
			return err
		}
		st, err := wire.DecodeStats(rbody)
		if err != nil {
			return err
		}
		parts[p] = st
		return nil
	})
	if err != nil {
		return r.refuse(rw, err)
	}
	agg := wire.Stats{Durable: 1}
	maxU := func(dst *uint64, v uint64) {
		if v > *dst {
			*dst = v
		}
	}
	for _, st := range parts {
		agg.Accepted += st.Accepted
		agg.Rejected += st.Rejected
		agg.Active += st.Active
		agg.Queries += st.Queries
		agg.Updates += st.Updates
		agg.Retrievals += st.Retrievals
		agg.Errors += st.Errors
		agg.QueryNs += st.QueryNs
		maxU(&agg.MaxQueryNs, st.MaxQueryNs)
		agg.Inflight += st.Inflight
		agg.Queued += st.Queued
		agg.QueuedTotal += st.QueuedTotal
		agg.QueueWaitNs += st.QueueWaitNs
		maxU(&agg.MaxQueueWaitNs, st.MaxQueueWaitNs)
		agg.ShedQueueFull += st.ShedQueueFull
		agg.ShedQueueTimeout += st.ShedQueueTimeout
		agg.Deadlines += st.Deadlines
		if st.Durable == 0 {
			agg.Durable = 0
		}
		maxU(&agg.WALSeq, st.WALSeq)
		maxU(&agg.WALCheckpointSeq, st.WALCheckpointSeq)
		maxU(&agg.CheckpointAgeNs, st.CheckpointAgeNs)
		agg.PIRModMuls += st.PIRModMuls
		agg.PIRTableMuls += st.PIRTableMuls
		agg.PIRRecursiveQueries += st.PIRRecursiveQueries
		agg.PIRRecursivePartials += st.PIRRecursivePartials
		maxU(&agg.ReplPrimarySeq, st.ReplPrimarySeq)
		agg.ReplLagOps += st.ReplLagOps
		agg.DecoyQueries += st.DecoyQueries
		agg.RiskAudited += st.RiskAudited
		agg.RiskSkipped += st.RiskSkipped
		agg.RiskSumMicros += st.RiskSumMicros
	}
	agg.RouterPartitions = uint64(r.n)
	agg.RouterRetries = uint64(r.retriesTotal.Load())
	agg.RouterFailovers = uint64(r.failoversTotal.Load())
	return wire.WriteStats(rw, agg)
}

// handleClusterMap serves the configured topology.
func (r *Router) handleClusterMap(rw io.ReadWriter, body []byte) error {
	if len(body) != 0 {
		r.errs.Add(1)
		return wire.WriteError(rw, "cluster map request carries no body")
	}
	return wire.WriteClusterMap(rw, r.Map())
}

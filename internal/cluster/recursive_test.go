// Recursive PIR through the router: the grid splits across partitions
// by block, each partition answers level 1 only over its window, and
// the router combines the partial matrices and runs level 2 locally.
// The proof obligations mirror the flat battery: byte-identity against
// a single-process reference on the same corpus, and a loud refusal —
// never silent corruption — when the router's block map has gone stale
// against a re-partitioned cluster.
package cluster_test

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"

	"embellish"
	"embellish/internal/detrand"
	"embellish/internal/pir"
	"embellish/internal/wire"
)

// TestClusterRecursiveByteIdentity: a recursive fetch routed across
// three partitions returns the exact bytes a single-process engine
// serves, with the recursive upload savings intact and the partition
// legs visible in the aggregated stats.
func TestClusterRecursiveByteIdentity(t *testing.T) {
	w := newWorld(t)
	w.grow(t, 9)
	fetchIDs := []int{templateDocs, templateDocs + 4, templateDocs + 7}

	refDocs, refSt, err := w.client.FetchDocumentsRemote(w.refConn, fetchIDs)
	if err != nil {
		t.Fatalf("reference flat fetch: %v", err)
	}
	_, flatSt, err := w.client.FetchDocumentsRemote(w.routerConn, fetchIDs)
	if err != nil {
		t.Fatalf("router flat fetch: %v", err)
	}

	w.client.SetFetchRecursive(true)
	defer w.client.SetFetchRecursive(false)
	recRef, _, err := w.client.FetchDocumentsRemote(w.refConn, fetchIDs)
	if err != nil {
		t.Fatalf("reference recursive fetch: %v", err)
	}
	recDocs, recSt, err := w.client.FetchDocumentsRemote(w.routerConn, fetchIDs)
	if err != nil {
		t.Fatalf("router recursive fetch: %v", err)
	}
	for i, id := range fetchIDs {
		if string(refDocs[i]) != w.texts[id] {
			t.Fatalf("reference fetched doc %d mangled: %q", id, refDocs[i])
		}
		if !bytes.Equal(recDocs[i], refDocs[i]) {
			t.Fatalf("router recursive fetch of doc %d differs from reference: %q vs %q", id, recDocs[i], refDocs[i])
		}
		if !bytes.Equal(recRef[i], refDocs[i]) {
			t.Fatalf("reference recursive fetch of doc %d differs from its flat fetch", id)
		}
	}
	if recSt.Runs != refSt.Runs {
		t.Fatalf("recursive fetch ran %d executions, flat ran %d", recSt.Runs, refSt.Runs)
	}
	// The upload win survives routing: the router sees the same two
	// sqrt-sized vectors a single process would.
	if recSt.QueryBytes >= flatSt.QueryBytes {
		t.Fatalf("recursive routed fetch uploaded %d query bytes, flat %d", recSt.QueryBytes, flatSt.QueryBytes)
	}
	// Partition legs are level-1-only answers, counted by the workers
	// and surfaced through the router's aggregated stats.
	agg, err := embellish.ServerStats(w.routerConn)
	if err != nil {
		t.Fatalf("router stats: %v", err)
	}
	if agg.PIRRecursivePartials == 0 {
		t.Fatal("no recursive partition legs counted across the cluster")
	}
	if agg.PIRRecursiveQueries != agg.PIRRecursivePartials {
		t.Fatalf("workers counted %d recursive queries but %d partials; clients never send level-1-only frames",
			agg.PIRRecursiveQueries, agg.PIRRecursivePartials)
	}
}

// TestClusterRecursiveStaleMapRefused: a router slicing against an
// epoch from before a re-partition must be refused by the shrunken
// partition — the Span handshake — and relay that refusal to the
// client instead of combining matrices from mismatched grids.
func TestClusterRecursiveStaleMapRefused(t *testing.T) {
	w := newWorld(t)
	w.grow(t, 9)

	// Pin the epoch on a raw connection: params first, exactly like a
	// client, so the router caches this connection's slicing snapshot.
	conn := dial(t, w.routerAddr)
	if err := wire.WritePIRParamsRequest(conn); err != nil {
		t.Fatal(err)
	}
	body, err := readTyped(t, conn, wire.TypePIRParams)
	if err != nil {
		t.Fatalf("params via router: %v", err)
	}
	params, err := wire.DecodePIRParams(body)
	if err != nil {
		t.Fatal(err)
	}

	// Re-partition: worker 2 is replaced by a fresh template-only
	// engine at the same endpoint — fewer stored blocks than the epoch
	// credits it with.
	if err := w.workerSrvs[2].Shutdown(context.Background()); err != nil {
		t.Fatalf("stopping worker 2: %v", err)
	}
	raw, _ := templateEngine(t)
	fresh := loadEngine(t, raw, false)
	l, err := net.Listen("tcp", w.workerAddrs[2])
	if err != nil {
		t.Fatalf("rebinding worker 2 endpoint: %v", err)
	}
	srv := fresh.NewNetServer(embellish.ServeConfig{AllowRetrieval: true})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })

	key, err := pir.GenerateKey(detrand.New("stale-map"), 96)
	if err != nil {
		t.Fatal(err)
	}
	q, err := key.NewRecursiveQuery(detrand.New("stale-map-q"), params.NumBlocks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WritePIRRecursiveQuery(conn, []*pir.RecursiveQuery{q}); err != nil {
		t.Fatal(err)
	}
	typ, ebody, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeError {
		t.Fatalf("stale-epoch recursive query answered type %d, want a refusal", typ)
	}
	if !strings.Contains(string(ebody), "re-partitioned") {
		t.Fatalf("refusal does not name the stale map: %s", ebody)
	}
}

// readTyped reads one frame, failing the test on transport errors and
// returning a peer refusal as an error.
func readTyped(t *testing.T, conn net.Conn, want byte) ([]byte, error) {
	t.Helper()
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	switch typ {
	case want:
		return body, nil
	case wire.TypeError:
		return nil, &refusalError{string(body)}
	default:
		t.Fatalf("answered type %d, wanted %d", typ, want)
		return nil, nil
	}
}

type refusalError struct{ msg string }

func (e *refusalError) Error() string { return e.msg }

// The cluster battery: a three-partition router fronting real worker
// processes (in-process NetServers over TCP loopback), proven
// byte-transparent against a single-process reference engine that was
// fed the exact same corpus. The tests cover the full serving surface
// (single queries, batches, PIR document fetches, admin updates,
// stats, the cluster map), WAL-shipped replica catch-up, and failover:
// a partition primary dies mid-traffic and every answer keeps coming
// back bit-identical via its replica.
package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"embellish"
	"embellish/internal/cluster"
	"embellish/internal/detrand"
	"embellish/internal/wire"
	"embellish/internal/wordnet"
)

// templateDocs is the template corpus size — Config.Base for every
// router in the battery.
const templateDocs = 24

func lemmaList() []string {
	db := wordnet.MiniLexicon()
	var lemmas []string
	for _, tm := range db.AllTerms() {
		lemmas = append(lemmas, db.Lemma(tm))
	}
	return lemmas
}

// docText mirrors the root package's store-world fixture: the same id
// always yields the same bytes, so the reference engine and the
// cluster can be grown identically from two independent call sites.
func docText(id int, lemmas []string) string {
	var b strings.Builder
	for j := 0; j < 3+id%3; j++ {
		b.WriteString(lemmas[1+(id*5+j*3)%24])
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "#doc-%d", id)
	return b.String()
}

// tmpl caches the shared template engine file: building it costs two
// keypairs, and every engine in the battery loads the SAME bytes —
// which is the cluster's identity contract, not just a test shortcut.
var tmpl struct {
	once  sync.Once
	raw   []byte
	texts map[int]string
	err   error
}

func templateEngine(t *testing.T) ([]byte, map[int]string) {
	t.Helper()
	tmpl.once.Do(func() {
		lemmas := lemmaList()
		texts := make(map[int]string, templateDocs)
		docs := make([]embellish.Document, templateDocs)
		for i := range docs {
			texts[i] = docText(i, lemmas)
			docs[i] = embellish.Document{ID: i, Text: texts[i]}
		}
		opts := embellish.DefaultOptions()
		opts.BucketSize = 4
		opts.KeyBits = 256
		opts.ScoreSpace = 10
		opts.StoreDocuments = true
		opts.BlockSize = 128
		opts.RetrievalKeyBits = 96
		e, err := embellish.NewEngine(embellish.MiniLexicon(), docs, opts)
		if err != nil {
			tmpl.err = err
			return
		}
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			tmpl.err = err
			return
		}
		tmpl.raw, tmpl.texts = buf.Bytes(), texts
	})
	if tmpl.err != nil {
		t.Fatalf("building template engine: %v", tmpl.err)
	}
	return tmpl.raw, tmpl.texts
}

// loadEngine loads one cluster member from the template bytes. Merges
// are disabled everywhere: with one segment per ingested document,
// per-segment statistics — and therefore score ciphertexts — cannot
// depend on which engine holds the document.
func loadEngine(t *testing.T, raw []byte, durable bool) *embellish.Engine {
	t.Helper()
	e, err := embellish.LoadEngine(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("loading template: %v", err)
	}
	if err := e.ConfigureMergePolicy(-1); err != nil {
		t.Fatal(err)
	}
	if durable {
		d := embellish.Durability{Dir: t.TempDir(), Fsync: embellish.FsyncEveryRecord, CheckpointEveryOps: -1, CheckpointEveryBytes: -1}
		if err := e.EnableDurability(d); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func serve(t *testing.T, e *embellish.Engine, cfg embellish.ServeConfig) (string, *embellish.NetServer) {
	t.Helper()
	srv := e.NewNetServer(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return l.Addr().String(), srv
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// world is one running battery: a reference engine and a 3-partition
// cluster (partition 1 carrying a WAL-shipped replica), all loaded
// from the same template file.
type world struct {
	lemmas []string
	texts  map[int]string

	ref     *embellish.Engine
	refConn net.Conn
	client  *embellish.Client

	workers     []*embellish.Engine
	workerSrvs  []*embellish.NetServer
	workerAddrs []string

	replica     *embellish.Engine
	replicaAddr string

	router     *cluster.Router
	routerAddr string
	routerConn net.Conn
}

func newWorld(t *testing.T) *world {
	t.Helper()
	raw, texts := templateEngine(t)
	w := &world{lemmas: lemmaList(), texts: make(map[int]string, len(texts))}
	for id, txt := range texts {
		w.texts[id] = txt
	}

	w.ref = loadEngine(t, raw, false)
	refAddr, _ := serve(t, w.ref, embellish.ServeConfig{AllowUpdates: true, AllowRetrieval: true})
	w.refConn = dial(t, refAddr)
	client, err := w.ref.NewClient(detrand.New("cluster-battery"))
	if err != nil {
		t.Fatal(err)
	}
	w.client = client

	for i := 0; i < 3; i++ {
		e := loadEngine(t, raw, true)
		addr, srv := serve(t, e, embellish.ServeConfig{AllowUpdates: true, AllowRetrieval: true, AllowReplication: true})
		w.workers = append(w.workers, e)
		w.workerSrvs = append(w.workerSrvs, srv)
		w.workerAddrs = append(w.workerAddrs, addr)
	}
	w.replica = loadEngine(t, raw, true)
	w.replicaAddr, _ = serve(t, w.replica, embellish.ServeConfig{AllowRetrieval: true})

	r, err := cluster.NewRouter(cluster.Config{
		Base: templateDocs,
		Partitions: []cluster.Partition{
			{Endpoints: []string{w.workerAddrs[0]}},
			{Endpoints: []string{w.workerAddrs[1], w.replicaAddr}},
			{Endpoints: []string{w.workerAddrs[2]}},
		},
		Deadline: 5 * time.Second,
		Backoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.router = r
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(l)
	t.Cleanup(func() { r.Shutdown(context.Background()) })
	w.routerAddr = l.Addr().String()
	w.routerConn = dial(t, w.routerAddr)
	return w
}

// grow retires the template corpus and ingests n fresh documents —
// through the router on the cluster side, directly over the wire on
// the reference side — one document per frame, so every engine ends up
// with one segment per document and identical per-segment statistics.
func (w *world) grow(t *testing.T, n int) {
	t.Helper()
	ids := make([]int, templateDocs)
	for i := range ids {
		ids[i] = i
	}
	if _, err := embellish.DeleteDocumentsRemote(w.routerConn, ids); err != nil {
		t.Fatalf("deleting template corpus via router: %v", err)
	}
	if _, err := embellish.DeleteDocumentsRemote(w.refConn, ids); err != nil {
		t.Fatalf("deleting template corpus on reference: %v", err)
	}
	for g := templateDocs; g < templateDocs+n; g++ {
		text := docText(g, w.lemmas)
		w.texts[g] = text
		doc := []embellish.Document{{ID: g, Text: text}}
		if _, err := embellish.AddDocumentsRemote(w.routerConn, doc); err != nil {
			t.Fatalf("adding doc %d via router: %v", g, err)
		}
		if _, err := embellish.AddDocumentsRemote(w.refConn, doc); err != nil {
			t.Fatalf("adding doc %d on reference: %v", g, err)
		}
	}
}

// queries returns three embellishable probes drawn from the searchable
// dictionary; every searchable lemma occurs in both the template and
// the grown corpus, so the candidate sets are never trivially empty.
func (w *world) queries() []string {
	s := w.ref.SearchableLemmas()
	return []string{
		s[0] + " " + s[1],
		s[len(s)/2],
		s[len(s)/3] + " " + s[2*len(s)/3],
	}
}

func sendQueryFrame(t *testing.T, conn net.Conn, frame []byte) []wire.Candidate {
	t.Helper()
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	typ, body, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ == wire.TypeError {
		t.Fatalf("query refused: %s", body)
	}
	if typ != wire.TypeResponse {
		t.Fatalf("unexpected response type %d", typ)
	}
	cands, _, err := wire.DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	return cands
}

func compareCands(t *testing.T, label string, ref, got []wire.Candidate) {
	t.Helper()
	if len(ref) == 0 {
		t.Fatalf("%s: empty reference candidate set proves nothing", label)
	}
	if len(got) != len(ref) {
		t.Fatalf("%s: %d candidates via router, %d via reference", label, len(got), len(ref))
	}
	for i := range ref {
		if got[i].Doc != ref[i].Doc || got[i].Enc.Cmp(ref[i].Enc) != 0 {
			t.Fatalf("%s: candidate %d diverges (doc %d via router, %d via reference)",
				label, i, got[i].Doc, ref[i].Doc)
		}
	}
}

// teeConn records both directions of a client exchange so the exact
// request bytes can be replayed against the router and the recorded
// reference response decoded for comparison.
type teeConn struct {
	inner io.ReadWriter
	wrote bytes.Buffer
	read  bytes.Buffer
}

func (c *teeConn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.read.Write(p[:n])
	return n, err
}

func (c *teeConn) Write(p []byte) (int, error) {
	c.wrote.Write(p)
	return c.inner.Write(p)
}

// identicalRound is the transparency proof: the same embellished query
// frame goes to the reference engine and to the router, and the
// candidate responses must agree ciphertext for ciphertext; a recorded
// batch frame replays identically; and PIR document fetches return the
// ground-truth bytes from both.
func (w *world) identicalRound(t *testing.T, routerConn net.Conn, fetchIDs []int) {
	t.Helper()
	for _, q := range w.queries() {
		eq, err := w.client.Embellish(q)
		if err != nil {
			t.Fatalf("embellishing %q: %v", q, err)
		}
		frame, err := eq.WireFrame()
		if err != nil {
			t.Fatal(err)
		}
		refCands := sendQueryFrame(t, w.refConn, frame)
		gotCands := sendQueryFrame(t, routerConn, frame)
		compareCands(t, fmt.Sprintf("query %q", q), refCands, gotCands)
	}

	// Batch: run it for real against the reference through a tee, then
	// replay the identical request bytes at the router.
	tee := &teeConn{inner: w.refConn}
	if _, err := w.client.SearchRemoteBatch(tee, w.queries(), 10); err != nil {
		t.Fatalf("reference batch: %v", err)
	}
	if _, err := routerConn.Write(tee.wrote.Bytes()); err != nil {
		t.Fatal(err)
	}
	typ, body, err := wire.ReadMessage(routerConn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.TypeBatchResponse {
		t.Fatalf("batch replay answered type %d: %s", typ, body)
	}
	gotBatch, _, err := wire.DecodeBatchResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	rtyp, rbody, err := wire.ReadMessage(&tee.read)
	if err != nil || rtyp != wire.TypeBatchResponse {
		t.Fatalf("recorded reference response type %d err %v", rtyp, err)
	}
	refBatch, _, err := wire.DecodeBatchResponse(rbody)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotBatch) != len(refBatch) {
		t.Fatalf("batch answered %d queries via router, %d via reference", len(gotBatch), len(refBatch))
	}
	for qi := range refBatch {
		compareCands(t, fmt.Sprintf("batch query %d", qi), refBatch[qi], gotBatch[qi])
	}

	// PIR fetches: the router's column-partitioned combine must hand
	// back the exact stored bytes, same as the reference.
	refDocs, _, err := w.client.FetchDocumentsRemote(w.refConn, fetchIDs)
	if err != nil {
		t.Fatalf("reference fetch %v: %v", fetchIDs, err)
	}
	gotDocs, _, err := w.client.FetchDocumentsRemote(routerConn, fetchIDs)
	if err != nil {
		t.Fatalf("router fetch %v: %v", fetchIDs, err)
	}
	for i, id := range fetchIDs {
		if string(refDocs[i]) != w.texts[id] {
			t.Fatalf("reference fetched doc %d mangled: %q", id, refDocs[i])
		}
		if !bytes.Equal(gotDocs[i], refDocs[i]) {
			t.Fatalf("router fetched doc %d differs from reference: %q vs %q", id, gotDocs[i], refDocs[i])
		}
	}
}

func TestClusterByteIdentity(t *testing.T) {
	w := newWorld(t)

	// Round 1: the template corpus lives on EVERY partition; the merge
	// must take each document from its owner exactly once. Fetch ids
	// cover all three owners.
	w.identicalRound(t, w.routerConn, []int{3, 10, 17})

	// Round 2: retire the template corpus, grow a round-robin
	// partitioned one, and prove transparency again — deletes fanned
	// everywhere, adds routed to owners, ids rewritten both ways.
	w.grow(t, 18)
	w.identicalRound(t, w.routerConn, []int{24, 25, 26, 41})

	// The cluster map the router serves matches the topology.
	if err := wire.WriteClusterMapRequest(w.routerConn); err != nil {
		t.Fatal(err)
	}
	typ, body, err := wire.ReadMessage(w.routerConn)
	if err != nil || typ != wire.TypeClusterMap {
		t.Fatalf("cluster map answered type %d err %v", typ, err)
	}
	m, err := wire.DecodeClusterMap(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Base != templateDocs || len(m.Partitions) != 3 || len(m.Partitions[1]) != 2 {
		t.Fatalf("cluster map mangled: %+v", m)
	}

	// Aggregated stats: partition counters summed, the router's own
	// appended fields filled, durability an AND over partitions.
	st, err := embellish.ServerStats(w.routerConn)
	if err != nil {
		t.Fatal(err)
	}
	if st.RouterPartitions != 3 {
		t.Fatalf("RouterPartitions %d, want 3", st.RouterPartitions)
	}
	if st.Queries == 0 || st.Updates == 0 || st.Retrievals == 0 {
		t.Fatalf("aggregated counters empty: %+v", st)
	}
	if !st.Durable || st.WALSeq == 0 {
		t.Fatalf("durable workers not reflected: durable=%v walseq=%d", st.Durable, st.WALSeq)
	}

	// An unknown frame type is refused in place; the connection
	// survives for the next request.
	junk := dial(t, w.routerAddr)
	if err := wire.WriteRaw(junk, 99, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err = wire.ReadMessage(junk)
	if err != nil || typ != wire.TypeError || !strings.Contains(string(body), wire.UnknownTypeRefusal) {
		t.Fatalf("unknown type answered %d %q err %v", typ, body, err)
	}
	if _, err := embellish.ServerStats(junk); err != nil {
		t.Fatalf("connection did not survive refusal: %v", err)
	}

	// Template ids are pinned at build time: re-adding below Base is a
	// routing error, relayed without touching any partition.
	if _, err := embellish.AddDocumentsRemote(junk, []embellish.Document{{ID: 5, Text: "x"}}); err == nil ||
		!strings.Contains(err.Error(), "below the partition base") {
		t.Fatalf("below-base add: %v", err)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := cluster.NewRouter(cluster.Config{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := cluster.NewRouter(cluster.Config{Partitions: []cluster.Partition{{}}}); err == nil {
		t.Fatal("endpointless partition accepted")
	}
	if _, err := cluster.NewRouter(cluster.Config{
		Base:       -1,
		Partitions: []cluster.Partition{{Endpoints: []string{"127.0.0.1:1"}}},
	}); err == nil {
		t.Fatal("negative base accepted")
	}
}

func TestClusterReplicaCatchUpAndFailover(t *testing.T) {
	w := newWorld(t)
	w.grow(t, 18)

	// Warm the replica from the partition-1 primary over the wire: one
	// template-delete record plus the six documents partition 1 owns.
	rep := &cluster.Replica{Engine: w.replica, Primary: w.workerAddrs[1]}
	applied, err := rep.CatchUp(context.Background())
	if err != nil {
		t.Fatalf("replica catch-up: %v", err)
	}
	if applied != 7 {
		t.Fatalf("replica applied %d ops, want 7", applied)
	}
	ws, _ := w.workers[1].WALStatus()
	rs, _ := w.replica.WALStatus()
	if ws.Seq != rs.Seq {
		t.Fatalf("replica at seq %d, primary at %d", rs.Seq, ws.Seq)
	}
	if seq, ok := rep.PrimarySeq(); !ok || seq != ws.Seq {
		t.Fatalf("replica's view of primary: %d (%v), want %d", seq, ok, ws.Seq)
	}
	if w.replica.NumDocs() != w.workers[1].NumDocs() {
		t.Fatalf("replica holds %d docs, primary %d", w.replica.NumDocs(), w.workers[1].NumDocs())
	}

	// Keep queries in flight from several connections while the
	// partition-1 primary is killed: every request must still answer.
	clients := make([]*embellish.Client, 3)
	conns := make([]net.Conn, 3)
	for i := range clients {
		c, err := w.ref.NewClient(detrand.New(fmt.Sprintf("flood-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		conns[i] = dial(t, w.routerAddr)
	}
	q := w.queries()[0]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := clients[i].SearchRemote(conns[i], q, 5); err != nil {
					t.Errorf("in-flight query failed across the kill: %v", err)
					return
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	killed, cancel := context.WithCancel(context.Background())
	cancel() // force-close: a SIGKILL, not a drain
	w.workerSrvs[1].Shutdown(killed)
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// With the primary gone, partition 1 is served by the caught-up
	// replica — and the cluster remains bit-identical to the reference,
	// PIR fetches of partition-1 documents included.
	conn := dial(t, w.routerAddr)
	w.identicalRound(t, conn, []int{25, 28, 40})

	st := w.router.Stats()
	if st.Failovers == 0 || st.PartitionFailovers[1] == 0 {
		t.Fatalf("no failovers recorded: %+v", st)
	}
	if st.PartitionFailovers[0] != 0 || st.PartitionFailovers[2] != 0 {
		t.Fatalf("healthy partitions failed over: %+v", st.PartitionFailovers)
	}
	agg, err := embellish.ServerStats(conn)
	if err != nil {
		t.Fatalf("stats with a dead primary: %v", err)
	}
	if agg.RouterFailovers == 0 || agg.RouterPartitions != 3 {
		t.Fatalf("router counters missing from aggregated stats: %+v", agg)
	}
}

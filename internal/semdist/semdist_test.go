package semdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func mini(t *testing.T) (*wordnet.Database, *Calculator) {
	t.Helper()
	db := wordnet.MiniLexicon()
	return db, New(db, 0)
}

func lookup(t *testing.T, db *wordnet.Database, lemma string) wordnet.TermID {
	t.Helper()
	id, ok := db.Lookup(lemma)
	if !ok {
		t.Fatalf("lexicon missing %q", lemma)
	}
	return id
}

func TestIdenticalTermsDistanceZero(t *testing.T) {
	db, c := mini(t)
	a := lookup(t, db, "water")
	if d := c.TermDistance(a, a); d != 0 {
		t.Fatalf("d(water, water) = %v, want 0", d)
	}
}

func TestSynonymsDistanceZero(t *testing.T) {
	db, c := mini(t)
	a := lookup(t, db, "osteosarcoma")
	b := lookup(t, db, "osteogenic sarcoma")
	if d := c.TermDistance(a, b); d != 0 {
		t.Fatalf("d(synonyms) = %v, want 0", d)
	}
}

func TestHypernymHopWeighsOne(t *testing.T) {
	db, c := mini(t)
	a := lookup(t, db, "sarcoma")
	b := lookup(t, db, "cancer")
	if d := c.TermDistance(a, b); d != 1 {
		t.Fatalf("d(sarcoma, cancer) = %v, want 1", d)
	}
}

func TestAntonymHopWeighsHalf(t *testing.T) {
	db, c := mini(t)
	a := lookup(t, db, "hypocapnia")
	b := lookup(t, db, "hypercapnia")
	// Direct antonym edge (0.5) beats the sibling path via the common
	// hypernym (1+1=2).
	if d := c.TermDistance(a, b); d != 0.5 {
		t.Fatalf("d(hypocapnia, hypercapnia) = %v, want 0.5", d)
	}
}

func TestMeronymHopWeighsTwo(t *testing.T) {
	db, c := mini(t)
	a := lookup(t, db, "wing")
	b := lookup(t, db, "bird")
	if d := c.TermDistance(a, b); d != 2 {
		t.Fatalf("d(wing, bird) = %v, want 2", d)
	}
}

func TestDomainHopWeighsThree(t *testing.T) {
	db, c := mini(t)
	a := lookup(t, db, "moustille")
	b := lookup(t, db, "winemaking")
	// moustille --domain--> winemaking = 3; the hypernym path runs
	// through wine..food..substance..matter..entity..abstraction..act,
	// far longer.
	if d := c.TermDistance(a, b); d != 3 {
		t.Fatalf("d(moustille, winemaking) = %v, want 3", d)
	}
}

func TestSiblingDistanceTwo(t *testing.T) {
	db, c := mini(t)
	a := lookup(t, db, "myosarcoma")
	b := lookup(t, db, "neurosarcoma")
	if d := c.TermDistance(a, b); d != 2 {
		t.Fatalf("d(siblings) = %v, want 2", d)
	}
}

func TestMaxDistCapsSearch(t *testing.T) {
	db := wordnet.MiniLexicon()
	c := New(db, 3)
	a := lookup(t, db, "osteosarcoma")
	b := lookup(t, db, "love knot")
	if d := c.TermDistance(a, b); d != 3 {
		t.Fatalf("capped distance = %v, want cap 3", d)
	}
}

func TestDisconnectedTermsReportCap(t *testing.T) {
	db := wordnet.NewDatabase()
	a := db.AddTerm("isolated-a")
	db.AddSynset([]wordnet.TermID{a}, "")
	b := db.AddTerm("isolated-b")
	db.AddSynset([]wordnet.TermID{b}, "")
	db.Freeze()
	c := New(db, 10)
	if d := c.TermDistance(a, b); d != 10 {
		t.Fatalf("disconnected distance = %v, want cap 10", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	db, c := mini(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		a := wordnet.TermID(rng.Intn(db.NumTerms()))
		b := wordnet.TermID(rng.Intn(db.NumTerms()))
		if d1, d2 := c.TermDistance(a, b), c.TermDistance(b, a); d1 != d2 {
			t.Fatalf("asymmetric: d(%d,%d)=%v d(%d,%d)=%v", a, b, d1, b, a, d2)
		}
	}
}

func TestScratchStateReset(t *testing.T) {
	// Back-to-back queries must not contaminate each other through the
	// reusable dist buffer.
	db, c := mini(t)
	a := lookup(t, db, "sarcoma")
	b := lookup(t, db, "cancer")
	first := c.TermDistance(a, b)
	for i := 0; i < 20; i++ {
		x := wordnet.TermID(i % db.NumTerms())
		y := wordnet.TermID((i * 7) % db.NumTerms())
		c.TermDistance(x, y)
	}
	if again := c.TermDistance(a, b); again != first {
		t.Fatalf("distance drifted: %v then %v", first, again)
	}
}

// Property: triangle inequality holds on the synthetic graph (shortest
// paths are metrics when weights are symmetric), modulo the cap and
// the same-synset shortcut: two terms sharing a synset are at distance
// zero, but that zero is a membership check, not a graph edge — the
// synset-graph search never bridges through a shared term, so a
// composed bound through a zero-distance pair can undercut the
// searched path by one hop. Zero legs are therefore excluded, and the
// triple source is pinned (like every other sampler in this file) so
// the run is deterministic.
func TestTriangleInequality(t *testing.T) {
	db := wngen.Generate(wngen.ScaledConfig(800, 19))
	c := New(db, 0)
	f := func(ar, br, cr uint16) bool {
		n := db.NumTerms()
		a := wordnet.TermID(int(ar) % n)
		b := wordnet.TermID(int(br) % n)
		d := wordnet.TermID(int(cr) % n)
		ab := c.TermDistance(a, b)
		bd := c.TermDistance(b, d)
		ad := c.TermDistance(a, d)
		if ab >= c.MaxDist || bd >= c.MaxDist {
			return true // capped values carry no triangle guarantee
		}
		if ab == 0 || bd == 0 {
			return true // same-synset shortcut, not a path
		}
		return ad <= ab+bd+1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Package semdist computes the weighted semantic distance between terms
// over the synset relation graph, as defined for the privacy evaluation in
// Section 5.1 of Pang, Ding and Xiao (VLDB 2010): the length of the
// shortest path between the terms' synsets, where a hypernym-hyponym hop
// weighs 1, an antonym hop 0.5, a holonym-meronym hop 2, and a
// domain-membership hop 3, reflecting the differing strengths of
// association. Derivational links, the closest association in Algorithm
// 1's traversal order, weigh 0.5 like antonyms.
package semdist

import (
	"container/heap"
	"math"

	"embellish/internal/wordnet"
)

// Weights assigns a path cost to each relation type. The zero value is
// unusable; use DefaultWeights.
type Weights [wordnet.NumRelationTypes]float64

// DefaultWeights returns the weights prescribed in Section 5.1.
func DefaultWeights() Weights {
	var w Weights
	w[wordnet.RelHypernym] = 1
	w[wordnet.RelHyponym] = 1
	w[wordnet.RelAntonym] = 0.5
	w[wordnet.RelDerivation] = 0.5
	w[wordnet.RelHolonym] = 2
	w[wordnet.RelMeronym] = 2
	w[wordnet.RelDomainTopic] = 3
	w[wordnet.RelDomainMember] = 3
	return w
}

// Calculator computes term distances on one database. It owns reusable
// scratch buffers, so a Calculator is NOT safe for concurrent use; create
// one per goroutine.
type Calculator struct {
	db *wordnet.Database
	w  Weights
	// MaxDist caps the search radius: searches stop once the tentative
	// distance exceeds it, and unreachable pairs report MaxDist. A cap
	// keeps Dijkstra local on the 80k-synset graph.
	MaxDist float64

	dist    []float64
	touched []wordnet.SynsetID
}

// New returns a Calculator with the paper's weights and a search radius of
// maxDist (<=0 selects 25, comfortably above the farthest covers observed
// in Figures 5 and 6).
func New(db *wordnet.Database, maxDist float64) *Calculator {
	if maxDist <= 0 {
		maxDist = 25
	}
	c := &Calculator{db: db, w: DefaultWeights(), MaxDist: maxDist}
	c.dist = make([]float64, db.NumSynsets())
	for i := range c.dist {
		c.dist[i] = math.Inf(1)
	}
	return c
}

// SetWeights overrides the relation weights.
func (c *Calculator) SetWeights(w Weights) { c.w = w }

type pqItem struct {
	s wordnet.SynsetID
	d float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// TermDistance returns the semantic distance between terms a and b: the
// minimum over pairs of their synsets of the weighted shortest path,
// capped at MaxDist. Identical terms have distance 0.
func (c *Calculator) TermDistance(a, b wordnet.TermID) float64 {
	if a == b {
		return 0
	}
	targets := make(map[wordnet.SynsetID]bool)
	for _, s := range c.db.SynsetsOf(b) {
		targets[s] = true
	}
	if len(targets) == 0 || len(c.db.SynsetsOf(a)) == 0 {
		return c.MaxDist
	}
	// A shared synset means the terms are synonyms: distance 0.
	for _, s := range c.db.SynsetsOf(a) {
		if targets[s] {
			return 0
		}
	}
	return c.search(c.db.SynsetsOf(a), targets)
}

// search runs a capped Dijkstra from the source synsets until the nearest
// target is settled or the radius is exhausted.
func (c *Calculator) search(sources []wordnet.SynsetID, targets map[wordnet.SynsetID]bool) float64 {
	defer c.reset()
	var q pq
	for _, s := range sources {
		c.dist[s] = 0
		c.touched = append(c.touched, s)
		heap.Push(&q, pqItem{s, 0})
	}
	best := c.MaxDist
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.d > c.dist[it.s] {
			continue // stale entry
		}
		if it.d >= best {
			break
		}
		if targets[it.s] {
			// Dijkstra settles nodes in increasing distance, so the first
			// target popped is the closest one.
			best = it.d
			break
		}
		for _, r := range c.db.Synset(it.s).Relations {
			nd := it.d + c.w[r.Type]
			if nd < c.dist[r.To] && nd < best {
				if math.IsInf(c.dist[r.To], 1) {
					c.touched = append(c.touched, r.To)
				}
				c.dist[r.To] = nd
				heap.Push(&q, pqItem{r.To, nd})
			}
		}
	}
	return best
}

func (c *Calculator) reset() {
	for _, s := range c.touched {
		c.dist[s] = math.Inf(1)
	}
	c.touched = c.touched[:0]
}

package privacy

import (
	"errors"
	"math"

	"embellish/internal/bucket"
	"embellish/internal/semdist"
	"embellish/internal/wordnet"
)

// This file is the adversary's view of risk: what a server can compute
// from an OBSERVED embellished query — the whole-bucket term set of
// Algorithm 3 — without knowing which terms are genuine. Where
// RiskModel.Evaluate enumerates the full candidate cross product
// (exponential in query size), these estimators exploit that
// sim(s', s) = exp(-Σ_i d_i / m) factors into a product of per-position
// terms, so expectations over independent per-position uniform draws
// factor too. That turns Equation 2 under a uniform prior from
// O(Π k_i) into O(Σ k_i²) — cheap enough to run per query on a live
// serving path.

// ErrNotEmbellished reports an observed term stream that does not
// decompose into complete host buckets — i.e. the client did not send
// whole-bucket embellished queries, so bucket-level risk accounting
// does not apply.
var ErrNotEmbellished = errors.New("privacy: observed terms do not decompose into whole buckets")

// ErrWorkCap reports a decomposition whose per-query scoring work
// (Σ k_b²) exceeds the auditor's cap.
var ErrWorkCap = errors.New("privacy: observed-risk work exceeds cap")

// Auditor computes factorized risk estimates against one organization.
// It owns a semdist.Calculator and is therefore NOT safe for concurrent
// use — create one per goroutine (the serving layer keeps one per
// session).
type Auditor struct {
	Org  *bucket.Organization
	Calc *semdist.Calculator
	// MaxWork caps Σ k_b² per scored query (the number of pairwise
	// distances ObservedRisk computes). Zero means DefaultMaxWork.
	MaxWork int
}

// DefaultMaxWork admits ~16 buckets of size 16, far beyond the
// paper's BktSz sweep, while bounding a hostile query's cost.
const DefaultMaxWork = 4096

// NewAuditor returns an Auditor over org with its own distance
// calculator (maxDist 40, matching the eval figures).
func NewAuditor(org *bucket.Organization, db *wordnet.Database) *Auditor {
	return &Auditor{Org: org, Calc: semdist.New(db, 40), MaxWork: DefaultMaxWork}
}

// Decompose groups an observed term set into the complete host buckets
// it covers. It returns ErrNotEmbellished when any term is outside the
// organization, appears twice, or when the union of host buckets is
// not exactly the observed set (a partial bucket means the stream is
// not Algorithm 3 output).
func Decompose(org *bucket.Organization, terms []wordnet.TermID) ([]int, error) {
	if len(terms) == 0 {
		return nil, ErrNotEmbellished
	}
	seenTerm := make(map[wordnet.TermID]bool, len(terms))
	seenBucket := make(map[int]bool)
	var buckets []int
	for _, t := range terms {
		if seenTerm[t] {
			return nil, ErrNotEmbellished
		}
		seenTerm[t] = true
		b, ok := org.BucketOf(t)
		if !ok {
			return nil, ErrNotEmbellished
		}
		if !seenBucket[b] {
			seenBucket[b] = true
			buckets = append(buckets, b)
		}
	}
	// Every term is distinct and maps into one of the collected
	// buckets; if the bucket sizes sum to the observed count, every
	// bucket is fully covered (pigeonhole).
	total := 0
	for _, b := range buckets {
		total += len(org.Bucket(b))
	}
	if total != len(terms) {
		return nil, ErrNotEmbellished
	}
	return buckets, nil
}

// ObservedRisk is the adversary's expected similarity between two
// independent posterior draws given an observed bucket decomposition:
//
//	E_{s,s'}[sim(s', s)] = Π_b ( (1/k_b²) Σ_{a,c ∈ bucket_b} e^{-d(a,c)/m} )
//
// with m = len(buckets) positions. Under the uniform prior the
// posterior over candidates is uniform and positions are independent,
// so the expectation factors per bucket. It equals what
// RiskModel.Evaluate would report for a genuine sequence drawn from
// the same buckets, averaged over all genuine choices — the quantity a
// server can actually know. 1 means the buckets pin the query exactly
// (all candidates semantically identical); smaller is better cover.
func (a *Auditor) ObservedRisk(buckets []int) (float64, error) {
	if len(buckets) == 0 {
		return 0, ErrNotEmbellished
	}
	work := 0
	for _, b := range buckets {
		k := len(a.Org.Bucket(b))
		work += k * k
	}
	max := a.MaxWork
	if max == 0 {
		max = DefaultMaxWork
	}
	if work > max {
		return 0, ErrWorkCap
	}
	m := float64(len(buckets))
	risk := 1.0
	for _, b := range buckets {
		terms := a.Org.Bucket(b)
		var sum float64
		for _, x := range terms {
			for _, y := range terms {
				if x == y {
					sum++ // e^0
					continue
				}
				sum += math.Exp(-a.Calc.TermDistance(x, y) / m)
			}
		}
		risk *= sum / float64(len(terms)*len(terms))
	}
	return risk, nil
}

// GenuineRisk is Equation 2 under the uniform prior for a KNOWN
// genuine sequence, computed by the same factorization:
//
//	E_{s'}[sim(s', s)] = Π_i ( (1/k_i) Σ_{a ∈ bucket(s_i)} e^{-d(a, s_i)/m} )
//
// It equals RiskModel.Evaluate's Risk exactly (up to float association)
// when the genuine terms occupy distinct buckets — the property test in
// observed_test.go pins that equivalence. The serving audit cannot use
// it (the server does not know s); it exists as the in-process
// cross-check between the factorized math and the exact enumerator.
func (a *Auditor) GenuineRisk(genuine []wordnet.TermID) (float64, error) {
	if len(genuine) == 0 {
		return 0, errors.New("privacy: empty genuine sequence")
	}
	m := float64(len(genuine))
	risk := 1.0
	for _, s := range genuine {
		b, ok := a.Org.BucketOf(s)
		if !ok {
			return 0, errors.New("privacy: genuine term not in organization")
		}
		terms := a.Org.Bucket(b)
		var sum float64
		for _, c := range terms {
			if c == s {
				sum++
				continue
			}
			sum += math.Exp(-a.Calc.TermDistance(c, s) / m)
		}
		risk *= sum / float64(len(terms))
	}
	return risk, nil
}

// Coherence is the mean pairwise semantic distance over a term set —
// the trackmenot adversary's statistic, exposed here so the serving
// audit can compute it per observed frame with the auditor's shared
// calculator. Singleton and empty sets report 0 (perfectly coherent).
// cap bounds the number of terms considered (the first cap terms);
// zero means all.
func (a *Auditor) Coherence(terms []wordnet.TermID, cap int) float64 {
	if cap > 0 && len(terms) > cap {
		terms = terms[:cap]
	}
	if len(terms) < 2 {
		return 0
	}
	var sum float64
	var n int
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			sum += a.Calc.TermDistance(terms[i], terms[j])
			n++
		}
	}
	return sum / float64(n)
}

package privacy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"embellish/internal/bucket"
	"embellish/internal/semdist"
	"embellish/internal/testenv"
	"embellish/internal/wordnet"
)

var cachedWorld *testenv.World

func world(t *testing.T) *testenv.World {
	t.Helper()
	if cachedWorld == nil {
		cachedWorld = testenv.BuildWorld(testenv.Options{Seed: 71, BktSz: 4})
	}
	return cachedWorld
}

func TestAvgSpecSpreadEmpty(t *testing.T) {
	org, err := bucket.Generate([]wordnet.TermID{0, 1, 2, 3}, func(wordnet.TermID) int { return 0 }, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := AvgSpecSpread(org, func(wordnet.TermID) int { return 5 }); got != 0 {
		t.Fatalf("constant specificity must give zero spread, got %v", got)
	}
}

func TestAvgSpecSpreadMatchesManual(t *testing.T) {
	w := world(t)
	spec := w.DB.Specificity
	got := AvgSpecSpread(w.Org, spec)
	// Manual recomputation.
	sum := 0.0
	for b := 0; b < w.Org.NumBuckets(); b++ {
		terms := w.Org.Bucket(b)
		lo, hi := spec(terms[0]), spec(terms[0])
		for _, tm := range terms[1:] {
			s := spec(tm)
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		sum += float64(hi - lo)
	}
	want := sum / float64(w.Org.NumBuckets())
	if got != want {
		t.Fatalf("AvgSpecSpread = %v, manual = %v", got, want)
	}
}

func TestRandomOrganizationShape(t *testing.T) {
	w := world(t)
	rng := rand.New(rand.NewSource(5))
	org, err := RandomOrganization(w.Searchable, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if org.Terms() != len(w.Searchable) {
		t.Fatalf("random org holds %d terms, want %d", org.Terms(), len(w.Searchable))
	}
	// Every term in the organization maps back to its bucket.
	for b := 0; b < org.NumBuckets(); b++ {
		for _, tm := range org.Bucket(b) {
			bb, ok := org.BucketOf(tm)
			if !ok || bb != b {
				t.Fatalf("term %d: BucketOf=(%d,%v), want (%d,true)", tm, bb, ok, b)
			}
		}
	}
}

func TestRandomOrganizationIsShuffled(t *testing.T) {
	w := world(t)
	rng := rand.New(rand.NewSource(6))
	org, err := RandomOrganization(w.Searchable, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With a genuine shuffle, bucket 0 should differ from the bucketing of
	// the unshuffled sequence (first four stride positions).
	ref, err := bucket.Generate(w.Searchable, func(wordnet.TermID) int { return 0 }, 4, len(w.Searchable)/4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, tm := range org.Bucket(0) {
		if ref.Bucket(0)[i] != tm {
			same = false
			break
		}
	}
	if same {
		t.Fatal("random organization equals the deterministic striping; shuffle had no effect")
	}
}

// TestBucketBeatsRandomOnSpecificity is the core Figure 5(a)/6(a) claim:
// the paper's bucket organization yields a much smaller intra-bucket
// specificity spread than random assignment.
func TestBucketBeatsRandomOnSpecificity(t *testing.T) {
	w := world(t)
	spec := w.DB.Specificity
	bucketSpread := AvgSpecSpread(w.Org, spec)
	rng := rand.New(rand.NewSource(7))
	randOrg, err := RandomOrganization(w.Searchable, w.Org.BktSz, rng)
	if err != nil {
		t.Fatal(err)
	}
	randSpread := AvgSpecSpread(randOrg, spec)
	if bucketSpread >= randSpread {
		t.Fatalf("bucket spread %.3f not below random spread %.3f", bucketSpread, randSpread)
	}
}

func TestMeasureDistanceDifferenceBasics(t *testing.T) {
	w := world(t)
	calc := semdist.New(w.DB, 20)
	rng := rand.New(rand.NewSource(8))
	dd := MeasureDistanceDifference(w.Org, calc, 50, rng)
	if dd.Trials != 50 {
		t.Fatalf("Trials = %d, want 50", dd.Trials)
	}
	if dd.Closest < 0 || dd.Farthest < 0 {
		t.Fatalf("negative distances: %+v", dd)
	}
	if dd.Closest > dd.Farthest {
		t.Fatalf("closest %.3f exceeds farthest %.3f", dd.Closest, dd.Farthest)
	}
}

func TestMeasureDistanceDifferenceDegenerate(t *testing.T) {
	w := world(t)
	calc := semdist.New(w.DB, 20)
	// BktSz=1 buckets have no decoy slots: every trial is skipped.
	org, err := bucket.Generate(w.Searchable[:8], w.DB.Specificity, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	dd := MeasureDistanceDifference(org, calc, 10, rand.New(rand.NewSource(9)))
	if dd.Trials != 0 || dd.Closest != 0 || dd.Farthest != 0 {
		t.Fatalf("degenerate organization must measure nothing, got %+v", dd)
	}
}

func TestRiskModelGenuineDominatesWhenBucketsTrivial(t *testing.T) {
	// BktSz=1: every bucket holds exactly its genuine term, so the genuine
	// sequence is the only candidate: risk = sim(s,s) = 1, posterior = 1.
	w := world(t)
	org, err := bucket.Generate(w.Searchable, w.DB.Specificity, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	calc := semdist.New(w.DB, 20)
	rm := NewRiskModel(org, calc)
	s := [][]wordnet.TermID{{w.Searchable[0], w.Searchable[1]}}
	res, err := rm.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sequences != 1 {
		t.Fatalf("Sequences = %d, want 1", res.Sequences)
	}
	if res.Risk != 1 || res.PosteriorGenuine != 1 {
		t.Fatalf("trivial buckets: risk=%v posterior=%v, want 1,1", res.Risk, res.PosteriorGenuine)
	}
}

func TestRiskModelUniformPosterior(t *testing.T) {
	w := world(t)
	calc := semdist.New(w.DB, 20)
	rm := NewRiskModel(w.Org, calc)
	s := [][]wordnet.TermID{{w.Searchable[0]}}
	res, err := rm.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sequences != w.Org.BktSz {
		t.Fatalf("Sequences = %d, want BktSz = %d", res.Sequences, w.Org.BktSz)
	}
	wantPost := 1.0 / float64(w.Org.BktSz)
	if diff := res.PosteriorGenuine - wantPost; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("uniform posterior = %v, want %v", res.PosteriorGenuine, wantPost)
	}
	// Risk must lie in (0, 1]: at least the genuine candidate contributes
	// sim=1, and every candidate contributes at most 1.
	if res.Risk <= 0 || res.Risk > 1 {
		t.Fatalf("risk %v out of (0,1]", res.Risk)
	}
	// Embellishment strictly reduces risk below certainty.
	if res.Risk >= 1 {
		t.Fatalf("risk %v not reduced by decoys", res.Risk)
	}
}

func TestRiskModelDiverseBucketsLowerRisk(t *testing.T) {
	// Buckets of semantically diverse terms must yield lower risk than
	// buckets of near-synonyms (the Section 3.1 design rationale).
	db := wordnet.NewDatabase()
	// Cluster A: four terms in one synset chain (tight).
	a0 := db.AddTerm("sarcoma")
	a1 := db.AddTerm("osteosarcoma")
	a2 := db.AddTerm("myosarcoma")
	a3 := db.AddTerm("neurosarcoma")
	// Cluster B: four unrelated roots (diverse).
	b0 := db.AddTerm("water")
	b1 := db.AddTerm("yeast")
	b2 := db.AddTerm("nitrogen")
	b3 := db.AddTerm("desert")
	// Filler terms to satisfy BktSz <= N/2.
	f0 := db.AddTerm("filler zero")
	f1 := db.AddTerm("filler one")
	f2 := db.AddTerm("filler two")
	f3 := db.AddTerm("filler three")
	sa := db.AddSynset([]wordnet.TermID{a0}, "")
	sa1 := db.AddSynset([]wordnet.TermID{a1}, "")
	sa2 := db.AddSynset([]wordnet.TermID{a2}, "")
	sa3 := db.AddSynset([]wordnet.TermID{a3}, "")
	db.AddRelation(sa1, sa, wordnet.RelHypernym)
	db.AddRelation(sa2, sa, wordnet.RelHypernym)
	db.AddRelation(sa3, sa, wordnet.RelHypernym)
	for _, tm := range []wordnet.TermID{b0, b1, b2, b3, f0, f1, f2, f3} {
		db.AddSynset([]wordnet.TermID{tm}, "")
	}
	db.Freeze()
	calc := semdist.New(db, 20)

	// With constant specificity the in-segment sort is a no-op, so an
	// interleaved order [x0 f0 x1 f1 x2 f2 x3 f3] with SegSz=2 yields
	// bucket 0 = {x0, x1, x2, x3} exactly.
	flat := func(wordnet.TermID) int { return 0 }
	tight, err := bucket.Generate(
		[]wordnet.TermID{a0, f0, a1, f1, a2, f2, a3, f3}, flat, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	diverse, err := bucket.Generate(
		[]wordnet.TermID{a1, f0, b0, f1, b1, f2, b2, f3}, flat, 4, 2)
	if err != nil {
		t.Fatal(err)
	}

	rmTight := NewRiskModel(tight, calc)
	resTight, err := rmTight.Evaluate([][]wordnet.TermID{{a1}})
	if err != nil {
		t.Fatal(err)
	}
	rmDiverse := NewRiskModel(diverse, calc)
	resDiverse, err := rmDiverse.Evaluate([][]wordnet.TermID{{a1}})
	if err != nil {
		t.Fatal(err)
	}
	if resDiverse.Risk >= resTight.Risk {
		t.Fatalf("diverse-bucket risk %.4f not below tight-bucket risk %.4f",
			resDiverse.Risk, resTight.Risk)
	}
}

func TestRiskModelErrors(t *testing.T) {
	w := world(t)
	calc := semdist.New(w.DB, 20)
	rm := NewRiskModel(w.Org, calc)
	if _, err := rm.Evaluate(nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := rm.Evaluate([][]wordnet.TermID{{}}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := rm.Evaluate([][]wordnet.TermID{{wordnet.TermID(1 << 20)}}); err == nil {
		t.Fatal("out-of-organization term accepted")
	}
	rm.MaxSequences = 2
	long := [][]wordnet.TermID{{w.Searchable[0], w.Searchable[1], w.Searchable[2]}}
	if _, err := rm.Evaluate(long); err == nil {
		t.Fatal("enumeration cap not enforced")
	}
}

func TestRiskModelCustomPrior(t *testing.T) {
	w := world(t)
	calc := semdist.New(w.DB, 20)
	rm := NewRiskModel(w.Org, calc)
	genuine := w.Searchable[0]
	// A prior that puts all mass on the genuine sequence drives the
	// posterior to 1 and the risk to sim(s,s)=1.
	rm.Prior = func(seq [][]wordnet.TermID) float64 {
		if len(seq) == 1 && len(seq[0]) == 1 && seq[0][0] == genuine {
			return 1
		}
		return 0
	}
	res, err := rm.Evaluate([][]wordnet.TermID{{genuine}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PosteriorGenuine != 1 || res.Risk != 1 {
		t.Fatalf("delta prior: posterior=%v risk=%v, want 1,1", res.PosteriorGenuine, res.Risk)
	}
	// A prior with zero mass everywhere must error, not divide by zero.
	rm.Prior = func([][]wordnet.TermID) float64 { return 0 }
	if _, err := rm.Evaluate([][]wordnet.TermID{{genuine}}); err == nil {
		t.Fatal("all-zero prior accepted")
	}
}

func TestSequenceSimilarityProperties(t *testing.T) {
	w := world(t)
	calc := semdist.New(w.DB, 20)
	rm := NewRiskModel(w.Org, calc)
	a := []wordnet.TermID{w.Searchable[0], w.Searchable[5]}
	if got := rm.SequenceSimilarity(a, a); got != 1 {
		t.Fatalf("self-similarity = %v, want 1", got)
	}
	b := []wordnet.TermID{w.Searchable[9], w.Searchable[14]}
	s := rm.SequenceSimilarity(a, b)
	if s <= 0 || s > 1 {
		t.Fatalf("similarity %v out of (0,1]", s)
	}
	if got := rm.SequenceSimilarity(a, b[:1]); got != 0 {
		t.Fatalf("length mismatch similarity = %v, want 0", got)
	}
	if got := rm.SequenceSimilarity(nil, nil); got != 0 {
		t.Fatalf("empty similarity = %v, want 0", got)
	}
}

// Property: for any subset of searchable terms used as genuine queries,
// the risk result is a valid probability-weighted similarity in (0,1] and
// the genuine posterior is 1/|S| under the uniform prior.
func TestRiskUniformPosteriorProperty(t *testing.T) {
	w := world(t)
	calc := semdist.New(w.DB, 20)
	rm := NewRiskModel(w.Org, calc)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := []wordnet.TermID{w.Searchable[rng.Intn(len(w.Searchable))]}
		if rng.Intn(2) == 1 {
			q = append(q, w.Searchable[rng.Intn(len(w.Searchable))])
		}
		res, err := rm.Evaluate([][]wordnet.TermID{q})
		if err != nil {
			return false
		}
		wantPost := 1.0 / float64(res.Sequences)
		diff := res.PosteriorGenuine - wantPost
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9 && res.Risk > 0 && res.Risk <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package privacy

import (
	"math"
	"math/rand"
	"testing"

	"embellish/internal/semdist"
	"embellish/internal/wordnet"
)

func testAuditor(t *testing.T) *Auditor {
	t.Helper()
	w := world(t)
	return &Auditor{Org: w.Org, Calc: semdist.New(w.DB, 40), MaxWork: DefaultMaxWork}
}

// pickGenuine returns n genuine terms in n DISTINCT buckets — the
// regime where the factorized estimators and the exact enumerator
// coincide (Embellish dedupes shared buckets, collapsing positions).
func pickGenuine(t *testing.T, a *Auditor, rng *rand.Rand, n int) []wordnet.TermID {
	t.Helper()
	if a.Org.NumBuckets() < n {
		t.Fatalf("world has only %d buckets", a.Org.NumBuckets())
	}
	perm := rng.Perm(a.Org.NumBuckets())[:n]
	out := make([]wordnet.TermID, n)
	for i, b := range perm {
		terms := a.Org.Bucket(b)
		out[i] = terms[rng.Intn(len(terms))]
	}
	return out
}

// TestGenuineRiskMatchesExactEnumeration is the cross-check between
// the factorized Equation 2 and the exponential-time reference: for a
// single query with genuine terms in distinct buckets, under the
// uniform prior, GenuineRisk must equal RiskModel.Evaluate.Risk.
func TestGenuineRiskMatchesExactEnumeration(t *testing.T) {
	a := testAuditor(t)
	rm := NewRiskModel(a.Org, a.Calc)
	rng := rand.New(rand.NewSource(991))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(3) // bktSz=4: up to 4^3=64 candidates, cheap
		genuine := pickGenuine(t, a, rng, n)
		exact, err := rm.Evaluate([][]wordnet.TermID{genuine})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := a.GenuineRisk(genuine)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-exact.Risk) > 1e-9 {
			t.Fatalf("trial %d (%d terms): factorized %v, exact %v", trial, n, fast, exact.Risk)
		}
	}
}

// TestObservedRiskIsMeanGenuineRisk pins the adversary semantics:
// ObservedRisk over a bucket decomposition equals the mean of
// GenuineRisk over every possible genuine assignment — the expectation
// a server lacking the genuine sequence must fall back to.
func TestObservedRiskIsMeanGenuineRisk(t *testing.T) {
	a := testAuditor(t)
	rng := rand.New(rand.NewSource(992))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(2)
		genuine := pickGenuine(t, a, rng, n)
		var buckets []int
		for _, s := range genuine {
			b, ok := a.Org.BucketOf(s)
			if !ok {
				t.Fatal("genuine term escaped organization")
			}
			buckets = append(buckets, b)
		}
		observed, err := a.ObservedRisk(buckets)
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate every genuine assignment over the same buckets.
		var mean float64
		var count int
		assign := make([]wordnet.TermID, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				g, err := a.GenuineRisk(assign)
				if err != nil {
					t.Fatal(err)
				}
				mean += g
				count++
				return
			}
			for _, tm := range a.Org.Bucket(buckets[i]) {
				assign[i] = tm
				rec(i + 1)
			}
		}
		rec(0)
		mean /= float64(count)
		if math.Abs(observed-mean) > 1e-9 {
			t.Fatalf("trial %d: observed %v, mean genuine %v over %d assignments",
				trial, observed, mean, count)
		}
	}
}

func TestObservedRiskBounds(t *testing.T) {
	a := testAuditor(t)
	rng := rand.New(rand.NewSource(993))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4)
		buckets := rng.Perm(a.Org.NumBuckets())[:n]
		r, err := a.ObservedRisk(buckets)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 0 || r > 1 {
			t.Fatalf("risk %v outside (0, 1]", r)
		}
	}
	if _, err := a.ObservedRisk(nil); err == nil {
		t.Error("empty decomposition accepted")
	}
}

func TestObservedRiskWorkCap(t *testing.T) {
	a := testAuditor(t)
	a.MaxWork = 1 // any real bucket exceeds 1 pairwise distance
	if _, err := a.ObservedRisk([]int{0}); err != ErrWorkCap {
		t.Fatalf("err = %v, want ErrWorkCap", err)
	}
}

func TestDecompose(t *testing.T) {
	a := testAuditor(t)
	// Whole buckets in shuffled order decompose cleanly.
	var terms []wordnet.TermID
	for _, b := range []int{3, 0, 5} {
		terms = append(terms, a.Org.Bucket(b)...)
	}
	rng := rand.New(rand.NewSource(994))
	rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
	buckets, err := Decompose(a.Org, terms)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, b := range buckets {
		got[b] = true
	}
	if len(buckets) != 3 || !got[0] || !got[3] || !got[5] {
		t.Fatalf("decomposed to %v, want buckets {0,3,5}", buckets)
	}

	// A partial bucket is not Algorithm 3 output.
	if _, err := Decompose(a.Org, terms[:len(terms)-1]); err != ErrNotEmbellished {
		t.Fatalf("partial bucket: err = %v, want ErrNotEmbellished", err)
	}
	// A duplicated term is not either.
	if _, err := Decompose(a.Org, append(terms, terms[0])); err != ErrNotEmbellished {
		t.Fatalf("duplicate term: err = %v, want ErrNotEmbellished", err)
	}
	// Unknown terms are rejected.
	if _, err := Decompose(a.Org, []wordnet.TermID{1 << 30}); err != ErrNotEmbellished {
		t.Fatalf("unknown term: err = %v, want ErrNotEmbellished", err)
	}
	// Empty streams are rejected.
	if _, err := Decompose(a.Org, nil); err != ErrNotEmbellished {
		t.Fatalf("empty stream: err = %v, want ErrNotEmbellished", err)
	}
}

// TestMoreBucketsLowerRisk is the paper's core privacy claim restated
// for the auditor: adding decoy buckets to an observation must not
// increase the adversary's expected similarity. (Each extra
// independent position multiplies the product by a factor ≤ 1... but
// the 1/m exponent scaling couples positions, so assert the weaker,
// always-true monotonicity statistically over random bucket chains.)
func TestMoreBucketsLowerRisk(t *testing.T) {
	a := testAuditor(t)
	rng := rand.New(rand.NewSource(995))
	lower := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(a.Org.NumBuckets())
		small, err := a.ObservedRisk(perm[:2])
		if err != nil {
			t.Fatal(err)
		}
		large, err := a.ObservedRisk(perm[:5])
		if err != nil {
			t.Fatal(err)
		}
		if large < small {
			lower++
		}
	}
	if lower < trials*2/3 {
		t.Fatalf("risk dropped with more buckets in only %d/%d trials", lower, trials)
	}
}

func TestCoherence(t *testing.T) {
	a := testAuditor(t)
	terms := a.Org.Bucket(0)
	if len(terms) < 2 {
		t.Skip("bucket too small")
	}
	c := a.Coherence(terms, 0)
	if c < 0 {
		t.Fatalf("coherence %v negative", c)
	}
	if got := a.Coherence(terms[:1], 0); got != 0 {
		t.Fatalf("singleton coherence = %v, want 0", got)
	}
	if got := a.Coherence(nil, 0); got != 0 {
		t.Fatalf("empty coherence = %v, want 0", got)
	}
	// The cap restricts the pair set: capped at 2 it equals the
	// distance between the first two terms.
	want := a.Calc.TermDistance(terms[0], terms[1])
	if got := a.Coherence(terms, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("capped coherence = %v, want %v", got, want)
	}
}

package privacy

import (
	"errors"
	"math"

	"embellish/internal/bucket"
	"embellish/internal/semdist"
	"embellish/internal/wordnet"
)

// RiskModel evaluates the privacy risk of Equations 1 and 2 for a query
// sequence under a bucket organization. The paper notes the exact
// computation is impractical at scale (the candidate space S is the cross
// product of all bucket combinations, and adversary priors are unknown);
// this implementation makes it exact for the small instances used in
// tests and examples, under a configurable prior.
type RiskModel struct {
	Org  *bucket.Organization
	Calc *semdist.Calculator
	// Prior returns the adversary's prior belief α(s') for a candidate
	// sequence. Nil means a uniform prior.
	Prior func(seq [][]wordnet.TermID) float64
	// MaxSequences caps the enumeration; Evaluate fails beyond it.
	MaxSequences int
}

// NewRiskModel returns a model with a uniform prior and a 200,000-sequence
// enumeration cap.
func NewRiskModel(org *bucket.Organization, calc *semdist.Calculator) *RiskModel {
	return &RiskModel{Org: org, Calc: calc, MaxSequences: 200000}
}

// RiskResult is the outcome of an exact risk evaluation.
type RiskResult struct {
	// Risk is Equation 2: Σ_{s'∈S} β(s') · sim(s', s).
	Risk float64
	// PosteriorGenuine is β(s), the posterior the adversary assigns to
	// the genuine sequence itself.
	PosteriorGenuine float64
	// Sequences is |S|, the number of candidate sequences enumerated.
	Sequences int
}

// Evaluate computes the exact risk of the genuine query sequence s (one
// slice of genuine terms per query). Each genuine term expands to its
// full host bucket, and every per-slot combination of bucket terms forms
// a candidate query (Section 3.1's Q_i); candidate sequences are the
// cross product across queries.
func (rm *RiskModel) Evaluate(s [][]wordnet.TermID) (RiskResult, error) {
	if len(s) == 0 {
		return RiskResult{}, errors.New("privacy: empty query sequence")
	}
	// Per query, per genuine term, the bucket it expands to.
	perQuery := make([][][]wordnet.TermID, len(s)) // query -> position -> choices
	total := 1
	for qi, q := range s {
		if len(q) == 0 {
			return RiskResult{}, errors.New("privacy: empty query in sequence")
		}
		for _, t := range q {
			b, ok := rm.Org.BucketOf(t)
			if !ok {
				return RiskResult{}, errors.New("privacy: genuine term not in organization")
			}
			choices := rm.Org.Bucket(b)
			perQuery[qi] = append(perQuery[qi], choices)
			total *= len(choices)
			if total > rm.MaxSequences {
				return RiskResult{}, errors.New("privacy: candidate space exceeds MaxSequences")
			}
		}
	}

	// Enumerate S, accumulating α(s')·sim(s', s) and the normalizer.
	positions := 0
	for _, pq := range perQuery {
		positions += len(pq)
	}
	cand := make([]wordnet.TermID, positions)
	genuine := make([]wordnet.TermID, 0, positions)
	for _, q := range s {
		genuine = append(genuine, q...)
	}

	var flat [][]wordnet.TermID
	for _, pq := range perQuery {
		flat = append(flat, pq...)
	}

	var sumAlpha, sumAlphaSim, alphaGenuine float64
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(flat) {
			seq := rm.regroup(cand, s)
			alpha := 1.0
			if rm.Prior != nil {
				alpha = rm.Prior(seq)
			}
			sim := rm.SequenceSimilarity(cand, genuine)
			sumAlpha += alpha
			sumAlphaSim += alpha * sim
			if equalTerms(cand, genuine) {
				alphaGenuine = alpha
			}
			return
		}
		for _, t := range flat[pos] {
			cand[pos] = t
			rec(pos + 1)
		}
	}
	rec(0)

	if sumAlpha == 0 {
		return RiskResult{}, errors.New("privacy: prior assigns zero mass to all sequences")
	}
	return RiskResult{
		Risk:             sumAlphaSim / sumAlpha,
		PosteriorGenuine: alphaGenuine / sumAlpha,
		Sequences:        total,
	}, nil
}

// regroup shapes a flat candidate assignment back into per-query slices,
// matching the genuine sequence's shape.
func (rm *RiskModel) regroup(flat []wordnet.TermID, shape [][]wordnet.TermID) [][]wordnet.TermID {
	out := make([][]wordnet.TermID, len(shape))
	pos := 0
	for i, q := range shape {
		out[i] = flat[pos : pos+len(q)]
		pos += len(q)
	}
	return out
}

// SequenceSimilarity measures sim(s', s) between two flattened term
// sequences of equal length. Quantifying similarity between query
// sequences exactly is open (Section 3.1); following the paper's
// discussion we use a monotone transform of the mean positional semantic
// distance: sim = exp(-avgDist), which is 1 for identical sequences and
// decays toward 0 as the sequences diverge semantically.
func (rm *RiskModel) SequenceSimilarity(a, b []wordnet.TermID) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		sum += rm.Calc.TermDistance(a[i], b[i])
	}
	return math.Exp(-sum / float64(len(a)))
}

func equalTerms(a, b []wordnet.TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package privacy implements the privacy-risk framework of Sections 3.1
// and 5.1: the posterior-belief risk model of Equations 1-2, and the two
// empirical metrics used to judge bucket organizations in Figures 5 and 6
// — the intra-bucket specificity difference and the inter-bucket distance
// difference (closest and farthest cover) — together with the "Random"
// decoy baseline the paper compares against.
package privacy

import (
	"math/rand"

	"embellish/internal/bucket"
	"embellish/internal/semdist"
	"embellish/internal/wordnet"
)

// AvgSpecSpread returns the mean, over all buckets, of the difference
// between the highest and lowest term specificity within the bucket
// (Section 5.1, first metric; Figures 5(a) and 6(a)).
func AvgSpecSpread(org *bucket.Organization, spec bucket.Specificity) float64 {
	if org.NumBuckets() == 0 {
		return 0
	}
	sum := 0
	for b := 0; b < org.NumBuckets(); b++ {
		sum += org.SpecSpread(b, spec)
	}
	return float64(sum) / float64(org.NumBuckets())
}

// RandomOrganization builds the "Random" baseline: the same number of
// buckets of the same size, but populated by uniformly random assignment,
// ignoring both term semantics and specificity. The construction shuffles
// the dictionary and stripes it into buckets via Algorithm 2 with a
// constant specificity (so the in-segment sort is a no-op).
func RandomOrganization(terms []wordnet.TermID, bktSz int, rng *rand.Rand) (*bucket.Organization, error) {
	shuffled := append([]wordnet.TermID(nil), terms...)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	segSz := len(shuffled) / bktSz
	if segSz < 1 {
		segSz = 1
	}
	return bucket.Generate(shuffled, func(wordnet.TermID) int { return 0 }, bktSz, segSz)
}

// DistanceDifference is the result of the inter-bucket distance metric.
type DistanceDifference struct {
	// Closest is the average, over trials, of the smallest |dist-dist'|
	// across the decoy slots — how closely the best cover pair mimics the
	// semantic distance of the genuine pair.
	Closest float64
	// Farthest is the average of the largest |dist-dist'|.
	Farthest float64
	// Trials is the number of measurements actually taken.
	Trials int
}

// MeasureDistanceDifference reproduces the Section 5.1 procedure: pick
// the terms in slot i of a pair of randomly selected buckets as query
// terms (i uniform in [1, BktSz]), measure their semantic distance, and
// compare against the distance of the decoy pairs occupying the other
// slots. Terms are paired at the same slot because same-slot terms are
// generally closer in the term sequence, hence semantically closer, than
// cross-slot pairs.
func MeasureDistanceDifference(org *bucket.Organization, calc *semdist.Calculator, trials int, rng *rand.Rand) DistanceDifference {
	var out DistanceDifference
	if org.NumBuckets() < 2 {
		return out
	}
	var sumClosest, sumFarthest float64
	for n := 0; n < trials; n++ {
		a := rng.Intn(org.NumBuckets())
		b := rng.Intn(org.NumBuckets())
		for b == a {
			b = rng.Intn(org.NumBuckets())
		}
		ba, bb := org.Bucket(a), org.Bucket(b)
		w := len(ba)
		if len(bb) < w {
			w = len(bb)
		}
		if w < 2 {
			continue
		}
		i := rng.Intn(w)
		dist := calc.TermDistance(ba[i], bb[i])
		first := true
		var closest, farthest float64
		for j := 0; j < w; j++ {
			if j == i {
				continue
			}
			dj := calc.TermDistance(ba[j], bb[j])
			diff := dist - dj
			if diff < 0 {
				diff = -diff
			}
			if first {
				closest, farthest = diff, diff
				first = false
				continue
			}
			if diff < closest {
				closest = diff
			}
			if diff > farthest {
				farthest = diff
			}
		}
		sumClosest += closest
		sumFarthest += farthest
		out.Trials++
	}
	if out.Trials > 0 {
		out.Closest = sumClosest / float64(out.Trials)
		out.Farthest = sumFarthest / float64(out.Trials)
	}
	return out
}

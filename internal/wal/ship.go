package wal

import (
	"errors"
	"fmt"
)

// Shipping turns the journal into a replication log: a primary collects
// the record suffix a replica is missing (CollectAfter), ships the raw
// crc-framed record bytes over the wire, and the replica walks them
// with DecodeShipped. Shipped bytes and on-disk segment bytes share one
// grammar and one decoder, so every integrity property the recovery
// path has — crc per record, torn-tail detection, sequence continuity —
// holds for replication for free.

// ErrShipGap reports that the records a replica asked for have been
// retired by a checkpoint and are no longer in the log. The replica
// cannot catch up incrementally; it must re-bootstrap from the
// primary's engine file or newest checkpoint.
var ErrShipGap = errors.New("wal: shipped suffix unavailable (retired by checkpoint)")

// errStopCollect aborts a replay early once a chunk is full; it never
// escapes CollectAfter.
var errStopCollect = errors.New("wal: collect chunk full")

// EncodeRecord frames one record exactly as a segment append would:
// u32 length | body | u32 crc32(body).
func EncodeRecord(rec *Record) ([]byte, error) {
	return appendRecord(nil, rec)
}

// DecodeShipped walks a concatenation of record frames — a WAL chunk's
// payload — and hands every record to apply in order. Unlike a segment
// file there is no header and no tolerated torn tail: a shipped chunk
// was cut on a record boundary by the primary, so truncation or a crc
// mismatch is a transport error, not a crash artifact.
func DecodeShipped(buf []byte, apply func(*Record) error) error {
	off := 0
	for off < len(buf) {
		rec, n, torn, err := decodeRecord(buf[off:])
		if err != nil {
			return fmt.Errorf("wal: shipped record at offset %d: %w", off, err)
		}
		if torn {
			return errors.New("wal: truncated shipped record")
		}
		if err := apply(rec); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// CollectAfter gathers the encoded journal suffix with sequence numbers
// greater than after from the segments in dir: checkpoint markers are
// dropped (a replica replays operations, it does not checkpoint on the
// primary's schedule), continuity is enforced — if the first available
// operation is not after+1 the suffix has been retired and the error
// wraps ErrShipGap. A positive maxBytes caps the chunk (always keeping
// at least one record); more reports a truncated collection the caller
// should resume. A torn segment tail ends the collection cleanly — it
// is an append still in flight, shipped by the next pull.
func CollectAfter(dir string, after uint64, maxBytes int) (chunk []byte, last uint64, more bool, err error) {
	st, err := Scan(dir)
	if err != nil {
		return nil, 0, false, err
	}
	last = after
	for i, start := range st.Logs {
		// A segment holds records with seq > its own start, so when the
		// NEXT segment starts at or below after, everything here is
		// already applied — skip without reading.
		if i+1 < len(st.Logs) && st.Logs[i+1] <= after {
			continue
		}
		res, rerr := ReplayLog(LogPath(dir, start), start, func(rec *Record) error {
			if rec.Op == OpCheckpoint || rec.Seq <= after {
				return nil
			}
			if maxBytes > 0 && len(chunk) > 0 && len(chunk) >= maxBytes {
				more = true
				return errStopCollect
			}
			if rec.Seq != last+1 {
				return fmt.Errorf("%w: next available record is seq %d, wanted %d",
					ErrShipGap, rec.Seq, last+1)
			}
			var aerr error
			chunk, aerr = appendRecord(chunk, rec)
			if aerr != nil {
				return aerr
			}
			last = rec.Seq
			return nil
		})
		if errors.Is(rerr, errStopCollect) {
			return chunk, last, true, nil
		}
		if rerr != nil {
			return nil, 0, false, rerr
		}
		if res.Torn {
			break
		}
	}
	return chunk, last, more, nil
}

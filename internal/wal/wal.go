// Package wal implements the write-ahead log behind the engine's
// crash-safe durability: an append-only file of crc32-framed records
// (document adds, deletions and checkpoint markers), a writer with a
// configurable fsync policy, and a replayer that applies every fully
// persisted record and truncates a torn tail cleanly.
//
// The durability scheme is the standard database one (checkpoint +
// log): a durable directory holds full engine snapshots
// ("checkpoint-<seq>.bin", written by the embellish package with its
// own self-checksummed codec) and log segments ("wal-<seq>.log"). A
// segment named after sequence number n carries the operations that
// follow checkpoint n; recovery loads the newest loadable checkpoint
// and replays every segment at or after it in sequence order. Sequence
// numbers count journaled operations (one per add/delete batch), so a
// gap between a checkpoint and its logs — or inside the log chain — is
// detectable and reported as corruption rather than silently skipped.
//
// On-disk framing. A segment starts with a 13-byte header
// ("EWAL" | version | start sequence u64), followed by records:
//
//	u32 body length | body | u32 crc32(body)
//
// where body = op byte | seq vbyte | payload. Like every other decoder
// in this repository, the record decoder bounds each declared count by
// the bytes actually remaining, so forged lengths cannot force large
// allocations. An incomplete or checksum-failing record is
// indistinguishable from a crash mid-append and ends the replay as a
// torn tail; a complete record with a malformed body is corruption and
// errors out.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"embellish/internal/vbyte"
)

// Op identifies a journaled operation.
type Op byte

const (
	// OpAddDocs journals one AddDocuments batch: the assigned ids and
	// the raw document bytes.
	OpAddDocs Op = 1
	// OpDeleteDocs journals one DeleteDocuments batch: the tombstoned
	// ids.
	OpDeleteDocs Op = 2
	// OpCheckpoint marks the sequence number a checkpoint file covers;
	// it opens every log segment, giving replay a cross-check that the
	// segment really continues the checkpoint it is named after.
	OpCheckpoint Op = 3
)

// DocText is one journaled document: the id the engine assigned and
// the exact bytes that were indexed and stored.
type DocText struct {
	ID   uint32
	Text []byte
}

// Record is one journal entry. Seq numbers operations 1, 2, 3, ... —
// checkpoint markers reuse the seq of the operation they follow.
type Record struct {
	Op  Op
	Seq uint64
	// Docs carries the OpAddDocs payload.
	Docs []DocText
	// IDs carries the OpDeleteDocs payload, strictly increasing.
	IDs []uint32
}

const (
	logMagic   = "EWAL"
	logVersion = 1

	// HeaderSize is the fixed segment-header length; ReplayResult
	// offsets are at least this for any intact segment.
	HeaderSize = len(logMagic) + 1 + 8
	headerSize = HeaderSize

	// frame overhead: u32 length before the body, u32 crc32 after.
	frameOverhead = 8

	// maxRecordBody caps one record's encoded body: the largest length
	// both the u32 frame header and a 32-bit int can carry. Enforced at
	// append time with a clean error (split the batch); the decoder
	// treats anything larger as torn/corrupt, which also keeps every
	// offset computation inside int range on >= 4 GiB segments.
	maxRecordBody = 1<<31 - 1

	// maxDocID mirrors the engine's document-id bound; a journaled id
	// past it could never have been assigned.
	maxDocID = 1<<31 - 1
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncEveryRecord fsyncs after every Append: an acknowledged
	// operation survives any crash. The safe default.
	SyncEveryRecord SyncPolicy = iota
	// SyncInterval fsyncs on a background interval: a crash can lose
	// at most the last interval's operations.
	SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever
)

// DefaultSyncInterval is the SyncInterval period when none is given.
const DefaultSyncInterval = 100 * time.Millisecond

// CheckpointPath names the checkpoint file for sequence number seq.
func CheckpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.bin", seq))
}

// LogPath names the log segment starting after sequence number seq.
func LogPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

// appendRecord frames rec onto dst.
func appendRecord(dst []byte, rec *Record) ([]byte, error) {
	body := []byte{byte(rec.Op)}
	body = vbyte.Append(body, rec.Seq)
	switch rec.Op {
	case OpAddDocs:
		if len(rec.Docs) == 0 {
			return nil, errors.New("wal: add record with no documents")
		}
		body = vbyte.Append(body, uint64(len(rec.Docs)))
		for _, d := range rec.Docs {
			body = vbyte.Append(body, uint64(d.ID))
			body = vbyte.Append(body, uint64(len(d.Text)))
			body = append(body, d.Text...)
		}
	case OpDeleteDocs:
		if len(rec.IDs) == 0 {
			return nil, errors.New("wal: delete record with no ids")
		}
		sorted := make([]uint64, len(rec.IDs))
		for i, id := range rec.IDs {
			sorted[i] = uint64(id)
		}
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		var err error
		if body, err = vbyte.AppendGaps(body, sorted); err != nil {
			return nil, fmt.Errorf("wal: delete record: %w", err)
		}
	case OpCheckpoint:
		// no payload
	default:
		return nil, fmt.Errorf("wal: unknown record op %d", rec.Op)
	}
	if len(body) > maxRecordBody {
		// Never frame a length the u32 header cannot carry — the wrap
		// would be acknowledged now and surface as silent tail loss on
		// recovery.
		return nil, fmt.Errorf("wal: record body of %d bytes exceeds the %d limit; split the batch", len(body), maxRecordBody)
	}
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(body)))
	dst = append(dst, frame[:]...)
	dst = append(dst, body...)
	binary.LittleEndian.PutUint32(frame[:], crc32.ChecksumIEEE(body))
	return append(dst, frame[:]...), nil
}

// decodeRecord reads one frame from buf. torn reports that buf ends
// before the frame does (or its checksum fails) — the caller treats
// everything from here on as a tail lost to a crash. A complete,
// checksum-valid frame whose body does not parse is corruption and
// returns an error instead. Every count is bounded by the bytes that
// actually back it, so hostile lengths cannot force allocations beyond
// the input's own size; returned Docs/Text slices alias buf.
func decodeRecord(buf []byte) (rec *Record, n int, torn bool, err error) {
	if len(buf) < 4 {
		return nil, 0, true, nil
	}
	bodyLen64 := uint64(binary.LittleEndian.Uint32(buf))
	// Beyond any legal writer's cap: corrupt length bytes. Rejecting
	// here (before any offset arithmetic) also prevents uint32/int
	// wraparound on segments larger than 4 GiB.
	if bodyLen64 > maxRecordBody {
		return nil, 0, true, nil
	}
	if uint64(len(buf)) < 4+bodyLen64+4 {
		return nil, 0, true, nil
	}
	bodyLen := int(bodyLen64)
	body := buf[4 : 4+bodyLen]
	want := binary.LittleEndian.Uint32(buf[4+bodyLen:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, 0, true, nil
	}
	n = 4 + bodyLen + 4
	if len(body) < 2 {
		return nil, 0, false, errors.New("wal: record body too short")
	}
	rec = &Record{Op: Op(body[0])}
	payload := body[1:]
	seq, used, err := vbyte.Decode(payload)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: record seq: %w", err)
	}
	rec.Seq = seq
	payload = payload[used:]
	switch rec.Op {
	case OpAddDocs:
		count, used, err := vbyte.Decode(payload)
		// Each document costs at least two payload bytes (id + length).
		if err != nil || count == 0 || count > uint64(len(payload))/2+1 {
			return nil, 0, false, errors.New("wal: implausible document count")
		}
		payload = payload[used:]
		rec.Docs = make([]DocText, count)
		for i := range rec.Docs {
			id, used, err := vbyte.Decode(payload)
			if err != nil || id > maxDocID {
				return nil, 0, false, fmt.Errorf("wal: document %d id invalid", i)
			}
			payload = payload[used:]
			size, used, err := vbyte.Decode(payload)
			if err != nil || size > uint64(len(payload[used:])) {
				return nil, 0, false, fmt.Errorf("wal: document %d length overruns record", i)
			}
			payload = payload[used:]
			rec.Docs[i] = DocText{ID: uint32(id), Text: payload[:size]}
			payload = payload[size:]
		}
	case OpDeleteDocs:
		ids, used, err := vbyte.DecodeGaps(payload, len(payload))
		if err != nil || len(ids) == 0 {
			return nil, 0, false, fmt.Errorf("wal: delete ids: %w", err)
		}
		payload = payload[used:]
		rec.IDs = make([]uint32, len(ids))
		for i, id := range ids {
			if id > maxDocID {
				return nil, 0, false, errors.New("wal: deleted id out of range")
			}
			rec.IDs[i] = uint32(id)
		}
	case OpCheckpoint:
		// no payload
	default:
		return nil, 0, false, fmt.Errorf("wal: unknown record op %d", rec.Op)
	}
	if len(payload) != 0 {
		return nil, 0, false, errors.New("wal: trailing bytes in record body")
	}
	return rec, n, false, nil
}

// Writer appends records to one log segment under the configured sync
// policy. Safe for concurrent use; in this repository the engine
// additionally serializes appends under its own write lock, so records
// land in operation order.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	policy  SyncPolicy
	dirty   bool
	err     error // sticky: after an I/O failure every Append fails
	bytes   int64
	scratch []byte
	stop    chan struct{}
	done    chan struct{}
}

// Create starts a fresh log segment at path (which must not exist),
// writing its header durably so the segment survives a crash that
// follows immediately.
func Create(path string, startSeq uint64, policy SyncPolicy, interval time.Duration) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := writeHeader(f, startSeq); err == nil {
		err = f.Sync()
	}
	if err == nil {
		err = SyncDir(filepath.Dir(path))
	}
	if err != nil {
		// Remove the half-born segment: O_EXCL would otherwise block
		// every retry at this path forever.
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return newWriter(f, policy, interval), nil
}

// Open reopens an existing segment for appending after recovery,
// truncating everything past goodBytes (the replayer's last fully
// persisted record) so a torn tail can never precede new records. A
// goodBytes below the header size rewrites the segment from scratch —
// the header itself was torn.
func Open(path string, startSeq uint64, goodBytes int64, policy SyncPolicy, interval time.Duration) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if goodBytes < int64(headerSize) {
		goodBytes = 0
	}
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return nil, err
	}
	if goodBytes == 0 {
		if err := writeHeader(f, startSeq); err != nil {
			f.Close()
			return nil, err
		}
		goodBytes = int64(headerSize)
	}
	if _, err := f.Seek(goodBytes, 0); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return newWriter(f, policy, interval), nil
}

func writeHeader(f *os.File, startSeq uint64) error {
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, logMagic...)
	hdr = append(hdr, logVersion)
	var seq [8]byte
	binary.LittleEndian.PutUint64(seq[:], startSeq)
	hdr = append(hdr, seq[:]...)
	_, err := f.Write(hdr)
	return err
}

func newWriter(f *os.File, policy SyncPolicy, interval time.Duration) *Writer {
	w := &Writer{f: f, policy: policy}
	if policy == SyncInterval {
		if interval <= 0 {
			interval = DefaultSyncInterval
		}
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop(interval)
	}
	return w
}

func (w *Writer) syncLoop(interval time.Duration) {
	defer close(w.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.mu.Lock()
			if w.dirty && w.err == nil {
				if err := w.f.Sync(); err != nil {
					w.err = err
				} else {
					w.dirty = false
				}
			}
			w.mu.Unlock()
		}
	}
}

// Append journals one record, returning the bytes written. Under
// SyncEveryRecord the record is on stable storage when Append returns;
// any I/O failure is sticky — the caller must treat the operation as
// not journaled and refuse to apply it.
func (w *Writer) Append(rec *Record) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	buf, err := appendRecord(w.scratch[:0], rec)
	if err != nil {
		return 0, err
	}
	w.scratch = buf[:0]
	if _, err := w.f.Write(buf); err != nil {
		w.err = err
		return 0, err
	}
	w.bytes += int64(len(buf))
	if w.policy == SyncEveryRecord {
		if err := w.f.Sync(); err != nil {
			w.err = err
			return 0, err
		}
	} else {
		w.dirty = true
	}
	return len(buf), nil
}

// Sync flushes any buffered records to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	w.dirty = false
	return nil
}

// Bytes reports the record bytes appended through this writer.
func (w *Writer) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Close syncs and closes the segment, stopping the interval flusher.
func (w *Writer) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.err
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if w.err == nil {
		w.err = errors.New("wal: writer is closed")
	}
	return err
}

// SyncDir fsyncs a directory, making renames and creations inside it
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// State is the durable directory's file inventory.
type State struct {
	// Checkpoints and Logs hold the parsed sequence numbers in
	// increasing order. Unrelated files (including in-flight *.tmp
	// checkpoints) are ignored.
	Checkpoints []uint64
	Logs        []uint64
}

// Scan inventories a durable directory. A missing directory is an
// empty state, not an error.
func Scan(dir string) (State, error) {
	var st State
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var seq uint64
		name := e.Name()
		switch {
		case parseSeqName(name, "checkpoint-", ".bin", &seq):
			st.Checkpoints = append(st.Checkpoints, seq)
		case parseSeqName(name, "wal-", ".log", &seq):
			st.Logs = append(st.Logs, seq)
		}
	}
	sort.Slice(st.Checkpoints, func(a, b int) bool { return st.Checkpoints[a] < st.Checkpoints[b] })
	sort.Slice(st.Logs, func(a, b int) bool { return st.Logs[a] < st.Logs[b] })
	return st, nil
}

// parseSeqName matches prefix + 16 lowercase hex digits + suffix.
func parseSeqName(name, prefix, suffix string, seq *uint64) bool {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	hex := name[len(prefix) : len(prefix)+16]
	var v uint64
	for i := 0; i < 16; i++ {
		c := hex[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return false
		}
	}
	*seq = v
	return true
}

// ReplayResult describes one segment's replay.
type ReplayResult struct {
	// GoodBytes is the offset just past the last fully persisted
	// record — where an appender may resume after truncation.
	GoodBytes int64
	// Torn reports that trailing bytes past GoodBytes were dropped as
	// an interrupted append.
	Torn bool
	// Records is the number of records handed to apply.
	Records int
}

// ReplayLog reads one segment and hands every fully persisted record
// to apply, in file order. It verifies the header names startSeq (the
// sequence the filename promised). A torn tail ends the replay cleanly;
// corruption inside a complete record, and apply's own errors, abort
// it. Segments are bounded in practice by the checkpoint policy, so
// the whole file is read at once.
func ReplayLog(path string, startSeq uint64, apply func(*Record) error) (ReplayResult, error) {
	var res ReplayResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	// Header trouble over an otherwise EMPTY segment is the signature
	// of a crash DURING creation: Create syncs the header before the
	// segment is used, but a power cut inside that window can persist
	// the directory entry with short, zeroed or garbage data. Treat
	// that as a torn creation (no records, GoodBytes 0 — Open rewrites
	// the header), never a recovery-blocking error; if the segment was
	// not actually the journal's tail, the caller's sequence-continuity
	// checks still fail loudly. Two cases must stay loud instead: an
	// intact magic with an unknown VERSION (a format signal, not a
	// crash), and a bad header FOLLOWED BY decodable record frames —
	// creation tears cannot contain records (the header is durable
	// before the first append), so that is disk corruption, and
	// silently truncating it would destroy acknowledged operations.
	if len(data) < headerSize {
		res.Torn = len(data) > 0
		return res, nil
	}
	headerOK := string(data[:len(logMagic)]) == logMagic
	if headerOK && data[len(logMagic)] != logVersion {
		return res, fmt.Errorf("wal: unsupported log version %d", data[len(logMagic)])
	}
	if !headerOK || binary.LittleEndian.Uint64(data[len(logMagic)+1:]) != startSeq {
		if rec, _, torn, err := decodeRecord(data[headerSize:]); err == nil && !torn && rec != nil {
			return res, errors.New("wal: segment header corrupt over intact records; refusing to drop them")
		}
		res.Torn = true
		return res, nil
	}
	off := headerSize
	res.GoodBytes = int64(off)
	for off < len(data) {
		rec, n, torn, err := decodeRecord(data[off:])
		if err != nil {
			return res, err
		}
		if torn {
			res.Torn = true
			return res, nil
		}
		if err := apply(rec); err != nil {
			return res, err
		}
		off += n
		res.GoodBytes = int64(off)
		res.Records++
	}
	return res, nil
}

package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testRecords is a small mixed workload: the three ops, varied sizes.
func testRecords() []*Record {
	return []*Record{
		{Op: OpCheckpoint, Seq: 0},
		{Op: OpAddDocs, Seq: 1, Docs: []DocText{
			{ID: 0, Text: []byte("alpha beta")},
			{ID: 1, Text: []byte("")},
			{ID: 2, Text: bytes.Repeat([]byte("x"), 300)},
		}},
		{Op: OpDeleteDocs, Seq: 2, IDs: []uint32{1}},
		{Op: OpAddDocs, Seq: 3, Docs: []DocText{{ID: 3, Text: []byte("gamma")}}},
		{Op: OpDeleteDocs, Seq: 4, IDs: []uint32{0, 3}},
	}
}

func writeLog(t *testing.T, dir string, startSeq uint64, recs []*Record) string {
	t.Helper()
	path := LogPath(dir, startSeq)
	w, err := Create(path, startSeq, SyncNever, 0)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, r := range recs {
		if _, err := w.Append(r); err != nil {
			t.Fatalf("Append %+v: %v", r, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	path := writeLog(t, dir, 0, recs)
	var got []*Record
	res, err := ReplayLog(path, 0, func(r *Record) error {
		// The decoder aliases the file buffer; copy for comparison.
		cp := &Record{Op: r.Op, Seq: r.Seq, IDs: append([]uint32(nil), r.IDs...)}
		for _, d := range r.Docs {
			cp.Docs = append(cp.Docs, DocText{ID: d.ID, Text: append([]byte{}, d.Text...)})
		}
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	if res.Torn || res.Records != len(recs) {
		t.Fatalf("replay result %+v, want %d records untorn", res, len(recs))
	}
	for i, r := range recs {
		if !reflect.DeepEqual(r, got[i]) {
			t.Fatalf("record %d round-tripped as %+v, want %+v", i, got[i], r)
		}
	}
	fi, err := os.Stat(path)
	if err != nil || res.GoodBytes != fi.Size() {
		t.Fatalf("GoodBytes %d, file size %d (%v)", res.GoodBytes, fi.Size(), err)
	}
}

// TestReplayTornAtEveryByte: a log cut at ANY byte offset replays some
// prefix of its records without error — never a panic, never a bogus
// record, and the prefix only grows with the cut point.
func TestReplayTornAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	path := writeLog(t, dir, 0, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for cut := 0; cut <= len(data); cut++ {
		cutPath := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		count := 0
		res, err := ReplayLog(cutPath, 0, func(r *Record) error {
			if r.Seq != recs[count].Seq || r.Op != recs[count].Op {
				t.Fatalf("cut %d: record %d decoded as op %d seq %d", cut, count, r.Op, r.Seq)
			}
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: replay error: %v", cut, err)
		}
		if count < prev {
			t.Fatalf("cut %d: prefix shrank from %d to %d records", cut, prev, count)
		}
		if cut < len(data) && !res.Torn && count != len(recs) {
			// Only a cut exactly on a record boundary may be untorn.
			if res.GoodBytes != int64(cut) {
				t.Fatalf("cut %d: untorn mid-record (good %d)", cut, res.GoodBytes)
			}
		}
		prev = count
	}
	if prev != len(recs) {
		t.Fatalf("full file replayed %d records, want %d", prev, len(recs))
	}
}

// TestReplayRejectsCorruption: complete records with valid checksums
// but malformed bodies are corruption, not torn tails.
func TestReplayRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	for name, rec := range map[string][]byte{
		"unknown op":      mustFrame(t, []byte{99, 0x81}),
		"empty body":      mustFrame(t, nil),
		"trailing bytes":  mustFrame(t, []byte{byte(OpCheckpoint), 0x81, 0xff}),
		"forged count":    mustFrame(t, []byte{byte(OpAddDocs), 0x81, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x86}),
		"doc overrun":     mustFrame(t, []byte{byte(OpAddDocs), 0x81, 0x81, 0x80, 0xff}),
		"delete id bound": mustFrame(t, []byte{byte(OpDeleteDocs), 0x81, 0x81, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x7f, 0x81}),
	} {
		path := filepath.Join(dir, "corrupt.log")
		w, err := Create(path, 7, SyncNever, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(&Record{Op: OpCheckpoint, Seq: 7}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(rec); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, err := ReplayLog(path, 7, func(*Record) error { return nil }); err == nil {
			t.Errorf("%s: corrupt record replayed without error", name)
		}
		os.Remove(path)
	}
}

// mustFrame wraps a raw body in a valid length+crc frame, so the
// decoder sees a COMPLETE record and must judge the body itself.
func mustFrame(t *testing.T, body []byte) []byte {
	t.Helper()
	out := make([]byte, 4, 8+len(body))
	binary.LittleEndian.PutUint32(out, uint32(len(body)))
	out = append(out, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(out, crc[:]...)
}

// TestDecodeRejectsHugeFrameLength: a corrupt frame length near the
// u32 maximum must read as a torn tail, never as offset arithmetic
// that could wrap on multi-GiB segments.
func TestDecodeRejectsHugeFrameLength(t *testing.T) {
	for _, l := range []uint32{^uint32(0), ^uint32(0) - 3, 1<<31 + 1} {
		buf := make([]byte, 64)
		binary.LittleEndian.PutUint32(buf, l)
		rec, n, torn, err := decodeRecord(buf)
		if rec != nil || n != 0 || !torn || err != nil {
			t.Fatalf("frame length %#x: (%v, %d, %v, %v), want torn", l, rec, n, torn, err)
		}
	}
}

func TestReplayHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	// A bad header over INTACT records cannot be a creation tear (the
	// header is durable before the first append): silently truncating
	// would destroy acknowledged operations, so it must error loudly.
	path := writeLog(t, dir, 3, []*Record{{Op: OpCheckpoint, Seq: 3}})
	if _, err := ReplayLog(path, 4, nil); err == nil {
		t.Error("mismatched header sequence over intact records accepted")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff // corrupt the magic over the same intact record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayLog(path, 3, nil); err == nil {
		t.Error("corrupted magic over intact records accepted")
	}
	// Header trouble over an EMPTY remainder is the crash-during-
	// creation signature and replays as a torn creation, zero records.
	empty := writeLog(t, dir, 9, nil)
	if err := os.Truncate(empty, int64(HeaderSize)); err != nil {
		t.Fatal(err)
	}
	edata, err := os.ReadFile(empty)
	if err != nil {
		t.Fatal(err)
	}
	edata[7] ^= 0xff // tear the seq bytes of a record-less segment
	if err := os.WriteFile(empty, edata, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ReplayLog(empty, 9, nil)
	if err != nil || !res.Torn || res.Records != 0 || res.GoodBytes != 0 {
		t.Errorf("torn record-less header: %+v, %v; want torn creation", res, err)
	}
	for name, content := range map[string][]byte{
		"garbage": []byte("NOTAWALFILEATALL"),
		"short":   []byte("EWA"),
		"zeroed":  make([]byte, 40),
	} {
		bad := filepath.Join(dir, "bad.log")
		if err := os.WriteFile(bad, content, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := ReplayLog(bad, 0, nil)
		if err != nil || !res.Torn || res.Records != 0 {
			t.Errorf("%s header: %+v, %v; want torn creation", name, res, err)
		}
	}
	// An intact magic with an unknown VERSION is a format signal, not a
	// crash, and must stay a loud error.
	versioned := filepath.Join(dir, "versioned.log")
	if err := os.WriteFile(versioned, []byte("EWAL\x07\x00\x00\x00\x00\x00\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayLog(versioned, 0, nil); err == nil {
		t.Error("unknown log version accepted")
	}
}

// TestOpenTruncatesTornTail: Open resumes appending after the last good
// record, and the resulting log replays the old prefix plus the new
// records.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords()
	path := writeLog(t, dir, 0, recs[:3])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the last record.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ReplayLog(path, 0, func(*Record) error { return nil })
	if err != nil || !res.Torn || res.Records != 2 {
		t.Fatalf("torn replay: %+v, %v", res, err)
	}
	w, err := Open(path, 0, res.GoodBytes, SyncEveryRecord, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := w.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	res, err = ReplayLog(path, 0, func(r *Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	})
	if err != nil || res.Torn {
		t.Fatalf("replay after reopen: %+v, %v", res, err)
	}
	if !reflect.DeepEqual(seqs, []uint64{0, 1, 3}) {
		t.Fatalf("reopened log replays seqs %v", seqs)
	}
	// Torn HEADER: Open rewrites the segment from scratch.
	if err := os.WriteFile(path, []byte("EW"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err = Open(path, 5, 2, SyncNever, 0)
	if err != nil {
		t.Fatalf("Open over torn header: %v", err)
	}
	if _, err := w.Append(&Record{Op: OpCheckpoint, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = ReplayLog(path, 5, func(*Record) error { return nil })
	if err != nil || res.Torn || res.Records != 1 {
		t.Fatalf("rewritten segment: %+v, %v", res, err)
	}
}

func TestScan(t *testing.T) {
	dir := t.TempDir()
	if st, err := Scan(filepath.Join(dir, "missing")); err != nil || len(st.Checkpoints)+len(st.Logs) != 0 {
		t.Fatalf("missing dir: %+v, %v", st, err)
	}
	for _, name := range []string{
		"checkpoint-0000000000000000.bin",
		"checkpoint-000000000000002a.bin",
		"wal-000000000000002a.log",
		"wal-0000000000000000.log",
		"checkpoint-0000000000000001.bin.tmp", // in-flight: ignored
		"checkpoint-xyz.bin",                  // malformed: ignored
		"notes.txt",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Checkpoints, []uint64{0, 0x2a}) || !reflect.DeepEqual(st.Logs, []uint64{0, 0x2a}) {
		t.Fatalf("Scan = %+v", st)
	}
}

func TestWriterPolicies(t *testing.T) {
	dir := t.TempDir()
	for i, policy := range []SyncPolicy{SyncEveryRecord, SyncInterval, SyncNever} {
		path := LogPath(dir, uint64(i))
		w, err := Create(path, uint64(i), policy, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		n, err := w.Append(&Record{Op: OpCheckpoint, Seq: uint64(i)})
		if err != nil || n == 0 {
			t.Fatalf("policy %d: append %d, %v", policy, n, err)
		}
		if w.Bytes() != int64(n) {
			t.Fatalf("policy %d: Bytes %d after appending %d", policy, w.Bytes(), n)
		}
		if policy == SyncInterval {
			time.Sleep(25 * time.Millisecond) // let the flusher run once
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(&Record{Op: OpCheckpoint, Seq: 9}); err == nil {
			t.Fatal("append after Close succeeded")
		}
		res, err := ReplayLog(path, uint64(i), func(*Record) error { return nil })
		if err != nil || res.Records != 1 {
			t.Fatalf("policy %d: replay %+v, %v", policy, res, err)
		}
	}
	// Create refuses to clobber an existing segment.
	if _, err := Create(LogPath(dir, 0), 0, SyncNever, 0); err == nil {
		t.Fatal("Create over an existing segment succeeded")
	}
}

package wal

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func shipRecs() []*Record {
	return []*Record{
		{Op: OpAddDocs, Seq: 1, Docs: []DocText{{ID: 10, Text: []byte("alpha")}}},
		{Op: OpAddDocs, Seq: 2, Docs: []DocText{{ID: 11, Text: []byte("beta")}, {ID: 12, Text: bytes.Repeat([]byte("y"), 200)}}},
		{Op: OpCheckpoint, Seq: 2},
		{Op: OpDeleteDocs, Seq: 3, IDs: []uint32{10}},
		{Op: OpAddDocs, Seq: 4, Docs: []DocText{{ID: 13, Text: []byte("delta")}}},
	}
}

func TestEncodeRecordDecodeShippedRoundTrip(t *testing.T) {
	var chunk []byte
	want := shipRecs()
	for _, r := range want {
		enc, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		chunk = append(chunk, enc...)
	}
	var got []*Record
	if err := DecodeShipped(chunk, func(rec *Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d records shipped, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Op != want[i].Op || rec.Seq != want[i].Seq || len(rec.Docs) != len(want[i].Docs) || len(rec.IDs) != len(want[i].IDs) {
			t.Fatalf("record %d mangled: %+v", i, rec)
		}
		for j := range rec.Docs {
			if rec.Docs[j].ID != want[i].Docs[j].ID || !bytes.Equal(rec.Docs[j].Text, want[i].Docs[j].Text) {
				t.Fatalf("record %d doc %d mangled", i, j)
			}
		}
	}
}

func TestDecodeShippedRejectsTornAndCorrupt(t *testing.T) {
	enc, err := EncodeRecord(shipRecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	nop := func(*Record) error { return nil }
	// A shipped chunk is cut on record boundaries by the primary:
	// truncation anywhere is a transport error, never tolerated.
	for cut := 1; cut < len(enc); cut++ {
		if err := DecodeShipped(enc[:cut], nop); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-5] ^= 0x40 // body byte; crc must catch it
	if err := DecodeShipped(flipped, nop); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

func TestCollectAfter(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, shipRecs())

	chunk, last, more, err := CollectAfter(dir, 0, 0)
	if err != nil || more {
		t.Fatalf("collect: %v more=%v", err, more)
	}
	if last != 4 {
		t.Fatalf("last %d, want 4", last)
	}
	var seqs []uint64
	if err := DecodeShipped(chunk, func(rec *Record) error {
		if rec.Op == OpCheckpoint {
			t.Fatal("checkpoint marker shipped")
		}
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 || seqs[0] != 1 || seqs[3] != 4 {
		t.Fatalf("shipped seqs %v", seqs)
	}

	// Mid-log resume: only the suffix ships.
	chunk, last, _, err = CollectAfter(dir, 2, 0)
	if err != nil || last != 4 {
		t.Fatalf("suffix collect: %v last=%d", err, last)
	}
	seqs = nil
	if err := DecodeShipped(chunk, func(rec *Record) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("suffix seqs %v", seqs)
	}

	// Caught up: empty chunk, last == after.
	chunk, last, more, err = CollectAfter(dir, 4, 0)
	if err != nil || len(chunk) != 0 || last != 4 || more {
		t.Fatalf("caught-up collect: %v chunk=%d last=%d more=%v", err, len(chunk), last, more)
	}
}

func TestCollectAfterSizeCap(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, shipRecs())
	// A 1-byte cap still ships at least one record per pull; resuming
	// from last eventually drains the log.
	after, pulls := uint64(0), 0
	for {
		chunk, last, more, err := CollectAfter(dir, after, 1)
		if err != nil {
			t.Fatal(err)
		}
		pulls++
		if last > after && len(chunk) == 0 {
			t.Fatal("progress without records")
		}
		after = last
		if !more && last == 4 {
			break
		}
		if pulls > 10 {
			t.Fatal("capped collection not converging")
		}
	}
	if pulls < 2 {
		t.Fatalf("1-byte cap served everything in %d pulls", pulls)
	}
}

func TestCollectAfterMultiSegment(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 0, shipRecs()) // seqs 1..4
	writeLog(t, dir, 4, []*Record{
		{Op: OpCheckpoint, Seq: 4},
		{Op: OpAddDocs, Seq: 5, Docs: []DocText{{ID: 14, Text: []byte("episode")}}},
	})
	chunk, last, _, err := CollectAfter(dir, 3, 0)
	if err != nil || last != 5 {
		t.Fatalf("collect: %v last=%d", err, last)
	}
	var seqs []uint64
	if err := DecodeShipped(chunk, func(rec *Record) error {
		seqs = append(seqs, rec.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 4 || seqs[1] != 5 {
		t.Fatalf("cross-segment seqs %v", seqs)
	}
}

func TestCollectAfterGap(t *testing.T) {
	dir := t.TempDir()
	// A checkpoint retired the first segment: the log now starts at 4.
	writeLog(t, dir, 4, []*Record{
		{Op: OpCheckpoint, Seq: 4},
		{Op: OpAddDocs, Seq: 5, Docs: []DocText{{ID: 14, Text: []byte("episode")}}},
	})
	_, _, _, err := CollectAfter(dir, 1, 0)
	if !errors.Is(err, ErrShipGap) {
		t.Fatalf("retired suffix collected: %v", err)
	}
}

func TestCollectAfterTornTailEndsCleanly(t *testing.T) {
	dir := t.TempDir()
	path := writeLog(t, dir, 0, shipRecs())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: an append still in flight. Collection ships the
	// intact prefix without error.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	chunk, last, more, err := CollectAfter(dir, 0, 0)
	if err != nil || more {
		t.Fatalf("torn collect: %v more=%v", err, more)
	}
	if last != 3 {
		t.Fatalf("torn tail collected through seq %d, want 3", last)
	}
	if err := DecodeShipped(chunk, func(*Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

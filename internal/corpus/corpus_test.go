package corpus

import (
	"strings"
	"testing"

	"embellish/internal/wngen"
	"embellish/internal/wordnet"
)

func genSmall(seed int64) (*wordnet.Database, *Corpus) {
	db := wngen.Generate(wngen.ScaledConfig(2000, 3))
	cfg := DefaultConfig()
	cfg.NumDocs = 200
	cfg.MeanDocLen = 60
	cfg.Seed = seed
	return db, Generate(db, cfg)
}

func TestGenerateShape(t *testing.T) {
	_, c := genSmall(1)
	if len(c.Docs) != 200 {
		t.Fatalf("NumDocs = %d", len(c.Docs))
	}
	for i, d := range c.Docs {
		if d.ID != i {
			t.Fatalf("doc %d has ID %d", i, d.ID)
		}
		if len(d.Tokens) == 0 {
			t.Fatalf("doc %d is empty", i)
		}
	}
}

func TestVocabularyMatchesUsage(t *testing.T) {
	db, c := genSmall(2)
	used := make(map[string]bool)
	for _, d := range c.Docs {
		for _, tok := range d.Tokens {
			used[tok] = true
		}
	}
	if len(used) != len(c.Vocabulary) {
		t.Fatalf("vocabulary %d entries, corpus uses %d distinct tokens",
			len(c.Vocabulary), len(used))
	}
	for _, tid := range c.Vocabulary {
		if !used[db.Lemma(tid)] {
			t.Fatalf("vocabulary term %q never used", db.Lemma(tid))
		}
	}
}

func TestDeterminism(t *testing.T) {
	_, a := genSmall(9)
	_, b := genSmall(9)
	for i := range a.Docs {
		if len(a.Docs[i].Tokens) != len(b.Docs[i].Tokens) {
			t.Fatalf("doc %d lengths differ", i)
		}
		for j := range a.Docs[i].Tokens {
			if a.Docs[i].Tokens[j] != b.Docs[i].Tokens[j] {
				t.Fatalf("doc %d token %d differs", i, j)
			}
		}
	}
}

func TestSeedChangesCorpus(t *testing.T) {
	_, a := genSmall(1)
	_, b := genSmall(2)
	diff := false
	for i := range a.Docs {
		if len(a.Docs[i].Tokens) != len(b.Docs[i].Tokens) {
			diff = true
			break
		}
		for j := range a.Docs[i].Tokens {
			if a.Docs[i].Tokens[j] != b.Docs[i].Tokens[j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestSkewedTermDistribution(t *testing.T) {
	// Zipfian background + topical clustering must produce a skewed
	// document-frequency distribution: the most common term should occur
	// in far more documents than the median term.
	_, c := genSmall(5)
	df := make(map[string]int)
	for _, d := range c.Docs {
		seen := make(map[string]bool)
		for _, tok := range d.Tokens {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	max := 0
	ones := 0
	for _, n := range df {
		if n > max {
			max = n
		}
		if n == 1 {
			ones++
		}
	}
	if max < 20 {
		t.Fatalf("most common term in only %d/200 docs; distribution not skewed", max)
	}
	if ones < len(df)/4 {
		t.Fatalf("only %d/%d hapax terms; tail not long enough", ones, len(df))
	}
}

func TestTopicalClustering(t *testing.T) {
	// With TopicBias > 0, documents repeat neighborhood terms: average
	// distinct-token ratio must be clearly below 1 token-per-position.
	_, c := genSmall(6)
	var distinct, total int
	for _, d := range c.Docs {
		seen := make(map[string]bool)
		for _, tok := range d.Tokens {
			seen[tok] = true
		}
		distinct += len(seen)
		total += len(d.Tokens)
	}
	ratio := float64(distinct) / float64(total)
	if ratio > 0.9 {
		t.Fatalf("distinct ratio %.2f; no topical repetition", ratio)
	}
}

func TestTextRendersWithFillers(t *testing.T) {
	_, c := genSmall(7)
	text := c.Docs[0].Text()
	if !strings.Contains(text, " the ") && !strings.Contains(text, " of ") &&
		!strings.Contains(text, " a ") && !strings.Contains(text, " in ") {
		t.Fatalf("rendered text has no stopword fillers: %q", text[:min(len(text), 120)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package corpus generates a synthetic news corpus standing in for the
// WSJ collection used in Section 5.2 (172,961 Wall Street Journal
// articles, ~513 MB). The real corpus is licensed TREC data and cannot
// ship here; what the experiments actually consume is (a) a searchable
// dictionary intersected with the lexical database and (b) inverted lists
// whose lengths and impact values have a realistic skew. The generator
// reproduces both: document vocabulary is drawn from the lexicon with a
// Zipfian rank-frequency law (a handful of very common terms, a long tail
// of rare ones), and each document is topically clustered — most of its
// tokens come from a small semantic neighborhood, mirroring how real
// articles concentrate on a subject. Corpus size is a scale parameter;
// experiments record the scale they ran at.
package corpus

import (
	"math/rand"
	"strings"

	"embellish/internal/wordnet"
)

// Config controls corpus synthesis.
type Config struct {
	// NumDocs is the number of articles. The WSJ corpus has 172,961;
	// the default experiment scale is smaller and recorded per run.
	NumDocs int
	// MeanDocLen is the mean number of indexable tokens per article
	// (after stopword removal). WSJ articles average ≈250.
	MeanDocLen int
	// TopicBias is the probability that a token is drawn from the
	// document's topical neighborhood rather than the global
	// distribution.
	TopicBias float64
	// TopicsPerDoc is the maximum number of topic synsets per article.
	TopicsPerDoc int
	// ZipfS is the Zipf exponent of the global term distribution
	// (s > 1; natural text is near 1.1).
	ZipfS float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig returns a laptop-scale corpus configuration.
func DefaultConfig() Config {
	return Config{
		NumDocs:      5000,
		MeanDocLen:   180,
		TopicBias:    0.55,
		TopicsPerDoc: 3,
		ZipfS:        1.10,
		Seed:         7,
	}
}

// Document is one synthetic article.
type Document struct {
	ID int
	// Tokens is the analyzed token stream (lexicon lemmas; multi-word
	// lemmas appear as single tokens, as Lucene-with-a-phrase-dictionary
	// would emit them).
	Tokens []string
}

// Text renders the document as raw prose, re-injecting stopwords so that
// examples can exercise the full tokenize→stopword→match pipeline.
func (d *Document) Text() string {
	var b strings.Builder
	fillers := []string{"the", "a", "of", "in", "and", "for", "with", "on"}
	for i, t := range d.Tokens {
		if i > 0 {
			if i%7 == 3 {
				b.WriteString(" " + fillers[i%len(fillers)])
			}
			b.WriteByte(' ')
		}
		b.WriteString(t)
		if i%13 == 12 {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// Corpus is the generated collection plus the sampling structures used to
// draw realistic queries from it.
type Corpus struct {
	Docs []Document
	// Vocabulary is the set of lexicon terms that actually occur, i.e.
	// the searchable dictionary after intersecting the index dictionary
	// with the lexical database (Section 5.2).
	Vocabulary []wordnet.TermID
}

// Generate synthesizes a corpus over the given lexicon.
func Generate(db *wordnet.Database, cfg Config) *Corpus {
	if cfg.NumDocs <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := db.NumTerms()

	// Random rank permutation: which term is "the most common" is
	// independent of term ID and of lexicon structure.
	perm := rng.Perm(n)
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(n-1))

	lemmas := make([]string, n)
	for i := 0; i < n; i++ {
		lemmas[i] = db.Lemma(wordnet.TermID(i))
	}

	seen := make([]bool, n)
	c := &Corpus{Docs: make([]Document, cfg.NumDocs)}
	var topicScratch []wordnet.TermID
	for d := 0; d < cfg.NumDocs; d++ {
		docLen := cfg.MeanDocLen/2 + rng.Intn(cfg.MeanDocLen+1)
		tokens := make([]string, 0, docLen)

		// Topic neighborhoods: terms within two relation hops of a few
		// randomly chosen topic synsets.
		topicScratch = topicScratch[:0]
		nTopics := 1 + rng.Intn(cfg.TopicsPerDoc)
		for i := 0; i < nTopics; i++ {
			seed := wordnet.SynsetID(rng.Intn(db.NumSynsets()))
			topicScratch = appendNeighborhood(db, seed, 2, topicScratch)
		}

		for i := 0; i < docLen; i++ {
			var t wordnet.TermID
			if len(topicScratch) > 0 && rng.Float64() < cfg.TopicBias {
				t = topicScratch[rng.Intn(len(topicScratch))]
			} else {
				t = wordnet.TermID(perm[zipf.Uint64()])
			}
			tokens = append(tokens, lemmas[t])
			if !seen[t] {
				seen[t] = true
				c.Vocabulary = append(c.Vocabulary, t)
			}
		}
		c.Docs[d] = Document{ID: d, Tokens: tokens}
	}
	return c
}

// appendNeighborhood appends the terms of all synsets within the given
// number of relation hops of seed.
func appendNeighborhood(db *wordnet.Database, seed wordnet.SynsetID, hops int, out []wordnet.TermID) []wordnet.TermID {
	frontier := []wordnet.SynsetID{seed}
	visited := map[wordnet.SynsetID]bool{seed: true}
	for h := 0; h <= hops; h++ {
		var next []wordnet.SynsetID
		for _, s := range frontier {
			out = append(out, db.Synset(s).Terms...)
			if h == hops {
				continue
			}
			for _, r := range db.Synset(s).Relations {
				if !visited[r.To] {
					visited[r.To] = true
					next = append(next, r.To)
				}
			}
		}
		frontier = next
	}
	return out
}

package benaloh

import (
	"math/big"
	"testing"

	"embellish/internal/detrand"
)

func fbTestKey(t testing.TB) *PrivateKey {
	t.Helper()
	key, err := GenerateKey(detrand.New("fixedbase"), 256, Pow3(10))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestFixedBasePowMatchesExp checks every exponent in range against the
// generic modular exponentiation, across several window widths.
func TestFixedBasePowMatchesExp(t *testing.T) {
	key := fbTestKey(t)
	pk := &key.PublicKey
	c, err := pk.EncryptInt(detrand.New("fb-flag"), 1)
	if err != nil {
		t.Fatal(err)
	}
	const maxExp = 255
	for _, window := range []uint{1, 2, 3, 4, 5, 8} {
		fb := pk.NewFixedBase(c, maxExp, window)
		for e := int64(0); e <= maxExp; e++ {
			got, _ := fb.Pow(e)
			want := new(big.Int).Exp(c, big.NewInt(e), pk.N)
			if got.Cmp(want) != 0 {
				t.Fatalf("window %d: Pow(%d) = %v, want %v", window, e, got, want)
			}
		}
	}
}

// TestFixedBasePowFreshResult verifies Pow returns values the caller can
// mutate without corrupting the table (the server accumulates scores
// in place on top of Pow results).
func TestFixedBasePowFreshResult(t *testing.T) {
	key := fbTestKey(t)
	pk := &key.PublicKey
	c, err := pk.EncryptInt(detrand.New("fb-mut"), 1)
	if err != nil {
		t.Fatal(err)
	}
	fb := pk.NewFixedBase(c, 255, 4)
	for _, e := range []int64{0, 1, 3, 16, 17, 255} {
		v, _ := fb.Pow(e)
		want := new(big.Int).Set(v)
		v.SetInt64(-12345) // simulate caller mutation
		again, _ := fb.Pow(e)
		if again.Cmp(want) != 0 {
			t.Fatalf("Pow(%d) corrupted by caller mutation: got %v want %v", e, again, want)
		}
	}
}

// TestFixedBaseHomomorphism drives the table through the actual use:
// accumulating E(u)^p homomorphically and decrypting the sum.
func TestFixedBaseHomomorphism(t *testing.T) {
	key := fbTestKey(t)
	pk := &key.PublicKey
	rng := detrand.New("fb-homo")
	flag, err := pk.EncryptInt(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb := pk.NewFixedBase(flag, 255, 0)
	acc, err := pk.EncryptZero(rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := int64(0)
	for _, p := range []int64{1, 7, 100, 255, 30} {
		contrib, _ := fb.Pow(p)
		pk.AddInto(acc, contrib)
		sum += p
	}
	m, err := key.DecryptInt(acc)
	if err != nil {
		t.Fatal(err)
	}
	if m != sum {
		t.Fatalf("decrypted %d, want %d", m, sum)
	}
}

func BenchmarkScalarMul(b *testing.B) {
	key := fbTestKey(b)
	pk := &key.PublicKey
	c, _ := pk.EncryptInt(detrand.New("fb-bench"), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.ScalarMul(c, int64(1+i%255))
	}
}

func BenchmarkFixedBasePow(b *testing.B) {
	key := fbTestKey(b)
	pk := &key.PublicKey
	c, _ := pk.EncryptInt(detrand.New("fb-bench"), 1)
	fb := pk.NewFixedBase(c, 255, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Pow(int64(1 + i%255))
	}
}

package benaloh

import (
	"errors"
	"fmt"
	"math/big"
)

// Decrypt recovers the plaintext of c. When r = 3^k the optimized
// digit-by-digit procedure of Appendix A.2 is used (k modular
// exponentiations); otherwise decryption falls back to baby-step
// giant-step in O(√r) multiplications.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if sk.k > 0 {
		return sk.decryptPow3(c)
	}
	return sk.decryptBSGS(c)
}

// DecryptInt decrypts and returns the plaintext as an int64.
func (sk *PrivateKey) DecryptInt(c *big.Int) (int64, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return 0, err
	}
	return m.Int64(), nil
}

// ExpOps reports the number of modular exponentiations one decryption
// costs with the current key (the dominant term of the user-side CPU cost
// model in the Figure 7/8 experiments).
func (sk *PrivateKey) ExpOps() int {
	if sk.k > 0 {
		return sk.k
	}
	return 1 // BSGS: one exponentiation plus O(√r) multiplications
}

// decryptPow3 recovers m base-3 digit by digit. Writing m = Σ d_i·3^i,
// after the low digits m_i = m mod 3^i are known, the value
//
//	t = (c · g^{-m_i})^{φ/3^{i+1}} = (g^{φ/3})^{d_i}  (mod n)
//
// reveals the next digit d_i by comparison against the precomputed powers
// of w = g^{φ/3}, because µ^{r·φ/3^{i+1}} = (µ^φ)^{3^{k-i-1}} = 1.
func (sk *PrivateKey) decryptPow3(c *big.Int) (*big.Int, error) {
	if new(big.Int).GCD(nil, nil, c, sk.N).Cmp(one) != 0 {
		return nil, errors.New("benaloh: ciphertext not in Z_n^*")
	}
	m := new(big.Int)
	adj := new(big.Int).Set(c) // c · g^{-m_i} mod n, updated incrementally
	t := new(big.Int)
	gInvPow := new(big.Int).Set(sk.gInv) // g^{-3^i} mod n
	p3 := big.NewInt(1)                  // 3^i
	for i := 0; i < sk.k; i++ {
		t.Exp(adj, sk.phiOv3i[i+1], sk.N)
		var d int64
		switch {
		case t.Cmp(sk.wPow[0]) == 0:
			d = 0
		case t.Cmp(sk.wPow[1]) == 0:
			d = 1
		case t.Cmp(sk.wPow[2]) == 0:
			d = 2
		default:
			return nil, fmt.Errorf("benaloh: decryption failed at digit %d (invalid ciphertext or key)", i)
		}
		if d > 0 {
			// m += d·3^i; adj ·= g^{-d·3^i}.
			m.Add(m, new(big.Int).Mul(big.NewInt(d), p3))
			step := gInvPow
			if d == 2 {
				step = new(big.Int).Mul(gInvPow, gInvPow)
				step.Mod(step, sk.N)
			}
			adj.Mul(adj, step)
			adj.Mod(adj, sk.N)
		}
		// Advance g^{-3^i} -> g^{-3^{i+1}} and 3^i -> 3^{i+1}.
		gInvPow.Exp(gInvPow, big.NewInt(3), sk.N)
		p3.Mul(p3, big.NewInt(3))
	}
	return m, nil
}

// decryptBSGS solves h^m = c^{φ/r} for m with baby-step giant-step, where
// h = g^{φ/r} has order r modulo n.
func (sk *PrivateKey) decryptBSGS(c *big.Int) (*big.Int, error) {
	target := new(big.Int).Exp(c, sk.phiOvR, sk.N)
	if sk.babyTab == nil {
		// Baby steps: h^j for j in [0, ceil(sqrt(r))).
		m := new(big.Int).Sqrt(sk.R)
		m.Add(m, one)
		sk.babySize = int(m.Int64())
		sk.babyTab = make(map[string]int64, sk.babySize)
		v := big.NewInt(1)
		for j := 0; j < sk.babySize; j++ {
			sk.babyTab[string(v.Bytes())] = int64(j)
			v = new(big.Int).Mul(v, sk.hBase)
			v.Mod(v, sk.N)
		}
	}
	// Giant steps: target · (h^{-m})^i.
	hInvM := new(big.Int).ModInverse(sk.hBase, sk.N)
	hInvM.Exp(hInvM, big.NewInt(int64(sk.babySize)), sk.N)
	cur := new(big.Int).Set(target)
	bound := new(big.Int).Div(sk.R, big.NewInt(int64(sk.babySize)))
	for i := int64(0); i <= bound.Int64()+1; i++ {
		if j, ok := sk.babyTab[string(cur.Bytes())]; ok {
			m := big.NewInt(i)
			m.Mul(m, big.NewInt(int64(sk.babySize)))
			m.Add(m, big.NewInt(j))
			if m.Cmp(sk.R) < 0 {
				return m, nil
			}
		}
		cur.Mul(cur, hInvM)
		cur.Mod(cur, sk.N)
	}
	return nil, errors.New("benaloh: BSGS decryption failed (invalid ciphertext)")
}

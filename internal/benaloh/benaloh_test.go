package benaloh

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"testing"
	"testing/quick"
)

// detRand is a deterministic "randomness" stream for reproducible keys in
// tests. NOT cryptographically secure — tests only.
type detRand struct {
	state [32]byte
	buf   bytes.Buffer
}

func newDetRand(seed string) *detRand {
	d := &detRand{state: sha256.Sum256([]byte(seed))}
	return d
}

func (d *detRand) Read(p []byte) (int, error) {
	for d.buf.Len() < len(p) {
		d.state = sha256.Sum256(d.state[:])
		d.buf.Write(d.state[:])
	}
	return d.buf.Read(p)
}

var testKey *PrivateKey

func key(t *testing.T) *PrivateKey {
	t.Helper()
	if testKey == nil {
		k, err := GenerateKey(newDetRand("benaloh-test"), 256, Pow3(9))
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	}
	return testKey
}

func TestKeyStructure(t *testing.T) {
	k := key(t)
	// r | p1-1.
	mod := new(big.Int).Mod(new(big.Int).Sub(k.P1, big.NewInt(1)), k.R)
	if mod.Sign() != 0 {
		t.Fatal("r does not divide p1-1")
	}
	// gcd(r, (p1-1)/r) = 1.
	q := new(big.Int).Div(new(big.Int).Sub(k.P1, big.NewInt(1)), k.R)
	if new(big.Int).GCD(nil, nil, q, k.R).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("gcd(r, (p1-1)/r) != 1")
	}
	// gcd(r, p2-1) = 1.
	if new(big.Int).GCD(nil, nil, new(big.Int).Sub(k.P2, big.NewInt(1)), k.R).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("gcd(r, p2-1) != 1")
	}
	// n = p1·p2.
	if new(big.Int).Mul(k.P1, k.P2).Cmp(k.N) != 0 {
		t.Fatal("n != p1*p2")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := key(t)
	rnd := newDetRand("roundtrip")
	for _, m := range []int64{0, 1, 2, 3, 100, 6560, 19682} {
		c, err := k.EncryptInt(rnd, m)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := k.DecryptInt(c)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: got %d, want %d", got, m)
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	k := key(t)
	if _, err := k.Encrypt(newDetRand("x"), big.NewInt(-1)); err == nil {
		t.Error("negative message accepted")
	}
	if _, err := k.Encrypt(newDetRand("x"), new(big.Int).Set(k.R)); err == nil {
		t.Error("message == r accepted")
	}
}

func TestProbabilisticEncryption(t *testing.T) {
	// The random µ must make repeated encryptions of the same message
	// yield different ciphertexts (Appendix A.2).
	k := key(t)
	rnd := newDetRand("prob")
	c1, _ := k.EncryptInt(rnd, 5)
	c2, _ := k.EncryptInt(rnd, 5)
	if c1.Cmp(c2) == 0 {
		t.Fatal("two encryptions of the same message are identical")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	k := key(t)
	rnd := newDetRand("hom")
	c1, _ := k.EncryptInt(rnd, 123)
	c2, _ := k.EncryptInt(rnd, 456)
	sum := k.PublicKey.Add(c1, c2)
	got, err := k.DecryptInt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got != 579 {
		t.Fatalf("E(123)+E(456) decrypted to %d", got)
	}
}

func TestScalarMul(t *testing.T) {
	k := key(t)
	rnd := newDetRand("scalar")
	// E(u)^p: the server's per-posting operation (Algorithm 4 line 5).
	for _, tc := range []struct{ u, p, want int64 }{
		{1, 37, 37}, {0, 37, 0}, {1, 255, 255}, {0, 255, 0}, {1, 0, 0},
	} {
		c, _ := k.EncryptInt(rnd, tc.u)
		got, err := k.DecryptInt(k.ScalarMul(c, tc.p))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("E(%d)^%d = %d, want %d", tc.u, tc.p, got, tc.want)
		}
	}
}

func TestHomomorphismWrapsModR(t *testing.T) {
	k := key(t)
	rnd := newDetRand("wrap")
	// (r-1) + 2 ≡ 1 (mod r).
	rm1 := new(big.Int).Sub(k.R, big.NewInt(1))
	c1, _ := k.Encrypt(rnd, rm1)
	c2, _ := k.EncryptInt(rnd, 2)
	got, err := k.DecryptInt(k.PublicKey.Add(c1, c2))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("wrap-around sum = %d, want 1", got)
	}
}

func TestAddInto(t *testing.T) {
	k := key(t)
	rnd := newDetRand("addinto")
	acc, _ := k.EncryptInt(rnd, 10)
	c, _ := k.EncryptInt(rnd, 7)
	k.PublicKey.AddInto(acc, c)
	got, _ := k.DecryptInt(acc)
	if got != 17 {
		t.Fatalf("AddInto = %d, want 17", got)
	}
}

func TestEncryptZeroFresh(t *testing.T) {
	k := key(t)
	rnd := newDetRand("zero")
	z1, _ := k.EncryptZero(rnd)
	z2, _ := k.EncryptZero(rnd)
	if z1.Cmp(z2) == 0 {
		t.Fatal("EncryptZero returned identical ciphertexts")
	}
	if m, _ := k.DecryptInt(z1); m != 0 {
		t.Fatalf("EncryptZero decrypts to %d", m)
	}
}

func TestBSGSDecryptionPrimeR(t *testing.T) {
	// Prime r exercises the baby-step giant-step fallback.
	k, err := GenerateKey(newDetRand("bsgs"), 192, big.NewInt(10007))
	if err != nil {
		t.Fatal(err)
	}
	if k.ExpOps() != 1 {
		t.Fatalf("ExpOps for prime r = %d, want 1", k.ExpOps())
	}
	rnd := newDetRand("bsgs-msgs")
	for _, m := range []int64{0, 1, 9999, 10006, 5003} {
		c, err := k.EncryptInt(rnd, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.DecryptInt(c)
		if err != nil {
			t.Fatalf("BSGS decrypt(%d): %v", m, err)
		}
		if got != m {
			t.Fatalf("BSGS round trip: got %d, want %d", got, m)
		}
	}
}

func TestGenerateKeyRejectsBadR(t *testing.T) {
	cases := []*big.Int{
		big.NewInt(4),  // even
		big.NewInt(15), // composite, not a power of 3
		big.NewInt(-3),
	}
	for _, r := range cases {
		if _, err := GenerateKey(newDetRand("bad"), 128, r); err == nil {
			t.Errorf("r=%v accepted", r)
		}
	}
}

func TestPow3(t *testing.T) {
	if Pow3(9).Int64() != 19683 {
		t.Fatalf("Pow3(9) = %v", Pow3(9))
	}
	if k, ok := pow3Exponent(Pow3(12)); !ok || k != 12 {
		t.Fatalf("pow3Exponent(3^12) = %d,%v", k, ok)
	}
	if _, ok := pow3Exponent(big.NewInt(10)); ok {
		t.Fatal("pow3Exponent(10) = ok")
	}
}

func TestCiphertextBytes(t *testing.T) {
	k := key(t)
	want := (k.N.BitLen() + 7) / 8
	if got := k.PublicKey.CiphertextBytes(); got != want {
		t.Fatalf("CiphertextBytes = %d, want %d", got, want)
	}
}

// Property: homomorphic addition matches plaintext addition mod r for
// arbitrary message pairs.
func TestHomomorphismProperty(t *testing.T) {
	k := key(t)
	rnd := newDetRand("quick")
	r := k.R.Int64()
	f := func(a, b uint16) bool {
		m1 := int64(a) % r
		m2 := int64(b) % r
		c1, err1 := k.EncryptInt(rnd, m1)
		c2, err2 := k.EncryptInt(rnd, m2)
		if err1 != nil || err2 != nil {
			return false
		}
		got, err := k.DecryptInt(k.PublicKey.Add(c1, c2))
		return err == nil && got == (m1+m2)%r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: E(u)^p followed by accumulation implements Σ u_i·p_i, the
// exact server computation of Algorithm 4.
func TestScoreAccumulationProperty(t *testing.T) {
	k := key(t)
	rnd := newDetRand("score")
	f := func(flags []bool, impacts []uint8) bool {
		n := len(flags)
		if len(impacts) < n {
			n = len(impacts)
		}
		if n == 0 {
			return true
		}
		if n > 12 {
			n = 12
		}
		var want int64
		acc, err := k.EncryptZero(rnd)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			u := int64(0)
			if flags[i] {
				u = 1
			}
			p := int64(impacts[i])
			want += u * p
			c, err := k.EncryptInt(rnd, u)
			if err != nil {
				return false
			}
			k.PublicKey.AddInto(acc, k.ScalarMul(c, p))
		}
		got, err := k.DecryptInt(acc)
		return err == nil && got == want%k.R.Int64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

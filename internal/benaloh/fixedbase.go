package benaloh

import "math/big"

// FixedBase is a fixed-base windowed-exponentiation table for one
// ciphertext. The server's Algorithm 4 inner loop raises the same flag
// ciphertext E(u) to a small public exponent p (the quantized impact)
// once per posting; a full square-and-multiply Exp costs ~1.5 modular
// multiplications per exponent bit on every posting, whereas a fixed-base
// table pays that cost once per query term and then answers each E(u)^p
// with at most digits-1 multiplications — table lookups plus a few
// products.
//
// The table uses radix 2^w: tables[i][d] = base^(d·2^{w·i}) mod n for
// d ∈ [0, 2^w) and i over the ⌈maxBits/w⌉ windows needed to cover the
// largest expected exponent. Pow(e) multiplies one entry per nonzero
// base-2^w digit of e.
type FixedBase struct {
	n      *big.Int
	window uint
	mask   int64
	tables [][]*big.Int
	maxExp int64
	// setupMuls is the number of modular multiplications spent building
	// the table, so callers can account precomputation in their CPU cost
	// models.
	setupMuls int
}

// DefaultWindow is the table radix exponent used when callers pass 0:
// 4-bit windows cover the conventional 255-level impact quantization
// with two windows, so each E(u)^p costs at most one multiplication.
const DefaultWindow = 4

// NewFixedBase builds the windowed table for base^e with e ∈ [0, maxExp].
// window is the radix exponent w (0 selects DefaultWindow). The table
// costs about ⌈bits(maxExp)/w⌉·(2^w-2)+⌈bits(maxExp)/w⌉-1 modular
// multiplications to build; it pays for itself when the base is reused
// across more than a handful of exponentiations.
func (pk *PublicKey) NewFixedBase(base *big.Int, maxExp int64, window uint) *FixedBase {
	if window == 0 {
		window = DefaultWindow
	}
	if maxExp < 1 {
		maxExp = 1
	}
	bits := 0
	for v := maxExp; v > 0; v >>= 1 {
		bits++
	}
	numWindows := (bits + int(window) - 1) / int(window)
	fb := &FixedBase{
		n:      pk.N,
		window: window,
		mask:   (1 << window) - 1,
		maxExp: maxExp,
		tables: make([][]*big.Int, numWindows),
	}
	size := 1 << window
	// windowBase = base^(2^{w·i}), advanced by repeated squaring between
	// windows; each table row is windowBase^d for d = 0..2^w-1.
	windowBase := base
	for i := 0; i < numWindows; i++ {
		row := make([]*big.Int, size)
		row[0] = one
		row[1] = new(big.Int).Set(windowBase)
		for d := 2; d < size; d++ {
			row[d] = new(big.Int).Mul(row[d-1], windowBase)
			row[d].Mod(row[d], fb.n)
			fb.setupMuls++
		}
		fb.tables[i] = row
		if i+1 < numWindows {
			next := new(big.Int).Set(windowBase)
			for s := uint(0); s < window; s++ {
				next.Mul(next, next)
				next.Mod(next, fb.n)
				fb.setupMuls++
			}
			windowBase = next
		}
	}
	return fb
}

// SetupMuls reports the modular multiplications spent building the table.
func (fb *FixedBase) SetupMuls() int { return fb.setupMuls }

// MaxExp reports the largest exponent the table covers.
func (fb *FixedBase) MaxExp() int64 { return fb.maxExp }

// Pow returns base^e mod n for 0 <= e <= MaxExp, spending at most one
// modular multiplication per nonzero base-2^w digit of e (beyond the
// first). muls reports how many multiplications were performed, for CPU
// cost accounting. The result is a fresh big.Int the caller may mutate.
func (fb *FixedBase) Pow(e int64) (c *big.Int, muls int) {
	acc := new(big.Int)
	set := false
	for i := 0; e > 0 && i < len(fb.tables); i++ {
		d := e & fb.mask
		e >>= fb.window
		if d == 0 {
			continue
		}
		entry := fb.tables[i][d]
		if !set {
			acc.Set(entry)
			set = true
		} else {
			acc.Mul(acc, entry)
			acc.Mod(acc, fb.n)
			muls++
		}
	}
	if !set {
		acc.SetInt64(1)
	}
	return acc, muls
}

// Package benaloh implements the Benaloh dense probabilistic cryptosystem
// (Benaloh, "Dense Probabilistic Encryption", SAC 1994), the additively
// homomorphic encryption used by the private retrieval scheme of Pang,
// Ding and Xiao (VLDB 2010, Section 4 and Appendix A.2). The paper picks
// Benaloh over Paillier because its ciphertexts are shorter, lowering
// communication costs.
//
// Messages live in Z_r. E(m) = g^m · µ^r mod n for random µ ∈ Z_n^*;
// multiplying ciphertexts adds plaintexts, and raising a ciphertext to a
// public integer scales the plaintext — exactly the operation the search
// engine needs to accumulate E(u_i)^{p_ij} into an encrypted relevance
// score without learning u_i.
//
// Key generation uses the corrected validity condition (Fousse, Lafourcade
// and Alnuaimi, 2011): for every prime p dividing r, g^{φ(n)/p} ≠ 1 mod n.
// The original 1994 condition (only g^{φ(n)/r} ≠ 1) admits keys for which
// decryption is ambiguous when r is composite — and the scheme is normally
// run with r = 3^k to enable fast digit-by-digit decryption.
package benaloh

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// PublicKey holds the public parameters (n, g) and the plaintext modulus r.
type PublicKey struct {
	N *big.Int // modulus p1·p2
	G *big.Int // generator with order divisible by r
	R *big.Int // plaintext space size
}

// PrivateKey holds the factorization and precomputed decryption tables.
type PrivateKey struct {
	PublicKey
	P1, P2 *big.Int
	phi    *big.Int // (p1-1)(p2-1)
	phiOvR *big.Int // φ/r
	// Base-3 digit decryption tables, present when R = 3^k.
	k        int
	wPow     [3]*big.Int // (g^{φ/3})^d mod n for d = 0,1,2
	phiOv3i  []*big.Int  // φ/3^i for i=1..k
	gInv     *big.Int    // g^{-1} mod n
	hBase    *big.Int    // g^{φ/r} mod n, base for BSGS decryption
	babySize int
	babyTab  map[string]int64 // BSGS table: hBase^j -> j
}

// CiphertextBytes returns the byte length of one ciphertext.
func (pk *PublicKey) CiphertextBytes() int { return (pk.N.BitLen() + 7) / 8 }

// Pow3 returns 3^k, the conventional plaintext modulus enabling the
// optimized O(k)-exponentiation decryption of Appendix A.2.
func Pow3(k int) *big.Int {
	return new(big.Int).Exp(big.NewInt(3), big.NewInt(int64(k)), nil)
}

// GenerateKey creates a Benaloh key pair with modulus of approximately
// bits bits and plaintext modulus r. r must be odd and its prime
// factorization must be supplied implicitly: this implementation supports
// r = 3^k (any k ≥ 1) and prime r, which covers the paper's usage.
// randSrc is typically crypto/rand.Reader; pass a deterministic reader for
// reproducible tests.
func GenerateKey(randSrc io.Reader, bits int, r *big.Int) (*PrivateKey, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	if bits < 32 {
		return nil, errors.New("benaloh: modulus too small")
	}
	if r.Sign() <= 0 || r.Bit(0) == 0 {
		return nil, errors.New("benaloh: r must be odd and positive")
	}
	k, isPow3 := pow3Exponent(r)
	var primeFactors []*big.Int
	if isPow3 {
		primeFactors = []*big.Int{big.NewInt(3)}
	} else if r.ProbablyPrime(32) {
		primeFactors = []*big.Int{new(big.Int).Set(r)}
	} else {
		return nil, errors.New("benaloh: r must be a power of 3 or prime")
	}

	halfBits := bits / 2
	if r.BitLen()+16 >= halfBits {
		return nil, fmt.Errorf("benaloh: r (%d bits) too large for %d-bit modulus", r.BitLen(), bits)
	}

	// p1 = a·r + 1 prime, with gcd(r, a) = 1 so gcd(r, (p1-1)/r) = 1.
	p1, err := primeWithOrder(randSrc, halfBits, r)
	if err != nil {
		return nil, err
	}
	// p2 prime with gcd(r, p2-1) = 1.
	p2, err := primeCoprimeOrder(randSrc, bits-halfBits, r, primeFactors)
	if err != nil {
		return nil, err
	}

	n := new(big.Int).Mul(p1, p2)
	phi := new(big.Int).Mul(new(big.Int).Sub(p1, one), new(big.Int).Sub(p2, one))

	// Select g such that for every prime p | r, g^{φ/p} ≠ 1 (mod n).
	g := new(big.Int)
	tmp := new(big.Int)
	for tries := 0; ; tries++ {
		if tries > 4096 {
			return nil, errors.New("benaloh: could not find a valid generator")
		}
		if err := randomUnit(randSrc, n, g); err != nil {
			return nil, err
		}
		ok := true
		for _, p := range primeFactors {
			tmp.Div(phi, p)
			tmp.Exp(g, tmp, n)
			if tmp.Cmp(one) == 0 {
				ok = false
				break
			}
		}
		if ok {
			break
		}
	}

	priv := &PrivateKey{
		PublicKey: PublicKey{N: n, G: g, R: new(big.Int).Set(r)},
		P1:        p1,
		P2:        p2,
		phi:       phi,
		phiOvR:    new(big.Int).Div(phi, r),
	}
	priv.gInv = new(big.Int).ModInverse(g, n)
	priv.hBase = new(big.Int).Exp(g, priv.phiOvR, n)
	if isPow3 {
		priv.k = k
		w := new(big.Int).Exp(g, new(big.Int).Div(phi, big.NewInt(3)), n)
		priv.wPow[0] = big.NewInt(1)
		priv.wPow[1] = w
		priv.wPow[2] = new(big.Int).Mul(w, w)
		priv.wPow[2].Mod(priv.wPow[2], n)
		priv.phiOv3i = make([]*big.Int, k+1)
		p3 := big.NewInt(1)
		for i := 0; i <= k; i++ {
			priv.phiOv3i[i] = new(big.Int).Div(phi, p3)
			p3.Mul(p3, big.NewInt(3))
		}
	}
	return priv, nil
}

// pow3Exponent reports whether r = 3^k and returns k.
func pow3Exponent(r *big.Int) (int, bool) {
	three := big.NewInt(3)
	v := new(big.Int).Set(r)
	k := 0
	mod := new(big.Int)
	for v.Cmp(one) > 0 {
		q, m := new(big.Int).QuoRem(v, three, mod)
		if m.Sign() != 0 {
			return 0, false
		}
		v = q
		k++
	}
	return k, k >= 1
}

// primeWithOrder finds a prime p = a·r + 1 of the given bit length with
// gcd(a, r) = 1.
func primeWithOrder(randSrc io.Reader, bits int, r *big.Int) (*big.Int, error) {
	aBits := bits - r.BitLen() + 1
	if aBits < 8 {
		aBits = 8
	}
	a := new(big.Int)
	p := new(big.Int)
	g := new(big.Int)
	for tries := 0; tries < 100000; tries++ {
		if err := randomBits(randSrc, aBits, a); err != nil {
			return nil, err
		}
		if a.Sign() == 0 {
			continue
		}
		if g.GCD(nil, nil, a, r); g.Cmp(one) != 0 {
			continue
		}
		p.Mul(a, r)
		p.Add(p, one)
		if p.ProbablyPrime(32) {
			return new(big.Int).Set(p), nil
		}
	}
	return nil, errors.New("benaloh: failed to find p1")
}

// primeCoprimeOrder finds a prime p of the given bit length such that
// gcd(r, p-1) = 1, i.e. no prime factor of r divides p-1.
func primeCoprimeOrder(randSrc io.Reader, bits int, r *big.Int, primeFactors []*big.Int) (*big.Int, error) {
	pm1 := new(big.Int)
	mod := new(big.Int)
	for tries := 0; tries < 100000; tries++ {
		p, err := rand.Prime(randSrc, bits)
		if err != nil {
			return nil, err
		}
		pm1.Sub(p, one)
		ok := true
		for _, f := range primeFactors {
			if mod.Mod(pm1, f); mod.Sign() == 0 {
				ok = false
				break
			}
		}
		if ok {
			return p, nil
		}
	}
	return nil, errors.New("benaloh: failed to find p2")
}

// randomBits sets out to a uniform integer with the given bit length
// (top bit set).
func randomBits(randSrc io.Reader, bits int, out *big.Int) error {
	buf := make([]byte, (bits+7)/8)
	if _, err := io.ReadFull(randSrc, buf); err != nil {
		return err
	}
	out.SetBytes(buf)
	out.SetBit(out, bits-1, 1)
	return nil
}

// randomUnit sets out to a uniform element of Z_n^*.
func randomUnit(randSrc io.Reader, n *big.Int, out *big.Int) error {
	g := new(big.Int)
	for {
		v, err := rand.Int(randSrc, n)
		if err != nil {
			return err
		}
		if v.Sign() == 0 {
			continue
		}
		if g.GCD(nil, nil, v, n); g.Cmp(one) != 0 {
			continue
		}
		out.Set(v)
		return nil
	}
}

// Encrypt encrypts m ∈ [0, r) under the public key: E(m) = g^m µ^r mod n.
func (pk *PublicKey) Encrypt(randSrc io.Reader, m *big.Int) (*big.Int, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	if m.Sign() < 0 || m.Cmp(pk.R) >= 0 {
		return nil, fmt.Errorf("benaloh: message out of range [0, r)")
	}
	mu := new(big.Int)
	if err := randomUnit(randSrc, pk.N, mu); err != nil {
		return nil, err
	}
	c := new(big.Int).Exp(pk.G, m, pk.N)
	mu.Exp(mu, pk.R, pk.N)
	c.Mul(c, mu)
	c.Mod(c, pk.N)
	return c, nil
}

// EncryptInt encrypts a small non-negative integer.
func (pk *PublicKey) EncryptInt(randSrc io.Reader, m int64) (*big.Int, error) {
	return pk.Encrypt(randSrc, big.NewInt(m))
}

// Add returns the ciphertext of the sum: E(m1)·E(m2) mod n. The result is
// written into a fresh big.Int.
func (pk *PublicKey) Add(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N)
}

// AddInto multiplies acc by c modulo n in place, avoiding allocation in
// the server's inner scoring loop.
func (pk *PublicKey) AddInto(acc, c *big.Int) {
	acc.Mul(acc, c)
	acc.Mod(acc, pk.N)
}

// ScalarMul returns E(m·s) = E(m)^s mod n for a public non-negative
// integer s — the operation applied per posting with s = p_ij.
func (pk *PublicKey) ScalarMul(c *big.Int, s int64) *big.Int {
	return new(big.Int).Exp(c, big.NewInt(s), pk.N)
}

// EncryptZero returns a fresh encryption of zero, used to initialize
// accumulators so that identical scores still have distinct ciphertexts.
func (pk *PublicKey) EncryptZero(randSrc io.Reader) (*big.Int, error) {
	return pk.Encrypt(randSrc, new(big.Int))
}

// Package kdtree implements a k-d tree over dense float64 points, with
// k-nearest-neighbor search. Murugesan and Clifton's plausibly deniable
// search (the baseline of Section 2.1) forms canonical queries "from
// terms that are in close proximity of each other in the factor space
// using a kd-tree nearest neighbor retrieval"; this package supplies that
// index. The paper's criticism — kd-trees do not scale much beyond 10
// dimensions [15] — can be observed directly on the Visited statistic,
// which approaches exhaustive scan as dimensionality grows.
package kdtree

import (
	"errors"
	"sort"
)

// Tree is an immutable k-d tree. Build it once with New; concurrent
// searches are safe.
type Tree struct {
	dim    int
	points [][]float64
	ids    []int // caller-supplied identifier per point
	// nodes in implicit pre-order: each node splits on axis depth%dim.
	root *node
}

type node struct {
	point       int // index into points/ids
	axis        int
	left, right *node
}

// New builds a tree over the given points. ids[i] is the caller's
// identifier for points[i] (e.g. a term index); pass nil to use positional
// indices. All points must share the same nonzero dimensionality.
func New(points [][]float64, ids []int) (*Tree, error) {
	if len(points) == 0 {
		return nil, errors.New("kdtree: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("kdtree: zero-dimensional points")
	}
	for _, p := range points {
		if len(p) != dim {
			return nil, errors.New("kdtree: inconsistent dimensionality")
		}
	}
	if ids == nil {
		ids = make([]int, len(points))
		for i := range ids {
			ids[i] = i
		}
	} else if len(ids) != len(points) {
		return nil, errors.New("kdtree: ids length mismatch")
	}
	t := &Tree{dim: dim, points: points, ids: ids}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx, 0)
	return t, nil
}

// build constructs the subtree over idx, splitting on axis depth%dim at
// the median.
func (t *Tree) build(idx []int, depth int) *node {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % t.dim
	sort.Slice(idx, func(a, b int) bool {
		return t.points[idx[a]][axis] < t.points[idx[b]][axis]
	})
	mid := len(idx) / 2
	n := &node{point: idx[mid], axis: axis}
	n.left = t.build(idx[:mid], depth+1)
	n.right = t.build(idx[mid+1:], depth+1)
	return n
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.points) }

// Neighbor is one k-NN result.
type Neighbor struct {
	ID   int
	Dist float64 // squared Euclidean distance
}

// Stats reports the work done by one search.
type Stats struct {
	// Visited counts tree nodes whose distance was evaluated. Near
	// len(points) means the pruning failed (the dimensionality curse).
	Visited int
}

// KNN returns the k nearest neighbors of q in increasing distance,
// breaking ties by ascending ID for determinism.
func (t *Tree) KNN(q []float64, k int) ([]Neighbor, Stats, error) {
	if len(q) != t.dim {
		return nil, Stats{}, errors.New("kdtree: query dimensionality mismatch")
	}
	if k <= 0 {
		return nil, Stats{}, errors.New("kdtree: k must be positive")
	}
	h := &heap{cap: k}
	var st Stats
	t.search(t.root, q, h, &st)
	out := h.sorted()
	return out, st, nil
}

func (t *Tree) search(n *node, q []float64, h *heap, st *Stats) {
	if n == nil {
		return
	}
	st.Visited++
	p := t.points[n.point]
	var d float64
	for i := range q {
		diff := q[i] - p[i]
		d += diff * diff
	}
	h.offer(Neighbor{ID: t.ids[n.point], Dist: d})

	delta := q[n.axis] - p[n.axis]
	near, far := n.left, n.right
	if delta > 0 {
		near, far = n.right, n.left
	}
	t.search(near, q, h, st)
	// Prune the far side unless the splitting plane is closer than the
	// current k-th best.
	if !h.full() || delta*delta < h.worst() {
		t.search(far, q, h, st)
	}
}

// heap is a fixed-capacity max-heap on Dist (worst candidate at the top).
type heap struct {
	cap   int
	items []Neighbor
}

func (h *heap) full() bool     { return len(h.items) == h.cap }
func (h *heap) worst() float64 { return h.items[0].Dist }

func (h *heap) offer(n Neighbor) {
	if len(h.items) < h.cap {
		h.items = append(h.items, n)
		h.up(len(h.items) - 1)
		return
	}
	if n.Dist >= h.items[0].Dist {
		return
	}
	h.items[0] = n
	h.down(0)
}

func (h *heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist >= h.items[i].Dist {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *heap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.items) && h.items[l].Dist > h.items[largest].Dist {
			largest = l
		}
		if r < len(h.items) && h.items[r].Dist > h.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

func (h *heap) sorted() []Neighbor {
	out := append([]Neighbor(nil), h.items...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	return out
}

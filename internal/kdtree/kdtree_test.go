package kdtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("no points accepted")
	}
	if _, err := New([][]float64{{}}, nil); err == nil {
		t.Fatal("zero-dim point accepted")
	}
	if _, err := New([][]float64{{1, 2}, {1}}, nil); err == nil {
		t.Fatal("ragged points accepted")
	}
	if _, err := New([][]float64{{1}}, []int{1, 2}); err == nil {
		t.Fatal("ids length mismatch accepted")
	}
}

func TestKNNErrors(t *testing.T) {
	tr, err := New([][]float64{{0, 0}, {1, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.KNN([]float64{0}, 1); err == nil {
		t.Fatal("dimensionality mismatch accepted")
	}
	if _, _, err := tr.KNN([]float64{0, 0}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestExactNearest(t *testing.T) {
	pts := [][]float64{{0, 0}, {10, 0}, {0, 10}, {5, 5}, {9, 9}}
	tr, err := New(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	nn, _, err := tr.KNN([]float64{6, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nn[0].ID != 3 {
		t.Fatalf("nearest to (6,6) is point %d, want 3 (=(5,5))", nn[0].ID)
	}
}

func TestCustomIDs(t *testing.T) {
	tr, err := New([][]float64{{0}, {5}}, []int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	nn, _, _ := tr.KNN([]float64{4}, 1)
	if nn[0].ID != 200 {
		t.Fatalf("ID = %d, want 200", nn[0].ID)
	}
}

// bruteKNN is the reference implementation.
func bruteKNN(pts [][]float64, q []float64, k int) []Neighbor {
	out := make([]Neighbor, len(pts))
	for i, p := range pts {
		var d float64
		for j := range q {
			diff := q[j] - p[j]
			d += diff * diff
		}
		out[i] = Neighbor{ID: i, Dist: d}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dim := range []int{1, 2, 3, 5} {
		pts := make([][]float64, 200)
		for i := range pts {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.Float64() * 100
			}
			pts[i] = p
		}
		tr, err := New(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64() * 100
			}
			k := 1 + rng.Intn(8)
			got, _, err := tr.KNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("dim %d: got %d results, want %d", dim, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("dim %d k=%d rank %d: got point %d (d=%.4f), want %d (d=%.4f)",
						dim, k, i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
				}
			}
		}
	}
}

func TestKNNProperty(t *testing.T) {
	// Property: for any point set and query, KNN's first result is a
	// true nearest neighbor.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		}
		tr, err := New(pts, nil)
		if err != nil {
			return false
		}
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		got, _, err := tr.KNN(q, 1)
		if err != nil {
			return false
		}
		want := bruteKNN(pts, q, 1)
		return got[0].Dist == want[0].Dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKMoreThanPoints(t *testing.T) {
	tr, _ := New([][]float64{{0}, {1}, {2}}, nil)
	nn, _, err := tr.KNN([]float64{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 {
		t.Fatalf("got %d neighbors, want all 3", len(nn))
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tr, _ := New(pts, nil)
	nn, _, err := tr.KNN([]float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nn {
		if n.Dist != 0 {
			t.Fatalf("duplicate point search returned non-zero distance %v", n.Dist)
		}
	}
}

// TestDimensionalityCurse verifies the Visited statistic exposes the
// pruning collapse the paper cites ([15]): in low dimensions a search
// touches a small fraction of nodes, in high dimensions almost all.
func TestDimensionalityCurse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	visitFraction := func(dim int) float64 {
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts[i] = p
		}
		tr, err := New(pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		trials := 20
		for i := 0; i < trials; i++ {
			q := make([]float64, dim)
			for j := range q {
				q[j] = rng.Float64()
			}
			_, st, err := tr.KNN(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			total += st.Visited
		}
		return float64(total) / float64(trials*n)
	}
	low, high := visitFraction(2), visitFraction(25)
	if low > 0.2 {
		t.Fatalf("2-d search visited %.0f%% of nodes, expected efficient pruning", low*100)
	}
	if high < 0.5 {
		t.Fatalf("25-d search visited only %.0f%% of nodes; curse not observable", high*100)
	}
}

// Package simio is an analytic disk-I/O cost model standing in for the
// physical disk of the paper's testbed (a Seagate ST973401KC formatted
// with 1 KByte blocks, Section 5.2). The experiments report "server I/O
// (msec)"; reproducing that axis requires charging seek and transfer time
// per bucket fetched, which this model does deterministically.
//
// Section 4 prescribes the layout the model assumes: "the search engine
// should store the inverted lists for the terms of a bucket in common
// disk block(s)", so one query charges one seek per distinct bucket plus
// sequential transfer of the bucket's blocks.
package simio

// Model holds the disk parameters.
type Model struct {
	// BlockBytes is the filesystem block size. The paper's disk uses
	// 1 KByte blocks.
	BlockBytes int
	// SeekMs is the average positioning (seek + rotational) latency per
	// random access, in milliseconds.
	SeekMs float64
	// TransferMsPerBlock is the sequential read time per block.
	TransferMsPerBlock float64
}

// Default returns constants typical of the paper's 2.5-inch 10k-RPM SAS
// disk: 1 KB blocks, ~5.5 ms positioning, ~60 MB/s sequential reads
// (≈0.016 ms per 1 KB block).
func Default() Model {
	return Model{BlockBytes: 1024, SeekMs: 5.5, TransferMsPerBlock: 0.016}
}

// Blocks returns the number of blocks covering n bytes (at least 1 for
// n > 0).
func (m Model) Blocks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + m.BlockBytes - 1) / m.BlockBytes
}

// Cost returns the milliseconds to perform the given accesses: one seek
// each, plus sequential transfer of the given total bytes.
func (m Model) Cost(seeks int, bytes int) float64 {
	return float64(seeks)*m.SeekMs + float64(m.Blocks(bytes))*m.TransferMsPerBlock
}

// Accounting accumulates I/O charges across a query execution.
type Accounting struct {
	Seeks int
	Bytes int
}

// Charge records one random access reading n bytes.
func (a *Accounting) Charge(n int) {
	a.Seeks++
	a.Bytes += n
}

// Ms evaluates the accumulated charges under model m.
func (a Accounting) Ms(m Model) float64 { return m.Cost(a.Seeks, a.Bytes) }

package simio

import "testing"

func TestBlocks(t *testing.T) {
	m := Default()
	cases := []struct{ bytes, want int }{
		{0, 0}, {1, 1}, {1024, 1}, {1025, 2}, {4096, 4},
	}
	for _, c := range cases {
		if got := m.Blocks(c.bytes); got != c.want {
			t.Errorf("Blocks(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestCostComposition(t *testing.T) {
	m := Model{BlockBytes: 1024, SeekMs: 5, TransferMsPerBlock: 0.1}
	got := m.Cost(3, 2048)
	want := 3*5.0 + 2*0.1
	if got != want {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestAccounting(t *testing.T) {
	m := Model{BlockBytes: 1024, SeekMs: 2, TransferMsPerBlock: 1}
	var a Accounting
	a.Charge(100)
	a.Charge(1024)
	if a.Seeks != 2 || a.Bytes != 1124 {
		t.Fatalf("accounting = %+v", a)
	}
	// 2 seeks + ceil(1124/1024)=2 blocks.
	if got := a.Ms(m); got != 2*2.0+2*1.0 {
		t.Fatalf("Ms = %v", got)
	}
}

func TestSeekDominatesForSmallReads(t *testing.T) {
	// Sanity: with 2006-era constants, fetching many small buckets is
	// seek-bound — the effect that makes Figure 7(a) nearly flat in
	// BktSz but Figure 8(a) linear in query size.
	m := Default()
	small := m.Cost(12, 12*2048)
	large := m.Cost(12, 12*16384)
	if (large-small)/small > 0.5 {
		t.Fatalf("transfer dominates unexpectedly: %v -> %v", small, large)
	}
}

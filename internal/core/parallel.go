package core

import (
	"errors"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"embellish/internal/index"
	"embellish/internal/wordnet"
)

// ProcessParallel is Algorithm 4 executed by a worker pool. With a
// sharded index (Server.SetSharding), the postings are partitioned by
// document: each worker claims whole shards from a work queue and folds
// every query term's shard-local sub-list into a private accumulator
// map. Shards own disjoint document sets, so the per-shard encrypted
// score maps never overlap and the final merge is pure concatenation —
// no cross-shard homomorphic additions, no locks on the hot path. The
// per-term flag powers E(u)^p are served from fixed-base tables built
// once per query (Server.SetPrecompute) and shared read-only by all
// workers.
//
// Without a sharded view the legacy term-striped plan runs: workers
// split the query's terms and merge their overlapping accumulators
// pairwise with homomorphic additions afterwards.
//
// Either way the result is identical to Process up to ciphertext
// randomization: each E(score) is a different group element than the
// sequential run would produce, but decrypts to the same score, and the
// server learns nothing either way. workers <= 0 selects GOMAXPROCS.
func (s *Server) ProcessParallel(q *Query, workers int) (*Response, Stats, error) {
	if len(q.Entries) == 0 {
		return nil, Stats{}, errors.New("core: empty query")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if s.sharded != nil {
		return s.processSharded(q, workers)
	}
	return s.processTermStriped(q, workers)
}

// chargeIO accounts one seek per distinct bucket named by the query
// (Section 4's contiguous bucket layout) and returns the stats skeleton.
func (s *Server) chargeIO(q *Query) Stats {
	var st Stats
	terms := make([]wordnet.TermID, len(q.Entries))
	for i, e := range q.Entries {
		terms[i] = e.Term
	}
	for _, b := range s.Org.BucketsFor(terms) {
		st.IO.Charge(s.bucketBytes[b])
	}
	return st
}

// entryPlan is the per-query-term execution state shared read-only by
// all shard workers: the resolved index term and the E(u)^p evaluator.
type entryPlan struct {
	term int32 // index term number, -1 when absent from the corpus
	pow  func(int64) (*big.Int, int)
}

// processSharded runs the document-sharded worker-pool pipeline.
func (s *Server) processSharded(q *Query, workers int) (*Response, Stats, error) {
	st := s.chargeIO(q)
	pk := q.Pub
	sh := s.sharded
	nsh := sh.NumShards()
	if workers > nsh {
		workers = nsh
	}

	// Phase 1: resolve terms and build the per-entry fixed-base tables,
	// fanned out over the pool (tables are independent of each other).
	plans := make([]entryPlan, len(q.Entries))
	setupMuls := make([]int64, workers)
	var nextEntry int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&nextEntry, 1)) - 1
				if i >= len(q.Entries) {
					return
				}
				e := q.Entries[i]
				plans[i].term = -1
				if int(e.Term) < len(s.termOf) {
					plans[i].term = s.termOf[e.Term]
				}
				if plans[i].term < 0 {
					continue
				}
				postings := len(s.Index.List(int(plans[i].term)))
				pow, setup := s.powerFn(pk, e.Flag, postings)
				plans[i].pow = pow
				setupMuls[w] += int64(setup)
			}
		}(w)
	}
	wg.Wait()
	for _, m := range setupMuls {
		st.ModMuls += int(m)
	}

	// Phase 2: workers claim shards and fold every entry's shard-local
	// sub-list into a shard-private accumulator. Document-disjointness
	// makes the shard maps non-overlapping.
	type shardOut struct {
		acc      map[index.DocID]*big.Int
		modMuls  int
		postings int
	}
	outs := make([]shardOut, nsh)
	var nextShard int32
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(atomic.AddInt32(&nextShard, 1)) - 1
				if si >= nsh {
					return
				}
				acc := make(map[index.DocID]*big.Int)
				muls, posts := 0, 0
				for pi := range plans {
					pl := &plans[pi]
					if pl.term < 0 {
						continue
					}
					for _, p := range sh.List(int(pl.term), si) {
						posts++
						contrib, m := pl.pow(int64(p.Quantized))
						muls += m
						if cur, ok := acc[p.Doc]; ok {
							pk.AddInto(cur, contrib)
							muls++
						} else {
							acc[p.Doc] = contrib
						}
					}
				}
				outs[si] = shardOut{acc: acc, modMuls: muls, postings: posts}
			}
		}()
	}
	wg.Wait()

	// Phase 3: aggregate stats and concatenate the disjoint shard maps.
	total := 0
	for i := range outs {
		st.ModMuls += outs[i].modMuls
		st.Postings += outs[i].postings
		total += len(outs[i].acc)
	}
	resp := &Response{ctxBytes: pk.CiphertextBytes()}
	resp.Docs = make([]DocScore, 0, total)
	for i := range outs {
		for d, c := range outs[i].acc {
			resp.Docs = append(resp.Docs, DocScore{Doc: d, Enc: c})
		}
	}
	sortDocScores(resp.Docs)
	st.Candidates = len(resp.Docs)
	return resp, st, nil
}

// processTermStriped is the legacy parallel plan: stripe the query's
// terms over the workers and homomorphically merge the overlapping
// per-worker accumulators afterwards. Retained for servers that have
// not configured sharding.
func (s *Server) processTermStriped(q *Query, workers int) (*Response, Stats, error) {
	if workers == 1 || len(q.Entries) < 2*workers {
		return s.Process(q)
	}
	st := s.chargeIO(q)
	pk := q.Pub
	type shard struct {
		acc      map[index.DocID]*big.Int
		modMuls  int
		postings int
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := make(map[index.DocID]*big.Int)
			muls, posts := 0, 0
			for i := w; i < len(q.Entries); i += workers {
				e := q.Entries[i]
				list := s.ListFor(e.Term)
				pow, setup := s.powerFn(pk, e.Flag, len(list))
				muls += setup
				for j := range list {
					p := list[j]
					posts++
					contrib, m := pow(int64(p.Quantized))
					muls += m
					if cur, ok := acc[p.Doc]; ok {
						pk.AddInto(cur, contrib)
						muls++
					} else {
						acc[p.Doc] = contrib
					}
				}
			}
			shards[w] = shard{acc: acc, modMuls: muls, postings: posts}
		}(w)
	}
	wg.Wait()

	// Merge shards into the first shard's accumulator.
	merged := shards[0].acc
	st.ModMuls += shards[0].modMuls
	st.Postings += shards[0].postings
	for _, sh := range shards[1:] {
		st.ModMuls += sh.modMuls
		st.Postings += sh.postings
		for d, c := range sh.acc {
			if cur, ok := merged[d]; ok {
				pk.AddInto(cur, c)
				st.ModMuls++
			} else {
				merged[d] = c
			}
		}
	}

	resp := &Response{ctxBytes: pk.CiphertextBytes()}
	resp.Docs = make([]DocScore, 0, len(merged))
	for d, c := range merged {
		resp.Docs = append(resp.Docs, DocScore{Doc: d, Enc: c})
	}
	sortDocScores(resp.Docs)
	st.Candidates = len(resp.Docs)
	return resp, st, nil
}

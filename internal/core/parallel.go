package core

import (
	"errors"
	"math/big"
	"runtime"
	"sync"

	"embellish/internal/index"
	"embellish/internal/wordnet"
)

// ProcessParallel is Algorithm 4 with the per-term inverted-list scans
// fanned out over workers goroutines (0 selects GOMAXPROCS). The
// homomorphic accumulation is commutative and associative — ciphertext
// multiplication mod n — so each worker folds its share of the query's
// terms into a private accumulator map and the shards merge pairwise
// afterwards. The result is identical to Process up to ciphertext
// randomization: each E(score) is a different group element than the
// sequential run would produce, but decrypts to the same score, and the
// server learns nothing either way.
func (s *Server) ProcessParallel(q *Query, workers int) (*Response, Stats, error) {
	if len(q.Entries) == 0 {
		return nil, Stats{}, errors.New("core: empty query")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(q.Entries) < 2*workers {
		return s.Process(q)
	}

	var st Stats
	terms := make([]wordnet.TermID, len(q.Entries))
	for i, e := range q.Entries {
		terms[i] = e.Term
	}
	for _, b := range s.Org.BucketsFor(terms) {
		st.IO.Charge(s.bucketBytes[b])
	}

	pk := q.Pub
	type shard struct {
		acc      map[index.DocID]*big.Int
		modMuls  int
		postings int
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := make(map[index.DocID]*big.Int)
			muls, posts := 0, 0
			for i := w; i < len(q.Entries); i += workers {
				e := q.Entries[i]
				list := s.ListFor(e.Term)
				for j := range list {
					p := list[j]
					posts++
					contrib := pk.ScalarMul(e.Flag, int64(p.Quantized))
					muls += mulsForExponent(int64(p.Quantized))
					if cur, ok := acc[p.Doc]; ok {
						pk.AddInto(cur, contrib)
						muls++
					} else {
						acc[p.Doc] = contrib
					}
				}
			}
			shards[w] = shard{acc: acc, modMuls: muls, postings: posts}
		}(w)
	}
	wg.Wait()

	// Merge shards into the first shard's accumulator.
	merged := shards[0].acc
	st.ModMuls = shards[0].modMuls
	st.Postings = shards[0].postings
	for _, sh := range shards[1:] {
		st.ModMuls += sh.modMuls
		st.Postings += sh.postings
		for d, c := range sh.acc {
			if cur, ok := merged[d]; ok {
				pk.AddInto(cur, c)
				st.ModMuls++
			} else {
				merged[d] = c
			}
		}
	}

	resp := &Response{ctxBytes: pk.CiphertextBytes()}
	resp.Docs = make([]DocScore, 0, len(merged))
	for d, c := range merged {
		resp.Docs = append(resp.Docs, DocScore{Doc: d, Enc: c})
	}
	sortDocScores(resp.Docs)
	st.Candidates = len(resp.Docs)
	return resp, st, nil
}

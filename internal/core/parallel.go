package core

import (
	"context"
	"errors"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"embellish/internal/index"
	"embellish/internal/wordnet"
)

// ProcessParallel is Algorithm 4 executed by a worker pool. With
// sharding enabled (Server.SetSharding), the postings are partitioned
// by document: each worker claims whole shards from a work queue and
// folds every query term's shard-local sub-lists — one per segment —
// into a private accumulator map. Shards own disjoint document sets
// across ALL segments (the partition is by global doc id), so the
// per-shard encrypted score maps never overlap and the final merge is
// pure concatenation — no cross-shard homomorphic additions, no locks
// on the hot path. Tombstoned documents are skipped before any group
// operation. The per-term flag powers E(u)^p are served from fixed-base
// tables built once per query (Server.SetPrecompute) and shared
// read-only by all workers.
//
// Without sharding the legacy term-striped plan runs: workers split the
// query's terms and merge their overlapping accumulators pairwise with
// homomorphic additions afterwards.
//
// Either way the result is identical to Process up to ciphertext
// randomization: each E(score) is a different group element than the
// sequential run would produce, but decrypts to the same score, and the
// server learns nothing either way. workers <= 0 selects GOMAXPROCS.
func (s *Server) ProcessParallel(q *Query, workers int) (*Response, Stats, error) {
	return s.ProcessParallelCtx(context.Background(), q, workers)
}

// ProcessParallelCtx is ProcessParallel under a context: every worker
// checks ctx periodically inside its posting walk and stops early when
// the context is cancelled or its deadline expires. On cancellation
// the returned Stats aggregate the partial work of every worker (the
// figures the serving layer charges abandoned queries for) and the
// error is ctx.Err(); the partial response is discarded.
func (s *Server) ProcessParallelCtx(ctx context.Context, q *Query, workers int) (*Response, Stats, error) {
	if len(q.Entries) == 0 {
		return nil, Stats{}, errors.New("core: empty query")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if s.shardN > 0 {
		return s.processSharded(ctx, q, workers)
	}
	return s.processTermStriped(ctx, q, workers)
}

// chargeIO accounts one seek per distinct bucket named by the query
// (Section 4's contiguous bucket layout) and returns the stats skeleton.
func (s *Server) chargeIO(q *Query, r *resolvedState) Stats {
	var st Stats
	terms := make([]wordnet.TermID, len(q.Entries))
	for i, e := range q.Entries {
		terms[i] = e.Term
	}
	for _, b := range s.Org.BucketsFor(terms) {
		st.IO.Charge(r.bucketBytes[b])
	}
	return st
}

// entryPlan is the per-query-term execution state shared read-only by
// all shard workers: the per-segment resolved term numbers and the
// E(u)^p evaluator. pow is nil when the term occurs in no segment.
type entryPlan struct {
	terms []int32 // index term number per segment, -1 when absent
	pow   func(int64) (*big.Int, int)
}

// processSharded runs the document-sharded worker-pool pipeline against
// one index snapshot. Workers poll ctx at entry claims and every
// cancelCheckPostings postings; a cancelled worker records the partial
// stats of its current shard before exiting.
func (s *Server) processSharded(ctx context.Context, q *Query, workers int) (*Response, Stats, error) {
	r := s.resolve()
	st := s.chargeIO(q, r)
	pk := q.Pub
	segs := r.snap.Segs
	nsh := s.shardN
	if workers > nsh {
		workers = nsh
	}
	done := ctx.Done()
	dl, hasDL := ctx.Deadline()
	// aborted is set by any worker that observes cancellation — the
	// phase-3 gate cannot rely on ctx.Err() alone, because a wall-clock
	// deadline check can fire before the context's timer goroutine runs.
	var aborted atomic.Bool

	// Phase 1: resolve terms and build the per-entry fixed-base tables,
	// fanned out over the pool (tables are independent of each other).
	plans := make([]entryPlan, len(q.Entries))
	setupMuls := make([]int64, workers)
	var nextEntry int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				i := int(atomic.AddInt32(&nextEntry, 1)) - 1
				if i >= len(q.Entries) {
					return
				}
				e := q.Entries[i]
				// Resolve per-segment terms and the total posting count in
				// one pass (the plan needs both, so totalPostings alone
				// would rescan).
				terms := make([]int32, len(segs))
				total := 0
				for si, seg := range segs {
					terms[si] = r.term(si, e.Term)
					if terms[si] >= 0 {
						total += len(seg.List(int(terms[si])))
					}
				}
				plans[i].terms = terms
				if total == 0 {
					continue
				}
				pow, setup := s.powerFn(pk, e.Flag, total)
				plans[i].pow = pow
				setupMuls[w] += int64(setup)
			}
		}(w)
	}
	wg.Wait()
	for _, m := range setupMuls {
		st.ModMuls += int(m)
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}

	// Phase 2: workers claim shards and fold every entry's shard-local
	// sub-lists (one per segment) into a shard-private accumulator.
	// Global-doc-id-disjointness makes the shard maps non-overlapping.
	// Segments carry a prebuilt sharded view; a segment whose view is
	// missing or built for another shard count is filter-scanned
	// instead, which is slower but yields the identical postings.
	type shardOut struct {
		acc        map[index.DocID]*big.Int
		modMuls    int
		postings   int
		tombstoned int
	}
	outs := make([]shardOut, nsh)
	var nextShard int32
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(atomic.AddInt32(&nextShard, 1)) - 1
				if si >= nsh {
					return
				}
				acc := make(map[index.DocID]*big.Int)
				muls, posts, tombs := 0, 0, 0
				cancelled := false
				check := func() bool {
					if done == nil {
						return false
					}
					select {
					case <-done:
						cancelled = true
						aborted.Store(true)
						return true
					default:
					}
					// Wall-clock fallback: on a single-P runtime the
					// timer goroutine cannot close done while workers
					// hold every CPU.
					if hasDL && !scanNow().Before(dl) {
						cancelled = true
						aborted.Store(true)
						return true
					}
					return false
				}
				scan := func(p index.Posting, pl *entryPlan) {
					posts++
					if r.snap.Deleted(p.Doc) {
						tombs++
						return
					}
					contrib, m := pl.pow(int64(p.Quantized))
					muls += m
					if cur, ok := acc[p.Doc]; ok {
						pk.AddInto(cur, contrib)
						muls++
					} else {
						acc[p.Doc] = contrib
					}
				}
			planLoop:
				for pi := range plans {
					pl := &plans[pi]
					if pl.pow == nil {
						continue
					}
					for sgi, seg := range segs {
						ti := pl.terms[sgi]
						if ti < 0 {
							continue
						}
						if view := seg.ShardedView(); view != nil && view.NumShards() == nsh {
							for _, p := range view.List(int(ti), si) {
								if posts&(cancelCheckPostings-1) == 0 && check() {
									break planLoop
								}
								scan(p, pl)
							}
						} else {
							for _, p := range seg.List(int(ti)) {
								if int(p.Doc)%nsh != si {
									continue
								}
								if posts&(cancelCheckPostings-1) == 0 && check() {
									break planLoop
								}
								scan(p, pl)
							}
						}
					}
				}
				// Record the shard's (possibly partial) work before
				// exiting so cancellation still accounts every posting
				// scanned and multiplication performed.
				outs[si] = shardOut{acc: acc, modMuls: muls, postings: posts, tombstoned: tombs}
				if cancelled {
					return
				}
			}
		}()
	}
	wg.Wait()

	// Phase 3: aggregate stats and concatenate the disjoint shard maps.
	total := 0
	for i := range outs {
		st.ModMuls += outs[i].modMuls
		st.Postings += outs[i].postings
		st.Tombstoned += outs[i].tombstoned
		total += len(outs[i].acc)
	}
	if aborted.Load() || ctx.Err() != nil {
		return nil, st, ctxScanErr(ctx)
	}
	resp := &Response{ctxBytes: pk.CiphertextBytes()}
	resp.Docs = make([]DocScore, 0, total)
	for i := range outs {
		for d, c := range outs[i].acc {
			resp.Docs = append(resp.Docs, DocScore{Doc: d, Enc: c})
		}
	}
	sortDocScores(resp.Docs)
	st.Candidates = len(resp.Docs)
	return resp, st, nil
}

// processTermStriped is the legacy parallel plan: stripe the query's
// terms over the workers and homomorphically merge the overlapping
// per-worker accumulators afterwards. Retained for servers that have
// not configured sharding.
func (s *Server) processTermStriped(ctx context.Context, q *Query, workers int) (*Response, Stats, error) {
	if workers == 1 || len(q.Entries) < 2*workers {
		return s.ProcessCtx(ctx, q)
	}
	r := s.resolve()
	st := s.chargeIO(q, r)
	pk := q.Pub
	type stripe struct {
		acc   map[index.DocID]*big.Int
		stats Stats
		err   error
	}
	stripes := make([]stripe, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := make(map[index.DocID]*big.Int)
			var wst Stats
			var werr error
			for i := w; i < len(q.Entries); i += workers {
				if werr = s.foldEntry(ctx, r, q.Entries[i], pk, acc, &wst); werr != nil {
					break
				}
			}
			stripes[w] = stripe{acc: acc, stats: wst, err: werr}
		}(w)
	}
	wg.Wait()

	// A cancelled stripe still reports its partial stats; sum every
	// stripe's work before deciding whether to merge or abort.
	cancelled := false
	var scanErr error
	st.ModMuls += stripes[0].stats.ModMuls
	st.Postings += stripes[0].stats.Postings
	st.Tombstoned += stripes[0].stats.Tombstoned
	for _, sh := range stripes {
		if sh.err != nil {
			cancelled = true
			if scanErr == nil {
				scanErr = sh.err
			}
		}
	}
	merged := stripes[0].acc
	for _, sh := range stripes[1:] {
		st.ModMuls += sh.stats.ModMuls
		st.Postings += sh.stats.Postings
		st.Tombstoned += sh.stats.Tombstoned
		if cancelled {
			continue
		}
		for d, c := range sh.acc {
			if cur, ok := merged[d]; ok {
				pk.AddInto(cur, c)
				st.ModMuls++
			} else {
				merged[d] = c
			}
		}
	}
	if cancelled {
		// scanErr, not ctx.Err(): a stripe that stopped on the
		// wall-clock deadline check may report DeadlineExceeded before
		// the context's own timer has fired.
		return nil, st, scanErr
	}

	resp := &Response{ctxBytes: pk.CiphertextBytes()}
	resp.Docs = make([]DocScore, 0, len(merged))
	for d, c := range merged {
		resp.Docs = append(resp.Docs, DocScore{Doc: d, Enc: c})
	}
	sortDocScores(resp.Docs)
	st.Candidates = len(resp.Docs)
	return resp, st, nil
}

package core

import (
	"math/rand"
	"testing"

	"embellish/internal/benaloh"
	"embellish/internal/index"
	"embellish/internal/testenv"
	"embellish/internal/wordnet"
)

var (
	cachedWorld *testenv.World
	cachedKey   *benaloh.PrivateKey
)

func world(t *testing.T) (*testenv.World, *benaloh.PrivateKey) {
	t.Helper()
	if cachedWorld == nil {
		cachedWorld = testenv.BuildWorld(testenv.Options{Seed: 11, BktSz: 4})
		k, err := benaloh.GenerateKey(testenv.NewDetRand("core-test"), 256, benaloh.Pow3(9))
		if err != nil {
			t.Fatalf("key generation: %v", err)
		}
		cachedKey = k
	}
	return cachedWorld, cachedKey
}

func newPair(t *testing.T, seed int64) (*Client, *Server) {
	w, k := world(t)
	c := NewClient(w.Org, k, seed)
	c.CryptoRand = testenv.NewDetRand("client-rand")
	s := NewServer(w.Index, w.Org, w.DB)
	return c, s
}

func pickGenuine(w *testenv.World, rng *rand.Rand, n int) []wordnet.TermID {
	out := make([]wordnet.TermID, 0, n)
	seen := map[wordnet.TermID]bool{}
	for len(out) < n {
		t := w.Searchable[rng.Intn(len(w.Searchable))]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func TestEmbellishAddsWholeBuckets(t *testing.T) {
	w, _ := world(t)
	c, _ := newPair(t, 1)
	genuine := pickGenuine(w, rand.New(rand.NewSource(2)), 3)
	q, skipped, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v", skipped)
	}
	// The query must contain exactly the union of the genuine terms'
	// buckets.
	want := map[wordnet.TermID]bool{}
	for _, g := range genuine {
		b, _ := w.Org.BucketOf(g)
		for _, term := range w.Org.Bucket(b) {
			want[term] = true
		}
	}
	got := map[wordnet.TermID]bool{}
	for _, e := range q.Entries {
		if got[e.Term] {
			t.Fatalf("term %d duplicated in query", e.Term)
		}
		got[e.Term] = true
	}
	if len(got) != len(want) {
		t.Fatalf("query has %d terms, want %d", len(got), len(want))
	}
	for term := range want {
		if !got[term] {
			t.Fatalf("bucket term %d missing from query", term)
		}
	}
}

func TestEmbellishedFlagsEncryptCorrectBits(t *testing.T) {
	w, k := world(t)
	c, _ := newPair(t, 3)
	genuine := pickGenuine(w, rand.New(rand.NewSource(4)), 2)
	isGenuine := map[wordnet.TermID]bool{}
	for _, g := range genuine {
		isGenuine[g] = true
	}
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range q.Entries {
		m, err := k.DecryptInt(e.Flag)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if isGenuine[e.Term] {
			want = 1
		}
		if m != want {
			t.Fatalf("term %d flag decrypts to %d, want %d", e.Term, m, want)
		}
	}
}

func TestEmbellishPermutes(t *testing.T) {
	w, _ := world(t)
	c, _ := newPair(t, 5)
	genuine := pickGenuine(w, rand.New(rand.NewSource(6)), 4)
	q1, _, _ := c.Embellish(genuine)
	q2, _, _ := c.Embellish(genuine)
	same := len(q1.Entries) == len(q2.Entries)
	if same {
		for i := range q1.Entries {
			if q1.Entries[i].Term != q2.Entries[i].Term {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("two embellishments of the same query have identical term order")
	}
}

func TestEmbellishSharedBucketOnce(t *testing.T) {
	// Two genuine terms in the same bucket: the bucket appears once, with
	// both flags encrypting 1.
	w, k := world(t)
	c, _ := newPair(t, 7)
	b0 := w.Org.Bucket(0)
	genuine := []wordnet.TermID{b0[0], b0[1]}
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Entries) != len(b0) {
		t.Fatalf("query has %d entries, want %d (one bucket)", len(q.Entries), len(b0))
	}
	ones := 0
	for _, e := range q.Entries {
		if m, _ := k.DecryptInt(e.Flag); m == 1 {
			ones++
		}
	}
	if ones != 2 {
		t.Fatalf("%d genuine flags, want 2", ones)
	}
}

func TestEmbellishSkipsUnknownTerms(t *testing.T) {
	w, _ := world(t)
	c, _ := newPair(t, 8)
	known := pickGenuine(w, rand.New(rand.NewSource(9)), 1)
	// Choose a dictionary term that is NOT searchable (not in the org).
	var unknown wordnet.TermID = -1
	for i := 0; i < w.DB.NumTerms(); i++ {
		if _, ok := w.Org.BucketOf(wordnet.TermID(i)); !ok {
			unknown = wordnet.TermID(i)
			break
		}
	}
	if unknown == -1 {
		t.Skip("every dictionary term is searchable in this world")
	}
	q, skipped, err := c.Embellish([]wordnet.TermID{known[0], unknown})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != unknown {
		t.Fatalf("skipped = %v, want [%d]", skipped, unknown)
	}
	for _, e := range q.Entries {
		if e.Term == unknown {
			t.Fatal("unknown term leaked into the query")
		}
	}
}

func TestEmbellishAllUnknownErrors(t *testing.T) {
	c, _ := newPair(t, 10)
	if _, _, err := c.Embellish([]wordnet.TermID{wordnet.TermID(1 << 20)}); err == nil {
		t.Fatal("expected error for fully unknown query")
	}
}

// TestClaim1RankPreservation is the paper's Claim 1: the PR scheme's
// decrypted ranking equals the plaintext engine's ranking over the
// genuine terms alone (on quantized impacts).
func TestClaim1RankPreservation(t *testing.T) {
	w, _ := world(t)
	c, s := newPair(t, 20)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		genuine := pickGenuine(w, rng, 2+rng.Intn(3))
		q, _, err := c.Embellish(genuine)
		if err != nil {
			t.Fatal(err)
		}
		resp, _, err := s.Process(q)
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := c.PostFilter(resp, 10)
		if err != nil {
			t.Fatal(err)
		}
		// Plaintext reference over genuine terms only.
		var qt []int
		for _, g := range genuine {
			if ti, ok := w.Index.LookupTerm(w.DB.Lemma(g)); ok {
				qt = append(qt, ti)
			}
		}
		want := w.Index.QuantizedTopK(qt, 10)
		if len(want) == 0 {
			continue
		}
		if len(ranked) < len(want) {
			t.Fatalf("trial %d: PR returned %d ranked docs, plaintext %d", trial, len(ranked), len(want))
		}
		for i := range want {
			if ranked[i].Doc != want[i].Doc || ranked[i].Score != int64(want[i].Score) {
				t.Fatalf("trial %d rank %d: PR (%d, %d) vs plaintext (%d, %.0f)",
					trial, i, ranked[i].Doc, ranked[i].Score, want[i].Doc, want[i].Score)
			}
		}
	}
}

func TestDecoysDoNotPerturbScores(t *testing.T) {
	// Candidates that contain only decoy terms must decrypt to zero.
	w, _ := world(t)
	c, s := newPair(t, 30)
	genuine := pickGenuine(w, rand.New(rand.NewSource(31)), 1)
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := s.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := c.PostFilter(resp, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Docs containing the genuine term.
	genuineDocs := map[index.DocID]bool{}
	for _, p := range s.ListFor(genuine[0]) {
		genuineDocs[p.Doc] = true
	}
	zeros := 0
	for _, r := range ranked {
		if genuineDocs[r.Doc] {
			if r.Score <= 0 {
				t.Fatalf("doc %d contains the genuine term but scored %d", r.Doc, r.Score)
			}
		} else {
			if r.Score != 0 {
				t.Fatalf("decoy-only doc %d scored %d, want 0", r.Doc, r.Score)
			}
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("no decoy-only candidates; test world too small to be meaningful")
	}
}

func TestServerStatsAccounting(t *testing.T) {
	w, _ := world(t)
	c, s := newPair(t, 40)
	genuine := pickGenuine(w, rand.New(rand.NewSource(41)), 3)
	q, _, _ := c.Embellish(genuine)
	resp, st, err := s.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != len(resp.Docs) {
		t.Fatalf("Candidates = %d, |R| = %d", st.Candidates, len(resp.Docs))
	}
	buckets := w.Org.BucketsFor(termsOf(q))
	if st.IO.Seeks != len(buckets) {
		t.Fatalf("IO.Seeks = %d, want %d (one per distinct bucket)", st.IO.Seeks, len(buckets))
	}
	if st.Postings == 0 || st.ModMuls == 0 {
		t.Fatalf("no work recorded: %+v", st)
	}
	if q.Bytes() <= 0 || resp.Bytes() <= 0 {
		t.Fatal("traffic accounting empty")
	}
	// Query traffic = entries × (4 + ciphertext bytes).
	if q.Bytes() != len(q.Entries)*(4+q.Pub.CiphertextBytes()) {
		t.Fatal("query bytes formula drifted")
	}
}

func termsOf(q *Query) []wordnet.TermID {
	out := make([]wordnet.TermID, len(q.Entries))
	for i, e := range q.Entries {
		out[i] = e.Term
	}
	return out
}

func TestProcessEmptyQuery(t *testing.T) {
	_, s := newPair(t, 50)
	if _, _, err := s.Process(&Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestMulsForExponent(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 2, 255: 14, 256: 8}
	for e, want := range cases {
		if got := mulsForExponent(e); got != want {
			t.Errorf("mulsForExponent(%d) = %d, want %d", e, got, want)
		}
	}
}

func TestMaxScoreGuard(t *testing.T) {
	_, k := world(t)
	c := NewClient(cachedWorld.Org, k, 1)
	if c.MaxScore().Int64() != k.R.Int64()-1 {
		t.Fatal("MaxScore mismatch")
	}
}

// Package core implements the paper's primary contribution: the private
// retrieval (PR) scheme of Sections 3-4 of Pang, Ding and Xiao, "
// Embellishing Text Search Queries To Protect User Privacy" (VLDB 2010).
//
// The client embellishes each query by replacing every genuine search term
// with its entire host bucket (Algorithm 3), attaching to each term a
// Benaloh encryption of 1 (genuine) or 0 (decoy) and randomly permuting
// the result. The search engine walks the inverted list of every term in
// the embellished query and accumulates the encrypted relevance score
// E(score_j) ·= E(u_i)^{p_ij} (Algorithm 4); decoy flags encrypt zero, so
// only genuine impacts reach the plaintext score, yet the ciphertext
// changes for every term, keeping the server oblivious. The client
// decrypts the candidate scores and ranks (Algorithm 5). Claim 1: the
// ranking equals a plaintext engine's ranking over the genuine terms.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"embellish/internal/benaloh"
	"embellish/internal/bucket"
	"embellish/internal/index"
	"embellish/internal/simio"
	"embellish/internal/wordnet"
)

// QueryEntry is one term of an embellished query with its encrypted
// genuineness flag E(u).
type QueryEntry struct {
	Term wordnet.TermID
	Flag *big.Int
}

// Query is an embellished query: the union of the host buckets of all
// genuine terms, randomly permuted, each term carrying E(u). The Benaloh
// public key travels with the query so the server can operate on the
// ciphertexts.
type Query struct {
	Entries []QueryEntry
	Pub     *benaloh.PublicKey
}

// Bytes returns the network size of the query: per entry a 4-byte term
// identifier plus one ciphertext.
func (q *Query) Bytes() int {
	return len(q.Entries) * (4 + q.Pub.CiphertextBytes())
}

// DocScore is a candidate result document with its encrypted relevance
// score.
type DocScore struct {
	Doc index.DocID
	Enc *big.Int
}

// Response is the candidate set R returned by the server.
type Response struct {
	Docs     []DocScore
	ctxBytes int
}

// Bytes returns the network size of the response: per candidate a 4-byte
// document identifier plus one ciphertext.
func (r *Response) Bytes() int { return len(r.Docs) * (4 + r.ctxBytes) }

// Client is the user-side endpoint: it owns the private key and the
// bucket organization (both are public knowledge except the key; the
// organization is also known to the server).
type Client struct {
	Org *bucket.Organization
	Key *benaloh.PrivateKey
	// Rand drives the embellishment permutation and must be seeded per
	// client; crypto randomness for flag encryption comes from CryptoRand.
	Rand *rand.Rand
	// CryptoRand sources randomness for Benaloh encryptions; nil selects
	// crypto/rand.
	CryptoRand io.Reader
}

// NewClient builds a client. seed fixes the permutation order for
// reproducible experiments.
func NewClient(org *bucket.Organization, key *benaloh.PrivateKey, seed int64) *Client {
	return &Client{Org: org, Key: key, Rand: rand.New(rand.NewSource(seed))}
}

// MaxScore returns the largest plaintext relevance score representable
// under the client's key; Embellish refuses queries that could exceed it.
func (c *Client) MaxScore() *big.Int {
	return new(big.Int).Sub(c.Key.R, big.NewInt(1))
}

// Embellish implements Algorithm 3. Every genuine term pulls in its whole
// host bucket; terms sharing a bucket are emitted once with u=1. Genuine
// terms not present in the organization (out-of-dictionary words) are
// reported in skipped rather than silently dropped.
func (c *Client) Embellish(genuine []wordnet.TermID) (q *Query, skipped []wordnet.TermID, err error) {
	isGenuine := make(map[wordnet.TermID]bool, len(genuine))
	var buckets []int
	seenBucket := make(map[int]bool)
	for _, t := range genuine {
		b, ok := c.Org.BucketOf(t)
		if !ok {
			skipped = append(skipped, t)
			continue
		}
		isGenuine[t] = true
		if !seenBucket[b] {
			seenBucket[b] = true
			buckets = append(buckets, b)
		}
	}
	if len(buckets) == 0 {
		return nil, skipped, errors.New("core: no genuine term is in the bucket organization")
	}

	q = &Query{Pub: &c.Key.PublicKey}
	for _, b := range buckets {
		for _, t := range c.Org.Bucket(b) {
			u := int64(0)
			if isGenuine[t] {
				u = 1
			}
			flag, err := c.Key.EncryptInt(c.CryptoRand, u)
			if err != nil {
				return nil, skipped, fmt.Errorf("core: encrypting flag: %w", err)
			}
			q.Entries = append(q.Entries, QueryEntry{Term: t, Flag: flag})
		}
	}
	// Random permutation so the adversary cannot recover the logical
	// bucket grouping from entry order (Section 3).
	c.Rand.Shuffle(len(q.Entries), func(i, j int) {
		q.Entries[i], q.Entries[j] = q.Entries[j], q.Entries[i]
	})
	return q, skipped, nil
}

// Ranked is a decrypted, ranked result document.
type Ranked struct {
	Doc   index.DocID
	Score int64
}

// PostFilter implements Algorithm 5: decrypt every candidate score, sort
// decreasing, and return the top k (k <= 0 returns all). Ties break by
// ascending document ID for determinism.
func (c *Client) PostFilter(resp *Response, k int) ([]Ranked, error) {
	out := make([]Ranked, 0, len(resp.Docs))
	for _, ds := range resp.Docs {
		m, err := c.Key.DecryptInt(ds.Enc)
		if err != nil {
			return nil, fmt.Errorf("core: decrypting score of doc %d: %w", ds.Doc, err)
		}
		out = append(out, Ranked{Doc: ds.Doc, Score: m})
	}
	sortRanked(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func sortRanked(rs []Ranked) {
	// Insertion-free: small helper keeps package sort-import local.
	lessSwap(rs)
}

// Server is the search-engine endpoint. It owns the live segmented
// index, the bucket organization (public), and the bucket-aligned
// storage layout. Queries always evaluate against one atomically loaded
// index snapshot, so online updates never block or torment a reader.
type Server struct {
	// Live is the segmented index view; online appends, deletions and
	// merges swap its snapshot atomically.
	Live *index.Live
	Org  *bucket.Organization
	// db supplies the lemma spelling of each organization term so it can
	// be matched against each segment's dictionary.
	db   *wordnet.Database
	Disk simio.Model
	// shardN is the document-shard count of the worker-pool pipeline; 0
	// keeps the term-striped fallback.
	shardN int
	// window is the fixed-base exponentiation radix exponent; 0 disables
	// precomputation and every E(u)^p is a full modular exponentiation.
	window uint

	// resolved caches the per-segment term resolution and bucket
	// footprints derived from one index snapshot; it is reassembled on
	// the first query after an update (resolve). Segments are immutable,
	// so segCache memoizes each segment's resolution across snapshots —
	// a delete-only swap reuses every row, and an append resolves just
	// the new segment.
	resolveMu sync.Mutex
	resolved  atomic.Pointer[resolvedState]
	segCache  map[*index.Segment]*segResolved
}

// segResolved is one immutable segment's resolution against the
// organization: the TermID → segment term number map and the segment's
// byte contribution to each bucket.
type segResolved struct {
	termOf      []int32
	bucketBytes []int
}

// resolvedState bundles everything a query needs that is derived from
// one index snapshot, so a single atomic load yields a consistent view.
type resolvedState struct {
	snap *index.Snapshot
	// termOf[si] maps a dictionary TermID to segment si's term number;
	// organization terms absent from the segment map to -1.
	termOf [][]int32
	// bucketBytes[b] is the on-disk footprint of bucket b's inverted
	// lists across all segments, stored contiguously per Section 4 so
	// that one seek fetches the whole bucket.
	bucketBytes []int
}

// term resolves a dictionary term to segment si's term number (-1 when
// absent). Out-of-dictionary ids from hostile queries resolve to -1.
func (r *resolvedState) term(si int, t wordnet.TermID) int32 {
	m := r.termOf[si]
	if int(t) < 0 || int(t) >= len(m) {
		return -1
	}
	return m[t]
}

// SetSharding partitions the server's index into n document shards for
// the worker-pool pipeline of ProcessParallel: n < 0 selects GOMAXPROCS
// shards, n == 0 removes the sharded views (restoring the term-striped
// fallback). Each segment's partition is computed once (appends and
// merges cover new segments automatically) and copies that segment's
// postings, roughly doubling the postings' resident memory while
// sharding is enabled. Not safe to call concurrently with Process
// calls; configure before serving.
func (s *Server) SetSharding(n int) {
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.shardN = n
	s.Live.SetSharding(n)
}

// NumShards reports the configured shard count (0 when unsharded).
func (s *Server) NumShards() int { return s.shardN }

// SetPrecompute enables fixed-base windowed exponentiation for the
// per-term flag powers E(u)^p: window is the radix exponent w (tables of
// 2^w entries per window of the exponent), and 0 disables the tables.
// Precomputation changes only which group operations compute E(u)^p —
// the ciphertexts, and hence the protocol transcript, are identical.
func (s *Server) SetPrecompute(window uint) { s.window = window }

// NewServer wires a static single index to a bucket organization — the
// paper's original deployment shape, kept for callers that never
// update. It is a one-segment live server.
func NewServer(ix *index.Index, org *bucket.Organization, db *wordnet.Database) *Server {
	return NewLiveServer(index.NewLive(ix), org, db)
}

// NewLiveServer wires a live segmented index to a bucket organization.
// db supplies the lemma spelling of each organization term so it can be
// matched against each segment's dictionary.
func NewLiveServer(live *index.Live, org *bucket.Organization, db *wordnet.Database) *Server {
	s := &Server{Live: live, Org: org, db: db, Disk: simio.Default(),
		segCache: make(map[*index.Segment]*segResolved)}
	s.resolve()
	return s
}

// resolve returns the resolution cache for the CURRENT index snapshot,
// rebuilding it when an online update has swapped the snapshot since
// the last query. Concurrent queries during a rebuild either reuse the
// old cache (consistent with the old snapshot they would then use) or
// wait on the mutex and share the fresh one.
func (s *Server) resolve() *resolvedState {
	snap := s.Live.Snapshot()
	if r := s.resolved.Load(); r != nil && r.snap == snap {
		return r
	}
	s.resolveMu.Lock()
	defer s.resolveMu.Unlock()
	snap = s.Live.Snapshot() // re-load: catch up to the latest swap
	if r := s.resolved.Load(); r != nil && r.snap == snap {
		return r
	}
	r := &resolvedState{snap: snap}
	r.termOf = make([][]int32, len(snap.Segs))
	r.bucketBytes = make([]int, s.Org.NumBuckets())
	alive := make(map[*index.Segment]bool, len(snap.Segs))
	for si, seg := range snap.Segs {
		alive[seg] = true
		sr, ok := s.segCache[seg]
		if !ok {
			sr = s.resolveSegment(seg)
			s.segCache[seg] = sr
		}
		r.termOf[si] = sr.termOf
		for b, n := range sr.bucketBytes {
			r.bucketBytes[b] += n
		}
	}
	// Drop rows of segments the snapshot no longer holds (merged away):
	// in-flight queries keep their own resolvedState, so this only
	// bounds the cache, never invalidates a reader.
	for seg := range s.segCache {
		if !alive[seg] {
			delete(s.segCache, seg)
		}
	}
	s.resolved.Store(r)
	return r
}

// resolveSegment computes one segment's resolution; called once per
// segment lifetime, under resolveMu.
func (s *Server) resolveSegment(seg *index.Segment) *segResolved {
	sr := &segResolved{
		termOf:      make([]int32, s.db.NumTerms()),
		bucketBytes: make([]int, s.Org.NumBuckets()),
	}
	for i := range sr.termOf {
		sr.termOf[i] = -1
	}
	for b := 0; b < s.Org.NumBuckets(); b++ {
		for _, t := range s.Org.Bucket(b) {
			if ti, ok := seg.LookupTerm(s.db.Lemma(t)); ok {
				sr.termOf[t] = int32(ti)
				sr.bucketBytes[b] += seg.ListBytes(ti)
			}
		}
	}
	return sr
}

// ListFor returns the live postings of a dictionary term — concatenated
// across segments, tombstoned documents removed — or nil when the term
// does not occur in the corpus. On the common static single-segment
// server the underlying list is returned without copying.
func (s *Server) ListFor(t wordnet.TermID) []index.Posting {
	r := s.resolve()
	if len(r.snap.Segs) == 1 && r.snap.Tombs.Count() == 0 {
		if ti := r.term(0, t); ti >= 0 {
			return r.snap.Segs[0].List(int(ti))
		}
		return nil
	}
	var out []index.Posting
	for si, seg := range r.snap.Segs {
		ti := r.term(si, t)
		if ti < 0 {
			continue
		}
		for _, p := range seg.List(int(ti)) {
			if !r.snap.Deleted(p.Doc) {
				out = append(out, p)
			}
		}
	}
	return out
}

// Stats records the server-side cost of one query execution, feeding the
// Figure 7/8 metrics.
type Stats struct {
	// ModMuls counts KeyLen-bit modular multiplications; each homomorphic
	// accumulation E(score)·E(u)^p costs one modular exponentiation with
	// a small exponent p, accounted as its square-and-multiply length.
	ModMuls int
	// Postings is the number of inverted-list entries scanned, including
	// tombstoned ones (they are read, then skipped).
	Postings int
	// Tombstoned counts scanned postings skipped because their document
	// is deleted; skipped postings cost no group operations.
	Tombstoned int
	// IO aggregates the simulated disk accesses (one seek per distinct
	// bucket, Section 4's layout).
	IO simio.Accounting
	// Candidates is |R|.
	Candidates int
}

// IOms returns the simulated I/O time in milliseconds.
func (st Stats) IOms(m simio.Model) float64 { return st.IO.Ms(m) }

// totalPostings counts a query term's postings across every segment —
// the size powerFn uses to decide whether a fixed-base table pays off.
func (r *resolvedState) totalPostings(t wordnet.TermID) int {
	total := 0
	for si, seg := range r.snap.Segs {
		if ti := r.term(si, t); ti >= 0 {
			total += len(seg.List(int(ti)))
		}
	}
	return total
}

// cancelCheckPostings is how many postings foldEntry accumulates
// between context checks: frequent enough that a deadline lands within
// a handful of group operations, rare enough that the atomic load in
// ctx.Done() is invisible next to the modular arithmetic.
const cancelCheckPostings = 64

// foldEntry folds one embellished-query entry into acc: build the
// E(u)^p evaluator sized by the entry's total postings (one fixed-base
// table serves every segment), then walk the entry's list segment by
// segment, skipping tombstoned documents BEFORE any group operation.
// Shared by the sequential plan and the term-striped workers, which
// pass worker-local acc and stats. The context is checked every
// cancelCheckPostings postings; on cancellation the entry's partial
// work stays accounted in st and ctx.Err() is returned.
func (s *Server) foldEntry(ctx context.Context, r *resolvedState, e QueryEntry, pk *benaloh.PublicKey, acc map[index.DocID]*big.Int, st *Stats) error {
	total := r.totalPostings(e.Term)
	if total == 0 {
		return nil
	}
	done := ctx.Done()
	var dl time.Time
	var hasDL bool
	if done != nil {
		dl, hasDL = ctx.Deadline()
		// Check BEFORE the fixed-base setup: the table build is the one
		// block of unchecked work large enough to matter, so a deadline
		// that fires between entries must not pay for another table.
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		if hasDL && !scanNow().Before(dl) {
			return context.DeadlineExceeded
		}
	}
	pow, setup := s.powerFn(pk, e.Flag, total)
	st.ModMuls += setup
	for si, seg := range r.snap.Segs {
		ti := r.term(si, e.Term)
		if ti < 0 {
			continue
		}
		for _, p := range seg.List(int(ti)) {
			if done != nil && st.Postings&(cancelCheckPostings-1) == 0 {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
				// Also check the wall clock: on a single-P runtime the
				// context's timer goroutine cannot run while this scan
				// holds the CPU, so the done channel can close tens of
				// milliseconds after the deadline actually passed.
				if hasDL && !scanNow().Before(dl) {
					return context.DeadlineExceeded
				}
			}
			st.Postings++
			if r.snap.Deleted(p.Doc) {
				st.Tombstoned++
				continue
			}
			contrib, muls := pow(int64(p.Quantized))
			st.ModMuls += muls
			if cur, ok := acc[p.Doc]; ok {
				pk.AddInto(cur, contrib)
				st.ModMuls++
			} else {
				acc[p.Doc] = contrib
			}
		}
	}
	return nil
}

// Process implements Algorithm 4: for every (genuine or decoy) term in
// the embellished query, walk its inverted list — segment by segment,
// skipping tombstoned documents without any homomorphic work — and fold
// E(u_i)^{p_ij} into the candidate document's encrypted score.
func (s *Server) Process(q *Query) (*Response, Stats, error) {
	return s.ProcessCtx(context.Background(), q)
}

// ProcessCtx is Process under a context: the posting walk checks ctx
// periodically and stops mid-scan when the context is cancelled or its
// deadline expires. On cancellation the returned Stats account the
// postings and multiplications actually performed before the stop —
// the partial-work figures operational layers charge abandoned queries
// for — and the error is ctx.Err(). The partial response is discarded.
func (s *Server) ProcessCtx(ctx context.Context, q *Query) (*Response, Stats, error) {
	if len(q.Entries) == 0 {
		return nil, Stats{}, errors.New("core: empty query")
	}
	r := s.resolve()
	st := s.chargeIO(q, r)

	pk := q.Pub
	acc := make(map[index.DocID]*big.Int)
	for _, e := range q.Entries {
		if err := s.foldEntry(ctx, r, e, pk, acc, &st); err != nil {
			return nil, st, err
		}
	}
	resp := &Response{ctxBytes: pk.CiphertextBytes()}
	resp.Docs = make([]DocScore, 0, len(acc))
	for d, c := range acc {
		resp.Docs = append(resp.Docs, DocScore{Doc: d, Enc: c})
	}
	sortDocScores(resp.Docs)
	st.Candidates = len(resp.Docs)
	return resp, st, nil
}

// ctxScanErr is the error a cancelled scan reports: the context's own
// error once its timer has fired, else DeadlineExceeded — a scan only
// stops early on the done channel or on a wall-clock deadline check,
// and the latter can observe the deadline before the context's own
// timer goroutine has had a chance to run.
func ctxScanErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}

// fixedBaseMinPostings is the inverted-list length at which building a
// fixed-base table pays for its setup multiplications; shorter lists
// fall back to plain exponentiation.
const fixedBaseMinPostings = 4

// powerFn returns the E(u)^p evaluator for one query entry — a
// fixed-base windowed table when precomputation is enabled and the
// term's list is long enough to amortize it, otherwise plain modular
// exponentiation. The second return is the setup cost in modular
// multiplications; the evaluator reports its per-call cost. Both paths
// yield the identical group element, so the choice is invisible to the
// client and to the protocol transcript.
func (s *Server) powerFn(pk *benaloh.PublicKey, flag *big.Int, postings int) (func(int64) (*big.Int, int), int) {
	if s.window == 0 || postings < fixedBaseMinPostings {
		return func(p int64) (*big.Int, int) {
			// E(u)^p via modular exponentiation; count its multiplications
			// for the CPU cost model (~1.5 per exponent bit).
			return pk.ScalarMul(flag, p), mulsForExponent(p)
		}, 0
	}
	fb := pk.NewFixedBase(flag, int64(s.Live.QuantLevels()), s.window)
	return fb.Pow, fb.SetupMuls()
}

// mulsForExponent estimates the modular multiplications of one
// square-and-multiply exponentiation with exponent e.
func mulsForExponent(e int64) int {
	if e <= 1 {
		return 0
	}
	bits, ones := 0, 0
	for v := e; v > 0; v >>= 1 {
		bits++
		if v&1 == 1 {
			ones++
		}
	}
	return (bits - 1) + (ones - 1)
}

// Package core implements the paper's primary contribution: the private
// retrieval (PR) scheme of Sections 3-4 of Pang, Ding and Xiao, "
// Embellishing Text Search Queries To Protect User Privacy" (VLDB 2010).
//
// The client embellishes each query by replacing every genuine search term
// with its entire host bucket (Algorithm 3), attaching to each term a
// Benaloh encryption of 1 (genuine) or 0 (decoy) and randomly permuting
// the result. The search engine walks the inverted list of every term in
// the embellished query and accumulates the encrypted relevance score
// E(score_j) ·= E(u_i)^{p_ij} (Algorithm 4); decoy flags encrypt zero, so
// only genuine impacts reach the plaintext score, yet the ciphertext
// changes for every term, keeping the server oblivious. The client
// decrypts the candidate scores and ranks (Algorithm 5). Claim 1: the
// ranking equals a plaintext engine's ranking over the genuine terms.
package core

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"runtime"

	"embellish/internal/benaloh"
	"embellish/internal/bucket"
	"embellish/internal/index"
	"embellish/internal/simio"
	"embellish/internal/wordnet"
)

// QueryEntry is one term of an embellished query with its encrypted
// genuineness flag E(u).
type QueryEntry struct {
	Term wordnet.TermID
	Flag *big.Int
}

// Query is an embellished query: the union of the host buckets of all
// genuine terms, randomly permuted, each term carrying E(u). The Benaloh
// public key travels with the query so the server can operate on the
// ciphertexts.
type Query struct {
	Entries []QueryEntry
	Pub     *benaloh.PublicKey
}

// Bytes returns the network size of the query: per entry a 4-byte term
// identifier plus one ciphertext.
func (q *Query) Bytes() int {
	return len(q.Entries) * (4 + q.Pub.CiphertextBytes())
}

// DocScore is a candidate result document with its encrypted relevance
// score.
type DocScore struct {
	Doc index.DocID
	Enc *big.Int
}

// Response is the candidate set R returned by the server.
type Response struct {
	Docs     []DocScore
	ctxBytes int
}

// Bytes returns the network size of the response: per candidate a 4-byte
// document identifier plus one ciphertext.
func (r *Response) Bytes() int { return len(r.Docs) * (4 + r.ctxBytes) }

// Client is the user-side endpoint: it owns the private key and the
// bucket organization (both are public knowledge except the key; the
// organization is also known to the server).
type Client struct {
	Org *bucket.Organization
	Key *benaloh.PrivateKey
	// Rand drives the embellishment permutation and must be seeded per
	// client; crypto randomness for flag encryption comes from CryptoRand.
	Rand *rand.Rand
	// CryptoRand sources randomness for Benaloh encryptions; nil selects
	// crypto/rand.
	CryptoRand io.Reader
}

// NewClient builds a client. seed fixes the permutation order for
// reproducible experiments.
func NewClient(org *bucket.Organization, key *benaloh.PrivateKey, seed int64) *Client {
	return &Client{Org: org, Key: key, Rand: rand.New(rand.NewSource(seed))}
}

// MaxScore returns the largest plaintext relevance score representable
// under the client's key; Embellish refuses queries that could exceed it.
func (c *Client) MaxScore() *big.Int {
	return new(big.Int).Sub(c.Key.R, big.NewInt(1))
}

// Embellish implements Algorithm 3. Every genuine term pulls in its whole
// host bucket; terms sharing a bucket are emitted once with u=1. Genuine
// terms not present in the organization (out-of-dictionary words) are
// reported in skipped rather than silently dropped.
func (c *Client) Embellish(genuine []wordnet.TermID) (q *Query, skipped []wordnet.TermID, err error) {
	isGenuine := make(map[wordnet.TermID]bool, len(genuine))
	var buckets []int
	seenBucket := make(map[int]bool)
	for _, t := range genuine {
		b, ok := c.Org.BucketOf(t)
		if !ok {
			skipped = append(skipped, t)
			continue
		}
		isGenuine[t] = true
		if !seenBucket[b] {
			seenBucket[b] = true
			buckets = append(buckets, b)
		}
	}
	if len(buckets) == 0 {
		return nil, skipped, errors.New("core: no genuine term is in the bucket organization")
	}

	q = &Query{Pub: &c.Key.PublicKey}
	for _, b := range buckets {
		for _, t := range c.Org.Bucket(b) {
			u := int64(0)
			if isGenuine[t] {
				u = 1
			}
			flag, err := c.Key.EncryptInt(c.CryptoRand, u)
			if err != nil {
				return nil, skipped, fmt.Errorf("core: encrypting flag: %w", err)
			}
			q.Entries = append(q.Entries, QueryEntry{Term: t, Flag: flag})
		}
	}
	// Random permutation so the adversary cannot recover the logical
	// bucket grouping from entry order (Section 3).
	c.Rand.Shuffle(len(q.Entries), func(i, j int) {
		q.Entries[i], q.Entries[j] = q.Entries[j], q.Entries[i]
	})
	return q, skipped, nil
}

// Ranked is a decrypted, ranked result document.
type Ranked struct {
	Doc   index.DocID
	Score int64
}

// PostFilter implements Algorithm 5: decrypt every candidate score, sort
// decreasing, and return the top k (k <= 0 returns all). Ties break by
// ascending document ID for determinism.
func (c *Client) PostFilter(resp *Response, k int) ([]Ranked, error) {
	out := make([]Ranked, 0, len(resp.Docs))
	for _, ds := range resp.Docs {
		m, err := c.Key.DecryptInt(ds.Enc)
		if err != nil {
			return nil, fmt.Errorf("core: decrypting score of doc %d: %w", ds.Doc, err)
		}
		out = append(out, Ranked{Doc: ds.Doc, Score: m})
	}
	sortRanked(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func sortRanked(rs []Ranked) {
	// Insertion-free: small helper keeps package sort-import local.
	lessSwap(rs)
}

// Server is the search-engine endpoint. It owns the inverted index, the
// bucket organization (public), and the bucket-aligned storage layout.
type Server struct {
	Index *index.Index
	Org   *bucket.Organization
	// termOf maps a dictionary TermID to its index term number; terms of
	// the organization absent from the corpus map to -1 (empty list).
	termOf []int32
	// bucketBytes[b] is the on-disk footprint of bucket b's inverted
	// lists, stored contiguously per Section 4 so that one seek fetches
	// the whole bucket.
	bucketBytes []int
	Disk        simio.Model
	// sharded is the document-partitioned view driving the worker-pool
	// pipeline of ProcessParallel; nil keeps the term-striped fallback.
	sharded *index.Sharded
	// window is the fixed-base exponentiation radix exponent; 0 disables
	// precomputation and every E(u)^p is a full modular exponentiation.
	window uint
}

// SetSharding partitions the server's index into n document shards for
// the worker-pool pipeline of ProcessParallel: n < 0 selects GOMAXPROCS
// shards, n == 0 removes the sharded view (restoring the term-striped
// fallback). The partition is computed once and reused by every query;
// it copies the postings, roughly doubling the index's resident memory
// while sharding is enabled. Not safe to call concurrently with
// Process calls; configure before serving.
func (s *Server) SetSharding(n int) {
	if n == 0 {
		s.sharded = nil
		return
	}
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.sharded = s.Index.Shard(n)
}

// NumShards reports the configured shard count (0 when unsharded).
func (s *Server) NumShards() int {
	if s.sharded == nil {
		return 0
	}
	return s.sharded.NumShards()
}

// SetPrecompute enables fixed-base windowed exponentiation for the
// per-term flag powers E(u)^p: window is the radix exponent w (tables of
// 2^w entries per window of the exponent), and 0 disables the tables.
// Precomputation changes only which group operations compute E(u)^p —
// the ciphertexts, and hence the protocol transcript, are identical.
func (s *Server) SetPrecompute(window uint) { s.window = window }

// NewServer wires an index to a bucket organization. db supplies the
// lemma spelling of each organization term so it can be matched against
// the index dictionary.
func NewServer(ix *index.Index, org *bucket.Organization, db *wordnet.Database) *Server {
	s := &Server{Index: ix, Org: org, Disk: simio.Default()}
	s.termOf = make([]int32, db.NumTerms())
	for i := range s.termOf {
		s.termOf[i] = -1
	}
	s.bucketBytes = make([]int, org.NumBuckets())
	for b := 0; b < org.NumBuckets(); b++ {
		for _, t := range org.Bucket(b) {
			if ti, ok := ix.LookupTerm(db.Lemma(t)); ok {
				s.termOf[t] = int32(ti)
				s.bucketBytes[b] += ix.ListBytes(ti)
			}
		}
	}
	return s
}

// ListFor returns the inverted list of a dictionary term, or nil when the
// term does not occur in the corpus.
func (s *Server) ListFor(t wordnet.TermID) []index.Posting {
	if int(t) >= len(s.termOf) || s.termOf[t] < 0 {
		return nil
	}
	return s.Index.List(int(s.termOf[t]))
}

// Stats records the server-side cost of one query execution, feeding the
// Figure 7/8 metrics.
type Stats struct {
	// ModMuls counts KeyLen-bit modular multiplications; each homomorphic
	// accumulation E(score)·E(u)^p costs one modular exponentiation with
	// a small exponent p, accounted as its square-and-multiply length.
	ModMuls int
	// Postings is the number of inverted-list entries scanned.
	Postings int
	// IO aggregates the simulated disk accesses (one seek per distinct
	// bucket, Section 4's layout).
	IO simio.Accounting
	// Candidates is |R|.
	Candidates int
}

// IOms returns the simulated I/O time in milliseconds.
func (st Stats) IOms(m simio.Model) float64 { return st.IO.Ms(m) }

// Process implements Algorithm 4: for every (genuine or decoy) term in
// the embellished query, walk its inverted list and fold E(u_i)^{p_ij}
// into the candidate document's encrypted score.
func (s *Server) Process(q *Query) (*Response, Stats, error) {
	if len(q.Entries) == 0 {
		return nil, Stats{}, errors.New("core: empty query")
	}
	var st Stats

	// Charge I/O: one seek per distinct bucket named by the query.
	terms := make([]wordnet.TermID, len(q.Entries))
	for i, e := range q.Entries {
		terms[i] = e.Term
	}
	for _, b := range s.Org.BucketsFor(terms) {
		st.IO.Charge(s.bucketBytes[b])
	}

	pk := q.Pub
	acc := make(map[index.DocID]*big.Int)
	for _, e := range q.Entries {
		list := s.ListFor(e.Term)
		pow, setup := s.powerFn(pk, e.Flag, len(list))
		st.ModMuls += setup
		for i := range list {
			p := list[i]
			st.Postings++
			contrib, muls := pow(int64(p.Quantized))
			st.ModMuls += muls
			if cur, ok := acc[p.Doc]; ok {
				pk.AddInto(cur, contrib)
				st.ModMuls++
			} else {
				acc[p.Doc] = contrib
			}
		}
	}
	resp := &Response{ctxBytes: pk.CiphertextBytes()}
	resp.Docs = make([]DocScore, 0, len(acc))
	for d, c := range acc {
		resp.Docs = append(resp.Docs, DocScore{Doc: d, Enc: c})
	}
	sortDocScores(resp.Docs)
	st.Candidates = len(resp.Docs)
	return resp, st, nil
}

// fixedBaseMinPostings is the inverted-list length at which building a
// fixed-base table pays for its setup multiplications; shorter lists
// fall back to plain exponentiation.
const fixedBaseMinPostings = 4

// powerFn returns the E(u)^p evaluator for one query entry — a
// fixed-base windowed table when precomputation is enabled and the
// term's list is long enough to amortize it, otherwise plain modular
// exponentiation. The second return is the setup cost in modular
// multiplications; the evaluator reports its per-call cost. Both paths
// yield the identical group element, so the choice is invisible to the
// client and to the protocol transcript.
func (s *Server) powerFn(pk *benaloh.PublicKey, flag *big.Int, postings int) (func(int64) (*big.Int, int), int) {
	if s.window == 0 || postings < fixedBaseMinPostings {
		return func(p int64) (*big.Int, int) {
			// E(u)^p via modular exponentiation; count its multiplications
			// for the CPU cost model (~1.5 per exponent bit).
			return pk.ScalarMul(flag, p), mulsForExponent(p)
		}, 0
	}
	fb := pk.NewFixedBase(flag, int64(s.Index.QuantLevels), s.window)
	return fb.Pow, fb.SetupMuls()
}

// mulsForExponent estimates the modular multiplications of one
// square-and-multiply exponentiation with exponent e.
func mulsForExponent(e int64) int {
	if e <= 1 {
		return 0
	}
	bits, ones := 0, 0
	for v := e; v > 0; v >>= 1 {
		bits++
		if v&1 == 1 {
			ones++
		}
	}
	return (bits - 1) + (ones - 1)
}

package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestShardedMatchesSequential: the document-sharded worker-pool
// pipeline, with and without fixed-base precomputation, must decrypt to
// exactly the sequential Algorithm 4 scores for every candidate.
func TestShardedMatchesSequential(t *testing.T) {
	w, _ := world(t)
	rng := rand.New(rand.NewSource(91))
	for _, cfg := range []struct {
		shards  int
		window  uint
		workers int
	}{
		{shards: 1, window: 0, workers: 1},
		{shards: 2, window: 0, workers: 2},
		{shards: 4, window: 4, workers: 2},
		{shards: 8, window: 4, workers: 8},
		{shards: 3, window: 2, workers: 16}, // more workers than shards
	} {
		c, s := newPair(t, 90)
		_, seqServer := newPair(t, 90)
		genuine := pickGenuine(w, rng, 3)
		q, _, err := c.Embellish(genuine)
		if err != nil {
			t.Fatal(err)
		}
		seqResp, seqStats, err := seqServer.Process(q)
		if err != nil {
			t.Fatal(err)
		}
		s.SetSharding(cfg.shards)
		s.SetPrecompute(cfg.window)
		if s.NumShards() != cfg.shards {
			t.Fatalf("NumShards = %d, want %d", s.NumShards(), cfg.shards)
		}
		shResp, shStats, err := s.ProcessParallel(q, cfg.workers)
		if err != nil {
			t.Fatal(err)
		}
		if shStats.Postings != seqStats.Postings || shStats.Candidates != seqStats.Candidates {
			t.Fatalf("%+v: stats diverge: %+v vs %+v", cfg, shStats, seqStats)
		}
		if shStats.IO != seqStats.IO {
			t.Fatalf("%+v: IO accounting diverges", cfg)
		}
		seqRanked, err := c.PostFilter(seqResp, 0)
		if err != nil {
			t.Fatal(err)
		}
		shRanked, err := c.PostFilter(shResp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(seqRanked) != len(shRanked) {
			t.Fatalf("%+v: %d vs %d candidates", cfg, len(shRanked), len(seqRanked))
		}
		for i := range seqRanked {
			if seqRanked[i] != shRanked[i] {
				t.Fatalf("%+v rank %d: %+v vs %+v", cfg, i, shRanked[i], seqRanked[i])
			}
		}
	}
}

// TestPrecomputeMatchesSequential: fixed-base precomputation on the
// sequential path must not change any decrypted score, and must lower
// the modeled multiplication count on long lists.
func TestPrecomputeMatchesSequential(t *testing.T) {
	w, _ := world(t)
	c, plain := newPair(t, 94)
	_, pre := newPair(t, 94)
	pre.SetPrecompute(4)
	genuine := pickGenuine(w, rand.New(rand.NewSource(95)), 3)
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	plainResp, plainStats, err := plain.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	preResp, preStats, err := pre.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	if preStats.Postings != plainStats.Postings {
		t.Fatalf("postings diverge: %d vs %d", preStats.Postings, plainStats.Postings)
	}
	a, err := c.PostFilter(plainResp, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.PostFilter(preResp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d vs %d candidates", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, b[i], a[i])
		}
	}
}

// TestShardedConcurrentQueries runs many queries against one sharded
// server from concurrent goroutines; run under -race this doubles as
// the data-race check for the shared sharded view and fixed-base plans.
func TestShardedConcurrentQueries(t *testing.T) {
	w, _ := world(t)
	c, s := newPair(t, 96)
	s.SetSharding(4)
	s.SetPrecompute(4)
	rng := rand.New(rand.NewSource(97))

	type job struct {
		q    *Query
		want []Ranked
	}
	jobs := make([]job, 6)
	for i := range jobs {
		genuine := pickGenuine(w, rng, 2)
		q, _, err := c.Embellish(genuine)
		if err != nil {
			t.Fatal(err)
		}
		resp, _, err := s.Process(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.PostFilter(resp, 0)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{q: q, want: want}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, jb := range jobs {
		wg.Add(1)
		go func(jb job) {
			defer wg.Done()
			resp, _, err := s.ProcessParallel(jb.q, 2)
			if err != nil {
				errs <- err
				return
			}
			got, err := c.PostFilter(resp, 0)
			if err != nil {
				errs <- err
				return
			}
			for i := range jb.want {
				if got[i] != jb.want[i] {
					errs <- errMismatch{}
					return
				}
			}
		}(jb)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "sharded ranking diverged from sequential" }

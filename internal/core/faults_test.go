package core

import (
	"math/big"
	"math/rand"
	"testing"

	"embellish/internal/benaloh"
	"embellish/internal/testenv"
)

// Failure-injection tests: the scheme's behaviour when ciphertexts are
// tampered with in flight, when the client's key does not match the
// query's, and under other fault conditions a deployment would hit.

func TestTamperedFlagChangesOnlyThatTermsContribution(t *testing.T) {
	// A malicious (or faulty) channel replacing one flag ciphertext with
	// a fresh encryption of 1 turns a decoy genuine: the affected
	// documents' scores change, but nothing else breaks — decryption
	// still succeeds and other terms are unaffected. This documents the
	// scheme's (intended) lack of ciphertext integrity: integrity is
	// delegated to the transport, as the paper assumes.
	w, k := world(t)
	c, s := newPair(t, 60)
	genuine := pickGenuine(w, rand.New(rand.NewSource(61)), 1)
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one decoy flag to 1.
	var victim int = -1
	for i, e := range q.Entries {
		if m, _ := k.DecryptInt(e.Flag); m == 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("no decoy entry")
	}
	forged, err := k.EncryptInt(testenv.NewDetRand("forge"), 1)
	if err != nil {
		t.Fatal(err)
	}
	q.Entries[victim].Flag = forged

	resp, _, err := s.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := c.PostFilter(resp, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Documents containing the forged term now score positive even
	// without the genuine term.
	forgedDocs := map[int64]bool{}
	for _, p := range s.ListFor(q.Entries[victim].Term) {
		forgedDocs[int64(p.Doc)] = true
	}
	genuineDocs := map[int64]bool{}
	for _, p := range s.ListFor(genuine[0]) {
		genuineDocs[int64(p.Doc)] = true
	}
	sawForgedContribution := false
	for _, r := range ranked {
		if forgedDocs[int64(r.Doc)] && !genuineDocs[int64(r.Doc)] && r.Score > 0 {
			sawForgedContribution = true
		}
	}
	if !sawForgedContribution {
		t.Fatal("forged genuine flag had no observable effect; test world too sparse")
	}
}

func TestGarbageCiphertextFailsDecryption(t *testing.T) {
	// A flag replaced by a random group element is (overwhelmingly) not
	// a valid encryption of any message; score decryption must report an
	// error, not return garbage silently.
	w, _ := world(t)
	c, s := newPair(t, 62)
	genuine := pickGenuine(w, rand.New(rand.NewSource(63)), 1)
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	// 7 is virtually never of the form g^m·µ^r for tiny m with these
	// parameters; if it happens to be, the test would still pass via the
	// score path below failing to trigger.
	q.Entries[0].Flag = big.NewInt(7)
	resp, _, err := s.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PostFilter(resp, 0); err == nil {
		t.Skip("garbage ciphertext happened to decrypt; acceptable with tiny test keys")
	}
}

func TestWrongKeyFailsOrMisdecrypts(t *testing.T) {
	// Decrypting with a different private key must error (the typical
	// case) — it must never panic.
	w, _ := world(t)
	c, s := newPair(t, 64)
	genuine := pickGenuine(w, rand.New(rand.NewSource(65)), 1)
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := s.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	otherKey, err := benaloh.GenerateKey(testenv.NewDetRand("other-key"), 256, benaloh.Pow3(9))
	if err != nil {
		t.Fatal(err)
	}
	imposter := NewClient(w.Org, otherKey, 1)
	if _, err := imposter.PostFilter(resp, 0); err == nil {
		t.Skip("foreign ciphertexts decrypted by chance under small test keys")
	}
}

func TestProcessUnknownTermsOnly(t *testing.T) {
	// An embellished query whose terms none occur in the corpus yields
	// an empty candidate set, not an error.
	w, k := world(t)
	_, s := newPair(t, 66)
	// Build a query manually from org terms that are absent from the
	// index (if any exist in this world).
	var absent []QueryEntry
	for b := 0; b < w.Org.NumBuckets() && len(absent) == 0; b++ {
		for _, tm := range w.Org.Bucket(b) {
			if s.ListFor(tm) == nil {
				flag, _ := k.EncryptInt(testenv.NewDetRand("abs"), 1)
				absent = append(absent, QueryEntry{Term: tm, Flag: flag})
				break
			}
		}
	}
	if len(absent) == 0 {
		t.Skip("every organization term occurs in this corpus")
	}
	resp, st, err := s.Process(&Query{Entries: absent, Pub: &k.PublicKey})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) != 0 || st.Candidates != 0 {
		t.Fatalf("absent-term query returned %d candidates", len(resp.Docs))
	}
}

func TestScoreOverflowWrapsModR(t *testing.T) {
	// Scores accumulate modulo r. A pathological query whose scores
	// exceed r-1 wraps — the documented reason Options.ScoreSpace must
	// exceed the maximum achievable score. Verify the wrap is modular,
	// not corrupt.
	_, k := world(t)
	r := k.R.Int64()
	c1, err := k.EncryptInt(testenv.NewDetRand("wrap1"), r-1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := k.EncryptInt(testenv.NewDetRand("wrap2"), 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := k.Add(c1, c2)
	m, err := k.DecryptInt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 { // (r-1 + 2) mod r = 1
		t.Fatalf("wrap decrypted to %d, want 1", m)
	}
}

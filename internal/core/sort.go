package core

import "sort"

// lessSwap sorts ranked results by decreasing score, ties by ascending
// document ID.
func lessSwap(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Doc < rs[j].Doc
	})
}

// sortDocScores orders the candidate set by document ID, a canonical
// order that leaks nothing (the ciphertexts are already order-free) and
// makes responses reproducible for tests.
func sortDocScores(ds []DocScore) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Doc < ds[j].Doc })
}

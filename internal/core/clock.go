package core

import "time"

// scanNow is the clock the scan kernels poll deadlines against (the
// Done channel alone is not enough on a single-P runtime, where a busy
// scan starves the context's timer goroutine). A seam rather than a
// call to time.Now so tests can install a deterministic clock and
// state cancellation promptness in poll counts instead of racing the
// scheduler.
var scanNow = time.Now

// SetScanClock replaces the deadline-poll clock and returns a restore
// function. Test seam: swap only while no scan is running, restore
// before the test ends.
func SetScanClock(now func() time.Time) (restore func()) {
	prev := scanNow
	scanNow = now
	return func() { scanNow = prev }
}

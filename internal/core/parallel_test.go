package core

import (
	"math/rand"
	"testing"
)

// TestParallelMatchesSequential: the parallel accumulator must decrypt
// to exactly the sequential scores for every candidate.
func TestParallelMatchesSequential(t *testing.T) {
	w, _ := world(t)
	c, s := newPair(t, 80)
	rng := rand.New(rand.NewSource(81))
	for _, workers := range []int{2, 3, 8} {
		genuine := pickGenuine(w, rng, 3)
		q, _, err := c.Embellish(genuine)
		if err != nil {
			t.Fatal(err)
		}
		seqResp, seqStats, err := s.Process(q)
		if err != nil {
			t.Fatal(err)
		}
		parResp, parStats, err := s.ProcessParallel(q, workers)
		if err != nil {
			t.Fatal(err)
		}
		if parStats.Postings != seqStats.Postings || parStats.Candidates != seqStats.Candidates {
			t.Fatalf("workers=%d: stats diverge: %+v vs %+v", workers, parStats, seqStats)
		}
		if parStats.IO != seqStats.IO {
			t.Fatalf("workers=%d: IO accounting diverges", workers)
		}
		seqRanked, err := c.PostFilter(seqResp, 0)
		if err != nil {
			t.Fatal(err)
		}
		parRanked, err := c.PostFilter(parResp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(seqRanked) != len(parRanked) {
			t.Fatalf("workers=%d: %d vs %d candidates", workers, len(parRanked), len(seqRanked))
		}
		for i := range seqRanked {
			if seqRanked[i] != parRanked[i] {
				t.Fatalf("workers=%d rank %d: %+v vs %+v", workers, i, parRanked[i], seqRanked[i])
			}
		}
	}
}

func TestParallelSmallQueryFallsBack(t *testing.T) {
	w, _ := world(t)
	c, s := newPair(t, 82)
	genuine := pickGenuine(w, rand.New(rand.NewSource(83)), 1)
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny queries fall back to the sequential path; result must still
	// be correct.
	resp, _, err := s.ProcessParallel(q, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) == 0 {
		t.Fatal("no candidates")
	}
}

func TestParallelEmptyQuery(t *testing.T) {
	_, s := newPair(t, 84)
	if _, _, err := s.ProcessParallel(&Query{}, 4); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	w, _ := world(t)
	c, s := newPair(t, 86)
	genuine := pickGenuine(w, rand.New(rand.NewSource(87)), 2)
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ProcessParallel(q, 0); err != nil {
		t.Fatal(err)
	}
}

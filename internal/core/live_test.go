package core

import (
	"math/rand"
	"testing"

	"embellish/internal/index"
	"embellish/internal/testenv"
)

// liveWorld rebuilds the cached world's corpus as a two-segment live
// set: the first 120 documents as the base segment, the remaining 30
// appended online with the pinned quantization scale.
func liveWorld(t *testing.T) (*testenv.World, *index.Live) {
	t.Helper()
	w, _ := world(t)
	if len(w.Corp.Docs) < 150 {
		t.Fatalf("world has %d docs, want >= 150", len(w.Corp.Docs))
	}
	b := index.NewBuilder()
	for _, d := range w.Corp.Docs[:120] {
		b.Add(index.DocID(d.ID), d.Tokens)
	}
	live := index.NewLive(b.Build())
	b2 := index.NewBuilder()
	b2.Scale = live.Scale()
	for i, d := range w.Corp.Docs[120:] {
		b2.Add(index.DocID(i), d.Tokens)
	}
	if _, err := live.Append(b2.Build()); err != nil {
		t.Fatalf("Append: %v", err)
	}
	return w, live
}

// TestLivePlansAgreeAfterUpdates drives the same embellished query
// through every execution plan on a multi-segment live server with
// tombstones, and checks each decrypted ranking against the snapshot's
// plaintext quantized ranking (Claim 1 on the live corpus).
func TestLivePlansAgreeAfterUpdates(t *testing.T) {
	w, live := liveWorld(t)
	_, k := world(t)
	srv := NewLiveServer(live, w.Org, w.DB)
	srv.SetPrecompute(4)

	c := NewClient(w.Org, k, 7)
	c.CryptoRand = testenv.NewDetRand("core-live-client")
	genuine := pickGenuine(w, rand.New(rand.NewSource(3)), 4)
	q, _, err := c.Embellish(genuine)
	if err != nil {
		t.Fatal(err)
	}

	// Tombstone a few documents that the first genuine term actually
	// scores, so the skip path is exercised.
	victims := []index.DocID{}
	for _, p := range srv.ListFor(genuine[0]) {
		victims = append(victims, p.Doc)
		if len(victims) == 3 {
			break
		}
	}
	if len(victims) == 0 {
		t.Fatal("first genuine term scores no documents; pick another seed")
	}
	if err := live.Delete(victims); err != nil {
		t.Fatal(err)
	}

	lemmas := make([]string, len(genuine))
	for i, g := range genuine {
		lemmas[i] = w.DB.Lemma(g)
	}
	want := live.Snapshot().QuantizedTopK(lemmas, 0)
	if len(want) == 0 {
		t.Fatal("plaintext ranking empty")
	}

	check := func(name string, resp *Response, st Stats) {
		t.Helper()
		ranked, err := c.PostFilter(resp, 0)
		if err != nil {
			t.Fatalf("%s: decrypt: %v", name, err)
		}
		if len(ranked) < len(want) {
			t.Fatalf("%s: %d candidates for %d plaintext hits", name, len(ranked), len(want))
		}
		for i, exp := range want {
			if ranked[i].Doc != exp.Doc || ranked[i].Score != int64(exp.Score) {
				t.Fatalf("%s: rank %d = doc %d score %d, want doc %d score %g",
					name, i, ranked[i].Doc, ranked[i].Score, exp.Doc, exp.Score)
			}
		}
		for _, rk := range ranked[len(want):] {
			if rk.Score != 0 {
				t.Fatalf("%s: unexpected non-zero extra candidate %+v", name, rk)
			}
		}
		for _, v := range victims {
			for _, rk := range ranked {
				if rk.Doc == v {
					t.Fatalf("%s: tombstoned doc %d is a candidate (score %d)", name, v, rk.Score)
				}
			}
		}
	}

	resp, st, err := srv.Process(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tombstoned == 0 {
		t.Fatal("sequential plan skipped no tombstones")
	}
	check("sequential", resp, st)

	resp, st, err = srv.ProcessParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	check("term-striped", resp, st)

	srv.SetSharding(3)
	resp, st, err = srv.ProcessParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tombstoned == 0 {
		t.Fatal("sharded plan skipped no tombstones")
	}
	check("sharded", resp, st)

	// A merge rewrites tombstoned postings away; rankings are unchanged
	// and the skip counter drops to zero.
	live.Compact()
	resp, st, err = srv.ProcessParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tombstoned != 0 {
		t.Fatalf("post-compact plan still skipped %d tombstones", st.Tombstoned)
	}
	check("sharded post-compact", resp, st)
}

package wngen

import (
	"testing"

	"embellish/internal/wordnet"
)

func TestGenerateScale(t *testing.T) {
	db := Generate(ScaledConfig(3000, 1))
	if got := db.NumSynsets(); got < 2900 || got > 3100 {
		t.Fatalf("NumSynsets = %d, want ≈3000", got)
	}
	// Mean lemmas per synset ≈ 1.43 implies terms slightly above synsets
	// minus polysemy reuse.
	if db.NumTerms() < db.NumSynsets() {
		t.Fatalf("NumTerms %d < NumSynsets %d; generator is under-producing lemmas",
			db.NumTerms(), db.NumSynsets())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ScaledConfig(500, 42))
	b := Generate(ScaledConfig(500, 42))
	if a.NumTerms() != b.NumTerms() || a.NumSynsets() != b.NumSynsets() {
		t.Fatal("same seed produced different scales")
	}
	for i := 0; i < a.NumTerms(); i++ {
		if a.Lemma(wordnet.TermID(i)) != b.Lemma(wordnet.TermID(i)) {
			t.Fatalf("lemma %d differs: %q vs %q", i,
				a.Lemma(wordnet.TermID(i)), b.Lemma(wordnet.TermID(i)))
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a := Generate(ScaledConfig(500, 1))
	b := Generate(ScaledConfig(500, 2))
	same := true
	for i := 0; i < 50 && i < a.NumTerms() && i < b.NumTerms(); i++ {
		if a.Lemma(wordnet.TermID(i)) != b.Lemma(wordnet.TermID(i)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical lexicons")
	}
}

func TestSpecificityShapeMatchesFigure2(t *testing.T) {
	db := Generate(ScaledConfig(20000, 3))
	h := db.SpecificityHistogram()
	if len(h) < 19 {
		t.Fatalf("specificity range %d, want 0..18 populated", len(h)-1)
	}
	if h[0] < 1 {
		t.Fatal("no specificity-0 term ('entity' root)")
	}
	// The mode must be at 7 (Figure 2: about one-third of terms at 7).
	mode, best := 0, 0
	total := 0
	for s, c := range h {
		total += c
		if c > best {
			best, mode = c, s
		}
	}
	if mode != 7 {
		t.Fatalf("specificity mode at %d, want 7 (histogram %v)", mode, h)
	}
	frac := float64(h[7]) / float64(total)
	if frac < 0.2 || frac > 0.45 {
		t.Fatalf("fraction at specificity 7 = %.2f, want ≈1/3", frac)
	}
}

func TestExactLowLevelCounts(t *testing.T) {
	// Section 3.2: exactly one synset has specificity 0 and four have
	// specificity 1.
	db := Generate(ScaledConfig(10000, 5))
	c0, c1 := 0, 0
	for i := 0; i < db.NumSynsets(); i++ {
		switch db.SynsetSpecificity(wordnet.SynsetID(i)) {
		case 0:
			c0++
		case 1:
			c1++
		}
	}
	if c0 != 1 || c1 != 4 {
		t.Fatalf("level counts (0: %d, 1: %d), want (1, 4)", c0, c1)
	}
}

func TestRelationsPresent(t *testing.T) {
	db := Generate(ScaledConfig(5000, 9))
	counts := make(map[wordnet.RelationType]int)
	for i := 0; i < db.NumSynsets(); i++ {
		for _, r := range db.Synset(wordnet.SynsetID(i)).Relations {
			counts[r.Type]++
		}
	}
	for _, typ := range []wordnet.RelationType{
		wordnet.RelHypernym, wordnet.RelHyponym, wordnet.RelAntonym,
		wordnet.RelDerivation, wordnet.RelMeronym, wordnet.RelHolonym,
		wordnet.RelDomainTopic,
	} {
		if counts[typ] == 0 {
			t.Errorf("generator produced no %v relations", typ)
		}
	}
}

func TestEveryTermHasSynset(t *testing.T) {
	db := Generate(ScaledConfig(2000, 11))
	for i := 0; i < db.NumTerms(); i++ {
		if len(db.SynsetsOf(wordnet.TermID(i))) == 0 {
			t.Fatalf("term %d (%q) belongs to no synset", i, db.Lemma(wordnet.TermID(i)))
		}
	}
}

func TestPolysemyOccurs(t *testing.T) {
	db := Generate(ScaledConfig(5000, 13))
	poly := 0
	for i := 0; i < db.NumTerms(); i++ {
		if len(db.SynsetsOf(wordnet.TermID(i))) > 1 {
			poly++
		}
	}
	if poly == 0 {
		t.Fatal("no polysemous terms generated")
	}
}

func TestCompoundLemmas(t *testing.T) {
	db := Generate(ScaledConfig(2000, 17))
	compounds := 0
	for i := 0; i < db.NumTerms(); i++ {
		for _, r := range db.Lemma(wordnet.TermID(i)) {
			if r == ' ' {
				compounds++
				break
			}
		}
	}
	if compounds == 0 {
		t.Fatal("no multi-word lemmas generated")
	}
}

func TestDefaultConfigFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	db := Generate(DefaultConfig())
	if got := db.NumSynsets(); got < 80000 || got > 84000 {
		t.Fatalf("NumSynsets = %d, want ≈82115", got)
	}
	if got := db.NumTerms(); got < 100000 {
		t.Fatalf("NumTerms = %d, want ≈117798", got)
	}
}

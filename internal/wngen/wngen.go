// Package wngen synthesizes a WordNet-scale lexical database.
//
// The paper's bucket-formation pipeline (Sections 3.2-3.4) consumes the
// WordNet noun database: 117,798 nouns mapping to 82,115 synsets, arranged
// in a hypernym hierarchy rooted at 'entity' whose depth distribution is
// shown in Figure 2 (specificity 0-18, with roughly one third of the terms
// at specificity 7). The real database cannot ship with this repository,
// so this package generates a synthetic lexicon with the same structural
// properties:
//
//   - a single hypernym DAG rooted at a synset named 'entity';
//   - per-level synset counts shaped so the resulting term-specificity
//     histogram matches Figure 2;
//   - an average of ~1.43 lemmas per synset, with polysemous lemmas and
//     multi-word compound lemmas in WordNet-like proportions;
//   - antonym, derivational, meronym/holonym and domain relations at
//     plausible densities (the sequencing algorithm consumes these).
//
// Every metric in the paper's evaluation depends only on this graph
// structure plus the specificity values, never on the actual word strings,
// so the substitution preserves the experiments' behaviour. Generation is
// deterministic given the seed.
package wngen

import (
	"fmt"
	"math/rand"

	"embellish/internal/wordnet"
)

// Config controls the shape and scale of the generated lexicon.
type Config struct {
	// Synsets is the target number of synsets. Defaults to 82115, the
	// WordNet 2.1 noun synset count cited in Section 3.2.
	Synsets int
	// TermsPerSynset is the mean number of lemmas per synset. Defaults to
	// 1.4346 (117798 nouns / 82115 synsets).
	TermsPerSynset float64
	// PolysemyRate is the probability that a synset reuses an existing
	// lemma (giving that lemma a second sense). Defaults to 0.04.
	PolysemyRate float64
	// CompoundRate is the probability that a generated lemma is a
	// multi-word compound. Defaults to 0.25.
	CompoundRate float64
	// AntonymRate, DerivationRate, MeronymRate and DomainRate are the
	// expected number of edges of each type per synset.
	AntonymRate    float64
	DerivationRate float64
	MeronymRate    float64
	DomainRate     float64
	// Seed seeds the deterministic generator.
	Seed int64
}

// DefaultConfig returns the configuration that reproduces the WordNet noun
// database scale used throughout the paper.
func DefaultConfig() Config {
	return Config{
		Synsets:        82115,
		TermsPerSynset: 117798.0 / 82115.0,
		PolysemyRate:   0.04,
		CompoundRate:   0.25,
		AntonymRate:    0.02,
		DerivationRate: 0.35,
		MeronymRate:    0.15,
		DomainRate:     0.06,
		Seed:           1,
	}
}

// ScaledConfig returns DefaultConfig scaled to approximately n synsets,
// for fast tests and examples.
func ScaledConfig(n int, seed int64) Config {
	c := DefaultConfig()
	c.Synsets = n
	c.Seed = seed
	return c
}

// levelShape is the fraction of synsets at each hypernym depth 0..18. It
// is shaped to reproduce Figure 2: specificity ranges 0-18; exactly one
// synset has specificity 0 and four have specificity 1 (both called out in
// the paper's text); the mode is at 7 with roughly a third of all terms.
var levelShape = [19]float64{
	0, 0, // levels 0 and 1 are pinned to 1 and 4 synsets exactly
	0.004, 0.014, 0.042, 0.090, 0.152, 0.300, 0.152, 0.092,
	0.060, 0.036, 0.023, 0.014, 0.009, 0.0055, 0.0033, 0.0018, 0.0009,
}

// Generate builds a synthetic lexical database. The returned database is
// frozen (specificity computed) and ready for sequencing.
func Generate(cfg Config) *wordnet.Database {
	if cfg.Synsets <= 0 {
		cfg.Synsets = DefaultConfig().Synsets
	}
	if cfg.TermsPerSynset < 1 {
		cfg.TermsPerSynset = DefaultConfig().TermsPerSynset
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := wordnet.NewDatabase()
	nm := newNamer(rng, cfg.CompoundRate)

	// Determine the per-level synset counts.
	counts := levelCounts(cfg.Synsets)

	// Build the hypernym hierarchy level by level. Each synset at level L
	// picks a parent from level L-1 by preferential attachment, so the
	// per-synset fan-out is heavy-tailed at every depth — as in the real
	// WordNet noun hierarchy, where a handful of synsets at each level
	// (taxonomic genera, body parts, chemical families, ...) anchor large
	// hyponym fans while most have one or two. Heavy-tailed fan-out at all
	// depths keeps synset connectivity from degenerating into a function
	// of depth, which matters downstream: Algorithm 1 seeds its sequences
	// in decreasing-connectivity order, and the stationarity of term
	// specificity along the resulting sequence (which the paper's Figure
	// 5(a) result relies on) holds only when high-connectivity seeds occur
	// at every depth. A small fraction of synsets picks a second parent
	// (WordNet's noun hierarchy is a DAG, not a tree).
	levels := make([][]wordnet.SynsetID, len(counts))
	var allTerms []wordnet.TermID
	addSynset := func(level int) wordnet.SynsetID {
		if level == 0 && db.NumSynsets() == 0 {
			// The hierarchy root is literally 'entity', as in WordNet.
			return db.AddSynset([]wordnet.TermID{db.AddTerm("entity")}, "that which is perceived to have its own distinct existence")
		}
		nTerms := 1
		// Geometric-ish extra lemmas so the mean matches TermsPerSynset.
		for rng.Float64() < cfg.TermsPerSynset-1 && nTerms < 5 {
			nTerms++
		}
		terms := make([]wordnet.TermID, 0, nTerms)
		for i := 0; i < nTerms; i++ {
			if len(allTerms) > 64 && rng.Float64() < cfg.PolysemyRate {
				// Reuse an existing lemma: polysemy.
				t := allTerms[rng.Intn(len(allTerms))]
				terms = append(terms, t)
				continue
			}
			t := db.AddTerm(nm.fresh(db))
			allTerms = append(allTerms, t)
			terms = append(terms, t)
		}
		return db.AddSynset(terms, fmt.Sprintf("synthetic sense (level %d)", level))
	}
	for level, n := range counts {
		levels[level] = make([]wordnet.SynsetID, 0, n)
		// attach lists every parent once per child it already has (plus
		// once unconditionally), so sampling from it is preferential
		// attachment: P(parent) ∝ 1 + #children. This yields the
		// power-law fan-out observed in WordNet.
		var attach []wordnet.SynsetID
		if level > 0 {
			attach = append(attach, levels[level-1]...)
		}
		for i := 0; i < n; i++ {
			id := addSynset(level)
			levels[level] = append(levels[level], id)
			if level > 0 {
				parent := attach[rng.Intn(len(attach))]
				db.AddRelation(parent, id, wordnet.RelHyponym)
				attach = append(attach, parent)
				if rng.Float64() < 0.03 && len(levels[level-1]) > 1 {
					second := levels[level-1][rng.Intn(len(levels[level-1]))]
					db.AddRelation(second, id, wordnet.RelHyponym)
				}
			}
		}
	}

	// Non-hierarchy relations. In WordNet these link synsets that are
	// already semantically close — an antonym or derivational relative of
	// a concept sits in the same corner of the hierarchy, and a part
	// (meronym) sits near its whole. Wiring them to RANDOM targets would
	// turn the graph into a small world whose pairwise distances all
	// collapse to a few hops, destroying the distance variance the
	// Figure 5(b)/6(b) metrics depend on; so targets are drawn from the
	// local neighborhood (siblings and cousins). Domain edges are the
	// one genuinely non-local type: they link specific synsets to
	// shallow topic synsets, as in WordNet; the paper both skips them in
	// sequencing and penalizes them (weight 3) in the distance metric.
	parentOf := make([]wordnet.SynsetID, db.NumSynsets())
	for l := 1; l < len(levels); l++ {
		for _, s := range levels[l] {
			for _, r := range db.Synset(s).Relations {
				if r.Type == wordnet.RelHypernym {
					parentOf[s] = r.To
					break
				}
			}
		}
	}
	// pickNear returns a sibling (same parent) or, failing that, a
	// cousin (same grandparent) of s at the same level.
	pickNear := func(s wordnet.SynsetID, l int) (wordnet.SynsetID, bool) {
		p := parentOf[s]
		var cands []wordnet.SynsetID
		for _, r := range db.Synset(p).Relations {
			if r.Type == wordnet.RelHyponym && r.To != s {
				cands = append(cands, r.To)
			}
		}
		if len(cands) == 0 && l >= 2 {
			gp := parentOf[p]
			for _, r := range db.Synset(gp).Relations {
				if r.Type != wordnet.RelHyponym || r.To == p {
					continue
				}
				for _, rr := range db.Synset(r.To).Relations {
					if rr.Type == wordnet.RelHyponym {
						cands = append(cands, rr.To)
					}
				}
			}
		}
		if len(cands) == 0 {
			return 0, false
		}
		return cands[rng.Intn(len(cands))], true
	}
	pickAtLevel := func(l int) wordnet.SynsetID {
		return levels[l][rng.Intn(len(levels[l]))]
	}
	for l := 2; l < len(levels); l++ {
		for _, s := range levels[l] {
			if rng.Float64() < cfg.AntonymRate {
				if t, ok := pickNear(s, l); ok {
					db.AddRelation(s, t, wordnet.RelAntonym)
				}
			}
			if rng.Float64() < cfg.DerivationRate {
				if t, ok := pickNear(s, l); ok {
					db.AddRelation(s, t, wordnet.RelDerivation)
				}
			}
			if rng.Float64() < cfg.MeronymRate {
				// A whole is a near relative one level up: the parent's
				// sibling or the parent itself.
				w := parentOf[s]
				if t, ok := pickNear(w, l-1); ok && rng.Float64() < 0.5 {
					w = t
				}
				db.AddRelation(w, s, wordnet.RelMeronym)
			}
			if rng.Float64() < cfg.DomainRate {
				lt := 3 + rng.Intn(3)
				if lt < len(levels) {
					db.AddRelation(s, pickAtLevel(lt), wordnet.RelDomainTopic)
				}
			}
		}
	}

	db.Freeze()
	return db
}

// levelCounts apportions n synsets across hypernym depths according to
// levelShape, pinning level 0 to exactly 1 synset and level 1 to exactly
// min(4, ...) synsets as reported in Section 3.2.
func levelCounts(n int) []int {
	counts := make([]int, len(levelShape))
	counts[0] = 1
	counts[1] = 4
	if n < 6 {
		// Degenerate scale: a root plus a short chain.
		counts = counts[:2]
		counts[1] = n - 1
		if counts[1] < 0 {
			counts[1] = 0
		}
		return counts
	}
	remaining := n - 5
	var shapeSum float64
	for _, f := range levelShape[2:] {
		shapeSum += f
	}
	assigned := 0
	for l := 2; l < len(levelShape); l++ {
		c := int(float64(remaining) * levelShape[l] / shapeSum)
		if c == 0 {
			c = 1 // keep the full 0..18 depth range populated
		}
		counts[l] = c
		assigned += c
	}
	// Put any rounding remainder at the mode (level 7).
	counts[7] += remaining - assigned
	if counts[7] < 1 {
		counts[7] = 1
	}
	return counts
}

// namer produces fresh pseudo-English lemmas from syllables. Names are
// only labels; no experiment depends on them, but they must be unique and
// look plausible in examples.
type namer struct {
	rng          *rand.Rand
	compoundRate float64
	used         map[string]bool
}

var onsets = []string{"", "b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
	"n", "p", "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "cr", "dr",
	"fl", "gr", "ph", "pl", "pr", "sc", "sh", "sp", "st", "th", "tr"}
var nuclei = []string{"a", "e", "i", "o", "u", "ae", "ea", "ia", "io", "ou", "y"}
var codas = []string{"", "", "l", "m", "n", "r", "s", "t", "x", "st", "nd", "ph", "rm", "ss"}

func newNamer(rng *rand.Rand, compoundRate float64) *namer {
	return &namer{rng: rng, compoundRate: compoundRate, used: make(map[string]bool)}
}

func (nm *namer) syllable() string {
	return onsets[nm.rng.Intn(len(onsets))] +
		nuclei[nm.rng.Intn(len(nuclei))] +
		codas[nm.rng.Intn(len(codas))]
}

func (nm *namer) word(minSyl, maxSyl int) string {
	n := minSyl + nm.rng.Intn(maxSyl-minSyl+1)
	s := ""
	for i := 0; i < n; i++ {
		s += nm.syllable()
	}
	return s
}

// fresh returns a lemma not yet present in db and not previously issued.
func (nm *namer) fresh(db *wordnet.Database) string {
	for {
		var s string
		if nm.rng.Float64() < nm.compoundRate {
			s = nm.word(1, 3) + " " + nm.word(1, 3)
		} else {
			s = nm.word(2, 4)
		}
		if nm.used[s] {
			continue
		}
		if _, exists := db.Lookup(s); exists {
			continue
		}
		nm.used[s] = true
		return s
	}
}

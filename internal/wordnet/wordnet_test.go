package wordnet

import (
	"testing"
	"testing/quick"
)

func buildTiny() *Database {
	db := NewDatabase()
	entity := db.AddSynset([]TermID{db.AddTerm("entity")}, "root")
	obj := db.AddSynset([]TermID{db.AddTerm("object")}, "")
	animal := db.AddSynset([]TermID{db.AddTerm("animal"), db.AddTerm("beast")}, "")
	db.AddRelation(entity, obj, RelHyponym)
	db.AddRelation(obj, animal, RelHyponym)
	return db
}

func TestAddTermInterns(t *testing.T) {
	db := NewDatabase()
	a := db.AddTerm("water")
	b := db.AddTerm("water")
	if a != b {
		t.Fatalf("AddTerm returned distinct ids %d, %d for same lemma", a, b)
	}
	if db.NumTerms() != 1 {
		t.Fatalf("NumTerms = %d, want 1", db.NumTerms())
	}
	if got, _ := db.Lookup("water"); got != a {
		t.Fatalf("Lookup = %d, want %d", got, a)
	}
	if _, ok := db.Lookup("fire"); ok {
		t.Fatal("Lookup of absent lemma reported ok")
	}
}

func TestRelationSymmetry(t *testing.T) {
	db := buildTiny()
	entity := SynsetID(0)
	obj := SynsetID(1)
	// entity --hyponym--> object implies object --hypernym--> entity.
	found := false
	for _, r := range db.Synset(obj).Relations {
		if r.Type == RelHypernym && r.To == entity {
			found = true
		}
	}
	if !found {
		t.Fatal("inverse hypernym edge missing")
	}
}

func TestRelationDeduplication(t *testing.T) {
	db := buildTiny()
	before := db.RelationCount(0)
	db.AddRelation(SynsetID(0), SynsetID(1), RelHyponym) // duplicate
	if db.RelationCount(0) != before {
		t.Fatal("duplicate relation was added")
	}
	db.AddRelation(SynsetID(0), SynsetID(0), RelAntonym) // self-loop
	if db.RelationCount(0) != before {
		t.Fatal("self-loop relation was added")
	}
}

func TestInverseTypes(t *testing.T) {
	pairs := map[RelationType]RelationType{
		RelHypernym:     RelHyponym,
		RelHyponym:      RelHypernym,
		RelMeronym:      RelHolonym,
		RelHolonym:      RelMeronym,
		RelAntonym:      RelAntonym,
		RelDerivation:   RelDerivation,
		RelDomainTopic:  RelDomainMember,
		RelDomainMember: RelDomainTopic,
	}
	for r, want := range pairs {
		if r.Inverse() != want {
			t.Errorf("%v.Inverse() = %v, want %v", r, r.Inverse(), want)
		}
		if r.Inverse().Inverse() != r {
			t.Errorf("%v: Inverse is not an involution", r)
		}
	}
}

func TestSpecificityChain(t *testing.T) {
	db := buildTiny()
	db.Freeze()
	want := map[string]int{"entity": 0, "object": 1, "animal": 2, "beast": 2}
	for lemma, spec := range want {
		id, ok := db.Lookup(lemma)
		if !ok {
			t.Fatalf("missing %q", lemma)
		}
		if got := db.Specificity(id); got != spec {
			t.Errorf("Specificity(%q) = %d, want %d", lemma, got, spec)
		}
	}
}

func TestPolysemousTermUsesMinSpecificity(t *testing.T) {
	db := NewDatabase()
	root := db.AddSynset([]TermID{db.AddTerm("entity")}, "")
	mid := db.AddSynset([]TermID{db.AddTerm("state")}, "")
	deep := db.AddSynset([]TermID{db.AddTerm("deepthing")}, "")
	db.AddRelation(root, mid, RelHyponym)
	db.AddRelation(mid, deep, RelHyponym)
	// 'dual' appears at depth 1 and depth 3.
	dual := db.AddTerm("dual")
	s1 := db.AddSynset([]TermID{dual}, "")
	db.AddRelation(root, s1, RelHyponym)
	s3 := db.AddSynset([]TermID{dual}, "")
	db.AddRelation(deep, s3, RelHyponym)
	db.Freeze()
	if got := db.Specificity(dual); got != 1 {
		t.Fatalf("polysemous specificity = %d, want 1 (the minimum)", got)
	}
}

func TestSpecificityHistogramSums(t *testing.T) {
	db := MiniLexicon()
	h := db.SpecificityHistogram()
	sum := 0
	for _, c := range h {
		sum += c
	}
	if sum != db.NumTerms() {
		t.Fatalf("histogram sums to %d, want %d", sum, db.NumTerms())
	}
}

func TestMiniLexiconPaperSpecificities(t *testing.T) {
	// Section 3.4 quotes these exact specificity values.
	want := map[string]int{
		"sir thomas wyatt":        7,
		"hypocapnia":              6,
		"ectozoon":                7,
		"fool's gold":             6,
		"love knot":               10,
		"mainspring":              9,
		"osteosarcoma":            14,
		"yellow-breasted bunting": 14,
		"huntsville":              9,
		"pigeon loft":             7,
		"brama":                   7,
		"terrorism":               9,
		"smyrna":                  7,
		"lut desert":              6,
		"acipenser":               7,
		"abu sayyaf":              7,
		"sign of the zodiac":      5,
		"amaranthaceae":           8,
		"american chestnut":       11,
		"family eschrichtiidae":   7,
	}
	db := MiniLexicon()
	for lemma, spec := range want {
		id, ok := db.Lookup(lemma)
		if !ok {
			t.Errorf("mini lexicon missing %q", lemma)
			continue
		}
		if got := db.Specificity(id); got != spec {
			t.Errorf("Specificity(%q) = %d, want %d", lemma, got, spec)
		}
	}
}

func TestMiniLexiconPolysemousPrivacy(t *testing.T) {
	// Section 3.2's example: 'privacy' has two senses, one synonymous with
	// 'seclusion', the other with 'secrecy' and 'concealment'.
	db := MiniLexicon()
	id, ok := db.Lookup("privacy")
	if !ok {
		t.Fatal("mini lexicon missing 'privacy'")
	}
	if n := len(db.SynsetsOf(id)); n != 2 {
		t.Fatalf("'privacy' has %d senses, want 2", n)
	}
}

func TestMiniLexiconSingleRoot(t *testing.T) {
	db := MiniLexicon()
	roots := 0
	for i := 0; i < db.NumSynsets(); i++ {
		if db.SynsetSpecificity(SynsetID(i)) == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("mini lexicon has %d roots, want 1 ('entity')", roots)
	}
}

func TestSynsetsByConnectivityOrdered(t *testing.T) {
	db := MiniLexicon()
	ids := db.SynsetsByConnectivity()
	if len(ids) != db.NumSynsets() {
		t.Fatalf("got %d ids, want %d", len(ids), db.NumSynsets())
	}
	for i := 1; i < len(ids); i++ {
		if db.RelationCount(ids[i]) > db.RelationCount(ids[i-1]) {
			t.Fatalf("order violated at %d: %d > %d", i,
				db.RelationCount(ids[i]), db.RelationCount(ids[i-1]))
		}
	}
}

func TestRelatedInOrderGroupsTypes(t *testing.T) {
	db := MiniLexicon()
	terror, _ := db.Lookup("terrorism")
	ss := db.SynsetsOf(terror)[0]
	rel := db.RelatedInOrder(ss)
	// terrorism has a hypernym (war crime), a derivational link
	// (terrorist organization) and domain members (excluded).
	for _, r := range rel {
		for _, e := range db.Synset(ss).Relations {
			if e.To == r && (e.Type == RelDomainMember || e.Type == RelDomainTopic) {
				t.Fatalf("RelatedInOrder included a domain relation to synset %d", r)
			}
		}
	}
	if len(rel) == 0 {
		t.Fatal("RelatedInOrder returned nothing for a connected synset")
	}
}

func TestFreezeIdempotent(t *testing.T) {
	db := buildTiny()
	db.Freeze()
	db.Freeze() // must not panic or recompute incorrectly
	if db.Specificity(0) != 0 {
		t.Fatal("specificity changed after second Freeze")
	}
}

func TestFrozenMutationPanics(t *testing.T) {
	db := buildTiny()
	db.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("AddTerm on frozen database did not panic")
		}
	}()
	db.AddTerm("new")
}

func TestRelationTypeStringTotal(t *testing.T) {
	for r := RelationType(0); r < RelationType(NumRelationTypes); r++ {
		if s := r.String(); s == "" {
			t.Errorf("empty String for relation %d", r)
		}
	}
}

// Property: in any random hypernym forest, a child's specificity is
// exactly one more than the minimum parent specificity (when reachable).
func TestSpecificityParentChildProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		db := NewDatabase()
		root := db.AddSynset([]TermID{db.AddTerm("entity")}, "")
		ids := []SynsetID{root}
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int(rng % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		for i := 0; i < 60; i++ {
			id := db.AddSynset([]TermID{db.AddTerm(lemmaName(i))}, "")
			parent := ids[next(len(ids))]
			db.AddRelation(parent, id, RelHyponym)
			// Occasionally a second parent (DAG).
			if next(10) == 0 {
				db.AddRelation(ids[next(len(ids))], id, RelHyponym)
			}
			ids = append(ids, id)
		}
		db.Freeze()
		for _, id := range ids[1:] {
			minParent := -1
			for _, r := range db.Synset(id).Relations {
				if r.Type == RelHypernym {
					p := db.SynsetSpecificity(r.To)
					if minParent == -1 || p < minParent {
						minParent = p
					}
				}
			}
			if db.SynsetSpecificity(id) != minParent+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func lemmaName(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10))
}

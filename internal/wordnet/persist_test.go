package wordnet

import (
	"bytes"
	"testing"
)

func TestPersistRoundTripMini(t *testing.T) {
	db := MiniLexicon()
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTerms() != db.NumTerms() || got.NumSynsets() != db.NumSynsets() {
		t.Fatalf("size mismatch: %d/%d terms, %d/%d synsets",
			got.NumTerms(), db.NumTerms(), got.NumSynsets(), db.NumSynsets())
	}
	for i := 0; i < db.NumTerms(); i++ {
		tm := TermID(i)
		if got.Lemma(tm) != db.Lemma(tm) {
			t.Fatalf("lemma %d: %q vs %q", i, got.Lemma(tm), db.Lemma(tm))
		}
		if got.Specificity(tm) != db.Specificity(tm) {
			t.Fatalf("specificity of %q: %d vs %d", db.Lemma(tm), got.Specificity(tm), db.Specificity(tm))
		}
	}
	for i := 0; i < db.NumSynsets(); i++ {
		a, b := got.Synset(SynsetID(i)), db.Synset(SynsetID(i))
		if len(a.Terms) != len(b.Terms) || len(a.Relations) != len(b.Relations) || a.Gloss != b.Gloss {
			t.Fatalf("synset %d shape mismatch", i)
		}
		for j := range a.Relations {
			if a.Relations[j] != b.Relations[j] {
				t.Fatalf("synset %d relation %d: %+v vs %+v", i, j, a.Relations[j], b.Relations[j])
			}
		}
	}
	// Behavioural check: connectivity ordering (drives Algorithm 1) is
	// preserved.
	ao, bo := got.SynsetsByConnectivity(), db.SynsetsByConnectivity()
	for i := range bo {
		if ao[i] != bo[i] {
			t.Fatalf("connectivity order diverges at %d", i)
		}
	}
}

func TestPersistRequiresFrozen(t *testing.T) {
	db := NewDatabase()
	db.AddSynset([]TermID{db.AddTerm("x")}, "")
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err == nil {
		t.Fatal("unfrozen database serialized")
	}
}

func TestPersistDetectsCorruption(t *testing.T) {
	db := MiniLexicon()
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/3] ^= 0x55
	if _, err := ReadDatabase(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt lexicon accepted")
	}
}

func TestPersistRejectsTruncation(t *testing.T) {
	db := MiniLexicon()
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 9, buf.Len() / 2} {
		if _, err := ReadDatabase(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

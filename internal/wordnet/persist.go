package wordnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"embellish/internal/vbyte"
)

// On-disk format: magic "ELEX" | version u8 | lemma count + (len,bytes)*
// | synset count + per synset (term ids, relations as (type,to) pairs,
// gloss) | crc32(payload). Inverse relations are stored explicitly (they
// are cheap and keep the loader trivial); the loader re-freezes, so
// specificity caches are rebuilt rather than persisted.

const (
	lexMagic      = "ELEX"
	lexVersion    = 1
	maxReasonable = 1 << 31
)

// WriteTo serializes a frozen database. It implements io.WriterTo.
func (db *Database) WriteTo(w io.Writer) (int64, error) {
	if !db.frozen {
		return 0, errors.New("wordnet: serialize requires a frozen database")
	}
	var payload []byte
	payload = append(payload, lexMagic...)
	payload = append(payload, lexVersion)
	payload = vbyte.Append(payload, uint64(len(db.lemmas)))
	for _, l := range db.lemmas {
		payload = vbyte.Append(payload, uint64(len(l)))
		payload = append(payload, l...)
	}
	payload = vbyte.Append(payload, uint64(len(db.synsets)))
	for _, ss := range db.synsets {
		payload = vbyte.Append(payload, uint64(len(ss.Terms)))
		for _, t := range ss.Terms {
			payload = vbyte.Append(payload, uint64(t))
		}
		payload = vbyte.Append(payload, uint64(len(ss.Relations)))
		for _, r := range ss.Relations {
			payload = append(payload, byte(r.Type))
			payload = vbyte.Append(payload, uint64(r.To))
		}
		payload = vbyte.Append(payload, uint64(len(ss.Gloss)))
		payload = append(payload, ss.Gloss...)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	n, err := w.Write(payload)
	total := int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(tail[:])
	return total + int64(n), err
}

// ReadDatabase deserializes a database written by WriteTo. The result is
// frozen (specificity recomputed) and ready for use.
func ReadDatabase(r io.Reader) (*Database, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wordnet: reading file: %w", err)
	}
	if len(data) < len(lexMagic)+1+4 {
		return nil, errors.New("wordnet: file too short")
	}
	payload, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("wordnet: checksum mismatch; file corrupt")
	}
	br := bufio.NewReader(bytes.NewReader(payload))

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if string(magic[:]) != lexMagic {
		return nil, errors.New("wordnet: bad magic; not a lexicon file")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != lexVersion {
		return nil, fmt.Errorf("wordnet: unsupported version %d", ver)
	}

	db := NewDatabase()
	nLemmas, err := readUvarint(br)
	if err != nil || nLemmas > maxReasonable {
		return nil, fmt.Errorf("wordnet: lemma count: %w", orImplausible(err))
	}
	for i := uint64(0); i < nLemmas; i++ {
		slen, err := readUvarint(br)
		if err != nil || slen > 1<<20 {
			return nil, fmt.Errorf("wordnet: lemma %d length: %w", i, orImplausible(err))
		}
		b := make([]byte, slen)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		lemma := string(b)
		if _, dup := db.termIdx[lemma]; dup {
			return nil, fmt.Errorf("wordnet: duplicate lemma %q", lemma)
		}
		db.AddTerm(lemma)
	}

	nSynsets, err := readUvarint(br)
	if err != nil || nSynsets > maxReasonable {
		return nil, fmt.Errorf("wordnet: synset count: %w", orImplausible(err))
	}
	type pendingRel struct {
		from SynsetID
		rel  Relation
	}
	var rels []pendingRel
	for i := uint64(0); i < nSynsets; i++ {
		nTerms, err := readUvarint(br)
		if err != nil || nTerms > nLemmas {
			return nil, fmt.Errorf("wordnet: synset %d term count: %w", i, orImplausible(err))
		}
		terms := make([]TermID, nTerms)
		for j := range terms {
			t, err := readUvarint(br)
			if err != nil || t >= nLemmas {
				return nil, fmt.Errorf("wordnet: synset %d term %d: %w", i, j, orImplausible(err))
			}
			terms[j] = TermID(t)
		}
		nRels, err := readUvarint(br)
		if err != nil || nRels > maxReasonable {
			return nil, fmt.Errorf("wordnet: synset %d relation count: %w", i, orImplausible(err))
		}
		thisRels := make([]Relation, 0, nRels)
		for j := uint64(0); j < nRels; j++ {
			tb, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			if RelationType(tb) >= numRelationTypes {
				return nil, fmt.Errorf("wordnet: synset %d: unknown relation type %d", i, tb)
			}
			to, err := readUvarint(br)
			if err != nil || to >= nSynsets {
				return nil, fmt.Errorf("wordnet: synset %d relation %d target: %w", i, j, orImplausible(err))
			}
			thisRels = append(thisRels, Relation{Type: RelationType(tb), To: SynsetID(to)})
		}
		glen, err := readUvarint(br)
		if err != nil || glen > 1<<20 {
			return nil, fmt.Errorf("wordnet: synset %d gloss length: %w", i, orImplausible(err))
		}
		g := make([]byte, glen)
		if _, err := io.ReadFull(br, g); err != nil {
			return nil, err
		}
		id := db.AddSynset(terms, string(g))
		// Relations are restored verbatim below (AddRelation would
		// duplicate the stored inverses); record them for the second
		// pass once all synsets exist.
		for _, r := range thisRels {
			rels = append(rels, pendingRel{from: id, rel: r})
		}
	}
	for _, pr := range rels {
		db.synsets[pr.from].Relations = append(db.synsets[pr.from].Relations, pr.rel)
	}
	db.Freeze()
	return db, nil
}

func orImplausible(err error) error {
	if err != nil {
		return err
	}
	return errors.New("implausible count")
}

func readUvarint(br io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if i == vbyte.MaxLen {
			return 0, errors.New("overlong varint")
		}
		if b&0x80 != 0 {
			return v | uint64(b&0x7f)<<shift, nil
		}
		v |= uint64(b) << shift
		shift += 7
		if shift >= 64 {
			return 0, errors.New("varint overflow")
		}
	}
}

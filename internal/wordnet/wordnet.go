// Package wordnet implements a WordNet-style lexical database: terms
// (lemmas) grouped into synsets (senses), with typed semantic relations
// between synsets. It is the substrate for the decoy-selection mechanism of
// Pang, Ding and Xiao (VLDB 2010): dictionary sequencing (Algorithm 1) and
// bucket formation (Algorithm 2) both consume this structure, and term
// specificity (Section 3.2 of the paper) is derived from the hypernym
// hierarchy stored here.
//
// The real WordNet 2.x noun database is not redistributable inside this
// repository, so the package offers two sources of data with identical
// semantics: MiniLexicon, a hand-curated lexicon containing the paper's
// running-example vocabulary, and the synthetic generator in
// internal/wngen, which reproduces the scale and specificity distribution
// of the WordNet noun hierarchy (117,798 nouns, 82,115 synsets, Figure 2).
package wordnet

import (
	"fmt"
	"sort"
)

// TermID identifies a lemma in a Database. IDs are dense, starting at 0.
type TermID int32

// SynsetID identifies a synset in a Database. IDs are dense, starting at 0.
type SynsetID int32

// RelationType enumerates the synset relation types used by the paper.
type RelationType uint8

// Relation types, in the traversal order prescribed by Algorithm 1
// (line 18): derivational relations first, then antonyms, hyponyms,
// hypernyms, meronyms and holonyms. Domain membership is recorded but
// deliberately skipped by the sequencing algorithm, because such word
// associations "tend to be less direct" (Section 3.3).
const (
	RelDerivation RelationType = iota
	RelAntonym
	RelHyponym
	RelHypernym
	RelMeronym
	RelHolonym
	RelDomainTopic  // this synset belongs to the topic domain of the target
	RelDomainMember // the target belongs to the topic domain of this synset
	numRelationTypes
)

// NumRelationTypes is the number of distinct relation types.
const NumRelationTypes = int(numRelationTypes)

// String returns the conventional WordNet name of the relation type.
func (r RelationType) String() string {
	switch r {
	case RelDerivation:
		return "derivation"
	case RelAntonym:
		return "antonym"
	case RelHyponym:
		return "hyponym"
	case RelHypernym:
		return "hypernym"
	case RelMeronym:
		return "meronym"
	case RelHolonym:
		return "holonym"
	case RelDomainTopic:
		return "domain-topic"
	case RelDomainMember:
		return "domain-member"
	}
	return fmt.Sprintf("relation(%d)", uint8(r))
}

// Inverse returns the relation type of the reverse edge. Every relation in
// a Database is stored symmetrically: adding an edge of type t from a to b
// also adds an edge of type t.Inverse() from b to a.
func (r RelationType) Inverse() RelationType {
	switch r {
	case RelHyponym:
		return RelHypernym
	case RelHypernym:
		return RelHyponym
	case RelMeronym:
		return RelHolonym
	case RelHolonym:
		return RelMeronym
	case RelDomainTopic:
		return RelDomainMember
	case RelDomainMember:
		return RelDomainTopic
	}
	return r // derivation and antonym are their own inverses
}

// Relation is a typed, directed edge from one synset to another.
type Relation struct {
	Type RelationType
	To   SynsetID
}

// Synset is a set of terms sharing one sense, plus its outgoing relations.
type Synset struct {
	ID        SynsetID
	Terms     []TermID
	Relations []Relation
	Gloss     string
}

// Database is an in-memory lexical database. It is built once (via Add*
// methods or a generator) and then treated as read-only; concurrent reads
// are safe after Freeze.
type Database struct {
	lemmas  []string
	termIdx map[string]TermID
	synsets []Synset
	// termSynsets[t] lists the synsets whose Terms include t.
	termSynsets [][]SynsetID

	frozen bool
	// specificity caches; valid only after Freeze.
	synSpec  []int
	termSpec []int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{termIdx: make(map[string]TermID)}
}

// NumTerms reports the number of distinct lemmas.
func (db *Database) NumTerms() int { return len(db.lemmas) }

// NumSynsets reports the number of synsets.
func (db *Database) NumSynsets() int { return len(db.synsets) }

// Lemma returns the string form of a term.
func (db *Database) Lemma(t TermID) string { return db.lemmas[t] }

// Lookup resolves a lemma to its TermID. The second result reports whether
// the lemma exists.
func (db *Database) Lookup(lemma string) (TermID, bool) {
	t, ok := db.termIdx[lemma]
	return t, ok
}

// AddTerm interns a lemma and returns its TermID. Adding an existing lemma
// returns the existing ID.
func (db *Database) AddTerm(lemma string) TermID {
	if t, ok := db.termIdx[lemma]; ok {
		return t
	}
	if db.frozen {
		panic("wordnet: AddTerm on frozen database")
	}
	t := TermID(len(db.lemmas))
	db.lemmas = append(db.lemmas, lemma)
	db.termIdx[lemma] = t
	db.termSynsets = append(db.termSynsets, nil)
	return t
}

// AddSynset creates a new synset containing the given terms and returns its
// ID. Terms may appear in multiple synsets (polysemy).
func (db *Database) AddSynset(terms []TermID, gloss string) SynsetID {
	if db.frozen {
		panic("wordnet: AddSynset on frozen database")
	}
	id := SynsetID(len(db.synsets))
	ss := Synset{ID: id, Terms: append([]TermID(nil), terms...), Gloss: gloss}
	db.synsets = append(db.synsets, ss)
	for _, t := range terms {
		db.termSynsets[t] = append(db.termSynsets[t], id)
	}
	return id
}

// AddRelation records a typed edge from a to b and the inverse edge from b
// to a. Self-loops and duplicate edges are ignored.
func (db *Database) AddRelation(a, b SynsetID, typ RelationType) {
	if db.frozen {
		panic("wordnet: AddRelation on frozen database")
	}
	if a == b {
		return
	}
	if db.hasRelation(a, b, typ) {
		return
	}
	db.synsets[a].Relations = append(db.synsets[a].Relations, Relation{Type: typ, To: b})
	db.synsets[b].Relations = append(db.synsets[b].Relations, Relation{Type: typ.Inverse(), To: a})
}

func (db *Database) hasRelation(a, b SynsetID, typ RelationType) bool {
	for _, r := range db.synsets[a].Relations {
		if r.To == b && r.Type == typ {
			return true
		}
	}
	return false
}

// Synset returns the synset with the given ID. The returned pointer is
// owned by the database; callers must not mutate it.
func (db *Database) Synset(id SynsetID) *Synset { return &db.synsets[id] }

// SynsetsOf returns the synsets containing term t.
func (db *Database) SynsetsOf(t TermID) []SynsetID { return db.termSynsets[t] }

// RelationCount returns the number of outgoing relations of a synset,
// the connectivity measure used to order seeds in Algorithm 1.
func (db *Database) RelationCount(id SynsetID) int {
	return len(db.synsets[id].Relations)
}

// Freeze computes the specificity caches and marks the database read-only.
// It must be called before Specificity queries. Freeze is idempotent.
func (db *Database) Freeze() {
	if db.frozen {
		return
	}
	db.computeSpecificity()
	db.frozen = true
}

// computeSpecificity assigns every synset the length of the shortest
// hypernym path from it to a root (a synset with no hypernyms), per
// Section 3.2. The computation is a multi-source BFS from all roots,
// expanding along hyponym edges. Synsets unreachable from any root (which
// cannot occur in a well-formed hierarchy) receive the maximum observed
// depth plus one, so that they still sort as highly specific.
func (db *Database) computeSpecificity() {
	n := len(db.synsets)
	db.synSpec = make([]int, n)
	for i := range db.synSpec {
		db.synSpec[i] = -1
	}
	queue := make([]SynsetID, 0, n)
	for i := range db.synsets {
		if !db.hasHypernym(SynsetID(i)) {
			db.synSpec[i] = 0
			queue = append(queue, SynsetID(i))
		}
	}
	maxDepth := 0
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		d := db.synSpec[s]
		for _, r := range db.synsets[s].Relations {
			if r.Type != RelHyponym {
				continue
			}
			if db.synSpec[r.To] == -1 {
				db.synSpec[r.To] = d + 1
				if d+1 > maxDepth {
					maxDepth = d + 1
				}
				queue = append(queue, r.To)
			}
		}
	}
	for i := range db.synSpec {
		if db.synSpec[i] == -1 {
			db.synSpec[i] = maxDepth + 1
		}
	}
	// A term's specificity is the minimum over its synsets: the shortest
	// path from the term's synset to a root in its hypernym hierarchy.
	db.termSpec = make([]int, len(db.lemmas))
	for t := range db.termSpec {
		best := -1
		for _, s := range db.termSynsets[t] {
			if d := db.synSpec[s]; best == -1 || d < best {
				best = d
			}
		}
		if best == -1 {
			best = maxDepth + 1 // term in no synset; treat as maximally specific
		}
		db.termSpec[t] = best
	}
}

func (db *Database) hasHypernym(s SynsetID) bool {
	for _, r := range db.synsets[s].Relations {
		if r.Type == RelHypernym {
			return true
		}
	}
	return false
}

// SynsetSpecificity returns the specificity of a synset. Freeze must have
// been called.
func (db *Database) SynsetSpecificity(s SynsetID) int {
	db.mustBeFrozen()
	return db.synSpec[s]
}

// Specificity returns the specificity of a term: the length of the
// shortest hypernym path from any of its synsets to a root. Freeze must
// have been called.
func (db *Database) Specificity(t TermID) int {
	db.mustBeFrozen()
	return db.termSpec[t]
}

func (db *Database) mustBeFrozen() {
	if !db.frozen {
		panic("wordnet: database not frozen; call Freeze first")
	}
}

// SpecificityHistogram returns counts of terms per specificity value,
// indexed by specificity. This regenerates Figure 2 of the paper.
func (db *Database) SpecificityHistogram() []int {
	db.mustBeFrozen()
	maxSpec := 0
	for _, s := range db.termSpec {
		if s > maxSpec {
			maxSpec = s
		}
	}
	h := make([]int, maxSpec+1)
	for _, s := range db.termSpec {
		h[s]++
	}
	return h
}

// AllTerms returns all term IDs in increasing order.
func (db *Database) AllTerms() []TermID {
	out := make([]TermID, len(db.lemmas))
	for i := range out {
		out[i] = TermID(i)
	}
	return out
}

// SynsetsByConnectivity returns all synset IDs ordered by decreasing
// number of relations, the processing order of Algorithm 1 line 12. The
// paper does not specify how ties are broken; ties are broken by a
// deterministic hash of the ID rather than the ID itself, because IDs
// typically correlate with insertion order (and, for generated
// lexicons, with hierarchy depth) — an ascending-ID tie-break would
// smuggle that ordering into the sequence and reintroduce exactly the
// specificity trend the bucket construction needs to avoid.
func (db *Database) SynsetsByConnectivity() []SynsetID {
	ids := make([]SynsetID, len(db.synsets))
	for i := range ids {
		ids[i] = SynsetID(i)
	}
	sort.SliceStable(ids, func(i, j int) bool {
		ci, cj := len(db.synsets[ids[i]].Relations), len(db.synsets[ids[j]].Relations)
		if ci != cj {
			return ci > cj
		}
		hi, hj := mix32(uint32(ids[i])), mix32(uint32(ids[j]))
		if hi != hj {
			return hi < hj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// mix32 is a finalizing integer hash (Murmur3 avalanche), deterministic
// across runs and platforms.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// RelatedInOrder returns the synsets related to ss, grouped in the
// traversal order of Algorithm 1 line 18: derivational relations,
// antonyms, hyponyms, hypernyms, meronyms, holonyms. Domain relations are
// excluded. Within a type, targets appear in insertion order.
func (db *Database) RelatedInOrder(ss SynsetID) []SynsetID {
	var out []SynsetID
	rels := db.synsets[ss].Relations
	for _, want := range []RelationType{RelDerivation, RelAntonym, RelHyponym, RelHypernym, RelMeronym, RelHolonym} {
		for _, r := range rels {
			if r.Type == want {
				out = append(out, r.To)
			}
		}
	}
	return out
}

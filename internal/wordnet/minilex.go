package wordnet

import "strings"

// miniEntry declares one synset of the mini lexicon: a "|"-separated list
// of synonymous lemmas, and the first lemma of the parent (hypernym)
// synset. Parents must be declared before children. The depths are crafted
// so that the terms quoted in the paper receive the same specificity values
// reported in Section 3.4 (e.g. 'osteosarcoma' 14, 'amaranthaceae' 8,
// 'abu sayyaf' 7, 'terrorism' 9, 'hypocapnia' 6).
type miniEntry struct {
	terms  string
	parent string
}

var miniEntries = []miniEntry{
	// Spine.
	{"entity", ""},                                        // 0
	{"physical entity", "entity"},                         // 1
	{"abstraction|abstract entity", "entity"},             // 1
	{"object|physical object", "physical entity"},         // 2
	{"matter", "physical entity"},                         // 2
	{"process|physical process", "physical entity"},       // 2
	{"location", "physical entity"},                       // 2
	{"whole|unit", "object"},                              // 3
	{"living thing|animate thing", "whole"},               // 4
	{"organism|being", "living thing"},                    // 5
	// People.
	{"person|individual|soul", "organism"},                // 6
	{"sir thomas wyatt|wyatt", "person"},                  // 7
	{"man|adult male", "person"},                          // 7
	{"woman|adult female", "person"},                      // 7
	{"diver|frogman", "person"},                           // 7
	{"vintner|winemaker", "person"},                       // 7
	{"oncologist", "person"},                              // 7
	// Animals.
	{"animal|animate being|fauna", "organism"},            // 6
	{"ectozoon|ectoparasite", "animal"},                   // 7
	{"vertebrate|craniate", "animal"},                     // 7
	{"bird", "vertebrate"},                                // 8
	{"passerine|passeriform bird", "bird"},                // 9
	{"oscine|oscine bird", "passerine"},                   // 10
	{"finch", "oscine"},                                   // 11
	{"bunting", "finch"},                                  // 12
	{"old world bunting", "bunting"},                      // 13
	{"yellow-breasted bunting|emberiza aureola", "old world bunting"}, // 14
	{"pigeon", "bird"},                                    // 9
	{"fish", "vertebrate"},                                // 8
	{"whale", "vertebrate"},                               // 8
	{"gray whale|grey whale", "whale"},                    // 9
	// Plants.
	{"plant|flora|plant life", "organism"},                // 6
	{"woody plant|ligneous plant", "plant"},               // 7
	{"tree", "woody plant"},                               // 8
	{"nut tree", "tree"},                                  // 9
	{"chestnut|chestnut tree", "nut tree"},                // 10
	{"american chestnut|castanea dentata", "chestnut"},    // 11
	{"herb|herbaceous plant", "plant"},                    // 7
	{"amaranth", "herb"},                                  // 8
	{"grape|grapevine", "woody plant"},                    // 8
	// Body and tissue.
	{"body part", "living thing"},                         // 5
	{"tissue", "body part"},                               // 6
	{"bone|os", "body part"},                              // 6
	{"wing", "body part"},                                 // 6
	{"trunk|tree trunk|bole", "body part"},                // 6
	// Taxonomy.
	{"group|grouping", "abstraction"},                     // 2
	{"biological group", "group"},                         // 3
	{"taxonomic group|taxonomic category|taxon", "biological group"}, // 4
	{"genus", "taxonomic group"},                          // 5
	{"fish genus", "genus"},                               // 6
	{"acipenser|genus acipenser", "fish genus"},           // 7
	{"brama|genus brama", "fish genus"},                   // 7
	{"family", "taxonomic group"},                         // 5
	{"plant family", "family"},                            // 6
	{"caryophylloid dicot family", "plant family"},        // 7
	{"amaranthaceae|family amaranthaceae|amaranth family", "caryophylloid dicot family"}, // 8
	{"family tetragoniaceae|carpetweed family", "caryophylloid dicot family"},            // 8
	{"batidaceae|family batidaceae", "caryophylloid dicot family"},                       // 8
	{"mammal family", "family"},                           // 6
	{"family eschrichtiidae|eschrichtiidae", "mammal family"}, // 7
	// States and conditions.
	{"attribute", "abstraction"},                          // 2
	{"state", "attribute"},                                // 3
	{"condition|status", "state"},                         // 4
	{"physiological state|physiological condition", "condition"}, // 5
	{"hypocapnia|acapnia", "physiological state"},         // 6
	{"hypercapnia|hypercarbia", "physiological state"},    // 6
	{"asphyxia", "physiological state"},                   // 6
	{"oxygen debt", "physiological state"},                // 6
	{"hyperthermia|hyperthermy", "physiological state"},   // 6
	{"privacy|seclusion", "condition"},                    // 5 (first sense, Section 3.2)
	{"manhood", "state"},                                  // 4
	// Illness and cancers.
	{"illness|unwellness|sickness", "condition"},          // 5
	{"disease", "illness"},                                // 6
	{"growth", "disease"},                                 // 7
	{"tumor|tumour|neoplasm", "growth"},                   // 8
	{"malignant tumor|malignant neoplasm", "tumor"},       // 9
	{"cancer|malignancy", "malignant tumor"},              // 10
	{"sarcoma", "cancer"},                                 // 11
	{"bone sarcoma", "sarcoma"},                           // 12
	{"myosarcoma", "sarcoma"},                             // 12
	{"neurosarcoma|malignant neuroma", "sarcoma"},         // 12
	{"osteogenic tumor", "bone sarcoma"},                  // 13
	{"osteosarcoma|osteogenic sarcoma", "osteogenic tumor"}, // 14
	{"rhabdomyosarcoma|rhabdosarcoma", "myosarcoma"},      // 13
	// Substances.
	{"substance", "matter"},                               // 3
	{"material|stuff", "substance"},                       // 4
	{"mineral", "material"},                               // 5
	{"fool's gold|pyrite|iron pyrite", "mineral"},         // 6
	{"fluid", "substance"},                                // 4
	{"liquid", "fluid"},                                   // 5
	{"water|h2o", "liquid"},                               // 6
	{"gas", "fluid"},                                      // 5
	{"nitrogen|n", "gas"},                                 // 6
	{"food|nutrient", "substance"},                        // 4
	{"leaven|leavening", "food"},                          // 5
	{"yeast", "leaven"},                                   // 6
	{"dry yeast", "yeast"},                                // 7
	{"active dry yeast", "dry yeast"},                     // 8
	{"beverage|drink|potable", "food"},                    // 5
	{"alcohol|alcoholic drink", "beverage"},               // 6
	{"wine|vino", "alcohol"},                              // 7
	{"moustille", "wine"},                                 // 8
	// Processes.
	{"natural process|natural action", "process"},         // 3
	{"radiation", "natural process"},                      // 4
	{"soaking|soak", "natural process"},                   // 4
	{"flooding|inundation", "natural process"},            // 4
	{"fermentation|zymosis", "natural process"},           // 4
	{"acceleration", "natural process"},                   // 4
	// Acts.
	{"act|deed|human action", "abstraction"},              // 2
	{"activity", "act"},                                   // 3
	{"care|attention|aid", "activity"},                    // 4
	{"treatment|intervention", "care"},                    // 5
	{"therapy", "treatment"},                              // 6
	{"radiation therapy|radiotherapy|irradiation", "therapy"}, // 7
	{"accelerated radiation therapy", "radiation therapy"},    // 8
	{"chemotherapy", "therapy"},                           // 7
	{"wrongdoing|misconduct", "activity"},                 // 4
	{"transgression|evildoing", "wrongdoing"},             // 5
	{"crime|offense|offence", "transgression"},            // 6
	{"violent crime", "crime"},                            // 7
	{"war crime", "violent crime"},                        // 8
	{"terrorism|act of terrorism|terrorist act", "war crime"}, // 9
	{"diversion|recreation", "activity"},                  // 4
	{"sport|athletics", "diversion"},                      // 5
	{"diving|swimming event", "sport"},                    // 6
	{"scuba diving", "diving"},                            // 7
	{"concealment|concealing|hiding", "activity"},         // 4
	{"privacy|secrecy|secretiveness", "concealment"},      // 5 (second sense of 'privacy')
	{"winemaking|wine making", "activity"},                // 4
	// Organizations.
	{"social group", "group"},                             // 3
	{"organization|organisation", "social group"},         // 4
	{"force|personnel", "organization"},                   // 5
	{"terrorist organization|foreign terrorist organization", "force"}, // 6
	{"abu sayyaf|bearer of the sword", "terrorist organization"},       // 7
	{"abu hafs al-masri brigades", "terrorist organization"},           // 7
	{"aksa martyrs brigades|martyrs of al-aqsa", "terrorist organization"}, // 7
	// Measures and time.
	{"measure|quantity|amount", "abstraction"},            // 2
	{"fundamental quantity", "measure"},                   // 3
	{"time", "fundamental quantity"},                      // 4
	{"time interval|interval", "time"},                    // 5
	{"residual nitrogen time", "time interval"},           // 6
	{"decompression time", "time interval"},               // 6
	// Locations.
	{"region", "location"},                                // 3
	{"geographical area|geographic area", "region"},       // 4
	{"urban area|populated area", "geographical area"},    // 5
	{"municipality", "urban area"},                        // 6
	{"smyrna|izmir", "municipality"},                      // 7
	{"desert", "geographical area"},                       // 5
	{"lut desert|dasht-e-lut", "desert"},                  // 6
	{"district|territory", "region"},                      // 4
	{"administrative district", "district"},               // 5
	{"state capital", "administrative district"},          // 6
	{"city|metropolis", "state capital"},                  // 7
	{"town", "city"},                                      // 8
	{"huntsville", "town"},                                // 9
	{"part of sky", "region"},                             // 4
	{"sign of the zodiac|star sign|sign", "part of sky"},  // 5
	{"zodiac", "part of sky"},                             // 5
	// Artifacts.
	{"artifact|artefact", "object"},                       // 3
	{"instrumentality|instrumentation", "artifact"},       // 4
	{"device", "instrumentality"},                         // 5
	{"mechanism", "device"},                               // 6
	{"mechanical device", "mechanism"},                    // 7
	{"spring", "mechanical device"},                       // 8
	{"mainspring", "spring"},                              // 9
	{"timepiece|horologe", "device"},                      // 6
	{"watch|ticker", "timepiece"},                         // 7
	{"treadmill|threadmill", "device"},                    // 6
	{"structure|construction", "artifact"},                // 4
	{"shelter", "structure"},                              // 5
	{"coop|cage", "shelter"},                              // 6
	{"pigeon loft", "coop"},                               // 7
	{"creation", "artifact"},                              // 4
	{"decoration|ornament|ornamentation", "creation"},     // 5
	{"adornment", "decoration"},                           // 6
	{"trimming|passementerie", "adornment"},               // 7
	{"knot", "trimming"},                                  // 8
	{"bow", "knot"},                                       // 9
	{"love knot|lovers' knot", "bow"},                     // 10
}

// miniRelations declares the non-hypernym relations of the mini lexicon.
// Each entry links the synsets identified by the first lemma of each side.
var miniRelations = []struct {
	a, b string
	typ  RelationType
}{
	{"hypercapnia", "hypocapnia", RelAntonym},
	{"man", "woman", RelAntonym},
	{"man", "manhood", RelDerivation},
	{"terrorism", "terrorist organization", RelDerivation},
	{"diver", "diving", RelDerivation},
	{"vintner", "winemaking", RelDerivation},
	{"soaking", "water", RelDerivation},
	{"acceleration", "accelerated radiation therapy", RelDerivation},
	{"oncologist", "cancer", RelDerivation},
	{"privacy|seclusion", "concealment", RelDerivation},
	// Part-whole.
	{"wing", "bird", RelMeronym},
	{"trunk", "tree", RelMeronym},
	{"mainspring", "watch", RelMeronym},
	{"tissue", "organism", RelMeronym},
	{"bone", "vertebrate", RelMeronym},
	{"sign of the zodiac", "zodiac", RelMeronym},
	{"grape", "wine", RelMeronym},
	// Domain membership (recorded but skipped by Algorithm 1).
	{"abu sayyaf", "terrorism", RelDomainTopic},
	{"abu hafs al-masri brigades", "terrorism", RelDomainTopic},
	{"aksa martyrs brigades", "terrorism", RelDomainTopic},
	{"residual nitrogen time", "scuba diving", RelDomainTopic},
	{"decompression time", "scuba diving", RelDomainTopic},
	{"active dry yeast", "winemaking", RelDomainTopic},
	{"moustille", "winemaking", RelDomainTopic},
	{"osteosarcoma", "chemotherapy", RelDomainTopic},
}

// MiniLexicon builds the hand-curated lexicon containing the vocabulary of
// the paper's running examples (Sections 1, 3.3 and 3.4). Depths are
// arranged so the specificity values quoted in the paper hold. The
// database is returned frozen.
func MiniLexicon() *Database {
	db := NewDatabase()
	bySeed := make(map[string]SynsetID)
	for _, e := range miniEntries {
		lemmas := strings.Split(e.terms, "|")
		terms := make([]TermID, len(lemmas))
		for i, l := range lemmas {
			terms[i] = db.AddTerm(l)
		}
		id := db.AddSynset(terms, "")
		if _, dup := bySeed[e.terms]; dup {
			panic("wordnet: duplicate mini lexicon synset " + e.terms)
		}
		bySeed[e.terms] = id
		// Also index by the first lemma, unless the full form was needed
		// to disambiguate (two senses of 'privacy').
		first := lemmas[0]
		if _, ok := bySeed[first]; !ok {
			bySeed[first] = id
		}
		if e.parent != "" {
			p, ok := bySeed[e.parent]
			if !ok {
				panic("wordnet: mini lexicon parent not declared: " + e.parent)
			}
			db.AddRelation(p, id, RelHyponym)
		}
	}
	for _, r := range miniRelations {
		a, ok := bySeed[r.a]
		if !ok {
			panic("wordnet: mini lexicon relation endpoint not declared: " + r.a)
		}
		b, ok := bySeed[r.b]
		if !ok {
			panic("wordnet: mini lexicon relation endpoint not declared: " + r.b)
		}
		db.AddRelation(a, b, r.typ)
	}
	db.Freeze()
	return db
}

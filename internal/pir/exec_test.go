package pir

import (
	"math/rand"
	"runtime"
	"testing"
)

// randomColumns builds a random column-major database plus the
// equivalent materialized Matrix.
func randomColumns(t *testing.T, seed int64, nCols, colBytes int) ([][]byte, *Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]byte, nCols)
	m := NewMatrix(colBytes*8, nCols)
	for j := range cols {
		cols[j] = make([]byte, colBytes)
		rng.Read(cols[j])
		m.SetColumn(j, cols[j])
	}
	return cols, m
}

// TestExecWindowSavesWork: on a block-shaped matrix (many rows), the
// windowed path must perform materially fewer multiplications than the
// sequential cost model — that reduction is the whole point.
func TestExecWindowSavesWork(t *testing.T) {
	k := testKey(t)
	cols, _ := randomColumns(t, 7, 24, 64) // 512 rows
	q, err := k.NewQuery(newDetRand("exec-work"), len(cols), 3)
	if err != nil {
		t.Fatal(err)
	}
	_, seqSt, err := ProcessColumns(cols, 64, q)
	if err != nil {
		t.Fatal(err)
	}
	_, winSt, err := ProcessColumnsExec(cols, 64, q, Exec{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if winSt.ModMuls*2 >= seqSt.ModMuls {
		t.Fatalf("window 8 did not halve the work: %d vs sequential %d", winSt.ModMuls, seqSt.ModMuls)
	}
}

// TestExecValidation: the fast path enforces the same preconditions as
// the sequential one.
func TestExecValidation(t *testing.T) {
	k := testKey(t)
	cols := [][]byte{make([]byte, 4), make([]byte, 4)}
	q, err := k.NewQuery(newDetRand("exec-bad"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ProcessColumnsExec(cols, 4, q, Exec{}); err == nil {
		t.Fatal("width mismatch accepted")
	}
	q2, err := k.NewQuery(newDetRand("exec-bad2"), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ProcessColumnsExec(cols, 0, q2, Exec{}); err == nil {
		t.Fatal("zero column size accepted")
	}
	if _, _, err := ProcessColumnsExec([][]byte{make([]byte, 2), make([]byte, 4)}, 4, q2, Exec{}); err == nil {
		t.Fatal("short column accepted")
	}
}

// TestAutoWindowBounds: the heuristic stays within [1, MaxWindow] and
// widens with the row count (more rows amortize bigger tables).
func TestAutoWindowBounds(t *testing.T) {
	for _, rows := range []int{1, 8, 64, 4096, 8192, 1 << 20} {
		for _, cols := range []int{1, 10, 1000, 1 << 20} {
			w := autoWindow(rows, cols, 8)
			if w < 1 || w > MaxWindow {
				t.Fatalf("autoWindow(%d, %d) = %d out of range", rows, cols, w)
			}
		}
	}
	if small, big := autoWindow(8, 100, 8), autoWindow(8192, 100, 8); small > big {
		t.Fatalf("window shrank with more rows: rows=8 -> %d, rows=8192 -> %d", small, big)
	}
	if w := autoWindow(8192, 1000, 8); w < 4 {
		t.Fatalf("block-shaped matrix picked window %d; expected a wide window", w)
	}
}

func benchmarkColumns(b *testing.B, ex *Exec) {
	k, err := GenerateKey(newDetRand("bench"), 64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const nCols, colBytes = 128, 128 // 1024 rows
	cols := make([][]byte, nCols)
	for j := range cols {
		cols[j] = make([]byte, colBytes)
		rng.Read(cols[j])
	}
	q, err := k.NewQuery(newDetRand("bench-q"), nCols, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ex == nil {
			_, _, err = ProcessColumns(cols, colBytes, q)
		} else {
			_, _, err = ProcessColumnsExec(cols, colBytes, q, *ex)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessColumnsSequential(b *testing.B) { benchmarkColumns(b, nil) }
func BenchmarkProcessColumnsWindowed(b *testing.B)   { benchmarkColumns(b, &Exec{}) }
func BenchmarkProcessColumnsParallel(b *testing.B) {
	benchmarkColumns(b, &Exec{Workers: runtime.GOMAXPROCS(0)})
}

package pir

import (
	"bytes"
	"crypto/sha256"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

type detRand struct {
	state [32]byte
	buf   bytes.Buffer
}

func newDetRand(seed string) *detRand {
	return &detRand{state: sha256.Sum256([]byte(seed))}
}

func (d *detRand) Read(p []byte) (int, error) {
	for d.buf.Len() < len(p) {
		d.state = sha256.Sum256(d.state[:])
		d.buf.Write(d.state[:])
	}
	return d.buf.Read(p)
}

var cachedKey *ClientKey

func testKey(t *testing.T) *ClientKey {
	t.Helper()
	if cachedKey == nil {
		k, err := GenerateKey(newDetRand("pir-test"), 192)
		if err != nil {
			t.Fatal(err)
		}
		cachedKey = k
	}
	return cachedKey
}

func TestMatrixSetGet(t *testing.T) {
	m := NewMatrix(10, 7)
	m.Set(3, 4, true)
	m.Set(9, 6, true)
	if !m.Get(3, 4) || !m.Get(9, 6) || m.Get(0, 0) {
		t.Fatal("bit matrix get/set broken")
	}
	m.Set(3, 4, false)
	if m.Get(3, 4) {
		t.Fatal("clear failed")
	}
}

func TestSetColumnRoundTrip(t *testing.T) {
	data := []byte{0xA5, 0x3C, 0xFF, 0x00, 0x81}
	m := NewMatrix(len(data)*8, 3)
	m.SetColumn(1, data)
	bits := make([]bool, m.Rows)
	for r := 0; r < m.Rows; r++ {
		bits[r] = m.Get(r, 1)
	}
	got := ColumnBytes(bits)
	if !bytes.Equal(got, data) {
		t.Fatalf("column round trip: got %x, want %x", got, data)
	}
	// Other columns untouched.
	for r := 0; r < m.Rows; r++ {
		if m.Get(r, 0) || m.Get(r, 2) {
			t.Fatal("SetColumn leaked into neighboring column")
		}
	}
}

func TestQRQNRClassification(t *testing.T) {
	k := testKey(t)
	rnd := newDetRand("qrs")
	for i := 0; i < 10; i++ {
		qr, err := k.randomQR(rnd)
		if err != nil {
			t.Fatal(err)
		}
		if !k.isQR(qr) {
			t.Fatal("randomQR produced a non-residue")
		}
		qnr, err := k.randomQNR(rnd)
		if err != nil {
			t.Fatal(err)
		}
		if k.isQR(qnr) {
			t.Fatal("randomQNR produced a residue")
		}
		if big.Jacobi(qnr, k.N) != 1 {
			t.Fatal("QNR has Jacobi symbol != 1 (distinguishable without the key)")
		}
	}
}

func TestRetrieveColumn(t *testing.T) {
	k := testKey(t)
	rnd := newDetRand("retrieve")
	rows, cols := 64, 5
	m := NewMatrix(rows, cols)
	rng := rand.New(rand.NewSource(77))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, rng.Intn(2) == 1)
		}
	}
	for target := 0; target < cols; target++ {
		q, err := k.NewQuery(rnd, cols, target)
		if err != nil {
			t.Fatal(err)
		}
		ans, st, err := m.Process(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.ModMuls == 0 {
			t.Fatal("no work recorded")
		}
		bits := k.Decode(ans)
		for r := 0; r < rows; r++ {
			if bits[r] != m.Get(r, target) {
				t.Fatalf("column %d row %d: got %v, want %v", target, r, bits[r], m.Get(r, target))
			}
		}
	}
}

func TestQueryWidthValidation(t *testing.T) {
	k := testKey(t)
	m := NewMatrix(8, 4)
	q, err := k.NewQuery(newDetRand("w"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Process(q); err == nil {
		t.Fatal("mismatched query width accepted")
	}
	if _, err := k.NewQuery(newDetRand("w"), 4, 7); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestTrafficAccounting(t *testing.T) {
	k := testKey(t)
	nb := (k.N.BitLen() + 7) / 8
	if k.QueryBytes(10) != 10*nb {
		t.Fatalf("QueryBytes = %d", k.QueryBytes(10))
	}
	if k.AnswerBytes(16) != 16*nb {
		t.Fatalf("AnswerBytes = %d", k.AnswerBytes(16))
	}
}

func TestServerWorkScalesWithMatrix(t *testing.T) {
	k := testKey(t)
	rnd := newDetRand("work")
	small := NewMatrix(8, 4)
	large := NewMatrix(64, 4)
	q, _ := k.NewQuery(rnd, 4, 1)
	_, stS, _ := small.Process(q)
	_, stL, _ := large.Process(q)
	if stL.ModMuls <= stS.ModMuls {
		t.Fatalf("work did not scale: %d vs %d", stS.ModMuls, stL.ModMuls)
	}
}

// Property: retrieval is correct for arbitrary bit patterns and targets.
func TestRetrieveProperty(t *testing.T) {
	k := testKey(t)
	rnd := newDetRand("prop")
	f := func(pattern []byte, colRaw uint8) bool {
		if len(pattern) == 0 {
			return true
		}
		if len(pattern) > 8 {
			pattern = pattern[:8]
		}
		cols := 3
		target := int(colRaw) % cols
		m := NewMatrix(len(pattern)*8, cols)
		m.SetColumn(target, pattern)
		q, err := k.NewQuery(rnd, cols, target)
		if err != nil {
			return false
		}
		ans, _, err := m.Process(q)
		if err != nil {
			return false
		}
		return bytes.Equal(ColumnBytes(k.Decode(ans)), pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessColumnsValidation(t *testing.T) {
	k := testKey(t)
	cols := [][]byte{make([]byte, 4), make([]byte, 4)}
	q, err := k.NewQuery(newDetRand("cols-bad"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ProcessColumns(cols, 4, q); err == nil {
		t.Fatal("width mismatch accepted")
	}
	q2, err := k.NewQuery(newDetRand("cols-bad2"), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ProcessColumns(cols, 0, q2); err == nil {
		t.Fatal("zero column size accepted")
	}
	if _, _, err := ProcessColumns([][]byte{make([]byte, 2), make([]byte, 4)}, 4, q2); err == nil {
		t.Fatal("short column accepted")
	}
}

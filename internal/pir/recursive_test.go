package pir

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"strings"
	"testing"
)

// wordKey returns a cached 64-bit key — single-word prime factors, the
// shape that selects both the montMulWord serving kernel and the
// single-prime decode shortcut.
var cachedWordKey *ClientKey

func wordTestKey(t *testing.T) *ClientKey {
	t.Helper()
	if cachedWordKey == nil {
		k, err := GenerateKey(newDetRand("pir-word-test"), 64)
		if err != nil {
			t.Fatal(err)
		}
		cachedWordKey = k
	}
	return cachedWordKey
}

// recursiveShapeFor mirrors the geometry resolution of the serving
// path for a zero-Offset, zero-Span query — the oracle tests need it
// to call recursiveRefOne directly.
func recursiveShapeFor(q *RecursiveQuery, nCols, colBytes int) recShape {
	w := q.Width
	if w > nCols {
		w = nCols
	}
	return recShape{
		gridRows: len(q.Rows),
		gridCols: q.GridCols,
		offset:   0,
		window:   w,
		rows:     colBytes * 8,
	}
}

// TestRecursiveGridShape pins the grid geometry: the grid covers the
// width, the upload stays within the 3·⌈√n⌉ budget the acceptance
// bound demands, and ceilSqrt is exact at word boundaries.
func TestRecursiveGridShape(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 15, 16, 17, 100, 1199, 1200, 30413, 1 << 20} {
		s := ceilSqrt(n)
		if s*s < n || (s-1)*(s-1) >= n {
			t.Fatalf("ceilSqrt(%d) = %d", n, s)
		}
		r, c := RecursiveGrid(n)
		if c < 1 || r < 1 || r*c < n {
			t.Fatalf("RecursiveGrid(%d) = %d×%d does not cover the width", n, r, c)
		}
		if c > 2*s {
			t.Fatalf("RecursiveGrid(%d): %d grid columns beyond the hostile cap 2·%d", n, c, s)
		}
		if r+c > 3*s {
			t.Fatalf("RecursiveGrid(%d): upload %d+%d elements exceeds the 3·√n budget (√n=%d)", n, r, c, s)
		}
	}
	if ceilSqrt(0) != 0 || ceilSqrt(-4) != 0 {
		t.Fatal("ceilSqrt of nonpositive width")
	}
}

// TestRecursiveFastMatchesRef: the word kernel's answers must be
// gamma-identical to the reference composition of the flat paths —
// the fast path is an optimization, not a different protocol.
func TestRecursiveFastMatchesRef(t *testing.T) {
	k := wordTestKey(t)
	const nCols, colBytes = 29, 8
	cols := churnColumns(t, 41, nCols, colBytes)
	for _, partial := range []bool{false, true} {
		for target := 0; target < nCols; target += 5 {
			q, err := k.NewRecursiveQuery(newDetRand(fmt.Sprintf("fastref-%v-%d", partial, target)), nCols, target)
			if err != nil {
				t.Fatal(err)
			}
			if partial {
				q.Cols = nil // level-1-only partition mode
			}
			fast, _, err := ProcessColumnsRecursiveExecCtx(context.Background(), cols, colBytes, q, Exec{Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			ref, _, err := recursiveRefOne(context.Background(), cols, colBytes, q, Exec{}, recursiveShapeFor(q, nCols, colBytes))
			if err != nil {
				t.Fatal(err)
			}
			if len(fast.Gammas) != len(ref.Gammas) {
				t.Fatalf("partial=%v target %d: %d gammas vs ref %d", partial, target, len(fast.Gammas), len(ref.Gammas))
			}
			for i := range fast.Gammas {
				if fast.Gammas[i].Cmp(ref.Gammas[i]) != 0 {
					t.Fatalf("partial=%v target %d gamma %d: fast path differs from reference", partial, target, i)
				}
			}
		}
	}
}

// TestRecursiveEdgeWidths: widths 1..6 exercise every degenerate grid
// (1×1, last-row padding, single grid column), on 1-byte blocks.
func TestRecursiveEdgeWidths(t *testing.T) {
	k := wordTestKey(t)
	for width := 1; width <= 6; width++ {
		cols := churnColumns(t, int64(500+width), width, 1)
		for target := 0; target < width; target++ {
			q, err := k.NewRecursiveQuery(newDetRand(fmt.Sprintf("edge-%d-%d", width, target)), width, target)
			if err != nil {
				t.Fatal(err)
			}
			ans, _, err := ProcessColumnsRecursive(cols, 1, q)
			if err != nil {
				t.Fatal(err)
			}
			bits, err := k.DecodeRecursive(ans, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got := ColumnBytes(bits); !bytes.Equal(got, cols[target]) {
				t.Fatalf("width %d target %d: decoded %x, want %x", width, target, got, cols[target])
			}
		}
	}
}

// TestRecursiveBatchIdentical: a multi-query recursive batch answers
// each query gamma-identically to its own single run, and the batch
// validation mirrors the flat batch's.
func TestRecursiveBatchIdentical(t *testing.T) {
	k := wordTestKey(t)
	const nCols, colBytes, batch = 23, 4, 5
	cols := churnColumns(t, 61, nCols, colBytes)
	qs := make([]*RecursiveQuery, batch)
	for i := range qs {
		q, err := k.NewRecursiveQuery(newDetRand(fmt.Sprintf("rbatch-%d", i)), nCols, (i*7)%nCols)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	got, stats, err := ProcessColumnsRecursiveMultiExecCtx(context.Background(), cols, colBytes, qs, Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != batch || len(stats) != batch {
		t.Fatalf("%d answers / %d stats, want %d", len(got), len(stats), batch)
	}
	for i, q := range qs {
		want, _, err := ProcessColumnsRecursive(cols, colBytes, q)
		if err != nil {
			t.Fatal(err)
		}
		for r := range want.Gammas {
			if got[i].Gammas[r].Cmp(want.Gammas[r]) != 0 {
				t.Fatalf("batch query %d gamma %d differs from single run", i, r)
			}
		}
		bits, err := k.DecodeRecursive(got[i], colBytes)
		if err != nil {
			t.Fatal(err)
		}
		if decoded := ColumnBytes(bits); !bytes.Equal(decoded, cols[(i*7)%nCols]) {
			t.Fatalf("batch query %d decoded wrong block", i)
		}
	}
}

// TestRecursivePartitionCompose is the cluster identity in miniature:
// three partitions each serve a level-1-only query over their slice of
// the store (with the grid windowed by Offset/Span), the partial
// matrices combine element-wise mod N, level 2 runs over the combined
// matrix — and the result is gamma-identical to the single-process
// full answer. Exercised at splits that cut grid rows mid-row.
func TestRecursivePartitionCompose(t *testing.T) {
	k := wordTestKey(t)
	const nCols, colBytes = 31, 4
	cols := churnColumns(t, 71, nCols, colBytes)
	rows := colBytes * 8
	for target := 0; target < nCols; target += 4 {
		full, err := k.NewRecursiveQuery(newDetRand(fmt.Sprintf("part-%d", target)), nCols, target)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ProcessColumnsRecursive(cols, colBytes, full)
		if err != nil {
			t.Fatal(err)
		}
		C := full.GridCols
		combined := make([]*big.Int, C*rows)
		for i := range combined {
			combined[i] = big.NewInt(1)
		}
		for _, cut := range [][2]int{{0, 11}, {11, 24}, {24, nCols}} {
			part := &RecursiveQuery{
				N: full.N, Width: full.Width, GridCols: full.GridCols,
				Offset: cut[0], Span: cut[1] - cut[0], Rows: full.Rows,
			}
			ans, _, err := ProcessColumnsRecursive(cols[cut[0]:cut[1]], colBytes, part)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans.Gammas) != C*rows {
				t.Fatalf("partition answered %d gammas, want %d", len(ans.Gammas), C*rows)
			}
			for i, g := range ans.Gammas {
				combined[i].Mul(combined[i], g)
				combined[i].Mod(combined[i], full.N)
			}
		}
		got, _, err := RecursiveLevel2(context.Background(), full, combined, colBytes, Exec{})
		if err != nil {
			t.Fatal(err)
		}
		for r := range want.Gammas {
			if got.Gammas[r].Cmp(want.Gammas[r]) != 0 {
				t.Fatalf("target %d: composed gamma %d differs from single process", target, r)
			}
		}
		bits, err := k.DecodeRecursive(got, colBytes)
		if err != nil {
			t.Fatal(err)
		}
		if decoded := ColumnBytes(bits); !bytes.Equal(decoded, cols[target]) {
			t.Fatalf("target %d: composed answer decoded %x, want %x", target, decoded, cols[target])
		}
	}
}

// TestRecursiveSpanRefusal: a Span beyond the stored blocks — the
// stale-cluster-map symptom — is refused with the diagnostic error,
// never served short.
func TestRecursiveSpanRefusal(t *testing.T) {
	k := wordTestKey(t)
	cols := churnColumns(t, 81, 5, 2)
	q, err := k.NewRecursiveQuery(newDetRand("span"), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	q.Cols = nil
	q.Offset, q.Span = 4, 8 // partition claims 8 blocks; the store holds 5
	_, _, err = ProcessColumnsRecursive(cols, 2, q)
	if err == nil || !strings.Contains(err.Error(), "re-partitioned") {
		t.Fatalf("oversized span: got %v", err)
	}
	q.Span = 5 // exactly the store: served
	if _, _, err := ProcessColumnsRecursive(cols, 2, q); err != nil {
		t.Fatalf("exact span refused: %v", err)
	}
}

// TestRecursiveValidation: hostile shapes are errors before any
// dimension-sized allocation, and batch members must agree on shape.
func TestRecursiveValidation(t *testing.T) {
	k := wordTestKey(t)
	cols := churnColumns(t, 91, 9, 2)
	good := func() *RecursiveQuery {
		q, err := k.NewRecursiveQuery(newDetRand("val"), 9, 2)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	cases := []struct {
		name   string
		mutate func(*RecursiveQuery)
		want   error
	}{
		{"zero width", func(q *RecursiveQuery) { q.Width = 0 }, errRecursiveWidth},
		{"grid cols zero", func(q *RecursiveQuery) { q.GridCols = 0 }, errRecursiveGrid},
		{"grid cols beyond cap", func(q *RecursiveQuery) { q.GridCols = 7 }, errRecursiveGrid},
		{"rows mismatch", func(q *RecursiveQuery) { q.Rows = q.Rows[1:] }, errRecursiveRows},
		{"cols mismatch", func(q *RecursiveQuery) { q.Cols = q.Cols[1:] }, errRecursiveCols},
		{"negative offset", func(q *RecursiveQuery) { q.Offset = -1 }, errRecursiveOffset},
		{"offset at width", func(q *RecursiveQuery) { q.Offset = 9 }, errRecursiveOffset},
		{"span past width", func(q *RecursiveQuery) { q.Span = 10 }, errRecursiveSpan},
	}
	for _, tc := range cases {
		q := good()
		tc.mutate(q)
		if _, _, err := ProcessColumnsRecursive(cols, 2, q); err != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, _, err := ProcessColumnsRecursive(cols, 0, good()); err != errColumnSize {
		t.Errorf("zero colBytes: got %v", err)
	}
	short := churnColumns(t, 92, 9, 2)
	short[4] = short[4][:1]
	if _, _, err := ProcessColumnsRecursive(short, 2, good()); err == nil {
		t.Error("short column accepted")
	}
	if _, _, err := ProcessColumnsRecursiveMultiExecCtx(context.Background(), cols, 2, nil, Exec{}); err != errEmptyBatch {
		t.Errorf("empty batch: got %v", err)
	}
	over := make([]*RecursiveQuery, MaxMulti+1)
	for i := range over {
		over[i] = good()
	}
	if _, _, err := ProcessColumnsRecursiveMultiExecCtx(context.Background(), cols, 2, over, Exec{}); err != errBatchSize {
		t.Errorf("oversize batch: got %v", err)
	}
	other := testKey(t)
	oq, err := other.NewRecursiveQuery(newDetRand("val-other"), 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ProcessColumnsRecursiveMultiExecCtx(context.Background(), cols, 2, []*RecursiveQuery{good(), oq}, Exec{}); err != errBatchModulus {
		t.Errorf("modulus mismatch: got %v", err)
	}
	mixed := good()
	mixed.Cols = nil
	if _, _, err := ProcessColumnsRecursiveMultiExecCtx(context.Background(), cols, 2, []*RecursiveQuery{good(), mixed}, Exec{}); err != errRecursiveShape {
		t.Errorf("mode mismatch: got %v", err)
	}
	// Level 2 guards its own inputs (the router calls it directly).
	lq := good()
	if _, _, err := RecursiveLevel2(context.Background(), lq, make([]*big.Int, 3), 2, Exec{}); err != errRecursiveMatrix {
		t.Errorf("matrix mismatch: got %v", err)
	}
	lq.Cols = nil
	if _, _, err := RecursiveLevel2(context.Background(), lq, nil, 2, Exec{}); err != errRecursiveCols {
		t.Errorf("level-2 without Cols: got %v", err)
	}
}

// TestRecursiveDecoderMatchesIsQR: the single-prime word shortcut must
// agree with the two-prime isQR on every honest transcript value —
// QRs, Jacobi-(+1) QNRs, their products — and on the degenerate
// non-unit multiples of a prime factor.
func TestRecursiveDecoderMatchesIsQR(t *testing.T) {
	k := wordTestKey(t)
	d := k.decoder()
	if !d.word {
		t.Fatal("64-bit key did not select the word decoder")
	}
	rnd := newDetRand("dec")
	vals := []*big.Int{big.NewInt(1), new(big.Int).Set(k.p1), new(big.Int).Lsh(k.p1, 1)}
	for i := 0; i < 40; i++ {
		var v *big.Int
		var err error
		if i%2 == 0 {
			v, err = k.randomQR(rnd)
		} else {
			v, err = k.randomQNR(rnd)
		}
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
		if i > 2 {
			p := new(big.Int).Mul(vals[len(vals)-1], vals[len(vals)-2])
			vals = append(vals, p.Mod(p, k.N))
		}
	}
	for _, v := range vals {
		if got, want := d.qnr(k, v), !k.isQR(v); got != want {
			t.Fatalf("decoder disagrees with isQR on %v: got %v, want %v", v, got, want)
		}
	}
	// The wide key falls back to isQR wholesale.
	if testKey(t).decoder().word {
		t.Fatal("192-bit key selected the word decoder")
	}
}

// TestRecursiveTrafficAccounting pins the upload arithmetic the bench
// and the acceptance bound rely on: Rows+Cols elements uploaded, every
// element modBytes wide, total under 3·⌈√n⌉ elements — against the
// flat path's n.
func TestRecursiveTrafficAccounting(t *testing.T) {
	k := wordTestKey(t)
	modBytes := (k.N.BitLen() + 7) / 8
	for _, width := range []int{1, 64, 1200, 12000} {
		r, c := RecursiveGrid(width)
		if got, want := k.RecursiveQueryBytes(width), (r+c)*modBytes; got != want {
			t.Fatalf("RecursiveQueryBytes(%d) = %d, want %d", width, got, want)
		}
		if width >= 64 {
			if k.RecursiveQueryBytes(width) > 3*ceilSqrt(width)*modBytes {
				t.Fatalf("width %d: upload exceeds the 3·√n budget", width)
			}
			if k.RecursiveQueryBytes(width) >= k.QueryBytes(width) {
				t.Fatalf("width %d: recursive upload not below flat", width)
			}
		}
		q, err := k.NewRecursiveQuery(newDetRand(fmt.Sprintf("traffic-%d", width)), width, width/2)
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Rows) != r || len(q.Cols) != c {
			t.Fatalf("width %d: query vectors %d+%d, want %d+%d", width, len(q.Rows), len(q.Cols), r, c)
		}
	}
	if got, want := k.RecursiveAnswerBytes(4), 64*4*modBytes*modBytes; got != want {
		t.Fatalf("RecursiveAnswerBytes(4) = %d, want %d", got, want)
	}
}

// TestRecursiveOverwideStore: with Span zero, a store longer than the
// grid is clamped (the extra blocks are simply not addressed), and a
// store SHORTER than Width−Offset serves what it has with identity
// cells — no error, the partition posture.
func TestRecursiveOverwideStore(t *testing.T) {
	k := wordTestKey(t)
	cols := churnColumns(t, 111, 10, 2)
	q, err := k.NewRecursiveQuery(newDetRand("overwide"), 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := ProcessColumnsRecursive(cols, 2, q) // store 10, grid 8
	if err != nil {
		t.Fatal(err)
	}
	bits, err := k.DecodeRecursive(ans, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ColumnBytes(bits); !bytes.Equal(got, cols[6]) {
		t.Fatalf("clamped store decoded %x, want %x", got, cols[6])
	}
	// Short store: blocks beyond it decode as all-zero (identity γ=1 is
	// a QR at every bit).
	q2, err := k.NewRecursiveQuery(newDetRand("overwide2"), 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	ans2, _, err := ProcessColumnsRecursive(cols[:4], 2, q2)
	if err != nil {
		t.Fatal(err)
	}
	bits2, err := k.DecodeRecursive(ans2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ColumnBytes(bits2); !bytes.Equal(got, make([]byte, 2)) {
		t.Fatalf("absent block decoded %x, want zeros", got)
	}
}

package pir

import (
	"fmt"
	"math/big"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Client-side decoding of recursive answers. A recursive answer holds
// 8·rows·modBytes gammas — one per BIT of the serialized target grid
// column — so where the flat client Euler-tests rows gammas, the
// recursive client tests 64·modBytes times as many. Two things keep
// that affordable:
//
//   - a single-prime residue test. Every value an honest client puts
//     in a query has equal quadratic character modulo p1 and p2 (QRs
//     are +1/+1, the QNRs are drawn with Jacobi symbol +1 and hence
//     −1/−1), and products preserve that equality — so for honest
//     transcripts, testing modulo p1 alone decides QNR-ness exactly,
//     at half the exponentiation work of isQR;
//   - a one-word Montgomery exponentiation kernel. Demo-sized keys
//     have single-word prime factors, so the Euler test collapses to
//     a montMulWord square-and-multiply chain with the prime and its
//     folding constant in registers, fed by a bits.Div word-fold
//     reduction of the gamma.
//
// Keys whose p1 does not fit one word fall back to the full isQR —
// exact for any transcript, honest or not.

// qrDecoder is the per-key residue-test kernel, built once per key on
// first use and cached (read-only thereafter, safe for the parallel
// decode workers).
type qrDecoder struct {
	word bool // single-word p1: the fast kernel applies
	p    uint // p1
	pinv uint // -p1^{-1} mod 2^W
	prr  uint // R² mod p1
	pone uint // 1 in Montgomery form (R mod p1)
	e    uint // (p1-1)/2, the Euler exponent
}

// decoder returns the key's cached residue-test kernel, building it on
// first use.
func (k *ClientKey) decoder() *qrDecoder {
	if d := k.dec.Load(); d != nil {
		return d
	}
	d := &qrDecoder{}
	if m, err := NewMont(k.p1); err == nil && m.Words() == 1 && len(k.e1.Bits()) == 1 {
		d.word = true
		d.p = uint(m.n[0])
		d.pinv = uint(m.n0inv)
		d.prr = uint(m.rr[0])
		d.pone = montMulWord(1, d.prr, d.p, d.pinv)
		d.e = uint(k.e1.Bits()[0])
	}
	k.dec.Store(d)
	return d
}

// qnr reports whether g is a quadratic non-residue — the bit value —
// using the single-prime shortcut when the kernel applies. g must be
// non-negative.
func (d *qrDecoder) qnr(k *ClientKey, g *big.Int) bool {
	if !d.word {
		return !k.isQR(g)
	}
	// g mod p by folding the words most-significant first; each step's
	// remainder is < p, the precondition bits.Div requires.
	w := g.Bits()
	var r uint
	for i := len(w) - 1; i >= 0; i-- {
		_, r = bits.Div(r, uint(w[i]), d.p)
	}
	if r == 0 {
		// Not a unit mod p1: Exp(g, e1, p1) = 0 ≠ 1, so isQR is false.
		return true
	}
	// r^e mod p, Montgomery square-and-multiply; r^e = ±1 for units
	// (Euler), and comparing in form against pone avoids converting out.
	x := montMulWord(r, d.prr, d.p, d.pinv)
	res := d.pone
	for i := bits.Len(d.e) - 1; i >= 0; i-- {
		res = montMulWord(res, res, d.p, d.pinv)
		if d.e&(1<<uint(i)) != 0 {
			res = montMulWord(res, x, d.p, d.pinv)
		}
	}
	return res != d.pone
}

// DecodeRecursive peels both layers of a recursive answer: Euler-test
// the level-2 gammas into the byte image of the target grid column,
// cut the image into colBytes·8 fixed-width level-1 gammas, and
// Euler-test those into the target block's bits (MSB-first, the
// Matrix.SetColumn layout — feed the result to ColumnBytes for the
// block's bytes).
func (k *ClientKey) DecodeRecursive(ans *Answer, colBytes int) ([]bool, error) {
	if colBytes <= 0 {
		return nil, errColumnSize
	}
	rows := colBytes * 8
	modBytes := (k.N.BitLen() + 7) / 8
	if len(ans.Gammas) != 8*rows*modBytes {
		return nil, fmt.Errorf("pir: recursive answer holds %d gammas, want %d", len(ans.Gammas), 8*rows*modBytes)
	}
	d := k.decoder()
	bits2 := make([]bool, len(ans.Gammas))
	parallelRanges(len(bits2), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			bits2[i] = d.qnr(k, ans.Gammas[i])
		}
	})
	raw := ColumnBytes(bits2) // rows·modBytes bytes: the grid column's gamma image
	out := make([]bool, rows)
	parallelRanges(rows, 512, func(lo, hi int) {
		g := new(big.Int)
		for r := lo; r < hi; r++ {
			g.SetBytes(raw[r*modBytes : (r+1)*modBytes])
			out[r] = d.qnr(k, g)
		}
	})
	return out, nil
}

// parallelRanges splits [0, n) across up to 8 goroutines (never fewer
// than minPer items each) and runs fn on each range. Writes within fn
// must stay inside its range.
func parallelRanges(n, minPer int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if minPer > 0 {
		if maxW := n / minPer; workers > maxW {
			workers = maxW
		}
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RecursiveQueryBytes returns the wire size of one recursive query's
// selection vectors under this key: gridRows+gridCols group elements,
// against the flat path's width elements.
func (k *ClientKey) RecursiveQueryBytes(width int) int {
	r, c := RecursiveGrid(width)
	return (r + c) * ((k.N.BitLen() + 7) / 8)
}

// RecursiveAnswerBytes returns the wire size of one recursive answer
// for colBytes-byte blocks: 64·colBytes·modBytes gammas of modBytes
// bytes each. The recursion trades the flat path's upload for a wider
// answer — the download is modBytes·8-fold the flat one, which is why
// the win is measured in uploaded bytes and total time, not downloads.
func (k *ClientKey) RecursiveAnswerBytes(colBytes int) int {
	modBytes := (k.N.BitLen() + 7) / 8
	return 64 * colBytes * modBytes * modBytes
}

// dec is ClientKey's cached decoder; declared here next to its kernel.
// (The field lives on ClientKey via the embedded holder below so pir.go
// stays untouched by the caching concern.)
type decoderCache struct {
	dec atomic.Pointer[qrDecoder]
}

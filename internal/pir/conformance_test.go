// Cross-plan conformance battery: the package serves the same protocol
// through five plans — the bit-matrix reference, the sequential column
// scan, the windowed exec kernel, the amortized multi scan, and the
// two-level recursive protocol — and every one of them must retrieve
// byte-identical blocks from the same corpus. Flat plans must agree
// gamma-for-gamma (they answer the same query); the recursive plan
// speaks a different wire shape, so it is held to the decoded bytes.
// One table replaces the per-plan copy-pasted identity tests.
package pir

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// planResult is one plan's answers for a batch of targets: the decoded
// block bytes (the cross-plan contract), the raw flat-protocol answers
// when the plan speaks the flat wire shape, and per-query stats.
type planResult struct {
	decoded [][]byte
	answers []*Answer
	stats   []Stats
}

func (r *planResult) addFlat(k *ClientKey, ans *Answer, st Stats) {
	r.decoded = append(r.decoded, ColumnBytes(k.Decode(ans)))
	r.answers = append(r.answers, ans)
	r.stats = append(r.stats, st)
}

// conformancePlan answers every query of the batch over cols. Flat
// plans consume qs; the recursive plan consumes rqs (same targets, its
// own protocol). flatWire marks answers as gamma-comparable across
// plans.
type conformancePlan struct {
	name     string
	flatWire bool
	run      func(ctx context.Context, k *ClientKey, cols [][]byte, colBytes int, qs []*Query, rqs []*RecursiveQuery, ex Exec) (*planResult, error)
}

func conformancePlans() []conformancePlan {
	return []conformancePlan{
		{name: "matrix", flatWire: true, run: func(ctx context.Context, k *ClientKey, cols [][]byte, colBytes int, qs []*Query, _ []*RecursiveQuery, _ Exec) (*planResult, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			m := NewMatrix(colBytes*8, len(cols))
			for j, col := range cols {
				m.SetColumn(j, col[:colBytes])
			}
			res := &planResult{}
			for _, q := range qs {
				ans, st, err := m.Process(q)
				if err != nil {
					return nil, err
				}
				res.addFlat(k, ans, st)
			}
			return res, nil
		}},
		{name: "sequential", flatWire: true, run: func(ctx context.Context, k *ClientKey, cols [][]byte, colBytes int, qs []*Query, _ []*RecursiveQuery, _ Exec) (*planResult, error) {
			res := &planResult{}
			for _, q := range qs {
				ans, st, err := ProcessColumnsCtx(ctx, cols, colBytes, q)
				if err != nil {
					return nil, err
				}
				res.addFlat(k, ans, st)
			}
			return res, nil
		}},
		{name: "exec", flatWire: true, run: func(ctx context.Context, k *ClientKey, cols [][]byte, colBytes int, qs []*Query, _ []*RecursiveQuery, ex Exec) (*planResult, error) {
			res := &planResult{}
			for _, q := range qs {
				ans, st, err := ProcessColumnsExecCtx(ctx, cols, colBytes, q, ex)
				if err != nil {
					return nil, err
				}
				res.addFlat(k, ans, st)
			}
			return res, nil
		}},
		{name: "multi", flatWire: true, run: func(ctx context.Context, k *ClientKey, cols [][]byte, colBytes int, qs []*Query, _ []*RecursiveQuery, ex Exec) (*planResult, error) {
			answers, stats, err := ProcessColumnsMultiExecCtx(ctx, cols, colBytes, qs, ex)
			if err != nil {
				return nil, err
			}
			res := &planResult{}
			for i, ans := range answers {
				res.addFlat(k, ans, stats[i])
			}
			return res, nil
		}},
		{name: "recursive", flatWire: false, run: func(ctx context.Context, k *ClientKey, cols [][]byte, colBytes int, _ []*Query, rqs []*RecursiveQuery, ex Exec) (*planResult, error) {
			answers, stats, err := ProcessColumnsRecursiveMultiExecCtx(ctx, cols, colBytes, rqs, ex)
			if err != nil {
				return nil, err
			}
			res := &planResult{}
			for i, ans := range answers {
				bits, derr := k.DecodeRecursive(ans, colBytes)
				if derr != nil {
					return nil, derr
				}
				res.decoded = append(res.decoded, ColumnBytes(bits))
				res.stats = append(res.stats, stats[i])
			}
			return res, nil
		}},
	}
}

// conformanceTargets samples every (1+n/7)-th block so small corpora
// cover every index and large ones stay cheap.
func conformanceTargets(nCols int) []int {
	var ts []int
	for i := 0; i < nCols; i += 1 + nCols/7 {
		ts = append(ts, i)
	}
	return ts
}

// conformanceQueries builds one flat and one recursive query per
// target, deterministically seeded so failures replay.
func conformanceQueries(t *testing.T, k *ClientKey, tag string, nCols int, targets []int) ([]*Query, []*RecursiveQuery) {
	t.Helper()
	qs := make([]*Query, len(targets))
	rqs := make([]*RecursiveQuery, len(targets))
	for i, target := range targets {
		q, err := k.NewQuery(newDetRand(fmt.Sprintf("%s-f%d", tag, i)), nCols, target)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := k.NewRecursiveQuery(newDetRand(fmt.Sprintf("%s-r%d", tag, i)), nCols, target)
		if err != nil {
			t.Fatal(err)
		}
		qs[i], rqs[i] = q, rq
	}
	return qs, rqs
}

// TestPIRConformance is the battery: keys on and off the word boundary
// (64-bit word kernel, 192-bit reference path), clean and churned
// corpora (tombstoned blocks, padded tails), grids from degenerate to
// exact-square, and the exec tunings — every plan must decode every
// target to the stored bytes, and the flat plans must agree on the
// gammas themselves.
func TestPIRConformance(t *testing.T) {
	type shape struct{ nCols, colBytes int }
	keys := []struct {
		name   string
		k      *ClientKey
		shapes []shape
	}{
		// The word kernel carries the big shapes; the wide key's job is
		// exercising the multi-word reference path, where 37×16 costs
		// seconds without covering anything 16×4 doesn't.
		{"word", wordTestKey(t), []shape{
			{13, 3},
			{37, 16},
			{16, 4}, // exact square grid
			{5, 1},
			{1, 2}, // single block: 1×1 grid
		}},
		{"wide", testKey(t), []shape{
			{13, 3},
			{16, 4},
			{5, 1},
			{1, 2},
		}},
	}
	corpora := []struct {
		name  string
		build func(t *testing.T, seed int64, nCols, colBytes int) [][]byte
	}{
		{"random", func(t *testing.T, seed int64, nCols, colBytes int) [][]byte {
			cols, _ := randomColumns(t, seed, nCols, colBytes)
			return cols
		}},
		{"churn", churnColumns},
	}
	execs := []Exec{
		{},
		{Workers: 1, Window: 1},
		{Workers: 3, Window: 4},
		{Workers: 16, Window: 64}, // clamped
	}
	plans := conformancePlans()
	for _, key := range keys {
		for ci, corpus := range corpora {
			for si, shape := range key.shapes {
				name := fmt.Sprintf("%s/%s/%dx%d", key.name, corpus.name, shape.nCols, shape.colBytes)
				t.Run(name, func(t *testing.T) {
					seed := int64(1000 + 100*ci + si)
					cols := corpus.build(t, seed, shape.nCols, shape.colBytes)
					targets := conformanceTargets(shape.nCols)
					qs, rqs := conformanceQueries(t, key.k, name, shape.nCols, targets)
					var baseline *planResult
					for ei, ex := range execs {
						for _, plan := range plans {
							// The matrix reference ignores Exec; run it once.
							if plan.name == "matrix" && ei > 0 {
								continue
							}
							res, err := plan.run(context.Background(), key.k, cols, shape.colBytes, qs, rqs, ex)
							if err != nil {
								t.Fatalf("%s exec %+v: %v", plan.name, ex, err)
							}
							if len(res.decoded) != len(targets) {
								t.Fatalf("%s answered %d targets, want %d", plan.name, len(res.decoded), len(targets))
							}
							for i, target := range targets {
								if !bytes.Equal(res.decoded[i], cols[target][:shape.colBytes]) {
									t.Fatalf("%s exec %+v target %d: decoded %x, want %x",
										plan.name, ex, target, res.decoded[i], cols[target][:shape.colBytes])
								}
								if st := res.stats[i]; st.ModMuls <= 0 || st.TableMuls < 0 || st.TableMuls > st.ModMuls {
									t.Fatalf("%s target %d: implausible stats %+v", plan.name, target, st)
								}
							}
							if baseline == nil {
								baseline = res
								continue
							}
							if !plan.flatWire {
								continue
							}
							// Flat plans answered the same query: the
							// transcripts must match gamma-for-gamma.
							for i := range targets {
								got, want := res.answers[i], baseline.answers[i]
								if len(got.Gammas) != len(want.Gammas) {
									t.Fatalf("%s target %d: %d gammas, baseline %d",
										plan.name, targets[i], len(got.Gammas), len(want.Gammas))
								}
								for g := range got.Gammas {
									if got.Gammas[g].Cmp(want.Gammas[g]) != 0 {
										t.Fatalf("%s exec %+v target %d gamma %d differs from baseline",
											plan.name, ex, targets[i], g)
									}
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestPIRConformanceCancellation: cancellation is part of the contract.
// Every plan must refuse an already-expired deadline and a cancelled
// context with an error and no answers — on both kernels — and under a
// halving deadline each run either completes with the correct bytes or
// fails with the context's error. Wrong bytes are never an outcome.
func TestPIRConformanceCancellation(t *testing.T) {
	plans := conformancePlans()
	for _, key := range []struct {
		name string
		k    *ClientKey
	}{
		{"word", wordTestKey(t)},
		{"wide", testKey(t)},
	} {
		const nCols, colBytes = 32, 16
		cols := churnColumns(t, 7, nCols, colBytes)
		targets := conformanceTargets(nCols)
		qs, rqs := conformanceQueries(t, key.k, "cancel-"+key.name, nCols, targets)
		for _, plan := range plans {
			expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			res, err := plan.run(expired, key.k, cols, colBytes, qs, rqs, Exec{Workers: 2})
			cancel()
			if err == nil || res != nil {
				t.Fatalf("%s/%s: expired deadline served: res=%v err=%v", key.name, plan.name, res, err)
			}
			stopped, stop := context.WithCancel(context.Background())
			stop()
			if _, err := plan.run(stopped, key.k, cols, colBytes, qs, rqs, Exec{}); err == nil {
				t.Fatalf("%s/%s: cancelled context served", key.name, plan.name)
			}
		}
	}

	// Deadline halving: from comfortably-enough down to never-enough,
	// the only legal outcomes are full correct answers or a context
	// error. Timing decides which, so both are accepted; corruption
	// fails loudly.
	k := wordTestKey(t)
	const nCols, colBytes = 48, 32
	cols := churnColumns(t, 11, nCols, colBytes)
	targets := conformanceTargets(nCols)
	qs, rqs := conformanceQueries(t, k, "halving", nCols, targets)
	for _, plan := range conformancePlans() {
		for d := 50 * time.Millisecond; d >= 50*time.Microsecond; d /= 2 {
			ctx, cancel := context.WithTimeout(context.Background(), d)
			res, err := plan.run(ctx, k, cols, colBytes, qs, rqs, Exec{Workers: 2})
			cancel()
			if err != nil {
				if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Fatalf("%s at %v: non-context error %v", plan.name, d, err)
				}
				continue
			}
			for i, target := range targets {
				if !bytes.Equal(res.decoded[i], cols[target]) {
					t.Fatalf("%s at %v: served wrong bytes for target %d", plan.name, d, target)
				}
			}
		}
	}
}

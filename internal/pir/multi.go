package pir

import (
	"context"
	"errors"
	"math/big"
	"sync"
)

// This file is the amortized multi-query serving path: all k queries
// of one batch are answered in ONE scan of the column store. The
// per-query subset-product tables still cost 2^w-ish multiplications
// each — independent query values cannot share a table — but the
// expensive shared work is paid once per batch instead of once per
// query:
//
//   - the database bytes are read and bit-transposed into row patterns
//     once per column group, not once per query. The pattern buffer
//     (2 bytes/row) then feeds all k row scans from cache;
//   - the whole scan runs on the Montgomery REDC kernel
//     (montgomery.go): query values and tables are converted into
//     Montgomery form once per batch, the row loops multiply word
//     slices with no per-operation quotient or allocation, and the
//     k·rows gammas convert back out at the end;
//   - batches justify wider windows: the table-build term of the
//     window cost model is divided by k (the transposition — the part
//     that actually scales with window width per row — is shared), so
//     autoWindowMulti admits windows beyond MaxWindow, up to
//     MaxBatchWindow.
//
// Answers are byte-identical to k independent ProcessColumns runs:
// the per-row product is only reassociated (commutative monoid), every
// operand is a canonical residue, and the Montgomery form is an exact
// bijection entered and left by exact multiplications. Client-chosen
// moduli the REDC kernel rejects (even ones) fall back to a big.Int
// one-pass loop that still shares the transposition.

// MaxBatchWindow caps the window width for multi-query scans. The true
// per-query optimum (rows + 2^(w+1))/w sits at w = 9..10 for
// block-sized stores (rows = 8192) — beyond MaxWindow, whose smaller
// cap keeps single-query table build from dominating. With the build
// cost amortized over a batch the wider window is worth building.
const MaxBatchWindow = 10

// MaxMulti caps the batch width one multi-query scan accepts,
// mirroring the wire protocol's batch-frame cap.
const MaxMulti = 64

// Validation errors of the multi-query serving path.
var (
	errEmptyBatch   = errors.New("pir: empty query batch")
	errBatchSize    = errors.New("pir: query batch exceeds MaxMulti")
	errBatchModulus = errors.New("pir: batch queries disagree on modulus")
	errBatchWidth   = errors.New("pir: batch queries disagree on width")
)

// autoWindowMulti picks the window width for a k-query batch. The
// per-column, per-query cost is rows/w row multiplications plus
// 2^(w+1)/w table build — but the row-side constant the window
// actually buys down (byte reads, bit transposition) is shared by the
// whole batch, so the build term is charged at 1/k: batches push the
// optimum wider. Bounded by MaxBatchWindow and by a ceiling on the k
// simultaneously-live group tables.
func autoWindowMulti(rows, cols, modBytes, k int) int {
	best, bestCost := 1, int(^uint(0)>>1)
	for w := 1; w <= MaxBatchWindow; w++ {
		cost := (rows + (2<<w)/k) / w
		if cost < bestCost {
			best, bestCost = w, cost
		}
	}
	// One group's tables for all k queries are live at a time; keep
	// them comfortably in memory even for wide moduli.
	for best > 1 {
		if int64(k)<<best*int64(modBytes+32) <= 256<<20 {
			break
		}
		best--
	}
	return best
}

// ctxScanErr is the error a scan reports when its cancellation poll
// fires. The wall-clock deadline check can observe an expired deadline
// before the context's own timer goroutine has run (GOMAXPROCS=1
// starves timers), in which case ctx.Err() is still nil — report
// DeadlineExceeded directly rather than a nil error.
func ctxScanErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}

// ProcessColumnsMulti answers every query of the batch over the same
// column store in one database scan, returning per-query answers and
// per-query Stats in batch order. All queries must share one modulus
// and one width; answers are byte-identical to len(qs) independent
// ProcessColumns runs.
func ProcessColumnsMulti(cols [][]byte, colBytes int, qs []*Query) ([]*Answer, []Stats, error) {
	return ProcessColumnsMultiCtx(context.Background(), cols, colBytes, qs)
}

// ProcessColumnsMultiCtx is ProcessColumnsMulti under a context; see
// ProcessColumnsMultiExecCtx for the cancellation contract.
func ProcessColumnsMultiCtx(ctx context.Context, cols [][]byte, colBytes int, qs []*Query) ([]*Answer, []Stats, error) {
	return ProcessColumnsMultiExecCtx(ctx, cols, colBytes, qs, Exec{})
}

// ProcessColumnsMultiExec is ProcessColumnsMulti with execution
// tuning: ex.Workers partitions column groups across goroutines
// exactly as ProcessColumnsExec does, and ex.Window pins the window
// width (0 selects autoWindowMulti's batch-amortized choice, which may
// exceed MaxWindow up to MaxBatchWindow).
func ProcessColumnsMultiExec(cols [][]byte, colBytes int, qs []*Query, ex Exec) ([]*Answer, []Stats, error) {
	return ProcessColumnsMultiExecCtx(context.Background(), cols, colBytes, qs, ex)
}

// ProcessColumnsMultiExecCtx is the full multi-query serving path.
// Cancellation is all-or-nothing for the batch: workers poll the
// context (Done channel plus wall-clock deadline) at group boundaries
// and every cancelCheckRows row accumulations, and on cancellation no
// answers are returned — but the per-query Stats still count the
// multiplications actually performed, so abandoned batches are charged
// for the cycles they burned.
func ProcessColumnsMultiExecCtx(ctx context.Context, cols [][]byte, colBytes int, qs []*Query, ex Exec) ([]*Answer, []Stats, error) {
	if len(qs) == 0 {
		return nil, nil, errEmptyBatch
	}
	if len(qs) > MaxMulti {
		return nil, nil, errBatchSize
	}
	for _, q := range qs[1:] {
		if q.N.Cmp(qs[0].N) != 0 {
			return nil, nil, errBatchModulus
		}
		if len(q.Values) != len(qs[0].Values) {
			return nil, nil, errBatchWidth
		}
	}
	if err := validateColumns(cols, colBytes, qs[0]); err != nil {
		return nil, nil, err
	}
	k := len(qs)
	if len(cols) == 0 {
		// Width-zero batch: nothing to share; serve the trivial
		// all-ones answers through the sequential path.
		answers := make([]*Answer, k)
		stats := make([]Stats, k)
		for i, q := range qs {
			ans, st, err := ProcessColumnsCtx(ctx, cols, colBytes, q)
			stats[i] = st
			if err != nil {
				return nil, stats, err
			}
			answers[i] = ans
		}
		return answers, stats, nil
	}
	rows := colBytes * 8
	modBytes := (qs[0].N.BitLen() + 7) / 8
	window := ex.Window
	if window <= 0 {
		window = autoWindowMulti(rows, len(cols), modBytes, k)
	}
	if window > MaxBatchWindow {
		window = MaxBatchWindow
	}
	if window > len(cols) {
		window = len(cols)
	}
	groups := (len(cols) + window - 1) / window
	workers := ex.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > groups {
		workers = groups
	}

	// One Montgomery context per batch (read-only, shared by all
	// workers); a rejected modulus — even, tiny, or beyond the wire
	// width ceiling — selects the big.Int fallback scan.
	mont, _ := NewMont(qs[0].N)

	// Partition GROUPS across workers, as ProcessColumnsExec does, so
	// every worker's column range is a whole number of windows.
	parts := make([]multiPartial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		gLo := w * groups / workers
		gHi := (w + 1) * groups / workers
		lo := gLo * window
		hi := gHi * window
		if hi > len(cols) {
			hi = len(cols)
		}
		wg.Add(1)
		go func(part *multiPartial, lo, hi int) {
			defer wg.Done()
			if mont != nil {
				*part = multiPartialMont(ctx, cols, qs, mont, rows, window, lo, hi)
			} else {
				*part = multiPartialBig(ctx, cols, qs, rows, window, lo, hi)
			}
		}(&parts[w], lo, hi)
	}
	wg.Wait()

	stats := make([]Stats, k)
	var cancelErr error
	for w := range parts {
		for i := 0; i < k; i++ {
			stats[i].ModMuls += parts[w].muls[i]
			stats[i].TableMuls += parts[w].tableMuls[i]
		}
		if parts[w].err != nil && cancelErr == nil {
			cancelErr = parts[w].err
		}
	}
	if cancelErr != nil {
		return nil, stats, cancelErr
	}

	// Recombine the per-partition partials row-wise (workers-1
	// multiplications per row per query, still in Montgomery form on
	// the fast path) and convert the gammas out. The recombine stays
	// under the same cancellation contract as the scan.
	done := ctx.Done()
	dl, hasDL := ctx.Deadline()
	stop := func() bool {
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		return hasDL && !scanNow().Before(dl)
	}
	answers := make([]*Answer, k)
	if mont != nil {
		kw := mont.Words()
		for i := 0; i < k; i++ {
			acc := parts[0].mont[i]
			for w := 1; w < workers; w++ {
				other := parts[w].mont[i]
				for r := 0; r < rows; r++ {
					if r&(cancelCheckRows-1) == 0 && stop() {
						return nil, stats, ctxScanErr(ctx)
					}
					a := acc[r*kw : (r+1)*kw]
					mont.Mul(a, a, other[r*kw:(r+1)*kw])
					stats[i].ModMuls++
				}
			}
			gammas := make([]*big.Int, rows)
			for r := 0; r < rows; r++ {
				if r&(cancelCheckRows-1) == 0 && stop() {
					return nil, stats, ctxScanErr(ctx)
				}
				gammas[r] = mont.FromMont(acc[r*kw : (r+1)*kw])
				stats[i].ModMuls++
				stats[i].TableMuls++
			}
			answers[i] = &Answer{Gammas: gammas}
		}
		return answers, stats, nil
	}
	var prod, quo big.Int
	for i := 0; i < k; i++ {
		gammas := parts[0].big[i]
		for w := 1; w < workers; w++ {
			other := parts[w].big[i]
			for r := 0; r < rows; r++ {
				if r&(cancelCheckRows-1) == 0 && stop() {
					return nil, stats, ctxScanErr(ctx)
				}
				prod.Mul(gammas[r], other[r])
				quo.QuoRem(&prod, qs[0].N, gammas[r])
				stats[i].ModMuls++
			}
		}
		answers[i] = &Answer{Gammas: gammas}
	}
	return answers, stats, nil
}

// multiPartial is one worker's per-query, per-row partial products
// over its column range. Exactly one of mont (Montgomery-form words,
// rows×Words() per query) or big (big.Int gammas per query) is
// populated. A non-nil err means the worker stopped on cancellation;
// partials are then incomplete and must not be recombined, but the
// per-query muls counts still record the work performed.
type multiPartial struct {
	mont      [][]big.Word
	big       [][]*big.Int
	muls      []int
	tableMuls []int
	err       error
}

// multiPartialMont serves columns [lo, hi) for every query of the
// batch in one pass over the bytes, on the Montgomery kernel. Layout:
// each query's accumulators, values, squares, and group table are
// contiguous []big.Word slabs indexed by row (or table pattern) times
// the modulus word width — no per-row big.Int headers, no allocation
// inside the group loop.
func multiPartialMont(ctx context.Context, cols [][]byte, qs []*Query, mont *Mont, rows, window, lo, hi int) multiPartial {
	if mont.Words() == 1 {
		return multiPartialMontWord(ctx, cols, qs, mont, rows, window, lo, hi)
	}
	k := len(qs)
	kw := mont.Words()
	p := multiPartial{
		mont:      make([][]big.Word, k),
		muls:      make([]int, k),
		tableMuls: make([]int, k),
	}
	done := ctx.Done()
	dl, hasDL := ctx.Deadline()
	stop := func() bool {
		if done != nil {
			select {
			case <-done:
				p.err = ctxScanErr(ctx)
				return true
			default:
			}
		}
		if hasDL && !scanNow().Before(dl) {
			p.err = ctxScanErr(ctx)
			return true
		}
		return false
	}
	colBytes := (rows + 7) / 8
	width := hi - lo

	// Convert the range's query values into Montgomery form and square
	// them there — 2 multiplications per column per query, once per
	// batch. Out-of-range values are reduced first (the sequential
	// path's g.Mod tolerates them, so identity demands we do too).
	toMont := func(dst []big.Word, v *big.Int) {
		if v.Sign() < 0 || v.Cmp(mont.nInt) >= 0 {
			v = new(big.Int).Mod(v, mont.nInt)
		}
		w, _ := mont.ToMont(v)
		copy(dst, w)
	}
	mv := make([][]big.Word, k)
	msq := make([][]big.Word, k)
	for i := 0; i < k; i++ {
		mv[i] = make([]big.Word, width*kw)
		msq[i] = make([]big.Word, width*kw)
		for j := 0; j < width; j++ {
			if j&(cancelCheckRows-1) == 0 && stop() {
				return p
			}
			v := mv[i][j*kw : (j+1)*kw]
			toMont(v, qs[i].Values[lo+j])
			mont.Mul(msq[i][j*kw:(j+1)*kw], v, v)
			p.muls[i] += 2
			p.tableMuls[i] += 2
		}
	}

	// Group-major one-pass scan. Per group: transpose the group's
	// database bytes into one pattern per row ONCE (this is the
	// per-byte work the batch shares), then for each query build its
	// 2^g subset-product table and fold table[pats[r]] into its row
	// accumulators. Multiplication is commutative and exact in
	// Montgomery form, so the final products equal the sequential ones.
	acc := make([][]big.Word, k)
	for i := range acc {
		acc[i] = make([]big.Word, rows*kw)
	}
	pats := make([]uint16, rows)
	tbl := make([]big.Word, (1<<window)*kw)
	groups := (width + window - 1) / window
	for gi := 0; gi < groups; gi++ {
		if stop() {
			return p
		}
		start := lo + gi*window
		end := start + window
		if end > hi {
			end = hi
		}
		groupPatterns16(cols, start, end, colBytes, pats)
		for i := 0; i < k; i++ {
			// Table build by doubling: adding column j maps every
			// existing entry pat to pat (times the square) and pat|bit
			// (times the value) — 2·(2^g − 2) multiplications.
			j0 := start - lo
			copy(tbl[0:kw], msq[i][j0*kw:(j0+1)*kw])
			copy(tbl[kw:2*kw], mv[i][j0*kw:(j0+1)*kw])
			size := 2
			for j := start + 1; j < end; j++ {
				jw := (j - lo) * kw
				for pat := 0; pat < size; pat++ {
					src := tbl[pat*kw : (pat+1)*kw]
					d := (pat | size) * kw
					mont.Mul(tbl[d:d+kw], src, mv[i][jw:jw+kw])
					mont.Mul(src, src, msq[i][jw:jw+kw])
					p.muls[i] += 2
					p.tableMuls[i] += 2
				}
				size *= 2
			}
			a := acc[i]
			if gi == 0 {
				// First group: the accumulator IS the table entry (the
				// sequential path's 1·v first step), no multiplication.
				for r := 0; r < rows; r++ {
					t := int(pats[r]) * kw
					copy(a[r*kw:(r+1)*kw], tbl[t:t+kw])
				}
				continue
			}
			for r := 0; r < rows; r++ {
				if r&(cancelCheckRows-1) == 0 && stop() {
					return p
				}
				t := int(pats[r]) * kw
				ar := a[r*kw : (r+1)*kw]
				mont.Mul(ar, ar, tbl[t:t+kw])
				p.muls[i]++
			}
		}
	}
	p.mont = acc
	return p
}

// multiPartialMontWord is multiPartialMont specialized for one-word
// moduli — the shape every demo-sized key takes. The slabs flatten to
// one word per value and every multiplication is the inlined
// montMulWord kernel on register-resident constants: no sub-slicing,
// no method calls, no per-product scratch. Multiplication counts are
// accumulated in bulk per loop (the totals, including the partial
// count a cancelled scan reports, are identical to the generic
// path's per-product increments).
func multiPartialMontWord(ctx context.Context, cols [][]byte, qs []*Query, mont *Mont, rows, window, lo, hi int) multiPartial {
	k := len(qs)
	p := multiPartial{
		mont:      make([][]big.Word, k),
		muls:      make([]int, k),
		tableMuls: make([]int, k),
	}
	done := ctx.Done()
	dl, hasDL := ctx.Deadline()
	stop := func() bool {
		if done != nil {
			select {
			case <-done:
				p.err = ctxScanErr(ctx)
				return true
			default:
			}
		}
		if hasDL && !scanNow().Before(dl) {
			p.err = ctxScanErr(ctx)
			return true
		}
		return false
	}
	colBytes := (rows + 7) / 8
	width := hi - lo
	nW := uint(mont.n[0])
	ninv := uint(mont.n0inv)

	mv := make([][]big.Word, k)
	msq := make([][]big.Word, k)
	for i := 0; i < k; i++ {
		mv[i] = make([]big.Word, width)
		msq[i] = make([]big.Word, width)
		for j := 0; j < width; j++ {
			if j&(cancelCheckRows-1) == 0 && stop() {
				return p
			}
			v := qs[i].Values[lo+j]
			if v.Sign() < 0 || v.Cmp(mont.nInt) >= 0 {
				v = new(big.Int).Mod(v, mont.nInt)
			}
			w, _ := mont.ToMont(v)
			mv[i][j] = w[0]
			msq[i][j] = big.Word(montMulWord(uint(w[0]), uint(w[0]), nW, ninv))
			p.muls[i] += 2
			p.tableMuls[i] += 2
		}
	}

	acc := make([][]big.Word, k)
	for i := range acc {
		acc[i] = make([]big.Word, rows)
	}
	pats := make([]uint16, rows)
	tbl := make([]big.Word, 1<<window)
	groups := (width + window - 1) / window
	for gi := 0; gi < groups; gi++ {
		if stop() {
			return p
		}
		start := lo + gi*window
		end := start + window
		if end > hi {
			end = hi
		}
		groupPatterns16(cols, start, end, colBytes, pats)
		for i := 0; i < k; i++ {
			j0 := start - lo
			tbl[0] = msq[i][j0]
			tbl[1] = mv[i][j0]
			size := 2
			for j := start + 1; j < end; j++ {
				jw := j - lo
				vw, sw := uint(mv[i][jw]), uint(msq[i][jw])
				for pat := 0; pat < size; pat++ {
					s := uint(tbl[pat])
					tbl[pat|size] = big.Word(montMulWord(s, vw, nW, ninv))
					tbl[pat] = big.Word(montMulWord(s, sw, nW, ninv))
				}
				p.muls[i] += 2 * size
				p.tableMuls[i] += 2 * size
				size *= 2
			}
			a := acc[i]
			if gi == 0 {
				for r, pt := range pats {
					a[r] = tbl[pt]
				}
				continue
			}
			for r := 0; r < rows; r++ {
				if r&(cancelCheckRows-1) == 0 && stop() {
					p.muls[i] += r
					return p
				}
				a[r] = big.Word(montMulWord(uint(a[r]), uint(tbl[pats[r]]), nW, ninv))
			}
			p.muls[i] += rows
		}
	}
	p.mont = acc
	return p
}

// multiPartialBig is the fallback one-pass scan for moduli the
// Montgomery kernel rejects (even, tiny, or too wide): the same
// group-major shared-transposition structure, with the allocation-free
// big.Int QuoRem idiom of processPartial doing the multiplying.
func multiPartialBig(ctx context.Context, cols [][]byte, qs []*Query, rows, window, lo, hi int) multiPartial {
	k := len(qs)
	n := qs[0].N
	p := multiPartial{
		big:       make([][]*big.Int, k),
		muls:      make([]int, k),
		tableMuls: make([]int, k),
	}
	done := ctx.Done()
	dl, hasDL := ctx.Deadline()
	stop := func() bool {
		if done != nil {
			select {
			case <-done:
				p.err = ctxScanErr(ctx)
				return true
			default:
			}
		}
		if hasDL && !scanNow().Before(dl) {
			p.err = ctxScanErr(ctx)
			return true
		}
		return false
	}
	colBytes := (rows + 7) / 8
	width := hi - lo

	var prod, quo big.Int
	mulMod := func(dst, a, b *big.Int, i int) {
		prod.Mul(a, b)
		quo.QuoRem(&prod, n, dst)
		p.muls[i]++
	}
	// Values reduced to canonical residues (QuoRem's remainder takes
	// the dividend's sign, so negatives must not reach it) and squared
	// once per column per query.
	vals := make([][]*big.Int, k)
	sq := make([][]*big.Int, k)
	for i := 0; i < k; i++ {
		vals[i] = make([]*big.Int, width)
		sq[i] = make([]*big.Int, width)
		for j := 0; j < width; j++ {
			if j&(cancelCheckRows-1) == 0 && stop() {
				return p
			}
			v := qs[i].Values[lo+j]
			if v.Sign() < 0 || v.Cmp(n) >= 0 {
				v = new(big.Int).Mod(v, n)
			}
			vals[i][j] = v
			sq[i][j] = new(big.Int)
			mulMod(sq[i][j], v, v, i)
			p.tableMuls[i]++
		}
	}

	accs := make([][]big.Int, k)
	for i := range accs {
		accs[i] = make([]big.Int, rows)
	}
	pats := make([]uint16, rows)
	groups := (width + window - 1) / window
	for gi := 0; gi < groups; gi++ {
		if stop() {
			return p
		}
		start := lo + gi*window
		end := start + window
		if end > hi {
			end = hi
		}
		groupPatterns16(cols, start, end, colBytes, pats)
		for i := 0; i < k; i++ {
			table := []*big.Int{sq[i][start-lo], vals[i][start-lo]}
			for j := start + 1; j < end; j++ {
				next := make([]*big.Int, len(table)*2)
				bit := len(table)
				for pat, v := range table {
					t0, t1 := new(big.Int), new(big.Int)
					mulMod(t0, v, sq[i][j-lo], i)
					mulMod(t1, v, vals[i][j-lo], i)
					p.tableMuls[i] += 2
					next[pat] = t0
					next[pat|bit] = t1
				}
				table = next
			}
			a := accs[i]
			if gi == 0 {
				for r := 0; r < rows; r++ {
					a[r].Set(table[pats[r]])
				}
				continue
			}
			for r := 0; r < rows; r++ {
				if r&(cancelCheckRows-1) == 0 && stop() {
					return p
				}
				mulMod(&a[r], &a[r], table[pats[r]], i)
			}
		}
	}
	for i := 0; i < k; i++ {
		gammas := make([]*big.Int, rows)
		for r := range gammas {
			gammas[r] = &accs[i][r]
		}
		p.big[i] = gammas
	}
	return p
}

// groupPatterns16 is groupPatterns for windows wider than 8 columns:
// bit k of pats[r] is column start+k's bit at row r, transposed with
// one sequential scan per column.
func groupPatterns16(cols [][]byte, start, end, colBytes int, pats []uint16) {
	for i := range pats {
		pats[i] = 0
	}
	for k := 0; start+k < end; k++ {
		col := cols[start+k]
		kbit := uint16(1) << k
		for byteIdx := 0; byteIdx < colBytes; byteIdx++ {
			b := col[byteIdx]
			if b == 0 {
				// Zero bytes dominate padded and tombstoned blocks.
				continue
			}
			base := byteIdx * 8
			// MSB-first, matching Matrix.SetColumn's layout.
			if b&0x80 != 0 {
				pats[base] |= kbit
			}
			if b&0x40 != 0 {
				pats[base+1] |= kbit
			}
			if b&0x20 != 0 {
				pats[base+2] |= kbit
			}
			if b&0x10 != 0 {
				pats[base+3] |= kbit
			}
			if b&0x08 != 0 {
				pats[base+4] |= kbit
			}
			if b&0x04 != 0 {
				pats[base+5] |= kbit
			}
			if b&0x02 != 0 {
				pats[base+6] |= kbit
			}
			if b&0x01 != 0 {
				pats[base+7] |= kbit
			}
		}
	}
}

package pir

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math"
	"math/big"
	"sync"
)

// This file is the recursive √n serving path: the standard
// Kushilevitz-Ostrovsky recursion applied once, cutting per-query
// upload from n group elements to ~2√n and the per-query scan from
// one table fold per column to one per √n-sized grid column.
//
// The column store is viewed as a gridRows×gridCols grid of blocks,
// block b living at (b/gridCols, b%gridCols). The client sends TWO
// selection vectors instead of one:
//
//   - Rows (length gridRows) selects the target's grid row. The
//     server answers it per grid column: for grid column gc, the
//     sub-database of blocks {g·gridCols+gc} is a flat KO instance of
//     gridRows columns, yielding rows gammas. Level 1 thus produces a
//     gridCols×rows gamma matrix — the flat answers the client WOULD
//     need, one per grid column, but it only wants one of them.
//   - Cols (length gridCols) selects the grid column — privately —
//     over that matrix: each matrix column is serialized to
//     rows·modBytes bytes (fixed-width big-endian gammas) and the
//     whole matrix is served as a second flat KO instance with
//     gridCols columns. The answer is 8·rows·modBytes gammas: the
//     encryption of the encryption of the target block.
//
// The client peels both layers: Euler-test the level-2 gammas into
// the byte image of the target grid column, cut it into rows
// fixed-width level-1 gammas, and Euler-test those into the block's
// bits. Both levels multiply only uninterpretable group elements, so
// the privacy argument is the flat one applied twice.
//
// Answers must decode to byte-identical blocks to the flat path on
// the same snapshot — that, not gamma equality (the protocols differ),
// is the correctness spine the conformance battery checks.
//
// Partition mode: a query whose Cols vector is empty asks for level 1
// only — the router in internal/cluster scatters such queries to the
// partitions (each with its own Offset/Span window into the global
// grid), multiplies the partial matrices element-wise, and runs
// RecursiveLevel2 locally. Grid cells OUTSIDE a partition's window
// contribute the multiplicative identity — skipped, not squared — so
// the element-wise product across partitions is exactly the
// single-process matrix, value for value.

// maxRecursiveCells bounds both the level-1 gamma matrix
// (gridCols·rows cells) and the level-2 answer (8·rows·modBytes
// gammas), matching the wire decoder's 8·MaxBlockSize answer ceiling:
// a hostile shape may not make the server allocate more than the flat
// path ever could.
const maxRecursiveCells = 8 << 20

// Validation errors of the recursive serving path.
var (
	errRecursiveWidth  = errors.New("pir: recursive width must be positive")
	errRecursiveGrid   = errors.New("pir: grid columns outside [1, min(width, 2·ceil(sqrt(width)))]")
	errRecursiveRows   = errors.New("pir: row selection vector does not match the grid")
	errRecursiveCols   = errors.New("pir: column selection vector does not match the grid")
	errRecursiveOffset = errors.New("pir: recursive offset outside the database width")
	errRecursiveSpan   = errors.New("pir: recursive span exceeds the database width")
	errRecursiveShape  = errors.New("pir: batch queries disagree on recursive shape")
	errRecursiveMatrix = errors.New("pir: level-1 matrix does not match the grid")
	errRecursiveCells  = errors.New("pir: recursive grid exceeds the cell ceiling")
)

// recursiveSpanError is the refusal a partition returns when a query's
// Span claims more blocks than the partition holds — the symptom of a
// router scattering against a re-partitioned cluster with a stale map.
func recursiveSpanError(span, stored int) error {
	return fmt.Errorf("pir: recursive span %d exceeds the %d stored blocks (was the cluster re-partitioned?)", span, stored)
}

// RecursiveQuery is the client→server message of the recursive path.
type RecursiveQuery struct {
	N *big.Int
	// Width is the GLOBAL database width in blocks the grid covers;
	// the grid has gridRows(Width, GridCols)×GridCols cells, the last
	// partial grid row padded with absent cells.
	Width    int
	GridCols int
	// Offset and Span window the grid onto this server's column store:
	// the store's block j is grid cell Offset+j, and Span (0 = auto:
	// everything the store holds within Width) is the exact number of
	// blocks to serve. Single-process serving uses the zero values;
	// the cluster router sets both from its partition map, and a
	// partition holding fewer than Span blocks refuses rather than
	// silently serving cells that belong to its neighbour.
	Offset int
	Span   int
	// Rows selects the target grid row (length gridRows). Cols selects
	// the target grid column (length GridCols) — or is empty for
	// level-1-only partition mode, answered with the raw gamma matrix
	// in grid-column-major order.
	Rows []*big.Int
	Cols []*big.Int
}

// ceilSqrt returns ⌈√n⌉ exactly (the float sqrt is only a seed; the
// integer fixups make word-boundary squares come out right).
func ceilSqrt(n int) int {
	if n <= 0 {
		return 0
	}
	s := int(math.Sqrt(float64(n)))
	for s*s < n {
		s++
	}
	for s > 1 && (s-1)*(s-1) >= n {
		s--
	}
	return s
}

// gridRows returns the grid-row count of a width-block database under
// gridCols grid columns.
func gridRows(width, gridCols int) int {
	return (width + gridCols - 1) / gridCols
}

// RecursiveGrid returns the default grid shape for a width-block
// database: gridCols ≈ √width/2 and gridRows ≈ 2√width. The asymmetry
// is deliberate: level 2 re-serves gridCols columns of rows·modBytes
// bytes each, so its scan cost grows with gridCols while level 1's
// table-build cost grows with gridRows — and level-1 work is amortized
// across the whole batch by the shared transposition, making grid rows
// the cheaper dimension. Upload stays gridRows+gridCols ≤ 2.5·⌈√width⌉
// group elements, within the 3√n budget.
func RecursiveGrid(width int) (rows, cols int) {
	if width <= 0 {
		return 0, 0
	}
	cols = (ceilSqrt(width) + 1) / 2
	if cols < 1 {
		cols = 1
	}
	return gridRows(width, cols), cols
}

// NewRecursiveQuery builds a query retrieving block target out of
// width blocks, under the RecursiveGrid shape: QR everywhere except a
// Jacobi-(+1) QNR at the target's grid row (in Rows) and grid column
// (in Cols).
func (k *ClientKey) NewRecursiveQuery(randSrc io.Reader, width, target int) (*RecursiveQuery, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	if width < 1 {
		return nil, errRecursiveWidth
	}
	if target < 0 || target >= width {
		return nil, errors.New("pir: target block out of range")
	}
	gr, gc := RecursiveGrid(width)
	q := &RecursiveQuery{
		N:        k.N,
		Width:    width,
		GridCols: gc,
		Rows:     make([]*big.Int, gr),
		Cols:     make([]*big.Int, gc),
	}
	tr, tc := target/gc, target%gc
	var err error
	for g := range q.Rows {
		if g == tr {
			q.Rows[g], err = k.randomQNR(randSrc)
		} else {
			q.Rows[g], err = k.randomQR(randSrc)
		}
		if err != nil {
			return nil, err
		}
	}
	for c := range q.Cols {
		if c == tc {
			q.Cols[c], err = k.randomQNR(randSrc)
		} else {
			q.Cols[c], err = k.randomQR(randSrc)
		}
		if err != nil {
			return nil, err
		}
	}
	return q, nil
}

// validateRecursiveShape checks one query's internal consistency —
// the hostile-shape guards every serving entry point runs before
// allocating anything proportional to the claimed dimensions.
func validateRecursiveShape(q *RecursiveQuery) error {
	if q.Width < 1 {
		return errRecursiveWidth
	}
	if q.GridCols < 1 || q.GridCols > q.Width || q.GridCols > 2*ceilSqrt(q.Width) {
		return errRecursiveGrid
	}
	if len(q.Rows) != gridRows(q.Width, q.GridCols) {
		return errRecursiveRows
	}
	if len(q.Cols) != 0 && len(q.Cols) != q.GridCols {
		return errRecursiveCols
	}
	if q.Offset < 0 || q.Offset >= q.Width {
		return errRecursiveOffset
	}
	if q.Span < 0 || q.Offset+q.Span > q.Width {
		return errRecursiveSpan
	}
	return nil
}

// presentRange returns the grid rows in [g0, g1) whose cell at grid
// column gc falls inside the served window [off, off+w): cell (g, gc)
// is global block g·C+gc. Present cells are always one contiguous run
// per (group, grid column) — the window is an interval and g·C+gc is
// monotone in g — which is what lets the scan use the fast whole-group
// path when the run covers the group and skip absent cells entirely
// (contributing the multiplicative identity, NOT a square: identity is
// what makes partition partials combine to the single-process matrix).
func presentRange(g0, g1, gc, C, off, w int) (int, int) {
	if w <= 0 {
		return 0, 0
	}
	lo := g0
	if off > gc {
		if m := (off - gc + C - 1) / C; m > lo {
			lo = m
		}
	}
	last := off + w - 1 - gc
	if last < 0 {
		return 0, 0
	}
	hi := last/C + 1
	if hi > g1 {
		hi = g1
	}
	if hi <= lo {
		return 0, 0
	}
	return lo, hi
}

// ProcessColumnsRecursive answers one recursive query over the column
// store. See ProcessColumnsRecursiveMultiExecCtx for the contract.
func ProcessColumnsRecursive(cols [][]byte, colBytes int, q *RecursiveQuery) (*Answer, Stats, error) {
	return ProcessColumnsRecursiveExecCtx(context.Background(), cols, colBytes, q, Exec{})
}

// ProcessColumnsRecursiveCtx is ProcessColumnsRecursive under a
// context, with the scan-wide cancellation contract of the flat paths.
func ProcessColumnsRecursiveCtx(ctx context.Context, cols [][]byte, colBytes int, q *RecursiveQuery) (*Answer, Stats, error) {
	return ProcessColumnsRecursiveExecCtx(ctx, cols, colBytes, q, Exec{})
}

// ProcessColumnsRecursiveExecCtx is ProcessColumnsRecursive with
// execution tuning and a context.
func ProcessColumnsRecursiveExecCtx(ctx context.Context, cols [][]byte, colBytes int, q *RecursiveQuery, ex Exec) (*Answer, Stats, error) {
	answers, stats, err := ProcessColumnsRecursiveMultiExecCtx(ctx, cols, colBytes, []*RecursiveQuery{q}, ex)
	var st Stats
	if len(stats) > 0 {
		st = stats[0]
	}
	if err != nil {
		return nil, st, err
	}
	return answers[0], st, nil
}

// recShape is the resolved geometry one batch serves under: the grid,
// the window of the store actually served, and the block row count.
type recShape struct {
	gridRows, gridCols int
	offset, window     int // local window: cols[:window] are the served blocks
	rows               int // bit rows per block, colBytes·8
}

// ProcessColumnsRecursiveMultiExecCtx answers every recursive query of
// the batch in one pass per level, sharing the level-1 transposition
// across the batch exactly as ProcessColumnsMultiExecCtx shares the
// flat one. All queries must agree on modulus and shape. Single-word
// moduli run on the montMulWord kernel; everything else falls back to
// a reference composition of the existing flat paths (per-grid-column
// ProcessColumnsExecCtx, then the multi path over the serialized
// matrix), so every modulus the flat paths serve, this serves too.
//
// The store may hold FEWER blocks than Width−Offset: missing cells are
// absent (identity), which is how a partition serves its slice of the
// global grid. It may also hold MORE: with Span set, exactly Span
// blocks are served and a Span beyond the store is refused (the stale
// cluster-map symptom); with Span zero the store is clamped to the
// grid.
//
// Cancellation is all-or-nothing per batch with partial Stats, the
// contract of the flat multi path.
func ProcessColumnsRecursiveMultiExecCtx(ctx context.Context, cols [][]byte, colBytes int, qs []*RecursiveQuery, ex Exec) ([]*Answer, []Stats, error) {
	if len(qs) == 0 {
		return nil, nil, errEmptyBatch
	}
	if len(qs) > MaxMulti {
		return nil, nil, errBatchSize
	}
	q0 := qs[0]
	if err := validateRecursiveShape(q0); err != nil {
		return nil, nil, err
	}
	for _, q := range qs[1:] {
		if q.N.Cmp(q0.N) != 0 {
			return nil, nil, errBatchModulus
		}
		if q.Width != q0.Width || q.GridCols != q0.GridCols ||
			q.Offset != q0.Offset || q.Span != q0.Span ||
			len(q.Rows) != len(q0.Rows) || len(q.Cols) != len(q0.Cols) {
			return nil, nil, errRecursiveShape
		}
	}
	if colBytes <= 0 {
		return nil, nil, errColumnSize
	}
	rows := colBytes * 8
	C := q0.GridCols
	R := len(q0.Rows)
	modBytes := (q0.N.BitLen() + 7) / 8
	if int64(C)*int64(rows) > maxRecursiveCells {
		return nil, nil, errRecursiveCells
	}
	if len(q0.Cols) != 0 && int64(8)*int64(rows)*int64(modBytes) > maxRecursiveCells {
		return nil, nil, errRecursiveCells
	}
	w := q0.Span
	if w > 0 {
		if w > len(cols) {
			return nil, nil, recursiveSpanError(w, len(cols))
		}
	} else {
		w = q0.Width - q0.Offset
		if w > len(cols) {
			w = len(cols)
		}
	}
	for j := 0; j < w; j++ {
		if len(cols[j]) < colBytes {
			return nil, nil, shortColumnError(j, len(cols[j]), colBytes)
		}
	}
	sh := recShape{gridRows: R, gridCols: C, offset: q0.Offset, window: w, rows: rows}

	k := len(qs)
	answers := make([]*Answer, k)
	stats := make([]Stats, k)

	mont, _ := NewMont(q0.N)
	if mont != nil && mont.Words() == 1 {
		// Chunk the batch so at most ~128 MiB of gamma matrices (one
		// word per cell, plus the serialized level-2 image) are live at
		// once; within a chunk level 1 runs all queries in one pass.
		perQuery := int64(C) * int64(rows) * 16
		live := int((128 << 20) / (perQuery + 1))
		if live < 1 {
			live = 1
		}
		if live > 8 {
			live = 8
		}
		for base := 0; base < k; base += live {
			end := base + live
			if end > k {
				end = k
			}
			if err := recursiveChunkWord(ctx, cols, colBytes, qs[base:end], ex, sh, mont,
				answers[base:end], stats[base:end]); err != nil {
				return nil, stats, err
			}
		}
		return answers, stats, nil
	}

	// Reference path: compose the flat serving paths. Slower, but it
	// covers every modulus they do (multi-word, even, hostile), and
	// its answers define what the fast path must equal.
	for i, q := range qs {
		ans, st, err := recursiveRefOne(ctx, cols, colBytes, q, ex, sh)
		stats[i] = st
		if err != nil {
			return nil, stats, err
		}
		answers[i] = ans
	}
	return answers, stats, nil
}

// recursivePartial carries one level-1 worker's per-query work counts;
// the gamma cells themselves land directly in the chunk's shared
// matrices (workers own disjoint grid-column ranges, so no recombine
// multiplication is ever needed — the partition dividend of slicing by
// grid column instead of by group).
type recursivePartial struct {
	muls      []int
	tableMuls []int
	err       error
}

// recursiveChunkWord runs level 1 for one chunk of the batch on the
// one-word Montgomery kernel and finishes each query with level 2 (or
// the raw matrix in partition mode).
func recursiveChunkWord(ctx context.Context, cols [][]byte, colBytes int, qs []*RecursiveQuery, ex Exec, sh recShape, mont *Mont, outAns []*Answer, outSt []Stats) error {
	k := len(qs)
	R, C, rows := sh.gridRows, sh.gridCols, sh.rows
	nW := uint(mont.n[0])
	ninv := uint(mont.n0inv)
	oneM := big.Word(montMulWord(1, uint(mont.rr[0]), nW, ninv))

	done := ctx.Done()
	dl, hasDL := ctx.Deadline()
	stop := func() bool {
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		return hasDL && !scanNow().Before(dl)
	}

	// Row-vector values into Montgomery form, squared there — 2
	// multiplications per grid row per query, the recursive dividend:
	// the flat path pays this per COLUMN (n of them), level 1 per grid
	// row (√n-ish).
	mv1 := make([][]big.Word, k)
	msq1 := make([][]big.Word, k)
	for i := 0; i < k; i++ {
		mv1[i] = make([]big.Word, R)
		msq1[i] = make([]big.Word, R)
		for g := 0; g < R; g++ {
			if g&(cancelCheckRows-1) == 0 && stop() {
				return ctxScanErr(ctx)
			}
			v := qs[i].Rows[g]
			if v.Sign() < 0 || v.Cmp(mont.nInt) >= 0 {
				v = new(big.Int).Mod(v, mont.nInt)
			}
			mw, _ := mont.ToMont(v)
			mv1[i][g] = mw[0]
			msq1[i][g] = big.Word(montMulWord(uint(mw[0]), uint(mw[0]), nW, ninv))
			outSt[i].ModMuls += 2
			outSt[i].TableMuls += 2
		}
	}

	// One gamma matrix per query, grid-column-major: cell gc·rows+r.
	mat := make([][]big.Word, k)
	for i := range mat {
		mat[i] = make([]big.Word, C*rows)
	}

	win := ex.Window
	if win <= 0 || win > MaxBatchWindow {
		// Unlike the flat batch there is no window trade-off to model:
		// one group's tables serve ALL gridCols folds, so the widest
		// window always wins.
		win = MaxBatchWindow
	}
	if win > R {
		win = R
	}
	groups := (R + win - 1) / win
	workers := ex.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > C {
		workers = C
	}

	parts := make([]recursivePartial, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		c0 := wk * C / workers
		c1 := (wk + 1) * C / workers
		wg.Add(1)
		go func(part *recursivePartial, c0, c1 int) {
			defer wg.Done()
			*part = recursiveLevel1Word(ctx, cols, colBytes, sh, win, groups, nW, ninv, oneM, mv1, msq1, mat, c0, c1)
		}(&parts[wk], c0, c1)
	}
	wg.Wait()

	var cancelErr error
	for wkr := range parts {
		for i := 0; i < k; i++ {
			outSt[i].ModMuls += parts[wkr].muls[i]
			outSt[i].TableMuls += parts[wkr].tableMuls[i]
		}
		if parts[wkr].err != nil && cancelErr == nil {
			cancelErr = parts[wkr].err
		}
	}
	if cancelErr != nil {
		return cancelErr
	}

	modBytes := (qs[0].N.BitLen() + 7) / 8
	for i, q := range qs {
		if len(q.Cols) == 0 {
			// Partition mode: the canonical matrix itself is the
			// answer, one FromMont multiplication per cell.
			gammas := make([]*big.Int, C*rows)
			for idx := range gammas {
				if idx&(cancelCheckRows-1) == 0 && stop() {
					return ctxScanErr(ctx)
				}
				gammas[idx] = new(big.Int).SetUint64(uint64(montMulWord(uint(mat[i][idx]), 1, nW, ninv)))
			}
			outSt[i].ModMuls += C * rows
			outSt[i].TableMuls += C * rows
			outAns[i] = &Answer{Gammas: gammas}
			continue
		}
		// Level 2: convert each cell out of Montgomery form straight
		// into its fixed-width big-endian slot and re-serve the image
		// through the flat multi path (Montgomery + shared windows).
		cols2 := make([][]byte, C)
		for gc := 0; gc < C; gc++ {
			buf := make([]byte, rows*modBytes)
			base := gc * rows
			for r := 0; r < rows; r++ {
				if r&(cancelCheckRows-1) == 0 && stop() {
					return ctxScanErr(ctx)
				}
				v := montMulWord(uint(mat[i][base+r]), 1, nW, ninv)
				pos := r * modBytes
				for b := modBytes - 1; b >= 0; b-- {
					buf[pos+b] = byte(v)
					v >>= 8
				}
			}
			cols2[gc] = buf
		}
		outSt[i].ModMuls += C * rows
		outSt[i].TableMuls += C * rows
		ans2, st2, err := recursiveLevel2Cols(ctx, q, cols2, rows, ex)
		outSt[i].ModMuls += st2.ModMuls
		outSt[i].TableMuls += st2.TableMuls
		if err != nil {
			return err
		}
		outAns[i] = ans2
	}
	return nil
}

// recursiveLevel1Word is one worker's level-1 scan over grid columns
// [c0, c1): group-major over grid-row windows, with the group's subset
// tables (built once per group per query, shared by every grid column
// in the range) folded through one transposed pattern buffer per grid
// column. Absent cells — outside the served window — are skipped;
// grid columns no present cell ever touches come out as identity.
func recursiveLevel1Word(ctx context.Context, cols [][]byte, colBytes int, sh recShape, win, groups int, nW, ninv uint, oneM big.Word, mv1, msq1 [][]big.Word, mat [][]big.Word, c0, c1 int) recursivePartial {
	k := len(mv1)
	R, C, rows := sh.gridRows, sh.gridCols, sh.rows
	off, w := sh.offset, sh.window
	p := recursivePartial{muls: make([]int, k), tableMuls: make([]int, k)}
	done := ctx.Done()
	dl, hasDL := ctx.Deadline()
	stop := func() bool {
		if done != nil {
			select {
			case <-done:
				p.err = ctxScanErr(ctx)
				return true
			default:
			}
		}
		if hasDL && !scanNow().Before(dl) {
			p.err = ctxScanErr(ctx)
			return true
		}
		return false
	}

	pats := make([]uint16, rows)
	sub := make([][]byte, win)
	tbl := make([]big.Word, k<<win)
	inited := make([]bool, c1-c0)
	for gi := 0; gi < groups; gi++ {
		if stop() {
			return p
		}
		g0 := gi * win
		g1 := g0 + win
		if g1 > R {
			g1 = R
		}
		gw := g1 - g0
		tblBuilt := false
		for gc := c0; gc < c1; gc++ {
			lo, hi := presentRange(g0, g1, gc, C, off, w)
			if lo >= hi {
				continue
			}
			gcl := gc - c0
			if lo == g0 && hi == g1 {
				// Whole group present: the fast transposed-fold path.
				if !tblBuilt {
					// Build by doubling, same as the flat batch scan.
					// Each worker builds its own copy — duplicated
					// table multiplications are counted where they are
					// performed, and at ≤ 2^win entries they vanish
					// next to the rows·gridCols folds they serve.
					for i := 0; i < k; i++ {
						t := tbl[i<<win:]
						t[0] = msq1[i][g0]
						t[1] = mv1[i][g0]
						size := 2
						for g := g0 + 1; g < g1; g++ {
							vw, sw := uint(mv1[i][g]), uint(msq1[i][g])
							for pat := 0; pat < size; pat++ {
								s := uint(t[pat])
								t[pat|size] = big.Word(montMulWord(s, vw, nW, ninv))
								t[pat] = big.Word(montMulWord(s, sw, nW, ninv))
							}
							p.muls[i] += 2 * size
							p.tableMuls[i] += 2 * size
							size *= 2
						}
					}
					tblBuilt = true
				}
				for t := 0; t < gw; t++ {
					sub[t] = cols[(g0+t)*C+gc-off]
				}
				groupPatterns16(sub[:gw], 0, gw, colBytes, pats)
				for i := 0; i < k; i++ {
					a := mat[i][gc*rows : (gc+1)*rows]
					t := tbl[i<<win:]
					if !inited[gcl] {
						// First touch: the accumulator IS the table
						// entry (the 1·v first step), no multiplication.
						for r, pt := range pats {
							a[r] = t[pt]
						}
						continue
					}
					for r := 0; r < rows; r++ {
						if r&(cancelCheckRows-1) == 0 && stop() {
							p.muls[i] += r
							return p
						}
						a[r] = big.Word(montMulWord(uint(a[r]), uint(t[pats[r]]), nW, ninv))
					}
					p.muls[i] += rows
				}
				inited[gcl] = true
				continue
			}
			// Partial run (window edge): per-cell multiplication over
			// just the present grid rows. Rare — at most two groups per
			// grid column — so the table detour is not worth taking.
			if !inited[gcl] {
				for i := 0; i < k; i++ {
					a := mat[i][gc*rows : (gc+1)*rows]
					for r := range a {
						a[r] = oneM
					}
				}
				inited[gcl] = true
			}
			for g := lo; g < hi; g++ {
				if stop() {
					return p
				}
				col := cols[g*C+gc-off]
				for i := 0; i < k; i++ {
					a := mat[i][gc*rows : (gc+1)*rows]
					vw, sw := uint(mv1[i][g]), uint(msq1[i][g])
					for r := 0; r < rows; r++ {
						if r&(cancelCheckRows-1) == 0 && stop() {
							p.muls[i] += r
							return p
						}
						if col[r>>3]&(1<<(7-uint(r)&7)) != 0 {
							a[r] = big.Word(montMulWord(uint(a[r]), vw, nW, ninv))
						} else {
							a[r] = big.Word(montMulWord(uint(a[r]), sw, nW, ninv))
						}
					}
					p.muls[i] += rows
				}
			}
		}
	}
	// Grid columns with no present cell at all (partition slices, or a
	// store shorter than the grid): identity, in form.
	for gc := c0; gc < c1; gc++ {
		if inited[gc-c0] {
			continue
		}
		for i := 0; i < k; i++ {
			a := mat[i][gc*rows : (gc+1)*rows]
			for r := range a {
				a[r] = oneM
			}
		}
	}
	return p
}

// recursiveRefOne is the reference recursive answer for one query:
// level 1 as gridCols independent flat scans over the strided
// sub-databases, level 2 through RecursiveLevel2. Used for every
// modulus the word kernel rejects, and by the tests as the oracle the
// fast path must match.
func recursiveRefOne(ctx context.Context, cols [][]byte, colBytes int, q *RecursiveQuery, ex Exec, sh recShape) (*Answer, Stats, error) {
	R, C, rows := sh.gridRows, sh.gridCols, sh.rows
	var st Stats
	matrix := make([]*big.Int, C*rows)
	for gc := 0; gc < C; gc++ {
		lo, hi := presentRange(0, R, gc, C, sh.offset, sh.window)
		sub := make([][]byte, hi-lo)
		for t := range sub {
			sub[t] = cols[(lo+t)*C+gc-sh.offset]
		}
		// An empty sub-database (fully absent grid column) serves the
		// width-zero flat path: all-ones gammas, the identity cells.
		ans1, st1, err := ProcessColumnsExecCtx(ctx, sub, colBytes, &Query{N: q.N, Values: q.Rows[lo:hi]}, ex)
		st.ModMuls += st1.ModMuls
		st.TableMuls += st1.TableMuls
		if err != nil {
			return nil, st, err
		}
		copy(matrix[gc*rows:(gc+1)*rows], ans1.Gammas)
	}
	if len(q.Cols) == 0 {
		return &Answer{Gammas: matrix}, st, nil
	}
	ans2, st2, err := RecursiveLevel2(ctx, q, matrix, colBytes, ex)
	st.ModMuls += st2.ModMuls
	st.TableMuls += st2.TableMuls
	if err != nil {
		return nil, st, err
	}
	return ans2, st, nil
}

// RecursiveLevel2 serves the second level of the recursion over an
// already-computed level-1 gamma matrix (grid-column-major,
// gridCols·colBytes·8 cells): each grid column's gammas are laid out
// as fixed-width big-endian bytes and the image is served as a flat
// instance against q.Cols. The cluster router calls this after
// combining partition partials; the in-process paths compose it with
// their own level 1. Matrix cells must be canonical residues
// (out-of-range cells are reduced defensively, matching the flat
// paths' tolerance).
func RecursiveLevel2(ctx context.Context, q *RecursiveQuery, matrix []*big.Int, colBytes int, ex Exec) (*Answer, Stats, error) {
	if len(q.Cols) != q.GridCols {
		return nil, Stats{}, errRecursiveCols
	}
	if colBytes <= 0 {
		return nil, Stats{}, errColumnSize
	}
	rows := colBytes * 8
	C := q.GridCols
	if len(matrix) != C*rows {
		return nil, Stats{}, errRecursiveMatrix
	}
	modBytes := (q.N.BitLen() + 7) / 8
	if int64(8)*int64(rows)*int64(modBytes) > maxRecursiveCells {
		return nil, Stats{}, errRecursiveCells
	}
	cols2 := make([][]byte, C)
	for gc := 0; gc < C; gc++ {
		buf := make([]byte, rows*modBytes)
		for r := 0; r < rows; r++ {
			g := matrix[gc*rows+r]
			if g.Sign() < 0 || g.BitLen() > 8*modBytes {
				g = new(big.Int).Mod(g, q.N)
			}
			g.FillBytes(buf[r*modBytes : (r+1)*modBytes])
		}
		cols2[gc] = buf
	}
	return recursiveLevel2Cols(ctx, q, cols2, rows, ex)
}

// recursiveLevel2Cols serves the serialized level-1 image through the
// flat multi path (Montgomery kernel, shared transposition — a
// single-query batch still gets MaxBatchWindow windows).
func recursiveLevel2Cols(ctx context.Context, q *RecursiveQuery, cols2 [][]byte, rows int, ex Exec) (*Answer, Stats, error) {
	modBytes := (q.N.BitLen() + 7) / 8
	answers, stats, err := ProcessColumnsMultiExecCtx(ctx, cols2, rows*modBytes, []*Query{{N: q.N, Values: q.Cols}}, ex)
	var st Stats
	if len(stats) > 0 {
		st = stats[0]
	}
	if err != nil {
		return nil, st, err
	}
	return answers[0], st, nil
}

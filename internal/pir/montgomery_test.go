package pir

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
)

// refMulMod is the big.Int reference the kernel must match bit for bit.
func refMulMod(a, b, n *big.Int) *big.Int {
	out := new(big.Int).Mul(a, b)
	return out.Mod(out, n)
}

// TestMontRoundTrip: ToMont then FromMont is the identity on canonical
// residues, across modulus widths from one word to several.
func TestMontRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, nBits := range []int{8, 16, 63, 64, 65, 127, 128, 256, 521, 1024} {
		n := randOdd(rng, nBits)
		m, err := NewMont(n)
		if err != nil {
			t.Fatalf("NewMont(%v): %v", n, err)
		}
		for trial := 0; trial < 50; trial++ {
			x := new(big.Int).Rand(rng, n)
			mx, err := m.ToMont(x)
			if err != nil {
				t.Fatalf("ToMont(%v) mod %v: %v", x, n, err)
			}
			back := m.FromMont(mx)
			if back.Cmp(x) != 0 {
				t.Fatalf("round trip mod %v: %v came back as %v", n, x, back)
			}
		}
	}
}

// TestMontMulMatchesBigInt cross-checks the REDC product against the
// big.Int reference for random operands over random odd moduli.
func TestMontMulMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, nBits := range []int{8, 33, 64, 100, 192, 512} {
		for rep := 0; rep < 20; rep++ {
			n := randOdd(rng, nBits)
			m, err := NewMont(n)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 30; trial++ {
				a := new(big.Int).Rand(rng, n)
				b := new(big.Int).Rand(rng, n)
				ma, _ := m.ToMont(a)
				mb, _ := m.ToMont(b)
				dst := make([]big.Word, m.Words())
				m.Mul(dst, ma, mb)
				got := m.FromMont(dst)
				want := refMulMod(a, b, n)
				if got.Cmp(want) != 0 {
					t.Fatalf("mod %v: %v*%v = %v, want %v", n, a, b, got, want)
				}
			}
		}
	}
}

// TestMontEdgeModuli exercises the moduli where the < 2n accumulator
// bound and the final conditional subtract matter most: n just under a
// word boundary (R ≈ n, so values crowd the top of the range), the
// all-ones word, and tiny moduli.
func TestMontEdgeModuli(t *testing.T) {
	w := uint(bits.UintSize)
	edges := []*big.Int{
		big.NewInt(3),
		big.NewInt(5),
		big.NewInt(255),
		// 2^W - 1: the largest single-word modulus, n one short of R.
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), w), big.NewInt(1)),
		// 2^W - 3, 2^(2W) - 1, 2^(2W) - 3: R ≈ n at two words too.
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), w), big.NewInt(3)),
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 2*w), big.NewInt(1)),
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 2*w), big.NewInt(3)),
	}
	rng := rand.New(rand.NewSource(3))
	for _, n := range edges {
		m, err := NewMont(n)
		if err != nil {
			t.Fatalf("NewMont(%v): %v", n, err)
		}
		// The extreme residues plus a random sample.
		cases := []*big.Int{
			big.NewInt(0), big.NewInt(1), big.NewInt(2),
			new(big.Int).Sub(n, big.NewInt(1)),
			new(big.Int).Sub(n, big.NewInt(2)),
		}
		for i := 0; i < 20; i++ {
			cases = append(cases, new(big.Int).Rand(rng, n))
		}
		for _, a := range cases {
			if a.Sign() < 0 || a.Cmp(n) >= 0 {
				continue // n-2 underflows for n=3 etc.
			}
			for _, b := range cases {
				if b.Sign() < 0 || b.Cmp(n) >= 0 {
					continue
				}
				ma, err := m.ToMont(a)
				if err != nil {
					t.Fatal(err)
				}
				mb, err := m.ToMont(b)
				if err != nil {
					t.Fatal(err)
				}
				dst := make([]big.Word, m.Words())
				m.Mul(dst, ma, mb)
				got := m.FromMont(dst)
				want := refMulMod(a, b, n)
				if got.Cmp(want) != 0 {
					t.Fatalf("mod %v: %v*%v = %v, want %v", n, a, b, got, want)
				}
			}
		}
	}
}

// TestMontMulAliasing: dst may alias either operand.
func TestMontMulAliasing(t *testing.T) {
	n := big.NewInt(1000003)
	m, err := NewMont(n)
	if err != nil {
		t.Fatal(err)
	}
	a := big.NewInt(123457)
	b := big.NewInt(987643)
	want := refMulMod(a, b, n)

	ma, _ := m.ToMont(a)
	mb, _ := m.ToMont(b)
	m.Mul(ma, ma, mb) // dst aliases a
	if got := m.FromMont(ma); got.Cmp(want) != 0 {
		t.Fatalf("dst=a aliasing: got %v want %v", got, want)
	}
	ma, _ = m.ToMont(a)
	m.Mul(mb, ma, mb) // dst aliases b
	if got := m.FromMont(mb); got.Cmp(want) != 0 {
		t.Fatalf("dst=b aliasing: got %v want %v", got, want)
	}
	// Squaring in place.
	ma, _ = m.ToMont(a)
	m.Mul(ma, ma, ma)
	if got, want := m.FromMont(ma), refMulMod(a, a, n); got.Cmp(want) != 0 {
		t.Fatalf("in-place square: got %v want %v", got, want)
	}
}

// TestMontRejections: even, tiny, oversize moduli and non-canonical
// inputs are errors, not wrong answers.
func TestMontRejections(t *testing.T) {
	for _, n := range []*big.Int{
		big.NewInt(4), big.NewInt(2), big.NewInt(1024),
		new(big.Int).Lsh(big.NewInt(1), 100), // even, multi-word
	} {
		if _, err := NewMont(n); err == nil {
			t.Errorf("NewMont accepted even modulus %v", n)
		}
	}
	for _, n := range []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(-7)} {
		if _, err := NewMont(n); err == nil {
			t.Errorf("NewMont accepted degenerate modulus %v", n)
		}
	}
	// One word beyond the wire protocol's 8192-bit modulus ceiling.
	wide := new(big.Int).Lsh(big.NewInt(1), 8192)
	wide.Add(wide, big.NewInt(1)) // odd
	if _, err := NewMont(wide); err == nil {
		t.Error("NewMont accepted a modulus beyond maxMontWords")
	}

	n := big.NewInt(1000003)
	m, err := NewMont(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ToMont(big.NewInt(-1)); err == nil {
		t.Error("ToMont accepted a negative value")
	}
	if _, err := m.ToMont(n); err == nil {
		t.Error("ToMont accepted x = n")
	}
	if _, err := m.ToMont(new(big.Int).Add(n, big.NewInt(5))); err == nil {
		t.Error("ToMont accepted x > n")
	}
	if _, err := m.ToMont(big.NewInt(0)); err != nil {
		t.Errorf("ToMont rejected the canonical residue 0: %v", err)
	}
}

// randOdd returns a random odd integer of exactly nBits bits (top and
// bottom bits forced to 1).
func randOdd(rng *rand.Rand, nBits int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(nBits)))
	n.SetBit(n, nBits-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

package pir

import (
	"context"
	"math/big"
	"sync"
)

// This file is the tuned serving path for Kushilevitz-Ostrovsky
// answers. Matrix.Process and ProcessColumns remain the sequential
// reference — one modular multiplication per database bit, the paper's
// Section 5.2 cost model. ProcessColumnsExec computes the exact same
// answer (property-tested byte-identical) with two constant-factor
// reductions that exploit the algebra, not the security assumptions:
//
//   - windowed subset products: columns are grouped w at a time and the
//     2^w possible products of each group (query value at 1-bits,
//     squared value at 0-bits) are precomputed ONCE. Every row then
//     multiplies one table entry per group — ~cols/w multiplications
//     per row instead of cols. The tables cost ~2^(w+1) multiplications
//     per group, amortized over all 8·colBytes rows;
//   - column partitioning: groups are split across a worker pool, each
//     worker computing per-row partial products over its own column
//     range, and the partials are recombined with workers-1
//     multiplications per row.
//
// Both transformations only reassociate the per-row product
// Π_j v_ij mod n; multiplication modulo n is commutative and
// associative and every operand is a canonical residue, so the gammas
// are bit-for-bit the sequential ones. The privacy argument is
// untouched: the server still evaluates the same function of the same
// uninterpretable query values.

// MaxWindow caps the window width: tables hold 2^w entries per group,
// so width 8 already amortizes the per-row work 8x while keeping table
// memory at 32 big.Ints per column.
const MaxWindow = 8

// Exec tunes ProcessColumnsExec. The zero value selects a single
// worker and an automatic window — already several times faster than
// the sequential reference on block-sized matrices, with identical
// answers.
type Exec struct {
	// Workers is the column-partition worker count; values below 2
	// compute on a single goroutine. Workers beyond the number of
	// column groups are not spawned.
	Workers int
	// Window is the column-group width for the precomputed
	// subset-product tables: 0 picks a width from the matrix shape,
	// 1 disables grouping (the per-column multiplication pattern of the
	// sequential path), 2..MaxWindow pin the width.
	Window int
}

// autoWindow picks the window width minimizing the per-column cost
// model (rows/w row multiplications + 2^(w+1)/w table build), bounded
// by MaxWindow and by a table-memory ceiling.
func autoWindow(rows, cols, modBytes int) int {
	best, bestCost := 1, rows+4
	for w := 1; w <= MaxWindow; w++ {
		cost := (rows + 2<<w) / w
		if cost < bestCost {
			best, bestCost = w, cost
		}
	}
	// Keep the tables under ~256 MiB of big.Int payload even for wide
	// moduli over huge stores.
	for best > 1 {
		groups := int64((cols + best - 1) / best)
		if groups<<best*int64(modBytes+32) <= 256<<20 {
			break
		}
		best--
	}
	return best
}

// validateColumns is the shared precondition check of the column
// serving paths.
func validateColumns(cols [][]byte, colBytes int, q *Query) error {
	if len(q.Values) != len(cols) {
		return errQueryWidth
	}
	if colBytes <= 0 {
		return errColumnSize
	}
	for j, col := range cols {
		if len(col) < colBytes {
			return shortColumnError(j, len(col), colBytes)
		}
	}
	return nil
}

// ProcessColumnsExec computes the same server response as
// ProcessColumns — byte-identical gammas for identical data and query
// — through the windowed subset-product tables and, when ex.Workers
// exceeds 1, a column-partitioned worker pool. Stats.ModMuls counts
// the multiplications actually performed, so it reflects the fast
// path's reduced cost rather than the sequential cost model.
func ProcessColumnsExec(cols [][]byte, colBytes int, q *Query, ex Exec) (*Answer, Stats, error) {
	return ProcessColumnsExecCtx(context.Background(), cols, colBytes, q, ex)
}

// ProcessColumnsExecCtx is ProcessColumnsExec under a context: every
// worker checks ctx at each column-group boundary and periodically
// inside the row-accumulation loops, so a cancelled scan stops within
// a bounded slice of work on every goroutine. On cancellation the
// returned Stats count the multiplications actually performed across
// all workers before they stopped, and the error is ctx.Err().
func ProcessColumnsExecCtx(ctx context.Context, cols [][]byte, colBytes int, q *Query, ex Exec) (*Answer, Stats, error) {
	if err := validateColumns(cols, colBytes, q); err != nil {
		return nil, Stats{}, err
	}
	if len(cols) == 0 {
		return ProcessColumnsCtx(ctx, cols, colBytes, q)
	}
	rows := colBytes * 8
	window := ex.Window
	if window <= 0 {
		window = autoWindow(rows, len(cols), (q.N.BitLen()+7)/8)
	}
	if window > MaxWindow {
		window = MaxWindow
	}
	if window > len(cols) {
		window = len(cols)
	}
	groups := (len(cols) + window - 1) / window
	workers := ex.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > groups {
		workers = groups
	}

	// Partition GROUPS (not raw columns) across workers so every
	// worker's column range is a whole number of windows.
	parts := make([]colPartial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		gLo := w * groups / workers
		gHi := (w + 1) * groups / workers
		lo := gLo * window
		hi := gHi * window
		if hi > len(cols) {
			hi = len(cols)
		}
		wg.Add(1)
		go func(part *colPartial, lo, hi int) {
			defer wg.Done()
			*part = processPartial(ctx, cols, q, rows, window, lo, hi)
		}(&parts[w], lo, hi)
	}
	wg.Wait()

	// Recombine: the per-row product over all columns is the product of
	// the per-partition partial products, in partition order. A
	// cancelled worker leaves its muls count but no usable gammas, so
	// sum the work first and report the first worker error if any
	// stopped (the worker's own error, not ctx.Err(): the wall-clock
	// poll can fire while ctx.Err() is still nil).
	st := Stats{}
	var cancelErr error
	for w := 0; w < workers; w++ {
		st.ModMuls += parts[w].muls
		st.TableMuls += parts[w].tableMuls
		if parts[w].err != nil && cancelErr == nil {
			cancelErr = parts[w].err
		}
	}
	if cancelErr != nil {
		return nil, st, cancelErr
	}
	ans := &Answer{Gammas: parts[0].gammas}
	for w := 1; w < workers; w++ {
		for r := 0; r < rows; r++ {
			g := ans.Gammas[r]
			g.Mul(g, parts[w].gammas[r])
			g.Mod(g, q.N)
			st.ModMuls++
		}
	}
	return ans, st, nil
}

// colPartial is one worker's per-row partial products over its column
// range, plus the multiplications it performed. A non-nil err means
// the worker stopped early on context cancellation; gammas are then
// incomplete and must not be recombined.
type colPartial struct {
	gammas    []*big.Int
	muls      int
	tableMuls int
	err       error
}

// cancelCheckRows is how many row accumulations a worker performs
// between context checks — small enough that cancellation lands within
// microseconds at realistic moduli, large enough that the atomic load
// in ctx.Done() stays invisible next to the modular multiplies.
const cancelCheckRows = 512

// processPartial serves columns [lo, hi) of the database: it squares
// the query values, builds one subset-product table per window-sized
// column group, and folds each row's group patterns through the
// tables group-major. The inner loops are deliberately allocation-
// free — a reused QuoRem scratch replaces Mod (which allocates a
// quotient per call) and row accumulators live in one backing array —
// because at demo-sized moduli the allocator, not the multiplier,
// otherwise dominates the scan.
func processPartial(ctx context.Context, cols [][]byte, q *Query, rows, window, lo, hi int) colPartial {
	var p colPartial
	colBytes := (rows + 7) / 8
	done := ctx.Done()
	// Wall-clock deadline poll alongside the Done check: under
	// GOMAXPROCS=1 a busy worker can starve the runtime timer that
	// would close Done (the same fix the core plans received in the
	// deadline work).
	dl, hasDL := ctx.Deadline()
	stop := func() bool {
		if done != nil {
			select {
			case <-done:
				p.err = ctxScanErr(ctx)
				return true
			default:
			}
		}
		if hasDL && !scanNow().Before(dl) {
			p.err = ctxScanErr(ctx)
			return true
		}
		return false
	}
	// Reused scratch: dst = a*b mod N without allocating per call. dst
	// may alias a or b (the product lands in prod first).
	var prod, quo big.Int
	mulMod := func(dst, a, b *big.Int) {
		prod.Mul(a, b)
		quo.QuoRem(&prod, q.N, dst)
		p.muls++
	}
	// Squares once per column, exactly as the sequential path.
	sq := make([]*big.Int, hi-lo)
	for j := range sq {
		v := q.Values[lo+j]
		sq[j] = new(big.Int)
		mulMod(sq[j], v, v)
		p.tableMuls++
	}
	// Group-major accumulation: for each window-sized column group,
	// build the subset-product table (entry pat = product over the
	// group's columns of q_j at 1-bits, q_j^2 at 0-bits), transpose the
	// group's bits into one pattern byte per row with sequential
	// column scans, and fold table[pat] into every row's accumulator.
	// The multiplication order per row is identical to the sequential
	// column order, and every operand is a canonical residue.
	acc := make([]big.Int, rows)
	pats := make([]byte, rows)
	groups := (hi - lo + window - 1) / window
	for gi := 0; gi < groups; gi++ {
		if stop() {
			return p
		}
		start := lo + gi*window
		end := start + window
		if end > hi {
			end = hi
		}
		table := []*big.Int{sq[start-lo], q.Values[start]}
		for j := start + 1; j < end; j++ {
			next := make([]*big.Int, len(table)*2)
			bit := len(table)
			for pat, v := range table {
				t0, t1 := new(big.Int), new(big.Int)
				mulMod(t0, v, sq[j-lo])
				mulMod(t1, v, q.Values[j])
				p.tableMuls += 2
				next[pat] = t0
				next[pat|bit] = t1
			}
			table = next
		}
		groupPatterns(cols, start, end, colBytes, pats)
		if gi == 0 {
			// First group: the accumulator IS the table entry (the
			// sequential path's 1·v first step), no multiplication.
			for r := range acc {
				acc[r].Set(table[pats[r]])
			}
			continue
		}
		for r := range acc {
			if r&(cancelCheckRows-1) == 0 && stop() {
				return p
			}
			mulMod(&acc[r], &acc[r], table[pats[r]])
		}
	}
	p.gammas = make([]*big.Int, rows)
	for r := range p.gammas {
		p.gammas[r] = &acc[r]
	}
	return p
}

// groupPatterns transposes columns [start, end) into one pattern byte
// per row: bit k of pats[r] is column start+k's bit at row r. Each
// column's bytes are scanned once, sequentially — the cache-friendly
// orientation of the bit matrix walk.
func groupPatterns(cols [][]byte, start, end, colBytes int, pats []byte) {
	for i := range pats {
		pats[i] = 0
	}
	for k := 0; start+k < end; k++ {
		col := cols[start+k]
		kbit := byte(1) << k
		for byteIdx := 0; byteIdx < colBytes; byteIdx++ {
			b := col[byteIdx]
			if b == 0 {
				// Zero bytes are the common case in padded and
				// tombstoned blocks; skip the bit spread.
				continue
			}
			base := byteIdx * 8
			// MSB-first, matching Matrix.SetColumn's layout.
			if b&0x80 != 0 {
				pats[base] |= kbit
			}
			if b&0x40 != 0 {
				pats[base+1] |= kbit
			}
			if b&0x20 != 0 {
				pats[base+2] |= kbit
			}
			if b&0x10 != 0 {
				pats[base+3] |= kbit
			}
			if b&0x08 != 0 {
				pats[base+4] |= kbit
			}
			if b&0x04 != 0 {
				pats[base+5] |= kbit
			}
			if b&0x02 != 0 {
				pats[base+6] |= kbit
			}
			if b&0x01 != 0 {
				pats[base+7] |= kbit
			}
		}
	}
}

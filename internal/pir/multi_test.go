package pir

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
	"time"
)

// churnColumns builds a corpus shaped like a block store under churn:
// random live columns interleaved with all-zero tombstones and
// mostly-zero padded tails.
func churnColumns(t *testing.T, seed int64, nCols, colBytes int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]byte, nCols)
	for j := range cols {
		cols[j] = make([]byte, colBytes)
		switch rng.Intn(4) {
		case 0: // tombstoned block: all zero
		case 1: // padded tail: data in the first quarter only
			rng.Read(cols[j][:colBytes/4+1])
		default:
			rng.Read(cols[j])
		}
	}
	return cols
}

// multiBatch builds k queries over one key with distinct targets.
func multiBatch(t *testing.T, k *ClientKey, label string, nCols, count int) []*Query {
	t.Helper()
	qs := make([]*Query, count)
	for i := range qs {
		q, err := k.NewQuery(newDetRand(fmt.Sprintf("%s-%d", label, i)), nCols, i%nCols)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	return qs
}

// TestMultiEvenModulusFallback: a client-chosen even modulus cannot
// enter Montgomery form; the fallback scan must still match the
// sequential reference bit for bit.
func TestMultiEvenModulusFallback(t *testing.T) {
	n := big.NewInt(1 << 20) // even: REDC impossible
	rng := rand.New(rand.NewSource(9))
	const nCols, colBytes = 11, 4
	cols := churnColumns(t, 9, nCols, colBytes)
	qs := make([]*Query, 3)
	for i := range qs {
		q := &Query{N: n, Values: make([]*big.Int, nCols)}
		for j := range q.Values {
			q.Values[j] = new(big.Int).Rand(rng, n)
		}
		qs[i] = q
	}
	got, stats, err := ProcessColumnsMultiExec(cols, colBytes, qs, Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, _, err := ProcessColumns(cols, colBytes, q)
		if err != nil {
			t.Fatal(err)
		}
		for r := range want.Gammas {
			if got[i].Gammas[r].Cmp(want.Gammas[r]) != 0 {
				t.Fatalf("fallback query %d row %d: gamma differs from sequential", i, r)
			}
		}
		if stats[i].ModMuls <= 0 {
			t.Fatalf("fallback query %d: no work recorded", i)
		}
	}
}

// TestMultiValidation: batch-shape preconditions are errors, not wrong
// answers.
func TestMultiValidation(t *testing.T) {
	k := testKey(t)
	cols := churnColumns(t, 11, 4, 2)
	qs := multiBatch(t, k, "val", 4, 2)

	if _, _, err := ProcessColumnsMulti(cols, 2, nil); err != errEmptyBatch {
		t.Errorf("empty batch: got %v", err)
	}
	big1 := make([]*Query, MaxMulti+1)
	for i := range big1 {
		big1[i] = qs[0]
	}
	if _, _, err := ProcessColumnsMulti(cols, 2, big1); err != errBatchSize {
		t.Errorf("oversize batch: got %v", err)
	}
	k2, err := GenerateKey(newDetRand("val-other-key"), 64)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := k2.NewQuery(newDetRand("val-other"), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ProcessColumnsMulti(cols, 2, []*Query{qs[0], q2}); err != errBatchModulus {
		t.Errorf("modulus mismatch: got %v", err)
	}
	narrow, err := k.NewQuery(newDetRand("val-narrow"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ProcessColumnsMulti(cols, 2, []*Query{qs[0], narrow}); err != errBatchWidth {
		t.Errorf("width mismatch: got %v", err)
	}
	if _, _, err := ProcessColumnsMulti(cols[:3], 2, qs); err != errQueryWidth {
		t.Errorf("column mismatch: got %v", err)
	}
	if _, _, err := ProcessColumnsMulti(cols, 0, qs); err != errColumnSize {
		t.Errorf("zero colBytes: got %v", err)
	}
}

// TestMultiStatsPinned pins the batch accounting arithmetic (the
// satellite fix): with a pinned window and one worker, each query's
// TableMuls must be exactly
//
//	2·width (Montgomery conversions + squares)
//	+ Σ_groups 2·(2^g − 2) (table build)
//	+ rows (gamma out-conversions)
//
// and ModMuls must exceed TableMuls by exactly the scan cost
// (groups−1)·rows. Adding workers adds exactly (workers−1)·rows
// recombine muls per query and nothing else.
func TestMultiStatsPinned(t *testing.T) {
	k := testKey(t)
	const nCols, colBytes, batch, window = 11, 4, 3, 3
	rows := colBytes * 8
	cols := churnColumns(t, 13, nCols, colBytes)
	qs := multiBatch(t, k, "stats", nCols, batch)

	tableBuild := 0
	groups := (nCols + window - 1) / window
	for gi := 0; gi < groups; gi++ {
		g := window
		if (gi+1)*window > nCols {
			g = nCols - gi*window
		}
		tableBuild += 2 * ((1 << g) - 2)
	}
	wantTable := 2*nCols + tableBuild + rows
	wantTotal := wantTable + (groups-1)*rows

	_, stats, err := ProcessColumnsMultiExec(cols, colBytes, qs, Exec{Workers: 1, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stats {
		if st.TableMuls != wantTable {
			t.Errorf("query %d: TableMuls = %d, want %d", i, st.TableMuls, wantTable)
		}
		if st.ModMuls != wantTotal {
			t.Errorf("query %d: ModMuls = %d, want %d", i, st.ModMuls, wantTotal)
		}
	}

	// Two workers split the groups; each partition converts only its
	// own columns (still 2·width total across workers) and builds the
	// same tables, and the recombine adds exactly rows muls per query.
	_, stats2, err := ProcessColumnsMultiExec(cols, colBytes, qs, Exec{Workers: 2, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stats2 {
		if st.TableMuls != wantTable {
			t.Errorf("2 workers query %d: TableMuls = %d, want %d", i, st.TableMuls, wantTable)
		}
		// The first group of EACH partition skips its scan muls (the
		// accumulator starts as a table entry), so two workers save
		// rows scan muls and add rows recombine muls: same total.
		if st.ModMuls != wantTotal {
			t.Errorf("2 workers query %d: ModMuls = %d, want %d", i, st.ModMuls, wantTotal)
		}
	}
}

// TestMultiAmortizationSmoke is the CI guardrail against silently
// losing the amortization in a refactor: at batch width 4 on a
// block-shaped corpus, the one-pass multi-query scan must finish
// faster in wall time than the same four queries served one at a time
// through ProcessColumnsExec. The expected margin is several-fold
// (shared transposition + REDC); the assertion demands only an
// outright win to stay robust on noisy CI machines.
func TestMultiAmortizationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke")
	}
	k := testKey(t)
	const nCols, colBytes, batch = 64, 512, 4 // 4096 rows
	cols, _ := randomColumns(t, 23, nCols, colBytes)
	qs := multiBatch(t, k, "amort", nCols, batch)

	perQuery := time.Duration(1<<62 - 1)
	multi := perQuery
	// Best of three to damp scheduler noise.
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for _, q := range qs {
			if _, _, err := ProcessColumnsExec(cols, colBytes, q, Exec{}); err != nil {
				t.Fatal(err)
			}
		}
		if d := time.Since(start); d < perQuery {
			perQuery = d
		}
		start = time.Now()
		got, _, err := ProcessColumnsMulti(cols, colBytes, qs)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < multi {
			multi = d
		}
		if rep == 0 {
			for i, q := range qs {
				want, _, err := ProcessColumns(cols, colBytes, q)
				if err != nil {
					t.Fatal(err)
				}
				for r := range want.Gammas {
					if got[i].Gammas[r].Cmp(want.Gammas[r]) != 0 {
						t.Fatalf("amortized query %d row %d differs from sequential", i, r)
					}
				}
			}
		}
	}
	t.Logf("per-query 4x: %v, multi batch of 4: %v (%.1fx)", perQuery, multi,
		float64(perQuery)/float64(multi))
	if multi >= perQuery {
		t.Fatalf("multi-query batch (%v) not faster than per-query serving (%v)", multi, perQuery)
	}
}

// TestAutoWindowMultiBounds: batch-amortized windows stay in
// [1, MaxBatchWindow], never narrow as the batch grows, and exceed the
// single-query MaxWindow for block-shaped stores once the batch is
// wide enough to pay for the bigger tables.
func TestAutoWindowMultiBounds(t *testing.T) {
	for _, rows := range []int{1, 64, 8192, 1 << 20} {
		for _, cols := range []int{1, 100, 1 << 16} {
			prev := 0
			for _, k := range []int{1, 2, 4, 16, 64} {
				w := autoWindowMulti(rows, cols, 8, k)
				if w < 1 || w > MaxBatchWindow {
					t.Fatalf("autoWindowMulti(%d, %d, 8, %d) = %d out of range", rows, cols, k, w)
				}
				if w < prev {
					t.Fatalf("window narrowed with batch growth: rows=%d cols=%d k=%d: %d -> %d",
						rows, cols, k, prev, w)
				}
				prev = w
			}
		}
	}
	if w := autoWindowMulti(8192, 1000, 8, 8); w <= MaxWindow {
		t.Fatalf("block-shaped batch picked window %d; expected beyond MaxWindow=%d", w, MaxWindow)
	}
}

// benchmarkMulti measures the amortized one-pass batch against k
// independent ProcessColumnsExec runs at a block-store-like shape
// (1 KB columns, 64-bit modulus) — the ratio is the server-side win
// the fetch benchmarks dilute with client work.
func benchmarkMulti(b *testing.B, batch int, multi bool) {
	k, err := GenerateKey(newDetRand("bench-multi"), 64)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const nCols, colBytes = 512, 1024 // 8192 rows
	cols := make([][]byte, nCols)
	for j := range cols {
		cols[j] = make([]byte, colBytes)
		rng.Read(cols[j])
	}
	qs := make([]*Query, batch)
	for i := range qs {
		if qs[i], err = k.NewQuery(newDetRand(fmt.Sprintf("bench-multi-%d", i)), nCols, i); err != nil {
			b.Fatal(err)
		}
	}
	ex := Exec{Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if multi {
			if _, _, err := ProcessColumnsMultiExec(cols, colBytes, qs, ex); err != nil {
				b.Fatal(err)
			}
			continue
		}
		for _, q := range qs {
			if _, _, err := ProcessColumnsExec(cols, colBytes, q, ex); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatch4PerQuery(b *testing.B)  { benchmarkMulti(b, 4, false) }
func BenchmarkBatch4Multi(b *testing.B)     { benchmarkMulti(b, 4, true) }
func BenchmarkBatch16PerQuery(b *testing.B) { benchmarkMulti(b, 16, false) }
func BenchmarkBatch16Multi(b *testing.B)    { benchmarkMulti(b, 16, true) }

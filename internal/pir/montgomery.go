package pir

import (
	"errors"
	"math/big"
	"math/bits"
)

// Montgomery-form modular multiplication: the word-level kernel under
// the multi-query serving path. The sequential paths multiply through
// big.Int's Mul + QuoRem, which costs a quotient computation (and, in
// the general API, an allocation) per product; at the demo-sized
// moduli the benchmarks run, that bookkeeping dominates the actual
// multiply. Montgomery's trick replaces the division with shifts:
// values are carried as x·R mod n (R = 2^(W·k) for k-word n), and the
// REDC reduction interleaves the multiply with additions of multiples
// of n chosen so the low words cancel — word operations only, no
// quotient, no allocation.
//
// The form is a bijection of Z_n, entered and left by two more
// Montgomery multiplications (by R² and by 1), so converting a batch
// in, running the whole scan in-form, and converting the k gammas out
// preserves exact values: every output is the canonical residue the
// big.Int reference computes, bit for bit. This mirrors the fixed-base
// precompute idiom of internal/benaloh: pay a per-batch setup
// (here R², there the window tables) to make the per-operation cost a
// few word multiplies.
//
// REDC requires gcd(n, R) = 1, i.e. an odd modulus. Honest PIR moduli
// are products of two odd primes, but the serving path takes client-
// chosen moduli off the wire, so NewMont rejects even (and tiny)
// moduli with an error and callers fall back to the big.Int path.

// maxMontWords bounds the modulus width the kernel accepts, matching
// the wire decoder's 8192-bit modulus ceiling: the per-product scratch
// lives in a fixed stack buffer, which must cover any modulus that can
// reach the serving path.
const maxMontWords = 8192 / bits.UintSize

var (
	errMontEven  = errors.New("pir: Montgomery form requires an odd modulus")
	errMontSmall = errors.New("pir: modulus too small for Montgomery form")
	errMontWide  = errors.New("pir: modulus too wide for Montgomery form")
	errMontRange = errors.New("pir: value outside the canonical range [0, n)")
)

// Mont is a Montgomery multiplication context for one odd modulus.
// The precomputed constants are read-only after NewMont, so one Mont
// is safely shared by concurrent workers; the per-call scratch lives
// on each caller's stack.
type Mont struct {
	n     []big.Word // the modulus, little-endian words, top word nonzero
	nInt  *big.Int   // the same modulus as a big.Int, for range checks
	n0inv big.Word   // -n^{-1} mod 2^W, the REDC folding constant
	rr    []big.Word // R² mod n: ToMont's multiplier
	one   []big.Word // the plain value 1, FromMont's multiplier
	// setupMuls counts the modular multiplications the constant setup
	// cost (R² is computed by division, not multiplication, so this is
	// zero today; the field keeps the accounting idiom of
	// benaloh.FixedBase.SetupMuls explicit).
	setupMuls int
}

// NewMont precomputes the REDC constants for one modulus. The modulus
// must be odd (gcd(n, 2^W·k) = 1 is what makes the reduction exact),
// at least 3, and within the wire protocol's modulus ceiling.
func NewMont(n *big.Int) (*Mont, error) {
	if n.Sign() <= 0 || n.Cmp(one) == 0 {
		return nil, errMontSmall
	}
	if n.Bit(0) == 0 {
		return nil, errMontEven
	}
	words := n.Bits()
	if len(words) > maxMontWords {
		return nil, errMontWide
	}
	m := &Mont{
		n:    append([]big.Word(nil), words...),
		nInt: new(big.Int).Set(n),
	}
	k := len(m.n)
	// n0inv = -n^{-1} mod 2^W by Newton iteration: for odd n, n·n ≡ 1
	// (mod 8), and every step doubles the number of correct low bits.
	inv := m.n[0] // 3 bits correct
	for i := 0; i < 6; i++ {
		inv *= 2 - m.n[0]*inv
	}
	m.n0inv = -inv
	// R² mod n, computed once per modulus with one big division.
	rr := new(big.Int).Lsh(one, uint(2*k*bits.UintSize))
	rr.Mod(rr, n)
	m.rr = wordsOf(rr, k)
	m.one = make([]big.Word, k)
	m.one[0] = 1
	return m, nil
}

// Words returns the modulus width in machine words; every operand
// slice the kernel touches has exactly this length.
func (m *Mont) Words() int { return len(m.n) }

// SetupMuls reports the modular multiplications spent on the constant
// setup, for callers charging precomputation to their cost models.
func (m *Mont) SetupMuls() int { return m.setupMuls }

// wordsOf lays x out as exactly k little-endian words. x must be
// non-negative and fit.
func wordsOf(x *big.Int, k int) []big.Word {
	w := make([]big.Word, k)
	copy(w, x.Bits())
	return w
}

// bigOf converts a little-endian word slice back to a big.Int.
func bigOf(w []big.Word) *big.Int {
	return new(big.Int).SetBits(append([]big.Word(nil), w...))
}

// ToMont converts a canonical residue into Montgomery form (x·R mod n)
// with one REDC multiplication by R². Non-canonical inputs — negative
// or >= n — are rejected rather than silently reduced: the serving
// paths only ever hold canonical residues, so an out-of-range value
// here is a caller bug that must not become a wrong answer.
func (m *Mont) ToMont(x *big.Int) ([]big.Word, error) {
	if x.Sign() < 0 || x.Cmp(m.nInt) >= 0 {
		return nil, errMontRange
	}
	dst := make([]big.Word, len(m.n))
	m.Mul(dst, wordsOf(x, len(m.n)), m.rr)
	return dst, nil
}

// FromMont converts a Montgomery-form value back to its canonical
// residue with one REDC multiplication by 1.
func (m *Mont) FromMont(a []big.Word) *big.Int {
	dst := make([]big.Word, len(m.n))
	m.Mul(dst, a, m.one)
	return bigOf(dst)
}

// Mul computes dst = a·b·R^{-1} mod n — the Montgomery product — by
// CIOS (coarsely integrated operand scanning): each pass adds one
// word-by-vector product into the accumulator and folds the lowest
// accumulator word away with a multiple of n, so the running value
// stays k+1 words and the division by R happens one word shift at a
// time. The result is the canonical representative (a final compare-
// and-subtract brings the < 2n accumulator under n), which is what
// keeps the fast path byte-identical to the big.Int reference. dst
// may alias a or b. Allocation-free: the accumulator is a fixed
// stack buffer.
func (m *Mont) Mul(dst, a, b []big.Word) {
	k := len(m.n)
	if k == 1 {
		dst[0] = big.Word(montMulWord(uint(a[0]), uint(b[0]), uint(m.n[0]), uint(m.n0inv)))
		return
	}
	var tbuf [maxMontWords + 2]big.Word
	t := tbuf[:k+2]
	for i := range t {
		t[i] = 0
	}
	for i := 0; i < k; i++ {
		// t += a[i]·b, then t += ((t[0]·n0inv) mod 2^W)·n, then t >>= W.
		// The fold constant is chosen so t[0] becomes exactly zero, and
		// the invariant t < 2^W·2n keeps every carry in one word.
		var carry big.Word
		ai := a[i]
		for j := 0; j < k; j++ {
			hi, lo := bits.Mul(uint(ai), uint(b[j]))
			s, c := bits.Add(lo, uint(carry), 0)
			hi += c
			s, c = bits.Add(s, uint(t[j]), 0)
			hi += c
			t[j] = big.Word(s)
			carry = big.Word(hi)
		}
		s, c := bits.Add(uint(t[k]), uint(carry), 0)
		t[k] = big.Word(s)
		t[k+1] += big.Word(c)

		m0 := t[0] * m.n0inv
		carry = 0
		for j := 0; j < k; j++ {
			hi, lo := bits.Mul(uint(m0), uint(m.n[j]))
			s, c := bits.Add(lo, uint(carry), 0)
			hi += c
			s, c = bits.Add(s, uint(t[j]), 0)
			hi += c
			t[j] = big.Word(s)
			carry = big.Word(hi)
		}
		s, c = bits.Add(uint(t[k]), uint(carry), 0)
		t[k] = big.Word(s)
		t[k+1] += big.Word(c)

		copy(t, t[1:])
		t[k+1] = 0
	}
	// t[:k+1] < 2n: subtract n once if needed for the canonical result.
	if montGte(t[:k+1], m.n) {
		var borrow uint
		for j := 0; j < k; j++ {
			s, b := bits.Sub(uint(t[j]), uint(m.n[j]), borrow)
			t[j] = big.Word(s)
			borrow = b
		}
		// t[k] absorbs the final borrow (it is 0 or 1 and the result is
		// non-negative, so this always lands on zero).
		t[k] -= big.Word(borrow)
	}
	copy(dst, t[:k])
}

// montMulWord is REDC for one-word moduli, where the whole CIOS loop
// collapses to two wide multiplications, one fold and a conditional
// subtract. It is a free function of plain uints (not a method slicing
// []big.Word) so the compiler inlines it into the scan loops with the
// modulus and folding constant held in registers — at this width the
// generic Mul's per-call scratch zeroing costs several times the
// reduction itself. The result is the canonical representative, same
// as Mul: a·b + q·n < 2n·2^W, so one subtract suffices.
func montMulWord(a, b, n, n0inv uint) uint {
	hi, lo := bits.Mul(a, b)
	q := lo * n0inv
	nhi, nlo := bits.Mul(q, n)
	// lo + nlo ≡ 0 (mod 2^W) by the choice of q; only its carry
	// survives the shift.
	_, c := bits.Add(lo, nlo, 0)
	u, o := bits.Add(hi, nhi, c)
	if o != 0 || u >= n {
		u -= n
	}
	return u
}

// montGte reports t >= n for a k+1-word accumulator against the k-word
// modulus.
func montGte(t, n []big.Word) bool {
	k := len(n)
	if t[k] != 0 {
		return true
	}
	for j := k - 1; j >= 0; j-- {
		if t[j] != n[j] {
			return t[j] > n[j]
		}
	}
	return true // equal
}

// Package pir implements the single-database computationally-private
// information retrieval protocol of Kushilevitz and Ostrovsky (FOCS 1997),
// the baseline ("PIR") that Section 5.2 of Pang, Ding and Xiao (VLDB 2010)
// benchmarks their private retrieval scheme against.
//
// The server holds a bit matrix. To fetch column y privately, the client
// sends one value per column: quadratic residues (QR) modulo n = p1·p2
// everywhere except a quadratic non-residue (QNR) at column y. For every
// row the server multiplies, squaring the entries at 0-bits, and returns
// one product per row; the product is a QNR exactly when the bit at
// (row, y) is 1. Distinguishing QR from QNR requires the factorization,
// which only the client knows. One protocol run retrieves one full column.
package pir

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var one = big.NewInt(1)

// Validation errors shared by the column serving paths (ProcessColumns
// and ProcessColumnsExec).
var (
	errQueryWidth = errors.New("pir: query width does not match column count")
	errColumnSize = errors.New("pir: nonpositive column size")
)

func shortColumnError(j, got, want int) error {
	return fmt.Errorf("pir: column %d holds %d of %d bytes", j, got, want)
}

// Matrix is the server-side database: a rows×cols bit matrix stored
// row-major, one bit per cell.
type Matrix struct {
	Rows, Cols int
	bits       []byte // ceil(rows*cols/8) bytes
}

// NewMatrix allocates an all-zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, bits: make([]byte, (rows*cols+7)/8)}
}

// Set sets the bit at (r, c) to v.
func (m *Matrix) Set(r, c int, v bool) {
	idx := r*m.Cols + c
	if v {
		m.bits[idx>>3] |= 1 << (idx & 7)
	} else {
		m.bits[idx>>3] &^= 1 << (idx & 7)
	}
}

// Get returns the bit at (r, c).
func (m *Matrix) Get(r, c int) bool {
	idx := r*m.Cols + c
	return m.bits[idx>>3]&(1<<(idx&7)) != 0
}

// SetColumn writes the bytes of data into column c, most significant bit
// of each byte first, starting at row 0. Rows beyond the data stay zero
// (the padding the paper requires for lists shorter than the bucket max).
func (m *Matrix) SetColumn(c int, data []byte) {
	for i, b := range data {
		for j := 0; j < 8; j++ {
			r := i*8 + j
			if r >= m.Rows {
				return
			}
			m.Set(r, c, b&(1<<(7-j)) != 0)
		}
	}
}

// ColumnBytes converts a column bit vector (as returned by Decode) back to
// bytes, MSB first.
func ColumnBytes(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}

// ClientKey holds the client's secret factorization.
type ClientKey struct {
	N      *big.Int
	p1, p2 *big.Int
	// Euler-criterion exponents (p-1)/2, precomputed.
	e1, e2 *big.Int
	// The cached recursive-decode kernel (recursive_decode.go). The
	// atomic makes ClientKey share-but-not-copy; every caller already
	// holds keys by pointer.
	decoderCache
}

// GenerateKey creates a client key with an n of approximately bits bits.
func GenerateKey(randSrc io.Reader, bits int) (*ClientKey, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	if bits < 32 {
		return nil, errors.New("pir: modulus too small")
	}
	p1, err := rand.Prime(randSrc, bits/2)
	if err != nil {
		return nil, err
	}
	p2, err := rand.Prime(randSrc, bits-bits/2)
	if err != nil {
		return nil, err
	}
	if p1.Cmp(p2) == 0 {
		return GenerateKey(randSrc, bits)
	}
	k := &ClientKey{N: new(big.Int).Mul(p1, p2), p1: p1, p2: p2}
	k.e1 = new(big.Int).Rsh(new(big.Int).Sub(p1, one), 1)
	k.e2 = new(big.Int).Rsh(new(big.Int).Sub(p2, one), 1)
	return k, nil
}

// isQR reports whether v is a quadratic residue modulo both prime factors
// (hence modulo n). Requires gcd(v, n) = 1.
func (k *ClientKey) isQR(v *big.Int) bool {
	t := new(big.Int).Exp(v, k.e1, k.p1)
	if t.Cmp(one) != 0 {
		return false
	}
	t.Exp(v, k.e2, k.p2)
	return t.Cmp(one) == 0
}

// randomQR returns a uniform quadratic residue in Z_n^*.
func (k *ClientKey) randomQR(randSrc io.Reader) (*big.Int, error) {
	for {
		v, err := rand.Int(randSrc, k.N)
		if err != nil {
			return nil, err
		}
		if v.Sign() == 0 || new(big.Int).GCD(nil, nil, v, k.N).Cmp(one) != 0 {
			continue
		}
		v.Mul(v, v)
		v.Mod(v, k.N)
		return v, nil
	}
}

// randomQNR returns a uniform QNR with Jacobi symbol +1 (a non-residue
// that is indistinguishable from the QRs without the factorization).
func (k *ClientKey) randomQNR(randSrc io.Reader) (*big.Int, error) {
	for {
		v, err := rand.Int(randSrc, k.N)
		if err != nil {
			return nil, err
		}
		if v.Sign() == 0 || new(big.Int).GCD(nil, nil, v, k.N).Cmp(one) != 0 {
			continue
		}
		if big.Jacobi(v, k.N) == 1 && !k.isQR(v) {
			return v, nil
		}
	}
}

// Query is the client→server message: one group element per column.
type Query struct {
	N      *big.Int
	Values []*big.Int
}

// NewQuery builds a query retrieving column target out of cols columns.
func (k *ClientKey) NewQuery(randSrc io.Reader, cols, target int) (*Query, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	if target < 0 || target >= cols {
		return nil, errors.New("pir: target column out of range")
	}
	q := &Query{N: k.N, Values: make([]*big.Int, cols)}
	for j := 0; j < cols; j++ {
		var err error
		if j == target {
			q.Values[j], err = k.randomQNR(randSrc)
		} else {
			q.Values[j], err = k.randomQR(randSrc)
		}
		if err != nil {
			return nil, err
		}
	}
	return q, nil
}

// Answer is the server→client message: one group element per row.
type Answer struct {
	Gammas []*big.Int
}

// Stats records the server-side work of one Answer computation, for the
// cost models in the Figure 7/8 experiments.
type Stats struct {
	ModMuls int // KeyLen-bit modular multiplications performed
	// TableMuls is the subset of ModMuls spent on per-query setup
	// rather than the row scan: column squares, subset-product table
	// construction, and Montgomery conversions in and out. Batch
	// serving attributes each query's own setup to that query, so
	// summing Stats across a batch never double-counts and
	// ModMuls − TableMuls is exactly the scan cost.
	TableMuls int
}

// Process computes the server response: γ_i = Π_j v_ij with v_ij = q_j²
// when bit (i,j) = 0 and v_ij = q_j when bit (i,j) = 1.
func (m *Matrix) Process(q *Query) (*Answer, Stats, error) {
	if len(q.Values) != m.Cols {
		return nil, Stats{}, errors.New("pir: query width does not match matrix")
	}
	// Precompute the squares once per column instead of once per cell.
	sq := make([]*big.Int, m.Cols)
	var st Stats
	for j, v := range q.Values {
		sq[j] = new(big.Int).Mul(v, v)
		sq[j].Mod(sq[j], q.N)
		st.ModMuls++
		st.TableMuls++
	}
	ans := &Answer{Gammas: make([]*big.Int, m.Rows)}
	tmp := new(big.Int)
	for i := 0; i < m.Rows; i++ {
		g := big.NewInt(1)
		for j := 0; j < m.Cols; j++ {
			if m.Get(i, j) {
				tmp.Set(q.Values[j])
			} else {
				tmp.Set(sq[j])
			}
			g.Mul(g, tmp)
			g.Mod(g, q.N)
			st.ModMuls++
		}
		ans.Gammas[i] = g
	}
	return ans, st, nil
}

// ProcessColumns computes the same server response as Matrix.Process
// over a database given as one byte slice per column (MSB-first within
// each byte, exactly the Matrix.SetColumn layout), without
// materializing a Matrix. Column j must hold at least colBytes bytes;
// the logical matrix has colBytes*8 rows. This is the serving path for
// block stores whose columns are appended and retired independently —
// rebuilding a row-major bit matrix on every append would copy the
// whole database.
func ProcessColumns(cols [][]byte, colBytes int, q *Query) (*Answer, Stats, error) {
	return ProcessColumnsCtx(context.Background(), cols, colBytes, q)
}

// ProcessColumnsCtx is ProcessColumns under a context: the row scan
// checks ctx once per row and stops mid-database when the context is
// cancelled or its deadline expires, returning ctx.Err() with the
// Stats of the work actually performed (the partial accounting lets
// callers charge abandoned queries for the cycles they burned). The
// partially-computed answer is discarded — a half-product leaks
// nothing but is useless to the client.
func ProcessColumnsCtx(ctx context.Context, cols [][]byte, colBytes int, q *Query) (*Answer, Stats, error) {
	if err := validateColumns(cols, colBytes, q); err != nil {
		return nil, Stats{}, err
	}
	sq := make([]*big.Int, len(cols))
	var st Stats
	for j, v := range q.Values {
		sq[j] = new(big.Int).Mul(v, v)
		sq[j].Mod(sq[j], q.N)
		st.ModMuls++
		st.TableMuls++
	}
	rows := colBytes * 8
	ans := &Answer{Gammas: make([]*big.Int, rows)}
	done := ctx.Done()
	// The Done channel alone is not enough: under GOMAXPROCS=1 a busy
	// scan can starve the runtime timer that would close it, so the
	// deadline is also polled against the wall clock (the same fix the
	// core plans received).
	dl, hasDL := ctx.Deadline()
	for r := 0; r < rows; r++ {
		if done != nil {
			select {
			case <-done:
				return nil, st, ctxScanErr(ctx)
			default:
			}
		}
		if hasDL && !scanNow().Before(dl) {
			return nil, st, ctxScanErr(ctx)
		}
		byteIdx, mask := r>>3, byte(1)<<(7-r&7)
		g := big.NewInt(1)
		for j := range cols {
			if cols[j][byteIdx]&mask != 0 {
				g.Mul(g, q.Values[j])
			} else {
				g.Mul(g, sq[j])
			}
			g.Mod(g, q.N)
			st.ModMuls++
		}
		ans.Gammas[r] = g
	}
	return ans, st, nil
}

// Decode recovers the target column's bits from the answer: bit i is 1
// exactly when γ_i is a quadratic non-residue.
func (k *ClientKey) Decode(ans *Answer) []bool {
	bits := make([]bool, len(ans.Gammas))
	for i, g := range ans.Gammas {
		bits[i] = !k.isQR(g)
	}
	return bits
}

// QueryBytes returns the size in bytes of a query with the given number
// of columns under this key (cols group elements of |n| bits).
func (k *ClientKey) QueryBytes(cols int) int {
	return cols * ((k.N.BitLen() + 7) / 8)
}

// AnswerBytes returns the size in bytes of an answer for a matrix with
// the given number of rows (rows group elements of |n| bits).
func (k *ClientKey) AnswerBytes(rows int) int {
	return rows * ((k.N.BitLen() + 7) / 8)
}

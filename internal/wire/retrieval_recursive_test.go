package wire

import (
	"bytes"
	"fmt"
	"math/big"
	"strings"
	"testing"

	"embellish/internal/detrand"
	"embellish/internal/pir"
	"embellish/internal/vbyte"
)

func recursiveTestQueries(t *testing.T, n, width int) []*pir.RecursiveQuery {
	t.Helper()
	key, err := pir.GenerateKey(detrand.New("rec-wire"), 96)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*pir.RecursiveQuery, n)
	for i := range qs {
		qs[i], err = key.NewRecursiveQuery(detrand.New(fmt.Sprintf("rec-wire-%d", i)), width, i%width)
		if err != nil {
			t.Fatal(err)
		}
	}
	return qs
}

func TestPIRRecursiveQueryRoundTrip(t *testing.T) {
	qs := recursiveTestQueries(t, 3, 30)
	var buf bytes.Buffer
	if err := WritePIRRecursiveQuery(&buf, qs); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypePIRRecursiveQuery {
		t.Fatalf("type %d, err %v", typ, err)
	}
	got, err := DecodePIRRecursiveQuery(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("decoded %d queries, want %d", len(got), len(qs))
	}
	for i, q := range got {
		if q.N.Cmp(qs[i].N) != 0 || q.Width != qs[i].Width || q.GridCols != qs[i].GridCols ||
			q.Offset != qs[i].Offset || q.Span != qs[i].Span ||
			len(q.Rows) != len(qs[i].Rows) || len(q.Cols) != len(qs[i].Cols) {
			t.Fatalf("query %d shape mismatch", i)
		}
		for j, v := range q.Rows {
			if v.Cmp(qs[i].Rows[j]) != 0 {
				t.Fatalf("query %d row value %d mismatch", i, j)
			}
		}
		for j, v := range q.Cols {
			if v.Cmp(qs[i].Cols[j]) != 0 {
				t.Fatalf("query %d col value %d mismatch", i, j)
			}
		}
	}
}

func TestPIRRecursivePartitionModeRoundTrip(t *testing.T) {
	// A router's scatter leg drops the column vector and pins the span.
	q := recursiveTestQueries(t, 1, 30)[0]
	q.Cols = nil
	q.Offset, q.Span = 10, 7
	var buf bytes.Buffer
	if err := WritePIRRecursiveQuery(&buf, []*pir.RecursiveQuery{q}); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePIRRecursiveQuery(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Cols) != 0 || got[0].Offset != 10 || got[0].Span != 7 {
		t.Fatalf("partition-mode query did not survive the wire: %+v", got[0])
	}
	if len(got[0].Rows) != len(q.Rows) {
		t.Fatalf("row vector %d long, want %d", len(got[0].Rows), len(q.Rows))
	}
}

func TestPIRRecursiveWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePIRRecursiveQuery(&buf, nil); err == nil {
		t.Fatal("empty batch written")
	}
	qs := recursiveTestQueries(t, 2, 12)
	oversized := make([]*pir.RecursiveQuery, MaxPIRRecursiveBatch+1)
	for i := range oversized {
		oversized[i] = qs[0]
	}
	if err := WritePIRRecursiveQuery(&buf, oversized); err == nil {
		t.Fatal("oversized batch written")
	}
	if err := WritePIRRecursiveQuery(&buf, []*pir.RecursiveQuery{qs[0], nil}); err == nil {
		t.Fatal("nil query written")
	}
	other, err := pir.GenerateKey(detrand.New("rec-wire-other"), 96)
	if err != nil {
		t.Fatal(err)
	}
	oq, err := other.NewRecursiveQuery(detrand.New("rec-ow"), 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePIRRecursiveQuery(&buf, []*pir.RecursiveQuery{qs[0], oq}); err == nil ||
		!strings.Contains(err.Error(), "different modulus") {
		t.Fatalf("mixed-modulus batch written: %v", err)
	}
	shifted := *qs[1]
	shifted.Offset = 3
	if err := WritePIRRecursiveQuery(&buf, []*pir.RecursiveQuery{qs[0], &shifted}); err == nil ||
		!strings.Contains(err.Error(), "shape") {
		t.Fatalf("mixed-shape batch written: %v", err)
	}
}

// encodeRecursive hand-rolls a type-22 body for decoder attacks.
func encodeRecursive(n *big.Int, width, gridCols, offset, span uint64, colMode byte, count uint64, values []*big.Int) []byte {
	var body []byte
	body = appendBig(body, n)
	body = vbyte.Append(body, width)
	body = vbyte.Append(body, gridCols)
	body = vbyte.Append(body, offset)
	body = vbyte.Append(body, span)
	body = append(body, colMode)
	body = vbyte.Append(body, count)
	for _, v := range values {
		body = appendBig(body, v)
	}
	return body
}

func TestPIRRecursiveDecoderRejections(t *testing.T) {
	n := b(35)
	// width 9, gridCols 3 → gridRows 3; full mode needs 3+3 values.
	honest := []*big.Int{b(2), b(3), b(4), b(6), b(8), b(9)}
	if _, err := DecodePIRRecursiveQuery(encodeRecursive(n, 9, 3, 0, 0, 1, 1, honest)); err != nil {
		t.Fatalf("honest hand-rolled body refused: %v", err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"zero width":     encodeRecursive(n, 0, 3, 0, 0, 1, 1, honest),
		"huge width":     encodeRecursive(n, maxPIRBlocks+1, 3, 0, 0, 1, 1, honest),
		"zero gridCols":  encodeRecursive(n, 9, 0, 0, 0, 1, 1, honest),
		"overwide grid":  encodeRecursive(n, 9, 7, 0, 0, 1, 1, honest), // 7 > 2·⌈√9⌉
		"offset outside": encodeRecursive(n, 9, 3, 9, 0, 1, 1, honest),
		"span outside":   encodeRecursive(n, 9, 3, 4, 6, 1, 1, honest),
		"bad colMode":    encodeRecursive(n, 9, 3, 0, 0, 2, 1, honest),
		"zero count":     encodeRecursive(n, 9, 3, 0, 0, 1, 0, nil),
		"over-cap count": encodeRecursive(n, 9, 3, 0, 0, 1, MaxPIRRecursiveBatch+1, honest),
		"forged count":   encodeRecursive(n, 9, 3, 0, 0, 1, 16, honest),
		// Forged width inflates the DERIVED row-vector length: the byte
		// charge must catch it before any allocation.
		"forged width":     encodeRecursive(n, 1<<24, 2048, 0, 0, 0, 1, honest),
		"truncated vector": encodeRecursive(n, 9, 3, 0, 0, 1, 1, honest[:4]),
		"value outside Zn": encodeRecursive(n, 9, 3, 0, 0, 1, 1,
			[]*big.Int{b(2), b(35), b(4), b(6), b(8), b(9)}),
		"zero value": encodeRecursive(n, 9, 3, 0, 0, 1, 1,
			[]*big.Int{b(2), b(0), b(4), b(6), b(8), b(9)}),
		"trailing bytes": append(encodeRecursive(n, 9, 3, 0, 0, 1, 1, honest), 0xFF),
		"wide modulus": encodeRecursive(new(big.Int).Lsh(b(1), 8*maxPIRModulusBytes+8),
			9, 3, 0, 0, 1, 1, honest),
	}
	// Partition mode requires only the row vector; extra column values
	// must be rejected as trailing bytes.
	cases["partition trailing"] = encodeRecursive(n, 9, 3, 0, 0, 0, 1, honest)
	for name, body := range cases {
		if _, err := DecodePIRRecursiveQuery(body); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Partition mode with exactly the row vector decodes.
	if got, err := DecodePIRRecursiveQuery(encodeRecursive(n, 9, 3, 0, 0, 0, 1, honest[:3])); err != nil {
		t.Fatalf("partition-mode body refused: %v", err)
	} else if len(got[0].Cols) != 0 || len(got[0].Rows) != 3 {
		t.Fatalf("partition-mode vectors wrong: %d rows, %d cols", len(got[0].Rows), len(got[0].Cols))
	}
}

package wire

import (
	"bytes"
	"strings"
	"testing"

	"embellish/internal/vbyte"
)

func TestLexiconSyncRoundTrip(t *testing.T) {
	for _, version := range []uint64{0, 1, 1 << 40} {
		var buf bytes.Buffer
		if err := WriteLexiconSync(&buf, version); err != nil {
			t.Fatal(err)
		}
		typ, body, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != TypeLexiconSync {
			t.Fatalf("type = %d, want %d", typ, TypeLexiconSync)
		}
		got, err := DecodeLexiconSync(body)
		if err != nil {
			t.Fatal(err)
		}
		if got != version {
			t.Fatalf("version = %d, want %d", got, version)
		}
	}
	if _, err := DecodeLexiconSync([]byte{0x80, 0x99}); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeLexiconSync(nil); err == nil {
		t.Error("empty body accepted")
	}
}

func TestLexiconRoundTrip(t *testing.T) {
	in := Lexicon{
		Version:    42,
		ScoreSpace: 12,
		KeyBits:    256,
		Stopwords:  true,
		Org:        []byte("EBKT payload bytes for the organization"),
		Lex:        []byte("ELEX payload bytes for the synset db"),
	}
	var buf bytes.Buffer
	if err := WriteLexicon(&buf, in); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeLexicon {
		t.Fatalf("type = %d, want %d", typ, TypeLexicon)
	}
	out, err := DecodeLexicon(body)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != in.Version || out.Current || out.ScoreSpace != in.ScoreSpace ||
		out.KeyBits != in.KeyBits || out.Stopwords != in.Stopwords ||
		!bytes.Equal(out.Org, in.Org) || !bytes.Equal(out.Lex, in.Lex) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestLexiconCurrentRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLexicon(&buf, Lexicon{Version: 9, Current: true}); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeLexicon(body)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Current || out.Version != 9 || out.Org != nil || out.Lex != nil {
		t.Fatalf("current round trip mismatch: %+v", out)
	}
}

func TestLexiconHostileInputs(t *testing.T) {
	// A forged section length must be rejected BEFORE any allocation:
	// claim maxLexiconSection bytes with a near-empty body.
	var body []byte
	body = vbyte.Append(body, 1)   // version
	body = append(body, 1)         // full payload flag
	body = vbyte.Append(body, 12)  // score space
	body = vbyte.Append(body, 256) // key bits
	body = append(body, 0)         // stopwords
	forged := vbyte.Append(body, maxLexiconSection)
	forged = append(forged, 'x')
	if _, err := DecodeLexicon(forged); err == nil {
		t.Error("forged org length accepted")
	}
	// Oversized score-space claim.
	var ss []byte
	ss = vbyte.Append(ss, 1)
	ss = append(ss, 1)
	ss = vbyte.Append(ss, 1<<20)
	if _, err := DecodeLexicon(ss); err == nil {
		t.Error("oversized score space accepted")
	}
	// Out-of-range key bits.
	for _, kb := range []uint64{8, 1 << 20} {
		var b []byte
		b = vbyte.Append(b, 1)
		b = append(b, 1)
		b = vbyte.Append(b, 12)
		b = vbyte.Append(b, kb)
		if _, err := DecodeLexicon(b); err == nil {
			t.Errorf("key bits %d accepted", kb)
		}
	}
	// Zero-length section.
	zero := vbyte.Append(body, 0)
	if _, err := DecodeLexicon(zero); err == nil {
		t.Error("zero-length org section accepted")
	}
	// Bad flags and truncation.
	for _, b := range [][]byte{nil, {0x80}, {0x80, 2}, {0x80, 1, 0x8c, 2}} {
		if _, err := DecodeLexicon(b); err == nil {
			t.Errorf("hostile body %v accepted", b)
		}
	}
	// Trailing bytes after a complete payload.
	good := body
	good = vbyte.Append(good, 3)
	good = append(good, "org"...)
	good = vbyte.Append(good, 3)
	good = append(good, "lex"...)
	if _, err := DecodeLexicon(good); err != nil {
		t.Fatalf("well-formed body rejected: %v", err)
	}
	if _, err := DecodeLexicon(append(append([]byte{}, good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Writer-side refusals: empty sections and oversized sections.
	if err := WriteLexicon(&bytes.Buffer{}, Lexicon{Version: 1, ScoreSpace: 1, Lex: []byte("x")}); err == nil {
		t.Error("writer accepted missing org section")
	}
}

func TestDecoyQueryFramesLikeQuery(t *testing.T) {
	// The decoy frame must be byte-identical to the query frame except
	// for the type byte — that is the indistinguishability contract.
	raw := []byte{0x81, 7, 0x81, 3}
	var dec, q bytes.Buffer
	if err := WriteDecoyQuery(&dec, raw); err != nil {
		t.Fatal(err)
	}
	if err := WriteRaw(&q, TypeQuery, raw); err != nil {
		t.Fatal(err)
	}
	db, qb := dec.Bytes(), q.Bytes()
	if len(db) != len(qb) {
		t.Fatalf("frame lengths differ: %d vs %d", len(db), len(qb))
	}
	if db[4] != TypeDecoyQuery || qb[4] != TypeQuery {
		t.Fatalf("type bytes: %d / %d", db[4], qb[4])
	}
	if !bytes.Equal(db[5:], qb[5:]) {
		t.Fatal("decoy body diverges from query body")
	}
}

func TestRiskAuditRoundTrip(t *testing.T) {
	in := RiskAudit{
		Queries: 10, Decoys: 40, Audited: 9, Skipped: 1,
		RiskSumMicros: 1234567, MaxRiskMicros: 400000,
		Rounds: 10, RoundHits: 3,
		CoherenceGenuineSumMicros: 9_500_000, CoherenceDecoySumMicros: 31_000_000,
	}
	var buf bytes.Buffer
	if err := WriteRiskAudit(&buf, in); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeRiskAudit {
		t.Fatalf("type = %d, want %d", typ, TypeRiskAudit)
	}
	out, err := DecodeRiskAudit(body)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

// TestRiskAuditSchemaEvolution pins the append-only contract: an older
// peer's shorter field list decodes (missing fields zero), a newer
// peer's longer list decodes (extras ignored), and absurd claimed
// counts are refused before any work.
func TestRiskAuditSchemaEvolution(t *testing.T) {
	var short []byte
	short = vbyte.Append(short, 2)
	short = vbyte.Append(short, 5)
	short = vbyte.Append(short, 20)
	a, err := DecodeRiskAudit(short)
	if err != nil {
		t.Fatal(err)
	}
	if a.Queries != 5 || a.Decoys != 20 || a.Audited != 0 {
		t.Fatalf("short decode: %+v", a)
	}

	var long []byte
	long = vbyte.Append(long, 12)
	for i := 0; i < 12; i++ {
		long = vbyte.Append(long, uint64(i+1))
	}
	a, err = DecodeRiskAudit(long)
	if err != nil {
		t.Fatal(err)
	}
	if a.Queries != 1 || a.CoherenceDecoySumMicros != 10 {
		t.Fatalf("long decode: %+v", a)
	}

	var forged []byte
	forged = vbyte.Append(forged, 1<<30)
	if _, err := DecodeRiskAudit(forged); err == nil {
		t.Error("forged field count accepted")
	}
	if _, err := DecodeRiskAudit(nil); err == nil {
		t.Error("empty body accepted")
	}
	var trailing []byte
	trailing = vbyte.Append(trailing, 1)
	trailing = vbyte.Append(trailing, 7)
	trailing = append(trailing, 0x99)
	if _, err := DecodeRiskAudit(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestRiskAuditRequestIsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRiskAuditRequest(&buf); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeRiskAudit || len(body) != 0 {
		t.Fatalf("request frame: type %d, %d body bytes", typ, len(body))
	}
}

func TestStaleLexiconRefusalFrozen(t *testing.T) {
	// The prefix is matched by clients; a rewording is a wire break.
	if StaleLexiconRefusal != "client lexicon is stale" {
		t.Fatalf("StaleLexiconRefusal changed: %q", StaleLexiconRefusal)
	}
	if strings.ContainsAny(StaleLexiconRefusal, "\n\r") {
		t.Fatal("refusal prefix must be single-line")
	}
}

package wire

import (
	"errors"
	"fmt"
	"io"

	"embellish/internal/core"
	"embellish/internal/vbyte"
)

// Privacy-layer messages put the paper's first privacy stage on the
// wire: served embellishment state (the bucket organization and synset
// tables a remote client needs to run Algorithm 3 locally without the
// engine file), decoy-marked cover traffic, and the per-session risk
// audit a server computes while playing the Section 3.1 adversary.
//
// TypeLexiconSync: vbyte version — the client's current lexicon
// version, 0 for an unconditional full fetch. A server answers version
// 0 (or its own version) with TypeLexicon; any OTHER non-zero version
// is answered with a StaleLexiconRefusal-prefixed wire error, so a
// client holding outdated buckets fails loudly instead of embellishing
// against the wrong organization.
// TypeLexicon: vbyte version | flag byte (0 = "already current", no
// payload; 1 = full payload follows) | vbyte scoreSpace | vbyte
// keyBits | stopwords byte | vbyte org-bytes length | EBKT
// organization | vbyte lexicon-bytes length | ELEX database. The two blobs reuse the
// persistence codecs (internal/bucket, internal/wordnet), which
// re-validate their own invariants and crc on decode.
// TypeDecoyQuery: body identical to TypeQuery. The type byte marks the
// query as client-generated cover traffic — for accounting (TypeStats
// decoy counters, capacity planning) and as the ground truth the risk
// audit's ghost-adversary evaluation needs. Servers process it exactly
// like TypeQuery; clients that want the cover unmarked send plain
// TypeQuery frames instead (see docs/THREAT_MODEL.md).
// TypeRiskAudit: sent with an EMPTY body it requests THIS connection's
// session audit; the response is the same type carrying a positional
// vbyte field list like TypeStats (append-only schema).
const (
	TypeLexiconSync = 18
	TypeLexicon     = 19
	TypeDecoyQuery  = 20
	TypeRiskAudit   = 21
)

// StaleLexiconRefusal prefixes the typed error a server sends when a
// client reports a lexicon version that is neither zero nor the
// server's own: the client's bucket organization is out of date and
// every query embellished with it would be malformed. Like the other
// refusal prefixes it is matched by clients and FROZEN; the text after
// it may carry detail (the server's current version) and may change.
const StaleLexiconRefusal = "client lexicon is stale"

// maxLexiconSection bounds each serialized blob in a TypeLexicon
// payload. Both must also fit one frame together, but the per-section
// cap rejects a forged length before any allocation.
const maxLexiconSection = MaxFrame - (1 << 10)

// maxRiskFields caps the field count a TypeRiskAudit peer may claim,
// mirroring maxStatsFields.
const maxRiskFields = 64

// WriteLexiconSync frames a client's lexicon-sync request. version 0
// asks for the full tables; a non-zero version asks the server to
// confirm it is still current.
func WriteLexiconSync(w io.Writer, version uint64) error {
	body := append([]byte{TypeLexiconSync}, vbyte.Append(nil, version)...)
	return writeFrame(w, body)
}

// DecodeLexiconSync parses a TypeLexiconSync body.
func DecodeLexiconSync(body []byte) (uint64, error) {
	v, used, err := vbyte.Decode(body)
	if err != nil {
		return 0, fmt.Errorf("wire: lexicon sync version: %w", err)
	}
	if len(body) != used {
		return 0, errors.New("wire: trailing bytes after lexicon sync")
	}
	return v, nil
}

// Lexicon is the wire form of the served embellishment state.
type Lexicon struct {
	// Version identifies the server's organization+lexicon content; a
	// client re-syncs (or fails loudly) when it changes.
	Version uint64
	// Current is set on the no-payload "you are up to date" answer.
	Current bool
	// ScoreSpace is the engine's Benaloh plaintext-space exponent k
	// (r = 3^k) — the client must generate keys with the same score
	// space or decrypted scores wrap differently than the engine
	// accumulated them. KeyBits is the engine's modulus size, the
	// default for client key generation.
	ScoreSpace, KeyBits int
	// Stopwords reports the engine analyzer's stopword setting; the
	// client must analyze queries identically or its genuine term set
	// diverges from a local engine's.
	Stopwords bool
	// Org is the EBKT-serialized bucket organization; Lex the
	// ELEX-serialized synset database. Both empty when Current.
	Org, Lex []byte
}

// WriteLexicon frames and writes a TypeLexicon response.
func WriteLexicon(w io.Writer, l Lexicon) error {
	var body []byte
	body = append(body, TypeLexicon)
	body = vbyte.Append(body, l.Version)
	if l.Current {
		body = append(body, 0)
		return writeFrame(w, body)
	}
	if len(l.Org) == 0 || len(l.Lex) == 0 {
		return errors.New("wire: lexicon payload missing a section")
	}
	if len(l.Org) > maxLexiconSection || len(l.Lex) > maxLexiconSection {
		return fmt.Errorf("wire: lexicon section exceeds %d bytes", maxLexiconSection)
	}
	body = append(body, 1)
	body = vbyte.Append(body, uint64(l.ScoreSpace))
	body = vbyte.Append(body, uint64(l.KeyBits))
	if l.Stopwords {
		body = append(body, 1)
	} else {
		body = append(body, 0)
	}
	body = vbyte.Append(body, uint64(len(l.Org)))
	body = append(body, l.Org...)
	body = vbyte.Append(body, uint64(len(l.Lex)))
	body = append(body, l.Lex...)
	return writeFrame(w, body)
}

// DecodeLexicon parses a TypeLexicon body. The Org and Lex blobs are
// NOT parsed here — bucket.ReadOrganization and wordnet.ReadDatabase
// own those grammars (with their own caps and crc checks); this
// decoder validates only the envelope.
func DecodeLexicon(body []byte) (Lexicon, error) {
	var l Lexicon
	var used int
	var err error
	l.Version, used, err = vbyte.Decode(body)
	if err != nil {
		return l, fmt.Errorf("wire: lexicon version: %w", err)
	}
	body = body[used:]
	if len(body) < 1 || body[0] > 1 {
		return l, errors.New("wire: lexicon payload flag")
	}
	full := body[0] == 1
	body = body[1:]
	if !full {
		if len(body) != 0 {
			return l, errors.New("wire: trailing bytes after current lexicon")
		}
		l.Current = true
		return l, nil
	}
	ss, used, err := vbyte.Decode(body)
	// ScoreSpace is a small exponent (Options.validate requires >= 1;
	// r = 3^k must fit big-int practice) — a huge claim is forged.
	if err != nil || ss == 0 || ss > 1<<16 {
		return l, fmt.Errorf("wire: lexicon score space: %w", orRange(err))
	}
	l.ScoreSpace = int(ss)
	body = body[used:]
	kb, used, err := vbyte.Decode(body)
	// KeyBits shares the wire ceiling PIR moduli use: 8192 bits.
	if err != nil || kb < 64 || kb > 8192 {
		return l, fmt.Errorf("wire: lexicon key bits: %w", orRange(err))
	}
	l.KeyBits = int(kb)
	body = body[used:]
	if len(body) < 1 || body[0] > 1 {
		return l, errors.New("wire: lexicon stopwords flag")
	}
	l.Stopwords = body[0] == 1
	body = body[1:]
	for _, sec := range []struct {
		name string
		dst  *[]byte
	}{{"organization", &l.Org}, {"lexicon", &l.Lex}} {
		n, used, err := vbyte.Decode(body)
		if err != nil || n == 0 || n > maxLexiconSection || n > uint64(len(body[used:])) {
			return l, fmt.Errorf("wire: %s section length: %w", sec.name, orRange(err))
		}
		body = body[used:]
		*sec.dst = body[:n]
		body = body[n:]
	}
	if len(body) != 0 {
		return l, errors.New("wire: trailing bytes after lexicon")
	}
	return l, nil
}

// WriteDecoyQuery frames an embellished query as decoy-marked cover
// traffic. The body layout is byte-identical to WriteQuery — only the
// type byte differs — so servers answer it through the same path and
// the response is indistinguishable from a genuine query's.
func WriteDecoyQuery(w io.Writer, body []byte) error {
	return WriteRaw(w, TypeDecoyQuery, body)
}

// WriteQueryDecoy encodes an embellished query and frames it with the
// decoy type byte — the query-carrying counterpart of WriteDecoyQuery
// for callers holding a decoded query rather than raw body bytes.
func WriteQueryDecoy(w io.Writer, q *core.Query) error {
	return writeQueryTyped(w, TypeDecoyQuery, q)
}

// RiskAudit is the wire form of one connection's session audit: what
// the server, playing the Section 3.1 adversary, could infer from the
// query stream it observed. Fields are encoded positionally as vbytes
// in declaration order — APPEND-ONLY, like Stats. Risk values are
// fixed-point micro-units (value * 1e6, rounded).
type RiskAudit struct {
	// Queries counts genuine-marked query frames observed on this
	// session (batch members included); Decoys the decoy-marked ones.
	Queries, Decoys uint64
	// Audited counts queries the risk model scored; Skipped the ones it
	// could not (candidate space over the work cap, or a term stream
	// that does not decompose into whole buckets — i.e. not an
	// embellished query).
	Audited, Skipped uint64
	// RiskSumMicros accumulates the adversary's expected similarity
	// between two posterior draws for each audited query (micro-units);
	// MaxRiskMicros is the worst single query. RiskSumMicros/Audited is
	// the session's mean per-query risk.
	RiskSumMicros, MaxRiskMicros uint64
	// Rounds counts decoy rounds (one or more decoy-marked frames
	// followed by a genuine frame); RoundHits how often the coherence
	// adversary picked the genuine query out of the round — the
	// TrackMeNot success-rate experiment run live on the wire.
	Rounds, RoundHits uint64
	// CoherenceGenuineSumMicros and CoherenceDecoySumMicros accumulate
	// the observed per-frame term coherence (mean pairwise semantic
	// distance over a capped term prefix) for genuine and decoy frames —
	// the statistical handle the paper says breaks ghost cover.
	CoherenceGenuineSumMicros, CoherenceDecoySumMicros uint64
}

// fields returns the positional encoding order. Append-only.
func (a *RiskAudit) fields() []*uint64 {
	return []*uint64{
		&a.Queries, &a.Decoys,
		&a.Audited, &a.Skipped,
		&a.RiskSumMicros, &a.MaxRiskMicros,
		&a.Rounds, &a.RoundHits,
		&a.CoherenceGenuineSumMicros, &a.CoherenceDecoySumMicros,
	}
}

// WriteRiskAuditRequest frames the client's empty audit request.
func WriteRiskAuditRequest(w io.Writer) error {
	return writeFrame(w, []byte{TypeRiskAudit})
}

// WriteRiskAudit frames and writes the server's session-audit response.
func WriteRiskAudit(w io.Writer, a RiskAudit) error {
	fs := a.fields()
	var body []byte
	body = append(body, TypeRiskAudit)
	body = vbyte.Append(body, uint64(len(fs)))
	for _, f := range fs {
		body = vbyte.Append(body, *f)
	}
	return writeFrame(w, body)
}

// DecodeRiskAudit parses a non-empty TypeRiskAudit body. Like
// DecodeStats it tolerates longer field lists (a newer server) and
// shorter ones (an older server), bounding the claimed count before
// any decode work.
func DecodeRiskAudit(body []byte) (RiskAudit, error) {
	var a RiskAudit
	n, used, err := vbyte.Decode(body)
	if err != nil || n == 0 || n > maxRiskFields {
		return a, fmt.Errorf("wire: risk audit field count: %w", orRange(err))
	}
	body = body[used:]
	fs := a.fields()
	for i := 0; i < int(n); i++ {
		v, used, err := vbyte.Decode(body)
		if err != nil {
			return RiskAudit{}, fmt.Errorf("wire: risk audit field %d: %w", i, err)
		}
		body = body[used:]
		if i < len(fs) {
			*fs[i] = v
		}
	}
	if len(body) != 0 {
		return RiskAudit{}, errors.New("wire: trailing bytes after risk audit")
	}
	return a, nil
}

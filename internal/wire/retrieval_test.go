package wire

import (
	"bytes"
	"math/big"
	"testing"

	"embellish/internal/detrand"
	"embellish/internal/docstore"
	"embellish/internal/pir"
)

func testParams() docstore.Params {
	return docstore.Params{
		BlockSize: 64,
		NumBlocks: 7,
		Exts: []docstore.Extent{
			{First: 0, Blocks: 2, Length: 100},
			{First: 2, Blocks: 1, Length: 33, Deleted: true},
			{First: 3, Blocks: 4, Length: 200},
		},
	}
}

func roundTripFrame(t *testing.T, write func(w *bytes.Buffer) error, wantType byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wantType {
		t.Fatalf("type %d, want %d", typ, wantType)
	}
	return body
}

func TestPIRParamsRoundTrip(t *testing.T) {
	want := testParams()
	body := roundTripFrame(t, func(w *bytes.Buffer) error { return WritePIRParams(w, want) }, TypePIRParams)
	got, err := DecodePIRParams(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockSize != want.BlockSize || got.NumBlocks != want.NumBlocks || len(got.Exts) != len(want.Exts) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range want.Exts {
		if got.Exts[i] != want.Exts[i] {
			t.Fatalf("extent %d: %+v, want %+v", i, got.Exts[i], want.Exts[i])
		}
	}
	// The empty request frame reads back as TypePIRParams with no body.
	reqBody := roundTripFrame(t, func(w *bytes.Buffer) error { return WritePIRParamsRequest(w) }, TypePIRParams)
	if len(reqBody) != 0 {
		t.Fatalf("params request carries %d body bytes", len(reqBody))
	}
}

func TestPIRParamsRejectsBadExtents(t *testing.T) {
	for name, p := range map[string]docstore.Params{
		"outside block array": {BlockSize: 8, NumBlocks: 2, Exts: []docstore.Extent{{First: 1, Blocks: 2, Length: 10}}},
		"length over blocks":  {BlockSize: 8, NumBlocks: 4, Exts: []docstore.Extent{{First: 0, Blocks: 1, Length: 9}}},
	} {
		var buf bytes.Buffer
		if err := WritePIRParams(&buf, p); err != nil {
			t.Fatal(err)
		}
		_, body, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodePIRParams(body); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestPIRQueryRoundTrip(t *testing.T) {
	key, err := pir.GenerateKey(detrand.New("pirq"), 96)
	if err != nil {
		t.Fatal(err)
	}
	want, err := key.NewQuery(detrand.New("pirq-vals"), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	body := roundTripFrame(t, func(w *bytes.Buffer) error { return WritePIRQuery(w, want) }, TypePIRQuery)
	got, err := DecodePIRQuery(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(want.N) != 0 || len(got.Values) != len(want.Values) {
		t.Fatalf("query shape mismatch")
	}
	for i := range want.Values {
		if got.Values[i].Cmp(want.Values[i]) != 0 {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestPIRQueryRejectsHostileInputs(t *testing.T) {
	key, err := pir.GenerateKey(detrand.New("pirq-bad"), 96)
	if err != nil {
		t.Fatal(err)
	}
	q, err := key.NewQuery(detrand.New("pirq-bad-vals"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(q *pir.Query) []byte {
		var buf bytes.Buffer
		if err := WritePIRQuery(&buf, q); err != nil {
			t.Fatal(err)
		}
		_, body, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	// Value outside Z_n.
	bad := &pir.Query{N: q.N, Values: []*big.Int{big.NewInt(0).Set(q.N), q.Values[1], q.Values[2]}}
	if _, err := DecodePIRQuery(encode(bad)); err == nil {
		t.Fatal("value >= N accepted")
	}
	// Oversized modulus: CPU-exhaustion gate.
	huge := new(big.Int).Lsh(big.NewInt(1), 8*maxPIRModulusBytes+1)
	bad = &pir.Query{N: huge, Values: []*big.Int{big.NewInt(2)}}
	if _, err := DecodePIRQuery(encode(bad)); err == nil {
		t.Fatal("oversized modulus accepted")
	}
	// Trailing garbage.
	if _, err := DecodePIRQuery(append(encode(q), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestPIRAnswerRoundTrip(t *testing.T) {
	want := &pir.Answer{Gammas: []*big.Int{big.NewInt(17), big.NewInt(1), big.NewInt(123456789)}}
	body := roundTripFrame(t, func(w *bytes.Buffer) error { return WritePIRAnswer(w, want) }, TypePIRResponse)
	got, err := DecodePIRAnswer(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Gammas) != len(want.Gammas) {
		t.Fatalf("%d gammas, want %d", len(got.Gammas), len(want.Gammas))
	}
	for i := range want.Gammas {
		if got.Gammas[i].Cmp(want.Gammas[i]) != 0 {
			t.Fatalf("gamma %d differs", i)
		}
	}
	if _, err := DecodePIRAnswer(body[:len(body)-1]); err == nil {
		t.Fatal("truncated answer accepted")
	}
}

// TestPIRFetchOverWire runs the whole PIR exchange through the wire
// codecs: params, per-block queries and answers, byte-exact decode.
func TestPIRFetchOverWire(t *testing.T) {
	s, err := docstore.New(8)
	if err != nil {
		t.Fatal(err)
	}
	docs := [][]byte{
		[]byte("the first document"),
		[]byte("dead"),
		[]byte("the third, rather longer, document body"),
	}
	for i, d := range docs {
		if err := s.Add(i, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()

	var wireBuf bytes.Buffer
	if err := WritePIRParams(&wireBuf, sn.Params()); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&wireBuf)
	if err != nil {
		t.Fatal(err)
	}
	params, err := DecodePIRParams(body)
	if err != nil {
		t.Fatal(err)
	}

	key, err := pir.GenerateKey(detrand.New("wire-fetch"), 128)
	if err != nil {
		t.Fatal(err)
	}
	ext := params.Exts[2]
	var got []byte
	for b := 0; b < int(ext.Blocks); b++ {
		q, err := key.NewQuery(detrand.New("wire-fetch-q"), params.NumBlocks, int(ext.First)+b)
		if err != nil {
			t.Fatal(err)
		}
		wireBuf.Reset()
		if err := WritePIRQuery(&wireBuf, q); err != nil {
			t.Fatal(err)
		}
		_, qbody, err := ReadMessage(&wireBuf)
		if err != nil {
			t.Fatal(err)
		}
		sq, err := DecodePIRQuery(qbody)
		if err != nil {
			t.Fatal(err)
		}
		ans, _, err := sn.Answer(sq)
		if err != nil {
			t.Fatal(err)
		}
		wireBuf.Reset()
		if err := WritePIRAnswer(&wireBuf, ans); err != nil {
			t.Fatal(err)
		}
		_, abody, err := ReadMessage(&wireBuf)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := DecodePIRAnswer(abody)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pir.ColumnBytes(key.Decode(ca))[:params.BlockSize]...)
	}
	if !bytes.Equal(got[:ext.Length], docs[2]) {
		t.Fatalf("fetched %q, want %q", got[:ext.Length], docs[2])
	}
	// The deleted document's extent says so; a client must refuse it.
	if !params.Exts[1].Deleted {
		t.Fatal("deleted document not flagged in params")
	}
}

package wire

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"embellish/internal/docstore"
	"embellish/internal/pir"
	"embellish/internal/vbyte"
)

// Retrieval messages carry the second privacy stage over the wire:
// after ranking privately, the client fetches the winning documents
// through Kushilevitz-Ostrovsky PIR without revealing which ones won.
// A server exposes them only behind the serving layer's AllowRetrieval
// flag.
//
// TypePIRParams: sent with an EMPTY body it is the client's request;
// the response body is the public block mapping — block size vbyte,
// block count vbyte, document count vbyte, then per document: first
// block vbyte, block count vbyte, byte length vbyte, content crc32
// vbyte, deleted byte.
// TypePIRQuery: modulus big | value count vbyte | one group element
// per block column.
// TypePIRResponse: gamma count vbyte | one group element per matrix
// row (8 per block byte).

// Retrieval message types (9-11; 1-5 are the ranking protocol, 6-8
// admin).
const (
	TypePIRParams   = 9
	TypePIRQuery    = 10
	TypePIRResponse = 11
)

// Retrieval caps on attacker-controlled sizes.
const (
	// maxPIRDocs and maxPIRBlocks bound the params table.
	maxPIRDocs   = 1 << 26
	maxPIRBlocks = 1 << 26
	// maxPIRModulusBytes bounds the client-chosen modulus: every server
	// answer costs 8*blockSize*cols modular multiplications at this
	// width, so an over-wide modulus is a CPU-exhaustion vector long
	// before it is a bandwidth one. 8192-bit moduli are far beyond the
	// paper's cost model.
	maxPIRModulusBytes = 1 << 10
)

// WritePIRParamsRequest frames the client's empty params request.
func WritePIRParamsRequest(w io.Writer) error {
	return writeFrame(w, []byte{TypePIRParams})
}

// WritePIRParams frames and writes the server's block mapping.
func WritePIRParams(w io.Writer, p docstore.Params) error {
	var body []byte
	body = append(body, TypePIRParams)
	body = vbyte.Append(body, uint64(p.BlockSize))
	body = vbyte.Append(body, uint64(p.NumBlocks))
	body = vbyte.Append(body, uint64(len(p.Exts)))
	for _, ext := range p.Exts {
		body = vbyte.Append(body, uint64(ext.First))
		body = vbyte.Append(body, uint64(ext.Blocks))
		body = vbyte.Append(body, uint64(ext.Length))
		body = vbyte.Append(body, uint64(ext.Crc))
		if ext.Deleted {
			body = append(body, 1)
		} else {
			body = append(body, 0)
		}
	}
	return writeFrame(w, body)
}

// DecodePIRParams parses a TypePIRParams response body.
func DecodePIRParams(body []byte) (docstore.Params, error) {
	var p docstore.Params
	blockSize, used, err := vbyte.Decode(body)
	if err != nil || blockSize < 1 || blockSize > docstore.MaxBlockSize {
		return p, fmt.Errorf("wire: params block size: %w", orRange(err))
	}
	body = body[used:]
	numBlocks, used, err := vbyte.Decode(body)
	if err != nil || numBlocks > maxPIRBlocks {
		return p, fmt.Errorf("wire: params block count: %w", orRange(err))
	}
	body = body[used:]
	nDocs, used, err := vbyte.Decode(body)
	// Each document costs at least 4 body bytes, so a count past the
	// remaining body is forged — reject before allocating.
	if err != nil || nDocs > maxPIRDocs || nDocs*4 > uint64(len(body)) {
		return p, fmt.Errorf("wire: params document count: %w", orRange(err))
	}
	body = body[used:]
	p.BlockSize = int(blockSize)
	p.NumBlocks = int(numBlocks)
	p.Exts = make([]docstore.Extent, nDocs)
	for i := range p.Exts {
		var fields [4]uint64
		for f := range fields {
			v, used, err := vbyte.Decode(body)
			if err != nil {
				return p, fmt.Errorf("wire: params document %d: %w", i, err)
			}
			fields[f] = v
			body = body[used:]
		}
		first, blocks, length, crc := fields[0], fields[1], fields[2], fields[3]
		if first+blocks < first || first+blocks > numBlocks {
			return p, fmt.Errorf("wire: params document %d extent outside the block array", i)
		}
		if length >= 1<<31 || length > blocks*blockSize {
			return p, fmt.Errorf("wire: params document %d length %d exceeds its blocks", i, length)
		}
		if crc > 1<<32-1 {
			return p, fmt.Errorf("wire: params document %d checksum out of range", i)
		}
		if len(body) < 1 || body[0] > 1 {
			return p, fmt.Errorf("wire: params document %d deleted flag", i)
		}
		p.Exts[i] = docstore.Extent{
			First:   uint32(first),
			Blocks:  uint32(blocks),
			Length:  uint32(length),
			Crc:     uint32(crc),
			Deleted: body[0] == 1,
		}
		body = body[1:]
	}
	if len(body) != 0 {
		return p, errors.New("wire: trailing bytes after params")
	}
	return p, nil
}

// WritePIRQuery frames and writes one PIR block query.
func WritePIRQuery(w io.Writer, q *pir.Query) error {
	if q == nil || q.N == nil || len(q.Values) == 0 {
		return errors.New("wire: nil PIR query")
	}
	var body []byte
	body = append(body, TypePIRQuery)
	body = appendBig(body, q.N)
	body = vbyte.Append(body, uint64(len(q.Values)))
	for _, v := range q.Values {
		body = appendBig(body, v)
	}
	return writeFrame(w, body)
}

// DecodePIRQuery parses a TypePIRQuery body. Every value is bounded to
// (0, N) and the modulus width is capped: the answer computation costs
// one |N|-bit multiplication per database bit, so the decoder is the
// server's CPU-exhaustion gate.
func DecodePIRQuery(body []byte) (*pir.Query, error) {
	n, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: PIR modulus: %w", err)
	}
	if n.Sign() <= 0 || (n.BitLen()+7)/8 > maxPIRModulusBytes {
		return nil, errors.New("wire: PIR modulus out of range")
	}
	count, used, err := vbyte.Decode(body)
	// Each value costs at least 2 body bytes (length prefix + one
	// byte), so a count past half the remaining body is forged — reject
	// before allocating the pointer slice.
	if err != nil || count == 0 || count > maxPIRBlocks || count*2 > uint64(len(body)) {
		return nil, fmt.Errorf("wire: PIR value count: %w", orRange(err))
	}
	body = body[used:]
	q := &pir.Query{N: n, Values: make([]*big.Int, count)}
	for i := range q.Values {
		v, rest, err := decodeBig(body)
		if err != nil {
			return nil, fmt.Errorf("wire: PIR value %d: %w", i, err)
		}
		if v.Sign() <= 0 || v.Cmp(n) >= 0 {
			return nil, fmt.Errorf("wire: PIR value %d outside Z_n", i)
		}
		q.Values[i] = v
		body = rest
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing bytes after PIR query")
	}
	return q, nil
}

// WritePIRAnswer frames and writes the server's PIR answer.
func WritePIRAnswer(w io.Writer, a *pir.Answer) error {
	body, err := appendAnswer([]byte{TypePIRResponse}, a)
	if err != nil {
		return err
	}
	return writeFrame(w, body)
}

// appendAnswer encodes one PIR answer (gamma count + gammas) — the
// shared tail of TypePIRResponse and TypePIRBatchResponse bodies.
func appendAnswer(body []byte, a *pir.Answer) ([]byte, error) {
	if a == nil || len(a.Gammas) == 0 {
		return nil, errors.New("wire: nil PIR answer")
	}
	body = vbyte.Append(body, uint64(len(a.Gammas)))
	for _, g := range a.Gammas {
		body = appendBig(body, g)
	}
	return body, nil
}

// DecodePIRAnswer parses a TypePIRResponse body.
func DecodePIRAnswer(body []byte) (*pir.Answer, error) {
	count, used, err := vbyte.Decode(body)
	// A gamma costs at least 1 body byte (its length prefix), so a
	// count past the remaining body is forged — reject before
	// allocating the pointer slice.
	if err != nil || count == 0 || count > 8*docstore.MaxBlockSize || count > uint64(len(body)) {
		return nil, fmt.Errorf("wire: PIR gamma count: %w", orRange(err))
	}
	body = body[used:]
	a := &pir.Answer{Gammas: make([]*big.Int, count)}
	for i := range a.Gammas {
		g, rest, err := decodeBig(body)
		if err != nil {
			return nil, fmt.Errorf("wire: PIR gamma %d: %w", i, err)
		}
		a.Gammas[i] = g
		body = rest
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing bytes after PIR answer")
	}
	return a, nil
}

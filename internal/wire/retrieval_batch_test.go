package wire

import (
	"bytes"
	"fmt"
	"math/big"
	"strings"
	"testing"

	"embellish/internal/detrand"
	"embellish/internal/pir"
	"embellish/internal/vbyte"
)

func batchTestQueries(t *testing.T, n, cols int) []*pir.Query {
	t.Helper()
	key, err := pir.GenerateKey(detrand.New("batch-wire"), 96)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*pir.Query, n)
	for i := range qs {
		qs[i], err = key.NewQuery(detrand.New(fmt.Sprintf("batch-wire-%d", i)), cols, i%cols)
		if err != nil {
			t.Fatal(err)
		}
	}
	return qs
}

func TestPIRBatchQueryRoundTrip(t *testing.T) {
	qs := batchTestQueries(t, 3, 5)
	var buf bytes.Buffer
	if err := WritePIRBatchQuery(&buf, qs); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypePIRBatchQuery {
		t.Fatalf("type %d, err %v", typ, err)
	}
	got, err := DecodePIRBatchQuery(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("decoded %d queries, want %d", len(got), len(qs))
	}
	for i, q := range got {
		if q.N.Cmp(qs[i].N) != 0 || len(q.Values) != len(qs[i].Values) {
			t.Fatalf("query %d shape mismatch", i)
		}
		for j, v := range q.Values {
			if v.Cmp(qs[i].Values[j]) != 0 {
				t.Fatalf("query %d value %d mismatch", i, j)
			}
		}
	}
}

func TestPIRBatchAnswerRoundTrip(t *testing.T) {
	a := &pir.Answer{Gammas: []*big.Int{big.NewInt(7), big.NewInt(1), big.NewInt(99)}}
	var buf bytes.Buffer
	if err := WritePIRBatchAnswer(&buf, 5, a); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypePIRBatchResponse {
		t.Fatalf("type %d, err %v", typ, err)
	}
	idx, got, err := DecodePIRBatchAnswer(body)
	if err != nil || idx != 5 {
		t.Fatalf("index %d, err %v", idx, err)
	}
	for i := range a.Gammas {
		if got.Gammas[i].Cmp(a.Gammas[i]) != 0 {
			t.Fatalf("gamma %d mismatch", i)
		}
	}
}

func TestPIRBatchWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePIRBatchQuery(&buf, nil); err == nil {
		t.Fatal("empty batch written")
	}
	qs := batchTestQueries(t, 2, 3)
	// Mixed moduli must be refused: the frame carries ONE modulus.
	other, err := pir.GenerateKey(detrand.New("batch-wire-other"), 96)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := other.NewQuery(detrand.New("ow"), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePIRBatchQuery(&buf, []*pir.Query{qs[0], q2}); err == nil ||
		!strings.Contains(err.Error(), "different modulus") {
		t.Fatalf("mixed-modulus batch written: %v", err)
	}
	oversized := make([]*pir.Query, MaxPIRBatch+1)
	for i := range oversized {
		oversized[i] = qs[0]
	}
	if err := WritePIRBatchQuery(&buf, oversized); err == nil {
		t.Fatal("oversized batch written")
	}
	if err := WritePIRBatchAnswer(&buf, MaxPIRBatch, &pir.Answer{Gammas: []*big.Int{b(1)}}); err == nil {
		t.Fatal("out-of-range answer index written")
	}
	if err := WritePIRBatchAnswer(&buf, 0, &pir.Answer{}); err == nil {
		t.Fatal("empty answer written")
	}
}

func b(v int64) *big.Int { return big.NewInt(v) }

// encodeBatch builds a hand-rolled batch body for decoder attacks.
func encodeBatch(n *big.Int, counts []uint64, values [][]*big.Int) []byte {
	var body []byte
	body = appendBig(body, n)
	body = vbyte.Append(body, uint64(len(counts)))
	for i, c := range counts {
		body = vbyte.Append(body, c)
		for _, v := range values[i] {
			body = appendBig(body, v)
		}
	}
	return body
}

func TestPIRBatchDecoderRejections(t *testing.T) {
	n := b(35) // 5*7, tiny but structurally fine
	cases := map[string][]byte{
		"empty":      {},
		"zero count": encodeBatch(n, nil, nil),
		"forged value count": encodeBatch(n, []uint64{1 << 20},
			[][]*big.Int{{b(2)}}),
		"value outside Zn": encodeBatch(n, []uint64{1}, [][]*big.Int{{b(35)}}),
		"zero value":       encodeBatch(n, []uint64{1}, [][]*big.Int{{b(0)}}),
		"trailing bytes": append(encodeBatch(n, []uint64{1},
			[][]*big.Int{{b(2)}}), 0xFF),
		"wide modulus": encodeBatch(new(big.Int).Lsh(b(1), 8*maxPIRModulusBytes+8),
			[]uint64{1}, [][]*big.Int{{b(2)}}),
	}
	// Over-cap batch count.
	var over []byte
	over = appendBig(over, n)
	over = vbyte.Append(over, MaxPIRBatch+1)
	cases["over-cap count"] = over
	for name, body := range cases {
		if _, err := DecodePIRBatchQuery(body); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	// Answer-side rejections.
	var ans []byte
	ans = vbyte.Append(ans, MaxPIRBatch) // index out of range
	ans = vbyte.Append(ans, 1)
	ans = appendBig(ans, b(3))
	if _, _, err := DecodePIRBatchAnswer(ans); err == nil {
		t.Error("out-of-range answer index accepted")
	}
	var forged []byte
	forged = vbyte.Append(forged, 0)
	forged = vbyte.Append(forged, 1<<30) // forged gamma count
	if _, _, err := DecodePIRBatchAnswer(forged); err == nil {
		t.Error("forged gamma count accepted")
	}
}

package wire

import (
	"bytes"
	"math/big"
	"testing"

	"embellish/internal/benaloh"
	"embellish/internal/core"
	"embellish/internal/detrand"
	"embellish/internal/index"
	"embellish/internal/simio"
	"embellish/internal/wordnet"
)

func sampleKey(t *testing.T) *benaloh.PrivateKey {
	t.Helper()
	k, err := benaloh.GenerateKey(detrand.New("wire-test"), 192, benaloh.Pow3(8))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func sampleQuery(t *testing.T, k *benaloh.PrivateKey) *core.Query {
	t.Helper()
	q := &core.Query{Pub: &k.PublicKey}
	rnd := detrand.New("wire-flags")
	for i := 0; i < 6; i++ {
		flag, err := k.EncryptInt(rnd, int64(i%2))
		if err != nil {
			t.Fatal(err)
		}
		q.Entries = append(q.Entries, core.QueryEntry{Term: wordnet.TermID(i * 7), Flag: flag})
	}
	return q
}

func TestQueryRoundTrip(t *testing.T) {
	k := sampleKey(t)
	q := sampleQuery(t, k)
	var buf bytes.Buffer
	if err := WriteQuery(&buf, q); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeQuery {
		t.Fatalf("type = %d", typ)
	}
	got, err := DecodeQuery(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pub.N.Cmp(q.Pub.N) != 0 || got.Pub.G.Cmp(q.Pub.G) != 0 || got.Pub.R.Cmp(q.Pub.R) != 0 {
		t.Fatal("public key mangled")
	}
	if len(got.Entries) != len(q.Entries) {
		t.Fatalf("%d entries, want %d", len(got.Entries), len(q.Entries))
	}
	for i := range q.Entries {
		if got.Entries[i].Term != q.Entries[i].Term || got.Entries[i].Flag.Cmp(q.Entries[i].Flag) != 0 {
			t.Fatalf("entry %d mangled", i)
		}
		// Flags still decrypt to the right bit.
		m, err := k.DecryptInt(got.Entries[i].Flag)
		if err != nil {
			t.Fatal(err)
		}
		if m != int64(i%2) {
			t.Fatalf("entry %d decrypts to %d", i, m)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	k := sampleKey(t)
	resp := &core.Response{}
	rnd := detrand.New("wire-resp")
	for i := 0; i < 4; i++ {
		enc, err := k.EncryptInt(rnd, int64(i*10))
		if err != nil {
			t.Fatal(err)
		}
		resp.Docs = append(resp.Docs, core.DocScore{Doc: index.DocID(100 + i), Enc: enc})
	}
	stats := core.Stats{Postings: 42, IO: simio.Accounting{Seeks: 3, Bytes: 9001}}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp, stats); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypeResponse {
		t.Fatalf("type %d err %v", typ, err)
	}
	cands, st, err := DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if st.Postings != 42 || st.Seeks != 3 || st.IOBytes != 9001 {
		t.Fatalf("stats mangled: %+v", st)
	}
	if len(cands) != 4 {
		t.Fatalf("%d candidates", len(cands))
	}
	for i, c := range cands {
		if int(c.Doc) != 100+i {
			t.Fatalf("candidate %d doc %d", i, c.Doc)
		}
		m, err := k.DecryptInt(c.Enc)
		if err != nil || m != int64(i*10) {
			t.Fatalf("candidate %d decrypts to %d (%v)", i, m, err)
		}
	}
}

func TestErrorMessage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteError(&buf, "boom"); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypeError {
		t.Fatalf("type %d err %v", typ, err)
	}
	if string(body) != "boom" {
		t.Fatalf("body %q", body)
	}
}

func TestReadMessageRejectsHugeFrame(t *testing.T) {
	// Forged length header far beyond MaxFrame must be rejected without
	// allocation.
	buf := []byte{0xff, 0xff, 0xff, 0xff, 1}
	if _, _, err := ReadMessage(bytes.NewReader(buf)); err == nil {
		t.Fatal("4GiB frame accepted")
	}
}

func TestReadMessageTruncated(t *testing.T) {
	k := sampleKey(t)
	q := sampleQuery(t, k)
	var buf bytes.Buffer
	if err := WriteQuery(&buf, q); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, _, err := ReadMessage(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestDecodeQueryRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x81},                      // N of length 1 but no bytes... (length=1, truncated)
		bytes.Repeat([]byte{0}, 30), // unterminated varints
	}
	for i, body := range cases {
		if _, err := DecodeQuery(body); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestDecodeQueryRejectsFlagOutsideGroup(t *testing.T) {
	k := sampleKey(t)
	q := sampleQuery(t, k)
	// Corrupt one flag to exceed the modulus.
	q.Entries[0].Flag = new(big.Int).Add(k.N, big.NewInt(5))
	var buf bytes.Buffer
	if err := WriteQuery(&buf, q); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeQuery(body); err == nil {
		t.Fatal("flag outside Z_n accepted")
	}
}

func TestDecodeResponseRejectsTrailing(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, &core.Response{}, core.Stats{}); err != nil {
		t.Fatal(err)
	}
	_, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeResponse(append(body, 0x99)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

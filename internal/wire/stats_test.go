package wire

import (
	"bytes"
	"testing"

	"embellish/internal/vbyte"
)

func sampleStats() Stats {
	return Stats{
		Accepted: 101, Rejected: 3, Active: 7,
		Queries: 5000, Updates: 12, Retrievals: 900, Errors: 4,
		QueryNs: 1 << 44, MaxQueryNs: 1 << 30,
		Inflight: 8, Queued: 5, QueuedTotal: 620,
		QueueWaitNs: 1 << 33, MaxQueueWaitNs: 1 << 28,
		ShedQueueFull: 17, ShedQueueTimeout: 6, Deadlines: 2,
		Durable: 1, WALSeq: 812, WALCheckpointSeq: 800, CheckpointAgeNs: 1 << 36,
		PIRModMuls: 1 << 40, PIRTableMuls: 1 << 22,
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := sampleStats()
	var buf bytes.Buffer
	if err := WriteStats(&buf, want); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeStats {
		t.Fatalf("type = %d, want %d", typ, TypeStats)
	}
	got, err := DecodeStats(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
}

func TestStatsRequestIsEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStatsRequest(&buf); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMessage(&buf)
	if err != nil || typ != TypeStats {
		t.Fatalf("type = %d err = %v", typ, err)
	}
	if len(body) != 0 {
		t.Fatalf("request body has %d bytes, want 0", len(body))
	}
}

// TestStatsForwardCompat proves both directions of schema drift: a
// SHORTER field list (older server) decodes with the missing trailing
// fields zero, and a LONGER one (newer server) decodes with the extra
// values dropped — in both cases without error.
func TestStatsForwardCompat(t *testing.T) {
	// Older server: only the first three fields.
	var body []byte
	body = vbyte.Append(body, 3)
	for _, v := range []uint64{11, 22, 33} {
		body = vbyte.Append(body, v)
	}
	got, err := DecodeStats(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Accepted != 11 || got.Rejected != 22 || got.Active != 33 || got.Queries != 0 {
		t.Fatalf("short decode = %+v", got)
	}

	// Newer server: the full schema plus extra trailing fields.
	full := sampleStats()
	fs := full.fields()
	body = body[:0]
	body = vbyte.Append(body, uint64(len(fs)+2))
	for _, f := range fs {
		body = vbyte.Append(body, *f)
	}
	body = vbyte.Append(body, 12345)
	body = vbyte.Append(body, 67890)
	got, err = DecodeStats(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != full {
		t.Fatalf("long decode = %+v, want %+v", got, full)
	}
}

// TestStatsHostileBodies pins the decoder's forged-input behavior to
// the package convention: bad counts, truncation and trailing garbage
// are clean errors, never panics or allocations driven by the header.
func TestStatsHostileBodies(t *testing.T) {
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"zero count", vbyte.Append(nil, 0)},
		{"count over cap", vbyte.Append(nil, maxStatsFields+1)},
		{"huge count", vbyte.Append(nil, 1<<40)},
		{"truncated fields", vbyte.Append(nil, 5)},
		{"trailing bytes", append(vbyte.Append(vbyte.Append(nil, 1), 9), 0xff)},
	}
	for _, tc := range cases {
		if _, err := DecodeStats(tc.body); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

// TestStatsFieldCountPinned fails when a field is added without
// bumping this constant — the reminder that the encoding is
// positional and append-only.
func TestStatsFieldCountPinned(t *testing.T) {
	var st Stats
	if n := len(st.fields()); n != 34 {
		t.Fatalf("Stats encodes %d fields, test expects 34; fields are append-only — update this test after appending", n)
	}
	if maxStatsFields < len(st.fields()) {
		t.Fatal("maxStatsFields fell below the schema size")
	}
}

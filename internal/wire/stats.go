package wire

import (
	"errors"
	"fmt"
	"io"

	"embellish/internal/vbyte"
)

// TypeStats is the operational-metrics message (type 14). Sent with an
// EMPTY body it is the client's request; the server answers with the
// same type carrying its serving counters. Like the admin messages it
// is not part of the private-retrieval protocol — it exposes only
// aggregate load figures (queue depth, latency sums, WAL lag), never
// anything about any individual query, which stays protected by the
// embellishment and PIR layers.
const TypeStats = 14

// Typed error-body prefixes for the operational layer. Like
// UnknownTypeRefusal they are matched as prefixes by clients, so they
// are FROZEN once a server ships them; the text after the prefix may
// carry detail (retry hints, timings) and may change freely.
const (
	// OverloadRefusal prefixes the shed-with-retry-hint error a server
	// sends when its admission queue (or connection cap) is full, or
	// when a queued request waited out the queue timeout. The request
	// was NOT started; clients should back off and retry.
	OverloadRefusal = "server overloaded"
	// DeadlineRefusal prefixes the error a server sends when its
	// per-request deadline expired mid-scan. The request burned partial
	// work and was abandoned; retrying immediately will likely expire
	// again unless the query shrinks or the load drops.
	DeadlineRefusal = "server deadline exceeded"
)

// maxStatsFields caps the field count a peer may claim, far above the
// current schema so the encoding can grow without a protocol break
// while a forged count still cannot force large allocations.
const maxStatsFields = 64

// Stats is the wire form of the server's serving counters. Fields are
// encoded positionally as vbytes, in declaration order — APPEND-ONLY:
// new fields go at the end, and decoders tolerate both shorter (older
// server) and longer (newer server) field lists, defaulting missing
// trailing fields to zero.
type Stats struct {
	// Connection lifecycle.
	Accepted uint64 // connections accepted
	Rejected uint64 // connections refused at the conn cap
	Active   uint64 // connections open now
	// Request counters.
	Queries    uint64 // search queries answered (batch members included)
	Updates    uint64 // admin add/delete frames applied
	Retrievals uint64 // PIR executions answered
	Errors     uint64 // error frames written
	// Query latency (engine processing only, not queue wait).
	QueryNs    uint64 // total nanoseconds across all queries
	MaxQueryNs uint64 // slowest single query
	// Admission control.
	Inflight         uint64 // requests executing now
	Queued           uint64 // requests parked in the admission queue now
	QueuedTotal      uint64 // requests that ever waited in the queue
	QueueWaitNs      uint64 // total queue wait across queued requests
	MaxQueueWaitNs   uint64 // longest single queue wait
	ShedQueueFull    uint64 // requests shed because the queue was full
	ShedQueueTimeout uint64 // requests shed after waiting out the queue timeout
	Deadlines        uint64 // requests stopped by the server-side deadline
	// Durability (zero on in-memory engines; Durable distinguishes
	// "in-memory" from "durable with zero lag").
	Durable          uint64 // 1 when a write-ahead log is attached
	WALSeq           uint64 // last journaled sequence number
	WALCheckpointSeq uint64 // sequence covered by the newest checkpoint
	CheckpointAgeNs  uint64 // nanoseconds since that checkpoint was taken
	// PIR work accounting (partial work of cancelled scans included).
	PIRModMuls   uint64 // modular multiplications spent serving PIR
	PIRTableMuls uint64 // subset of PIRModMuls spent on per-query setup
	// Replication (zero unless the server is a WAL-shipped replica;
	// ReplPrimarySeq distinguishes "not a replica" from "lag zero").
	ReplPrimarySeq uint64 // primary's WALSeq at the last successful pull
	ReplLagOps     uint64 // journal records the replica still trails by
	// Cluster routing (zero unless the answering process is a router).
	RouterPartitions uint64 // partitions behind the router
	RouterRetries    uint64 // per-partition attempts beyond the first
	RouterFailovers  uint64 // attempts answered by a non-primary endpoint
	// Privacy traffic and auditing (audit rows zero unless the server
	// runs with per-session risk auditing enabled).
	DecoyQueries  uint64 // decoy-marked query frames answered (subset of Queries)
	RiskAudited   uint64 // query frames the risk audit scored
	RiskSkipped   uint64 // query frames the audit declined to score
	RiskSumMicros uint64 // total observed risk over audited frames, micro-units
	// Recursive retrieval (zero until a client sends TypePIRRecursiveQuery).
	PIRRecursiveQueries  uint64 // recursive queries answered (subset of Retrievals)
	PIRRecursivePartials uint64 // level-1-only partition answers (cluster scatter legs)
}

// fields returns the positional encoding order. Append-only.
func (s *Stats) fields() []*uint64 {
	return []*uint64{
		&s.Accepted, &s.Rejected, &s.Active,
		&s.Queries, &s.Updates, &s.Retrievals, &s.Errors,
		&s.QueryNs, &s.MaxQueryNs,
		&s.Inflight, &s.Queued, &s.QueuedTotal,
		&s.QueueWaitNs, &s.MaxQueueWaitNs,
		&s.ShedQueueFull, &s.ShedQueueTimeout, &s.Deadlines,
		&s.Durable, &s.WALSeq, &s.WALCheckpointSeq, &s.CheckpointAgeNs,
		&s.PIRModMuls, &s.PIRTableMuls,
		&s.ReplPrimarySeq, &s.ReplLagOps,
		&s.RouterPartitions, &s.RouterRetries, &s.RouterFailovers,
		&s.DecoyQueries, &s.RiskAudited, &s.RiskSkipped, &s.RiskSumMicros,
		&s.PIRRecursiveQueries, &s.PIRRecursivePartials,
	}
}

// WriteStatsRequest frames the client's empty stats request.
func WriteStatsRequest(w io.Writer) error {
	return writeFrame(w, []byte{TypeStats})
}

// WriteStats frames and writes the server's stats response: a field
// count followed by that many vbyte-coded values in the positional
// order of Stats.fields.
func WriteStats(w io.Writer, st Stats) error {
	fs := st.fields()
	var body []byte
	body = append(body, TypeStats)
	body = vbyte.Append(body, uint64(len(fs)))
	for _, f := range fs {
		body = vbyte.Append(body, *f)
	}
	return writeFrame(w, body)
}

// DecodeStats parses a non-empty TypeStats body. Field counts beyond
// the current schema are tolerated (the extra values are read and
// dropped — a newer server); counts up to maxStatsFields bound the
// decode work against forged headers.
func DecodeStats(body []byte) (Stats, error) {
	var st Stats
	n, used, err := vbyte.Decode(body)
	if err != nil || n == 0 || n > maxStatsFields {
		return st, fmt.Errorf("wire: stats field count: %w", orRange(err))
	}
	body = body[used:]
	fs := st.fields()
	for i := 0; i < int(n); i++ {
		v, used, err := vbyte.Decode(body)
		if err != nil {
			return Stats{}, fmt.Errorf("wire: stats field %d: %w", i, err)
		}
		body = body[used:]
		if i < len(fs) {
			*fs[i] = v
		}
	}
	if len(body) != 0 {
		return Stats{}, errors.New("wire: trailing bytes after stats")
	}
	return st, nil
}

package wire

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"embellish/internal/pir"
	"embellish/internal/vbyte"
)

// Batched private retrieval: a pipelining client packs up to
// MaxPIRBatch block queries — all under ONE client modulus — into a
// single TypePIRBatchQuery frame, and the server streams one
// TypePIRBatchResponse frame back per block as each answer is
// computed. Streaming is the point: the client decodes (and
// residuosity-tests) answer i while the server is still multiplying
// answer i+1, and a k-block fetch costs one round-trip instead of k.
//
// TypePIRBatchQuery: modulus big | query count vbyte | per query:
// value count vbyte | one group element per block column.
// TypePIRBatchResponse: query index vbyte | gamma count vbyte | one
// group element per matrix row. Indexes are 0-based positions in the
// batch and arrive strictly in order; a per-query serving error is
// answered with TypeError and ends the batch (the connection
// survives).
//
// The caps are the single-query ones: the modulus ceiling bounds the
// per-bit serving cost, forged counts are rejected against the
// remaining body before any allocation, and the batch size itself is
// capped so one frame cannot commit the server to unbounded CPU.

// Batch retrieval message types (12-13; 9-11 are the single-query
// retrieval protocol).
const (
	TypePIRBatchQuery    = 12
	TypePIRBatchResponse = 13
)

// MaxPIRBatch caps the block queries per batch frame. Each query in
// the batch costs the server one full database scan, so the cap (with
// the modulus ceiling) bounds the CPU a single frame can demand;
// clients with deeper pipelines split across frames.
const MaxPIRBatch = 64

// UnknownTypeRefusal is the error-body prefix servers send for an
// unrecognized message type. FROZEN: servers predating the batch
// messages already sent exactly this text, and pipelined fetch
// clients detect them by matching it on the first batch answer —
// changing it would break the sequential fallback against every
// deployed server.
const UnknownTypeRefusal = "unexpected message type"

// WritePIRBatchQuery frames and writes one batch of PIR block queries.
// Every query must carry the same modulus — the batch serializes it
// once.
func WritePIRBatchQuery(w io.Writer, qs []*pir.Query) error {
	if len(qs) == 0 {
		return errors.New("wire: empty PIR batch")
	}
	if len(qs) > MaxPIRBatch {
		return fmt.Errorf("wire: PIR batch of %d queries exceeds the %d cap", len(qs), MaxPIRBatch)
	}
	var n *big.Int
	for i, q := range qs {
		if q == nil || q.N == nil || len(q.Values) == 0 {
			return fmt.Errorf("wire: nil PIR query %d in batch", i)
		}
		if n == nil {
			n = q.N
		} else if q.N.Cmp(n) != 0 {
			return fmt.Errorf("wire: PIR batch query %d uses a different modulus", i)
		}
	}
	var body []byte
	body = append(body, TypePIRBatchQuery)
	body = appendBig(body, n)
	body = vbyte.Append(body, uint64(len(qs)))
	for _, q := range qs {
		body = vbyte.Append(body, uint64(len(q.Values)))
		for _, v := range q.Values {
			body = appendBig(body, v)
		}
	}
	return writeFrame(w, body)
}

// DecodePIRBatchQuery parses a TypePIRBatchQuery body. The same
// bounds as DecodePIRQuery apply to the shared modulus and to every
// value; the query count is additionally capped at MaxPIRBatch.
func DecodePIRBatchQuery(body []byte) ([]*pir.Query, error) {
	n, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: PIR batch modulus: %w", err)
	}
	if n.Sign() <= 0 || (n.BitLen()+7)/8 > maxPIRModulusBytes {
		return nil, errors.New("wire: PIR batch modulus out of range")
	}
	count, used, err := vbyte.Decode(body)
	if err != nil || count == 0 || count > MaxPIRBatch {
		return nil, fmt.Errorf("wire: PIR batch query count: %w", orRange(err))
	}
	body = body[used:]
	qs := make([]*pir.Query, count)
	for qi := range qs {
		nv, used, err := vbyte.Decode(body)
		// Each value costs at least 2 body bytes (length prefix + one
		// byte), so a count past half the remaining body is forged —
		// reject before allocating the pointer slice.
		if err != nil || nv == 0 || nv > maxPIRBlocks || nv*2 > uint64(len(body)) {
			return nil, fmt.Errorf("wire: PIR batch query %d value count: %w", qi, orRange(err))
		}
		body = body[used:]
		q := &pir.Query{N: n, Values: make([]*big.Int, nv)}
		for i := range q.Values {
			v, rest, err := decodeBig(body)
			if err != nil {
				return nil, fmt.Errorf("wire: PIR batch query %d value %d: %w", qi, i, err)
			}
			if v.Sign() <= 0 || v.Cmp(n) >= 0 {
				return nil, fmt.Errorf("wire: PIR batch query %d value %d outside Z_n", qi, i)
			}
			q.Values[i] = v
			body = rest
		}
		qs[qi] = q
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing bytes after PIR batch query")
	}
	return qs, nil
}

// WritePIRBatchAnswer frames and writes one streamed batch answer:
// the index of the query it answers (0-based within its batch)
// followed by a standard PIR answer encoding.
func WritePIRBatchAnswer(w io.Writer, index int, a *pir.Answer) error {
	if index < 0 || index >= MaxPIRBatch {
		return fmt.Errorf("wire: PIR batch answer index %d out of range", index)
	}
	body, err := appendAnswer(vbyte.Append([]byte{TypePIRBatchResponse}, uint64(index)), a)
	if err != nil {
		return err
	}
	return writeFrame(w, body)
}

// DecodePIRBatchAnswer parses a TypePIRBatchResponse body, returning
// the in-batch query index alongside the answer. After the index the
// body is exactly a TypePIRResponse body, so the gamma bounds live in
// one place (DecodePIRAnswer).
func DecodePIRBatchAnswer(body []byte) (int, *pir.Answer, error) {
	index, used, err := vbyte.Decode(body)
	if err != nil || index >= MaxPIRBatch {
		return 0, nil, fmt.Errorf("wire: PIR batch answer index: %w", orRange(err))
	}
	a, err := DecodePIRAnswer(body[used:])
	if err != nil {
		return 0, nil, err
	}
	return int(index), a, nil
}

package wire

import (
	"errors"
	"fmt"
	"io"

	"embellish/internal/benaloh"
	"embellish/internal/core"
	"embellish/internal/index"
	"embellish/internal/vbyte"
	"embellish/internal/wordnet"
)

// Batch messages amortize framing and round-trips when one client
// session issues several embellished queries at once (a user tab
// restoring saved searches, or a proxy multiplexing users): the Benaloh
// public key — hundreds of bytes of modulus — is serialized once for the
// whole batch instead of once per query, and the server answers all
// queries in a single frame.

// MaxBatch caps the number of queries in one batch frame.
const MaxBatch = 1024

// WriteBatchQuery frames and writes a batch of embellished queries that
// share one public key (they must come from the same client key pair).
func WriteBatchQuery(w io.Writer, qs []*core.Query) error {
	if len(qs) == 0 {
		return errors.New("wire: empty batch")
	}
	if len(qs) > MaxBatch {
		return fmt.Errorf("wire: batch of %d exceeds limit %d", len(qs), MaxBatch)
	}
	pub := qs[0].Pub
	if pub == nil {
		return errors.New("wire: nil public key")
	}
	for _, q := range qs[1:] {
		if q.Pub == nil || q.Pub.N.Cmp(pub.N) != 0 || q.Pub.G.Cmp(pub.G) != 0 || q.Pub.R.Cmp(pub.R) != 0 {
			return errors.New("wire: batch queries must share one public key")
		}
	}
	var body []byte
	body = append(body, TypeBatchQuery)
	body = appendBig(body, pub.N)
	body = appendBig(body, pub.G)
	body = appendBig(body, pub.R)
	body = vbyte.Append(body, uint64(len(qs)))
	for _, q := range qs {
		body = vbyte.Append(body, uint64(len(q.Entries)))
		for _, e := range q.Entries {
			body = vbyte.Append(body, uint64(e.Term))
			body = appendBig(body, e.Flag)
		}
	}
	return writeFrame(w, body)
}

// DecodeBatchQuery parses a TypeBatchQuery body. The returned queries
// share one PublicKey value.
func DecodeBatchQuery(body []byte) ([]*core.Query, error) {
	pubN, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: batch N: %w", err)
	}
	pubG, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: batch G: %w", err)
	}
	pubR, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: batch R: %w", err)
	}
	if pubN.Sign() <= 0 || pubG.Sign() <= 0 || pubR.Sign() <= 0 {
		return nil, errors.New("wire: nonpositive key parameter")
	}
	pub := &benaloh.PublicKey{N: pubN, G: pubG, R: pubR}
	nq, used, err := vbyte.Decode(body)
	if err != nil || nq == 0 || nq > MaxBatch {
		return nil, fmt.Errorf("wire: batch count: %w", orRange(err))
	}
	body = body[used:]
	out := make([]*core.Query, nq)
	for qi := range out {
		n, used, err := vbyte.Decode(body)
		if err != nil || n > maxEntries {
			return nil, fmt.Errorf("wire: batch query %d entry count: %w", qi, orRange(err))
		}
		body = body[used:]
		q := &core.Query{Pub: pub, Entries: make([]core.QueryEntry, n)}
		for i := range q.Entries {
			term, used, err := vbyte.Decode(body)
			if err != nil || term >= 1<<31 {
				return nil, fmt.Errorf("wire: batch query %d entry %d term: %w", qi, i, orRange(err))
			}
			body = body[used:]
			flag, rest, err := decodeBig(body)
			if err != nil {
				return nil, fmt.Errorf("wire: batch query %d entry %d flag: %w", qi, i, err)
			}
			if flag.Sign() <= 0 || flag.Cmp(pubN) >= 0 {
				return nil, fmt.Errorf("wire: batch query %d entry %d flag outside Z_n", qi, i)
			}
			body = rest
			q.Entries[i] = core.QueryEntry{Term: wordnet.TermID(term), Flag: flag}
		}
		out[qi] = q
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing bytes after batch query")
	}
	return out, nil
}

// WriteBatchResponse frames and writes the per-query candidate sets and
// cost figures answering one batch query, in batch order.
func WriteBatchResponse(w io.Writer, resps []*core.Response, stats []core.Stats) error {
	if len(resps) != len(stats) {
		return errors.New("wire: responses and stats length mismatch")
	}
	var body []byte
	body = append(body, TypeBatchResponse)
	body = vbyte.Append(body, uint64(len(resps)))
	for i, resp := range resps {
		body = vbyte.Append(body, uint64(len(resp.Docs)))
		for _, d := range resp.Docs {
			body = vbyte.Append(body, uint64(d.Doc))
			body = appendBig(body, d.Enc)
		}
		body = vbyte.Append(body, uint64(stats[i].Postings))
		body = vbyte.Append(body, uint64(stats[i].IO.Seeks))
		body = vbyte.Append(body, uint64(stats[i].IO.Bytes))
	}
	return writeFrame(w, body)
}

// DecodeBatchResponse parses a TypeBatchResponse body.
func DecodeBatchResponse(body []byte) ([][]Candidate, []ResponseStats, error) {
	nq, used, err := vbyte.Decode(body)
	if err != nil || nq == 0 || nq > MaxBatch {
		return nil, nil, fmt.Errorf("wire: batch response count: %w", orRange(err))
	}
	body = body[used:]
	cands := make([][]Candidate, nq)
	stats := make([]ResponseStats, nq)
	for qi := range cands {
		n, used, err := vbyte.Decode(body)
		if err != nil || n > maxCandidates {
			return nil, nil, fmt.Errorf("wire: batch response %d candidate count: %w", qi, orRange(err))
		}
		body = body[used:]
		out := make([]Candidate, n)
		for i := range out {
			doc, used, err := vbyte.Decode(body)
			if err != nil || doc >= 1<<31 {
				return nil, nil, fmt.Errorf("wire: batch response %d candidate %d doc: %w", qi, i, orRange(err))
			}
			body = body[used:]
			enc, rest, err := decodeBig(body)
			if err != nil {
				return nil, nil, fmt.Errorf("wire: batch response %d candidate %d score: %w", qi, i, err)
			}
			body = rest
			out[i] = Candidate{Doc: index.DocID(doc), Enc: enc}
		}
		cands[qi] = out
		var st ResponseStats
		for _, dst := range []*int{&st.Postings, &st.Seeks, &st.IOBytes} {
			v, used, err := vbyte.Decode(body)
			if err != nil {
				return nil, nil, fmt.Errorf("wire: batch response %d stats: %w", qi, err)
			}
			*dst = int(v)
			body = body[used:]
		}
		stats[qi] = st
	}
	if len(body) != 0 {
		return nil, nil, errors.New("wire: trailing bytes after batch response")
	}
	return cands, stats, nil
}

package wire

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"embellish/internal/pir"
	"embellish/internal/vbyte"
)

// Recursive private retrieval: the client uploads TWO selection
// vectors of ~√n group elements instead of one per block, and the
// server answers with the recursively-encrypted block (or, between a
// cluster router and its partitions, the level-1 gamma matrix). One
// frame carries a small batch; answers stream back as standard
// TypePIRBatchResponse frames in batch order, so the answer-side
// bounds live in one place (DecodePIRAnswer) and a pipelining client
// reuses its batch reassembly loop unchanged.
//
// TypePIRRecursiveQuery: modulus big | width vbyte | gridCols vbyte |
// offset vbyte | span vbyte | colMode byte (1 = column vector present,
// 0 = level-1-only partition mode) | query count vbyte | per query:
// gridRows(width, gridCols) row elements, then (colMode == 1) gridCols
// column elements. The row-vector length is DERIVED from the shared
// shape rather than carried per query — a forged per-query length
// cannot disagree with the shape the server validates against.
//
// Servers that predate this message refuse it with the frozen
// UnknownTypeRefusal prefix, which is exactly the signal the client's
// fetch path uses to fall back to flat frames.

// TypePIRRecursiveQuery is the recursive retrieval request (type 22;
// answers reuse TypePIRBatchResponse).
const TypePIRRecursiveQuery = 22

// MaxPIRRecursiveBatch caps the recursive queries per frame. A
// recursive answer is 8·blockSize·modBytes gammas — modBytes·8-fold a
// flat answer — so the recursive cap sits well under MaxPIRBatch to
// bound the response bytes one frame can commit the server to.
const MaxPIRRecursiveBatch = 16

// recursiveCeilSqrt mirrors the grid bound of internal/pir without
// exporting its integer sqrt: the decoder only needs the hostile cap
// gridCols ≤ 2·⌈√width⌉ before it allocates anything.
func recursiveCeilSqrt(n uint64) uint64 {
	var s uint64
	for s*s < n {
		s++
	}
	return s
}

// WritePIRRecursiveQuery frames and writes one batch of recursive
// queries. Every query must share one modulus and one grid shape —
// the frame serializes both once.
func WritePIRRecursiveQuery(w io.Writer, qs []*pir.RecursiveQuery) error {
	if len(qs) == 0 {
		return errors.New("wire: empty recursive PIR batch")
	}
	if len(qs) > MaxPIRRecursiveBatch {
		return fmt.Errorf("wire: recursive PIR batch of %d queries exceeds the %d cap", len(qs), MaxPIRRecursiveBatch)
	}
	q0 := qs[0]
	if q0 == nil || q0.N == nil || len(q0.Rows) == 0 {
		return errors.New("wire: nil recursive PIR query")
	}
	for i, q := range qs {
		if q == nil || q.N == nil || len(q.Rows) == 0 {
			return fmt.Errorf("wire: nil recursive PIR query %d in batch", i)
		}
		if q.N.Cmp(q0.N) != 0 {
			return fmt.Errorf("wire: recursive PIR batch query %d uses a different modulus", i)
		}
		if q.Width != q0.Width || q.GridCols != q0.GridCols ||
			q.Offset != q0.Offset || q.Span != q0.Span ||
			len(q.Rows) != len(q0.Rows) || len(q.Cols) != len(q0.Cols) {
			return fmt.Errorf("wire: recursive PIR batch query %d disagrees on shape", i)
		}
	}
	colMode := byte(0)
	if len(q0.Cols) != 0 {
		colMode = 1
	}
	var body []byte
	body = append(body, TypePIRRecursiveQuery)
	body = appendBig(body, q0.N)
	body = vbyte.Append(body, uint64(q0.Width))
	body = vbyte.Append(body, uint64(q0.GridCols))
	body = vbyte.Append(body, uint64(q0.Offset))
	body = vbyte.Append(body, uint64(q0.Span))
	body = append(body, colMode)
	body = vbyte.Append(body, uint64(len(qs)))
	for _, q := range qs {
		for _, v := range q.Rows {
			body = appendBig(body, v)
		}
		if colMode == 1 {
			for _, v := range q.Cols {
				body = appendBig(body, v)
			}
		}
	}
	return writeFrame(w, body)
}

// DecodePIRRecursiveQuery parses a TypePIRRecursiveQuery body. The
// shape is validated before any dimension-sized allocation: modulus
// width and block width under the flat caps, grid columns under the
// 2·⌈√width⌉ ceiling (so the derived row-vector length stays ~√width
// honest or not), the offset/span window inside the width, and the
// total value count charged against the remaining body bytes — a
// forged count or truncated frame fails here, never in the server's
// scan.
func DecodePIRRecursiveQuery(body []byte) ([]*pir.RecursiveQuery, error) {
	n, body, err := decodeBig(body)
	if err != nil {
		return nil, fmt.Errorf("wire: recursive PIR modulus: %w", err)
	}
	if n.Sign() <= 0 || (n.BitLen()+7)/8 > maxPIRModulusBytes {
		return nil, errors.New("wire: recursive PIR modulus out of range")
	}
	var shape [4]uint64
	for f, name := range []string{"width", "grid columns", "offset", "span"} {
		v, used, err := vbyte.Decode(body)
		if err != nil {
			return nil, fmt.Errorf("wire: recursive PIR %s: %w", name, err)
		}
		shape[f] = v
		body = body[used:]
	}
	width, gridCols, offset, span := shape[0], shape[1], shape[2], shape[3]
	if width == 0 || width > maxPIRBlocks {
		return nil, errors.New("wire: recursive PIR width out of range")
	}
	if gridCols == 0 || gridCols > width || gridCols > 2*recursiveCeilSqrt(width) {
		return nil, errors.New("wire: recursive PIR grid columns out of range")
	}
	if offset >= width || span > width-offset {
		return nil, errors.New("wire: recursive PIR window outside the width")
	}
	if len(body) < 1 || body[0] > 1 {
		return nil, errors.New("wire: recursive PIR column mode")
	}
	colMode := body[0]
	body = body[1:]
	count, used, err := vbyte.Decode(body)
	if err != nil || count == 0 || count > MaxPIRRecursiveBatch {
		return nil, fmt.Errorf("wire: recursive PIR query count: %w", orRange(err))
	}
	body = body[used:]
	gridRows := (width + gridCols - 1) / gridCols
	perQuery := gridRows
	if colMode == 1 {
		perQuery += gridCols
	}
	// Each value costs at least 2 body bytes (length prefix + one
	// byte), so a total past half the remaining body is forged — reject
	// before allocating any pointer slice.
	if count*perQuery*2 > uint64(len(body)) {
		return nil, errors.New("wire: recursive PIR vectors exceed the frame")
	}
	qs := make([]*pir.RecursiveQuery, count)
	for qi := range qs {
		q := &pir.RecursiveQuery{
			N:        n,
			Width:    int(width),
			GridCols: int(gridCols),
			Offset:   int(offset),
			Span:     int(span),
			Rows:     make([]*big.Int, gridRows),
		}
		if colMode == 1 {
			q.Cols = make([]*big.Int, gridCols)
		}
		for _, vec := range [][]*big.Int{q.Rows, q.Cols} {
			for i := range vec {
				v, rest, err := decodeBig(body)
				if err != nil {
					return nil, fmt.Errorf("wire: recursive PIR query %d value %d: %w", qi, i, err)
				}
				if v.Sign() <= 0 || v.Cmp(n) >= 0 {
					return nil, fmt.Errorf("wire: recursive PIR query %d value %d outside Z_n", qi, i)
				}
				vec[i] = v
				body = rest
			}
		}
		qs[qi] = q
	}
	if len(body) != 0 {
		return nil, errors.New("wire: trailing bytes after recursive PIR query")
	}
	return qs, nil
}

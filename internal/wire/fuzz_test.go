package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeQuery: a hostile peer controls the query body entirely;
// decoding must never panic or over-allocate, only return errors or a
// structurally valid query.
func FuzzDecodeQuery(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x81, 7, 0x81, 3, 0x81, 5, 0x81, 0x80})
	f.Fuzz(func(t *testing.T, body []byte) {
		q, err := DecodeQuery(body)
		if err != nil {
			return
		}
		for i, e := range q.Entries {
			if e.Flag == nil || e.Flag.Sign() <= 0 || e.Flag.Cmp(q.Pub.N) >= 0 {
				t.Fatalf("entry %d flag escaped validation", i)
			}
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeQuery for the response path.
func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add(bytes.Repeat([]byte{0x81}, 16))
	f.Fuzz(func(t *testing.T, body []byte) {
		cands, _, err := DecodeResponse(body)
		if err != nil {
			return
		}
		for i, c := range cands {
			if c.Enc == nil {
				t.Fatalf("candidate %d has nil ciphertext", i)
			}
		}
	})
}

// FuzzReadMessage: arbitrary streams must produce clean errors.
func FuzzReadMessage(f *testing.F) {
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(body)+1+4 > len(data) {
			t.Fatalf("type %d: body longer than input", typ)
		}
	})
}
